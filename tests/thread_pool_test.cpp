#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/thread_pool.hpp"

namespace iwg {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  pool.parallel_for(257, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroAndNegativeCountsAreNoops) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::int64_t) { ++calls; });
  pool.parallel_for(-5, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SingleIterationRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(1, [&](std::int64_t i) {
    EXPECT_EQ(i, 0);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::int64_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ZeroWorkerPoolStillRuns) {
  ThreadPool pool(0u + 0);  // explicit zero workers would pick hw_concurrency;
  // instead verify the global wrapper works regardless of pool size.
  std::atomic<std::int64_t> sum{0};
  parallel_for(100, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.parallel_for(50, [&](std::int64_t i) { sum += i + round; });
    EXPECT_EQ(sum.load(), 50 * 49 / 2 + 50 * round);
  }
}

TEST(ThreadPool, LargeIterationCount) {
  std::atomic<std::int64_t> sum{0};
  parallel_for(10000, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
}

TEST(ThreadPool, GrainedCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  const std::int64_t counts[] = {1, 7, 64, 101};
  const std::int64_t grains[] = {1, 2, 3, 7, 16, 1000};
  for (const std::int64_t count : counts) {
    for (const std::int64_t grain : grains) {
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(count));
      for (auto& h : hits) h = 0;
      pool.parallel_for(count, grain, [&](std::int64_t i) {
        hits[static_cast<std::size_t>(i)]++;
      });
      for (std::int64_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "count=" << count << " grain=" << grain << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, GrainedPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100, 8,
                                 [&](std::int64_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelGrainBoundsAndCoverage) {
  EXPECT_GE(parallel_grain(1), 1);
  EXPECT_GE(parallel_grain(0), 1);
  const std::int64_t count = 3333;
  const std::int64_t grain = parallel_grain(count);
  EXPECT_GE(grain, 1);
  EXPECT_LE(grain, count);
  std::atomic<std::int64_t> sum{0};
  parallel_for(count, grain, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), count * (count - 1) / 2);
}

}  // namespace
}  // namespace iwg
