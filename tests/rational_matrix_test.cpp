// Tests of the exact linear-algebra helper behind the D^T solve.
#include <gtest/gtest.h>

#include "winograd/rational_matrix.hpp"

namespace iwg {
namespace {

RationalMatrix identity(int n) {
  RationalMatrix m(n, n);
  for (int i = 0; i < n; ++i) m.at(i, i) = Rational(1);
  return m;
}

TEST(RationalMatrix, MultiplyIdentity) {
  RationalMatrix a(2, 3);
  a.at(0, 0) = Rational(1, 2);
  a.at(0, 2) = Rational(-3);
  a.at(1, 1) = Rational(7, 5);
  const RationalMatrix r = a * identity(3);
  EXPECT_TRUE(r == a);
}

TEST(RationalMatrix, MultiplyKnownProduct) {
  RationalMatrix a(2, 2), b(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  b.at(0, 0) = Rational(1, 2);
  b.at(1, 1) = Rational(1, 4);
  const RationalMatrix c = a * b;
  EXPECT_EQ(c.at(0, 0), Rational(1, 2));
  EXPECT_EQ(c.at(0, 1), Rational(1, 2));
  EXPECT_EQ(c.at(1, 0), Rational(3, 2));
  EXPECT_EQ(c.at(1, 1), Rational(1));
}

TEST(RationalMatrix, TransposeRoundTrip) {
  RationalMatrix a(2, 3);
  a.at(0, 1) = Rational(5, 7);
  a.at(1, 2) = Rational(-2);
  const RationalMatrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.at(1, 0), Rational(5, 7));
  EXPECT_TRUE(t.transposed() == a);
}

TEST(RationalMatrix, SolveSquareSystem) {
  // [2 1; 1 3] x = [5; 10]  →  x = [1; 3]
  RationalMatrix c(2, 2), e(2, 1);
  c.at(0, 0) = 2;
  c.at(0, 1) = 1;
  c.at(1, 0) = 1;
  c.at(1, 1) = 3;
  e.at(0, 0) = 5;
  e.at(1, 0) = 10;
  const RationalMatrix x = solve_exact(c, e);
  EXPECT_EQ(x.at(0, 0), Rational(1));
  EXPECT_EQ(x.at(1, 0), Rational(3));
}

TEST(RationalMatrix, SolveConsistentOverdetermined) {
  // Third row is the sum of the first two: consistent.
  RationalMatrix c(3, 2), e(3, 1);
  c.at(0, 0) = 1;
  c.at(1, 1) = 1;
  c.at(2, 0) = 1;
  c.at(2, 1) = 1;
  e.at(0, 0) = Rational(1, 3);
  e.at(1, 0) = Rational(2, 3);
  e.at(2, 0) = Rational(1);
  const RationalMatrix x = solve_exact(c, e);
  EXPECT_EQ(x.at(0, 0), Rational(1, 3));
  EXPECT_EQ(x.at(1, 0), Rational(2, 3));
}

TEST(RationalMatrix, SolveInconsistentThrows) {
  RationalMatrix c(3, 2), e(3, 1);
  c.at(0, 0) = 1;
  c.at(1, 1) = 1;
  c.at(2, 0) = 1;
  c.at(2, 1) = 1;
  e.at(0, 0) = 1;
  e.at(1, 0) = 1;
  e.at(2, 0) = 3;  // should be 2
  EXPECT_THROW(solve_exact(c, e), Error);
}

TEST(RationalMatrix, SolveRankDeficientThrows) {
  RationalMatrix c(2, 2), e(2, 1);
  c.at(0, 0) = 1;
  c.at(0, 1) = 2;
  c.at(1, 0) = 2;
  c.at(1, 1) = 4;  // rank 1
  e.at(0, 0) = 1;
  e.at(1, 0) = 2;
  EXPECT_THROW(solve_exact(c, e), Error);
}

TEST(RationalMatrix, SolveUnderdeterminedThrows) {
  RationalMatrix c(1, 2), e(1, 1);
  c.at(0, 0) = 1;
  EXPECT_THROW(solve_exact(c, e), Error);
}

TEST(RationalMatrix, PivotingHandlesZeroLead) {
  // First pivot position is zero; solver must swap rows.
  RationalMatrix c(2, 2), e(2, 1);
  c.at(0, 1) = 1;
  c.at(1, 0) = 1;
  e.at(0, 0) = 7;
  e.at(1, 0) = 9;
  const RationalMatrix x = solve_exact(c, e);
  EXPECT_EQ(x.at(0, 0), Rational(9));
  EXPECT_EQ(x.at(1, 0), Rational(7));
}

TEST(RationalMatrix, ToFloatAndString) {
  RationalMatrix a(1, 2);
  a.at(0, 0) = Rational(1, 4);
  a.at(0, 1) = Rational(-21, 4);
  const auto f = a.to_float();
  EXPECT_FLOAT_EQ(f[0], 0.25f);
  EXPECT_FLOAT_EQ(f[1], -5.25f);
  EXPECT_EQ(a.to_string(), "1/4 -21/4\n");
}

}  // namespace
}  // namespace iwg
