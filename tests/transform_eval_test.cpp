// Tests of the §5.3 paired transform evaluator: identical math to the naive
// matvec (up to FP32 association), roughly half the multiplications.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "winograd/plan.hpp"

namespace iwg {
namespace {

class PairedEval : public ::testing::TestWithParam<int> {};  // param = alpha

TEST_P(PairedEval, MatchesNaiveOnInputTransform) {
  const int alpha = GetParam();
  const int r = 3 <= alpha - 1 ? 3 : 2;
  const WinogradPlan& plan = get_plan(alpha + 1 - r, r);
  TransformEval naive(alpha, alpha, plan.bt_f, /*paired=*/false);
  TransformEval paired(alpha, alpha, plan.bt_f, /*paired=*/true);
  EXPECT_TRUE(paired.paired());
  EXPECT_FALSE(naive.paired());

  Rng rng(100 + static_cast<unsigned>(alpha));
  std::vector<float> x(static_cast<std::size_t>(alpha));
  std::vector<float> y1(static_cast<std::size_t>(alpha));
  std::vector<float> y2(static_cast<std::size_t>(alpha));
  for (int trial = 0; trial < 10; ++trial) {
    for (auto& v : x) v = rng.uniform(-2.0f, 2.0f);
    naive.apply(x.data(), 1, y1.data(), 1);
    paired.apply(x.data(), 1, y2.data(), 1);
    for (int i = 0; i < alpha; ++i) {
      EXPECT_NEAR(y1[static_cast<std::size_t>(i)], y2[static_cast<std::size_t>(i)],
                  1e-2f * (1.0f + std::abs(y1[static_cast<std::size_t>(i)])))
          << "alpha=" << alpha << " row " << i;
    }
  }
}

TEST_P(PairedEval, RoughlyHalvesMultiplications) {
  const int alpha = GetParam();
  const int r = 3 <= alpha - 1 ? 3 : 2;
  const WinogradPlan& plan = get_plan(alpha + 1 - r, r);
  TransformEval naive(alpha, alpha, plan.bt_f, false);
  TransformEval paired(alpha, alpha, plan.bt_f, true);
  // §5.3: "reducing the number of necessary multiplications by nearly half".
  // (For α = 4 the input transform is multiplication-free to begin with.)
  EXPECT_LE(paired.mul_count(),
            std::max(naive.mul_count() - 1, naive.mul_count() / 2));
  if (alpha >= 8) {
    EXPECT_LE(paired.mul_count(), naive.mul_count() * 6 / 10);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, PairedEval, ::testing::Values(4, 8, 16));

TEST(TransformEval, StridedAccess) {
  const WinogradPlan& plan = get_plan(6, 3);
  TransformEval eval(8, 8, plan.bt_f, true);
  std::vector<float> x(8 * 3, 0.0f);
  std::vector<float> y(8 * 2, -1.0f);
  for (int i = 0; i < 8; ++i) x[static_cast<std::size_t>(i * 3)] = static_cast<float>(i);
  eval.apply(x.data(), 3, y.data(), 2);

  std::vector<float> xc(8);
  std::vector<float> yc(8);
  for (int i = 0; i < 8; ++i) xc[static_cast<std::size_t>(i)] = static_cast<float>(i);
  TransformEval dense(8, 8, plan.bt_f, true);
  dense.apply(xc.data(), 1, yc.data(), 1);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(y[static_cast<std::size_t>(i * 2)], yc[static_cast<std::size_t>(i)]);
}

TEST(TransformEval, FilterTransformPairsDetected) {
  const WinogradPlan& plan = get_plan(2, 7);
  TransformEval eval(8, 7, plan.g_f, true);
  EXPECT_TRUE(eval.paired());
  // Identity-free rows: G entries like −2/9 all count as multiplications.
  EXPECT_GT(eval.mul_count(), 0);
}

TEST(TransformEval, CountsForClassicF23) {
  // D(4)^T is all 0/±1: the input transform of F(2,3) needs no
  // multiplications at all — the textbook result.
  const WinogradPlan& plan = get_plan(2, 3);
  TransformEval eval(4, 4, plan.bt_f, false);
  EXPECT_EQ(eval.mul_count(), 0);
  EXPECT_EQ(eval.add_count(), 4);  // one add per row
}

TEST(TransformEval, OutputMatchesDoublePrecision) {
  const WinogradPlan& plan = get_plan(4, 5);
  TransformEval eval(8, 8, plan.bt_f, true);
  Rng rng(77);
  std::vector<float> x(8);
  std::vector<float> y(8);
  for (auto& v : x) v = rng.uniform(1.0f, 2.0f);
  eval.apply(x.data(), 1, y.data(), 1);
  for (int i = 0; i < 8; ++i) {
    double want = 0.0;
    for (int k = 0; k < 8; ++k)
      want += plan.bt_d[static_cast<std::size_t>(i * 8 + k)] * x[static_cast<std::size_t>(k)];
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], want,
                1e-4 * (1.0 + std::abs(want)));
  }
}

}  // namespace
}  // namespace iwg
