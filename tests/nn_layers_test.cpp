// Gradient checks (finite differences) for every layer, plus semantic unit
// tests. Gradcheck validates both the layer backward rules and, for Conv2D,
// the full Winograd forward/backward/filter-grad stack end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"

namespace iwg::nn {
namespace {

/// Scalar objective: sum of elementwise weighted outputs (weights fixed so
/// the objective is smooth and generic).
float objective(const TensorF& y) {
  float s = 0.0f;
  for (std::int64_t i = 0; i < y.size(); ++i) {
    s += y[i] * (0.1f + 0.01f * static_cast<float>(i % 17));
  }
  return s;
}

TensorF objective_grad(const TensorF& y) {
  TensorF g = y;
  for (std::int64_t i = 0; i < g.size(); ++i) {
    g[i] = 0.1f + 0.01f * static_cast<float>(i % 17);
  }
  return g;
}

/// Check dL/dx and dL/dparams of `layer` at input `x` by central differences.
/// `allowed_outliers` absorbs finite-difference breakdown at ReLU kinks
/// (the perturbation flips an activation sign and the two-sided difference
/// no longer measures the one-sided derivative backward uses).
void gradcheck(Layer& layer, TensorF x, float tol = 2e-2f,
               int max_checks = 24, int allowed_outliers = 0) {
  int outliers = 0;
  const TensorF y = layer.forward(x, /*train=*/true);
  const TensorF dy = objective_grad(y);
  for (Param* p : layer.params()) p->zero_grad();
  const TensorF dx = layer.backward(dy);

  const float eps = 3e-3f;
  // Input gradient.
  Rng pick(99);
  for (int k = 0; k < max_checks; ++k) {
    const std::int64_t i =
        static_cast<std::int64_t>(pick.below(static_cast<std::uint64_t>(x.size())));
    const float saved = x[i];
    x[i] = saved + eps;
    const float lp = objective(layer.forward(x, true));
    x[i] = saved - eps;
    const float lm = objective(layer.forward(x, true));
    x[i] = saved;
    const float want = (lp - lm) / (2 * eps);
    if (std::abs(dx[i] - want) > tol * (1.0f + std::abs(want))) {
      ++outliers;
      EXPECT_LE(outliers, allowed_outliers) << "input grad at " << i << ": "
                                            << dx[i] << " vs " << want;
    }
  }
  // Parameter gradients (re-run forward to restore caches).
  layer.forward(x, true);
  for (Param* p : layer.params()) {
    for (int k = 0; k < max_checks / 2; ++k) {
      const std::int64_t i = static_cast<std::int64_t>(
          pick.below(static_cast<std::uint64_t>(p->value.size())));
      const float saved = p->value[i];
      // Param's contract: every in-place mutation of `value` bumps `version`
      // (otherwise the filter-transform cache would serve stale transforms
      // and the perturbation would not reach the output).
      p->value[i] = saved + eps;
      ++p->version;
      const float lp = objective(layer.forward(x, true));
      p->value[i] = saved - eps;
      ++p->version;
      const float lm = objective(layer.forward(x, true));
      p->value[i] = saved;
      ++p->version;
      const float want = (lp - lm) / (2 * eps);
      if (std::abs(p->grad[i] - want) > tol * (1.0f + std::abs(want))) {
        ++outliers;
        EXPECT_LE(outliers, allowed_outliers)
            << p->name << " grad at " << i << ": " << p->grad[i] << " vs "
            << want;
      }
    }
  }
}

TensorF rand_input(std::initializer_list<std::int64_t> dims, unsigned seed) {
  Rng rng(seed);
  TensorF t(dims);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

TEST(NnGradcheck, Conv2DWinogradUnitStride) {
  Rng rng(1);
  Conv2D conv(3, 4, 3, 1, 1, ConvEngine::kWinograd, rng);
  gradcheck(conv, rand_input({2, 6, 7, 3}, 2));
}

TEST(NnGradcheck, Conv2DGemmUnitStride) {
  Rng rng(3);
  Conv2D conv(3, 4, 3, 1, 1, ConvEngine::kGemm, rng);
  gradcheck(conv, rand_input({2, 6, 7, 3}, 4));
}

TEST(NnGradcheck, Conv2DWinograd5x5) {
  Rng rng(5);
  Conv2D conv(2, 3, 5, 1, 2, ConvEngine::kWinograd, rng);
  gradcheck(conv, rand_input({1, 8, 9, 2}, 6));
}

TEST(NnGradcheck, Conv2DStride2) {
  Rng rng(7);
  Conv2D conv(3, 4, 3, 2, 1, ConvEngine::kWinograd, rng);
  gradcheck(conv, rand_input({2, 8, 8, 3}, 8));
}

TEST(NnGradcheck, Conv2DPointwise) {
  Rng rng(9);
  Conv2D conv(4, 5, 1, 1, 0, ConvEngine::kWinograd, rng);
  gradcheck(conv, rand_input({2, 4, 4, 4}, 10));
}

TEST(NnGradcheck, BatchNorm) {
  BatchNorm2D bn(5);
  gradcheck(bn, rand_input({3, 4, 4, 5}, 11), 3e-2f, 24, 1);
}

TEST(NnGradcheck, LeakyReLU) {
  LeakyReLU relu;
  gradcheck(relu, rand_input({2, 4, 4, 3}, 12));
}

TEST(NnGradcheck, MaxPool) {
  MaxPool2x2 pool;
  gradcheck(pool, rand_input({2, 6, 6, 3}, 13));
}

TEST(NnGradcheck, GlobalAvgPool) {
  GlobalAvgPool pool;
  gradcheck(pool, rand_input({2, 4, 4, 3}, 14));
}

TEST(NnGradcheck, Linear) {
  Rng rng(15);
  Linear lin(12, 7, rng);
  gradcheck(lin, rand_input({4, 12}, 16));
}

TEST(NnGradcheck, ResidualBlockIdentity) {
  Rng rng(17);
  ResidualBlock block(4, 4, 1, ConvEngine::kWinograd, rng);
  gradcheck(block, rand_input({1, 6, 6, 4}, 18), 3e-2f, 24, 4);
}

TEST(NnGradcheck, ResidualBlockProjection) {
  Rng rng(19);
  ResidualBlock block(3, 6, 2, ConvEngine::kWinograd, rng);
  gradcheck(block, rand_input({1, 8, 8, 3}, 20), 3e-2f, 24, 4);
}

// ---------------------------------------------------------------------------

TEST(NnLayers, LeakyReLUForwardValues) {
  LeakyReLU relu(0.01f);
  TensorF x({4});
  x[0] = -2.0f;
  x[1] = 0.0f;
  x[2] = 3.0f;
  x[3] = -0.5f;
  const TensorF y = relu.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], -0.02f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 3.0f);
  EXPECT_FLOAT_EQ(y[3], -0.005f);
}

TEST(NnLayers, MaxPoolSelectsMaximum) {
  MaxPool2x2 pool;
  TensorF x({1, 2, 2, 1});
  x[0] = 1.0f;
  x[1] = 5.0f;
  x[2] = -1.0f;
  x[3] = 2.0f;
  const TensorF y = pool.forward(x, true);
  EXPECT_EQ(y.size(), 1);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  TensorF dy({1, 1, 1, 1});
  dy[0] = 3.0f;
  const TensorF dx = pool.backward(dy);
  EXPECT_FLOAT_EQ(dx[1], 3.0f);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
}

TEST(NnLayers, BatchNormNormalizesTrainingBatch) {
  BatchNorm2D bn(2);
  Rng rng(31);
  TensorF x({4, 3, 3, 2});
  x.fill_uniform(rng, 3.0f, 9.0f);
  const TensorF y = bn.forward(x, true);
  // Per-channel mean ≈ 0, var ≈ 1.
  for (int c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    const std::int64_t m = y.size() / 2;
    for (std::int64_t i = 0; i < m; ++i) mean += y[i * 2 + c];
    mean /= static_cast<double>(m);
    for (std::int64_t i = 0; i < m; ++i) {
      var += (y[i * 2 + c] - mean) * (y[i * 2 + c] - mean);
    }
    var /= static_cast<double>(m);
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(NnLayers, BatchNormEvalUsesRunningStats) {
  BatchNorm2D bn(1);
  Rng rng(33);
  TensorF x({8, 2, 2, 1});
  x.fill_uniform(rng, 4.0f, 6.0f);
  for (int i = 0; i < 150; ++i) bn.forward(x, true);  // converge running stats
  const TensorF y = bn.forward(x, false);
  double mean = 0.0;
  for (std::int64_t i = 0; i < y.size(); ++i) mean += y[i];
  mean /= static_cast<double>(y.size());
  EXPECT_NEAR(mean, 0.0, 0.05);
}

TEST(NnLayers, KaimingUniformBounds) {
  Rng rng(35);
  TensorF w({64, 3, 3, 16});
  kaiming_uniform(w, 3 * 3 * 16, rng);
  const float bound = std::sqrt(6.0f / (3 * 3 * 16));
  float mx = 0.0f;
  for (std::int64_t i = 0; i < w.size(); ++i) mx = std::max(mx, std::abs(w[i]));
  EXPECT_LE(mx, bound);
  EXPECT_GT(mx, bound * 0.9f);  // actually fills the range
}

TEST(NnLoss, SoftmaxCrossEntropyKnownValues) {
  TensorF logits({2, 3});
  logits[0] = 10.0f;  // sample 0 strongly predicts class 0
  logits[1] = 0.0f;
  logits[2] = 0.0f;
  logits[3] = 0.0f;  // sample 1 uniform
  logits[4] = 0.0f;
  logits[5] = 0.0f;
  const LossResult res = softmax_cross_entropy(logits, {0, 1});
  EXPECT_NEAR(res.loss, 0.5f * (0.000091f + std::log(3.0f)), 1e-3f);
  EXPECT_EQ(res.correct, 1);  // argmax of uniform row is class 0 ≠ 1
  // Gradient rows sum to zero.
  for (int i = 0; i < 2; ++i) {
    float s = 0.0f;
    for (int j = 0; j < 3; ++j) s += res.dlogits[i * 3 + j];
    EXPECT_NEAR(s, 0.0f, 1e-6f);
  }
}

TEST(NnLoss, GradMatchesFiniteDifference) {
  Rng rng(37);
  TensorF logits({3, 4});
  logits.fill_uniform(rng, -2.0f, 2.0f);
  const std::vector<std::int64_t> labels = {1, 3, 0};
  const LossResult res = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.size(); ++i) {
    TensorF lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const float want = (softmax_cross_entropy(lp, labels).loss -
                        softmax_cross_entropy(lm, labels).loss) /
                       (2 * eps);
    EXPECT_NEAR(res.dlogits[i], want, 2e-3f) << i;
  }
}

}  // namespace
}  // namespace iwg::nn
