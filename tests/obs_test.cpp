// Observability-plane tests: SloMonitor window rotation and burn-rate
// hysteresis, Watchdog stall/recover edge counting, and the AdminServer's
// HTTP surface — including a scrape-while-serving race the TSan leg runs.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/trace.hpp"
#include "obs/admin_server.hpp"
#include "obs/slo_monitor.hpp"
#include "obs/watchdog.hpp"

namespace iwg::obs {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Minimal loopback HTTP GET returning "<status> <body>"-style results.

struct HttpResult {
  int status = 0;
  std::string body;
};

HttpResult http_get(std::uint16_t port, const std::string& request_line) {
  HttpResult res;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return res;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return res;
  }
  const std::string req = request_line + "\r\nHost: 127.0.0.1\r\n\r\n";
  (void)::send(fd, req.data(), req.size(), 0);
  std::string resp;
  char buf[4096];
  for (;;) {
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 5000) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (resp.rfind("HTTP/1.1 ", 0) == 0) {
    res.status = std::atoi(resp.c_str() + 9);
  }
  const std::size_t split = resp.find("\r\n\r\n");
  if (split != std::string::npos) res.body = resp.substr(split + 4);
  return res;
}

HttpResult get_path(const AdminServer& server, const std::string& path) {
  return http_get(server.port(), "GET " + path + " HTTP/1.1");
}

// ---------------------------------------------------------------------------
// SloMonitor

SloConfig tight_config() {
  SloConfig cfg;
  cfg.miss_budget = 0.10;  // 10% budget: burn 1.0 at 10% misses
  cfg.fast_intervals = 2;
  cfg.slow_intervals = 4;
  cfg.warn_burn = 1.0;
  cfg.page_burn = 2.0;
  cfg.escalate_after = 2;
  cfg.clear_after = 2;
  return cfg;
}

/// Tick `mon` once for `tenant` with `events` more events, `missed` of them
/// missing, latency `lat_us` each — driving the cumulative Totals the way a
/// registry poller would.
struct TotalsFeeder {
  SloMonitor::Totals acc;
  trace::Histogram hist;

  AlertState tick(SloMonitor& mon, const std::string& tenant,
                  std::int64_t events, std::int64_t missed, double lat_us) {
    for (std::int64_t i = 0; i < events; ++i) hist.record(lat_us);
    acc.events += events;
    acc.missed += missed;
    acc.latency = hist.snapshot();
    return mon.observe(tenant, acc);
  }
};

TEST(SloMonitor, WindowsRotateAtBoundaries) {
  SloMonitor mon(tight_config());
  TotalsFeeder f;
  f.tick(mon, "t", 0, 0, 0.0);  // baseline
  // Four intervals with distinct event counts: 10, 20, 30, 40.
  for (int i = 1; i <= 4; ++i) f.tick(mon, "t", 10 * i, 0, 100.0);
  SloMonitor::TenantStatus s = mon.status("t");
  EXPECT_EQ(s.intervals, 4);
  EXPECT_EQ(s.fast.events, 30 + 40);             // last 2 intervals
  EXPECT_EQ(s.slow.events, 10 + 20 + 30 + 40);   // all 4 (ring is full)
  // A fifth interval must evict the first from the slow window.
  f.tick(mon, "t", 50, 0, 100.0);
  s = mon.status("t");
  EXPECT_EQ(s.fast.events, 40 + 50);
  EXPECT_EQ(s.slow.events, 20 + 30 + 40 + 50);
  EXPECT_EQ(s.state, AlertState::kOk);
  EXPECT_DOUBLE_EQ(s.fast.burn, 0.0);
  // Rolling quantiles come from the merged interval deltas.
  EXPECT_GT(s.fast.p50_us, 0.0);
  EXPECT_LE(s.fast.p50_us, 200.0);
}

TEST(SloMonitor, SingleBadIntervalNeverFlapsState) {
  SloConfig cfg = tight_config();  // escalate_after = 2
  cfg.fast_intervals = 1;  // the bad interval leaves the fast window at once
  SloMonitor mon(cfg);
  TotalsFeeder f;
  f.tick(mon, "t", 0, 0, 0.0);  // baseline
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(f.tick(mon, "t", 100, 0, 50.0), AlertState::kOk);
  }
  // One interval at 100% miss — its fast burn is way past page, but
  // hysteresis holds: level must be sustained escalate_after = 2 intervals,
  // so a single bad interval must not move the state.
  EXPECT_EQ(f.tick(mon, "t", 100, 100, 50.0), AlertState::kOk);
  // Back to clean: the breach streak resets, still ok, no transitions ever.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(f.tick(mon, "t", 100, 0, 50.0), AlertState::kOk);
  }
  const SloMonitor::TenantStatus s = mon.status("t");
  EXPECT_EQ(s.warn_transitions, 0);
  EXPECT_EQ(s.page_transitions, 0);
}

TEST(SloMonitor, SustainedBurnEscalatesWarnThenPageThenClears) {
  SloMonitor mon(tight_config());
  TotalsFeeder f;
  f.tick(mon, "t", 0, 0, 0.0);  // baseline
  for (int i = 0; i < 4; ++i) f.tick(mon, "t", 100, 0, 50.0);

  // Sustained 25% misses. First bad tick: fast = clean+bad = 25/200 → burn
  // 1.25 (warn level, streak 1). Second: fast = 50/200 → burn 2.5 ≥ page,
  // but the escalation streak carries the LOWEST sustained level — the
  // warn/page run escalates to warn, not page.
  AlertState st = AlertState::kOk;
  for (int i = 0; i < 2; ++i) st = f.tick(mon, "t", 100, 25, 50.0);
  EXPECT_EQ(st, AlertState::kWarn);

  // Two more bad ticks: fast stays at burn 2.5 ≥ page and the slow window
  // (now 75/400 then 100/400 → burn ≥ warn) confirms → page after the
  // escalate_after = 2 streak at page level.
  for (int i = 0; i < 2; ++i) st = f.tick(mon, "t", 100, 25, 50.0);
  EXPECT_EQ(st, AlertState::kPage);

  // One clean interval must NOT clear a page (clear_after = 2)...
  st = f.tick(mon, "t", 100, 0, 50.0);
  EXPECT_EQ(st, AlertState::kPage);
  // ...but sustained clean intervals de-escalate (page → ok directly).
  st = f.tick(mon, "t", 100, 0, 50.0);
  EXPECT_EQ(st, AlertState::kOk);

  const SloMonitor::TenantStatus s = mon.status("t");
  EXPECT_EQ(s.warn_transitions, 1);
  EXPECT_EQ(s.page_transitions, 1);
  EXPECT_EQ(s.clear_transitions, 1);

  const std::string json = mon.alertz_json();
  EXPECT_NE(json.find("\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"page\":1"), std::string::npos);
}

TEST(SloMonitor, PageNeedsSlowWindowConfirmation) {
  SloConfig cfg = tight_config();
  cfg.fast_intervals = 1;
  cfg.slow_intervals = 10;
  cfg.escalate_after = 1;  // isolate the multi-window rule from hysteresis
  SloMonitor mon(cfg);
  TotalsFeeder f;
  f.tick(mon, "t", 0, 0, 0.0);  // baseline
  // Long clean history dilutes the slow window.
  for (int i = 0; i < 9; ++i) f.tick(mon, "t", 100, 0, 50.0);
  // One interval at 100% miss: fast (that interval alone) burns 10 ≥
  // page_burn, but the slow window sees 10 missed / 910 events = 1.1% →
  // burn 0.11 < warn_burn, so the multi-window rule blocks the page and
  // the fast breach alone warrants only warn.
  EXPECT_EQ(f.tick(mon, "t", 10, 10, 50.0), AlertState::kWarn);
}

TEST(SloMonitor, ObserveFromRegistryReadsTenantFamilies) {
  trace::ResetGuard guard;
  auto& reg = trace::MetricsRegistry::global();
  SloConfig cfg = tight_config();
  cfg.escalate_after = 1;
  SloMonitor mon(cfg);
  (void)mon.observe_from_registry("slotest");  // baseline at zero

  reg.counter("serve.tenant.slotest.completed").add(90);
  reg.counter("serve.tenant.slotest.deadline_missed").add(40);
  reg.counter("serve.tenant.slotest.expired").add(10);
  reg.histogram("serve.tenant.slotest.latency_us").record(1000.0);

  // events = 90 + 10 = 100; missed = 40 + 10 = 50 → burn 5.0 ≥ page, and
  // the slow window is the same single interval → immediate page at
  // escalate_after = 1.
  EXPECT_EQ(mon.observe_from_registry("slotest"), AlertState::kPage);
  const SloMonitor::TenantStatus s = mon.status("slotest");
  EXPECT_EQ(s.fast.events, 100);
  EXPECT_EQ(s.fast.missed, 50);
  // The transition surfaced as metrics too.
  EXPECT_EQ(reg.counter("obs.slo.transitions.page").value(), 1);
}

// ---------------------------------------------------------------------------
// Watchdog

TEST(Watchdog, StallFlipsHealthAndCountsTransitionsOnce) {
  trace::ResetGuard guard;
  Watchdog wd(/*stall_timeout=*/5ms);
  const Watchdog::HeartbeatPtr hb = wd.watch("worker.0");
  EXPECT_TRUE(wd.check().healthy);

  std::this_thread::sleep_for(20ms);
  Watchdog::Status st = wd.check();
  EXPECT_FALSE(st.healthy);
  ASSERT_EQ(st.stalled.size(), 1u);
  EXPECT_EQ(st.stalled[0].name, "worker.0");
  EXPECT_GT(st.stalled[0].age_s, 0.0);
  EXPECT_EQ(st.stalls_total, 1);

  // Still stalled: the condition persists but the transition counted once.
  std::this_thread::sleep_for(10ms);
  st = wd.check();
  EXPECT_FALSE(st.healthy);
  EXPECT_EQ(st.stalls_total, 1);
  EXPECT_EQ(
      trace::MetricsRegistry::global().counter("obs.watchdog.stalls").value(),
      1);

  // Recovery re-arms the edge detector; a second stall counts again.
  hb->beat();
  EXPECT_TRUE(wd.check().healthy);
  std::this_thread::sleep_for(20ms);
  st = wd.check();
  EXPECT_FALSE(st.healthy);
  EXPECT_EQ(st.stalls_total, 2);
}

TEST(Watchdog, DroppedHeartbeatIsPrunedNotStalled) {
  Watchdog wd(/*stall_timeout=*/1ms);
  Watchdog::HeartbeatPtr hb = wd.watch("transient");
  EXPECT_EQ(wd.check().watched, 1u);
  hb.reset();  // the owning thread exited cleanly
  std::this_thread::sleep_for(5ms);
  const Watchdog::Status st = wd.check();
  EXPECT_TRUE(st.healthy);  // a dropped handle is not a stall
  EXPECT_EQ(st.watched, 0u);
}

// ---------------------------------------------------------------------------
// AdminServer

TEST(AdminServer, ServesBuiltinAndCustomEndpoints) {
  AdminServer server;  // port 0 → ephemeral
  server.set_statusz([] { return std::string("{\"answer\":42}"); });
  server.handle("/custom", [] {
    AdminServer::Response r;
    r.body = "hello";
    return r;
  });
  server.start();
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  trace::MetricsRegistry::global().counter("obs.admin_test.visible").add(1);
  const HttpResult metrics = get_path(server, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("iwg_build_info{"), std::string::npos);
  EXPECT_NE(metrics.body.find("obs_admin_test_visible"), std::string::npos);

  EXPECT_EQ(get_path(server, "/healthz").status, 200);
  EXPECT_EQ(get_path(server, "/readyz").status, 200);
  EXPECT_EQ(get_path(server, "/statusz").body, "{\"answer\":42}");
  EXPECT_EQ(get_path(server, "/custom").body, "hello");
  EXPECT_NE(get_path(server, "/").body.find("/metrics"), std::string::npos);
  EXPECT_EQ(get_path(server, "/metrics?foo=bar").status, 200);  // query cut

  EXPECT_EQ(get_path(server, "/no_such").status, 404);
  EXPECT_EQ(http_get(server.port(), "POST /metrics HTTP/1.1").status, 405);

  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(AdminServer, HealthzAndReadyzGateOnProbes) {
  Watchdog wd(/*stall_timeout=*/5ms);
  SloMonitor slo;
  AdminServer server;
  server.wire(&wd, &slo);
  std::atomic<bool> ready{false};
  server.set_readyz([&ready] { return ready.load(); });
  server.start();

  const Watchdog::HeartbeatPtr hb = wd.watch("gated");
  EXPECT_EQ(get_path(server, "/healthz").status, 200);
  EXPECT_EQ(get_path(server, "/readyz").status, 503);  // not ready yet
  ready.store(true);
  EXPECT_EQ(get_path(server, "/readyz").status, 200);

  std::this_thread::sleep_for(20ms);  // heartbeat goes stale
  EXPECT_EQ(get_path(server, "/healthz").status, 503);
  hb->beat();
  EXPECT_EQ(get_path(server, "/healthz").status, 200);

  const HttpResult alertz = get_path(server, "/alertz");
  EXPECT_EQ(alertz.status, 200);
  EXPECT_NE(alertz.body.find("\"tenants\""), std::string::npos);
  server.stop();
}

TEST(AdminServer, ScrapeWhileServingIsRaceFree) {
  // The TSan-leg race test: worker threads hammer the registry (counters +
  // histogram records + heartbeats, the serving hot path's write set) while
  // a client scrapes /metrics over real HTTP. Nothing to assert beyond
  // well-formedness — the value is TSan observing the interleaving.
  Watchdog wd;
  AdminServer server;
  server.wire(&wd, nullptr);
  server.start();

  auto& reg = trace::MetricsRegistry::global();
  trace::Counter& c = reg.counter("obs.scrape_race.completed");
  trace::Histogram& h = reg.histogram("obs.scrape_race.latency_us");
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&, w] {
      const Watchdog::HeartbeatPtr hb =
          wd.watch("race.worker." + std::to_string(w));
      std::int64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        hb->beat();
        c.add();
        h.record(static_cast<double>(i % 4096));
        ++i;
      }
    });
  }

  for (int scrape = 0; scrape < 10; ++scrape) {
    const HttpResult r = get_path(server, "/metrics");
    ASSERT_EQ(r.status, 200);
    EXPECT_NE(r.body.find("obs_scrape_race_completed"), std::string::npos);
    EXPECT_EQ(get_path(server, "/healthz").status, 200);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  server.stop();

  // Post-drain consistency: the histogram tracked the counter exactly.
  EXPECT_EQ(h.snapshot().count, c.value());
}

}  // namespace
}  // namespace iwg::obs
