// Weight-file round-trip tests.
#include <gtest/gtest.h>

#include <cstdio>

#include "data/synthetic.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"

namespace iwg::nn {
namespace {

ModelConfig tiny_config(unsigned seed) {
  ModelConfig mc;
  mc.image_size = 8;
  mc.base_channels = 4;
  mc.seed = seed;
  return mc;
}

TEST(Serialize, RoundTripRestoresWeightsExactly) {
  Model a = make_vgg(16, tiny_config(1));
  Model b = make_vgg(16, tiny_config(2));  // different init
  const std::string path = "/tmp/iwg_weights_test.bin";
  const std::int64_t bytes = save_weights(a, path);
  EXPECT_GT(bytes, a.param_bytes());  // header + names on top of data
  load_weights(b, path);
  const auto pa = a.params();
  const auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.size(), pb[i]->value.size());
    for (std::int64_t j = 0; j < pa[i]->value.size(); ++j) {
      EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(Serialize, LoadedModelPredictsIdentically) {
  Model a = make_vgg(16, tiny_config(3));
  Model b = make_vgg(16, tiny_config(4));
  const std::string path = "/tmp/iwg_weights_test2.bin";
  save_weights(a, path);
  load_weights(b, path);
  const auto ds = data::make_cifar_like(16, 5, 8);
  std::vector<std::int64_t> labels;
  const TensorF x = ds.batch(0, 8, labels);
  const TensorF ya = a.forward(x, false);
  const TensorF yb = b.forward(x, false);
  for (std::int64_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
  std::remove(path.c_str());
}

TEST(Serialize, MismatchedArchitectureRejected) {
  Model a = make_vgg(16, tiny_config(6));
  Model b = make_vgg(19, tiny_config(6));
  const std::string path = "/tmp/iwg_weights_test3.bin";
  save_weights(a, path);
  EXPECT_THROW(load_weights(b, path), Error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileRejected) {
  Model a = make_vgg(16, tiny_config(7));
  EXPECT_THROW(load_weights(a, "/tmp/does_not_exist_iwg.bin"), Error);
}

}  // namespace
}  // namespace iwg::nn
