#include <gtest/gtest.h>

#include "tensor/conv_shape.hpp"
#include "tensor/tensor.hpp"

namespace iwg {
namespace {

TEST(Tensor, ShapeAndStrides) {
  TensorF t({2, 3, 4, 5});
  EXPECT_EQ(t.rank(), 4);
  EXPECT_EQ(t.size(), 120);
  EXPECT_EQ(t.offset(0, 0, 0, 1), 1);
  EXPECT_EQ(t.offset(0, 0, 1, 0), 5);
  EXPECT_EQ(t.offset(0, 1, 0, 0), 20);
  EXPECT_EQ(t.offset(1, 0, 0, 0), 60);
}

TEST(Tensor, AtRoundTrips) {
  TensorF t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 42.0f;
  EXPECT_EQ(t[t.size() - 1], 42.0f);
  t.at(0, 0, 0, 0) = -1.0f;
  EXPECT_EQ(t[0], -1.0f);
}

TEST(Tensor, LowerRanks) {
  TensorF v({7});
  EXPECT_EQ(v.rank(), 1);
  v.at(3, 0, 0, 0) = 1.0f;
  EXPECT_EQ(v[3], 1.0f);

  TensorF m({3, 4});
  m.at(2, 1, 0, 0) = 5.0f;
  EXPECT_EQ(m[2 * 4 + 1], 5.0f);
}

TEST(Tensor, FillAndCast) {
  TensorF t({4, 4});
  t.fill(2.5f);
  const TensorD d = t.cast<double>();
  EXPECT_EQ(d.size(), 16);
  for (std::int64_t i = 0; i < d.size(); ++i) EXPECT_DOUBLE_EQ(d[i], 2.5);
}

TEST(Tensor, FillUniformInRange) {
  Rng rng(3);
  TensorF t({100});
  t.fill_uniform(rng, 1.0f, 2.0f);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], 1.0f);
    EXPECT_LT(t[i], 2.0f);
  }
}

TEST(Tensor, SameShape) {
  TensorF a({2, 3});
  TensorF b({2, 3});
  TensorF c({3, 2});
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

TEST(Tensor, InvalidDimsThrow) {
  EXPECT_THROW(TensorF({0, 3}), Error);
  EXPECT_THROW(TensorF({2, -1}), Error);
  EXPECT_THROW(TensorF({1, 2, 3, 4, 5, 6}), Error);
}

TEST(Tensor, Rank5Volumes) {
  TensorF t({2, 3, 4, 5, 6});
  EXPECT_EQ(t.rank(), 5);
  EXPECT_EQ(t.size(), 720);
  t.at5(1, 2, 3, 4, 5) = 9.0f;
  EXPECT_EQ(t[t.size() - 1], 9.0f);
  EXPECT_EQ(t.offset5(0, 0, 0, 1, 0), 6);
  EXPECT_EQ(t.offset5(0, 0, 1, 0, 0), 30);
  EXPECT_EQ(t.offset5(1, 0, 0, 0, 0), 360);
}

TEST(ConvShape, OutputDims) {
  ConvShape s{.n = 2, .ih = 8, .iw = 10, .ic = 3, .oc = 4, .fh = 3, .fw = 3,
              .ph = 1, .pw = 1};
  EXPECT_EQ(s.oh(), 8);
  EXPECT_EQ(s.ow(), 10);
  s.ph = 0;
  s.pw = 0;
  EXPECT_EQ(s.oh(), 6);
  EXPECT_EQ(s.ow(), 8);
}

TEST(ConvShape, FlopsFormula) {
  ConvShape s{.n = 1, .ih = 4, .iw = 4, .ic = 2, .oc = 3, .fh = 3, .fw = 3,
              .ph = 1, .pw = 1};
  // 2·N·OC·OH·OW·FH·FW·IC = 2·1·3·4·4·3·3·2
  EXPECT_DOUBLE_EQ(s.flops(), 2.0 * 3 * 4 * 4 * 3 * 3 * 2);
}

TEST(ConvShape, FromOfms) {
  // Paper Fig. 8 shape: 128×48×48×128, r = 5.
  const ConvShape s = ConvShape::from_ofms(128, 48, 48, 128, 5);
  EXPECT_EQ(s.n, 128);
  EXPECT_EQ(s.ic, 128);
  EXPECT_EQ(s.oc, 128);
  EXPECT_EQ(s.fh, 5);
  EXPECT_EQ(s.ph, 2);
  EXPECT_EQ(s.oh(), 48);
  EXPECT_EQ(s.ow(), 48);
}

TEST(ConvShape, ValidateRejectsEmptyOutput) {
  ConvShape s{.n = 1, .ih = 2, .iw = 2, .ic = 1, .oc = 1, .fh = 5, .fw = 5,
              .ph = 0, .pw = 0};
  EXPECT_THROW(s.validate(), Error);
}

}  // namespace
}  // namespace iwg
