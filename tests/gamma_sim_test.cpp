// Functional validation of the simulated GPU kernels: every Γ variant and
// both GEMM baseline layouts must reproduce direct convolution bit-plausibly
// (FP32 tolerance), including partial blocks, boundary segments, padding,
// and the backward (fused-rotation) pass.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/conv_api.hpp"
#include "reference/direct_conv.hpp"
#include "tensor/layout.hpp"
#include "tensor/metrics.hpp"

namespace iwg::core {
namespace {

TensorF rand_tensor(std::initializer_list<std::int64_t> dims, unsigned seed) {
  Rng rng(seed);
  TensorF t(dims);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

double tol_for(int alpha) { return alpha >= 16 ? 8e-3 : 2e-4; }

struct SimCase {
  int alpha, n, r;
  Variant variant;
  std::int64_t oc;  // exercises full (multiple of BN) and partial blocks
  std::int64_t ic;
  std::string label;
};

class GammaSimSweep : public ::testing::TestWithParam<SimCase> {};

TEST_P(GammaSimSweep, ForwardMatchesDirect) {
  const SimCase& c = GetParam();
  const GammaConfig cfg = GammaConfig::make(c.alpha, c.n, c.r, c.variant);
  ConvShape s;
  s.n = 2;
  s.ic = c.ic;
  s.oc = c.oc;
  s.fh = 3;
  s.fw = c.r;
  s.ph = 1;
  s.pw = c.r / 2;
  s.ih = 5;
  const std::int64_t gran = c.n * (c.variant == Variant::kRuse ? 2 : 1);
  s.iw = 2 * gran + 1 - 2 * s.pw + c.r - 1;  // OW = 2·gran + 1 → GEMM tail
  s.validate();

  const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 7);
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 8);
  const TensorF want = ref::conv2d_direct(x, w, s);
  const TensorF got = conv2d_sim(x, w, s, plan_single(s, cfg));
  EXPECT_LT(max_rel_diff(got, want), tol_for(c.alpha)) << c.label;
}

TEST_P(GammaSimSweep, BackwardMatchesDirect) {
  const SimCase& c = GetParam();
  const GammaConfig cfg = GammaConfig::make(c.alpha, c.n, c.r, c.variant);
  ConvShape s;
  s.n = 1;
  s.ic = c.oc;  // swapped on purpose: backward output channels = IC
  s.oc = c.ic;
  s.fh = 2;
  s.fw = c.r;
  s.ph = 1;
  s.pw = c.r / 2;
  s.ih = 4;
  const std::int64_t gran = c.n * (c.variant == Variant::kRuse ? 2 : 1);
  // Deconv output width = IW; make it a non-multiple of the granularity.
  s.iw = gran + 1 + (c.r - 1) - 2 * s.pw;
  if (s.iw < c.r) s.iw = c.r + gran;
  s.validate();

  TensorF dy = rand_tensor({s.n, s.oh(), s.ow(), s.oc}, 9);
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 10);
  const TensorF want = ref::deconv2d_direct(dy, w, s);
  const ConvShape b = GammaKernel::make_backward_shape(s);
  const TensorF got = deconv2d_sim(dy, w, s, plan_single(b, cfg));
  ASSERT_TRUE(got.same_shape(want));
  EXPECT_LT(max_rel_diff(got, want), tol_for(c.alpha)) << c.label;
}

std::vector<SimCase> sim_cases() {
  std::vector<SimCase> v;
  // Full-block and partial-block channel counts for each family.
  v.push_back({4, 2, 3, Variant::kBase, 64, 8, "g4_full"});
  v.push_back({4, 3, 2, Variant::kBase, 10, 4, "g4_partial"});
  v.push_back({8, 6, 3, Variant::kBase, 64, 8, "g8_full"});
  v.push_back({8, 6, 3, Variant::kBase, 20, 12, "g8_partial"});
  v.push_back({8, 4, 5, Variant::kBase, 64, 8, "g8_r5"});
  v.push_back({8, 2, 7, Variant::kBase, 16, 8, "g8_r7"});
  v.push_back({8, 7, 2, Variant::kBase, 16, 8, "g8_r2"});
  v.push_back({8, 5, 4, Variant::kBase, 16, 8, "g8_r4"});
  v.push_back({8, 3, 6, Variant::kBase, 16, 8, "g8_r6"});
  v.push_back({16, 8, 9, Variant::kBase, 32, 8, "g16_full"});
  v.push_back({16, 10, 7, Variant::kBase, 12, 4, "g16_partial"});
  v.push_back({16, 9, 8, Variant::kBase, 32, 8, "g16_r8"});
  v.push_back({8, 4, 5, Variant::kRuse, 64, 8, "g8ruse"});
  v.push_back({8, 2, 7, Variant::kRuse, 24, 8, "g8ruse_r7"});
  v.push_back({16, 8, 9, Variant::kRuse, 32, 8, "g16ruse"});
  v.push_back({16, 9, 8, Variant::kRuse, 16, 8, "g16ruse_r8"});
  v.push_back({16, 10, 7, Variant::kC64, 64, 8, "g16c64_full"});
  v.push_back({16, 8, 9, Variant::kC64, 40, 12, "g16c64_partial"});
  return v;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, GammaSimSweep,
                         ::testing::ValuesIn(sim_cases()),
                         [](const auto& info) { return info.param.label; });

TEST(GammaSim, MultiBlockGrid) {
  // More tiles and channels than one block: several blocks in each grid
  // dimension, plus a partial tail block.
  const GammaConfig cfg = GammaConfig::make(8, 6, 3);
  ConvShape s;
  s.n = 3;
  s.ic = 8;
  s.oc = 72;  // 64 + partial block
  s.fh = 3;
  s.fw = 3;
  s.ph = 1;
  s.pw = 1;
  s.ih = 7;
  s.iw = 12;  // OW = 12 = 2 tiles per row; 3·7·2 = 42 tiles → 2 blocks
  s.validate();
  const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 31);
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 32);
  const TensorF want = ref::conv2d_direct(x, w, s);
  const TensorF got = conv2d_sim(x, w, s, plan_single(s, cfg));
  EXPECT_LT(max_rel_diff(got, want), 2e-4);
}

TEST(GammaSim, MitigationsOffStillCorrect) {
  // §5.2 padding/swizzle/Z-shape only affect performance, never results.
  GammaConfig cfg = GammaConfig::make(8, 6, 3);
  cfg.pad_smem = false;
  cfg.swizzle_ds = false;
  cfg.zshape_lanes = false;
  ConvShape s;
  s.n = 1;
  s.ic = 8;
  s.oc = 64;
  s.fh = 3;
  s.fw = 3;
  s.ph = 1;
  s.pw = 1;
  s.ih = 6;
  s.iw = 12;
  s.validate();
  const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 41);
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 42);
  const TensorF want = ref::conv2d_direct(x, w, s);
  const TensorF got = conv2d_sim(x, w, s, plan_single(s, cfg));
  EXPECT_LT(max_rel_diff(got, want), 2e-4);
}

TEST(GammaSim, SwizzleReducesDsStoreConflicts) {
  // The §5.2 ablation, measured: Γ8 with the Xi swizzle must show a lower
  // store-conflict factor than without it.
  ConvShape s;
  s.n = 1;
  s.ic = 8;
  s.oc = 64;
  s.fh = 3;
  s.fw = 3;
  s.ph = 1;
  s.pw = 1;
  s.ih = 6;
  s.iw = 12;
  s.validate();
  const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 51);
  const TensorF wt = transpose_filter_to_fhwio(
      rand_tensor({s.oc, s.fh, s.fw, s.ic}, 52));
  TensorF y({s.n, s.oh(), s.ow(), s.oc});
  sim::GmemBuf xb(x.data(), x.size(), true);
  sim::GmemBuf wb(wt.data(), wt.size());
  sim::GmemBuf yb(y.data(), y.size());

  GammaConfig on = GammaConfig::make(8, 6, 3);
  GammaConfig off = on;
  off.swizzle_ds = false;
  off.pad_smem = false;

  GammaKernel kon(on, s, ConvDir::kForward, xb, wb, yb, 0, 12);
  GammaKernel koff(off, s, ConvDir::kForward, xb, wb, yb, 0, 12);
  const auto son = run_gamma(kon, /*counting=*/true);
  const auto soff = run_gamma(koff, /*counting=*/true);
  EXPECT_LT(son.smem_st_conflict_factor(), soff.smem_st_conflict_factor());
}

TEST(GammaSim, ZShapeReducesOuterProductConflicts) {
  ConvShape s;
  s.n = 1;
  s.ic = 8;
  s.oc = 64;
  s.fh = 3;
  s.fw = 3;
  s.ph = 1;
  s.pw = 1;
  s.ih = 6;
  s.iw = 12;
  s.validate();
  sim::GmemBuf xb(static_cast<float*>(nullptr), s.n * s.ih * s.iw * s.ic,
                  true);
  sim::GmemBuf wb(static_cast<float*>(nullptr), s.oc * 9 * s.ic);
  sim::GmemBuf yb(static_cast<float*>(nullptr), s.n * s.oh() * s.ow() * s.oc);

  GammaConfig zon = GammaConfig::make(8, 6, 3);
  GammaConfig zoff = zon;
  zoff.zshape_lanes = false;

  GammaKernel kon(zon, s, ConvDir::kForward, xb, wb, yb, 0, 12);
  GammaKernel koff(zoff, s, ConvDir::kForward, xb, wb, yb, 0, 12);
  const auto son = run_gamma(kon, true);
  const auto soff = run_gamma(koff, true);
  EXPECT_LT(son.smem_ld_passes, soff.smem_ld_passes);
}

TEST(GammaSim, XLoadsAreWellCoalescedInNhwc) {
  // The core §3 claim: 1-D tiles + channel-adjacent warps keep NHWC loads
  // coalesced. Require ≥ 50% load efficiency at IC = 8.
  ConvShape s;
  s.n = 1;
  s.ic = 8;
  s.oc = 64;
  s.fh = 3;
  s.fw = 3;
  s.ph = 1;
  s.pw = 1;
  s.ih = 8;
  s.iw = 24;
  s.validate();
  sim::GmemBuf xb(static_cast<float*>(nullptr), s.n * s.ih * s.iw * s.ic,
                  true);
  sim::GmemBuf wb(static_cast<float*>(nullptr), s.oc * 9 * s.ic);
  sim::GmemBuf yb(static_cast<float*>(nullptr), s.n * s.oh() * s.ow() * s.oc);
  GammaKernel k(GammaConfig::make(8, 6, 3), s, ConvDir::kForward, xb, wb, yb,
                0, 24);
  const auto st = run_gamma(k, true);
  // The aggregate includes the strided filter loads, which at IC = 8 weigh
  // as much as the (fully coalesced) input loads; 40% overall still implies
  // near-perfect X-load coalescing.
  EXPECT_GT(st.gld_efficiency(), 0.40);
}

// ---------------------------------------------------------------------------

TEST(GemmSim, NhwcMatchesDirect) {
  ConvShape s;
  s.n = 2;
  s.ic = 5;
  s.oc = 9;
  s.fh = 3;
  s.fw = 3;
  s.ph = 1;
  s.pw = 1;
  s.ih = 6;
  s.iw = 7;
  s.validate();
  const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 61);
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 62);
  const TensorF want = ref::conv2d_direct(x, w, s);

  const TensorF wg = precompute_gemm_filter(w, GemmLayout::kNHWC);
  TensorF y({s.n, s.oh(), s.ow(), s.oc});
  sim::GmemBuf xb(x.data(), x.size(), true);
  sim::GmemBuf wb(wg.data(), wg.size());
  sim::GmemBuf yb(y.data(), y.size());
  ImplicitGemmKernel k(s, GemmLayout::kNHWC, xb, wb, yb, 0, s.ow());
  sim::launch_all(k, k.grid());
  EXPECT_LT(max_rel_diff(y, want), 1e-5);
}

TEST(GemmSim, NchwMatchesDirect) {
  ConvShape s;
  s.n = 1;
  s.ic = 4;
  s.oc = 6;
  s.fh = 5;
  s.fw = 5;
  s.ph = 2;
  s.pw = 2;
  s.ih = 7;
  s.iw = 9;
  s.validate();
  Rng rng(71);
  TensorF x({s.n, s.ih, s.iw, s.ic});
  x.fill_uniform(rng, -1.0f, 1.0f);
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 72);
  const TensorF want_nhwc = ref::conv2d_direct(x, w, s);

  const TensorF xn = nhwc_to_nchw(x);
  const TensorF wg = precompute_gemm_filter(w, GemmLayout::kNCHW);
  TensorF y({s.n, s.oc, s.oh(), s.ow()});
  sim::GmemBuf xb(xn.data(), xn.size(), true);
  sim::GmemBuf wb(wg.data(), wg.size());
  sim::GmemBuf yb(y.data(), y.size());
  ImplicitGemmKernel k(s, GemmLayout::kNCHW, xb, wb, yb, 0, s.ow());
  sim::launch_all(k, k.grid());
  const TensorF got = nchw_to_nhwc(y);
  EXPECT_LT(max_rel_diff(got, want_nhwc), 1e-5);
}

TEST(GemmSim, SegmentedExecutionMatchesFull) {
  ConvShape s;
  s.n = 1;
  s.ic = 3;
  s.oc = 4;
  s.fh = 3;
  s.fw = 3;
  s.ph = 1;
  s.pw = 1;
  s.ih = 5;
  s.iw = 9;
  s.validate();
  const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 81);
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 82);
  const TensorF wg = precompute_gemm_filter(w, GemmLayout::kNHWC);
  sim::GmemBuf xb(x.data(), x.size(), true);
  sim::GmemBuf wb(wg.data(), wg.size());

  TensorF y({s.n, s.oh(), s.ow(), s.oc});
  sim::GmemBuf yb(y.data(), y.size());
  for (auto [start, len] : {std::pair<std::int64_t, std::int64_t>{0, 4},
                            {4, 3},
                            {7, 2}}) {
    ImplicitGemmKernel k(s, GemmLayout::kNHWC, xb, wb, yb, start, len);
    sim::launch_all(k, k.grid());
  }
  EXPECT_LT(max_rel_diff(y, ref::conv2d_direct(x, w, s)), 1e-5);
}

}  // namespace
}  // namespace iwg::core
