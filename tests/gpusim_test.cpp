// Unit tests of the SIMT execution model: phases/barriers, SMEM allocation
// and aliasing, the coalescing analyzer, the bank-conflict analyzer, the
// occupancy calculator, and sampled-launch extrapolation.
#include <gtest/gtest.h>

#include <vector>

#include "gpusim/perf_model.hpp"
#include "gpusim/sim.hpp"

namespace iwg::sim {
namespace {

/// Minimal kernel scaffold for analyzer tests.
class TestKernel : public Kernel {
 public:
  explicit TestKernel(std::function<void(Block&)> body, Dim3 bd = {32, 1, 1})
      : body_(std::move(body)), bd_(bd) {}
  std::string name() const override { return "test"; }
  Dim3 block_dim() const override { return bd_; }
  std::int64_t smem_bytes() const override { return 16384; }
  int regs_per_thread() const override { return 32; }
  void run_block(Block& blk) const override { body_(blk); }

 private:
  std::function<void(Block&)> body_;
  Dim3 bd_;
};

TEST(GpuSim, PhaseRunsEveryThreadOnce) {
  std::vector<int> hits(64, 0);
  TestKernel k(
      [&](Block& blk) {
        blk.phase([&](Thread& t) { hits[static_cast<std::size_t>(t.flat)]++; });
      },
      {16, 4, 1});
  launch_all(k, {1, 1, 1});
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(GpuSim, ThreadIndexing) {
  TestKernel k(
      [&](Block& blk) {
        blk.phase([&](Thread& t) {
          EXPECT_EQ(t.flat, t.ty * 16 + t.tx);
          EXPECT_EQ(t.lane, t.flat % 32);
          EXPECT_EQ(t.warp, t.flat / 32);
        });
      },
      {16, 16, 1});
  launch_all(k, {1, 1, 1});
}

TEST(GpuSim, SmemPersistsAcrossPhasesAndZeroInitialized) {
  TestKernel k([&](Block& blk) {
    Smem s = blk.smem("buf", 64);
    blk.phase([&](Thread& t) {
      EXPECT_EQ(s[t.flat], 0.0f);
      s[t.flat] = static_cast<float>(t.flat);
    });
    blk.phase([&](Thread& t) {
      const float want = static_cast<float>((t.flat + 1) % 32);
      EXPECT_EQ(s[(t.flat + 1) % 32], want);
    });
  });
  launch_all(k, {1, 1, 1});
}

TEST(GpuSim, SmemReuseAliasesStorage) {
  TestKernel k([&](Block& blk) {
    Smem a = blk.smem("A", 32);
    blk.smem("B", 32);
    blk.phase([&](Thread& t) { a[t.flat] = 7.0f; });
    blk.smem_reuse_from("A");
    Smem c = blk.smem("C", 16);
    blk.phase([&](Thread& t) {
      if (t.flat < 16) {
        EXPECT_EQ(c[t.flat], 7.0f);  // aliases A
      }
    });
  });
  launch_all(k, {1, 1, 1});
}

TEST(GpuSim, SmemOverflowThrows) {
  TestKernel k([&](Block& blk) { blk.smem("big", 5000); });
  EXPECT_THROW(launch_all(k, {1, 1, 1}), Error);
}

TEST(GpuSim, GmemClampZeroSemantics) {
  std::vector<float> data = {1.0f, 2.0f};
  GmemBuf tex(data.data(), 2, /*clamp_zero=*/true);
  GmemBuf strict(data.data(), 2);
  EXPECT_EQ(tex.load(-1), 0.0f);
  EXPECT_EQ(tex.load(5), 0.0f);
  EXPECT_EQ(tex.load(1), 2.0f);
  EXPECT_EQ(strict.load(0), 1.0f);
  EXPECT_THROW(strict.load(2), Error);
}

TEST(GpuSim, AddressOnlyBufferLoadsZeroAndAcceptsStores) {
  GmemBuf b(static_cast<float*>(nullptr), 100);
  EXPECT_EQ(b.load(50), 0.0f);
  b.store(50, 3.0f);  // no crash, no effect
}

TEST(GpuSim, CoalescedLoadIsOneSectorPerEightLanes) {
  // 32 lanes load 32 consecutive floats = 128 bytes = 4 sectors.
  std::vector<float> data(64, 1.0f);
  GmemBuf buf(data.data(), 64);
  TestKernel k([&](Block& blk) {
    blk.phase([&](Thread& t) { t.ldg(buf, t.flat, /*site=*/0); });
  });
  const LaunchStats s = launch_all(k, {1, 1, 1}, /*counting=*/true);
  EXPECT_EQ(s.gld_requests, 1);
  EXPECT_EQ(s.gld_sectors, 4);
  EXPECT_DOUBLE_EQ(s.gld_efficiency(), 1.0);
}

TEST(GpuSim, StridedLoadWastesSectors) {
  // Stride-8 floats: every lane lands in its own 32-byte sector.
  std::vector<float> data(512, 1.0f);
  GmemBuf buf(data.data(), 512);
  TestKernel k([&](Block& blk) {
    blk.phase([&](Thread& t) { t.ldg(buf, t.flat * 8, 0); });
  });
  const LaunchStats s = launch_all(k, {1, 1, 1}, true);
  EXPECT_EQ(s.gld_sectors, 32);
  EXPECT_NEAR(s.gld_efficiency(), 0.125, 1e-9);
}

TEST(GpuSim, BroadcastLoadIsOneSector) {
  std::vector<float> data(8, 1.0f);
  GmemBuf buf(data.data(), 8);
  TestKernel k([&](Block& blk) {
    blk.phase([&](Thread& t) { t.ldg(buf, 3, 0); });
  });
  const LaunchStats s = launch_all(k, {1, 1, 1}, true);
  EXPECT_EQ(s.gld_sectors, 1);
}

TEST(GpuSim, SmemConflictFreeScalarAccess) {
  TestKernel k([&](Block& blk) {
    Smem s = blk.smem("s", 64);
    blk.phase([&](Thread& t) { t.lds(s, t.flat, 0); });
  });
  const LaunchStats st = launch_all(k, {1, 1, 1}, true);
  EXPECT_EQ(st.smem_ld_requests, 1);
  EXPECT_EQ(st.smem_ld_passes, 1);
  EXPECT_DOUBLE_EQ(st.smem_ld_conflict_factor(), 1.0);
}

TEST(GpuSim, SmemStride32IsFullConflict) {
  // All 32 lanes hit bank 0 with distinct words → 32 passes.
  TestKernel k([&](Block& blk) {
    Smem s = blk.smem("s", 32 * 32);
    blk.phase([&](Thread& t) { t.lds(s, t.flat * 32, 0); });
  });
  const LaunchStats st = launch_all(k, {1, 1, 1}, true);
  EXPECT_EQ(st.smem_ld_passes, 32);
  EXPECT_DOUBLE_EQ(st.smem_ld_conflict_factor(), 32.0);
}

TEST(GpuSim, SmemBroadcastIsOnePass) {
  TestKernel k([&](Block& blk) {
    Smem s = blk.smem("s", 32);
    blk.phase([&](Thread& t) { t.lds(s, 5, 0); });
  });
  const LaunchStats st = launch_all(k, {1, 1, 1}, true);
  EXPECT_EQ(st.smem_ld_passes, 1);
}

TEST(GpuSim, Smem128BitQuarterWarpRule) {
  // 32 lanes × 16 B contiguous: four quarter-warp transactions, no
  // conflicts → 4 passes, factor 1.
  TestKernel k([&](Block& blk) {
    Smem s = blk.smem("s", 32 * 4);
    blk.phase([&](Thread& t) {
      float v[4];
      t.lds128(s, t.flat * 4, v, 0);
    });
  });
  const LaunchStats st = launch_all(k, {1, 1, 1}, true);
  EXPECT_EQ(st.smem_ld_passes, 4);
  EXPECT_DOUBLE_EQ(st.smem_ld_conflict_factor(), 1.0);
}

TEST(GpuSim, Smem128BitConflictWithinQuarter) {
  // Lanes in a quarter-warp 32 words apart → every lane's 4 words collide
  // bank-wise with the other lanes' → 8 passes per quarter.
  TestKernel k([&](Block& blk) {
    Smem s = blk.smem("s", 32 * 32 + 4);
    blk.phase([&](Thread& t) {
      float v[4];
      t.lds128(s, t.flat * 32, v, 0);
    });
  });
  const LaunchStats st = launch_all(k, {1, 1, 1}, true);
  EXPECT_GT(st.smem_ld_conflict_factor(), 4.0);
}

TEST(GpuSim, FmaAndAluCounted) {
  TestKernel k([&](Block& blk) {
    blk.phase([&](Thread& t) {
      t.count_fma(10);
      t.count_alu(3);
    });
  });
  const LaunchStats st = launch_all(k, {2, 1, 1}, true);
  EXPECT_EQ(st.fma, 2 * 32 * 10);
  EXPECT_EQ(st.alu, 2 * 32 * 3);
}

TEST(GpuSim, BarriersCounted) {
  TestKernel k([&](Block& blk) {
    blk.phase([](Thread&) {});
    blk.phase([](Thread&) {});
    blk.phase([](Thread&) {});
  });
  const LaunchStats st = launch_all(k, {1, 1, 1}, true);
  EXPECT_EQ(st.barriers, 3);
}

TEST(GpuSim, SampleExtrapolatesToFullGrid) {
  TestKernel k([&](Block& blk) {
    blk.phase([&](Thread& t) { t.count_fma(5); });
  });
  const LaunchStats full = launch_all(k, {64, 1, 1}, true);
  const LaunchStats sampled = launch_sample(k, {64, 1, 1}, 4);
  EXPECT_EQ(sampled.fma, full.fma);
  EXPECT_EQ(sampled.blocks, 64);
}

TEST(GpuSim, GridIterationCoversAllBlocks) {
  std::vector<int> seen(2 * 3 * 4, 0);
  std::mutex mu;
  TestKernel k([&](Block& blk) {
    std::lock_guard lock(mu);
    seen[static_cast<std::size_t>(
        (blk.block_idx().z * 3 + blk.block_idx().y) * 2 + blk.block_idx().x)]++;
  });
  launch_all(k, {2, 3, 4});
  for (int v : seen) EXPECT_EQ(v, 1);
}

// ---------------------------------------------------------------------------

TEST(Occupancy, SmemLimited) {
  const DeviceProfile dev = DeviceProfile::rtx3060ti();
  // Γ8's 48 KiB per block: two blocks fit in 100 KiB.
  const Occupancy occ = compute_occupancy(dev, 256, 49152, 100);
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_EQ(occ.active_warps, 16);
}

TEST(Occupancy, ThreadLimited) {
  const DeviceProfile dev = DeviceProfile::rtx3060ti();
  const Occupancy occ = compute_occupancy(dev, 1024, 1024, 32);
  EXPECT_EQ(occ.blocks_per_sm, 1);  // 1536/1024
  EXPECT_STREQ(occ.limiter, "threads");
}

TEST(Occupancy, RegisterLimited) {
  const DeviceProfile dev = DeviceProfile::rtx3060ti();
  const Occupancy occ = compute_occupancy(dev, 256, 1024, 250);
  EXPECT_EQ(occ.blocks_per_sm, 1);  // 65536 / (250·256)
}

TEST(PerfModel, ComputeBoundKernel) {
  const DeviceProfile dev = DeviceProfile::rtx3060ti();
  PerfInput in;
  in.stats.fma = static_cast<std::int64_t>(1e10);
  in.grid_blocks = 10000;
  in.threads_per_block = 256;
  in.smem_per_block = 24576;
  in.regs_per_thread = 100;
  in.conv_flops = 2e10;
  in.footprint_bytes = 1e6;
  const PerfEstimate e = estimate_perf(dev, in);
  EXPECT_STREQ(e.bound, "compute");
  EXPECT_GT(e.gflops, 0.0);
  // Effective rate cannot exceed peak × (conv_flops / (2·fma)).
  EXPECT_LT(e.gflops, dev.peak_gflops() * 1.01);
}

TEST(PerfModel, DramBoundKernel) {
  const DeviceProfile dev = DeviceProfile::rtx3060ti();
  PerfInput in;
  in.stats.fma = 1000;
  in.stats.gld_sectors = static_cast<std::int64_t>(1e9);  // 32 GB traffic
  in.grid_blocks = 100000;
  in.threads_per_block = 256;
  in.smem_per_block = 16384;
  in.regs_per_thread = 64;
  in.conv_flops = 1e9;
  in.footprint_bytes = 32e9;
  const PerfEstimate e = estimate_perf(dev, in);
  EXPECT_STREQ(e.bound, "dram");
  EXPECT_GE(e.time_s, 32e9 / (dev.dram_bw_gbps * 1e9) * 0.99);
}

TEST(PerfModel, L2ReuseReducesDramTraffic) {
  const DeviceProfile dev = DeviceProfile::rtx3060ti();
  PerfInput in;
  in.stats.gld_sectors = static_cast<std::int64_t>(1e8);  // 3.2 GB of loads
  in.grid_blocks = 1000;
  in.threads_per_block = 256;
  in.smem_per_block = 16384;
  in.regs_per_thread = 64;
  in.conv_flops = 1e9;
  in.footprint_bytes = 1e6;  // tiny footprint → L2 absorbs the reuse
  const PerfEstimate e = estimate_perf(dev, in);
  EXPECT_LT(e.dram_bytes, 3.2e9 * 0.5);
}

TEST(PerfModel, DeviceProfilesSane) {
  const DeviceProfile a = DeviceProfile::rtx3060ti();
  const DeviceProfile b = DeviceProfile::rtx4090();
  EXPECT_NEAR(a.peak_gflops(), 16200, 300);   // 16.2 TFLOPS
  EXPECT_NEAR(b.peak_gflops(), 82600, 2000);  // 82.6 TFLOPS
  EXPECT_GT(b.dram_bw_gbps, a.dram_bw_gbps);
  EXPECT_GT(b.l2_bytes, a.l2_bytes);
}

}  // namespace
}  // namespace iwg::sim
