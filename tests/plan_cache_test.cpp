// PlanCache tests: struct keys (incl. the samples-fidelity regression),
// LRU eviction order, stats consistency under concurrent hammering from the
// global thread pool, and the plan-DB serialize → clear → load round trip
// that powers the "find once, deploy many" flow.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <locale>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/plan_cache.hpp"

namespace iwg::core {
namespace {

ConvShape small_shape(int r, std::int64_t ow, std::int64_t channels) {
  ConvShape s;
  s.n = 1;
  s.fh = r;
  s.fw = r;
  s.ih = r;
  s.iw = ow + r - 1;
  s.ic = channels;
  s.oc = channels;
  s.validate();
  return s;
}

/// A synthetic choice whose contents encode `tag` (cheap cache payloads for
/// tests that exercise cache mechanics rather than tuning).
AlgoChoice fake_choice(int tag) {
  AlgoChoice c;
  c.use_winograd = false;
  c.est_gflops = 100.0 + tag;
  c.description = "fake " + std::to_string(tag);
  return c;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(PlanCache, SamplesFidelityIsPartOfTheKey) {
  // Regression: the old string-keyed cache ignored `samples`, so a
  // samples=1 answer was served to samples=16 callers.
  PlanCache cache(/*capacity=*/8, /*num_shards=*/1);
  const ConvShape s = small_shape(3, 18, 16);
  const auto dev = sim::DeviceProfile::rtx3060ti();
  cache.get_or_tune(s, dev, /*samples=*/1);
  cache.get_or_tune(s, dev, /*samples=*/16);
  const auto st = cache.stats();
  EXPECT_EQ(st.lookups, 2);
  EXPECT_EQ(st.hits, 0);
  EXPECT_EQ(st.misses, 2);
  EXPECT_EQ(cache.size(), 2);  // two distinct entries, not one
  // And each fidelity now hits its own entry.
  cache.get_or_tune(s, dev, /*samples=*/1);
  cache.get_or_tune(s, dev, /*samples=*/16);
  EXPECT_EQ(cache.stats().hits, 2);
}

TEST(PlanCache, LruEvictionOrder) {
  PlanCache cache(/*capacity=*/2, /*num_shards=*/1);
  const PlanKey a{small_shape(3, 12, 8), "dev", 4};
  const PlanKey b{small_shape(3, 18, 8), "dev", 4};
  const PlanKey c{small_shape(3, 24, 8), "dev", 4};
  cache.insert(a, fake_choice(1));
  cache.insert(b, fake_choice(2));
  EXPECT_TRUE(cache.lookup(a).has_value());  // refresh a: LRU order is now b,a
  cache.insert(c, fake_choice(3));           // evicts b (the LRU tail)
  EXPECT_FALSE(cache.lookup(b).has_value());
  ASSERT_TRUE(cache.lookup(a).has_value());
  ASSERT_TRUE(cache.lookup(c).has_value());
  EXPECT_EQ(cache.lookup(a)->description, "fake 1");
  EXPECT_EQ(cache.lookup(c)->description, "fake 3");
  const auto st = cache.stats();
  EXPECT_EQ(st.evictions, 1);
  EXPECT_EQ(st.entries, 2);
  EXPECT_EQ(st.lookups, st.hits + st.misses);
}

TEST(PlanCache, InsertRefreshesExistingKeyWithoutEviction) {
  PlanCache cache(/*capacity=*/2, /*num_shards=*/1);
  const PlanKey a{small_shape(3, 12, 8), "dev", 4};
  cache.insert(a, fake_choice(1));
  cache.insert(a, fake_choice(2));
  EXPECT_EQ(cache.size(), 1);
  EXPECT_EQ(cache.stats().evictions, 0);
  EXPECT_EQ(cache.lookup(a)->description, "fake 2");
}

TEST(PlanCache, ConcurrentHammeringKeepsStatsExactlyConsistent) {
  // Hammer one cache from the global pool with overlapping shapes: tuning
  // happens outside the shard locks (so pool workers tuning concurrently
  // cannot deadlock the nested parallel_for in the profiler) and every
  // counter update is mutexed, so hits + misses == lookups must hold
  // exactly, and the entry count must never exceed capacity.
  PlanCache cache(/*capacity=*/6, /*num_shards=*/2);
  const auto dev = sim::DeviceProfile::rtx3060ti();
  std::vector<ConvShape> shapes;
  for (int i = 0; i < 8; ++i) {
    shapes.push_back(small_shape(2 + i % 4, 12 + 6 * (i / 4), 8));
  }
  const int kOps = 96;
  std::atomic<int> executed{0};
  ThreadPool::global().parallel_for(kOps, [&](std::int64_t i) {
    const ConvShape& s = shapes[static_cast<std::size_t>(i) % shapes.size()];
    const auto choice =
        cache.get_or_tune(s, dev, /*samples=*/1, TuningBudget{2});
    ASSERT_FALSE(choice.executable_plan(s).empty());
    executed.fetch_add(1);
  });
  EXPECT_EQ(executed.load(), kOps);
  const auto st = cache.stats();
  EXPECT_EQ(st.lookups, kOps);
  EXPECT_EQ(st.hits + st.misses, st.lookups);
  EXPECT_GE(st.misses, 8);  // every distinct key missed at least once
  EXPECT_LE(st.entries, 6);
  EXPECT_GT(st.tuning_time_s, 0.0);
}

TEST(PlanCache, SerializeClearLoadRoundTripIsByteIdentical) {
  PlanCache cache(/*capacity=*/32, /*num_shards=*/4);
  const auto dev = sim::DeviceProfile::rtx3060ti();
  std::vector<ConvShape> shapes = {small_shape(3, 20, 16),
                                   small_shape(5, 18, 32),
                                   small_shape(7, 35, 64)};
  std::vector<AlgoChoice> tuned;
  for (const auto& s : shapes) {
    tuned.push_back(cache.get_or_tune(s, dev, /*samples=*/2));
  }

  const std::string path1 = testing::TempDir() + "plan_cache_rt1.plandb";
  const std::string path2 = testing::TempDir() + "plan_cache_rt2.plandb";
  EXPECT_EQ(cache.save(path1), 3);

  cache.clear();
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.load(path1), 3);

  // Loaded plans are byte-identical: every field round-trips (verified both
  // through AlgoChoice equality and by re-serializing to identical bytes).
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const auto got = cache.lookup(PlanKey{shapes[i], dev.name, 2});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, tuned[i]) << shapes[i].to_string();
  }
  EXPECT_EQ(cache.save(path2), 3);
  EXPECT_EQ(read_file(path1), read_file(path2));
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(PlanCache, LoadedPlanDbServesSecondRunWithFullHitsAndZeroTuning) {
  // The layer_sweep "find once, deploy many" flow: run 1 tunes and saves a
  // plan DB; run 2 (a fresh cache — a fresh process in real deployments)
  // loads it and must report 100% cache hits and zero tuning time.
  const auto dev = sim::DeviceProfile::rtx3060ti();
  std::vector<ConvShape> layers;
  for (std::int64_t hw : {16, 8}) {
    for (std::int64_t ch : {32, 64}) {
      layers.push_back(ConvShape::from_ofms(2, hw, hw, ch, 3));
    }
  }
  layers.push_back(ConvShape::from_ofms(2, 8, 8, 64, 7));

  const std::string db = testing::TempDir() + "plan_cache_sweep.plandb";
  {
    PlanCache first_run(64, 4);
    for (const auto& s : layers) first_run.get_or_tune(s, dev, 2);
    EXPECT_EQ(first_run.save(db), static_cast<std::int64_t>(layers.size()));
    EXPECT_GT(first_run.stats().tuning_time_s, 0.0);
  }
  PlanCache second_run(64, 4);
  second_run.load(db);
  for (const auto& s : layers) second_run.get_or_tune(s, dev, 2);
  const auto st = second_run.stats();
  EXPECT_EQ(st.lookups, static_cast<std::int64_t>(layers.size()));
  EXPECT_EQ(st.hits, st.lookups);  // 100% hits
  EXPECT_EQ(st.misses, 0);
  EXPECT_EQ(st.tuning_time_s, 0.0);  // no tuning on the deploy path
  std::remove(db.c_str());
}

/// A classic-derived locale whose only change is a ',' decimal point — what
/// de_DE-style locales do to numeric formatting, without needing any system
/// locale installed.
class CommaDecimalPoint : public std::numpunct<char> {
 protected:
  char do_decimal_point() const override { return ','; }
};

class ScopedGlobalLocale {
 public:
  explicit ScopedGlobalLocale(const std::locale& loc)
      : prev_(std::locale::global(loc)) {}
  ~ScopedGlobalLocale() { std::locale::global(prev_); }

 private:
  std::locale prev_;
};

TEST(PlanCache, PlanDbRoundTripSurvivesCommaDecimalGlobalLocale) {
  // Regression: the plan-DB streams used the global locale, so under a
  // comma-decimal locale format_double wrote "123,45" and load() stopped
  // parsing doubles at the comma. All plan-DB streams now imbue the classic
  // locale, making save/load locale-independent.
  PlanCache cache(8, 1);
  const auto dev = sim::DeviceProfile::rtx3060ti();
  const ConvShape s = small_shape(3, 20, 16);
  const auto tuned = cache.get_or_tune(s, dev, /*samples=*/2);

  const std::string classic_path = testing::TempDir() + "plandb_locale_c.db";
  const std::string comma_path = testing::TempDir() + "plandb_locale_de.db";
  EXPECT_EQ(cache.save(classic_path), 1);
  {
    ScopedGlobalLocale comma(
        std::locale(std::locale::classic(), new CommaDecimalPoint));
    EXPECT_EQ(cache.save(comma_path), 1);
    EXPECT_EQ(read_file(classic_path), read_file(comma_path));

    PlanCache loaded(8, 1);
    EXPECT_EQ(loaded.load(classic_path), 1);
    const auto got = loaded.lookup(PlanKey{s, dev.name, 2});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, tuned);
  }
  std::remove(classic_path.c_str());
  std::remove(comma_path.c_str());
}

TEST(PlanCache, LoadOfTruncatedDbIsAllOrNothing) {
  // Regression: load() used to insert entry-by-entry, so a DB truncated
  // mid-file left the cache holding the prefix. It must now stage the whole
  // parse and leave the cache exactly as it was on failure.
  const auto dev = sim::DeviceProfile::rtx3060ti();
  const ConvShape s1 = small_shape(3, 20, 16);
  const ConvShape s2 = small_shape(5, 18, 32);
  const std::string full = testing::TempDir() + "plandb_full.db";
  const std::string trunc = testing::TempDir() + "plandb_trunc.db";
  {
    PlanCache writer(8, 1);
    writer.get_or_tune(s1, dev, /*samples=*/2);
    writer.get_or_tune(s2, dev, /*samples=*/2);
    EXPECT_EQ(writer.save(full), 2);
  }
  // Cut just after the second "entry" marker: the first entry is complete
  // and parseable, the second is missing.
  const std::string bytes = read_file(full);
  const std::size_t first = bytes.find("\nentry\n");
  ASSERT_NE(first, std::string::npos);
  const std::size_t second = bytes.find("\nentry\n", first + 1);
  ASSERT_NE(second, std::string::npos);
  {
    std::ofstream out(trunc, std::ios::binary);
    out << bytes.substr(0, second + 7);
  }

  PlanCache cache(8, 1);
  const PlanKey sentinel{small_shape(2, 12, 8), "sentinel", 4};
  cache.insert(sentinel, fake_choice(7));
  EXPECT_THROW(cache.load(trunc), std::exception);
  EXPECT_EQ(cache.size(), 1);  // the fully-parsed first entry did NOT land
  EXPECT_FALSE(cache.lookup(PlanKey{s1, dev.name, 2}).has_value());
  EXPECT_FALSE(cache.lookup(PlanKey{s2, dev.name, 2}).has_value());
  EXPECT_TRUE(cache.lookup(sentinel).has_value());
  std::remove(full.c_str());
  std::remove(trunc.c_str());
}

TEST(PlanCache, LoadOfGarbageDbLeavesCacheUntouched) {
  const std::string path = testing::TempDir() + "plandb_garbage.db";
  {
    std::ofstream out(path);
    out << "IWGPLANDB v1\nentries 1\nentry\ndevice dev\nshape not numbers\n";
  }
  PlanCache cache(8, 1);
  const PlanKey sentinel{small_shape(2, 12, 8), "sentinel", 4};
  cache.insert(sentinel, fake_choice(9));
  EXPECT_THROW(cache.load(path), std::exception);
  EXPECT_EQ(cache.size(), 1);
  EXPECT_TRUE(cache.lookup(sentinel).has_value());
  std::remove(path.c_str());
}

TEST(PlanCache, LoadRejectsBadMagicAndTruncation) {
  const std::string path = testing::TempDir() + "plan_cache_bad.plandb";
  {
    std::ofstream out(path);
    out << "NOTAPLANDB v9\n";
  }
  PlanCache cache(8, 1);
  EXPECT_THROW(cache.load(path), std::exception);
  {
    std::ofstream out(path);
    out << "IWGPLANDB v1\nentries 2\nentry\n";  // truncated
  }
  EXPECT_THROW(cache.load(path), std::exception);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace iwg::core
