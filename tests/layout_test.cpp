#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/layout.hpp"

namespace iwg {
namespace {

TEST(Layout, NhwcNchwRoundTrip) {
  Rng rng(5);
  TensorF x({2, 3, 4, 5});
  x.fill_uniform(rng, -1.0f, 1.0f);
  const TensorF back = nchw_to_nhwc(nhwc_to_nchw(x));
  ASSERT_TRUE(back.same_shape(x));
  for (std::int64_t i = 0; i < x.size(); ++i) EXPECT_EQ(back[i], x[i]);
}

TEST(Layout, NhwcToNchwMapsIndices) {
  TensorF x({1, 2, 2, 3});
  for (std::int64_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  const TensorF y = nhwc_to_nchw(x);
  EXPECT_EQ(y.dim(1), 3);
  EXPECT_EQ(y.at(0, 0, 0, 0), x.at(0, 0, 0, 0));
  EXPECT_EQ(y.at(0, 2, 1, 1), x.at(0, 1, 1, 2));
  EXPECT_EQ(y.at(0, 1, 0, 1), x.at(0, 0, 1, 1));
}

TEST(Layout, FilterTransposeToFhwio) {
  TensorF w({2, 3, 3, 4});  // OC,FH,FW,IC
  for (std::int64_t i = 0; i < w.size(); ++i) w[i] = static_cast<float>(i);
  const TensorF t = transpose_filter_to_fhwio(w);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(3), 2);
  for (std::int64_t o = 0; o < 2; ++o)
    for (std::int64_t h = 0; h < 3; ++h)
      for (std::int64_t x = 0; x < 3; ++x)
        for (std::int64_t i = 0; i < 4; ++i)
          EXPECT_EQ(t.at(h, x, i, o), w.at(o, h, x, i));
}

TEST(Layout, FilterTransposeRot180) {
  TensorF w({1, 3, 3, 1});
  for (std::int64_t i = 0; i < 9; ++i) w[i] = static_cast<float>(i);
  const TensorF t = transpose_filter_to_fhwio_rot180(w);
  // Element (0,0) of the rotated filter is element (2,2) of the original.
  EXPECT_EQ(t.at(0, 0, 0, 0), w.at(0, 2, 2, 0));
  EXPECT_EQ(t.at(2, 2, 0, 0), w.at(0, 0, 0, 0));
  EXPECT_EQ(t.at(1, 1, 0, 0), w.at(0, 1, 1, 0));
  EXPECT_EQ(t.at(0, 2, 0, 0), w.at(0, 2, 0, 0));
}

TEST(Layout, DeconvFilterSwapsChannelsAndRotates) {
  TensorF w({2, 3, 3, 4});  // OC,FH,FW,IC
  Rng rng(9);
  w.fill_uniform(rng, -1.0f, 1.0f);
  const TensorF d = deconv_filter(w);
  EXPECT_EQ(d.dim(0), 4);  // IC becomes the output-channel axis
  EXPECT_EQ(d.dim(3), 2);
  for (std::int64_t o = 0; o < 2; ++o)
    for (std::int64_t h = 0; h < 3; ++h)
      for (std::int64_t x = 0; x < 3; ++x)
        for (std::int64_t i = 0; i < 4; ++i)
          EXPECT_EQ(d.at(i, 2 - h, 2 - x, o), w.at(o, h, x, i));
}

TEST(Layout, DoubleRotationIsIdentity) {
  TensorF w({2, 5, 5, 3});
  Rng rng(11);
  w.fill_uniform(rng, -1.0f, 1.0f);
  const TensorF once = transpose_filter_to_fhwio_rot180(w);
  const TensorF plain = transpose_filter_to_fhwio(w);
  // Rotating the rotated transposed filter recovers the plain transpose.
  for (std::int64_t h = 0; h < 5; ++h)
    for (std::int64_t x = 0; x < 5; ++x)
      for (std::int64_t i = 0; i < 3; ++i)
        for (std::int64_t o = 0; o < 2; ++o)
          EXPECT_EQ(once.at(4 - h, 4 - x, i, o), plain.at(h, x, i, o));
}

}  // namespace
}  // namespace iwg
