// Tests of the §4.2 N-D extension: 3-D Im2col-Winograd vs direct 3-D
// convolution across filter sizes, paddings, and boundary cases.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/conv3d.hpp"
#include "tensor/metrics.hpp"

namespace iwg::core {
namespace {

TensorF rand5(std::initializer_list<std::int64_t> dims, unsigned seed) {
  Rng rng(seed);
  TensorF t(dims);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

struct C3dCase {
  std::int64_t fw;
  std::int64_t iw;
  std::int64_t fd, fh;
  std::int64_t pad_w;
  const char* label;
};

class Conv3dSweep : public ::testing::TestWithParam<C3dCase> {};

TEST_P(Conv3dSweep, GammaMatchesDirect) {
  const C3dCase& c = GetParam();
  Conv3dShape s;
  s.n = 2;
  s.id = 4;
  s.ih = 5;
  s.iw = c.iw;
  s.ic = 3;
  s.oc = 4;
  s.fd = c.fd;
  s.fh = c.fh;
  s.fw = c.fw;
  s.pd = c.fd / 2;
  s.ph = c.fh / 2;
  s.pw = c.pad_w;
  s.validate();
  const TensorF x = rand5({s.n, s.id, s.ih, s.iw, s.ic}, 5);
  const TensorF w = rand5({s.oc, s.fd, s.fh, s.fw, s.ic}, 6);
  const TensorF want = conv3d_direct(x, w, s);
  const TensorF got = conv3d(x, w, s);
  ASSERT_TRUE(got.same_shape(want));
  const double tol = c.fw >= 8 ? 5e-3 : 2e-4;
  EXPECT_LT(max_rel_diff(got, want), tol) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Conv3dSweep,
    ::testing::Values(C3dCase{3, 13, 3, 3, 1, "f3_boundary"},
                      C3dCase{3, 12, 3, 3, 1, "f3_exact"},
                      C3dCase{2, 15, 2, 2, 0, "f2"},
                      C3dCase{5, 9, 3, 5, 2, "f5_mixed_dims"},
                      C3dCase{7, 8, 1, 1, 3, "f7_rod_filter"},
                      C3dCase{9, 16, 2, 3, 4, "f9_alpha16"}),
    [](const auto& info) { return info.param.label; });

TEST(Conv3d, OutputVolumeDims) {
  Conv3dShape s;
  s.n = 1;
  s.id = 6;
  s.ih = 7;
  s.iw = 8;
  s.ic = 2;
  s.oc = 3;
  s.fd = 3;
  s.fh = 3;
  s.fw = 3;
  s.pd = 0;
  s.ph = 1;
  s.pw = 1;
  s.validate();
  EXPECT_EQ(s.od(), 4);
  EXPECT_EQ(s.oh(), 7);
  EXPECT_EQ(s.ow(), 8);
}

TEST(Conv3d, DegeneratesToConv2dWhenDepthIsOne) {
  // fd = id = 1: the 3-D engine must agree with the 2-D direct reference.
  Conv3dShape s;
  s.n = 1;
  s.id = 1;
  s.ih = 6;
  s.iw = 12;
  s.ic = 3;
  s.oc = 4;
  s.fd = 1;
  s.fh = 3;
  s.fw = 3;
  s.pd = 0;
  s.ph = 1;
  s.pw = 1;
  s.validate();
  const TensorF x = rand5({1, 1, 6, 12, 3}, 7);
  const TensorF w = rand5({4, 1, 3, 3, 3}, 8);
  const TensorF got = conv3d(x, w, s);
  const TensorF want = conv3d_direct(x, w, s);
  EXPECT_LT(max_rel_diff(got, want), 1e-4);
}

TEST(Conv3d, LargeFilterWidthFallsBackToGemm) {
  Conv3dShape s;
  s.n = 1;
  s.id = 3;
  s.ih = 3;
  s.iw = 14;
  s.ic = 2;
  s.oc = 2;
  s.fd = 1;
  s.fh = 1;
  s.fw = 11;
  s.pd = 0;
  s.ph = 0;
  s.pw = 5;
  s.validate();
  const TensorF x = rand5({1, 3, 3, 14, 2}, 9);
  const TensorF w = rand5({2, 1, 1, 11, 2}, 10);
  EXPECT_LT(max_rel_diff(conv3d(x, w, s), conv3d_direct(x, w, s)), 1e-4);
}

TEST(Conv3d, RejectsBadShapes) {
  Conv3dShape s;
  s.iw = 2;
  s.fw = 5;
  EXPECT_THROW(s.validate(), Error);
}

}  // namespace
}  // namespace iwg::core
