// Per-ISA parity suite for the host-kernel dispatch table.
//
// Every table host_kernels_for() returns is checked against the scalar
// reference under the contract host_kernels.hpp states per entry point:
//   transform_cols               bitwise-identical FP32 (dense sums)
//   axpy_rank1 / axpy_rank1_multi
//   / saxpy / out_transform      ULP-bounded (FMA contraction allowed)
//   dot                          reassociated (per-lane partial sums)
// Inputs cover every α the paper supports (4..16), ragged tail lengths
// around the 4/8/16-lane block widths, unaligned NHWC base pointers, null
// (padding) rows, and zero matrix entries.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "core/conv_api.hpp"
#include "core/host_kernels.hpp"
#include "reference/direct_conv.hpp"
#include "tensor/metrics.hpp"
#include "winograd/plan.hpp"

namespace iwg::core {
namespace {

constexpr float kEps = std::numeric_limits<float>::epsilon();

// Channel counts straddling the lane-block boundaries (1×, 4×, 8×, 16×) so
// both the full-width vector body and the scalar ragged tail execute.
const std::int64_t kLaneCounts[] = {1, 3, 4, 5, 8, 9, 16, 17, 31, 32, 33};

std::vector<float> rand_buf(std::size_t n, unsigned seed, float lo = -1.0f,
                            float hi = 1.0f) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = rng.uniform(lo, hi);
  return v;
}

// The NHWC base pointers the engine hands these kernels are only
// float-aligned (interior arena ring slots, &x.at(n,h,w,0) at any w), so
// the suite deliberately runs everything one float off the allocator's
// natural alignment.
float* misalign(std::vector<float>& v) { return v.data() + 1; }

struct IsaRestore {
  HostIsa prev = host_isa();
  ~IsaRestore() { set_host_isa(prev); }
};

TEST(HostKernels, ScalarAlwaysAvailableAndFirst) {
  const auto avail = host_isa_available();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), HostIsa::kScalar);
  for (HostIsa isa : avail) {
    const HostKernels* t = host_kernels_for(isa);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->isa, isa);
    EXPECT_STREQ(t->name, host_isa_name(isa));
  }
}

TEST(HostKernels, ParseRoundTripsEveryName) {
  for (HostIsa isa : {HostIsa::kScalar, HostIsa::kAvx2, HostIsa::kNeon}) {
    const auto parsed = parse_host_isa(host_isa_name(isa));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, isa);
  }
  EXPECT_FALSE(parse_host_isa("native").has_value());
  EXPECT_FALSE(parse_host_isa("avx512").has_value());
  EXPECT_FALSE(parse_host_isa("").has_value());
}

TEST(HostKernels, SetHostIsaRejectsUnavailableAndKeepsSelection) {
  const IsaRestore restore;
  const auto avail = host_isa_available();
  for (HostIsa isa : avail) {
    ASSERT_TRUE(set_host_isa(isa));
    EXPECT_EQ(host_isa(), isa);
  }
  for (HostIsa isa : {HostIsa::kAvx2, HostIsa::kNeon}) {
    if (host_kernels_for(isa) != nullptr) continue;
    const HostIsa before = host_isa();
    EXPECT_FALSE(set_host_isa(isa));
    EXPECT_EQ(host_isa(), before);  // failed override leaves selection alone
  }
}

// --- transform_cols: BITWISE ------------------------------------------------

// Runs one (matrix, rows) case through `table` and the scalar reference and
// requires bit-identical output (memcmp, so ±0 and NaN patterns count too).
void check_transform_bitwise(const HostKernels& table, const float* m,
                             int rows_n, int cols, const float* const* rows,
                             std::int64_t nc, std::int64_t dst_stride) {
  const HostKernels& ref = detail::host_kernels_scalar();
  std::vector<float> got_buf(static_cast<std::size_t>(rows_n) * dst_stride + 1,
                             -7.5f);
  std::vector<float> want_buf(got_buf);
  table.transform_cols(m, rows_n, cols, rows, nc, misalign(got_buf),
                       dst_stride);
  ref.transform_cols(m, rows_n, cols, rows, nc, misalign(want_buf),
                     dst_stride);
  ASSERT_EQ(std::memcmp(got_buf.data(), want_buf.data(),
                        got_buf.size() * sizeof(float)),
            0);
}

TEST(HostKernels, TransformColsBitwiseAcrossAllAlphaAndTails) {
  for (HostIsa isa : host_isa_available()) {
    const HostKernels& table = *host_kernels_for(isa);
    SCOPED_TRACE(table.name);
    for (int alpha = 4; alpha <= 16; ++alpha) {
      // D^T (α×α, the input transform) and G (α×3, the filter transform):
      // the exact matrices the engine feeds this kernel, zeros included.
      const WinogradPlan& plan = get_plan(alpha - 2, 3);
      for (std::int64_t nc : kLaneCounts) {
        std::vector<float> src =
            rand_buf(static_cast<std::size_t>(alpha) * nc + 1,
                     1000u + static_cast<unsigned>(alpha * 100 + nc));
        const float* rows[16];
        for (int e = 0; e < alpha; ++e) rows[e] = misalign(src) + e * nc;
        // Null out two rows: the boundary-tile padding case.
        rows[0] = nullptr;
        rows[alpha - 1] = nullptr;
        check_transform_bitwise(table, plan.bt_f.data(), alpha, alpha, rows,
                                nc, nc);
        check_transform_bitwise(table, plan.bt_f.data(), alpha, alpha, rows,
                                nc, nc + 5);  // strided dst
        // Rectangular: G is α×3, only 3 source rows.
        const float* grows[3] = {misalign(src), nullptr, misalign(src) + nc};
        check_transform_bitwise(table, plan.g_f.data(), alpha, 3, grows, nc,
                                nc);
      }
    }
  }
}

TEST(HostKernels, TransformColsZeroCoefficientsBitwise) {
  // A matrix that is mostly zeros (including a negative zero): the dense
  // contract folds every term in, so ±0 coefficients must produce the same
  // signed-zero arithmetic in every table — memcmp catches a table that
  // "optimizes" them away and flips a -0.0f.
  const float m[8] = {0.0f, 2.5f, -0.0f, 0.0f, -1.25f, 0.0f, 0.0f, 3.0f};
  std::vector<float> src = rand_buf(4 * 33 + 1, 42);
  const float* rows[4];
  for (int e = 0; e < 4; ++e) rows[e] = misalign(src) + e * 33;
  for (HostIsa isa : host_isa_available()) {
    const HostKernels& table = *host_kernels_for(isa);
    SCOPED_TRACE(table.name);
    check_transform_bitwise(table, m, 2, 4, rows, 33, 33);
  }
}

TEST(HostKernels, TransformColsAllRowsNullWritesZeros) {
  // Dense semantics: every term is mᵢₑ·0.0f, so each output is a sum of
  // signed zeros — numerically zero whatever the signs. Bitwise parity with
  // the scalar reference is checked on top of the numeric expectation.
  const float* rows[4] = {nullptr, nullptr, nullptr, nullptr};
  const WinogradPlan& plan = get_plan(2, 3);
  for (HostIsa isa : host_isa_available()) {
    const HostKernels& table = *host_kernels_for(isa);
    SCOPED_TRACE(table.name);
    std::vector<float> dst(static_cast<std::size_t>(plan.alpha) * 17, -3.0f);
    table.transform_cols(plan.bt_f.data(), plan.alpha, plan.alpha, rows, 17,
                         dst.data(), 17);
    for (float v : dst) EXPECT_EQ(v, 0.0f);
    check_transform_bitwise(table, plan.bt_f.data(), plan.alpha, plan.alpha,
                            rows, 17, 17);
  }
}

// --- axpy_rank1 / saxpy / out_transform: ULP-BOUNDED ------------------------

// |simd − scalar| ≤ K·ε·Σ|terms|: the SIMD table may fuse each
// multiply-add, saving at most one rounding per term relative to the
// -ffp-contract=off scalar reference. The factor 4 is headroom for the
// accumulated-value magnitude exceeding the per-term sum.
void expect_ulp_close(float got, float want, double term_abs_sum, int terms) {
  const double tol = 4.0 * terms * kEps * (term_abs_sum + 1.0);
  EXPECT_NEAR(got, want, tol) << "term_abs_sum=" << term_abs_sum;
}

TEST(HostKernels, AxpyRank1UlpBoundedAcrossShapes) {
  const HostKernels& ref = detail::host_kernels_scalar();
  for (HostIsa isa : host_isa_available()) {
    const HostKernels& table = *host_kernels_for(isa);
    SCOPED_TRACE(table.name);
    for (std::int64_t kc : {1, 3, 4, 7, 9, 32}) {
      for (std::int64_t nj : kLaneCounts) {
        const unsigned seed = static_cast<unsigned>(3000 + kc * 64 + nj);
        std::vector<float> d = rand_buf(kc, seed);
        std::vector<float> g(static_cast<std::size_t>(kc) * nj + 1);
        {
          Rng rng(seed + 1);
          for (float& x : g) x = rng.uniform(-1.0f, 1.0f);
        }
        std::vector<float> got = rand_buf(nj + 1, seed + 2);
        std::vector<float> want(got);
        table.axpy_rank1(d.data(), misalign(g), misalign(got), kc, nj);
        ref.axpy_rank1(d.data(), misalign(g), misalign(want), kc, nj);
        for (std::int64_t j = 0; j < nj; ++j) {
          double terms = std::abs(want[j + 1]);
          for (std::int64_t k = 0; k < kc; ++k)
            terms += std::abs(static_cast<double>(d[k]) * g[k * nj + j + 1]);
          expect_ulp_close(got[j + 1], want[j + 1], terms,
                           static_cast<int>(kc));
        }
        EXPECT_EQ(got[0], want[0]);  // byte before the span untouched
      }
    }
  }
}

TEST(HostKernels, AxpyRank1MultiMatchesPerRowSemantics) {
  // The blocked kernel's contract is per-row axpy_rank1: same ascending-k
  // term order, null d rows skipped with their m row untouched. Row counts
  // 1..13 exercise the octet, quad, and leftover paths and their
  // combinations; the null rows sprinkled in force the compaction logic to
  // split around them.
  const HostKernels& ref = detail::host_kernels_scalar();
  for (HostIsa isa : host_isa_available()) {
    const HostKernels& table = *host_kernels_for(isa);
    SCOPED_TRACE(table.name);
    for (int rows = 1; rows <= 13; ++rows) {
      for (std::int64_t nj : kLaneCounts) {
        const std::int64_t kc = 9;
        const unsigned seed = static_cast<unsigned>(4000 + rows * 64 + nj);
        std::vector<float> g(static_cast<std::size_t>(kc) * nj + 1);
        {
          Rng rng(seed);
          for (float& v : g) v = rng.uniform(-1.0f, 1.0f);
        }
        std::vector<std::vector<float>> d(rows), got(rows), want(rows);
        const float* ds[13];
        float* got_ms[13];
        float* want_ms[13];
        for (int r = 0; r < rows; ++r) {
          d[r] = rand_buf(kc, seed + 10 + r);
          got[r] = rand_buf(nj + 1, seed + 20 + r);
          want[r] = got[r];
          // Every third row is a padding row: null d, m must not move.
          ds[r] = r % 3 == 2 ? nullptr : d[r].data();
          got_ms[r] = misalign(got[r]);
          want_ms[r] = misalign(want[r]);
        }
        table.axpy_rank1_multi(ds, misalign(g), got_ms, rows, kc, nj);
        ref.axpy_rank1_multi(ds, misalign(g), want_ms, rows, kc, nj);
        for (int r = 0; r < rows; ++r) {
          if (ds[r] == nullptr) {
            // Untouched bit for bit, including the guard float.
            ASSERT_EQ(std::memcmp(got[r].data(), want[r].data(),
                                  got[r].size() * sizeof(float)),
                      0);
            continue;
          }
          for (std::int64_t j = 0; j < nj; ++j) {
            double terms = std::abs(want[r][j + 1]);
            for (std::int64_t k = 0; k < kc; ++k)
              terms +=
                  std::abs(static_cast<double>(d[r][k]) * g[k * nj + j + 1]);
            expect_ulp_close(got[r][j + 1], want[r][j + 1], terms,
                             static_cast<int>(kc));
          }
          EXPECT_EQ(got[r][0], want[r][0]);
        }
      }
    }
  }
}

TEST(HostKernels, SaxpyUlpBounded) {
  const HostKernels& ref = detail::host_kernels_scalar();
  for (HostIsa isa : host_isa_available()) {
    const HostKernels& table = *host_kernels_for(isa);
    SCOPED_TRACE(table.name);
    for (std::int64_t n : kLaneCounts) {
      std::vector<float> x = rand_buf(n + 1, 500 + static_cast<unsigned>(n));
      std::vector<float> got = rand_buf(n + 1, 600 + static_cast<unsigned>(n));
      std::vector<float> want(got);
      const float a = -1.375f;
      table.saxpy(a, misalign(x), misalign(got), n);
      ref.saxpy(a, misalign(x), misalign(want), n);
      for (std::int64_t j = 1; j <= n; ++j) {
        expect_ulp_close(got[j], want[j],
                         std::abs(want[j]) + std::abs(a * x[j]), 1);
      }
    }
  }
}

TEST(HostKernels, OutTransformUlpBounded) {
  const HostKernels& ref = detail::host_kernels_scalar();
  for (HostIsa isa : host_isa_available()) {
    const HostKernels& table = *host_kernels_for(isa);
    SCOPED_TRACE(table.name);
    for (int alpha = 4; alpha <= 16; ++alpha) {
      const WinogradPlan& plan = get_plan(alpha - 2, 3);
      for (std::int64_t n : kLaneCounts) {
        std::vector<float> m =
            rand_buf(static_cast<std::size_t>(alpha) * (n + 3) + 1,
                     700 + static_cast<unsigned>(alpha * 37 + n));
        std::vector<float> got(n + 1, -9.0f);
        std::vector<float> want(n + 1, -9.0f);
        // Row 0 of A^T: contains both ±1 entries and (for larger α) zeros.
        const float* at_row = plan.at_f.data();
        table.out_transform(at_row, alpha, misalign(m), n + 3, misalign(got),
                            n);
        ref.out_transform(at_row, alpha, misalign(m), n + 3, misalign(want),
                          n);
        for (std::int64_t j = 1; j <= n; ++j) {
          double terms = 0.0;
          for (int t = 0; t < alpha; ++t)
            terms += std::abs(static_cast<double>(at_row[t]) *
                              m[static_cast<std::size_t>(t) * (n + 3) + j]);
          expect_ulp_close(got[j], want[j], terms, alpha);
        }
      }
    }
  }
}

// --- dot: REASSOCIATED ------------------------------------------------------

TEST(HostKernels, DotReassociationBounded) {
  const HostKernels& ref = detail::host_kernels_scalar();
  for (HostIsa isa : host_isa_available()) {
    const HostKernels& table = *host_kernels_for(isa);
    SCOPED_TRACE(table.name);
    for (std::int64_t n : {1, 2, 7, 8, 9, 63, 64, 65, 300, 1152}) {
      std::vector<float> a = rand_buf(n + 1, 900 + static_cast<unsigned>(n));
      std::vector<float> b = rand_buf(n + 1, 901 + static_cast<unsigned>(n));
      const float got = table.dot(misalign(a), misalign(b), n);
      const float want = ref.dot(misalign(a), misalign(b), n);
      double abs_sum = 0.0;
      for (std::int64_t j = 1; j <= n; ++j)
        abs_sum += std::abs(static_cast<double>(a[j]) * b[j]);
      // Reassociation changes the summation tree entirely: bound by the
      // classic n·ε·Σ|aᵢ·bᵢ| forward-error envelope on both sides.
      EXPECT_NEAR(got, want, 4.0 * static_cast<double>(n) * kEps * abs_sum +
                                 1e-12);
    }
  }
}

TEST(HostKernels, DotIsDeterministicPerTable) {
  for (HostIsa isa : host_isa_available()) {
    const HostKernels& table = *host_kernels_for(isa);
    std::vector<float> a = rand_buf(1000, 77);
    std::vector<float> b = rand_buf(1000, 78);
    const float first = table.dot(a.data(), b.data(), 999);
    for (int rep = 0; rep < 3; ++rep)
      EXPECT_EQ(table.dot(a.data(), b.data(), 999), first) << table.name;
  }
}

// --- full-convolution cross-ISA agreement -----------------------------------

TensorF rand_tensor(std::initializer_list<std::int64_t> dims, unsigned seed) {
  Rng rng(seed);
  TensorF t(dims);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

// Routing a whole convolution through each table must agree with the scalar
// engine to within Winograd error amplification (not bitwise: the ULP and
// reassociated kernels sit inside the transform sandwich).
TEST(HostKernels, FullConvolutionAgreesAcrossIsas) {
  const IsaRestore restore;
  struct Case {
    int n, ih, iw, ic, oc, f, p;
  };
  // Odd channel counts exercise ragged lanes; iw=13 with f=5 leaves a GEMM
  // tail segment in the boundary plan.
  const Case cases[] = {
      {1, 9, 9, 3, 5, 3, 1}, {2, 12, 13, 5, 4, 5, 2}, {1, 8, 8, 16, 8, 3, 0}};
  for (const Case& c : cases) {
    ConvShape s;
    s.n = c.n;
    s.ih = c.ih;
    s.iw = c.iw;
    s.ic = c.ic;
    s.oc = c.oc;
    s.fh = s.fw = c.f;
    s.ph = s.pw = c.p;
    s.validate();
    const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic},
                                  2000u + static_cast<unsigned>(c.f));
    const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic},
                                  2001u + static_cast<unsigned>(c.f));
    ASSERT_TRUE(set_host_isa(HostIsa::kScalar));
    const TensorF base = conv2d(x, w, s);
    const TensorD truth = ref::conv2d_direct_fp64(x, w, s);
    EXPECT_LT(average_relative_error(base, truth), 1e-4);
    for (HostIsa isa : host_isa_available()) {
      if (isa == HostIsa::kScalar) continue;
      ASSERT_TRUE(set_host_isa(isa));
      const TensorF out = conv2d(x, w, s);
      EXPECT_LT(max_rel_diff(out, base), 5e-4)
          << host_isa_name(isa) << " f" << c.f;
      EXPECT_LT(average_relative_error(out, truth), 1e-4)
          << host_isa_name(isa) << " f" << c.f;
    }
  }
}

}  // namespace
}  // namespace iwg::core
