// Measured-vs-analytic validation of the SIMT simulator's bank-conflict
// counters on the Γ kernel (§5.2 of the paper).
//
// The simulator *measures* shared-memory conflict passes by replaying each
// warp's executed accesses; core/conflict_model *predicts* them from the
// GammaConfig index formulas alone. Both price requests with the same
// sim::smem_request_cost rule, so per-site conflict factors must agree
// exactly — and they must reproduce the paper's claims: the unswizzled Γ8
// Ds staging store is 8-way conflicted (padding cannot fix it: the Xk row
// stride 8·36 words ≡ 0 mod 32 banks), the (Xi + 4·Xk) % BM swizzle makes
// it conflict-free, and the Figure-4 Z-shaped lane arrangement keeps the
// outer-product loads clean in both variants.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/conflict_model.hpp"
#include "core/conv_api.hpp"
#include "core/gamma_kernel.hpp"
#include "gpusim/sim.hpp"

namespace iwg {
namespace {

using core::GammaConfig;
using core::GammaKernel;

// Single-block Γ8 geometry: OC = BN = 64 and N·OH·tiles_w = BM = 32 tiles,
// so the launch is exactly one block and the measured counters are exact
// (no sampling, no partially-filled blocks).
ConvShape single_block_shape(const GammaConfig& cfg) {
  ConvShape s;
  s.n = 1;
  s.ic = cfg.bk;  // one IC chunk per filter row
  s.oc = cfg.bn;
  s.fh = 3;
  s.fw = cfg.r;
  s.ph = 1;
  s.pw = (cfg.r - 1) / 2;
  s.ih = cfg.bm / 4;                  // OH = IH with this padding
  s.iw = 4 * cfg.n + (cfg.r - 1) - 2 * s.pw;  // tiles_w = 4
  s.validate();
  EXPECT_EQ(s.oh() * s.ow() / cfg.n, cfg.bm);
  return s;
}

sim::LaunchStats measure(const GammaConfig& cfg) {
  const ConvShape s = single_block_shape(cfg);
  sim::GmemBuf x(static_cast<float*>(nullptr), s.n * s.ih * s.iw * s.ic,
                 /*clamp_zero=*/true);
  sim::GmemBuf w(static_cast<float*>(nullptr), s.oc * s.fh * s.fw * s.ic);
  sim::GmemBuf y(static_cast<float*>(nullptr), s.n * s.oh() * s.ow() * s.oc);
  GammaKernel k(cfg, s, core::ConvDir::kForward, x, w, y, 0, s.ow());
  EXPECT_EQ(k.grid().count(), 1);
  return run_gamma(k, /*counting=*/true);
}

TEST(SimCounters, MeasuredMatchesAnalyticOnSwizzledGamma8) {
  const GammaConfig cfg = GammaConfig::make(8, 6, 3);
  ASSERT_TRUE(cfg.swizzle_ds);  // make() swizzles α = 8 (§5.2)
  const sim::LaunchStats st = measure(cfg);
  const core::GammaConflictPrediction pred =
      core::predict_gamma_conflicts(cfg);

  EXPECT_DOUBLE_EQ(st.site_st_conflict_factor(core::kSiteDsSt),
                   pred.ds_store.conflict_factor());
  EXPECT_DOUBLE_EQ(st.site_st_conflict_factor(core::kSiteGsSt),
                   pred.gs_store.conflict_factor());
  EXPECT_DOUBLE_EQ(st.site_ld_conflict_factor(core::kSiteDsLd),
                   pred.ds_load.conflict_factor());
  EXPECT_DOUBLE_EQ(st.site_ld_conflict_factor(core::kSiteGsLd),
                   pred.gs_load.conflict_factor());

  // The paper's claim in numbers: the swizzle eliminates the Ds-store
  // conflicts, and the Z-shaped lanes keep the operand loads clean.
  EXPECT_DOUBLE_EQ(pred.ds_store.conflict_factor(), 1.0);
  EXPECT_DOUBLE_EQ(pred.ds_load.conflict_factor(), 1.0);
  EXPECT_DOUBLE_EQ(pred.gs_load.conflict_factor(), 1.0);
}

TEST(SimCounters, MeasuredMatchesAnalyticOnUnswizzledGamma8) {
  GammaConfig cfg = GammaConfig::make(8, 6, 3);
  // Ablation: no swizzle. Padding is disabled too — padded-unswizzled Γ8
  // blows the 48 KiB SMEM budget (one more reason the paper swizzles), and
  // the pad wouldn't change the factor anyway: the Xk row stride would be
  // 8·36 words ≡ 0 mod 32 banks.
  cfg.swizzle_ds = false;
  cfg.pad_smem = false;
  const sim::LaunchStats st = measure(cfg);
  const core::GammaConflictPrediction pred =
      core::predict_gamma_conflicts(cfg);

  EXPECT_DOUBLE_EQ(st.site_st_conflict_factor(core::kSiteDsSt),
                   pred.ds_store.conflict_factor());
  EXPECT_DOUBLE_EQ(st.site_ld_conflict_factor(core::kSiteDsLd),
                   pred.ds_load.conflict_factor());
  EXPECT_DOUBLE_EQ(st.site_st_conflict_factor(core::kSiteGsSt),
                   pred.gs_store.conflict_factor());
  EXPECT_DOUBLE_EQ(st.site_ld_conflict_factor(core::kSiteGsLd),
                   pred.gs_load.conflict_factor());

  // 8 Xk rows × 4 Xi columns collapse onto 4 banks: 8-way store conflict.
  EXPECT_DOUBLE_EQ(pred.ds_store.conflict_factor(), 8.0);
  EXPECT_GT(st.site_st_conflict_factor(core::kSiteDsSt), 4.0);
}

TEST(SimCounters, PerSiteCountersSumToAggregate) {
  const GammaConfig cfg = GammaConfig::make(8, 6, 3);
  const sim::LaunchStats st = measure(cfg);
  std::int64_t ld_passes = 0, ld_ideal = 0, st_passes = 0, st_ideal = 0;
  for (int i = 0; i < sim::LaunchStats::kMaxSites; ++i) {
    ld_passes += st.site_ld_passes[i];
    ld_ideal += st.site_ld_ideal[i];
    st_passes += st.site_st_passes[i];
    st_ideal += st.site_st_ideal[i];
  }
  EXPECT_EQ(ld_passes, st.smem_ld_passes);
  EXPECT_EQ(ld_ideal, st.smem_ld_ideal);
  EXPECT_EQ(st_passes, st.smem_st_passes);
  EXPECT_EQ(st_ideal, st.smem_st_ideal);
  EXPECT_GT(st.smem_ld_passes, 0);
  EXPECT_GT(st.smem_st_passes, 0);
}

TEST(SimCounters, SmemRequestCostRule) {
  using Lanes = std::vector<std::pair<std::int64_t, int>>;
  // Broadcast: 32 lanes, one word → 1 pass.
  Lanes bcast(32, {0, 4});
  EXPECT_EQ(sim::smem_request_cost(bcast).passes, 1);
  // Conflict-free: 32 consecutive words → 1 pass.
  Lanes seq;
  for (int i = 0; i < 32; ++i) seq.emplace_back(4 * i, 4);
  EXPECT_EQ(sim::smem_request_cost(seq).passes, 1);
  EXPECT_EQ(sim::smem_request_cost(seq).ideal, 1);
  // Worst case: 32 lanes, stride 32 words → one bank, 32 passes.
  Lanes same_bank;
  for (int i = 0; i < 32; ++i) same_bank.emplace_back(4 * 32 * i, 4);
  EXPECT_EQ(sim::smem_request_cost(same_bank).passes, 32);
  EXPECT_EQ(sim::smem_request_cost(same_bank).ideal, 1);
  // 128-bit accesses split into quarter-warp transactions: 8 lanes reading
  // 4 words each, all disjoint → each quarter warp is one 32-word pass.
  Lanes vec;
  for (int i = 0; i < 32; ++i) vec.emplace_back(16 * i, 16);
  EXPECT_EQ(sim::smem_request_cost(vec).passes, 4);
  EXPECT_EQ(sim::smem_request_cost(vec).ideal, 4);
}

TEST(SimCounters, CountingOffLeavesCountersZero) {
  const GammaConfig cfg = GammaConfig::make(8, 6, 3);
  const ConvShape s = single_block_shape(cfg);
  sim::GmemBuf x(static_cast<float*>(nullptr), s.n * s.ih * s.iw * s.ic,
                 true);
  sim::GmemBuf w(static_cast<float*>(nullptr), s.oc * s.fh * s.fw * s.ic);
  sim::GmemBuf y(static_cast<float*>(nullptr), s.n * s.oh() * s.ow() * s.oc);
  GammaKernel k(cfg, s, core::ConvDir::kForward, x, w, y, 0, s.ow());
  const sim::LaunchStats st = run_gamma(k, /*counting=*/false);
  EXPECT_EQ(st.smem_ld_passes, 0);
  EXPECT_EQ(st.smem_st_passes, 0);
  EXPECT_EQ(st.gld_sectors, 0);
}

}  // namespace
}  // namespace iwg
