// Validation of the fused 2-D Winograd baseline kernel (cuDNN stand-in).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/wino2d_kernel.hpp"
#include "reference/direct_conv.hpp"
#include "tensor/metrics.hpp"

namespace iwg::core {
namespace {

TensorF rand_tensor(std::initializer_list<std::int64_t> dims, unsigned seed) {
  Rng rng(seed);
  TensorF t(dims);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

struct W2dCase {
  std::int64_t n, hw, ic, oc, ph;
  const char* label;
};

class Wino2dSweep : public ::testing::TestWithParam<W2dCase> {};

TEST_P(Wino2dSweep, MatchesDirect) {
  const W2dCase& c = GetParam();
  ConvShape s{.n = c.n, .ih = c.hw, .iw = c.hw, .ic = c.ic, .oc = c.oc,
              .fh = 3, .fw = 3, .ph = c.ph, .pw = c.ph};
  s.validate();
  const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 3);
  const TensorF w = rand_tensor({s.oc, 3, 3, s.ic}, 4);
  const TensorF want = ref::conv2d_direct(x, w, s);
  const TensorF got = conv2d_wino2d_sim(x, w, s);
  EXPECT_LT(max_rel_diff(got, want), 2e-4) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Wino2dSweep,
    ::testing::Values(W2dCase{1, 8, 8, 32, 1, "full_block"},
                      W2dCase{2, 7, 4, 10, 1, "odd_output_partial"},
                      W2dCase{1, 6, 8, 32, 0, "no_padding"},
                      W2dCase{1, 10, 12, 40, 1, "multi_block"},
                      W2dCase{3, 5, 3, 5, 1, "tiny_multi_batch"}),
    [](const auto& info) { return info.param.label; });

TEST(Wino2d, RejectsNon3x3) {
  ConvShape s{.n = 1, .ih = 8, .iw = 8, .ic = 4, .oc = 4, .fh = 5, .fw = 5,
              .ph = 2, .pw = 2};
  sim::GmemBuf b(static_cast<float*>(nullptr), 1024, true);
  EXPECT_THROW(Winograd2dKernel(s, b, b, b), Error);
}

TEST(Wino2d, ProfileProducesEstimate) {
  ConvShape s = ConvShape::from_ofms(8, 16, 16, 64, 3);
  sim::GmemBuf xb(static_cast<float*>(nullptr), s.n * s.ih * s.iw * s.ic,
                  true);
  sim::GmemBuf wb(static_cast<float*>(nullptr), s.oc * 9 * s.ic);
  sim::GmemBuf yb(static_cast<float*>(nullptr), s.n * s.oh() * s.ow() * s.oc);
  Winograd2dKernel k(s, xb, wb, yb);
  const auto est = profile_wino2d(k, sim::DeviceProfile::rtx3060ti(),
                                  s.flops(), 1e6);
  EXPECT_GT(est.gflops, 0.0);
  EXPECT_GT(est.time_s, 0.0);
}

}  // namespace
}  // namespace iwg::core
