// Randomized property sweep: for many random geometries, the full public
// conv2d/deconv2d path (boundary planning + Γ host kernels + GEMM tail)
// must match direct convolution, and repeated runs must be bit-identical
// (determinism).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/conv_api.hpp"
#include "core/host_kernels.hpp"
#include "core/indirect.hpp"
#include "core/selector.hpp"
#include "tensor/layout.hpp"
#include "reference/direct_conv.hpp"
#include "tensor/metrics.hpp"

namespace iwg::core {
namespace {

ConvShape random_shape(Rng& rng) {
  ConvShape s;
  s.fw = 2 + static_cast<std::int64_t>(rng.below(8));  // 2..9
  s.fh = 1 + static_cast<std::int64_t>(rng.below(4));
  s.n = 1 + static_cast<std::int64_t>(rng.below(3));
  s.ic = 1 + static_cast<std::int64_t>(rng.below(9));
  s.oc = 1 + static_cast<std::int64_t>(rng.below(9));
  s.ph = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(s.fh)));
  s.pw = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(s.fw)));
  s.ih = s.fh + static_cast<std::int64_t>(rng.below(10));
  s.iw = s.fw + static_cast<std::int64_t>(rng.below(24));
  // Ensure non-empty output.
  while (s.oh() < 1) ++s.ih;
  while (s.ow() < 1) ++s.iw;
  s.validate();
  return s;
}

TEST(FuzzConv, ForwardMatchesDirectOnRandomGeometries) {
  Rng rng(20240812);
  int worst_r = 0;
  double worst = 0.0;
  for (int trial = 0; trial < 48; ++trial) {
    const ConvShape s = random_shape(rng);
    Rng data(1000 + static_cast<unsigned>(trial));
    TensorF x({s.n, s.ih, s.iw, s.ic});
    x.fill_uniform(data, -1.0f, 1.0f);
    TensorF w({s.oc, s.fh, s.fw, s.ic});
    w.fill_uniform(data, -1.0f, 1.0f);
    const TensorF want = ref::conv2d_direct(x, w, s);
    const TensorF got = conv2d(x, w, s);
    const double d = max_rel_diff(got, want);
    const double tol = s.fw >= 7 ? 1e-2 : 5e-4;  // r >= 7 plans use alpha = 16
    EXPECT_LT(d, tol) << "trial " << trial << " shape " << s.to_string();
    if (d > worst) {
      worst = d;
      worst_r = static_cast<int>(s.fw);
    }
  }
  // The worst deviation should come from the α = 16 kernels if anywhere.
  if (worst > 5e-4) {
    EXPECT_GE(worst_r, 7);
  }
}

TEST(FuzzConv, SelectorChosenPlansMatchFp64DirectOnRandomGeometries) {
  // Route fuzzed shapes through the autotuner: whatever plan the selector
  // picks (winograd chain or GEMM fallback) must agree with an FP64 direct
  // reference, so the search can never select a numerically broken plan.
  Rng rng(31337);
  const auto dev = sim::DeviceProfile::rtx3060ti();
  for (int trial = 0; trial < 12; ++trial) {
    const ConvShape s = random_shape(rng);
    const auto choice = select_algorithm(s, dev, /*samples=*/1,
                                         TuningBudget{8});
    const auto plan = choice.executable_plan(s);
    ASSERT_FALSE(plan.empty()) << s.to_string();
    Rng data(3000 + static_cast<unsigned>(trial));
    TensorF x({s.n, s.ih, s.iw, s.ic});
    x.fill_uniform(data, -1.0f, 1.0f);
    TensorF w({s.oc, s.fh, s.fw, s.ic});
    w.fill_uniform(data, -1.0f, 1.0f);
    const TensorD want = ref::conv2d_direct_fp64(x, w, s);
    const TensorF got = conv2d(x, w, s, plan);
    const double tol = s.fw >= 7 ? 1e-2 : 5e-4;  // r >= 7 plans use alpha = 16
    EXPECT_LT(average_relative_error(got, want), tol)
        << "trial " << trial << " shape " << s.to_string() << " plan "
        << choice.description;
  }
}

TEST(FuzzConv, BackwardMatchesDirectOnRandomGeometries) {
  Rng rng(777);
  for (int trial = 0; trial < 24; ++trial) {
    const ConvShape s = random_shape(rng);
    Rng data(2000 + static_cast<unsigned>(trial));
    TensorF dy({s.n, s.oh(), s.ow(), s.oc});
    dy.fill_uniform(data, -1.0f, 1.0f);
    TensorF w({s.oc, s.fh, s.fw, s.ic});
    w.fill_uniform(data, -1.0f, 1.0f);
    const TensorF want = ref::deconv2d_direct(dy, w, s);
    const TensorF got = deconv2d(dy, w, s);
    ASSERT_TRUE(got.same_shape(want)) << s.to_string();
    const double tol = s.fw >= 7 ? 1e-2 : 5e-4;  // r >= 7 plans use alpha = 16
    EXPECT_LT(max_rel_diff(got, want), tol)
        << "trial " << trial << " shape " << s.to_string();
  }
}

// Dispatch-aware fuzz: each trial force-selects a random ISA from whatever
// this build/CPU carries, then runs the full conv2d/deconv2d path against
// an FP64 direct reference. Together with the IWG_HOST_ISA env override in
// the dispatcher, this keeps the downgrade paths (scalar on an AVX2 host,
// scalar-only CI leg) exercised by the same property suite as the fast
// tables.
TEST(FuzzConv, RandomIsaDowngradeMatchesFp64Direct) {
  struct IsaRestore {
    HostIsa prev = host_isa();
    ~IsaRestore() { set_host_isa(prev); }
  } restore;
  const auto avail = host_isa_available();
  Rng rng(424242);
  for (int trial = 0; trial < 32; ++trial) {
    const HostIsa isa = avail[rng.below(avail.size())];
    ASSERT_TRUE(set_host_isa(isa));
    const ConvShape s = random_shape(rng);
    Rng data(6000 + static_cast<unsigned>(trial));
    TensorF w({s.oc, s.fh, s.fw, s.ic});
    w.fill_uniform(data, -1.0f, 1.0f);
    const double tol = s.fw >= 7 ? 1e-2 : 5e-4;
    if (trial % 3 == 2) {
      TensorF dy({s.n, s.oh(), s.ow(), s.oc});
      dy.fill_uniform(data, -1.0f, 1.0f);
      const TensorF got = deconv2d(dy, w, s);
      const TensorF want = ref::deconv2d_direct(dy, w, s);
      EXPECT_LT(max_rel_diff(got, want), tol)
          << "trial " << trial << " isa " << host_isa_name(isa) << " shape "
          << s.to_string();
    } else {
      TensorF x({s.n, s.ih, s.iw, s.ic});
      x.fill_uniform(data, -1.0f, 1.0f);
      const TensorF got = conv2d(x, w, s);
      const TensorD want = ref::conv2d_direct_fp64(x, w, s);
      EXPECT_LT(average_relative_error(got, want), tol)
          << "trial " << trial << " isa " << host_isa_name(isa) << " shape "
          << s.to_string();
    }
  }
}

TEST(FuzzConv, RandomIsaSelectorRoutedPlansMatchFp64Direct) {
  // A few selector-routed trials per ISA: the tuned plan (Γ chain or GEMM
  // fallback) must stay correct whichever kernel table executes it.
  struct IsaRestore {
    HostIsa prev = host_isa();
    ~IsaRestore() { set_host_isa(prev); }
  } restore;
  const auto dev = sim::DeviceProfile::rtx3060ti();
  Rng rng(515151);
  for (int trial = 0; trial < 6; ++trial) {
    const HostIsa isa =
        host_isa_available()[rng.below(host_isa_available().size())];
    ASSERT_TRUE(set_host_isa(isa));
    const ConvShape s = random_shape(rng);
    const auto choice = select_algorithm(s, dev, /*samples=*/1,
                                         TuningBudget{8});
    const auto plan = choice.executable_plan(s);
    ASSERT_FALSE(plan.empty()) << s.to_string();
    Rng data(7000 + static_cast<unsigned>(trial));
    TensorF x({s.n, s.ih, s.iw, s.ic});
    x.fill_uniform(data, -1.0f, 1.0f);
    TensorF w({s.oc, s.fh, s.fw, s.ic});
    w.fill_uniform(data, -1.0f, 1.0f);
    const TensorD want = ref::conv2d_direct_fp64(x, w, s);
    const TensorF got = conv2d(x, w, s, plan);
    const double tol = s.fw >= 7 ? 1e-2 : 5e-4;
    EXPECT_LT(average_relative_error(got, want), tol)
        << "trial " << trial << " isa " << host_isa_name(isa) << " shape "
        << s.to_string() << " plan " << choice.description;
  }
}

// Ragged fuzz: random mixed-shape batches through the indirect Γ dispatch,
// each image judged against an FP64 direct reference. This covers geometry
// combinations (shape-class counts, α mixes, pad widths) the structured
// parity tests in indirect_conv_test.cpp don't enumerate.
TEST(FuzzConv, IndirectRaggedBatchesMatchFp64Direct) {
  Rng rng(868686);
  for (int trial = 0; trial < 12; ++trial) {
    // Shared dispatch geometry; per-image spatial extents vary.
    ConvShape geom = random_shape(rng);
    geom.n = 1;
    const std::size_t count = 2 + rng.below(5);  // 2..6 images
    Rng data(8000 + static_cast<unsigned>(trial));
    TensorF w({geom.oc, geom.fh, geom.fw, geom.ic});
    w.fill_uniform(data, -1.0f, 1.0f);
    std::vector<ConvShape> shapes;
    std::vector<TensorF> xs(count), ys(count);
    std::vector<ImageView> views(count);
    for (std::size_t i = 0; i < count; ++i) {
      ConvShape s = geom;
      s.ih = s.fh + static_cast<std::int64_t>(rng.below(10));
      s.iw = s.fw + static_cast<std::int64_t>(rng.below(24));
      while (s.oh() < 1) ++s.ih;
      while (s.ow() < 1) ++s.iw;
      s.validate();
      xs[i].reset({1, s.ih, s.iw, s.ic});
      xs[i].fill_uniform(data, -1.0f, 1.0f);
      ys[i].reset({1, s.oh(), s.ow(), s.oc});
      views[i] = ImageView{xs[i].data(), ys[i].data(), s.ih, s.iw};
      shapes.push_back(s);
    }
    conv2d_gamma_host_indirect(views, w, geom);
    const double tol = geom.fw >= 7 ? 1e-2 : 5e-4;
    for (std::size_t i = 0; i < count; ++i) {
      const TensorD want = ref::conv2d_direct_fp64(xs[i], w, shapes[i]);
      EXPECT_LT(average_relative_error(ys[i], want), tol)
          << "trial " << trial << " image " << i << " shape "
          << shapes[i].to_string();
    }
  }
}

TEST(FuzzConv, DeterministicAcrossRuns) {
  Rng rng(99);
  const ConvShape s = random_shape(rng);
  Rng data(42);
  TensorF x({s.n, s.ih, s.iw, s.ic});
  x.fill_uniform(data, -1.0f, 1.0f);
  TensorF w({s.oc, s.fh, s.fw, s.ic});
  w.fill_uniform(data, -1.0f, 1.0f);
  const TensorF a = conv2d(x, w, s);
  const TensorF b = conv2d(x, w, s);
  for (std::int64_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(FuzzConv, SimCountingDoesNotChangeResults) {
  // Counter collection must be observation-only.
  ConvShape s;
  s.n = 1;
  s.ih = 5;
  s.iw = 12;
  s.ic = 8;
  s.oc = 16;
  s.fh = 3;
  s.fw = 3;
  s.ph = 1;
  s.pw = 1;
  s.validate();
  Rng data(5);
  TensorF x({s.n, s.ih, s.iw, s.ic});
  x.fill_uniform(data, -1.0f, 1.0f);
  TensorF w({s.oc, s.fh, s.fw, s.ic});
  w.fill_uniform(data, -1.0f, 1.0f);
  const auto plan = plan_single(s, GammaConfig::make(8, 6, 3));

  const TensorF y1 = conv2d_sim(x, w, s, plan);
  // Re-run the Γ segment with counters enabled.
  const TensorF wt = transpose_filter_to_fhwio(w);
  TensorF y2({s.n, s.oh(), s.ow(), s.oc});
  sim::GmemBuf xb(x.data(), x.size(), true);
  sim::GmemBuf wb(wt.data(), wt.size());
  sim::GmemBuf yb(y2.data(), y2.size());
  GammaKernel k(plan[0].cfg, s, ConvDir::kForward, xb, wb, yb, 0,
                plan[0].ow_len);
  sim::launch_all(k, k.grid(), /*counting=*/true);
  for (std::int64_t i = 0; i < s.n * s.oh(); ++i) {
    for (std::int64_t wcol = 0; wcol < plan[0].ow_len; ++wcol) {
      for (std::int64_t oc = 0; oc < s.oc; ++oc) {
        const std::int64_t hi = i % s.oh();
        const std::int64_t ni = i / s.oh();
        EXPECT_EQ(y1.at(ni, hi, wcol, oc), y2.at(ni, hi, wcol, oc));
      }
    }
  }
}

}  // namespace
}  // namespace iwg::core
