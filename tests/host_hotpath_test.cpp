// Host hot-path subsystem: filter-transform cache semantics (hit/miss,
// version staleness, invalidation), the sliding-window engine against
// direct/FP64 references including off-origin segments, and the end-to-end
// nn contract that a weight update can never be served a stale transform.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/trace.hpp"
#include "core/conv_api.hpp"
#include "core/filter_cache.hpp"
#include "core/gamma_host.hpp"
#include "nn/layers.hpp"
#include "nn/optim.hpp"
#include "reference/direct_conv.hpp"
#include "tensor/metrics.hpp"

namespace iwg::core {
namespace {

TensorF rand_tensor(std::initializer_list<std::int64_t> dims, unsigned seed,
                    float lo = -1.0f, float hi = 1.0f) {
  Rng rng(seed);
  TensorF t(dims);
  t.fill_uniform(rng, lo, hi);
  return t;
}

double tol_for(int alpha) { return alpha >= 16 ? 5e-3 : 1e-4; }

ConvShape small_shape() {
  ConvShape s;
  s.n = 1;
  s.ih = 6;
  s.iw = 12;
  s.ic = 3;
  s.oc = 4;
  s.fh = 3;
  s.fw = 3;
  s.ph = 1;
  s.pw = 1;
  s.validate();
  return s;
}

// ---------------------------------------------------------------------------
// FilterTransformCache semantics

TEST(FilterTransformCache, HitReturnsSameTransform) {
  FilterTransformCache cache(8);
  const ConvShape s = small_shape();
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 1);
  const GammaConfig cfg = GammaConfig::make(8, 6, 3);
  FilterTransformCache::Key key{w.data(), 7, cfg.alpha, cfg.r, false};
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return transform_filter_host(w, s, cfg);
  };
  const auto a = cache.get_or_compute(key, compute);
  const auto b = cache.get_or_compute(key, compute);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(a.get(), b.get());  // shared entry, not a copy
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FilterTransformCache, NewVersionRecomputesAndPurgesStale) {
  FilterTransformCache cache(8);
  const ConvShape s = small_shape();
  TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 2);
  const GammaConfig cfg = GammaConfig::make(8, 6, 3);
  FilterTransformCache::Key key{w.data(), 0, cfg.alpha, cfg.r, false};
  auto compute = [&] { return transform_filter_host(w, s, cfg); };
  const auto v0 = cache.get_or_compute(key, compute);
  w[0] += 1.0f;  // mutate weights, bump version
  key.version = 1;
  const auto v1 = cache.get_or_compute(key, compute);
  EXPECT_NE(v0.get(), v1.get());
  EXPECT_NE((*v0)[0], (*v1)[0]);  // transform reflects the new weights
  EXPECT_EQ(cache.size(), 1u);    // the stale version was dropped
}

TEST(FilterTransformCache, DistinctGeometriesCoexist) {
  FilterTransformCache cache(8);
  const ConvShape s = small_shape();
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 3);
  const GammaConfig a = GammaConfig::make(8, 6, 3);
  const GammaConfig b = GammaConfig::make(4, 2, 3);
  cache.get_or_compute({w.data(), 0, a.alpha, a.r, false},
                       [&] { return transform_filter_host(w, s, a); });
  cache.get_or_compute({w.data(), 0, b.alpha, b.r, false},
                       [&] { return transform_filter_host(w, s, b); });
  // Deconv transform of the same weights is a third, separate entry.
  cache.get_or_compute({w.data(), 0, a.alpha, a.r, true},
                       [&] { return transform_filter_host(w, s, a); });
  EXPECT_EQ(cache.size(), 3u);
}

TEST(FilterTransformCache, InvalidateDropsAllEntriesOfWeights) {
  FilterTransformCache cache(8);
  const ConvShape s = small_shape();
  const TensorF w1 = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 4);
  const TensorF w2 = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 5);
  const GammaConfig cfg = GammaConfig::make(8, 6, 3);
  auto c1 = [&] { return transform_filter_host(w1, s, cfg); };
  auto c2 = [&] { return transform_filter_host(w2, s, cfg); };
  cache.get_or_compute({w1.data(), 0, cfg.alpha, cfg.r, false}, c1);
  cache.get_or_compute({w1.data(), 0, cfg.alpha, cfg.r, true}, c1);
  cache.get_or_compute({w2.data(), 0, cfg.alpha, cfg.r, false}, c2);
  cache.invalidate(w1.data());
  EXPECT_EQ(cache.size(), 1u);  // only w2's entry survives
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(FilterTransformCache, LruEvictionBoundsSize) {
  FilterTransformCache cache(2);
  const ConvShape s = small_shape();
  std::vector<TensorF> ws;
  const GammaConfig cfg = GammaConfig::make(8, 6, 3);
  for (int i = 0; i < 5; ++i) {
    ws.push_back(rand_tensor({s.oc, s.fh, s.fw, s.ic}, 10 + i));
    cache.get_or_compute(
        {ws.back().data(), 0, cfg.alpha, cfg.r, false},
        [&] { return transform_filter_host(ws.back(), s, cfg); });
    EXPECT_LE(cache.size(), 2u);
  }
}

TEST(FilterTransformCache, MissCounterCountsDistinctVersionConfigPairs) {
  FilterTransformCache cache(8);
  const ConvShape s = small_shape();
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 6);
  const GammaConfig cfg = GammaConfig::make(8, 6, 3);
  const std::int64_t miss0 = filter_transform_misses().value();
  const std::int64_t hit0 = filter_transform_hits().value();
  auto compute = [&] { return transform_filter_host(w, s, cfg); };
  for (std::uint64_t v = 0; v < 3; ++v) {
    for (int rep = 0; rep < 4; ++rep) {
      cache.get_or_compute({w.data(), v, cfg.alpha, cfg.r, false}, compute);
    }
  }
  EXPECT_EQ(filter_transform_misses().value() - miss0, 3);
  EXPECT_EQ(filter_transform_hits().value() - hit0, 9);
}

// ---------------------------------------------------------------------------
// Engine correctness: cached path, off-origin segments, sliding window

TEST(HostHotpath, CachedConvMatchesUncachedBitExactly) {
  const ConvShape s = small_shape();
  const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 20);
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 21);
  FilterTransformCache cache(8);
  ConvOptions cached;
  cached.filter_cache = &cache;
  cached.weights_version = 0;
  const TensorF fresh = conv2d(x, w, s);
  const TensorF first = conv2d(x, w, s, cached);
  const TensorF repeat = conv2d(x, w, s, cached);  // served from cache
  EXPECT_EQ(max_abs_diff(fresh, first), 0.0);
  EXPECT_EQ(max_abs_diff(fresh, repeat), 0.0);
}

TEST(HostHotpath, OffOriginSegmentMatchesDirectColumns) {
  // A Γ segment with ow_start != 0 (as the boundary planner emits after a
  // leading segment) must land in exactly its own output columns.
  ConvShape s;
  s.n = 2;
  s.ih = 5;
  s.iw = 17;
  s.ic = 3;
  s.oc = 5;
  s.fh = 3;
  s.fw = 3;
  s.ph = 1;
  s.pw = 1;
  s.validate();
  const GammaConfig cfg = GammaConfig::make(8, 6, 3);
  const std::int64_t ow_start = 3;
  const std::int64_t ow_len = 12;  // 2 tiles of n=6
  ASSERT_LE(ow_start + ow_len, s.ow());

  const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 30);
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 31);
  const TensorF want = ref::conv2d_direct(x, w, s);
  TensorF got({s.n, s.oh(), s.ow(), s.oc});
  const float sentinel = 1234.5f;
  got.fill(sentinel);
  conv2d_gamma_host_segment(x, w, s, cfg, ow_start, ow_len, got);
  for (std::int64_t ni = 0; ni < s.n; ++ni) {
    for (std::int64_t hi = 0; hi < s.oh(); ++hi) {
      for (std::int64_t wo = 0; wo < s.ow(); ++wo) {
        for (std::int64_t oc = 0; oc < s.oc; ++oc) {
          if (wo >= ow_start && wo < ow_start + ow_len) {
            EXPECT_NEAR(got.at(ni, hi, wo, oc), want.at(ni, hi, wo, oc),
                        tol_for(cfg.alpha) *
                            (1.0 + std::abs(want.at(ni, hi, wo, oc))));
          } else {
            EXPECT_EQ(got.at(ni, hi, wo, oc), sentinel);  // untouched
          }
        }
      }
    }
  }
}

TEST(HostHotpath, SlidingWindowFuzzAgainstFp64Reference) {
  Rng rng(77);
  for (int iter = 0; iter < 25; ++iter) {
    ConvShape s;
    s.n = 1 + static_cast<std::int64_t>(rng.below(3));
    s.ic = 1 + static_cast<std::int64_t>(rng.below(6));
    s.oc = 1 + static_cast<std::int64_t>(rng.below(8));
    s.fh = 1 + static_cast<std::int64_t>(rng.below(5));
    s.fw = 2 + static_cast<std::int64_t>(rng.below(6));  // 2..7
    s.ph = static_cast<std::int64_t>(rng.below(
        static_cast<std::uint64_t>(s.fh)));
    s.pw = static_cast<std::int64_t>(rng.below(
        static_cast<std::uint64_t>(s.fw)));
    s.ih = s.fh + s.ph + static_cast<std::int64_t>(rng.below(7));
    s.iw = s.fw + s.pw + static_cast<std::int64_t>(rng.below(21));
    s.validate();

    TensorF x({s.n, s.ih, s.iw, s.ic});
    TensorF w({s.oc, s.fh, s.fw, s.ic});
    x.fill_uniform(rng, -1.0f, 1.0f);
    w.fill_uniform(rng, -1.0f, 1.0f);

    const TensorD want = ref::conv2d_direct_fp64(x, w, s);
    const TensorF got = conv2d(x, w, s, plan_for(s));
    const double tol = s.fw >= 7 ? 1e-2 : 5e-4;
    double worst = 0.0;
    for (std::int64_t i = 0; i < got.size(); ++i) {
      const double d = std::abs(static_cast<double>(got[i]) - want[i]) /
                       (1.0 + std::abs(want[i]));
      worst = std::max(worst, d);
    }
    EXPECT_LT(worst, tol) << "iter " << iter << " shape " << s.to_string();
  }
}

TEST(HostHotpath, DeconvCachedMatchesUncached) {
  const ConvShape s = small_shape();
  const TensorF dy = rand_tensor({s.n, s.oh(), s.ow(), s.oc}, 40);
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 41);
  FilterTransformCache cache(8);
  ConvOptions cached;
  cached.filter_cache = &cache;
  const TensorF fresh = deconv2d(dy, w, s);
  const TensorF a = deconv2d(dy, w, s, cached);
  const TensorF b = deconv2d(dy, w, s, cached);
  EXPECT_EQ(max_abs_diff(fresh, a), 0.0);
  EXPECT_EQ(max_abs_diff(fresh, b), 0.0);
  // Forward + deconv of the same weights occupy separate cache entries.
  conv2d(rand_tensor({s.n, s.ih, s.iw, s.ic}, 42), w, s, cached);
  EXPECT_EQ(cache.size(), 2u);
}

// ---------------------------------------------------------------------------
// nn end-to-end: the stale-cache regression

TEST(HostHotpath, WeightUpdateInvalidatesCachedTransform) {
  // Forward (fills the cache), optimizer step (bumps the version), forward
  // again: the second forward must match a from-scratch convolution with the
  // updated weights, not the cached transform of the old ones.
  Rng rng(50);
  nn::Conv2D conv(3, 4, 3, 1, 1, nn::ConvEngine::kWinograd, rng);
  const TensorF x = rand_tensor({2, 6, 7, 3}, 51);

  const TensorF y0 = conv.forward(x, /*train=*/true);
  for (nn::Param* p : conv.params()) p->zero_grad();
  conv.backward(rand_tensor({2, 6, 7, 4}, 52));
  nn::Sgdm opt(0.05f, 0.9f);
  opt.step(conv.params());

  const TensorF y1 = conv.forward(x, /*train=*/false);
  EXPECT_GT(max_abs_diff(y0, y1), 0.0);  // the step changed the output

  // Reference: same updated weights through an uncached fresh layer path.
  ConvShape s;
  s.n = 2; s.ih = 6; s.iw = 7; s.ic = 3; s.oc = 4;
  s.fh = 3; s.fw = 3; s.ph = 1; s.pw = 1;
  s.validate();
  std::vector<nn::Param*> params = conv.params();
  TensorF want = ref::conv2d_direct(x, params[0]->value, s);
  const TensorF& bias = params[1]->value;
  for (std::int64_t m = 0; m < want.size() / s.oc; ++m) {
    for (std::int64_t c = 0; c < s.oc; ++c) want[m * s.oc + c] += bias[c];
  }
  EXPECT_LT(max_rel_diff(y1, want), tol_for(16));
}

TEST(HostHotpath, OptimizerStepBumpsEveryParamVersion) {
  Rng rng(60);
  nn::Conv2D conv(2, 3, 3, 1, 1, nn::ConvEngine::kWinograd, rng);
  std::vector<nn::Param*> params = conv.params();
  std::vector<std::uint64_t> before;
  for (nn::Param* p : params) before.push_back(p->version);
  conv.forward(rand_tensor({1, 4, 4, 2}, 61), true);
  for (nn::Param* p : conv.params()) p->zero_grad();
  conv.backward(rand_tensor({1, 4, 4, 3}, 62));
  nn::Adam opt;
  opt.step(params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(params[i]->version, before[i] + 1) << params[i]->name;
  }
}

TEST(HostHotpath, TrainingForwardReusesTransformAcrossCalls) {
  Rng rng(70);
  nn::Conv2D conv(3, 4, 3, 1, 1, nn::ConvEngine::kWinograd, rng);
  const TensorF x = rand_tensor({1, 6, 6, 3}, 71);
  conv.forward(x, false);  // populate
  const std::int64_t miss0 = filter_transform_misses().value();
  const std::int64_t hit0 = filter_transform_hits().value();
  conv.forward(x, false);
  conv.forward(x, false);
  EXPECT_EQ(filter_transform_misses().value(), miss0);  // no new transforms
  EXPECT_GT(filter_transform_hits().value(), hit0);
}

}  // namespace
}  // namespace iwg::core
