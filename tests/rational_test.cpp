#include <gtest/gtest.h>

#include "common/rational.hpp"

namespace iwg {
namespace {

TEST(Rational, NormalizationAndEquality) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, 4), Rational(1, -2));
  EXPECT_EQ(Rational(0, 5), Rational(0));
  EXPECT_EQ(Rational(6, 3), Rational(2));
  EXPECT_TRUE(Rational(1, 2).den() == 2);
  EXPECT_TRUE(Rational(1, -2).num() == -1);  // denominator kept positive
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(2, 3) / Rational(4, 3), Rational(1, 2));
  EXPECT_EQ(-Rational(5, 7), Rational(-5, 7));
  Rational a(3, 4);
  a += Rational(1, 4);
  EXPECT_EQ(a, Rational(1));
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(7, 7) <=> Rational(1), std::strong_ordering::equal);
}

TEST(Rational, PowAndReciprocal) {
  EXPECT_EQ(Rational(2).pow(10), Rational(1024));
  EXPECT_EQ(Rational(1, 2).pow(6), Rational(1, 64));
  EXPECT_EQ(Rational(3).pow(0), Rational(1));
  EXPECT_EQ(Rational(2).pow(-3), Rational(1, 8));
  EXPECT_EQ(Rational(-3, 5).reciprocal(), Rational(-5, 3));
  EXPECT_THROW(Rational(0).reciprocal(), Error);
}

TEST(Rational, AbsAndZero) {
  EXPECT_EQ(Rational(-5, 3).abs(), Rational(5, 3));
  EXPECT_TRUE(Rational(0).is_zero());
  EXPECT_FALSE(Rational(1, 100).is_zero());
}

TEST(Rational, ToDoubleAndString) {
  EXPECT_DOUBLE_EQ(Rational(21, 4).to_double(), 5.25);
  EXPECT_DOUBLE_EQ(Rational(-1, 450).to_double(), -1.0 / 450.0);
  EXPECT_EQ(Rational(21, 4).to_string(), "21/4");
  EXPECT_EQ(Rational(-7).to_string(), "-7");
  EXPECT_EQ(Rational(0).to_string(), "0");
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), Error);
}

TEST(Rational, LargePaperEntriesExact) {
  // Entries of the α = 16 matrices stay exactly representable.
  const Rational big(268435456, 160810650);
  EXPECT_EQ(big * Rational(160810650, 268435456), Rational(1));
  const Rational d16(539803, 576);
  EXPECT_EQ((d16 - d16), Rational(0));
}

}  // namespace
}  // namespace iwg
