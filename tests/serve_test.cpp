// Serving-subsystem tests: admission control, micro-batch assembly edge
// cases (max-wait expiry, shape splits, deadline shedding), shutdown with
// in-flight requests, batched-vs-per-request bit parity, and the 8-thread
// concurrent-inference regression the const Model::infer path guarantees.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/trace.hpp"
#include "nn/layers.hpp"
#include "nn/model.hpp"
#include "serve/serve.hpp"

namespace iwg::serve {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Helpers

Request make_request(std::int64_t h, std::int64_t w, std::int64_t c,
                     float fill = 0.0f, Deadline d = Deadline::never()) {
  Request r;
  r.input.reset({h, w, c});
  r.input.fill(fill);
  r.deadline = d;
  r.enqueue_time = Clock::now();
  return r;
}

/// Tiny conv net with a classifier head; same seed → identical weights.
nn::Model make_tiny_classifier(unsigned seed = 7) {
  Rng rng(seed);
  nn::Model m;
  m.add(std::make_unique<nn::Conv2D>(3, 8, 3, 1, 1, nn::ConvEngine::kWinograd,
                                     rng, "c1"));
  m.add(std::make_unique<nn::BatchNorm2D>(8));
  m.add(std::make_unique<nn::LeakyReLU>());
  m.add(std::make_unique<nn::Conv2D>(8, 8, 3, 1, 1, nn::ConvEngine::kWinograd,
                                     rng, "c2"));
  m.add(std::make_unique<nn::LeakyReLU>());
  m.add(std::make_unique<nn::MaxPool2x2>());
  m.add(std::make_unique<nn::Flatten>());
  m.add(std::make_unique<nn::Linear>(4 * 4 * 8, 10, rng, "fc"));
  return m;
}

/// Conv-only net (no flatten/linear), so it accepts any H×W.
nn::Model make_tiny_fcn(unsigned seed = 11) {
  Rng rng(seed);
  nn::Model m;
  m.add(std::make_unique<nn::Conv2D>(3, 4, 3, 1, 1, nn::ConvEngine::kWinograd,
                                     rng, "c1"));
  m.add(std::make_unique<nn::LeakyReLU>());
  return m;
}

TensorF random_image(Rng& rng, std::int64_t h = 8, std::int64_t w = 8,
                     std::int64_t c = 3) {
  TensorF x({h, w, c});
  x.fill_uniform(rng, -1.0f, 1.0f);
  return x;
}

/// Reference: run one image through the model as a batch of 1.
TensorF infer_single(const nn::Model& m, const TensorF& img) {
  TensorF x({1, img.dim(0), img.dim(1), img.dim(2)});
  std::memcpy(x.data(), img.data(),
              static_cast<std::size_t>(img.size()) * sizeof(float));
  return m.infer(x);
}

bool bits_equal(const TensorF& a, const TensorF& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(float)) == 0;
}

// ---------------------------------------------------------------------------
// RequestQueue: admission control

TEST(RequestQueue, RejectsWhenFullWithReason) {
  RequestQueue q(2);
  auto f1 = [&] { Request r = make_request(4, 4, 3); auto f = r.promise.get_future(); EXPECT_EQ(q.push(std::move(r)), RequestQueue::Admit::kAccepted); return f; }();
  auto f2 = [&] { Request r = make_request(4, 4, 3); auto f = r.promise.get_future(); EXPECT_EQ(q.push(std::move(r)), RequestQueue::Admit::kAccepted); return f; }();
  Request r3 = make_request(4, 4, 3);
  auto f3 = r3.promise.get_future();
  EXPECT_EQ(q.push(std::move(r3)), RequestQueue::Admit::kRejectedFull);
  // The rejected promise resolves immediately with a reason.
  ASSERT_EQ(f3.wait_for(0s), std::future_status::ready);
  const Response resp = f3.get();
  EXPECT_EQ(resp.status, Status::kRejected);
  EXPECT_EQ(resp.reason, "queue full");
  EXPECT_EQ(q.size(), 2u);
  q.close();
  EXPECT_EQ(q.shed_all(), 2u);
  EXPECT_EQ(f1.get().status, Status::kShutdown);
  EXPECT_EQ(f2.get().status, Status::kShutdown);
}

TEST(RequestQueue, ClosedQueueResolvesShutdown) {
  RequestQueue q(4);
  q.close();
  Request r = make_request(4, 4, 3);
  auto f = r.promise.get_future();
  EXPECT_EQ(q.push(std::move(r)), RequestQueue::Admit::kClosed);
  EXPECT_EQ(f.get().status, Status::kShutdown);
}

TEST(RequestQueue, PopCompatibleSplitsOnShapeMismatch) {
  RequestQueue q(8);
  std::vector<std::future<Response>> futs;
  auto push = [&](std::int64_t h) {
    Request r = make_request(h, h, 3);
    futs.push_back(r.promise.get_future());
    EXPECT_EQ(q.push(std::move(r)), RequestQueue::Admit::kAccepted);
  };
  push(8);
  push(8);
  push(16);  // mismatch: splits here
  push(8);
  auto b1 = q.pop_compatible(8);
  ASSERT_EQ(b1.size(), 2u);
  EXPECT_EQ(b1[0].input.dim(0), 8);
  auto b2 = q.pop_compatible(8);
  ASSERT_EQ(b2.size(), 1u);
  EXPECT_EQ(b2[0].input.dim(0), 16);
  auto b3 = q.pop_compatible(8);
  ASSERT_EQ(b3.size(), 1u);
  EXPECT_EQ(b3[0].input.dim(0), 8);
  for (auto& b : {&b1, &b2, &b3}) {
    for (Request& r : *b) r.promise.set_value(Response{});
  }
  for (auto& f : futs) f.get();
}

// ---------------------------------------------------------------------------
// Batcher

TEST(Batcher, SingleRequestShipsAfterMaxWait) {
  RequestQueue q(8);
  BatchPolicy policy;
  policy.max_batch = 4;
  policy.max_wait = 20ms;
  policy.idle_wait = 2s;  // a hang here would mean max-wait never fired
  Batcher batcher(q, policy);

  Request r = make_request(4, 4, 3);
  auto f = r.promise.get_future();
  ASSERT_EQ(q.push(std::move(r)), RequestQueue::Admit::kAccepted);

  const auto t0 = Clock::now();
  Batcher::Batch b = batcher.next_batch();
  const auto elapsed = Clock::now() - t0;
  ASSERT_EQ(b.requests.size(), 1u);
  EXPECT_FALSE(b.closed);
  // Shipped via max-wait expiry (not instantly, not via the idle timeout).
  EXPECT_GE(elapsed, 10ms);
  EXPECT_LT(elapsed, 1s);
  b.requests[0].promise.set_value(Response{});
  f.get();
}

TEST(Batcher, FillsToMaxBatchWithoutWaitingFullWindow) {
  RequestQueue q(8);
  BatchPolicy policy;
  policy.max_batch = 3;
  policy.max_wait = 5s;  // a full wait here would time the test out
  Batcher batcher(q, policy);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 3; ++i) {
    Request r = make_request(4, 4, 3);
    futs.push_back(r.promise.get_future());
    ASSERT_EQ(q.push(std::move(r)), RequestQueue::Admit::kAccepted);
  }
  const auto t0 = Clock::now();
  Batcher::Batch b = batcher.next_batch();
  EXPECT_LT(Clock::now() - t0, 2s);  // returned well before max_wait
  ASSERT_EQ(b.requests.size(), 3u);
  for (Request& r : b.requests) r.promise.set_value(Response{});
  for (auto& f : futs) f.get();
}

TEST(Batcher, ShedsExpiredDeadlinesBeforeDispatch) {
  RequestQueue q(8);
  BatchPolicy policy;
  policy.max_batch = 2;
  policy.max_wait = 1ms;
  Batcher batcher(q, policy);

  Request dead = make_request(4, 4, 3, 0.0f, Deadline::after(0us));
  auto fdead = dead.promise.get_future();
  Request live = make_request(4, 4, 3);
  auto flive = live.promise.get_future();
  std::this_thread::sleep_for(1ms);  // ensure the first deadline has passed
  ASSERT_EQ(q.push(std::move(dead)), RequestQueue::Admit::kAccepted);
  ASSERT_EQ(q.push(std::move(live)), RequestQueue::Admit::kAccepted);

  Batcher::Batch b = batcher.next_batch();
  ASSERT_EQ(b.requests.size(), 1u);
  EXPECT_EQ(b.expired, 1);
  const Response dr = fdead.get();
  EXPECT_EQ(dr.status, Status::kExpired);
  EXPECT_GT(dr.latency_us, 0.0);
  b.requests[0].promise.set_value(Response{});
  flive.get();
}

TEST(Batcher, ClosedEmptyQueueReportsClosed) {
  RequestQueue q(8);
  BatchPolicy policy;
  policy.idle_wait = 10ms;
  Batcher batcher(q, policy);
  q.close();
  Batcher::Batch b = batcher.next_batch();
  EXPECT_TRUE(b.closed);
  EXPECT_TRUE(b.requests.empty());
}

// ---------------------------------------------------------------------------
// ServingSession end-to-end

SessionConfig tiny_config() {
  SessionConfig cfg;
  cfg.image_h = 8;
  cfg.image_w = 8;
  cfg.channels = 3;
  cfg.batch.max_batch = 4;
  cfg.batch.max_wait = 2ms;
  cfg.batch.idle_wait = 5ms;
  cfg.queue_capacity = 64;
  cfg.workers = 1;
  return cfg;
}

TEST(ServingSession, BatchedOutputsBitIdenticalToPerRequestForward) {
  nn::Model reference = make_tiny_classifier(7);
  ServingSession session(make_tiny_classifier(7), tiny_config());

  Rng rng(123);
  std::vector<TensorF> images;
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 20; ++i) images.push_back(random_image(rng));
  for (const TensorF& img : images) futs.push_back(session.submit(img));
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const Response r = futs[i].get();
    ASSERT_EQ(r.status, Status::kOk) << r.reason;
    EXPECT_GT(r.batch_size, 0);
    EXPECT_GT(r.latency_us, 0.0);
    const TensorF want = infer_single(reference, images[i]);
    EXPECT_TRUE(bits_equal(r.output, want)) << "request " << i;
  }
  session.stop();
  const auto stats = session.stats();
  EXPECT_EQ(stats.completed, 20);
  EXPECT_TRUE(stats.all_resolved());
}

TEST(ServingSession, PaddedTailBatchChangesNoBits) {
  // 3 requests into a max_batch=8 padded dispatch: the 5 zero slots must
  // not alter any live request's output.
  nn::Model reference = make_tiny_classifier(7);
  SessionConfig cfg = tiny_config();
  cfg.batch.max_batch = 8;
  cfg.pad_tail_batches = true;
  ServingSession session(make_tiny_classifier(7), cfg);

  Rng rng(321);
  std::vector<TensorF> images;
  for (int i = 0; i < 3; ++i) images.push_back(random_image(rng));
  std::vector<std::future<Response>> futs;
  for (const TensorF& img : images) futs.push_back(session.submit(img));
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const Response r = futs[i].get();
    ASSERT_EQ(r.status, Status::kOk);
    EXPECT_TRUE(bits_equal(r.output, infer_single(reference, images[i])));
  }
}

TEST(ServingSession, MixedShapesSplitIntoCoherentBatches) {
  // Legacy policy coverage: under kSplit, a batch never mixes shapes.
  SessionConfig cfg = tiny_config();
  cfg.batch.max_batch = 8;
  cfg.batch.mixed = MixedMode::kSplit;
  ServingSession session(make_tiny_fcn(), cfg);

  Rng rng(5);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 12; ++i) {
    const std::int64_t s = (i % 2 == 0) ? 8 : 6;  // interleaved shapes
    futs.push_back(session.submit(random_image(rng, s, s)));
  }
  for (int i = 0; i < 12; ++i) {
    const Response r = futs[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(r.status, Status::kOk);
    const std::int64_t s = (i % 2 == 0) ? 8 : 6;
    EXPECT_EQ(r.output.dim(1), s);  // conv is same-padded: H preserved
    // A batch can only have held requests of one shape.
    EXPECT_LE(r.batch_size, 6);
  }
  session.stop();
  EXPECT_TRUE(session.stats().all_resolved());
}

TEST(ServingSession, MixedShapesCoalesceIntoIndirectBatches) {
  // Default policy: interleaved A/B/A/B traffic ships as a handful of
  // mixed-shape indirect dispatches — not a batch-1 ping-pong cascade —
  // and every output matches the per-request dense forward bit for bit.
  nn::Model reference = make_tiny_fcn();
  SessionConfig cfg = tiny_config();
  cfg.batch.max_batch = 8;
  cfg.batch.max_wait = 50ms;
  ASSERT_EQ(cfg.batch.mixed, MixedMode::kIndirect);  // the default
  // Scoped isolation instead of the before/after delta dance: the guard
  // zeroes the registry on entry and exit, so the padded-slots assertion
  // below reads an absolute value regardless of what ran earlier in this
  // binary.
  trace::ResetGuard metrics_guard;
  auto& padded =
      trace::MetricsRegistry::global().counter("serve.padded_slots");
  ServingSession session(make_tiny_fcn(), cfg);

  Rng rng(5);
  std::vector<TensorF> images;
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 12; ++i) {
    const std::int64_t s = (i % 2 == 0) ? 8 : 6;  // interleaved shapes
    images.push_back(random_image(rng, s, s));
    futs.push_back(session.submit(images.back()));
  }
  for (int i = 0; i < 12; ++i) {
    const Response r = futs[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(r.status, Status::kOk) << r.reason;
    const std::int64_t s = (i % 2 == 0) ? 8 : 6;
    EXPECT_EQ(r.output.dim(1), s);  // conv is same-padded: H preserved
    EXPECT_TRUE(bits_equal(r.output,
                           infer_single(reference, images[static_cast<std::size_t>(i)])))
        << "request " << i;
  }
  session.stop();
  const auto stats = session.stats();
  EXPECT_TRUE(stats.all_resolved());
  EXPECT_EQ(stats.completed, 12);
  // Ping-pong regression: 12 interleaved requests must not cost anywhere
  // near 12 dispatches (kSplit would ping-pong batch-1/batch-2 here).
  EXPECT_LE(stats.batches, 4);
  EXPECT_GE(stats.indirect_batches, 1);
  // Satellite: the indirect policy never materializes pad slots.
  EXPECT_EQ(padded.value(), 0);
}

TEST(ServingSession, ShapeIdenticalRunStillShipsDenseUnderIndirectPolicy) {
  // Uniform traffic must keep coalescing into dense batches — the parking
  // lot only goes indirect when shapes actually mix.
  SessionConfig cfg = tiny_config();
  cfg.batch.max_batch = 4;
  cfg.batch.max_wait = 50ms;
  ServingSession session(make_tiny_fcn(), cfg);
  Rng rng(6);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(session.submit(random_image(rng)));
  for (auto& f : futs) ASSERT_EQ(f.get().status, Status::kOk);
  session.stop();
  const auto stats = session.stats();
  EXPECT_TRUE(stats.all_resolved());
  EXPECT_EQ(stats.indirect_batches, 0);  // one shape → dense dispatches only
  EXPECT_LE(stats.batches, 3);
}

TEST(ServingSession, StopWithoutDrainUnderMixedTrafficResolvesEveryFuture) {
  // The zero-unresolved-futures guarantee must survive the indirect path:
  // parked requests are drained or shed at stop, never leaked.
  SessionConfig cfg = tiny_config();
  cfg.batch.max_batch = 4;
  cfg.batch.max_wait = 200ms;  // park is likely still holding some at stop
  ServingSession session(make_tiny_fcn(), cfg);
  Rng rng(14);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 24; ++i) {
    const std::int64_t s = (i % 3 == 0) ? 6 : ((i % 3 == 1) ? 8 : 10);
    futs.push_back(session.submit(random_image(rng, s, s)));
  }
  session.stop(/*drain=*/false);
  int ok = 0, shut = 0;
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(5s), std::future_status::ready) << "unresolved future";
    const Response r = f.get();
    ASSERT_TRUE(r.status == Status::kOk || r.status == Status::kShutdown);
    (r.status == Status::kOk ? ok : shut)++;
  }
  EXPECT_EQ(ok + shut, 24);
  const auto stats = session.stats();
  EXPECT_EQ(stats.completed, ok);
  EXPECT_EQ(stats.shed, shut);
  EXPECT_TRUE(stats.all_resolved());
}

TEST(ServingSession, DrainServesParkedMixedTraffic) {
  // stop(drain=true) must serve requests sitting in the parking lot, not
  // just the ones still in the queue.
  SessionConfig cfg = tiny_config();
  cfg.batch.max_batch = 8;
  cfg.batch.max_wait = 500ms;  // without drain these would sit parked
  ServingSession session(make_tiny_fcn(), cfg);
  Rng rng(15);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 5; ++i) {
    const std::int64_t s = (i % 2 == 0) ? 8 : 6;
    futs.push_back(session.submit(random_image(rng, s, s)));
  }
  session.stop(/*drain=*/true);
  for (auto& f : futs) EXPECT_EQ(f.get().status, Status::kOk);
  EXPECT_TRUE(session.stats().all_resolved());
}

TEST(ServingSession, FullQueueRejectsAtAdmission) {
  SessionConfig cfg = tiny_config();
  cfg.queue_capacity = 4;
  cfg.batch.max_batch = 8;
  cfg.batch.max_wait = 500ms;  // worker holds the batch open → queue fills
  ServingSession session(make_tiny_classifier(), cfg);

  Rng rng(9);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 12; ++i) futs.push_back(session.submit(random_image(rng)));
  int ok = 0, rejected = 0;
  for (auto& f : futs) {
    const Response r = f.get();
    if (r.status == Status::kOk) ++ok;
    if (r.status == Status::kRejected) {
      ++rejected;
      EXPECT_EQ(r.reason, "queue full");
    }
  }
  EXPECT_EQ(ok + rejected, 12);
  EXPECT_GE(rejected, 1);  // capacity 4 cannot hold a burst of 12
  session.stop();
  const auto stats = session.stats();
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_TRUE(stats.all_resolved());
}

TEST(ServingSession, DeadlineExpiredWhileBatchHeldOpenIsShed) {
  SessionConfig cfg = tiny_config();
  cfg.batch.max_batch = 8;           // never fills…
  cfg.batch.max_wait = 50ms;         // …so the batch is held 50 ms
  ServingSession session(make_tiny_classifier(), cfg);

  Rng rng(10);
  auto fut = session.submit(random_image(rng), Deadline::after(5ms));
  const Response r = fut.get();
  EXPECT_EQ(r.status, Status::kExpired);
  session.stop();
  const auto stats = session.stats();
  EXPECT_EQ(stats.expired, 1);
  EXPECT_TRUE(stats.all_resolved());
}

TEST(ServingSession, StopWithDrainServesEverythingQueued) {
  SessionConfig cfg = tiny_config();
  cfg.batch.max_wait = 20ms;
  ServingSession session(make_tiny_classifier(), cfg);
  Rng rng(11);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 16; ++i) futs.push_back(session.submit(random_image(rng)));
  session.stop(/*drain=*/true);
  for (auto& f : futs) EXPECT_EQ(f.get().status, Status::kOk);
  const auto stats = session.stats();
  EXPECT_EQ(stats.completed, 16);
  EXPECT_TRUE(stats.all_resolved());
}

TEST(ServingSession, StopWithoutDrainResolvesEveryFuture) {
  SessionConfig cfg = tiny_config();
  cfg.batch.max_batch = 2;
  cfg.batch.max_wait = 1ms;
  ServingSession session(make_tiny_classifier(), cfg);
  Rng rng(12);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 32; ++i) futs.push_back(session.submit(random_image(rng)));
  session.stop(/*drain=*/false);  // in-flight batches finish; queue is shed
  int ok = 0, shut = 0;
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(5s), std::future_status::ready) << "unresolved future";
    const Response r = f.get();
    ASSERT_TRUE(r.status == Status::kOk || r.status == Status::kShutdown);
    (r.status == Status::kOk ? ok : shut)++;
  }
  EXPECT_EQ(ok + shut, 32);
  const auto stats = session.stats();
  EXPECT_EQ(stats.completed, ok);
  EXPECT_EQ(stats.shed, shut);
  EXPECT_TRUE(stats.all_resolved());
  // Idempotent: stopping again (and the destructor after that) is a no-op.
  session.stop();
}

TEST(ServingSession, SubmitAfterStopResolvesShutdown) {
  ServingSession session(make_tiny_classifier(), tiny_config());
  session.stop();
  Rng rng(13);
  auto fut = session.submit(random_image(rng));
  const Response r = fut.get();
  EXPECT_EQ(r.status, Status::kShutdown);
}

// ---------------------------------------------------------------------------
// Concurrent inference regression (satellite: const/thread-safe forward)

TEST(ConcurrentInference, EightThreadsMatchSingleThread) {
  nn::Model model = make_tiny_classifier(21);
  Rng rng(22);
  TensorF x({4, 8, 8, 3});
  x.fill_uniform(rng, -1.0f, 1.0f);
  const TensorF want = model.forward(x, /*train=*/false);
  const TensorF want_infer = model.infer(x);
  ASSERT_TRUE(bits_equal(want, want_infer));  // infer ≡ eval-mode forward

  constexpr int kThreads = 8;
  constexpr int kReps = 8;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < kReps; ++rep) {
        const TensorF y = model.infer(x);
        if (!bits_equal(y, want)) ++mismatches[static_cast<std::size_t>(t)];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
}

TEST(ConcurrentInference, ResNetInferMatchesEvalForward) {
  // ResidualBlock (incl. projection shortcut) also needs a const path.
  nn::ModelConfig cfg;
  cfg.image_size = 8;
  cfg.base_channels = 4;
  nn::Model model = nn::make_resnet(18, cfg);
  Rng rng(33);
  TensorF x({2, 8, 8, 3});
  x.fill_uniform(rng, -1.0f, 1.0f);
  const TensorF want = model.forward(x, false);
  EXPECT_TRUE(bits_equal(model.infer(x), want));
}

}  // namespace
}  // namespace iwg::serve
