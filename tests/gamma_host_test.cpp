// Host-engine validation: Γα(n,r) convolution must match direct convolution
// for every (n, r) the paper supports, across paddings, boundary widths,
// channel counts, and for the backward (deconvolution) pass.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "core/conv_api.hpp"
#include "core/gamma_host.hpp"
#include "core/host_kernels.hpp"
#include "reference/direct_conv.hpp"
#include "tensor/metrics.hpp"

namespace iwg::core {
namespace {

struct HostCase {
  int alpha, n, r;
  Variant variant;
  std::string label;
};

TensorF rand_tensor(std::initializer_list<std::int64_t> dims, unsigned seed,
                    float lo = -1.0f, float hi = 1.0f) {
  Rng rng(seed);
  TensorF t(dims);
  t.fill_uniform(rng, lo, hi);
  return t;
}

double tol_for(int alpha) { return alpha >= 16 ? 5e-3 : 1e-4; }

class GammaHostSweep : public ::testing::TestWithParam<HostCase> {};

TEST_P(GammaHostSweep, MatchesDirectExactTiling) {
  const HostCase& c = GetParam();
  const GammaConfig cfg = GammaConfig::make(c.alpha, c.n, c.r, c.variant);
  // OW chosen as a multiple of the segment granularity: pure Γ path.
  const std::int64_t gran = c.n * (c.variant == Variant::kRuse ? 2 : 1);
  ConvShape s;
  s.n = 2;
  s.ic = 5;
  s.oc = 7;
  s.fh = 3;
  s.fw = c.r;
  s.ph = 1;
  s.pw = c.r / 2;
  s.iw = 2 * gran - 2 * s.pw + c.r - 1;
  s.ih = 6;
  s.validate();
  ASSERT_EQ(s.ow() % gran, 0);

  const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 11);
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 12);
  const TensorF want = ref::conv2d_direct(x, w, s);
  TensorF got({s.n, s.oh(), s.ow(), s.oc});
  conv2d_gamma_host_segment(x, w, s, cfg, 0, s.ow(), got);
  EXPECT_LT(max_rel_diff(got, want), tol_for(c.alpha)) << c.label;
}

TEST_P(GammaHostSweep, MatchesDirectWithBoundaryPlan) {
  const HostCase& c = GetParam();
  // OW NOT divisible by n: exercises the §5.5 segmentation.
  ConvShape s;
  s.n = 1;
  s.ic = 4;
  s.oc = 6;
  s.fh = 2;
  s.fw = c.r;
  s.ph = 0;
  s.pw = c.r / 2;
  s.iw = 2 * c.n + 1 + c.r - 1 - 2 * s.pw;
  s.ih = 5;
  s.validate();
  ASSERT_NE(s.ow() % c.n, 0);

  const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 21);
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 22);
  const TensorF want = ref::conv2d_direct(x, w, s);
  const TensorF got = conv2d_gamma_host(x, w, s, plan_for(s));
  EXPECT_LT(max_rel_diff(got, want), tol_for(c.alpha)) << c.label;
}

std::vector<HostCase> host_cases() {
  std::vector<HostCase> v;
  for (int r = 2; r <= 3; ++r)
    v.push_back({4, 5 - r, r, Variant::kBase,
                 "g4_" + std::to_string(5 - r) + "_" + std::to_string(r)});
  for (int r = 2; r <= 7; ++r)
    v.push_back({8, 9 - r, r, Variant::kBase,
                 "g8_" + std::to_string(9 - r) + "_" + std::to_string(r)});
  for (int r = 7; r <= 9; ++r)
    v.push_back({16, 17 - r, r, Variant::kBase,
                 "g16_" + std::to_string(17 - r) + "_" + std::to_string(r)});
  v.push_back({8, 4, 5, Variant::kRuse, "g8ruse_4_5"});
  v.push_back({8, 2, 7, Variant::kRuse, "g8ruse_2_7"});
  v.push_back({16, 8, 9, Variant::kRuse, "g16ruse_8_9"});
  v.push_back({16, 10, 7, Variant::kC64, "g16c64_10_7"});
  v.push_back({16, 8, 9, Variant::kC64, "g16c64_8_9"});
  return v;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, GammaHostSweep,
                         ::testing::ValuesIn(host_cases()),
                         [](const auto& info) { return info.param.label; });

TEST(GammaHost, FullApiAcrossFilterWidths) {
  for (int r = 2; r <= 9; ++r) {
    ConvShape s;
    s.n = 2;
    s.ic = 3;
    s.oc = 4;
    s.fh = r;
    s.fw = r;
    s.ph = r / 2;
    s.pw = r / 2;
    s.ih = 13;
    s.iw = 13;  // odd: boundary treatment active for most n
    s.validate();
    const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 30 + r);
    const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 40 + r);
    const TensorF want = ref::conv2d_direct(x, w, s);
    const TensorF got = conv2d(x, w, s);
    // α = 16 kernels (r ≥ 7) carry larger FP32 transform error (§6.2.2).
    EXPECT_LT(max_rel_diff(got, want), r >= 7 ? 5e-3 : 5e-4) << "r=" << r;
  }
}

TEST(GammaHost, NoPaddingAndAsymmetricPadding) {
  for (auto [ph, pw] : {std::pair<int, int>{0, 0}, {0, 1}, {2, 0}, {3, 3}}) {
    ConvShape s;
    s.n = 1;
    s.ic = 3;
    s.oc = 2;
    s.fh = 3;
    s.fw = 3;
    s.ph = ph;
    s.pw = pw;
    s.ih = 10;
    s.iw = 11;
    s.validate();
    const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 51);
    const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 52);
    EXPECT_LT(max_rel_diff(conv2d(x, w, s), ref::conv2d_direct(x, w, s)), 1e-4)
        << ph << "," << pw;
  }
}

TEST(GammaHost, LargePaddingBeyondHalfFilter) {
  // §5.1 optimizes pW ≤ ⌊r/2⌋ but correctness must hold beyond it.
  ConvShape s;
  s.n = 1;
  s.ic = 2;
  s.oc = 2;
  s.fh = 3;
  s.fw = 3;
  s.ph = 2;
  s.pw = 2;
  s.ih = 6;
  s.iw = 6;
  s.validate();
  const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 61);
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 62);
  EXPECT_LT(max_rel_diff(conv2d(x, w, s), ref::conv2d_direct(x, w, s)), 1e-4);
}

TEST(GammaHost, DeconvMatchesDirectTransposed) {
  for (int r : {2, 3, 5, 7}) {
    ConvShape s;
    s.n = 2;
    s.ic = 3;
    s.oc = 5;
    s.fh = r;
    s.fw = r;
    s.ph = r / 2;
    s.pw = r / 2;
    s.ih = 12;
    s.iw = 14;
    s.validate();
    TensorF dy = rand_tensor({s.n, s.oh(), s.ow(), s.oc}, 70 + r);
    const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 80 + r);
    const TensorF want = ref::deconv2d_direct(dy, w, s);
    const TensorF got = deconv2d(dy, w, s);
    ASSERT_TRUE(got.same_shape(want));
    EXPECT_LT(max_rel_diff(got, want), r >= 7 ? 5e-3 : 5e-4) << "r=" << r;
  }
}

TEST(GammaHost, SingleChannel) {
  ConvShape s;
  s.n = 1;
  s.ic = 1;
  s.oc = 1;
  s.fh = 3;
  s.fw = 3;
  s.ph = 1;
  s.pw = 1;
  s.ih = 8;
  s.iw = 12;
  s.validate();
  const TensorF x = rand_tensor({1, 8, 12, 1}, 91);
  const TensorF w = rand_tensor({1, 3, 3, 1}, 92);
  EXPECT_LT(max_rel_diff(conv2d(x, w, s), ref::conv2d_direct(x, w, s)), 1e-4);
}

TEST(GammaHost, RectangularFilterHeights) {
  // FH ≠ FW: Im2col-Winograd only constrains FW (§4.2).
  for (int fh : {1, 2, 5}) {
    ConvShape s;
    s.n = 1;
    s.ic = 3;
    s.oc = 4;
    s.fh = fh;
    s.fw = 3;
    s.ph = 0;
    s.pw = 1;
    s.ih = 9;
    s.iw = 12;
    s.validate();
    const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 100 + fh);
    const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 110 + fh);
    EXPECT_LT(max_rel_diff(conv2d(x, w, s), ref::conv2d_direct(x, w, s)), 1e-4)
        << "fh=" << fh;
  }
}

TEST(GammaHost, GemmOnlyOptionMatches) {
  ConvShape s;
  s.n = 1;
  s.ic = 3;
  s.oc = 4;
  s.fh = 3;
  s.fw = 3;
  s.ph = 1;
  s.pw = 1;
  s.ih = 7;
  s.iw = 7;
  s.validate();
  const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 121);
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 122);
  ConvOptions opts;
  opts.use_winograd = false;
  EXPECT_LT(max_rel_diff(conv2d(x, w, s, opts), ref::conv2d_direct(x, w, s)),
            1e-5);
}

TEST(GammaHost, WinogradIsMoreAccurateThanGemmAtLargeChannels) {
  // The Table-3 effect: fewer multiplications → smaller rounding error.
  // Pin the scalar engine: the effect is about operation counts under
  // sequential accumulation, and the SIMD dot's lane-parallel partial sums
  // would shrink the GEMM path's error independent of operation count.
  const HostIsa prev = host_isa();
  ASSERT_TRUE(set_host_isa(HostIsa::kScalar));
  ConvShape s;
  s.n = 1;
  s.ic = 128;
  s.oc = 8;
  s.fh = 3;
  s.fw = 3;
  s.ph = 1;
  s.pw = 1;
  s.ih = 12;
  s.iw = 12;
  s.validate();
  const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 131, 1.0f, 2.0f);
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 132, 1.0f, 2.0f);
  const TensorD truth = ref::conv2d_direct_fp64(x, w, s);
  ConvOptions gemm_only;
  gemm_only.use_winograd = false;
  const double err_wino = average_relative_error(conv2d(x, w, s), truth);
  const double err_gemm =
      average_relative_error(conv2d(x, w, s, gemm_only), truth);
  set_host_isa(prev);
  EXPECT_LT(err_wino, err_gemm);
}

}  // namespace
}  // namespace iwg::core
