// Property tests of the performance model against the paper's qualitative
// claims (§6.1.2) — these are the "shape" guarantees the reproduction rests
// on, so they are enforced by CI rather than just printed by the benches.
#include <gtest/gtest.h>

#include "core/conv_api.hpp"
#include "core/wino2d_kernel.hpp"

namespace iwg::core {
namespace {

const sim::DeviceProfile& dev3060() {
  static const sim::DeviceProfile dev = sim::DeviceProfile::rtx3060ti();
  return dev;
}

double gamma_gflops(int alpha, int n, int r, const ConvShape& s,
                    Variant v = Variant::kBase) {
  const auto rep = profile_conv2d(
      s, dev3060(), plan_single(s, GammaConfig::make(alpha, n, r, v)), 4);
  return rep.gflops;
}

double gemm_gflops(const ConvShape& s, GemmLayout layout) {
  return profile_gemm_conv2d(s, dev3060(), layout, 4).gflops;
}

TEST(PerfShape, Gamma8ThreeSpeedLevels) {
  // §6.1.2: Γ8(4,5)/(5,4) fastest, (6,3)/(3,6) moderate, (7,2)/(2,7)
  // slowest — the convex Φ(r) symmetry about (α+1)/2.
  auto at = [&](int n, int r) {
    // OW divisible by every n in play for a clean comparison.
    const ConvShape s = ConvShape::from_ofms(16, 32, 2 * 7 * 6 * 5, 64, r);
    return gamma_gflops(8, n, r, s);
  };
  const double f45 = at(4, 5);
  const double f54 = at(5, 4);
  const double f63 = at(6, 3);
  const double f36 = at(3, 6);
  const double f72 = at(7, 2);
  const double f27 = at(2, 7);
  EXPECT_GT(std::min(f45, f54), std::max(f63, f36));
  EXPECT_GT(std::min(f63, f36), std::max(f72, f27));
}

TEST(PerfShape, Gamma16BeatsGamma8AtSameFilter) {
  // r = 7 exists in both families: Γ16(10,7) reduces multiplications by
  // 70/16 vs Γ8(2,7)'s 14/8.
  const ConvShape s = ConvShape::from_ofms(16, 32, 70, 64, 7);
  EXPECT_GT(gamma_gflops(16, 10, 7, s), gamma_gflops(8, 2, 7, s));
}

TEST(PerfShape, WinogradBeatsGemmAtLargeFilters) {
  for (int r : {5, 7, 9}) {
    const int alpha = r >= 7 ? 16 : 8;
    const int n = alpha + 1 - r;
    const ConvShape s = ConvShape::from_ofms(16, 32, 4 * n, 64, r);
    const double wino = gamma_gflops(alpha, n, r, s);
    const double gemm = std::max(gemm_gflops(s, GemmLayout::kNHWC),
                                 gemm_gflops(s, GemmLayout::kNCHW));
    EXPECT_GT(wino, gemm) << "r=" << r;
  }
}

TEST(PerfShape, C64FastestGamma16Variant) {
  // §5.6: the enlarged cache block has the best efficiency at large volume.
  const ConvShape s = ConvShape::from_ofms(32, 32, 32, 128, 9);
  const double base = gamma_gflops(16, 8, 9, s);
  const double c64 = gamma_gflops(16, 8, 9, s, Variant::kC64);
  EXPECT_GT(c64, base);
}

TEST(PerfShape, FusedWino2dBetweenGemmAndGamma) {
  // On 3×3, cuDNN's fused 2-D Winograd beats GEMM but our Γ8(6,3) model
  // should at least match it (the paper reports 0.960–1.221× vs the
  // fastest baseline, which is usually the fused Winograd).
  const ConvShape s = ConvShape::from_ofms(32, 48, 48, 64, 3);
  sim::GmemBuf xb(static_cast<float*>(nullptr), s.n * s.ih * s.iw * s.ic,
                  true);
  sim::GmemBuf wb(static_cast<float*>(nullptr), s.oc * 9 * s.ic);
  sim::GmemBuf yb(static_cast<float*>(nullptr), s.n * s.oh() * s.ow() * s.oc);
  Winograd2dKernel k(s, xb, wb, yb);
  const double wino2d =
      profile_wino2d(k, dev3060(), s.flops(), 1e8, 4).gflops;
  const double gemm = gemm_gflops(s, GemmLayout::kNHWC);
  const double gamma = gamma_gflops(8, 6, 3, s);
  EXPECT_GT(wino2d, gemm);
  EXPECT_GT(gamma, gemm);
}

TEST(PerfShape, BoundaryTreatmentOptimalAtExactCover) {
  // §6.1.2: Γα(n,r) has optimal performance when OW % n == 0.
  const ConvShape exact = ConvShape::from_ofms(16, 32, 36, 64, 3);
  const ConvShape ragged = ConvShape::from_ofms(16, 32, 31, 64, 3);
  const auto rep_exact =
      profile_conv2d(exact, dev3060(), plan_for(exact), 4);
  const auto rep_ragged =
      profile_conv2d(ragged, dev3060(), plan_for(ragged), 4);
  EXPECT_GT(rep_exact.gflops, rep_ragged.gflops);
}

TEST(PerfShape, Rtx4090FasterThan3060Ti) {
  const ConvShape s = ConvShape::from_ofms(16, 32, 36, 64, 3);
  const auto rep_a = profile_conv2d(s, dev3060(), plan_for(s), 4);
  const auto rep_b = profile_conv2d(s, sim::DeviceProfile::rtx4090(),
                                    plan_for(s), 4);
  EXPECT_GT(rep_b.gflops, rep_a.gflops);
}

TEST(PerfShape, TransposeCostVisibleButSmall) {
  // §6.1.2: filter transposition is "relatively small" against big maps.
  const ConvShape s = ConvShape::from_ofms(32, 64, 64, 64, 3);
  const auto rep = profile_conv2d(s, dev3060(), plan_for(s), 4);
  EXPECT_LT(rep.transpose_s, 0.2 * rep.time_s);
}

TEST(PerfShape, LaunchStatsMergeAndScale) {
  sim::LaunchStats a;
  a.fma = 100;
  a.gld_sectors = 10;
  a.blocks = 2;
  sim::LaunchStats b;
  b.fma = 50;
  b.smem_ld_passes = 7;
  b.blocks = 1;
  a.merge(b);
  EXPECT_EQ(a.fma, 150);
  EXPECT_EQ(a.smem_ld_passes, 7);
  EXPECT_EQ(a.blocks, 3);
  a.scale(2.0);
  EXPECT_EQ(a.fma, 300);
  EXPECT_EQ(a.gld_sectors, 20);
}

}  // namespace
}  // namespace iwg::core
