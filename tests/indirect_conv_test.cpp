// Indirect Γ dispatch (core/indirect.hpp): one host dispatch over a span of
// mixed-shape images must produce, for every image, the exact bits of the
// dense public conv2d path run on that image alone. Parity is by
// construction — both paths run detail::gamma_tile_column / detail::gemm_row
// over the per-class §5.5 plan — and these tests pin that contract across
// filter widths (α = 4..16 plans), ragged H/W mixes, GEMM-only execution,
// and every host ISA this build carries.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/arena.hpp"
#include "common/rng.hpp"
#include "core/conv_api.hpp"
#include "core/filter_cache.hpp"
#include "core/host_kernels.hpp"
#include "core/indirect.hpp"
#include "tensor/tensor.hpp"

namespace iwg::core {
namespace {

struct RaggedImage {
  std::int64_t ih, iw;
  TensorF x;  // 1×IH×IW×IC
  TensorF y;  // 1×OH×OW×OC, indirect output
};

/// Dispatch geometry + a ragged batch drawn from `sizes`, data seeded so the
/// dense reference sees identical inputs.
struct RaggedCase {
  ConvShape geom;
  std::vector<RaggedImage> images;
  TensorF w;

  RaggedCase(std::int64_t fw, std::vector<std::pair<std::int64_t, std::int64_t>> sizes,
             unsigned seed = 9001) {
    geom.n = 1;
    geom.ic = 5;
    geom.oc = 7;
    geom.fh = 3;
    geom.fw = fw;
    geom.ph = 1;
    geom.pw = fw / 2;
    Rng data(seed);
    w.reset({geom.oc, geom.fh, geom.fw, geom.ic});
    w.fill_uniform(data, -1.0f, 1.0f);
    for (const auto& [ih, iw] : sizes) {
      RaggedImage img;
      img.ih = ih;
      img.iw = iw;
      img.x.reset({1, ih, iw, geom.ic});
      img.x.fill_uniform(data, -1.0f, 1.0f);
      const ConvShape s = shape_for(ih, iw);
      img.y.reset({1, s.oh(), s.ow(), geom.oc});
      images.push_back(std::move(img));
    }
  }

  ConvShape shape_for(std::int64_t ih, std::int64_t iw) const {
    ConvShape s = geom;
    s.ih = ih;
    s.iw = iw;
    s.validate();
    return s;
  }

  std::vector<ImageView> views() {
    std::vector<ImageView> v;
    for (RaggedImage& img : images) {
      v.push_back(ImageView{img.x.data(), img.y.data(), img.ih, img.iw});
    }
    return v;
  }
};

/// The bitwise assertion: not a tolerance — byte equality of the buffers.
void expect_bitwise(const TensorF& got, const TensorF& want,
                    const std::string& what) {
  ASSERT_TRUE(got.same_shape(want)) << what;
  const bool same = std::memcmp(got.data(), want.data(),
                                static_cast<std::size_t>(got.size()) *
                                    sizeof(float)) == 0;
  if (!same) {
    // Locate the first differing element for the failure message.
    for (std::int64_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << what << " first diff at flat index " << i;
    }
  }
  EXPECT_TRUE(same) << what;
}

void check_parity(RaggedCase& c, const IndirectOptions& iopts,
                  const ConvOptions& dopts, const std::string& what) {
  auto v = c.views();
  conv2d_gamma_host_indirect(v, c.w, c.geom, iopts);
  for (std::size_t i = 0; i < c.images.size(); ++i) {
    const RaggedImage& img = c.images[i];
    const ConvShape s = c.shape_for(img.ih, img.iw);
    const TensorF want = conv2d(img.x, c.w, s, dopts);
    expect_bitwise(img.y, want,
                   what + " image " + std::to_string(i) + " shape " +
                       s.to_string());
  }
}

// The standard ragged mix: three shape classes, interleaved, with repeats —
// both spatial axes vary, classes don't arrive contiguously.
std::vector<std::pair<std::int64_t, std::int64_t>> mixed_sizes() {
  return {{8, 8}, {6, 10}, {8, 8}, {12, 6}, {6, 10}, {9, 16}, {8, 8}};
}

TEST(IndirectConv, MatchesDenseBitwisePerImageAcrossFilterWidths) {
  // fw 2..9 walks every Γα the planner selects (α = 4 up through 16).
  for (std::int64_t fw = 2; fw <= 9; ++fw) {
    RaggedCase c(fw, mixed_sizes(), 9000 + static_cast<unsigned>(fw));
    check_parity(c, IndirectOptions{}, ConvOptions{},
                 "fw=" + std::to_string(fw));
  }
}

TEST(IndirectConv, GemmOnlyPathMatchesDenseBitwise) {
  RaggedCase c(5, mixed_sizes(), 123);
  IndirectOptions iopts;
  iopts.use_winograd = false;
  ConvOptions dopts;
  dopts.use_winograd = false;
  check_parity(c, iopts, dopts, "gemm-only");
}

TEST(IndirectConv, SingleShapeClassMatchesDense) {
  // Degenerate mix: all images one shape — still one dispatch, one class.
  RaggedCase c(3, {{7, 9}, {7, 9}, {7, 9}}, 321);
  check_parity(c, IndirectOptions{}, ConvOptions{}, "single-class");
}

TEST(IndirectConv, SingleImageMatchesDense) {
  RaggedCase c(4, {{10, 11}}, 77);
  check_parity(c, IndirectOptions{}, ConvOptions{}, "single-image");
}

TEST(IndirectConv, EveryHostIsaBitwiseParity) {
  // The parity contract must hold under every kernel table this build/CPU
  // carries — each ISA's dense and indirect dispatches share that ISA's
  // SIMD bodies, so each is internally bitwise consistent.
  struct IsaRestore {
    HostIsa prev = host_isa();
    ~IsaRestore() { set_host_isa(prev); }
  } restore;
  for (const HostIsa isa : host_isa_available()) {
    ASSERT_NE(host_kernels_for(isa), nullptr) << host_isa_name(isa);
    ASSERT_TRUE(set_host_isa(isa));
    RaggedCase c(3, mixed_sizes(), 555);
    check_parity(c, IndirectOptions{}, ConvOptions{},
                 std::string("isa=") + host_isa_name(isa));
  }
}

TEST(IndirectConv, FilterCacheRoutedDispatchMatchesUncached) {
  // Routing ĝ through the cross-call FilterTransformCache must not change
  // bits (the cache stores the same transform the memo would compute).
  RaggedCase cached(6, mixed_sizes(), 42);
  RaggedCase plain(6, mixed_sizes(), 42);
  FilterTransformCache cache;
  IndirectOptions iopts;
  iopts.fc.cache = &cache;
  iopts.fc.version = 1;
  auto cv = cached.views();
  conv2d_gamma_host_indirect(cv, cached.w, cached.geom, iopts);
  auto pv = plain.views();
  conv2d_gamma_host_indirect(pv, plain.w, plain.geom, IndirectOptions{});
  for (std::size_t i = 0; i < cached.images.size(); ++i) {
    expect_bitwise(cached.images[i].y, plain.images[i].y,
                   "cached vs uncached image " + std::to_string(i));
  }
}

TEST(IndirectConv, TableLayoutSharedZeroRowAndClassMapping) {
  RaggedCase c(3, {{8, 8}, {6, 10}, {8, 8}}, 7);
  ScratchArena& arena = ScratchArena::local();
  const ScratchArena::Scope scope(arena);
  auto v = c.views();
  const IndirectionTable t =
      build_indirection_table(v, c.geom, arena);

  // Three images, two classes, repeats map back to the first class.
  ASSERT_EQ(t.images.size(), 3u);
  ASSERT_EQ(t.classes.size(), 2u);
  EXPECT_EQ(t.image_class[0], 0);
  EXPECT_EQ(t.image_class[1], 1);
  EXPECT_EQ(t.image_class[2], 0);
  for (const ConvShape& s : t.classes) EXPECT_EQ(s.n, 1);

  // Row table: index ihp + ph over [-ph, ih + ph). In-bounds rows alias the
  // input tensor's row ihp; padding rows are the shared zero row (nullptr)
  // — never materialized pad slots.
  for (std::size_t i = 0; i < t.images.size(); ++i) {
    const detail::ImageTask& img = t.images[i];
    const float* x = c.images[i].x.data();
    for (std::int64_t ihp = -c.geom.ph; ihp < img.ih + c.geom.ph; ++ihp) {
      const float* row = img.rows[ihp + c.geom.ph];
      if (ihp >= 0 && ihp < img.ih) {
        EXPECT_EQ(row, x + ihp * img.iw * c.geom.ic)
            << "image " << i << " row " << ihp;
      } else {
        EXPECT_EQ(row, nullptr) << "image " << i << " pad row " << ihp;
      }
    }
  }
}

TEST(IndirectConv, RepeatedDispatchIsDeterministic) {
  RaggedCase a(5, mixed_sizes(), 99);
  RaggedCase b(5, mixed_sizes(), 99);
  auto av = a.views();
  auto bv = b.views();
  conv2d_gamma_host_indirect(av, a.w, a.geom, IndirectOptions{});
  conv2d_gamma_host_indirect(bv, b.w, b.geom, IndirectOptions{});
  for (std::size_t i = 0; i < a.images.size(); ++i) {
    expect_bitwise(a.images[i].y, b.images[i].y,
                   "run-to-run image " + std::to_string(i));
  }
}

}  // namespace
}  // namespace iwg::core
