// Golden tests: the generated transform matrices must reproduce the paper's
// Figure 5 exactly (A(4,3), G(4,3), D(4); A(8,7), G(8,7), D(8); spot entries
// of the α=16 matrices).
#include <gtest/gtest.h>

#include "winograd/plan.hpp"

namespace iwg {
namespace {

RationalMatrix from_rows(int rows, int cols,
                         const std::vector<std::vector<Rational>>& v) {
  RationalMatrix m(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) m.at(r, c) = v[r][c];
  return m;
}

Rational q(long long n, long long d) { return Rational(n, d); }

TEST(WinogradGolden, Alpha4_AT) {
  // Figure 5: A(4,3)^T — three outputs from F(3, 2).
  const auto& plan = get_plan(3, 2);
  const auto want = from_rows(3, 4,
                              {{1, 1, 1, 0},  //
                               {0, 1, -1, 0},
                               {0, 1, 1, 1}});
  EXPECT_TRUE(plan.at == want) << "got:\n"
                               << plan.at.to_string() << "want:\n"
                               << want.to_string();
}

TEST(WinogradGolden, Alpha4_G) {
  // Figure 5: G(4,3) — the F(2,3) filter transform.
  const auto& plan = get_plan(2, 3);
  const auto want = from_rows(4, 3,
                              {{1, 0, 0},
                               {q(1, 2), q(1, 2), q(1, 2)},
                               {q(1, 2), q(-1, 2), q(1, 2)},
                               {0, 0, 1}});
  EXPECT_TRUE(plan.g == want) << "got:\n"
                              << plan.g.to_string() << "want:\n"
                              << want.to_string();
}

TEST(WinogradGolden, Alpha4_DT) {
  const auto& plan = get_plan(2, 3);
  const auto want = from_rows(4, 4,
                              {{1, 0, -1, 0},
                               {0, 1, 1, 0},
                               {0, -1, 1, 0},
                               {0, -1, 0, 1}});
  EXPECT_TRUE(plan.bt == want) << "got:\n"
                               << plan.bt.to_string() << "want:\n"
                               << want.to_string();
}

TEST(WinogradGolden, Alpha8_AT) {
  // Figure 5: A(8,7)^T — F(7, 2).
  const auto& plan = get_plan(7, 2);
  const auto want = from_rows(
      7, 8,
      {{1, 1, 1, 1, 1, 1, 1, 0},
       {0, 1, -1, 2, -2, q(1, 2), q(-1, 2), 0},
       {0, 1, 1, 4, 4, q(1, 4), q(1, 4), 0},
       {0, 1, -1, 8, -8, q(1, 8), q(-1, 8), 0},
       {0, 1, 1, 16, 16, q(1, 16), q(1, 16), 0},
       {0, 1, -1, 32, -32, q(1, 32), q(-1, 32), 0},
       {0, 1, 1, 64, 64, q(1, 64), q(1, 64), 1}});
  EXPECT_TRUE(plan.at == want) << "got:\n"
                               << plan.at.to_string() << "want:\n"
                               << want.to_string();
}

TEST(WinogradGolden, Alpha8_G) {
  // Figure 5: G(8,7) — F(2, 7) filter transform.
  const auto& plan = get_plan(2, 7);
  const auto want = from_rows(
      8, 7,
      {{1, 0, 0, 0, 0, 0, 0},
       {q(-2, 9), q(-2, 9), q(-2, 9), q(-2, 9), q(-2, 9), q(-2, 9), q(-2, 9)},
       {q(-2, 9), q(2, 9), q(-2, 9), q(2, 9), q(-2, 9), q(2, 9), q(-2, 9)},
       {q(1, 90), q(2, 90), q(4, 90), q(8, 90), q(16, 90), q(32, 90),
        q(64, 90)},
       {q(1, 90), q(-2, 90), q(4, 90), q(-8, 90), q(16, 90), q(-32, 90),
        q(64, 90)},
       {q(64, 90), q(32, 90), q(16, 90), q(8, 90), q(4, 90), q(2, 90),
        q(1, 90)},
       {q(64, 90), q(-32, 90), q(16, 90), q(-8, 90), q(4, 90), q(-2, 90),
        q(1, 90)},
       {0, 0, 0, 0, 0, 0, 1}});
  EXPECT_TRUE(plan.g == want) << "got:\n"
                              << plan.g.to_string() << "want:\n"
                              << want.to_string();
}

TEST(WinogradGolden, Alpha8_DT) {
  // Figure 5: D(8)^T — the classic F(6,3)-family input transform with the
  // ±21/4, ±17/4, ±5/2 pattern.
  const auto& plan = get_plan(6, 3);
  const auto want = from_rows(
      8, 8,
      {{1, 0, q(-21, 4), 0, q(21, 4), 0, -1, 0},
       {0, 1, 1, q(-17, 4), q(-17, 4), 1, 1, 0},
       {0, -1, 1, q(17, 4), q(-17, 4), -1, 1, 0},
       {0, q(1, 2), q(1, 4), q(-5, 2), q(-5, 4), 2, 1, 0},
       {0, q(-1, 2), q(1, 4), q(5, 2), q(-5, 4), -2, 1, 0},
       {0, 2, 4, q(-5, 2), -5, q(1, 2), 1, 0},
       {0, -2, 4, q(5, 2), -5, q(-1, 2), 1, 0},
       {0, -1, 0, q(21, 4), 0, q(-21, 4), 0, 1}});
  EXPECT_TRUE(plan.bt == want) << "got:\n"
                               << plan.bt.to_string() << "want:\n"
                               << want.to_string();
}

TEST(WinogradGolden, DTDependsOnlyOnAlpha) {
  // The paper writes D(α): the input transform is shared by every (n, r)
  // split with the same state count.
  EXPECT_TRUE(get_plan(6, 3).bt == get_plan(3, 6).bt);
  EXPECT_TRUE(get_plan(6, 3).bt == get_plan(2, 7).bt);
  EXPECT_TRUE(get_plan(6, 3).bt == get_plan(4, 5).bt);
  EXPECT_TRUE(get_plan(2, 3).bt == get_plan(3, 2).bt);
  EXPECT_TRUE(get_plan(8, 9).bt == get_plan(9, 8).bt);
  EXPECT_TRUE(get_plan(8, 9).bt == get_plan(10, 7).bt);
}

TEST(WinogradGolden, Alpha16_SpotChecks) {
  // Figure 5 spot entries for the α = 16 matrices.
  const auto& plan = get_plan(8, 9);
  // D(16)^T row 0: 1, 0, −4381/144, 0, 164597/576, 0, −539803/576, 0, ...
  EXPECT_EQ(plan.bt.at(0, 0), Rational(1));
  EXPECT_EQ(plan.bt.at(0, 2), q(-4381, 144));
  EXPECT_EQ(plan.bt.at(0, 4), q(164597, 576));
  EXPECT_EQ(plan.bt.at(0, 6), q(-539803, 576));
  EXPECT_EQ(plan.bt.at(0, 8), q(539803, 576));
  EXPECT_EQ(plan.bt.at(0, 10), q(-164597, 576));
  EXPECT_EQ(plan.bt.at(0, 12), q(4381, 144));
  EXPECT_EQ(plan.bt.at(0, 14), Rational(-1));
  EXPECT_EQ(plan.bt.at(0, 15), Rational(0));
  // D(16)^T row 1 starts 0, 1, 1, −4237/144, −4237/144, 147649/576, ...
  EXPECT_EQ(plan.bt.at(1, 3), q(-4237, 144));
  EXPECT_EQ(plan.bt.at(1, 5), q(147649, 576));
  // Last row mirrors the first.
  EXPECT_EQ(plan.bt.at(15, 3), q(4381, 144));
  EXPECT_EQ(plan.bt.at(15, 15), Rational(1));

  // G(16,15) of F(2,15): row for point 1 is all −1/450; row for point 2 is
  // 2^j/165375 scaled by 2 (i.e. 2·2^j/165375 starting at 2/165375).
  const auto& g16 = get_plan(2, 15).g;
  for (int j = 0; j < 15; ++j) {
    EXPECT_EQ(g16.at(1, j), q(-1, 450)) << j;
  }
  EXPECT_EQ(g16.at(3, 0), q(2, 165375));
  EXPECT_EQ(g16.at(3, 14), q(32768, 165375));
  EXPECT_EQ(g16.at(7, 0), q(-1, 3503500));
  EXPECT_EQ(g16.at(7, 14), q(-4782969, 3503500));
  EXPECT_EQ(g16.at(11, 0), q(1, 160810650));
  EXPECT_EQ(g16.at(11, 14), q(268435456, 160810650));

  // A(16,15)^T of F(15,2): second row enumerates the points.
  const auto& a16 = get_plan(15, 2).at;
  const Rational pts[15] = {0,        1,        -1,      2,       -2,
                            q(1, 2),  q(-1, 2), 3,       -3,      q(1, 3),
                            q(-1, 3), 4,        -4,      q(1, 4), q(-1, 4)};
  for (int t = 0; t < 15; ++t) EXPECT_EQ(a16.at(1, t), pts[t]) << t;
  EXPECT_EQ(a16.at(14, 11), Rational(268435456));  // 4^14
  EXPECT_EQ(a16.at(14, 15), Rational(1));
}

TEST(WinogradGolden, RowPairsMatchSection53) {
  // §5.3: rows (2k+1, 2k+2) — 0-indexed — of D^T and G form ± pairs.
  const auto pairs8 = find_row_pairs(get_plan(6, 3).bt);
  ASSERT_EQ(pairs8.size(), 3u);
  EXPECT_EQ(pairs8[0], (std::pair<int, int>{1, 2}));
  EXPECT_EQ(pairs8[1], (std::pair<int, int>{3, 4}));
  EXPECT_EQ(pairs8[2], (std::pair<int, int>{5, 6}));

  const auto pairs16 = find_row_pairs(get_plan(8, 9).bt);
  ASSERT_EQ(pairs16.size(), 7u);
  for (int k = 0; k < 7; ++k) {
    EXPECT_EQ(pairs16[static_cast<std::size_t>(k)],
              (std::pair<int, int>{2 * k + 1, 2 * k + 2}));
  }

  const auto gpairs = find_row_pairs(get_plan(2, 7).g);
  ASSERT_EQ(gpairs.size(), 3u);
  EXPECT_EQ(gpairs[0], (std::pair<int, int>{1, 2}));
}

}  // namespace
}  // namespace iwg
