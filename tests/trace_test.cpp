// Observability tests: the tracer's ring/drop semantics, Chrome-JSON export
// (validated by parsing it back with a mini JSON parser), span nesting and
// thread interleaving, Suppress/ConvOptions gating, and the metrics
// registry's race-freedom under the global thread pool.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "core/conv_api.hpp"

namespace iwg::trace {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser — enough to validate the exported
// trace is well-formed and to read back names/args.

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  const Json& at(const std::string& key) const {
    auto it = obj.find(key);
    if (it == obj.end()) {
      static const Json null;
      return null;
    }
    return it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

 private:
  void fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    pos_ = text_.size();  // stop consuming
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  Json value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return boolean();
      case 'n':
        literal("null");
        return Json{};
      default:
        return number();
    }
  }

  Json object() {
    Json v;
    v.type = Json::Type::kObject;
    if (!consume('{')) fail("expected {");
    if (consume('}')) return v;
    do {
      Json key = string_value();
      if (!consume(':')) fail("expected :");
      v.obj[key.str] = value();
    } while (consume(','));
    if (!consume('}')) fail("expected }");
    return v;
  }

  Json array() {
    Json v;
    v.type = Json::Type::kArray;
    if (!consume('[')) fail("expected [");
    if (consume(']')) return v;
    do {
      v.arr.push_back(value());
    } while (consume(','));
    if (!consume(']')) fail("expected ]");
    return v;
  }

  Json string_value() {
    Json v;
    v.type = Json::Type::kString;
    if (!consume('"')) fail("expected string");
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u':
            pos_ += 4;  // tests never read escaped control chars back
            c = '?';
            break;
          default: c = esc;
        }
      }
      v.str += c;
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
    } else {
      ++pos_;  // closing quote
    }
    return v;
  }

  Json boolean() {
    Json v;
    v.type = Json::Type::kBool;
    if (peek() == 't') {
      literal("true");
      v.b = true;
    } else {
      literal("false");
    }
    return v;
  }

  Json number() {
    Json v;
    v.type = Json::Type::kNumber;
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    v.num = std::strtod(start, &end);
    if (end == start) {
      fail("expected number");
    } else {
      pos_ += static_cast<std::size_t>(end - start);
    }
    return v;
  }

  void literal(const char* lit) {
    skip_ws();
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        fail(std::string("expected ") + lit);
        return;
      }
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

Json parse_trace(const std::string& json) {
  JsonParser p(json);
  Json v = p.parse();
  EXPECT_TRUE(p.ok()) << p.error();
  EXPECT_EQ(v.type, Json::Type::kObject);
  EXPECT_EQ(v.at("traceEvents").type, Json::Type::kArray);
  return v;
}

/// Resets the global tracer around each test so tests stay independent.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().disable();
    Tracer::global().clear();
  }
  void TearDown() override {
    Tracer::global().disable();
    Tracer::global().clear();
  }
};

TEST_F(TraceTest, DisabledModeRecordsNothing) {
  ASSERT_FALSE(Tracer::global().enabled());
  {
    IWG_TRACE_SCOPE("should_not_appear", "test");
    IWG_TRACE_SPAN(span, "nor_this", "test");
    span.arg("k", 1).arg("s", "v");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(Tracer::global().recorded(), 0);
  EXPECT_TRUE(Tracer::global().events().empty());
}

TEST_F(TraceTest, NestedSpansExportWellFormedChromeJsonWithArgs) {
  Tracer& t = Tracer::global();
  t.enable();
  {
    IWG_TRACE_SPAN(outer, "outer", "test");
    outer.arg("alpha", 8).arg("variant", "ruse").arg("frac", 0.25);
    {
      IWG_TRACE_SCOPE("inner", "test");
    }
  }
  t.disable();
  EXPECT_EQ(t.recorded(), 2);

  const Json doc = parse_trace(t.chrome_json(/*include_metrics=*/false));
  const Json* outer = nullptr;
  const Json* inner = nullptr;
  for (const Json& e : doc.at("traceEvents").arr) {
    if (e.at("name").str == "outer") outer = &e;
    if (e.at("name").str == "inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->at("ph").str, "X");
  EXPECT_EQ(outer->at("cat").str, "test");
  EXPECT_EQ(outer->at("args").at("alpha").num, 8.0);
  EXPECT_EQ(outer->at("args").at("variant").str, "ruse");
  EXPECT_DOUBLE_EQ(outer->at("args").at("frac").num, 0.25);
  // Nesting: the inner span lies inside the outer span's [ts, ts+dur), on
  // the same thread — which is how trace viewers reconstruct the stack.
  EXPECT_EQ(outer->at("tid").num, inner->at("tid").num);
  EXPECT_LE(outer->at("ts").num, inner->at("ts").num);
  EXPECT_GE(outer->at("ts").num + outer->at("dur").num,
            inner->at("ts").num + inner->at("dur").num);
}

TEST_F(TraceTest, ThreadInterleavingProducesParseableTrace) {
  Tracer& t = Tracer::global();
  t.enable();
  const int kSpans = 64;
  ThreadPool::global().parallel_for(kSpans, [](std::int64_t i) {
    IWG_TRACE_SPAN(span, "worker_span", "test");
    span.arg("job", i);
  });
  t.disable();
  EXPECT_EQ(t.recorded(), kSpans);

  const Json doc = parse_trace(t.chrome_json(/*include_metrics=*/false));
  int workers = 0;
  std::vector<bool> seen(kSpans, false);
  for (const Json& e : doc.at("traceEvents").arr) {
    if (e.at("name").str != "worker_span") continue;
    ++workers;
    const auto job = static_cast<std::size_t>(e.at("args").at("job").num);
    ASSERT_LT(job, seen.size());
    EXPECT_FALSE(seen[job]) << "job " << job << " recorded twice";
    seen[job] = true;
  }
  EXPECT_EQ(workers, kSpans);  // no span lost or torn under interleaving
}

TEST_F(TraceTest, RingKeepsMostRecentAndCountsDropped) {
  Tracer& t = Tracer::global();
  t.enable(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    IWG_TRACE_SPAN(span, "ev" + std::to_string(i), "test");
  }
  t.disable();
  EXPECT_EQ(t.recorded(), 10);
  EXPECT_EQ(t.dropped(), 6);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(evs[static_cast<std::size_t>(i)].name,
              "ev" + std::to_string(6 + i));  // oldest dropped, order kept
  }
}

TEST_F(TraceTest, SuppressMutesRecordingOnThisThread) {
  Tracer& t = Tracer::global();
  t.enable();
  {
    Suppress mute;
    IWG_TRACE_SCOPE("muted", "test");
    EXPECT_FALSE(t.active());
    {
      Suppress nested;  // nesting must not unmute on destruction
    }
    EXPECT_FALSE(t.active());
  }
  EXPECT_TRUE(t.active());
  { IWG_TRACE_SCOPE("recorded", "test"); }
  t.disable();
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].name, "recorded");
}

TEST_F(TraceTest, ConvOptionsTraceFalseSuppressesConvSpans) {
  const ConvShape s = [] {
    ConvShape sh;
    sh.n = 1;
    sh.ih = 4;
    sh.iw = 9;
    sh.ic = 4;
    sh.oc = 4;
    sh.fh = 3;
    sh.fw = 3;
    sh.ph = 1;
    sh.pw = 1;
    sh.validate();
    return sh;
  }();
  TensorF x({s.n, s.ih, s.iw, s.ic});
  TensorF w({s.oc, s.fh, s.fw, s.ic});
  x.fill(0.5f);
  w.fill(0.25f);

  Tracer& t = Tracer::global();
  t.enable();
  core::ConvOptions muted;
  muted.trace = false;
  core::conv2d(x, w, s, muted);
  EXPECT_EQ(t.recorded(), 0);
  core::conv2d(x, w, s, core::ConvOptions{});
  EXPECT_GT(t.recorded(), 0);
  t.disable();
}

TEST_F(TraceTest, ChromeJsonCarriesMetricsCounters) {
  MetricsRegistry::global().counter("test.export_counter").add(41);
  Tracer& t = Tracer::global();
  t.enable();
  { IWG_TRACE_SCOPE("with_metrics", "test"); }
  t.disable();

  const Json doc = parse_trace(t.chrome_json(/*include_metrics=*/true));
  bool found = false;
  for (const Json& e : doc.at("traceEvents").arr) {
    if (e.at("ph").str == "C" && e.at("name").str == "test.export_counter") {
      found = true;
      EXPECT_GE(e.at("args").at("value").num, 41.0);
    }
  }
  EXPECT_TRUE(found);

  const Json bare = parse_trace(t.chrome_json(/*include_metrics=*/false));
  for (const Json& e : bare.at("traceEvents").arr) {
    EXPECT_NE(e.at("ph").str, "C");
  }
}

TEST(Metrics, CountersAreRaceFreeUnderParallelFor) {
  Counter& cached = MetricsRegistry::global().counter("test.race_cached");
  const std::int64_t before = cached.value();
  const int kAdds = 10000;
  ThreadPool::global().parallel_for(kAdds, [&](std::int64_t) {
    cached.add();
    // The registry-lookup path must be just as safe as a cached reference.
    MetricsRegistry::global().counter("test.race_lookup").add();
  });
  EXPECT_EQ(cached.value() - before, kAdds);
  EXPECT_EQ(MetricsRegistry::global().counter("test.race_lookup").value() %
                kAdds,
            0);
}

TEST(Metrics, DistributionSummaryIsExactBelowReservoirCap) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.record(static_cast<double>(i));
  const auto s = d.summary();
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.0, 1.0);
  EXPECT_NEAR(s.p99, 99.0, 1.0);
  d.reset();
  EXPECT_EQ(d.summary().count, 0);
}

TEST(Metrics, ResetZeroesValuesButKeepsReferencesValid) {
  Counter& c = MetricsRegistry::global().counter("test.reset_ref");
  c.add(5);
  MetricsRegistry::global().reset();
  EXPECT_EQ(c.value(), 0);
  c.add(2);  // the cached reference still points at the live counter
  EXPECT_EQ(MetricsRegistry::global().counter("test.reset_ref").value(), 2);
}

TEST(Metrics, TextReportListsEveryMetric) {
  MetricsRegistry::global().counter("test.report_counter").add(3);
  MetricsRegistry::global().distribution("test.report_dist").record(1.5);
  const std::string report = MetricsRegistry::global().text_report();
  EXPECT_NE(report.find("test.report_counter"), std::string::npos);
  EXPECT_NE(report.find("test.report_dist"), std::string::npos);
  EXPECT_NE(report.find("count=1"), std::string::npos);
}

TEST(Metrics, FlushReportWritesMetricsFileOnDemand) {
  const std::string path =
      testing::TempDir() + "iwg_flush_report_test_metrics.txt";
  std::remove(path.c_str());
  MetricsRegistry::global().counter("test.flush_counter").add(9);
  set_report_paths(/*trace_path=*/"", /*metrics_path=*/path);
  ASSERT_TRUE(flush_report());

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "flush_report did not create " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string report = ss.str();
  EXPECT_NE(report.find("test.flush_counter"), std::string::npos);

  // A second flush atomically replaces the first (no stale temp left over).
  MetricsRegistry::global().counter("test.flush_counter_second").add(1);
  ASSERT_TRUE(flush_report());
  std::ifstream in2(path);
  std::stringstream ss2;
  ss2 << in2.rdbuf();
  EXPECT_NE(ss2.str().find("test.flush_counter_second"), std::string::npos);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());

  set_report_paths("", "");  // unconfigure so later tests aren't affected
  EXPECT_FALSE(flush_report());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace iwg::trace
