// Observability tests: the tracer's ring/drop semantics, Chrome-JSON export
// (validated by parsing it back with a mini JSON parser), span nesting and
// thread interleaving, Suppress/ConvOptions gating, and the metrics
// registry's race-freedom under the global thread pool.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "core/conv_api.hpp"

namespace iwg::trace {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser — enough to validate the exported
// trace is well-formed and to read back names/args.

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  const Json& at(const std::string& key) const {
    auto it = obj.find(key);
    if (it == obj.end()) {
      static const Json null;
      return null;
    }
    return it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

 private:
  void fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    pos_ = text_.size();  // stop consuming
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  Json value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return boolean();
      case 'n':
        literal("null");
        return Json{};
      default:
        return number();
    }
  }

  Json object() {
    Json v;
    v.type = Json::Type::kObject;
    if (!consume('{')) fail("expected {");
    if (consume('}')) return v;
    do {
      Json key = string_value();
      if (!consume(':')) fail("expected :");
      v.obj[key.str] = value();
    } while (consume(','));
    if (!consume('}')) fail("expected }");
    return v;
  }

  Json array() {
    Json v;
    v.type = Json::Type::kArray;
    if (!consume('[')) fail("expected [");
    if (consume(']')) return v;
    do {
      v.arr.push_back(value());
    } while (consume(','));
    if (!consume(']')) fail("expected ]");
    return v;
  }

  Json string_value() {
    Json v;
    v.type = Json::Type::kString;
    if (!consume('"')) fail("expected string");
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u':
            pos_ += 4;  // tests never read escaped control chars back
            c = '?';
            break;
          default: c = esc;
        }
      }
      v.str += c;
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
    } else {
      ++pos_;  // closing quote
    }
    return v;
  }

  Json boolean() {
    Json v;
    v.type = Json::Type::kBool;
    if (peek() == 't') {
      literal("true");
      v.b = true;
    } else {
      literal("false");
    }
    return v;
  }

  Json number() {
    Json v;
    v.type = Json::Type::kNumber;
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    v.num = std::strtod(start, &end);
    if (end == start) {
      fail("expected number");
    } else {
      pos_ += static_cast<std::size_t>(end - start);
    }
    return v;
  }

  void literal(const char* lit) {
    skip_ws();
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        fail(std::string("expected ") + lit);
        return;
      }
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

Json parse_trace(const std::string& json) {
  JsonParser p(json);
  Json v = p.parse();
  EXPECT_TRUE(p.ok()) << p.error();
  EXPECT_EQ(v.type, Json::Type::kObject);
  EXPECT_EQ(v.at("traceEvents").type, Json::Type::kArray);
  return v;
}

/// Resets the global tracer around each test so tests stay independent.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().disable();
    Tracer::global().clear();
  }
  void TearDown() override {
    Tracer::global().disable();
    Tracer::global().clear();
  }
};

TEST_F(TraceTest, DisabledModeRecordsNothing) {
  ASSERT_FALSE(Tracer::global().enabled());
  {
    IWG_TRACE_SCOPE("should_not_appear", "test");
    IWG_TRACE_SPAN(span, "nor_this", "test");
    span.arg("k", 1).arg("s", "v");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(Tracer::global().recorded(), 0);
  EXPECT_TRUE(Tracer::global().events().empty());
}

TEST_F(TraceTest, NestedSpansExportWellFormedChromeJsonWithArgs) {
  Tracer& t = Tracer::global();
  t.enable();
  {
    IWG_TRACE_SPAN(outer, "outer", "test");
    outer.arg("alpha", 8).arg("variant", "ruse").arg("frac", 0.25);
    {
      IWG_TRACE_SCOPE("inner", "test");
    }
  }
  t.disable();
  EXPECT_EQ(t.recorded(), 2);

  const Json doc = parse_trace(t.chrome_json(/*include_metrics=*/false));
  const Json* outer = nullptr;
  const Json* inner = nullptr;
  for (const Json& e : doc.at("traceEvents").arr) {
    if (e.at("name").str == "outer") outer = &e;
    if (e.at("name").str == "inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->at("ph").str, "X");
  EXPECT_EQ(outer->at("cat").str, "test");
  EXPECT_EQ(outer->at("args").at("alpha").num, 8.0);
  EXPECT_EQ(outer->at("args").at("variant").str, "ruse");
  EXPECT_DOUBLE_EQ(outer->at("args").at("frac").num, 0.25);
  // Nesting: the inner span lies inside the outer span's [ts, ts+dur), on
  // the same thread — which is how trace viewers reconstruct the stack.
  EXPECT_EQ(outer->at("tid").num, inner->at("tid").num);
  EXPECT_LE(outer->at("ts").num, inner->at("ts").num);
  EXPECT_GE(outer->at("ts").num + outer->at("dur").num,
            inner->at("ts").num + inner->at("dur").num);
}

TEST_F(TraceTest, ThreadInterleavingProducesParseableTrace) {
  Tracer& t = Tracer::global();
  t.enable();
  const int kSpans = 64;
  ThreadPool::global().parallel_for(kSpans, [](std::int64_t i) {
    IWG_TRACE_SPAN(span, "worker_span", "test");
    span.arg("job", i);
  });
  t.disable();
  EXPECT_EQ(t.recorded(), kSpans);

  const Json doc = parse_trace(t.chrome_json(/*include_metrics=*/false));
  int workers = 0;
  std::vector<bool> seen(kSpans, false);
  for (const Json& e : doc.at("traceEvents").arr) {
    if (e.at("name").str != "worker_span") continue;
    ++workers;
    const auto job = static_cast<std::size_t>(e.at("args").at("job").num);
    ASSERT_LT(job, seen.size());
    EXPECT_FALSE(seen[job]) << "job " << job << " recorded twice";
    seen[job] = true;
  }
  EXPECT_EQ(workers, kSpans);  // no span lost or torn under interleaving
}

TEST_F(TraceTest, RingKeepsMostRecentAndCountsDropped) {
  Tracer& t = Tracer::global();
  t.enable(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    IWG_TRACE_SPAN(span, "ev" + std::to_string(i), "test");
  }
  t.disable();
  EXPECT_EQ(t.recorded(), 10);
  EXPECT_EQ(t.dropped(), 6);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(evs[static_cast<std::size_t>(i)].name,
              "ev" + std::to_string(6 + i));  // oldest dropped, order kept
  }
}

TEST_F(TraceTest, SuppressMutesRecordingOnThisThread) {
  Tracer& t = Tracer::global();
  t.enable();
  {
    Suppress mute;
    IWG_TRACE_SCOPE("muted", "test");
    EXPECT_FALSE(t.active());
    {
      Suppress nested;  // nesting must not unmute on destruction
    }
    EXPECT_FALSE(t.active());
  }
  EXPECT_TRUE(t.active());
  { IWG_TRACE_SCOPE("recorded", "test"); }
  t.disable();
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].name, "recorded");
}

TEST_F(TraceTest, ConvOptionsTraceFalseSuppressesConvSpans) {
  const ConvShape s = [] {
    ConvShape sh;
    sh.n = 1;
    sh.ih = 4;
    sh.iw = 9;
    sh.ic = 4;
    sh.oc = 4;
    sh.fh = 3;
    sh.fw = 3;
    sh.ph = 1;
    sh.pw = 1;
    sh.validate();
    return sh;
  }();
  TensorF x({s.n, s.ih, s.iw, s.ic});
  TensorF w({s.oc, s.fh, s.fw, s.ic});
  x.fill(0.5f);
  w.fill(0.25f);

  Tracer& t = Tracer::global();
  t.enable();
  core::ConvOptions muted;
  muted.trace = false;
  core::conv2d(x, w, s, muted);
  EXPECT_EQ(t.recorded(), 0);
  core::conv2d(x, w, s, core::ConvOptions{});
  EXPECT_GT(t.recorded(), 0);
  t.disable();
}

TEST_F(TraceTest, ChromeJsonCarriesMetricsCounters) {
  MetricsRegistry::global().counter("test.export_counter").add(41);
  Tracer& t = Tracer::global();
  t.enable();
  { IWG_TRACE_SCOPE("with_metrics", "test"); }
  t.disable();

  const Json doc = parse_trace(t.chrome_json(/*include_metrics=*/true));
  bool found = false;
  for (const Json& e : doc.at("traceEvents").arr) {
    if (e.at("ph").str == "C" && e.at("name").str == "test.export_counter") {
      found = true;
      EXPECT_GE(e.at("args").at("value").num, 41.0);
    }
  }
  EXPECT_TRUE(found);

  const Json bare = parse_trace(t.chrome_json(/*include_metrics=*/false));
  for (const Json& e : bare.at("traceEvents").arr) {
    EXPECT_NE(e.at("ph").str, "C");
  }
}

TEST(Metrics, CountersAreRaceFreeUnderParallelFor) {
  Counter& cached = MetricsRegistry::global().counter("test.race_cached");
  const std::int64_t before = cached.value();
  const int kAdds = 10000;
  ThreadPool::global().parallel_for(kAdds, [&](std::int64_t) {
    cached.add();
    // The registry-lookup path must be just as safe as a cached reference.
    MetricsRegistry::global().counter("test.race_lookup").add();
  });
  EXPECT_EQ(cached.value() - before, kAdds);
  EXPECT_EQ(MetricsRegistry::global().counter("test.race_lookup").value() %
                kAdds,
            0);
}

TEST(Metrics, DistributionSummaryIsExactBelowReservoirCap) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.record(static_cast<double>(i));
  const auto s = d.summary();
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.0, 1.0);
  EXPECT_NEAR(s.p99, 99.0, 1.0);
  d.reset();
  EXPECT_EQ(d.summary().count, 0);
}

TEST(Metrics, ResetZeroesValuesButKeepsReferencesValid) {
  Counter& c = MetricsRegistry::global().counter("test.reset_ref");
  c.add(5);
  MetricsRegistry::global().reset();
  EXPECT_EQ(c.value(), 0);
  c.add(2);  // the cached reference still points at the live counter
  EXPECT_EQ(MetricsRegistry::global().counter("test.reset_ref").value(), 2);
}

TEST(Metrics, TextReportListsEveryMetric) {
  MetricsRegistry::global().counter("test.report_counter").add(3);
  MetricsRegistry::global().distribution("test.report_dist").record(1.5);
  const std::string report = MetricsRegistry::global().text_report();
  EXPECT_NE(report.find("test.report_counter"), std::string::npos);
  EXPECT_NE(report.find("test.report_dist"), std::string::npos);
  EXPECT_NE(report.find("count=1"), std::string::npos);
}

TEST(Metrics, FlushReportWritesMetricsFileOnDemand) {
  const std::string path =
      testing::TempDir() + "iwg_flush_report_test_metrics.txt";
  std::remove(path.c_str());
  MetricsRegistry::global().counter("test.flush_counter").add(9);
  set_report_paths(/*trace_path=*/"", /*metrics_path=*/path);
  ASSERT_TRUE(flush_report());

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "flush_report did not create " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string report = ss.str();
  EXPECT_NE(report.find("test.flush_counter"), std::string::npos);

  // A second flush atomically replaces the first (no stale temp left over).
  MetricsRegistry::global().counter("test.flush_counter_second").add(1);
  ASSERT_TRUE(flush_report());
  std::ifstream in2(path);
  std::stringstream ss2;
  ss2 << in2.rdbuf();
  EXPECT_NE(ss2.str().find("test.flush_counter_second"), std::string::npos);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());

  set_report_paths("", "");  // unconfigure so later tests aren't affected
  EXPECT_FALSE(flush_report());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Request-scoped context and flow events (the flight-recorder layer).

TEST_F(TraceTest, ContextScopeInheritsIntoSpansAndRestores) {
  EXPECT_FALSE(current_context().valid());
  Context ctx;
  ctx.trace_id = new_trace_id();
  ctx.request_id = 42;

  Tracer& t = Tracer::global();
  t.enable();
  {
    ContextScope scope(ctx);
    EXPECT_EQ(current_context().trace_id, ctx.trace_id);
    { IWG_TRACE_SCOPE("with_ctx", "test"); }
    {
      Context inner;
      inner.trace_id = new_trace_id();
      inner.request_id = 7;
      ContextScope nested(inner);
      EXPECT_EQ(current_context().request_id, 7u);
    }
    EXPECT_EQ(current_context().request_id, 42u);  // nested scope restored
  }
  EXPECT_FALSE(current_context().valid());  // outer scope restored
  { IWG_TRACE_SCOPE("no_ctx", "test"); }
  t.disable();

  const Json doc = parse_trace(t.chrome_json(/*include_metrics=*/false));
  const Json* with_ctx = nullptr;
  const Json* no_ctx = nullptr;
  for (const Json& e : doc.at("traceEvents").arr) {
    if (e.at("name").str == "with_ctx") with_ctx = &e;
    if (e.at("name").str == "no_ctx") no_ctx = &e;
  }
  ASSERT_NE(with_ctx, nullptr);
  ASSERT_NE(no_ctx, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(with_ctx->at("args").at("trace_id").num),
            ctx.trace_id);
  EXPECT_EQ(with_ctx->at("args").at("request_id").num, 42.0);
  EXPECT_FALSE(no_ctx->at("args").has("trace_id"));
}

TEST_F(TraceTest, FlowEventsChainRequestSpansAcrossThreads) {
  Tracer& t = Tracer::global();
  t.enable();
  Context req;
  req.trace_id = new_trace_id();
  req.request_id = 1;
  {
    ContextScope scope(req);  // "client" side of the hand-off
    IWG_TRACE_SCOPE("enqueue", "test");
  }
  std::thread worker([&] {  // "worker" side: context re-installed explicitly
    ContextScope scope(req);
    { IWG_TRACE_SCOPE("dispatch", "test"); }
    { IWG_TRACE_SCOPE("complete", "test"); }
  });
  worker.join();
  Context lone;  // a one-span chain must NOT emit flow events
  lone.trace_id = new_trace_id();
  lone.request_id = 2;
  {
    ContextScope scope(lone);
    IWG_TRACE_SCOPE("lone_span", "test");
  }
  t.disable();

  const Json doc = parse_trace(t.chrome_json(/*include_metrics=*/false));
  std::vector<const Json*> flows;
  for (const Json& e : doc.at("traceEvents").arr) {
    if (e.at("cat").str == "flow") flows.push_back(&e);
  }
  ASSERT_EQ(flows.size(), 3u);  // enqueue/dispatch/complete, nothing for lone
  EXPECT_EQ(flows[0]->at("ph").str, "s");
  EXPECT_EQ(flows[1]->at("ph").str, "t");
  EXPECT_EQ(flows[2]->at("ph").str, "f");
  EXPECT_EQ(flows[2]->at("bp").str, "e");  // bind to enclosing slice
  for (const Json* f : flows) {
    EXPECT_EQ(static_cast<std::uint64_t>(f->at("id").num), req.trace_id);
  }
  // The chain genuinely crosses threads: enqueue on this thread, the rest on
  // the worker. That is the hand-off the arrows render in Perfetto.
  EXPECT_NE(flows[0]->at("tid").num, flows[1]->at("tid").num);
  EXPECT_EQ(flows[1]->at("tid").num, flows[2]->at("tid").num);

  // Each flow event's ts lies inside its span so viewers bind it to the
  // right slice (Chrome binds flows positionally, not by id alone).
  const char* names[] = {"enqueue", "dispatch", "complete"};
  for (int i = 0; i < 3; ++i) {
    const Json* span = nullptr;
    for (const Json& e : doc.at("traceEvents").arr) {
      if (e.at("name").str == names[i]) span = &e;
    }
    ASSERT_NE(span, nullptr);
    EXPECT_GE(flows[static_cast<std::size_t>(i)]->at("ts").num,
              span->at("ts").num);
    EXPECT_LE(flows[static_cast<std::size_t>(i)]->at("ts").num,
              span->at("ts").num + span->at("dur").num);
  }
}

TEST_F(TraceTest, ControlCharsInNamesAndArgsExportValidJson) {
  Tracer& t = Tracer::global();
  t.enable();
  {
    IWG_TRACE_SPAN(span, std::string("multi\nline\tname"), "test");
    span.arg("note", std::string("ctl\x01" "end"));
  }
  t.disable();

  const std::string json = t.chrome_json(/*include_metrics=*/false);
  // Raw control characters would be invalid JSON; they must leave as
  // escapes (\n, \t, \u0001).
  EXPECT_EQ(json.find('\x01'), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("multi\\nline\\tname"), std::string::npos);

  const Json doc = parse_trace(json);
  const Json* ev = nullptr;
  for (const Json& e : doc.at("traceEvents").arr) {
    if (e.at("name").str == "multi\nline\tname") ev = &e;
  }
  ASSERT_NE(ev, nullptr);  // \n and \t round-trip through the parser
  // The mini parser maps \uXXXX escapes to '?' — good enough to prove the
  // arg survived as a parseable string.
  EXPECT_EQ(ev->at("args").at("note").str, "ctl?end");
}

TEST_F(TraceTest, RingWraparoundUnderParallelForKeepsAccounting) {
  Tracer& t = Tracer::global();
  constexpr std::int64_t kCap = 32;
  constexpr int kSpans = 500;
  t.enable(/*capacity=*/kCap);
  ThreadPool::global().parallel_for(kSpans, [](std::int64_t i) {
    IWG_TRACE_SPAN(span, "wrap", "test");
    span.arg("job", i);
  });
  t.disable();

  EXPECT_EQ(t.recorded(), kSpans);
  EXPECT_EQ(t.dropped(), kSpans - kCap);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), static_cast<std::size_t>(kCap));
  // Residents are distinct jobs (no event duplicated or torn by the wrap).
  std::vector<bool> seen(kSpans, false);
  for (const Event& e : evs) {
    EXPECT_EQ(e.name, "wrap");
    ASSERT_EQ(e.args.size(), 1u);
    const auto job = static_cast<std::size_t>(e.args[0].inum);
    ASSERT_LT(job, seen.size());
    EXPECT_FALSE(seen[job]);
    seen[job] = true;
  }
  // And the post-wrap ring still exports parseable JSON.
  parse_trace(t.chrome_json(/*include_metrics=*/false));
}

// ---------------------------------------------------------------------------
// Histogram (exact, lock-free, mergeable) and Prometheus exposition.

TEST(Metrics, HistogramCountsAreExactAndQuantilesInterpolate) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1000);
  EXPECT_DOUBLE_EQ(s.sum, 500500.0);
  EXPECT_DOUBLE_EQ(s.mean(), 500.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  std::int64_t bucket_total = 0;
  for (const std::int64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);  // every value landed in some bucket
  // Log2 buckets are coarse, but interpolation must keep quantiles ordered
  // and inside the observed range.
  EXPECT_GE(s.quantile(0.5), 256.0);
  EXPECT_LE(s.quantile(0.5), 1000.0);
  EXPECT_GE(s.quantile(0.99), s.quantile(0.5));
  EXPECT_LE(s.quantile(1.0), 1000.0);
  EXPECT_GE(s.quantile(0.0), 1.0);

  // A constant stream clamps every quantile to the single observed value.
  Histogram c;
  for (int i = 0; i < 100; ++i) c.record(5.0);
  EXPECT_DOUBLE_EQ(c.snapshot().quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(c.snapshot().quantile(0.99), 5.0);

  h.reset();
  EXPECT_EQ(h.snapshot().count, 0);
}

TEST(Metrics, HistogramSnapshotsMergeLosslessly) {
  Histogram a;
  a.record(0.0);  // bucket 0 absorbs zero and negatives
  a.record(-3.0);
  a.record(10.0);
  Histogram b;
  for (int i = 1; i <= 100; ++i) b.record(static_cast<double>(i));

  auto merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count, 103);
  EXPECT_DOUBLE_EQ(merged.min, -3.0);
  EXPECT_DOUBLE_EQ(merged.max, 100.0);
  EXPECT_DOUBLE_EQ(merged.sum, 7.0 + 5050.0);
  std::int64_t bucket_total = 0;
  for (const std::int64_t v : merged.buckets) bucket_total += v;
  EXPECT_EQ(bucket_total, merged.count);
}

TEST(Metrics, HistogramBucketEdgesCoverValues) {
  for (const double v : {0.0001, 0.5, 1.0, 3.0, 1024.0, 1e9}) {
    const int i = Histogram::bucket_index(v);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, Histogram::kBuckets);
    EXPECT_LT(v, Histogram::bucket_hi(i));
    if (i > 0) {
      EXPECT_GE(v, Histogram::bucket_lo(i));
    }
  }
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-7.0), 0);
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kBuckets - 1);
}

TEST(Metrics, HistogramIsExactUnderParallelFor) {
  Histogram h;
  const int kN = 20000;
  ThreadPool::global().parallel_for(kN, [&](std::int64_t i) {
    h.record(static_cast<double>(i % 7 + 1));
  });
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, kN);  // exact: no sample is dropped under contention
  double expect_sum = 0.0;
  for (int i = 0; i < kN; ++i) expect_sum += static_cast<double>(i % 7 + 1);
  EXPECT_DOUBLE_EQ(s.sum, expect_sum);  // small-int adds are exact in double
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

TEST(Metrics, DistributionMarksSaturatedReservoirAsApproximate) {
  Distribution d;
  const auto kN =
      static_cast<std::int64_t>(Distribution::kMaxSamples) + 1024;
  for (std::int64_t i = 0; i < kN; ++i) {
    d.record(static_cast<double>(i));
  }
  const auto s = d.summary();
  EXPECT_EQ(s.count, kN);
  EXPECT_EQ(s.samples, static_cast<std::int64_t>(Distribution::kMaxSamples));
  EXPECT_TRUE(s.degraded());

  Distribution& reg =
      MetricsRegistry::global().distribution("test.degraded_dist");
  for (std::int64_t i = 0; i < kN; ++i) {
    reg.record(static_cast<double>(i));
  }
  const std::string report = MetricsRegistry::global().text_report();
  // The saturated reservoir must be marked, not silently approximate.
  EXPECT_NE(report.find("~"), std::string::npos);
  EXPECT_NE(report.find("approx:"), std::string::npos);
}

TEST(Metrics, SanitizeMetricNameMapsToPrometheusCharset) {
  EXPECT_EQ(sanitize_metric_name("serve.latency_us.ok"),
            "serve_latency_us_ok");
  EXPECT_EQ(sanitize_metric_name("a:b_c1"), "a:b_c1");  // colons are legal
  EXPECT_EQ(sanitize_metric_name("9lives"), "_9lives");
  EXPECT_EQ(sanitize_metric_name("spaces and-dashes"), "spaces_and_dashes");
}

TEST(Metrics, PrometheusTextExposition) {
  ResetGuard guard;  // exact-value assertions: isolate from run order
  auto& reg = MetricsRegistry::global();
  reg.counter("test.prom/counter").add(7);
  Histogram& h = reg.histogram("test.prom_hist");
  h.reset();
  h.record(1.0);
  h.record(2.0);
  h.record(1000.0);
  reg.distribution("test.prom_dist").record(2.5);

  const std::string page = reg.prometheus_text();
  const auto npos = std::string::npos;
  EXPECT_NE(page.find("# TYPE test_prom_counter counter"), npos);
  EXPECT_NE(page.find("test_prom_counter 7\n"), npos);
  EXPECT_NE(page.find("# TYPE test_prom_hist histogram"), npos);
  EXPECT_NE(page.find("test_prom_hist_bucket{le=\"+Inf\"} 3\n"), npos);
  EXPECT_NE(page.find("test_prom_hist_sum 1003\n"), npos);
  EXPECT_NE(page.find("test_prom_hist_count 3\n"), npos);
  EXPECT_NE(page.find("# TYPE test_prom_dist summary"), npos);
  EXPECT_NE(page.find("test_prom_dist{quantile=\"0.5\"} 2.5\n"), npos);
  EXPECT_NE(page.find("test_prom_dist_count 1\n"), npos);

  // Bucket lines must be cumulative (non-decreasing) and end at _count.
  std::istringstream in(page);
  std::string line;
  std::int64_t prev = 0;
  int bucket_lines = 0;
  while (std::getline(in, line)) {
    if (line.rfind("test_prom_hist_bucket", 0) != 0) continue;
    const auto pos = line.find("} ");
    ASSERT_NE(pos, npos);
    const std::int64_t cum = std::stoll(line.substr(pos + 2));
    EXPECT_GE(cum, prev);
    prev = cum;
    ++bucket_lines;
  }
  EXPECT_GE(bucket_lines, 2);
  EXPECT_EQ(prev, 3);  // the +Inf bucket agrees with _count
}

TEST(Metrics, PrometheusTenantLabelExposition) {
  ResetGuard guard;  // exact-value assertions: isolate from run order
  auto& reg = MetricsRegistry::global();
  // The serve.tenant.<id>.<rest> convention must export as ONE family per
  // <rest> with the tenant id as a label, not as per-tenant metric names.
  reg.counter("serve.tenant.promgold.completed").add(7);
  reg.counter("serve.tenant.prombronze.completed").add(3);
  Histogram& h = reg.histogram("serve.tenant.promgold.latency_us");
  h.reset();
  h.record(10.0);
  h.record(20.0);

  const std::string page = reg.prometheus_text();
  const auto npos = std::string::npos;
  EXPECT_NE(page.find("serve_tenant_completed{tenant=\"promgold\"} 7\n"),
            npos);
  EXPECT_NE(page.find("serve_tenant_completed{tenant=\"prombronze\"} 3\n"),
            npos);
  // The raw per-tenant name must NOT leak into the exposition.
  EXPECT_EQ(page.find("serve_tenant_promgold_completed"), npos);

  // One # TYPE line per family, even though the sorted snapshot scatters
  // the tenants (prombronze sorts before promgold).
  const std::string type_line = "# TYPE serve_tenant_completed counter";
  const std::size_t first = page.find(type_line);
  ASSERT_NE(first, npos);
  EXPECT_EQ(page.find(type_line, first + type_line.size()), npos);

  // Histogram series carry the tenant label on every line, with le last.
  EXPECT_NE(
      page.find("serve_tenant_latency_us_bucket{tenant=\"promgold\",le="),
      npos);
  EXPECT_NE(page.find("serve_tenant_latency_us_bucket{tenant=\"promgold\","
                      "le=\"+Inf\"} 2\n"),
            npos);
  EXPECT_NE(page.find("serve_tenant_latency_us_sum{tenant=\"promgold\"} 30\n"),
            npos);
  EXPECT_NE(
      page.find("serve_tenant_latency_us_count{tenant=\"promgold\"} 2\n"),
      npos);
}

TEST(Metrics, PrometheusTenantLabelValueIsEscaped) {
  ResetGuard guard;
  auto& reg = MetricsRegistry::global();
  // Tenant ids reaching the registry through TenantMetrics are dot-free,
  // but label VALUES may hold any UTF-8 — quotes and backslashes must be
  // escaped per the exposition format.
  reg.counter("serve.tenant.we\"ird\\x.completed").add(1);
  const std::string page = reg.prometheus_text();
  EXPECT_NE(
      page.find("serve_tenant_completed{tenant=\"we\\\"ird\\\\x\"} 1\n"),
      std::string::npos);
}

TEST(Metrics, PrometheusTenantPrefixWithoutSuffixStaysPlain) {
  ResetGuard guard;
  auto& reg = MetricsRegistry::global();
  // A name that starts with the prefix but has no <rest> component cannot
  // be split into (id, family) — it must fall back to the plain mapping.
  reg.counter("serve.tenant.loners").add(2);
  const std::string page = reg.prometheus_text();
  EXPECT_NE(page.find("serve_tenant_loners 2\n"), std::string::npos);
}

TEST(Metrics, FlushReportWritesPrometheusFileOnDemand) {
  const std::string path = testing::TempDir() + "iwg_flush_report_test.prom";
  std::remove(path.c_str());
  MetricsRegistry::global().counter("test.prom_flush_counter").add(3);
  set_report_paths(/*trace_path=*/"", /*metrics_path=*/"",
                   /*prometheus_path=*/path);
  ASSERT_TRUE(flush_report());

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "flush_report did not create " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("test_prom_flush_counter 3"), std::string::npos);
  EXPECT_NE(ss.str().find("# TYPE"), std::string::npos);

  set_report_paths("", "", "");  // unconfigure for later tests
  EXPECT_FALSE(flush_report());
  std::remove(path.c_str());
}

TEST(Metrics, HistogramSnapshotDeltaIsExactPerInterval) {
  Histogram h;
  h.record(2.0);
  h.record(8.0);
  const Histogram::Snapshot t0 = h.snapshot();
  h.record(4.0);
  h.record(4.0);
  h.record(64.0);
  const Histogram::Snapshot t1 = h.snapshot();

  const Histogram::Snapshot d = t1.delta(t0);
  EXPECT_EQ(d.count, 3);
  EXPECT_DOUBLE_EQ(d.sum, 72.0);
  EXPECT_EQ(d.buckets[Histogram::bucket_index(4.0)], 2);
  EXPECT_EQ(d.buckets[Histogram::bucket_index(64.0)], 1);
  // min/max are the tightest provable bounds: occupied delta buckets'
  // edges, clamped to the cumulative extremes.
  EXPECT_LE(d.min, 4.0);
  EXPECT_GE(d.max, 64.0);
  EXPECT_GE(d.min, t1.min);
  EXPECT_LE(d.max, t1.max);

  // Consecutive deltas merge back into the cumulative interval.
  h.record(16.0);
  const Histogram::Snapshot t2 = h.snapshot();
  Histogram::Snapshot merged = t1.delta(t0);
  merged.merge(t2.delta(t1));
  EXPECT_EQ(merged.count, 4);
  EXPECT_DOUBLE_EQ(merged.sum, 88.0);

  // Empty interval → empty snapshot, not garbage.
  const Histogram::Snapshot none = t2.delta(t2);
  EXPECT_EQ(none.count, 0);
  EXPECT_DOUBLE_EQ(none.sum, 0.0);
}

TEST(Metrics, HistogramSnapshotDeltaUnderConcurrentRecord) {
  // A monitor snapshots on an interval while workers keep recording. Torn
  // snapshots are allowed (count/sum/buckets race benignly), but every
  // delta must be sane — no negative bucket counts — and the interval
  // counts must cover every record once the stream quiesces.
  Histogram h;
  constexpr int kWriters = 4;
  constexpr std::int64_t kPerWriter = 50000;
  // Baseline before any writer starts, so every record falls inside some
  // monitored interval and the deltas must account for all of them.
  Histogram::Snapshot prev = h.snapshot();
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&h, w] {
      for (std::int64_t i = 0; i < kPerWriter; ++i) {
        h.record(static_cast<double>((i + w) % 1024 + 1));
      }
    });
  }
  std::int64_t delta_total = 0;
  while (prev.count < kWriters * kPerWriter) {
    const Histogram::Snapshot cur = h.snapshot();
    const Histogram::Snapshot d = cur.delta(prev);
    EXPECT_GE(d.count, 0);
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      ASSERT_GE(d.buckets[b], 0) << "negative bucket delta at " << b;
    }
    delta_total += d.count;
    prev = cur;
  }
  for (auto& t : writers) t.join();
  const Histogram::Snapshot fin = h.snapshot();
  delta_total += fin.delta(prev).count;
  EXPECT_EQ(fin.count, kWriters * kPerWriter);
  EXPECT_EQ(delta_total, fin.count);  // intervals tile the stream exactly
}

TEST(Metrics, PrometheusPageCarriesHelpBuildInfoAndUptime) {
  ResetGuard guard;
  auto& reg = MetricsRegistry::global();
  reg.set_help("test.helped_counter", "A counter with registered help.");
  reg.counter("test.helped_counter").add(1);
  reg.counter("test.unhelped_counter").add(1);
  reg.set_build_label("flavor", "unit-test");

  const std::string page = reg.prometheus_text();
  const auto npos = std::string::npos;
  // Registered help verbatim; unregistered families get a generic line.
  EXPECT_NE(
      page.find("# HELP test_helped_counter A counter with registered help."),
      npos);
  EXPECT_NE(page.find("# HELP test_unhelped_counter "), npos);
  // Every # TYPE is preceded by a # HELP for the same family.
  std::istringstream in(page);
  std::string line;
  std::string prev_line;
  while (std::getline(in, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string family = line.substr(7, line.find(' ', 7) - 7);
      ASSERT_EQ(prev_line.rfind("# HELP " + family + " ", 0), 0u)
          << "# TYPE without adjacent # HELP: " << line;
    }
    prev_line = line;
  }
  // Synthesized identity gauges lead the page.
  EXPECT_NE(page.find("# TYPE iwg_build_info gauge"), npos);
  EXPECT_NE(page.find("flavor=\"unit-test\""), npos);
  const std::size_t bi = page.find("iwg_build_info{");
  ASSERT_NE(bi, npos);
  EXPECT_NE(page.find("} 1\n", bi), npos);
#ifdef IWG_TRACE_DISABLE
  EXPECT_NE(page.find("trace=\"off\""), npos);
#else
  EXPECT_NE(page.find("trace=\"on\""), npos);
#endif
  EXPECT_NE(page.find("# TYPE iwg_process_uptime_seconds gauge"), npos);
  EXPECT_NE(page.find("iwg_process_uptime_seconds "), npos);
}

TEST(Metrics, ResetGuardScopesExactValues) {
  auto& reg = MetricsRegistry::global();
  Counter& c = reg.counter("test.reset_guard_counter");
  c.add(41);
  {
    ResetGuard guard;
    // Entry reset: the scope starts from zero no matter what ran before.
    EXPECT_EQ(c.value(), 0);
    c.add(7);
    EXPECT_EQ(c.value(), 7);
  }
  // Exit reset: nothing leaks into whatever runs after the scope.
  EXPECT_EQ(c.value(), 0);
}

}  // namespace
}  // namespace iwg::trace
