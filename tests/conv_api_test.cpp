// Public-API tests: planning options, host-vs-simulator agreement, and the
// profiling entry points.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/conv_api.hpp"
#include "tensor/layout.hpp"
#include "reference/direct_conv.hpp"
#include "tensor/metrics.hpp"

namespace iwg::core {
namespace {

TensorF rand_tensor(std::initializer_list<std::int64_t> dims, unsigned seed) {
  Rng rng(seed);
  TensorF t(dims);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

ConvShape shape_3x3(std::int64_t iw = 13) {
  ConvShape s;
  s.n = 1;
  s.ih = 8;
  s.iw = iw;
  s.ic = 8;
  s.oc = 16;
  s.fh = 3;
  s.fw = 3;
  s.ph = 1;
  s.pw = 1;
  s.validate();
  return s;
}

TEST(ConvApi, PlanForUsesWinogradByDefault) {
  const auto plan = plan_for(shape_3x3());
  ASSERT_FALSE(plan.empty());
  EXPECT_FALSE(plan[0].is_gemm);
  EXPECT_EQ(plan[0].cfg.r, 3);
}

TEST(ConvApi, PlanForGemmOnly) {
  ConvOptions opts;
  opts.use_winograd = false;
  const auto plan = plan_for(shape_3x3(), opts);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_TRUE(plan[0].is_gemm);
}

TEST(ConvApi, PlanForFallsBackOutsideSupportedWidths) {
  ConvShape s = shape_3x3();
  s.fw = 11;
  s.pw = 5;
  const auto plan = plan_for(s);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_TRUE(plan[0].is_gemm);

  ConvShape s1 = shape_3x3();
  s1.fw = 1;
  s1.pw = 0;
  const auto plan1 = plan_for(s1);
  ASSERT_EQ(plan1.size(), 1u);
  EXPECT_TRUE(plan1[0].is_gemm);
}

TEST(ConvApi, C64RequiresChannelMultiples) {
  ConvShape s = shape_3x3();
  s.fw = 9;
  s.pw = 4;
  s.iw = 24;
  s.ic = 64;
  s.oc = 64;
  ConvOptions opts;
  opts.allow_c64 = true;
  const auto plan = plan_for(s, opts);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan[0].cfg.variant, Variant::kC64);

  s.ic = 48;  // not a multiple of 64
  const auto plan2 = plan_for(s, opts);
  EXPECT_NE(plan2[0].cfg.variant, Variant::kC64);
}

TEST(ConvApi, PlanSingleCoversWidthExactly) {
  const ConvShape s = shape_3x3(17);
  const auto plan = plan_single(s, GammaConfig::make(8, 6, 3));
  std::int64_t covered = 0;
  for (const auto& seg : plan) covered += seg.ow_len;
  EXPECT_EQ(covered, s.ow());
  EXPECT_TRUE(plan.back().is_gemm);  // 17 % 6 != 0
}

TEST(ConvApi, HostAndSimulatorAgree) {
  // Same plan through both execution paths: results must be numerically
  // close (different accumulation orders, same algorithm).
  const ConvShape s = shape_3x3(14);
  const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 1);
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 2);
  const auto plan = plan_for(s);
  const TensorF host = conv2d(x, w, s);
  const TensorF simv = conv2d_sim(x, w, s, plan);
  EXPECT_LT(max_rel_diff(host, simv), 1e-4);
}

TEST(ConvApi, DeconvHostAndSimulatorAgree) {
  const ConvShape s = shape_3x3(14);
  TensorF dy = rand_tensor({s.n, s.oh(), s.ow(), s.oc}, 3);
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 4);
  const ConvShape b = GammaKernel::make_backward_shape(s);
  const TensorF host = deconv2d(dy, w, s);
  const TensorF simv = deconv2d_sim(dy, w, s, plan_for(b));
  ASSERT_TRUE(host.same_shape(simv));
  EXPECT_LT(max_rel_diff(host, simv), 1e-4);
}

TEST(ConvApi, ProfileReportsSaneNumbers) {
  const ConvShape s = ConvShape::from_ofms(8, 32, 32, 64, 3);
  const auto dev = sim::DeviceProfile::rtx3060ti();
  const auto rep = profile_conv2d(s, dev, plan_for(s), 4);
  EXPECT_GT(rep.time_s, 0.0);
  EXPECT_GT(rep.gflops, 0.0);
  EXPECT_LT(rep.gflops, 2.0 * dev.peak_gflops() * 4.5);  // Φmax = 4.5
  EXPECT_GT(rep.transpose_s, 0.0);
  EXPECT_GT(rep.time_with_transpose(), rep.time_s);
  EXPECT_LT(rep.gflops_with_transpose(s.flops()), rep.gflops);
  EXPECT_EQ(rep.segments.size(), plan_for(s).size());
}

TEST(ConvApi, ProfileGemmBothLayouts) {
  const ConvShape s = ConvShape::from_ofms(8, 32, 32, 64, 3);
  const auto dev = sim::DeviceProfile::rtx3060ti();
  for (GemmLayout layout : {GemmLayout::kNHWC, GemmLayout::kNCHW}) {
    const auto rep = profile_gemm_conv2d(s, dev, layout, 4);
    EXPECT_GT(rep.gflops, 0.0);
    // Standard convolution cannot beat peak.
    EXPECT_LT(rep.gflops, dev.peak_gflops());
  }
}

TEST(ConvApi, BackwardShapeRoundTrip) {
  ConvShape s;
  s.n = 2;
  s.ih = 10;
  s.iw = 12;
  s.ic = 5;
  s.oc = 7;
  s.fh = 5;
  s.fw = 3;
  s.ph = 2;
  s.pw = 1;
  s.validate();
  const ConvShape b = GammaKernel::make_backward_shape(s);
  EXPECT_EQ(b.ic, s.oc);
  EXPECT_EQ(b.oc, s.ic);
  EXPECT_EQ(b.oh(), s.ih);
  EXPECT_EQ(b.ow(), s.iw);
  // Backward of the backward restores the forward geometry.
  const ConvShape f = GammaKernel::make_backward_shape(b);
  EXPECT_EQ(f.ih, s.ih);
  EXPECT_EQ(f.iw, s.iw);
  EXPECT_EQ(f.ic, s.ic);
  EXPECT_EQ(f.oc, s.oc);
  EXPECT_EQ(f.ph, s.ph);
}

TEST(ConvApi, NchwEntryPointMatchesNhwc) {
  const ConvShape s = shape_3x3(12);
  const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 9);
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 10);
  const TensorF y_nhwc = conv2d(x, w, s);
  const TensorF y_nchw = conv2d_nchw(nhwc_to_nchw(x), w, s);
  const TensorF back = nchw_to_nhwc(y_nchw);
  for (std::int64_t i = 0; i < y_nhwc.size(); ++i) {
    EXPECT_EQ(back[i], y_nhwc[i]);
  }
}

TEST(ConvApi, DeconvNchwEntryPointMatchesNhwc) {
  const ConvShape s = shape_3x3(12);
  const TensorF dy = rand_tensor({s.n, s.oh(), s.ow(), s.oc}, 11);
  const TensorF w = rand_tensor({s.oc, s.fh, s.fw, s.ic}, 12);
  const TensorF dx_nhwc = deconv2d(dy, w, s);
  const TensorF dx_nchw = deconv2d_nchw(nhwc_to_nchw(dy), w, s);
  const TensorF back = nchw_to_nhwc(dx_nchw);
  ASSERT_TRUE(back.same_shape(dx_nhwc));
  for (std::int64_t i = 0; i < dx_nhwc.size(); ++i) {
    EXPECT_EQ(back[i], dx_nhwc[i]);
  }
}

TEST(ConvApi, GflopsWithTransposeGuardsZeroTime) {
  // Regression: a default-constructed report divided by zero time.
  ConvPerfReport rep;
  EXPECT_DOUBLE_EQ(rep.gflops_with_transpose(1e9), 0.0);
}

TEST(ConvApi, MismatchedTensorsRejected) {
  const ConvShape s = shape_3x3();
  TensorF x({1, 8, 13, 4});  // wrong IC
  TensorF w({16, 3, 3, 8});
  EXPECT_THROW(conv2d(x, w, s), Error);
}

}  // namespace
}  // namespace iwg::core
