// Property tests of the autotuning selector: the choice must equal the
// brute-force argmax over every profiled candidate for a sweep of shapes
// (all filter widths, boundary remainders, channels on both sides of the
// c64 gate), the search space must be materially wider than the old
// 3-fixed-chain selector, and the zero-budget heuristic fallback must still
// produce an executable plan.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "core/selector.hpp"
#include "reference/direct_conv.hpp"
#include "tensor/metrics.hpp"

namespace iwg::core {
namespace {

/// Minimal-height shape: one batch row, oh == 1, no padding, so profiling
/// many candidates stays cheap while OW exercises the boundary planner.
ConvShape make_shape(int r, std::int64_t ow, std::int64_t channels) {
  ConvShape s;
  s.n = 1;
  s.fh = r;
  s.fw = r;
  s.ih = r;  // oh == 1
  s.iw = ow + r - 1;
  s.ic = channels;
  s.oc = channels;
  s.ph = 0;
  s.pw = 0;
  s.validate();
  return s;
}

/// Re-run the selector's search by hand: profile every candidate plus the
/// GEMM baseline and take the strict argmax in enumeration order.
AlgoChoice brute_force(const ConvShape& s, const sim::DeviceProfile& dev,
                       int samples) {
  double best_gflops = 0.0;
  std::vector<Segment> best_plan;
  bool winograd = false;
  for (const auto& cand : enumerate_candidates(s)) {
    const auto rep = profile_conv2d(s, dev, cand.plan, samples);
    if (rep.gflops > best_gflops) {
      best_gflops = rep.gflops;
      best_plan = cand.plan;
      winograd = true;
    }
  }
  const auto gemm = profile_gemm_conv2d(s, dev, GemmLayout::kNHWC, samples);
  if (gemm.gflops > best_gflops) {
    best_gflops = gemm.gflops;
    best_plan.clear();
    winograd = false;
  }
  AlgoChoice c;
  c.use_winograd = winograd;
  c.plan = std::move(best_plan);
  c.est_gflops = best_gflops;
  return c;
}

TEST(SelectorExhaustive, ChoiceEqualsBruteForceArgmaxOverAllCandidates) {
  const auto dev = sim::DeviceProfile::rtx3060ti();
  const int samples = 1;
  for (int r = 2; r <= 9; ++r) {
    const auto priority = kernel_priority(r, true, true);
    ASSERT_FALSE(priority.empty());
    const std::int64_t n = priority[0].n;
    for (std::int64_t mod : {std::int64_t{0}, std::int64_t{1}, n - 1}) {
      const std::int64_t ow = 3 * n + mod;
      for (std::int64_t channels : {std::int64_t{16}, std::int64_t{64}}) {
        const ConvShape s = make_shape(r, ow, channels);
        const auto choice = select_algorithm(s, dev, samples);
        const auto want = brute_force(s, dev, samples);
        EXPECT_EQ(choice.use_winograd, want.use_winograd)
            << s.to_string();
        EXPECT_DOUBLE_EQ(choice.est_gflops, want.est_gflops)
            << s.to_string();
        EXPECT_EQ(choice.plan, want.plan) << s.to_string();
      }
    }
  }
}

TEST(SelectorExhaustive, ExploresAtLeastEightCandidatesFor7x7C64) {
  // Acceptance gate: a 7x7 shape with c64-eligible channels must expose a
  // materially wider search than the old 3-chain selector. OW = 35 leaves a
  // remainder for every kernel, so chains over {c64, g16, g16_ruse,
  // g8_ruse, g8} subsets stay distinct.
  const ConvShape s = make_shape(7, 35, 64);
  const auto candidates = enumerate_candidates(s);
  EXPECT_GE(candidates.size(), 8u);
  const auto choice =
      select_algorithm(s, sim::DeviceProfile::rtx3060ti(), /*samples=*/1);
  EXPECT_GE(choice.candidates_profiled, 8);
  EXPECT_EQ(choice.candidates_enumerated,
            static_cast<int>(candidates.size()));
}

TEST(SelectorExhaustive, CandidatesAreDistinctAndCoverOw) {
  for (int r = 2; r <= 9; ++r) {
    const ConvShape s = make_shape(r, 29, 64);
    std::set<std::string> seen;
    for (const auto& cand : enumerate_candidates(s)) {
      std::ostringstream sig;
      for (const auto& seg : cand.plan) {
        sig << (seg.is_gemm ? "G" : seg.cfg.name()) << '@' << seg.ow_start
            << '+' << seg.ow_len << ';';
      }
      EXPECT_TRUE(seen.insert(sig.str()).second)
          << "duplicate candidate " << cand.label;
      std::int64_t covered = 0;
      for (const auto& seg : cand.plan) {
        EXPECT_EQ(seg.ow_start, covered);
        covered += seg.ow_len;
      }
      EXPECT_EQ(covered, s.ow()) << cand.label;
    }
  }
}

TEST(SelectorExhaustive, ZeroBudgetHeuristicPlanIsExecutableForAllWidths) {
  const auto dev = sim::DeviceProfile::rtx3060ti();
  for (int r = 2; r <= 9; ++r) {
    const ConvShape s = make_shape(r, 2 * r + 3, 8);
    const auto choice = select_algorithm(s, dev, 1, TuningBudget{0});
    EXPECT_TRUE(choice.heuristic);
    const auto plan = choice.executable_plan(s);
    ASSERT_FALSE(plan.empty());

    Rng data(100 + static_cast<unsigned>(r));
    TensorF x({s.n, s.ih, s.iw, s.ic});
    x.fill_uniform(data, -1.0f, 1.0f);
    TensorF w({s.oc, s.fh, s.fw, s.ic});
    w.fill_uniform(data, -1.0f, 1.0f);
    const TensorF want = ref::conv2d_direct(x, w, s);
    const TensorF got = conv2d(x, w, s, plan);
    const double tol = r >= 7 ? 1e-2 : 5e-4;
    EXPECT_LT(max_rel_diff(got, want), tol) << s.to_string();
  }
}

}  // namespace
}  // namespace iwg::core
