#include <gtest/gtest.h>

#include "tensor/metrics.hpp"

namespace iwg {
namespace {

TEST(Metrics, AverageRelativeErrorZeroForExactMatch) {
  TensorF a({4});
  TensorD b({4});
  for (int i = 0; i < 4; ++i) {
    a[i] = static_cast<float>(i + 1);
    b[i] = i + 1;
  }
  EXPECT_DOUBLE_EQ(average_relative_error(a, b), 0.0);
}

TEST(Metrics, AverageRelativeErrorSimpleCase) {
  TensorF a({2});
  TensorD b({2});
  a[0] = 1.1f;
  b[0] = 1.0;
  a[1] = 2.0f;
  b[1] = 2.0;
  EXPECT_NEAR(average_relative_error(a, b), 0.05, 1e-6);
}

TEST(Metrics, RelativeErrorsNearZeroTruthUseAbsolute) {
  TensorF a({1});
  TensorD b({1});
  a[0] = 1e-3f;
  b[0] = 0.0;
  const auto errs = relative_errors(a, b);
  EXPECT_NEAR(errs[0], 1e-3, 1e-9);
}

TEST(Metrics, MaxAbsAndRelDiff) {
  TensorF a({3}), b({3});
  a[0] = 1.0f; b[0] = 1.0f;
  a[1] = 2.0f; b[1] = 2.5f;
  a[2] = -1.0f; b[2] = -1.25f;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
  EXPECT_NEAR(max_rel_diff(a, b), 0.5 / 3.5, 1e-12);
}

TEST(Metrics, HistogramBucketsValues) {
  const std::vector<double> vals = {0.05, 0.15, 0.15, 0.25, 0.95, 1.5};
  const std::vector<double> edges = {0.0, 0.1, 0.2, 0.3, 1.0};
  const auto h = histogram(vals, edges);
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], 1);
  EXPECT_EQ(h[1], 2);
  EXPECT_EQ(h[2], 1);
  EXPECT_EQ(h[3], 1);  // 1.5 falls outside all buckets and is dropped
}

TEST(Metrics, EmptyTensorsGiveZeroErrorNotNaN) {
  // Regression: sum / size() was 0/0 = NaN on empty inputs.
  TensorF a;  // default-constructed: rank 0, size 0
  TensorD b;
  const double avg = average_relative_error(a, b);
  EXPECT_FALSE(std::isnan(avg));
  EXPECT_DOUBLE_EQ(avg, 0.0);
  EXPECT_TRUE(relative_errors(a, b).empty());
}

TEST(Metrics, MismatchedSizesThrow) {
  TensorF a({3});
  TensorD b({4});
  EXPECT_THROW(average_relative_error(a, b), Error);
}

}  // namespace
}  // namespace iwg
