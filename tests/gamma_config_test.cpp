// Tests of the Γ kernel configurations (§5.1/§5.4/§5.6 constants) and the
// §5.5 boundary planner.
#include <gtest/gtest.h>

#include "core/gamma_config.hpp"

namespace iwg::core {
namespace {

TEST(GammaConfig, PaperBlockGeometry) {
  // §5.1: BN×BM = 64×64 (α=4), 64×32 (α=8), 32×32 (α=16); BK = 8;
  // 16×16 threads; 64 accumulators per thread.
  const GammaConfig g4 = GammaConfig::make(4, 2, 3);
  EXPECT_EQ(g4.bn, 64);
  EXPECT_EQ(g4.bm, 64);
  EXPECT_EQ(g4.bk, 8);
  EXPECT_EQ(g4.threads(), 256);
  EXPECT_EQ(g4.accumulators_per_thread(), 64);
  EXPECT_TRUE(g4.double_buffer);

  const GammaConfig g8 = GammaConfig::make(8, 6, 3);
  EXPECT_EQ(g8.bn, 64);
  EXPECT_EQ(g8.bm, 32);
  EXPECT_EQ(g8.accumulators_per_thread(), 64);
  EXPECT_TRUE(g8.double_buffer);
  EXPECT_TRUE(g8.swizzle_ds);  // §5.2: Γ8's Ds cannot be padded

  const GammaConfig g16 = GammaConfig::make(16, 8, 9);
  EXPECT_EQ(g16.bn, 32);
  EXPECT_EQ(g16.bm, 32);
  EXPECT_FALSE(g16.double_buffer);
  EXPECT_FALSE(g16.swizzle_ds);  // padded instead
}

TEST(GammaConfig, SmemBudgets) {
  // §5.1: a block needs 4α(BN+BM)BK bytes (single buffer); α ∈ {4,8}
  // double-buffer within the 49152-byte limit; Γ16 leaves 16384 bytes free
  // (§5.6) and c64 uses the full maximum.
  EXPECT_EQ(GammaConfig::make(8, 6, 3).smem_bytes(), 49152);
  const GammaConfig g16 = GammaConfig::make(16, 8, 9);
  EXPECT_LE(g16.smem_bytes(), 49152 - 14000);
  const GammaConfig c64 = GammaConfig::make(16, 8, 9, Variant::kC64);
  EXPECT_EQ(c64.smem_bytes(), 49152);
  EXPECT_LE(GammaConfig::make(4, 2, 3).smem_bytes(), 49152);
}

TEST(GammaConfig, RuseGeometry) {
  // §5.4: 16×8 threads, twice the accumulators, 8×(16×8) outer products.
  const GammaConfig r8 = GammaConfig::make(8, 4, 5, Variant::kRuse);
  EXPECT_EQ(r8.threads(), 128);
  EXPECT_EQ(r8.accumulators_per_thread(), 128);
  EXPECT_EQ(r8.a_len, 8);
  EXPECT_EQ(r8.b_len, 16);
  EXPECT_EQ(r8.input_tiles_per_thread, 2);
  EXPECT_GT(r8.regs_per_thread(),
            GammaConfig::make(8, 4, 5).regs_per_thread());
}

TEST(GammaConfig, C64Geometry) {
  const GammaConfig c = GammaConfig::make(16, 10, 7, Variant::kC64);
  EXPECT_EQ(c.bn, 64);
  EXPECT_EQ(c.bm, 32);
  EXPECT_EQ(c.threads(), 256);
  EXPECT_EQ(c.accumulators_per_thread(), 128);
}

TEST(GammaConfig, ArithmeticIntensityFormulas) {
  // §5.6 worked example: Γc64_16(8,9) = 15.06, 47.1% over Γ16(8,9) = 10.24,
  // 23.5% over Γruse_16(8,9) = 12.19.
  EXPECT_NEAR(GammaConfig::make(16, 8, 9).arithmetic_intensity(), 10.24, 0.01);
  EXPECT_NEAR(GammaConfig::make(16, 8, 9, Variant::kRuse).arithmetic_intensity(),
              12.19, 0.01);
  EXPECT_NEAR(GammaConfig::make(16, 8, 9, Variant::kC64).arithmetic_intensity(),
              15.06, 0.01);
}

TEST(GammaConfig, RuseProfitabilityRule) {
  // §5.4: profitable iff (r−1)/α ≥ 0.4375 — i.e. the variants the paper
  // ships: Γruse8(4,5), (3,6), (2,7), Γruse16(9,8), (8,9).
  EXPECT_TRUE(GammaConfig::ruse_profitable(8, 5));
  EXPECT_TRUE(GammaConfig::ruse_profitable(8, 6));
  EXPECT_TRUE(GammaConfig::ruse_profitable(8, 7));
  EXPECT_TRUE(GammaConfig::ruse_profitable(16, 8));
  EXPECT_TRUE(GammaConfig::ruse_profitable(16, 9));
  EXPECT_FALSE(GammaConfig::ruse_profitable(8, 4));
  EXPECT_FALSE(GammaConfig::ruse_profitable(8, 3));
  EXPECT_FALSE(GammaConfig::ruse_profitable(16, 7));
}

TEST(GammaConfig, InvalidConfigsRejected) {
  EXPECT_THROW(GammaConfig::make(8, 5, 3), Error);   // n+r−1 ≠ α
  EXPECT_THROW(GammaConfig::make(12, 6, 7), Error);  // α not in {4,8,16}
  EXPECT_THROW(GammaConfig::make(8, 1, 8), Error);   // n < 2
  EXPECT_THROW(GammaConfig::make(8, 4, 5, Variant::kC64), Error);
  EXPECT_THROW(GammaConfig::make(4, 2, 3, Variant::kRuse), Error);
}

TEST(GammaConfig, Names) {
  EXPECT_EQ(GammaConfig::make(8, 6, 3).name(), "gamma8(6,3)");
  EXPECT_EQ(GammaConfig::make(16, 8, 9, Variant::kC64).name(),
            "gamma16_c64(8,9)");
  EXPECT_EQ(GammaConfig::make(8, 4, 5, Variant::kRuse).name(),
            "gamma8_ruse(4,5)");
}

// ---------------------------------------------------------------------------
// Boundary planner (§5.5).

void check_plan_covers(const std::vector<Segment>& plan, std::int64_t ow) {
  std::int64_t pos = 0;
  for (const Segment& s : plan) {
    EXPECT_EQ(s.ow_start, pos) << "gap or overlap";
    EXPECT_GT(s.ow_len, 0);
    if (!s.is_gemm) {
      const std::int64_t gran =
          static_cast<std::int64_t>(s.cfg.n) *
          (s.cfg.variant == Variant::kRuse ? 2 : 1);
      EXPECT_EQ(s.ow_len % gran, 0);
    }
    pos += s.ow_len;
  }
  EXPECT_EQ(pos, ow);
}

TEST(BoundaryPlanner, CoversEveryWidthForEveryFilter) {
  for (int r = 2; r <= 9; ++r) {
    for (std::int64_t ow = 1; ow <= 40; ++ow) {
      check_plan_covers(plan_boundary(ow, r, true, true), ow);
      check_plan_covers(plan_boundary(ow, r, false, false), ow);
    }
  }
}

TEST(BoundaryPlanner, PaperFigure7Example) {
  // FW = 3, Figure 7: Γ8(6,3) takes the largest part divisible by 6, the
  // Γ4 kernel takes the remainder's multiple of 2, GEMM the rest.
  const auto plan = plan_boundary(23, 3, true, false);
  ASSERT_GE(plan.size(), 2u);
  EXPECT_FALSE(plan[0].is_gemm);
  EXPECT_EQ(plan[0].cfg.alpha, 8);
  EXPECT_EQ(plan[0].cfg.n, 6);
  EXPECT_EQ(plan[0].ow_len, 18);
  EXPECT_FALSE(plan[1].is_gemm);
  EXPECT_EQ(plan[1].cfg.alpha, 4);
  EXPECT_EQ(plan[1].ow_len, 4);
  EXPECT_TRUE(plan.back().is_gemm);
  EXPECT_EQ(plan.back().ow_len, 1);
}

TEST(BoundaryPlanner, ExactCoverNeedsNoGemm) {
  const auto plan = plan_boundary(24, 3, true, false);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_FALSE(plan[0].is_gemm);
  EXPECT_EQ(plan[0].ow_len, 24);
}

TEST(BoundaryPlanner, TinyWidthFallsBackToGemm) {
  const auto plan = plan_boundary(1, 9, true, false);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_TRUE(plan[0].is_gemm);
}

TEST(BoundaryPlanner, RuseOutranksBaseWhenProfitable) {
  const auto plan = plan_boundary(32, 5, /*allow_ruse=*/true, false);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan[0].cfg.variant, Variant::kRuse);
  const auto plan2 = plan_boundary(32, 5, /*allow_ruse=*/false, false);
  EXPECT_EQ(plan2[0].cfg.variant, Variant::kBase);
}

TEST(BoundaryPlanner, C64PreferredForLargeFilters) {
  const auto plan = plan_boundary(40, 7, true, /*allow_c64=*/true);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan[0].cfg.variant, Variant::kC64);
  EXPECT_EQ(plan[0].cfg.alpha, 16);
}

TEST(BoundaryPlanner, PriorityListsUsePaperKernels) {
  // r=7 chain includes Γ16(10,7) then Γ8(2,7).
  const auto list = kernel_priority(7, true, false);
  ASSERT_GE(list.size(), 2u);
  EXPECT_EQ(list[0].alpha, 16);
  EXPECT_EQ(list[0].n, 10);
  EXPECT_EQ(list.back().alpha, 8);
  EXPECT_EQ(list.back().n, 2);
  EXPECT_THROW(kernel_priority(10, true, false), Error);
  EXPECT_THROW(kernel_priority(1, true, false), Error);
}

}  // namespace
}  // namespace iwg::core
