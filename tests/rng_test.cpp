#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace iwg {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.uniform(1.0f, 2.0f);
    EXPECT_GE(v, 1.0f);
    EXPECT_LT(v, 2.0f);
  }
}

TEST(Rng, UniformMeanApproximatelyCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform(0.0f, 1.0f);
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.03);
  EXPECT_NEAR(sq / kSamples, 1.0, 0.05);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(10), 10u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LE(same, 1);
}

}  // namespace
}  // namespace iwg
