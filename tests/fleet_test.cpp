// Fleet-subsystem tests: token-bucket admission, ModelRegistry lifecycle,
// hot weight swap under live traffic (zero drops, monotone versions, no
// stale filter transforms), weighted-fair dequeue shares, EDF-vs-FIFO
// intra-tenant ordering, deregistration mid-traffic (every-future-resolves
// extended to remove_tenant), and batched-vs-single-request bit parity
// through the fleet dispatch path.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/trace.hpp"
#include "nn/layers.hpp"
#include "nn/model.hpp"
#include "nn/serialize.hpp"
#include "obs/slo_monitor.hpp"
#include "serve/serve.hpp"

namespace iwg::serve {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Helpers (mirroring serve_test.cpp)

/// Tiny conv net with a classifier head; same seed → identical weights.
/// Fixed 8×8×3 input (Flatten + Linear head).
nn::Model make_tiny_classifier(unsigned seed = 7) {
  Rng rng(seed);
  nn::Model m;
  m.add(std::make_unique<nn::Conv2D>(3, 8, 3, 1, 1, nn::ConvEngine::kWinograd,
                                     rng, "c1"));
  m.add(std::make_unique<nn::BatchNorm2D>(8));
  m.add(std::make_unique<nn::LeakyReLU>());
  m.add(std::make_unique<nn::Conv2D>(8, 8, 3, 1, 1, nn::ConvEngine::kWinograd,
                                     rng, "c2"));
  m.add(std::make_unique<nn::LeakyReLU>());
  m.add(std::make_unique<nn::MaxPool2x2>());
  m.add(std::make_unique<nn::Flatten>());
  m.add(std::make_unique<nn::Linear>(4 * 4 * 8, 10, rng, "fc"));
  return m;
}

/// Conv-only net (no flatten/linear), so it accepts any H×W.
nn::Model make_tiny_fcn(unsigned seed = 11) {
  Rng rng(seed);
  nn::Model m;
  m.add(std::make_unique<nn::Conv2D>(3, 4, 3, 1, 1, nn::ConvEngine::kWinograd,
                                     rng, "c1"));
  m.add(std::make_unique<nn::LeakyReLU>());
  return m;
}

TensorF random_image(Rng& rng, std::int64_t h = 8, std::int64_t w = 8,
                     std::int64_t c = 3) {
  TensorF x({h, w, c});
  x.fill_uniform(rng, -1.0f, 1.0f);
  return x;
}

/// Reference: run one image through the model as a batch of 1.
TensorF infer_single(const nn::Model& m, const TensorF& img) {
  TensorF x({1, img.dim(0), img.dim(1), img.dim(2)});
  std::memcpy(x.data(), img.data(),
              static_cast<std::size_t>(img.size()) * sizeof(float));
  return m.infer(x);
}

bool bits_equal(const TensorF& a, const TensorF& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(float)) == 0;
}

TenantConfig tenant_cfg(const std::string& id, double weight = 1.0) {
  TenantConfig cfg;
  cfg.id = id;
  cfg.weight = weight;
  cfg.image_h = 8;
  cfg.image_w = 8;
  cfg.channels = 3;
  return cfg;
}

FleetConfig fleet_cfg() {
  FleetConfig cfg;
  cfg.workers = 2;
  cfg.max_wait = 2ms;
  cfg.idle_wait = 5ms;
  return cfg;
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

// ---------------------------------------------------------------------------
// TokenBucket

TEST(TokenBucket, UnlimitedWhenRateZero) {
  TokenBucket b(TokenBucketConfig{0.0, 1.0});
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(b.try_acquire());
}

TEST(TokenBucket, BurstThenRefillAtRate) {
  // Synthetic clock: the bucket only looks at the time points we pass in.
  const Clock::time_point t0 = Clock::now() + 1h;  // after construction time
  TokenBucket b(TokenBucketConfig{/*rate_per_sec=*/2.0, /*burst=*/3.0});
  EXPECT_TRUE(b.try_acquire(t0));
  EXPECT_TRUE(b.try_acquire(t0));
  EXPECT_TRUE(b.try_acquire(t0));    // burst capacity spent
  EXPECT_FALSE(b.try_acquire(t0));   // empty at t0
  EXPECT_FALSE(b.try_acquire(t0 + 100ms));  // 0.2 tokens accrued — not enough
  EXPECT_TRUE(b.try_acquire(t0 + 600ms));   // 1.2 tokens accrued
  EXPECT_FALSE(b.try_acquire(t0 + 600ms));  // 0.2 left
}

TEST(TokenBucket, RefillCapsAtBurst) {
  const Clock::time_point t0 = Clock::now() + 1h;
  TokenBucket b(TokenBucketConfig{/*rate_per_sec=*/1000.0, /*burst=*/2.0});
  EXPECT_TRUE(b.try_acquire(t0));
  EXPECT_TRUE(b.try_acquire(t0));
  // A long idle accrues at most `burst` tokens, not rate × elapsed.
  const Clock::time_point later = t0 + 10s;
  EXPECT_TRUE(b.try_acquire(later));
  EXPECT_TRUE(b.try_acquire(later));
  EXPECT_FALSE(b.try_acquire(later));
}

// ---------------------------------------------------------------------------
// ModelRegistry

TEST(ModelRegistry, RegisterFindDeregister) {
  ModelRegistry reg;
  auto t = reg.register_model(make_tiny_fcn(), tenant_cfg("alpha"));
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.find("alpha"), t);
  EXPECT_EQ(reg.find("missing"), nullptr);
  // Duplicate, empty, and dotted ids are rejected at the API boundary.
  EXPECT_THROW(reg.register_model(make_tiny_fcn(), tenant_cfg("alpha")),
               Error);
  EXPECT_THROW(reg.register_model(make_tiny_fcn(), tenant_cfg("")), Error);
  EXPECT_THROW(reg.register_model(make_tiny_fcn(), tenant_cfg("a.b")), Error);
  TenantConfig bad = tenant_cfg("beta");
  bad.weight = 0.0;
  EXPECT_THROW(reg.register_model(make_tiny_fcn(), bad), Error);
  EXPECT_TRUE(reg.deregister("alpha"));
  EXPECT_FALSE(reg.deregister("alpha"));
  EXPECT_EQ(reg.size(), 0u);
}

TEST(ModelRegistry, SwapWeightsBumpsVersionAndChangesOutputs) {
  const std::string path_b = temp_path("iwg_fleet_swap_b.iwgw");
  nn::Model donor = make_tiny_classifier(/*seed=*/21);
  nn::save_weights(donor, path_b);

  ModelRegistry reg;
  auto t = reg.register_model(make_tiny_classifier(/*seed=*/7),
                              tenant_cfg("alpha"));
  Rng rng(5);
  const TensorF img = random_image(rng);
  const TensorF before = infer_single(t->model, img);
  const std::uint64_t v0 = t->min_param_version();
  EXPECT_EQ(t->weight_epoch.load(), 0u);

  const std::uint64_t v1 = reg.swap_weights("alpha", path_b);
  EXPECT_GT(v1, v0);
  EXPECT_EQ(t->weight_epoch.load(), 1u);

  // Post-swap inference must match a fresh model with the same weights bit
  // for bit — a stale FilterTransformCache entry (old ĝ, old version key)
  // would produce different conv outputs.
  const TensorF after = infer_single(t->model, img);
  EXPECT_FALSE(bits_equal(before, after));
  EXPECT_TRUE(bits_equal(after, infer_single(donor, img)));

  EXPECT_THROW(reg.swap_weights("missing", path_b), Error);
  std::remove(path_b.c_str());
}

// ---------------------------------------------------------------------------
// FleetScheduler: basic serving + parity

TEST(FleetScheduler, ServesTenantsWithBitExactParityAndTenantMetrics) {
  FleetScheduler fleet(fleet_cfg());
  fleet.add_tenant(make_tiny_classifier(/*seed=*/7), tenant_cfg("alpha"));
  fleet.add_tenant(make_tiny_fcn(/*seed=*/11), tenant_cfg("beta"));
  const nn::Model ref_a = make_tiny_classifier(7);
  const nn::Model ref_b = make_tiny_fcn(11);

  Rng rng(3);
  std::vector<TensorF> imgs_a, imgs_b;
  std::vector<std::future<Response>> futs_a, futs_b;
  for (int i = 0; i < 12; ++i) {
    imgs_a.push_back(random_image(rng, 8, 8));
    // Mixed shapes for the conv-only tenant — exercises ragged dispatch.
    const std::int64_t hw = (i % 3 == 0) ? 6 : 8;
    imgs_b.push_back(random_image(rng, hw, hw));
    TensorF a = imgs_a.back();
    TensorF b = imgs_b.back();
    futs_a.push_back(fleet.submit("alpha", std::move(a)));
    futs_b.push_back(fleet.submit("beta", std::move(b)));
  }
  for (int i = 0; i < 12; ++i) {
    const Response ra = futs_a[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(ra.status, Status::kOk) << ra.reason;
    EXPECT_TRUE(bits_equal(ra.output,
                           infer_single(ref_a, imgs_a[static_cast<std::size_t>(i)])));
    const Response rb = futs_b[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(rb.status, Status::kOk) << rb.reason;
    EXPECT_TRUE(bits_equal(rb.output,
                           infer_single(ref_b, imgs_b[static_cast<std::size_t>(i)])));
  }
  fleet.stop(/*drain=*/true);
  const FleetScheduler::Stats s = fleet.stats();
  EXPECT_TRUE(s.all_resolved());
  EXPECT_EQ(s.tenants.at("alpha").completed, 12);
  EXPECT_EQ(s.tenants.at("beta").completed, 12);
  // Per-tenant metrics exported with the tenant id as a Prometheus label.
  const std::string page = fleet.stats_report();
  EXPECT_NE(page.find("serve_tenant_completed{tenant=\"alpha\"}"),
            std::string::npos);
  EXPECT_NE(page.find("serve_tenant_completed{tenant=\"beta\"}"),
            std::string::npos);
  EXPECT_NE(page.find("serve_tenant_latency_us_bucket{tenant=\"alpha\",le="),
            std::string::npos);
}

TEST(FleetScheduler, UnknownTenantResolvesRejected) {
  FleetScheduler fleet(fleet_cfg());
  Rng rng(1);
  auto f = fleet.submit("nobody", random_image(rng));
  const Response r = f.get();
  EXPECT_EQ(r.status, Status::kRejected);
  EXPECT_EQ(r.reason, "unknown tenant");
  fleet.stop();
}

TEST(FleetScheduler, AddTenantAfterStopThrows) {
  FleetScheduler fleet(fleet_cfg());
  fleet.stop();
  EXPECT_THROW(fleet.add_tenant(make_tiny_fcn(), tenant_cfg("late")), Error);
}

// ---------------------------------------------------------------------------
// Admission: rate limit + queue capacity

TEST(FleetScheduler, RateLimitedSubmitsResolveRejected) {
  FleetConfig fc = fleet_cfg();
  FleetScheduler fleet(fc);
  TenantConfig cfg = tenant_cfg("limited");
  cfg.rate = TokenBucketConfig{/*rate_per_sec=*/1e-6, /*burst=*/2.0};
  fleet.add_tenant(make_tiny_fcn(), cfg);
  Rng rng(2);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 6; ++i) futs.push_back(fleet.submit("limited", random_image(rng)));
  int ok_or_queued = 0, rate_limited = 0;
  fleet.stop(/*drain=*/true);
  for (auto& f : futs) {
    const Response r = f.get();
    if (r.status == Status::kOk) {
      ++ok_or_queued;
    } else {
      EXPECT_EQ(r.status, Status::kRejected);
      EXPECT_EQ(r.reason, "rate limited");
      ++rate_limited;
    }
  }
  EXPECT_EQ(ok_or_queued, 2);  // the burst capacity
  EXPECT_EQ(rate_limited, 4);
  const FleetScheduler::Stats s = fleet.stats();
  EXPECT_EQ(s.tenants.at("limited").rejected, 4);
  EXPECT_TRUE(s.all_resolved());
}

TEST(FleetScheduler, FullTenantQueueRejectsWithReason) {
  FleetConfig fc = fleet_cfg();
  fc.workers = 1;
  fc.max_wait = 500ms;  // a lone request parks; capacity fills behind it
  FleetScheduler fleet(fc);
  TenantConfig cfg = tenant_cfg("narrow");
  cfg.queue_capacity = 1;
  fleet.add_tenant(make_tiny_fcn(), cfg);
  Rng rng(4);
  auto f1 = fleet.submit("narrow", random_image(rng));
  auto f2 = fleet.submit("narrow", random_image(rng));
  const Response r2 = f2.get();  // rejected synchronously at admission
  EXPECT_EQ(r2.status, Status::kRejected);
  EXPECT_EQ(r2.reason, "queue full");
  fleet.stop(/*drain=*/true);
  EXPECT_EQ(f1.get().status, Status::kOk);
  EXPECT_TRUE(fleet.stats().all_resolved());
}

// ---------------------------------------------------------------------------
// Intra-tenant ordering: EDF vs FIFO

/// Submit a heavy no-deadline filler to occupy the single worker, then a
/// loose-deadline request followed by a tight-deadline one. Returns
/// (queue_us of loose, queue_us of tight) — dispatch order decides them.
std::pair<double, double> ordering_probe(TenantOrder order) {
  FleetConfig fc;
  fc.workers = 1;
  fc.max_wait = 0us;  // every queued request is immediately dispatchable
  fc.idle_wait = 5ms;
  fc.order = order;
  FleetScheduler fleet(fc);
  TenantConfig cfg = tenant_cfg("t");
  cfg.max_batch = 1;  // one request per batch → dispatch order observable
  fleet.add_tenant(make_tiny_fcn(), cfg);
  Rng rng(6);
  // Heavy filler: large image through the conv net keeps the worker busy
  // while the ordered pair is enqueued.
  auto filler = fleet.submit("t", random_image(rng, 128, 128));
  // Wait until the worker has claimed the filler, so the pair below is
  // queued behind a busy worker rather than racing it.
  while (fleet.queue_depth("t") != 0) std::this_thread::yield();
  // The pair uses mid-size images so per-request service time dominates the
  // sub-millisecond submission gap between them.
  auto loose = fleet.submit("t", random_image(rng, 64, 64), Deadline::after(10s));
  auto tight = fleet.submit("t", random_image(rng, 64, 64), Deadline::after(2s));
  const Response rl = loose.get();
  const Response rt = tight.get();
  EXPECT_EQ(filler.get().status, Status::kOk);
  EXPECT_EQ(rl.status, Status::kOk);
  EXPECT_EQ(rt.status, Status::kOk);
  fleet.stop(/*drain=*/true);
  return {rl.queue_us, rt.queue_us};
}

TEST(FleetScheduler, EdfServesTightDeadlineFirst) {
  const auto [loose_queue_us, tight_queue_us] = ordering_probe(TenantOrder::kEdf);
  // EDF reorders: the tight request (submitted second) dispatches first.
  EXPECT_LT(tight_queue_us, loose_queue_us);
}

TEST(FleetScheduler, FifoPreservesArrivalOrder) {
  const auto [loose_queue_us, tight_queue_us] = ordering_probe(TenantOrder::kFifo);
  EXPECT_LT(loose_queue_us, tight_queue_us);
}

TEST(FleetScheduler, ExpiredQueuedRequestsAreShedBeforeDispatch) {
  FleetConfig fc = fleet_cfg();
  fc.workers = 1;
  FleetScheduler fleet(fc);
  fleet.add_tenant(make_tiny_fcn(), tenant_cfg("t"));
  Rng rng(8);
  // A hopeless deadline among healthy traffic: it must resolve kExpired,
  // not consume model time, and the healthy requests still serve.
  auto doomed = fleet.submit("t", random_image(rng), Deadline::after(1us));
  std::vector<std::future<Response>> healthy;
  for (int i = 0; i < 4; ++i) {
    healthy.push_back(fleet.submit("t", random_image(rng), Deadline::after(10s)));
  }
  const Response rd = doomed.get();
  EXPECT_EQ(rd.status, Status::kExpired);
  EXPECT_EQ(rd.reason, "deadline expired before dispatch");
  for (auto& f : healthy) EXPECT_EQ(f.get().status, Status::kOk);
  fleet.stop(/*drain=*/true);
  const FleetScheduler::Stats s = fleet.stats();
  EXPECT_EQ(s.tenants.at("t").expired, 1);
  EXPECT_TRUE(s.all_resolved());
}

// ---------------------------------------------------------------------------
// Weighted-fair dequeue

TEST(FleetScheduler, WeightedFairSharesTrackWeightsUnderBacklog) {
  FleetConfig fc;
  fc.workers = 2;
  fc.max_wait = 0us;  // dispatch as fast as batches assemble
  fc.idle_wait = 5ms;
  FleetScheduler fleet(fc);
  const double weights[3] = {4.0, 2.0, 1.0};
  const char* ids[3] = {"gold", "silver", "bronze"};
  for (int t = 0; t < 3; ++t) {
    TenantConfig cfg = tenant_cfg(ids[t], weights[t]);
    cfg.max_batch = 4;
    cfg.queue_capacity = 1024;
    fleet.add_tenant(make_tiny_fcn(static_cast<unsigned>(20 + t)), cfg);
  }
  // Saturate every tenant queue, then measure shares over a window that
  // starts only after the backlog exists (excludes the ramp during which
  // only the first tenant had traffic).
  Rng rng(9);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 900; ++i) {
    for (int t = 0; t < 3; ++t) {
      futs.push_back(fleet.submit(ids[t], random_image(rng)));
    }
  }
  std::int64_t base[3];
  std::int64_t base_total = 0;
  {
    const FleetScheduler::Stats s0 = fleet.stats();
    for (int t = 0; t < 3; ++t) {
      base[t] = s0.tenants.count(ids[t]) ? s0.tenants.at(ids[t]).completed : 0;
      base_total += base[t];
    }
  }
  for (;;) {
    const FleetScheduler::Stats s = fleet.stats();
    std::int64_t total = 0;
    for (int t = 0; t < 3; ++t) total += s.tenants.at(ids[t]).completed;
    if (total - base_total >= 420) break;
    std::this_thread::sleep_for(1ms);
  }
  fleet.stop(/*drain=*/false);  // freeze the window; remainder sheds
  const FleetScheduler::Stats s = fleet.stats();
  std::int64_t window[3];
  std::int64_t total = 0;
  for (int t = 0; t < 3; ++t) {
    window[t] = s.tenants.at(ids[t]).completed - base[t];
    total += window[t];
  }
  ASSERT_GT(total, 0);
  for (int t = 0; t < 3; ++t) {
    const double share = static_cast<double>(window[t]) / static_cast<double>(total);
    const double expect = weights[t] / 7.0;
    // The bench gates 15%; the unit test allows 25% relative deviation to
    // stay robust on loaded CI machines.
    EXPECT_NEAR(share, expect, 0.25 * expect)
        << ids[t] << " share " << share << " vs weight share " << expect;
  }
  EXPECT_TRUE(s.all_resolved());
}

// ---------------------------------------------------------------------------
// Hot weight swap under live traffic

TEST(FleetScheduler, HotSwapUnderTrafficZeroDropsMonotoneVersions) {
  const std::string path_a = temp_path("iwg_fleet_hot_a.iwgw");
  const std::string path_b = temp_path("iwg_fleet_hot_b.iwgw");
  nn::Model model_a = make_tiny_classifier(/*seed=*/31);
  nn::Model model_b = make_tiny_classifier(/*seed=*/32);
  nn::save_weights(model_a, path_a);
  nn::save_weights(model_b, path_b);

  // One fixed input: every kOk response must bit-match the reference output
  // of weights A or weights B — a torn weight state or a stale transform
  // cache hit would produce a third bit pattern.
  Rng rng(10);
  const TensorF img = random_image(rng);
  const TensorF ref_a = infer_single(model_a, img);
  const TensorF ref_b = infer_single(model_b, img);
  ASSERT_FALSE(bits_equal(ref_a, ref_b));

  FleetConfig fc = fleet_cfg();
  fc.workers = 2;
  FleetScheduler fleet(fc);
  TenantConfig hot_cfg = tenant_cfg("hot");
  hot_cfg.queue_capacity = 4096;  // zero-drop assertion needs zero rejects
  fleet.add_tenant(make_tiny_classifier(/*seed=*/31), hot_cfg);

  constexpr int kClients = 4;
  constexpr int kPerClient = 60;
  std::vector<std::vector<std::future<Response>>> futs(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto& mine = futs[static_cast<std::size_t>(c)];
      mine.reserve(kPerClient);
      for (int i = 0; i < kPerClient; ++i) {
        TensorF copy = img;
        mine.push_back(fleet.submit("hot", std::move(copy)));
        if (i % 16 == 15) std::this_thread::sleep_for(500us);
      }
    });
  }
  // Concurrent swaps while the clients hammer the tenant.
  constexpr int kSwaps = 8;
  std::uint64_t versions[kSwaps];
  for (int sw = 0; sw < kSwaps; ++sw) {
    versions[sw] =
        fleet.swap_weights("hot", (sw % 2 == 0) ? path_b : path_a);
    std::this_thread::sleep_for(1ms);
  }
  for (auto& t : clients) t.join();

  std::int64_t ok = 0;
  for (auto& per_client : futs) {
    for (auto& f : per_client) {
      const Response r = f.get();
      ASSERT_EQ(r.status, Status::kOk) << r.reason;  // zero drops/failures
      EXPECT_TRUE(bits_equal(r.output, ref_a) || bits_equal(r.output, ref_b));
      ++ok;
    }
  }
  EXPECT_EQ(ok, kClients * kPerClient);
  for (int sw = 1; sw < kSwaps; ++sw) {
    EXPECT_GT(versions[sw], versions[sw - 1]);  // monotone Param::version
  }
  EXPECT_EQ(fleet.registry().find("hot")->weight_epoch.load(),
            static_cast<std::uint64_t>(kSwaps));

  // After the final swap (sw = 7, odd → weights A), a fresh request must
  // match weights A exactly — no stale ĝ survives the version bump.
  TensorF last = img;
  const Response r = fleet.submit("hot", std::move(last)).get();
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_TRUE(bits_equal(r.output, ref_a));

  fleet.stop(/*drain=*/true);
  EXPECT_TRUE(fleet.stats().all_resolved());
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

// ---------------------------------------------------------------------------
// Deregistration mid-traffic: every future still resolves

TEST(FleetScheduler, RemoveTenantWithDrainServesBacklog) {
  FleetConfig fc = fleet_cfg();
  FleetScheduler fleet(fc);
  fleet.add_tenant(make_tiny_fcn(1), tenant_cfg("keep"));
  fleet.add_tenant(make_tiny_fcn(2), tenant_cfg("gone"));
  Rng rng(12);
  std::vector<std::future<Response>> gone_futs, keep_futs;
  for (int i = 0; i < 24; ++i) {
    gone_futs.push_back(fleet.submit("gone", random_image(rng)));
    keep_futs.push_back(fleet.submit("keep", random_image(rng)));
  }
  ASSERT_TRUE(fleet.remove_tenant("gone", /*drain=*/true));
  EXPECT_EQ(fleet.tenant_count(), 1u);
  for (auto& f : gone_futs) EXPECT_EQ(f.get().status, Status::kOk);
  // Submits after deregistration resolve immediately (unknown tenant).
  const Response late = fleet.submit("gone", random_image(rng)).get();
  EXPECT_EQ(late.status, Status::kRejected);
  EXPECT_EQ(late.reason, "unknown tenant");
  // The surviving tenant is unaffected.
  for (auto& f : keep_futs) EXPECT_EQ(f.get().status, Status::kOk);
  fleet.stop(/*drain=*/true);
  const FleetScheduler::Stats s = fleet.stats();
  EXPECT_TRUE(s.all_resolved());
  EXPECT_EQ(s.tenants.at("gone").completed, 24);
}

TEST(FleetScheduler, RemoveTenantWithoutDrainResolvesQueuedShutdown) {
  FleetConfig fc = fleet_cfg();
  fc.workers = 1;
  fc.max_wait = 500ms;  // short batches park; the backlog persists
  FleetScheduler fleet(fc);
  TenantConfig cfg = tenant_cfg("gone");
  cfg.max_batch = 64;  // never fills → nothing dispatches before max_wait
  fleet.add_tenant(make_tiny_fcn(), cfg);
  Rng rng(13);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(fleet.submit("gone", random_image(rng)));
  ASSERT_TRUE(fleet.remove_tenant("gone", /*drain=*/false));
  EXPECT_FALSE(fleet.remove_tenant("gone", /*drain=*/false));
  int ok = 0, shutdown = 0;
  for (auto& f : futs) {
    const Response r = f.get();  // every future resolves promptly
    if (r.status == Status::kOk) {
      ++ok;  // a worker may have claimed a batch before the removal
    } else {
      ASSERT_EQ(r.status, Status::kShutdown);
      EXPECT_EQ(r.reason, "tenant deregistered");
      ++shutdown;
    }
  }
  EXPECT_EQ(ok + shutdown, 8);
  EXPECT_GT(shutdown, 0);
  fleet.stop();
  EXPECT_TRUE(fleet.stats().all_resolved());
}

TEST(FleetScheduler, StopWithoutDrainResolvesEveryFuture) {
  FleetConfig fc = fleet_cfg();
  fc.workers = 1;
  fc.max_wait = 200ms;
  FleetScheduler fleet(fc);
  fleet.add_tenant(make_tiny_fcn(1), tenant_cfg("a"));
  fleet.add_tenant(make_tiny_fcn(2), tenant_cfg("b"));
  Rng rng(14);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(fleet.submit(i % 2 == 0 ? "a" : "b", random_image(rng)));
  }
  fleet.stop(/*drain=*/false);
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(5s), std::future_status::ready);
    const Response r = f.get();
    EXPECT_TRUE(r.status == Status::kOk || r.status == Status::kShutdown);
  }
  EXPECT_TRUE(fleet.stats().all_resolved());
  // Submits after stop resolve synchronously.
  const Response late = fleet.submit("a", random_image(rng)).get();
  EXPECT_EQ(late.status, Status::kShutdown);
}

// ---------------------------------------------------------------------------
// Deterministic SLO burn-rate replay: a scripted traffic trace is written
// into the per-tenant serve metrics (the exact families a FleetScheduler
// maintains) and the SloMonitor is ticked through the registry-read path.
// One tenant's injected deadline misses must trip warn then page, in that
// order, on deterministic ticks; the clean tenants must never leave ok.
TEST(FleetScheduler, BurnRateReplayTripsWarnThenPageForOneTenant) {
  trace::ResetGuard metrics_guard;
  auto& reg = trace::MetricsRegistry::global();

  obs::SloConfig cfg;
  cfg.miss_budget = 0.05;  // 5% error budget
  cfg.fast_intervals = 3;
  cfg.slow_intervals = 6;
  cfg.warn_burn = 1.0;
  cfg.page_burn = 2.0;
  cfg.escalate_after = 2;
  cfg.clear_after = 2;
  obs::SloMonitor mon(cfg);

  const std::vector<std::string> tenants = {"replay.gold", "replay.silver",
                                            "replay.bronze"};
  // One replay interval: `completed` outcomes at `lat_us` each, `missed` of
  // them past deadline — written exactly as FleetScheduler::run_model_batch
  // accounts them.
  const auto emit = [&reg](const std::string& id, int completed, int missed,
                           double lat_us) {
    const std::string p = "serve.tenant." + id + ".";
    reg.counter(p + "completed").add(completed);
    reg.counter(p + "deadline_missed").add(missed);
    auto& lat = reg.histogram(p + "latency_us");
    for (int i = 0; i < completed; ++i) lat.record(lat_us);
  };

  mon.poll_registry(tenants);  // baseline tick at zero

  // Scripted trace, 8 intervals of 100 requests per tenant. Bronze misses
  // 20% in intervals 4–5 and 100% from interval 6 on; gold/silver stay
  // clean. Expected bronze states (fast window = 3 intervals):
  //   t4: fast 20/300 → burn 1.33 → warn level, streak 1      → still ok
  //   t5: fast 40/300 → burn 2.67 ≥ page, slow confirms, but the streak
  //       carries the lowest sustained level                   → WARN
  //   t6: fast 140/300 → burn 9.3, page level, streak 1        → still warn
  //   t7: fast 220/300 → burn 14.7, page sustained             → PAGE
  const std::vector<int> bronze_misses = {0, 0, 0, 20, 20, 100, 100, 100};
  const std::vector<obs::AlertState> expect_bronze = {
      obs::AlertState::kOk,   obs::AlertState::kOk,
      obs::AlertState::kOk,   obs::AlertState::kOk,
      obs::AlertState::kWarn, obs::AlertState::kWarn,
      obs::AlertState::kPage, obs::AlertState::kPage};
  for (std::size_t t = 0; t < bronze_misses.size(); ++t) {
    emit("replay.gold", 100, 0, 800.0);
    emit("replay.silver", 100, 0, 900.0);
    emit("replay.bronze", 100, bronze_misses[t], 2500.0);
    EXPECT_EQ(mon.observe_from_registry("replay.gold"), obs::AlertState::kOk)
        << "tick " << t;
    EXPECT_EQ(mon.observe_from_registry("replay.silver"), obs::AlertState::kOk)
        << "tick " << t;
    EXPECT_EQ(mon.observe_from_registry("replay.bronze"), expect_bronze[t])
        << "tick " << t;
  }

  // The transitions were counted once each, exported as counters, and the
  // clean tenants never transitioned at all.
  const obs::SloMonitor::TenantStatus bronze = mon.status("replay.bronze");
  EXPECT_EQ(bronze.state, obs::AlertState::kPage);
  EXPECT_EQ(bronze.warn_transitions, 1);
  EXPECT_EQ(bronze.page_transitions, 1);
  EXPECT_EQ(bronze.clear_transitions, 0);
  EXPECT_GT(bronze.fast.p99_us, 2000.0);  // windowed quantiles track bronze
  for (const char* clean : {"replay.gold", "replay.silver"}) {
    const obs::SloMonitor::TenantStatus s = mon.status(clean);
    EXPECT_EQ(s.state, obs::AlertState::kOk) << clean;
    EXPECT_EQ(s.warn_transitions + s.page_transitions, 0) << clean;
  }
  EXPECT_EQ(reg.counter("obs.slo.transitions.warn").value(), 1);
  EXPECT_EQ(reg.counter("obs.slo.transitions.page").value(), 1);

  // The alert surface agrees with the replay outcome.
  const std::string json = mon.alertz_json();
  EXPECT_NE(json.find("\"replay.bronze\":{\"state\":\"page\""),
            std::string::npos);
  EXPECT_NE(json.find("\"replay.gold\":{\"state\":\"ok\""), std::string::npos);
}

}  // namespace
}  // namespace iwg::serve
