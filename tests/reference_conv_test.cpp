// Cross-validation of the reference convolution implementations: direct,
// im2col+GEMM (explicit and implicit), fused 2-D Winograd, deconvolution,
// and filter gradients must all agree.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "reference/direct_conv.hpp"
#include "reference/im2col_gemm.hpp"
#include "reference/winograd2d.hpp"
#include "tensor/metrics.hpp"

namespace iwg {
namespace {

struct Case {
  ConvShape s;
  const char* name;
};

TensorF random_input(const ConvShape& s, unsigned seed) {
  Rng rng(seed);
  TensorF x({s.n, s.ih, s.iw, s.ic});
  x.fill_uniform(rng, -1.0f, 1.0f);
  return x;
}

TensorF random_filter(const ConvShape& s, unsigned seed) {
  Rng rng(seed * 31 + 7);
  TensorF w({s.oc, s.fh, s.fw, s.ic});
  w.fill_uniform(rng, -1.0f, 1.0f);
  return w;
}

class RefConvSweep : public ::testing::TestWithParam<Case> {};

TEST_P(RefConvSweep, Im2colGemmMatchesDirect) {
  const ConvShape& s = GetParam().s;
  const TensorF x = random_input(s, 1);
  const TensorF w = random_filter(s, 1);
  const TensorF direct = ref::conv2d_direct(x, w, s);
  const TensorF gemm = ref::conv2d_im2col_gemm(x, w, s);
  EXPECT_LT(max_rel_diff(gemm, direct), 1e-5) << GetParam().name;
}

TEST_P(RefConvSweep, ImplicitGemmMatchesDirect) {
  const ConvShape& s = GetParam().s;
  const TensorF x = random_input(s, 2);
  const TensorF w = random_filter(s, 2);
  const TensorF direct = ref::conv2d_direct(x, w, s);
  const TensorF gemm = ref::conv2d_implicit_gemm(x, w, s);
  EXPECT_LT(max_rel_diff(gemm, direct), 1e-5) << GetParam().name;
}

TEST_P(RefConvSweep, Fp64AgreesWithFp32Closely) {
  const ConvShape& s = GetParam().s;
  const TensorF x = random_input(s, 3);
  const TensorF w = random_filter(s, 3);
  const TensorF f32 = ref::conv2d_direct(x, w, s);
  const TensorD f64 = ref::conv2d_direct_fp64(x, w, s);
  EXPECT_LT(average_relative_error(f32, f64), 1e-4) << GetParam().name;
}

TEST_P(RefConvSweep, DeconvMatchesDirectTransposed) {
  const ConvShape& s = GetParam().s;
  Rng rng(17);
  TensorF dy({s.n, s.oh(), s.ow(), s.oc});
  dy.fill_uniform(rng, -1.0f, 1.0f);
  const TensorF w = random_filter(s, 4);
  const TensorF a = ref::deconv2d_direct(dy, w, s);
  const TensorF b = ref::deconv2d_implicit_gemm(dy, w, s);
  ASSERT_TRUE(a.same_shape(b));
  EXPECT_LT(max_rel_diff(a, b), 1e-5) << GetParam().name;
}

TEST_P(RefConvSweep, FilterGradGemmMatchesDirect) {
  const ConvShape& s = GetParam().s;
  const TensorF x = random_input(s, 5);
  Rng rng(23);
  TensorF dy({s.n, s.oh(), s.ow(), s.oc});
  dy.fill_uniform(rng, -1.0f, 1.0f);
  const TensorF a = ref::conv2d_filter_grad_direct(x, dy, s);
  const TensorF b = ref::conv2d_filter_grad_gemm(x, dy, s);
  EXPECT_LT(max_rel_diff(a, b), 2e-5) << GetParam().name;
}

std::vector<Case> cases() {
  return {
      {{.n = 1, .ih = 6, .iw = 6, .ic = 3, .oc = 4, .fh = 3, .fw = 3, .ph = 1, .pw = 1}, "pad3x3"},
      {{.n = 2, .ih = 7, .iw = 9, .ic = 5, .oc = 3, .fh = 3, .fw = 3, .ph = 0, .pw = 0}, "nopad3x3"},
      {{.n = 1, .ih = 10, .iw = 10, .ic = 2, .oc = 2, .fh = 5, .fw = 5, .ph = 2, .pw = 2}, "pad5x5"},
      {{.n = 2, .ih = 9, .iw = 11, .ic = 4, .oc = 6, .fh = 2, .fw = 2, .ph = 0, .pw = 0}, "f2x2"},
      {{.n = 1, .ih = 12, .iw = 8, .ic = 3, .oc = 5, .fh = 7, .fw = 7, .ph = 3, .pw = 3}, "pad7x7"},
      {{.n = 1, .ih = 11, .iw = 13, .ic = 2, .oc = 3, .fh = 9, .fw = 9, .ph = 4, .pw = 4}, "pad9x9"},
      {{.n = 3, .ih = 5, .iw = 5, .ic = 8, .oc = 8, .fh = 1, .fw = 1, .ph = 0, .pw = 0}, "pointwise"},
      {{.n = 1, .ih = 8, .iw = 8, .ic = 1, .oc = 1, .fh = 4, .fw = 4, .ph = 1, .pw = 2}, "asym_pad"},
      {{.n = 2, .ih = 6, .iw = 14, .ic = 3, .oc = 2, .fh = 3, .fw = 6, .ph = 1, .pw = 2}, "rect_filter"},
  };
}

INSTANTIATE_TEST_SUITE_P(Shapes, RefConvSweep, ::testing::ValuesIn(cases()),
                         [](const auto& info) { return info.param.name; });

TEST(RefConv, Winograd2dMatchesDirect3x3) {
  for (std::int64_t ow : {8, 9, 10}) {  // even, odd (boundary tile), even
    ConvShape s{.n = 2, .ih = ow, .iw = ow, .ic = 4, .oc = 5, .fh = 3,
                .fw = 3, .ph = 1, .pw = 1};
    const TensorF x = random_input(s, 6);
    const TensorF w = random_filter(s, 6);
    const TensorF direct = ref::conv2d_direct(x, w, s);
    const TensorF wino = ref::conv2d_winograd2d_f2x2_3x3(x, w, s);
    EXPECT_LT(max_rel_diff(wino, direct), 1e-4) << "ow=" << ow;
  }
}

TEST(RefConv, Winograd2dRejectsNon3x3) {
  ConvShape s{.n = 1, .ih = 8, .iw = 8, .ic = 1, .oc = 1, .fh = 5, .fw = 5,
              .ph = 2, .pw = 2};
  TensorF x({1, 8, 8, 1});
  TensorF w({1, 5, 5, 1});
  EXPECT_THROW(ref::conv2d_winograd2d_f2x2_3x3(x, w, s), Error);
}

TEST(RefConv, Tf32RoundProperties) {
  EXPECT_EQ(ref::tf32_round(0.0f), 0.0f);
  EXPECT_EQ(ref::tf32_round(1.0f), 1.0f);      // exactly representable
  EXPECT_EQ(ref::tf32_round(-2.5f), -2.5f);
  // 1 + 2^-11 rounds back to 1 in a 10-bit mantissa.
  EXPECT_EQ(ref::tf32_round(1.0f + 0x1.0p-11f), 1.0f);
  // 1 + 2^-9 survives.
  EXPECT_EQ(ref::tf32_round(1.0f + 0x1.0p-9f), 1.0f + 0x1.0p-9f);
  // Rounding error bounded by 2^-11 relative.
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-10.0f, 10.0f);
    EXPECT_NEAR(ref::tf32_round(v), v, std::abs(v) * 0x1.0p-10f);
  }
}

TEST(RefConv, Tf32GemmLessAccurateThanFp32Gemm) {
  // The cuDNN-numerics emulation must sit between FP32 GEMM and garbage.
  ConvShape s{.n = 1, .ih = 10, .iw = 10, .ic = 64, .oc = 4, .fh = 3,
              .fw = 3, .ph = 1, .pw = 1};
  Rng rng(17);
  TensorF x({1, 10, 10, 64});
  x.fill_uniform(rng, 1.0f, 2.0f);
  TensorF w({4, 3, 3, 64});
  w.fill_uniform(rng, 1.0f, 2.0f);
  const TensorD truth = ref::conv2d_direct_fp64(x, w, s);
  const double err32 =
      average_relative_error(ref::conv2d_im2col_gemm(x, w, s), truth);
  const double err_tf =
      average_relative_error(ref::conv2d_im2col_gemm_tf32(x, w, s), truth);
  EXPECT_GT(err_tf, err32 * 3.0);
  EXPECT_LT(err_tf, 1e-3);  // still a valid convolution
}

TEST(RefConv, StridedGemmMatchesManualSubsampling) {
  // Stride-2 output must equal the stride-1 output subsampled at even
  // positions when (IH − FH) is even and padding is 0.
  ConvShape s{.n = 1, .ih = 9, .iw = 9, .ic = 3, .oc = 2, .fh = 3, .fw = 3,
              .ph = 0, .pw = 0};
  const TensorF x = random_input(s, 7);
  const TensorF w = random_filter(s, 7);
  const TensorF full = ref::conv2d_direct(x, w, s);
  const TensorF strided = ref::conv2d_implicit_gemm_strided(x, w, s, 2, 2);
  EXPECT_EQ(strided.dim(1), 4);
  EXPECT_EQ(strided.dim(2), 4);
  for (std::int64_t h = 0; h < 4; ++h)
    for (std::int64_t wo = 0; wo < 4; ++wo)
      for (std::int64_t oc = 0; oc < 2; ++oc)
        EXPECT_NEAR(strided.at(0, h, wo, oc), full.at(0, 2 * h, 2 * wo, oc),
                    1e-5f);
}

TEST(RefConv, Im2colMatrixShapeAndContent) {
  ConvShape s{.n = 1, .ih = 3, .iw = 3, .ic = 2, .oc = 1, .fh = 2, .fw = 2,
              .ph = 0, .pw = 0};
  TensorF x({1, 3, 3, 2});
  for (std::int64_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  const TensorF b = ref::im2col(x, s);
  EXPECT_EQ(b.dim(0), 4);  // 2×2 outputs
  EXPECT_EQ(b.dim(1), 8);  // 2·2·2
  // First row = patch at (0,0): x(0,0,·), x(0,1,·), x(1,0,·), x(1,1,·).
  EXPECT_EQ(b.at(0, 0, 0, 0), x.at(0, 0, 0, 0));
  EXPECT_EQ(b.at(0, 2, 0, 0), x.at(0, 0, 1, 0));
  EXPECT_EQ(b.at(0, 4, 0, 0), x.at(0, 1, 0, 0));
  EXPECT_EQ(b.at(0, 7, 0, 0), x.at(0, 1, 1, 1));
}

TEST(RefConv, PaddingZerosAppearInIm2col) {
  ConvShape s{.n = 1, .ih = 2, .iw = 2, .ic = 1, .oc = 1, .fh = 3, .fw = 3,
              .ph = 1, .pw = 1};
  TensorF x({1, 2, 2, 1});
  x.fill(1.0f);
  const TensorF b = ref::im2col(x, s);
  // Top-left output patch: 5 of 9 taps fall in padding.
  int zeros = 0;
  for (std::int64_t k = 0; k < 9; ++k) zeros += b.at(0, k, 0, 0) == 0.0f;
  EXPECT_EQ(zeros, 5);
}

}  // namespace
}  // namespace iwg
