// Tests of the algorithm selector (cuDNN-find analogue).
#include <gtest/gtest.h>

#include "core/selector.hpp"

namespace iwg::core {
namespace {

TEST(Selector, PicksWinogradForLargeFilters) {
  const ConvShape s = ConvShape::from_ofms(16, 32, 32, 64, 5);
  const auto choice = select_algorithm(s, sim::DeviceProfile::rtx3060ti());
  EXPECT_TRUE(choice.use_winograd);
  EXPECT_GT(choice.est_gflops, choice.gemm_gflops);
  EXPECT_FALSE(choice.plan.empty());
}

TEST(Selector, FallsBackToGemmOutsideSupportedWidths) {
  ConvShape s;
  s.n = 4;
  s.ih = 16;
  s.iw = 16;
  s.ic = 16;
  s.oc = 16;
  s.fh = 1;
  s.fw = 1;
  s.ph = 0;
  s.pw = 0;
  s.validate();
  const auto choice = select_algorithm(s, sim::DeviceProfile::rtx3060ti());
  EXPECT_FALSE(choice.use_winograd);
  EXPECT_TRUE(choice.plan.empty());
  EXPECT_GT(choice.est_gflops, 0.0);
}

TEST(Selector, ConsidersC64ForWideChannels) {
  const ConvShape s = ConvShape::from_ofms(16, 32, 32, 128, 9);
  const auto choice = select_algorithm(s, sim::DeviceProfile::rtx3060ti());
  EXPECT_TRUE(choice.use_winograd);
  // The winning plan should lead with a Γ16 kernel (c64 or base).
  ASSERT_FALSE(choice.plan.empty());
  EXPECT_EQ(choice.plan[0].cfg.alpha, 16);
}

TEST(Selector, CacheReturnsSameObject) {
  const ConvShape s = ConvShape::from_ofms(8, 16, 16, 64, 3);
  const auto dev = sim::DeviceProfile::rtx3060ti();
  const AlgoChoice& a = select_algorithm_cached(s, dev);
  const AlgoChoice& b = select_algorithm_cached(s, dev);
  EXPECT_EQ(&a, &b);
}

TEST(Selector, DeviceIsPartOfCacheKey) {
  const ConvShape s = ConvShape::from_ofms(8, 16, 16, 64, 3);
  const AlgoChoice& a =
      select_algorithm_cached(s, sim::DeviceProfile::rtx3060ti());
  const AlgoChoice& b =
      select_algorithm_cached(s, sim::DeviceProfile::rtx4090());
  EXPECT_NE(&a, &b);
}

}  // namespace
}  // namespace iwg::core
