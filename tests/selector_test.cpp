// Tests of the algorithm selector (cuDNN-find analogue).
#include <gtest/gtest.h>

#include "core/plan_cache.hpp"
#include "core/selector.hpp"

namespace iwg::core {
namespace {

TEST(Selector, PicksWinogradForLargeFilters) {
  const ConvShape s = ConvShape::from_ofms(16, 32, 32, 64, 5);
  const auto choice = select_algorithm(s, sim::DeviceProfile::rtx3060ti());
  EXPECT_TRUE(choice.use_winograd);
  EXPECT_GT(choice.est_gflops, choice.gemm_gflops);
  EXPECT_FALSE(choice.plan.empty());
}

TEST(Selector, FallsBackToGemmOutsideSupportedWidths) {
  ConvShape s;
  s.n = 4;
  s.ih = 16;
  s.iw = 16;
  s.ic = 16;
  s.oc = 16;
  s.fh = 1;
  s.fw = 1;
  s.ph = 0;
  s.pw = 0;
  s.validate();
  const auto choice = select_algorithm(s, sim::DeviceProfile::rtx3060ti());
  EXPECT_FALSE(choice.use_winograd);
  EXPECT_TRUE(choice.plan.empty());
  EXPECT_GT(choice.est_gflops, 0.0);
  // The executable plan is still valid: one whole-width GEMM segment.
  const auto plan = choice.executable_plan(s);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_TRUE(plan[0].is_gemm);
  EXPECT_EQ(plan[0].ow_len, s.ow());
}

TEST(Selector, ConsidersC64ForWideChannels) {
  const ConvShape s = ConvShape::from_ofms(16, 32, 32, 128, 9);
  const auto choice = select_algorithm(s, sim::DeviceProfile::rtx3060ti());
  EXPECT_TRUE(choice.use_winograd);
  // The winning plan should lead with a Γ16 kernel (c64 or base).
  ASSERT_FALSE(choice.plan.empty());
  EXPECT_EQ(choice.plan[0].cfg.alpha, 16);
}

TEST(Selector, CachedVariantReturnsIdenticalChoiceAndHits) {
  const ConvShape s = ConvShape::from_ofms(8, 16, 16, 64, 3);
  const auto dev = sim::DeviceProfile::rtx3060ti();
  const auto before = PlanCache::global().stats();
  const AlgoChoice a = select_algorithm_cached(s, dev);
  const AlgoChoice b = select_algorithm_cached(s, dev);
  EXPECT_EQ(a, b);
  const auto after = PlanCache::global().stats();
  EXPECT_GE(after.hits, before.hits + 1);  // the second call hit
  EXPECT_EQ(after.lookups, after.hits + after.misses);
}

TEST(Selector, DeviceIsPartOfCacheKey) {
  const ConvShape s = ConvShape::from_ofms(8, 16, 16, 48, 3);
  PlanCache cache(/*capacity=*/8, /*num_shards=*/1);
  cache.get_or_tune(s, sim::DeviceProfile::rtx3060ti(), 4);
  cache.get_or_tune(s, sim::DeviceProfile::rtx4090(), 4);
  EXPECT_EQ(cache.size(), 2);
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 0);
  EXPECT_EQ(st.misses, 2);
}

TEST(Selector, ZeroBudgetFallsBackToHeuristic) {
  const ConvShape s = ConvShape::from_ofms(4, 12, 12, 16, 5);
  const auto choice =
      select_algorithm(s, sim::DeviceProfile::rtx3060ti(), 4, TuningBudget{0});
  EXPECT_TRUE(choice.heuristic);
  EXPECT_TRUE(choice.use_winograd);
  EXPECT_EQ(choice.candidates_profiled, 0);
  // The heuristic chain applies the (r-1)/alpha >= 0.4375 rule: ruse wins
  // for (alpha, r) = (8, 5), so the plan leads with the ruse variant.
  ASSERT_FALSE(choice.plan.empty());
  EXPECT_EQ(choice.plan[0].cfg.variant, Variant::kRuse);
}

}  // namespace
}  // namespace iwg::core
