// Tests of the FFT substrate: transform properties and FFT convolution
// against the direct reference.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "reference/direct_conv.hpp"
#include "reference/fft_conv.hpp"
#include "tensor/metrics.hpp"

namespace iwg::ref {
namespace {

using Cvec = std::vector<std::complex<double>>;

TEST(Fft, ImpulseTransformsToOnes) {
  Cvec d(8, {0.0, 0.0});
  d[0] = {1.0, 0.0};
  fft_inplace(d, false);
  for (const auto& v : d) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, RoundTripIsIdentity) {
  Rng rng(5);
  Cvec d(64);
  for (auto& v : d) v = {rng.uniform_double(-1, 1), rng.uniform_double(-1, 1)};
  Cvec orig = d;
  fft_inplace(d, false);
  fft_inplace(d, true);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_NEAR(d[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(d[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(7);
  Cvec d(32);
  double time_energy = 0.0;
  for (auto& v : d) {
    v = {rng.uniform_double(-1, 1), 0.0};
    time_energy += std::norm(v);
  }
  fft_inplace(d, false);
  double freq_energy = 0.0;
  for (const auto& v : d) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / 32.0, time_energy, 1e-9);
}

TEST(Fft, LinearityAndShiftTheorem) {
  // FFT(a·x) == a·FFT(x); single-bin input transforms to a phase ramp.
  Cvec d(16, {0.0, 0.0});
  d[1] = {1.0, 0.0};
  fft_inplace(d, false);
  for (std::size_t k = 0; k < 16; ++k) {
    const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) / 16.0;
    EXPECT_NEAR(d[k].real(), std::cos(ang), 1e-12);
    EXPECT_NEAR(d[k].imag(), std::sin(ang), 1e-12);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  Cvec d(12);
  EXPECT_THROW(fft_inplace(d, false), Error);
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1);
  EXPECT_EQ(next_pow2(2), 2);
  EXPECT_EQ(next_pow2(3), 4);
  EXPECT_EQ(next_pow2(17), 32);
  EXPECT_EQ(next_pow2(64), 64);
}

class FftConvSweep : public ::testing::TestWithParam<int> {};

TEST_P(FftConvSweep, MatchesDirect) {
  const int r = GetParam();
  ConvShape s;
  s.n = 2;
  s.ih = 10;
  s.iw = 13;
  s.ic = 3;
  s.oc = 4;
  s.fh = r;
  s.fw = r;
  s.ph = r / 2;
  s.pw = r / 2;
  s.validate();
  Rng rng(100 + static_cast<unsigned>(r));
  TensorF x({s.n, s.ih, s.iw, s.ic});
  x.fill_uniform(rng, -1.0f, 1.0f);
  TensorF w({s.oc, s.fh, s.fw, s.ic});
  w.fill_uniform(rng, -1.0f, 1.0f);
  const auto res = conv2d_fft(x, w, s);
  EXPECT_LT(max_rel_diff(res.y, conv2d_direct(x, w, s)), 1e-5) << "r=" << r;
  EXPECT_EQ(res.workspace_bytes, fft_conv_workspace_bytes(s));
}

INSTANTIATE_TEST_SUITE_P(FilterSizes, FftConvSweep,
                         ::testing::Values(1, 2, 3, 5, 7, 9));

TEST(FftConv, NoPaddingAndAsymmetric) {
  for (auto [ph, pw] : {std::pair<int, int>{0, 0}, {0, 2}, {3, 1}}) {
    ConvShape s;
    s.n = 1;
    s.ih = 9;
    s.iw = 8;
    s.ic = 2;
    s.oc = 2;
    s.fh = 4;
    s.fw = 4;
    s.ph = ph;
    s.pw = pw;
    s.validate();
    Rng rng(9);
    TensorF x({1, 9, 8, 2});
    x.fill_uniform(rng, -1.0f, 1.0f);
    TensorF w({2, 4, 4, 2});
    w.fill_uniform(rng, -1.0f, 1.0f);
    EXPECT_LT(max_rel_diff(conv2d_fft(x, w, s).y, conv2d_direct(x, w, s)),
              1e-5)
        << ph << "," << pw;
  }
}

TEST(FftConv, WorkspaceGrowsWithChannels) {
  ConvShape a = ConvShape::from_ofms(1, 16, 16, 16, 3);
  ConvShape b = ConvShape::from_ofms(1, 16, 16, 64, 3);
  EXPECT_GT(fft_conv_workspace_bytes(b), fft_conv_workspace_bytes(a));
}

}  // namespace
}  // namespace iwg::ref
