// Property tests of the Winograd plan generator: every plan with
// n + r − 1 ≤ 16 computes 1-D correlation exactly (rationals) and accurately
// (FP32/FP64).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "winograd/plan.hpp"

namespace iwg {
namespace {

class PlanSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PlanSweep, ExactBilinearIdentity) {
  const auto [n, r] = GetParam();
  const WinogradPlan plan = make_plan(n, r);
  EXPECT_EQ(plan.alpha, n + r - 1);
  EXPECT_TRUE(verify_plan_exact(plan));
}

TEST_P(PlanSweep, RationalConvolutionMatchesDirect) {
  const auto [n, r] = GetParam();
  const WinogradPlan& plan = get_plan(n, r);
  const int alpha = plan.alpha;

  // Deterministic small-rational inputs.
  std::vector<Rational> d(static_cast<std::size_t>(alpha));
  std::vector<Rational> w(static_cast<std::size_t>(r));
  for (int i = 0; i < alpha; ++i) d[static_cast<std::size_t>(i)] = Rational(2 * i - 3, 1 + (i % 3));
  for (int j = 0; j < r; ++j) w[static_cast<std::size_t>(j)] = Rational(j + 1, 2 + (j % 2));

  // ĝ = G w, d̂ = D^T d, m = ĝ ⊙ d̂, y = A^T m.
  std::vector<Rational> ghat(static_cast<std::size_t>(alpha));
  std::vector<Rational> dhat(static_cast<std::size_t>(alpha));
  for (int t = 0; t < alpha; ++t) {
    Rational a(0), b(0);
    for (int j = 0; j < r; ++j) a += plan.g.at(t, j) * w[static_cast<std::size_t>(j)];
    for (int k = 0; k < alpha; ++k) b += plan.bt.at(t, k) * d[static_cast<std::size_t>(k)];
    ghat[static_cast<std::size_t>(t)] = a;
    dhat[static_cast<std::size_t>(t)] = b;
  }
  for (int i = 0; i < n; ++i) {
    Rational y(0);
    for (int t = 0; t < alpha; ++t)
      y += plan.at.at(i, t) * ghat[static_cast<std::size_t>(t)] *
           dhat[static_cast<std::size_t>(t)];
    Rational want(0);
    for (int j = 0; j < r; ++j) want += w[static_cast<std::size_t>(j)] * d[static_cast<std::size_t>(i + j)];
    EXPECT_EQ(y, want) << "output " << i << " of F(" << n << "," << r << ")";
  }
}

TEST_P(PlanSweep, Fp32ConvolutionIsAccurate) {
  const auto [n, r] = GetParam();
  const WinogradPlan& plan = get_plan(n, r);
  const int alpha = plan.alpha;
  Rng rng(1234 + static_cast<unsigned>(n * 100 + r));

  // Tolerance grows with α: the α=16 matrices have entries spanning ~1e8 in
  // magnitude, which is exactly the accuracy effect §6.2.2 describes.
  const double tol = alpha <= 4 ? 1e-6 : (alpha <= 8 ? 1e-5 : 2e-3);

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> d(static_cast<std::size_t>(alpha));
    std::vector<float> w(static_cast<std::size_t>(r));
    for (auto& v : d) v = rng.uniform(1.0f, 2.0f);
    for (auto& v : w) v = rng.uniform(1.0f, 2.0f);

    std::vector<float> ghat(static_cast<std::size_t>(alpha), 0.0f);
    std::vector<float> dhat(static_cast<std::size_t>(alpha), 0.0f);
    for (int t = 0; t < alpha; ++t) {
      for (int j = 0; j < r; ++j)
        ghat[static_cast<std::size_t>(t)] +=
            plan.g_f[static_cast<std::size_t>(t * r + j)] * w[static_cast<std::size_t>(j)];
      for (int k = 0; k < alpha; ++k)
        dhat[static_cast<std::size_t>(t)] +=
            plan.bt_f[static_cast<std::size_t>(t * alpha + k)] * d[static_cast<std::size_t>(k)];
    }
    for (int i = 0; i < n; ++i) {
      float y = 0.0f;
      for (int t = 0; t < alpha; ++t)
        y += plan.at_f[static_cast<std::size_t>(i * alpha + t)] *
             ghat[static_cast<std::size_t>(t)] * dhat[static_cast<std::size_t>(t)];
      double want = 0.0;
      for (int j = 0; j < r; ++j)
        want += static_cast<double>(w[static_cast<std::size_t>(j)]) * d[static_cast<std::size_t>(i + j)];
      EXPECT_NEAR(y, want, tol * std::abs(want))
          << "F(" << n << "," << r << ") output " << i;
    }
  }
}

// All (n, r) splits the paper's kernels use, plus the extremes of §4.2
// (Γ4(3,2)…Γ4(2,3), Γ8(7,2)…Γ8(2,7), Γ16(15,2)…Γ16(2,15)).
std::vector<std::tuple<int, int>> all_splits() {
  std::vector<std::tuple<int, int>> v;
  for (int alpha : {4, 8, 16}) {
    for (int r = 2; r <= alpha - 1; ++r) v.emplace_back(alpha + 1 - r, r);
  }
  // A few non-power-of-two state counts to prove generator generality.
  v.emplace_back(2, 2);   // α = 3
  v.emplace_back(4, 3);   // α = 6
  v.emplace_back(5, 5);   // α = 9
  v.emplace_back(6, 7);   // α = 12
  return v;
}

INSTANTIATE_TEST_SUITE_P(AllSplits, PlanSweep,
                         ::testing::ValuesIn(all_splits()),
                         [](const auto& info) {
                           return "F" + std::to_string(std::get<0>(info.param)) +
                                  "_" + std::to_string(std::get<1>(info.param));
                         });

TEST(WinogradPlan, RejectsInvalidArguments) {
  EXPECT_THROW(make_plan(0, 3), Error);
  EXPECT_THROW(make_plan(2, 1), Error);
  EXPECT_THROW(make_plan(10, 8), Error);  // α = 17
}

TEST(WinogradPlan, AccelerationMatchesPaperExamples) {
  // §4.2: both F(2×2,3×3) (per dimension F(2,3)) and Γ8(6,3) reduce
  // multiplications to 1/2.25.
  EXPECT_DOUBLE_EQ(get_plan(2, 3).acceleration(), 1.5);  // 1.5² = 2.25 in 2-D
  EXPECT_DOUBLE_EQ(get_plan(6, 3).acceleration(), 2.25);
  // §6.1.2: Φ maxima — Γ8 at r ∈ {4,5}: 20/8 = 2.5; Γ16 at r ∈ {8,9}: 4.5.
  EXPECT_DOUBLE_EQ(get_plan(5, 4).acceleration(), 2.5);
  EXPECT_DOUBLE_EQ(get_plan(4, 5).acceleration(), 2.5);
  EXPECT_DOUBLE_EQ(get_plan(8, 9).acceleration(), 4.5);
  EXPECT_DOUBLE_EQ(get_plan(9, 8).acceleration(), 4.5);
  EXPECT_DOUBLE_EQ(get_plan(10, 7).acceleration(), 70.0 / 16.0);
}

TEST(WinogradPlan, PointsAreDistinct) {
  for (int alpha : {4, 8, 16}) {
    const auto pts = winograd_points(alpha);
    ASSERT_EQ(static_cast<int>(pts.size()), alpha - 1);
    for (std::size_t i = 0; i < pts.size(); ++i)
      for (std::size_t j = i + 1; j < pts.size(); ++j)
        EXPECT_FALSE(pts[i] == pts[j]) << i << "," << j;
  }
}

TEST(WinogradPlan, CacheReturnsSameObject) {
  const WinogradPlan& a = get_plan(6, 3);
  const WinogradPlan& b = get_plan(6, 3);
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace iwg
