// The non-fused baseline must compute the same convolution as the fused
// engine, and its workspace accounting must match the closed form.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "reference/direct_conv.hpp"
#include "reference/winograd_nonfused.hpp"
#include "tensor/metrics.hpp"

namespace iwg::ref {
namespace {

TEST(NonFused, MatchesDirectForGamma8Splits) {
  for (auto [n, r] : {std::pair<int, int>{6, 3}, {4, 5}, {2, 7}}) {
    ConvShape s;
    s.n = 2;
    s.ih = 6;
    s.iw = 2 * n - 2 * (r / 2) + r - 1;
    s.ic = 4;
    s.oc = 5;
    s.fh = 3;
    s.fw = r;
    s.ph = 1;
    s.pw = r / 2;
    s.validate();
    ASSERT_EQ(s.ow() % n, 0);
    Rng rng(1);
    TensorF x({s.n, s.ih, s.iw, s.ic});
    x.fill_uniform(rng, -1.0f, 1.0f);
    TensorF w({s.oc, s.fh, s.fw, s.ic});
    w.fill_uniform(rng, -1.0f, 1.0f);
    const auto res = conv2d_winograd_nonfused(x, w, s, n, r);
    EXPECT_LT(max_rel_diff(res.y, conv2d_direct(x, w, s)), 2e-4)
        << n << "," << r;
    EXPECT_EQ(res.workspace_bytes, winograd_nonfused_workspace_bytes(s, n, r));
    EXPECT_GT(res.workspace_bytes, 0);
  }
}

TEST(NonFused, WorkspaceClosedForm) {
  // α·FH·IC·OC + α·GM·FH·IC + α·GM·OC floats (GM = N·OH·OW/n).
  ConvShape s;
  s.n = 2;
  s.ih = 8;
  s.iw = 12;
  s.ic = 8;
  s.oc = 16;
  s.fh = 3;
  s.fw = 3;
  s.ph = 1;
  s.pw = 1;
  s.validate();
  const std::int64_t gm = 2 * 8 * (12 / 6);
  const std::int64_t want =
      4 * (8 * 3 * 8 * 16 + 8ll * gm * 3 * 8 + 8ll * gm * 16);
  EXPECT_EQ(winograd_nonfused_workspace_bytes(s, 6, 3), want);
}

TEST(NonFused, WorkspaceGrowsWithAlphaAndVolume) {
  const ConvShape big = ConvShape::from_ofms(64, 64, 64, 64, 3);
  const ConvShape small = ConvShape::from_ofms(8, 16, 18, 64, 3);
  EXPECT_GT(winograd_nonfused_workspace_bytes(big, 6, 3),
            winograd_nonfused_workspace_bytes(small, 6, 3));
  // The fused kernels use zero global workspace by construction — the
  // non-fused organization at paper scale needs hundreds of megabytes.
  EXPECT_GT(winograd_nonfused_workspace_bytes(big, 6, 3), 100ll << 20);
}

TEST(NonFused, RejectsRaggedWidth) {
  ConvShape s;
  s.n = 1;
  s.ih = 6;
  s.iw = 7;
  s.ic = 1;
  s.oc = 1;
  s.fh = 3;
  s.fw = 3;
  s.ph = 1;
  s.pw = 1;
  s.validate();
  TensorF x({1, 6, 7, 1});
  TensorF w({1, 3, 3, 1});
  EXPECT_THROW(conv2d_winograd_nonfused(x, w, s, 6, 3), Error);
}

}  // namespace
}  // namespace iwg::ref
