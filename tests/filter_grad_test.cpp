// Tests of the Winograd weight-gradient extension: must match the direct
// filter-gradient for every filter width, padding, and ragged OW.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/gamma_host.hpp"
#include "reference/direct_conv.hpp"
#include "tensor/metrics.hpp"

namespace iwg::core {
namespace {

TensorF rand_tensor(std::initializer_list<std::int64_t> dims, unsigned seed) {
  Rng rng(seed);
  TensorF t(dims);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

class FilterGradSweep : public ::testing::TestWithParam<int> {};

TEST_P(FilterGradSweep, MatchesDirect) {
  const int r = GetParam();
  ConvShape s;
  s.n = 2;
  s.ih = 9;
  s.iw = 13;  // OW not a multiple of the tile size: zero-padded tail tiles
  s.ic = 3;
  s.oc = 4;
  s.fh = r;
  s.fw = r;
  s.ph = r / 2;
  s.pw = r / 2;
  s.validate();
  const TensorF x = rand_tensor({s.n, s.ih, s.iw, s.ic}, 21);
  TensorF dy = rand_tensor({s.n, s.oh(), s.ow(), s.oc}, 22);
  const TensorF want = ref::conv2d_filter_grad_direct(x, dy, s);
  const TensorF got = conv2d_filter_grad_winograd(x, dy, s);
  ASSERT_TRUE(got.same_shape(want));
  EXPECT_LT(max_rel_diff(got, want), r >= 8 ? 2e-2 : 2e-3) << "r=" << r;
}

INSTANTIATE_TEST_SUITE_P(FilterWidths, FilterGradSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9));

TEST(FilterGrad, NoPadding) {
  ConvShape s;
  s.n = 1;
  s.ih = 8;
  s.iw = 12;
  s.ic = 2;
  s.oc = 3;
  s.fh = 3;
  s.fw = 3;
  s.ph = 0;
  s.pw = 0;
  s.validate();
  const TensorF x = rand_tensor({1, 8, 12, 2}, 31);
  TensorF dy = rand_tensor({1, s.oh(), s.ow(), 3}, 32);
  EXPECT_LT(max_rel_diff(conv2d_filter_grad_winograd(x, dy, s),
                         ref::conv2d_filter_grad_direct(x, dy, s)),
            1e-3);
}

TEST(FilterGrad, RectangularFilter) {
  ConvShape s;
  s.n = 1;
  s.ih = 10;
  s.iw = 11;
  s.ic = 2;
  s.oc = 2;
  s.fh = 5;
  s.fw = 3;
  s.ph = 2;
  s.pw = 1;
  s.validate();
  const TensorF x = rand_tensor({1, 10, 11, 2}, 41);
  TensorF dy = rand_tensor({1, s.oh(), s.ow(), 2}, 42);
  EXPECT_LT(max_rel_diff(conv2d_filter_grad_winograd(x, dy, s),
                         ref::conv2d_filter_grad_direct(x, dy, s)),
            1e-3);
}

TEST(FilterGrad, RejectsUnsupportedWidths) {
  ConvShape s;
  s.n = 1;
  s.ih = 4;
  s.iw = 14;
  s.ic = 1;
  s.oc = 1;
  s.fh = 1;
  s.fw = 11;
  s.ph = 0;
  s.pw = 5;
  s.validate();
  TensorF x({1, 4, 14, 1});
  TensorF dy({1, s.oh(), s.ow(), 1});
  EXPECT_THROW(conv2d_filter_grad_winograd(x, dy, s), Error);
}

}  // namespace
}  // namespace iwg::core
