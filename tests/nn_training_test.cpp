// Integration tests of the training framework: optimizers, model zoo
// construction, convergence on synthetic data, and the Experiment-3 property
// that Winograd- and GEMM-backed training stay numerically close.
#include <gtest/gtest.h>

#include <cmath>

#include "core/plan_cache.hpp"
#include "data/synthetic.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace iwg::nn {
namespace {

TEST(Optimizers, SgdmMovesAgainstGradient) {
  Param p;
  p.value.reset({2});
  p.value[0] = 1.0f;
  p.value[1] = -1.0f;
  p.grad.reset({2});
  p.grad[0] = 0.5f;
  p.grad[1] = -0.5f;
  Sgdm opt(0.1f, 0.9f);
  opt.step({&p});
  EXPECT_LT(p.value[0], 1.0f);
  EXPECT_GT(p.value[1], -1.0f);
  // Momentum: a second identical step moves farther.
  const float d1 = 1.0f - p.value[0];
  const float before = p.value[0];
  opt.step({&p});
  EXPECT_GT(before - p.value[0], d1 * 1.5f);
}

TEST(Optimizers, AdamStepSizeBounded) {
  Param p;
  p.value.reset({1});
  p.grad.reset({1});
  p.grad[0] = 100.0f;  // huge gradient: Adam still steps ≈ lr
  Adam opt(1e-3f);
  opt.step({&p});
  EXPECT_NEAR(p.value[0], -1e-3f, 2e-4f);
}

TEST(Optimizers, AdamConvergesOnQuadratic) {
  Param p;
  p.value.reset({1});
  p.value[0] = 3.0f;
  p.grad.reset({1});
  Adam opt(0.05f);
  for (int i = 0; i < 400; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 1.0f);  // d/dx (x−1)²
    opt.step({&p});
  }
  EXPECT_NEAR(p.value[0], 1.0f, 0.05f);
}

TEST(ModelZoo, VggLayerCounts) {
  ModelConfig cfg;
  cfg.image_size = 16;
  cfg.base_channels = 4;
  Model vgg16 = make_vgg(16, cfg);
  Model vgg19 = make_vgg(19, cfg);
  EXPECT_GT(vgg19.param_count(), vgg16.param_count());
  EXPECT_GT(vgg19.layer_count(), vgg16.layer_count());
}

TEST(ModelZoo, Vgg5x5HasLargerFilters) {
  ModelConfig cfg;
  cfg.image_size = 16;
  cfg.base_channels = 4;
  Model x3 = make_vgg(16, cfg, 3);
  Model x5 = make_vgg(16, cfg, 5);
  // 5×5 filters hold 25/9 of the weights in conv layers.
  EXPECT_GT(x5.param_count(), x3.param_count());
}

TEST(ModelZoo, ResnetDepths) {
  ModelConfig cfg;
  cfg.image_size = 16;
  cfg.base_channels = 4;
  Model r18 = make_resnet(18, cfg);
  Model r34 = make_resnet(34, cfg);
  EXPECT_GT(r34.param_count(), r18.param_count());
}

TEST(ModelZoo, ForwardShapes) {
  ModelConfig cfg;
  cfg.image_size = 16;
  cfg.base_channels = 4;
  cfg.num_classes = 10;
  for (auto* model : {new Model(make_vgg(16, cfg)),
                      new Model(make_resnet(18, cfg))}) {
    Rng rng(5);
    TensorF x({2, 16, 16, 3});
    x.fill_uniform(rng, -1.0f, 1.0f);
    const TensorF y = model->forward(x, false);
    EXPECT_EQ(y.rank(), 2);
    EXPECT_EQ(y.dim(0), 2);
    EXPECT_EQ(y.dim(1), 10);
    delete model;
  }
}

TEST(Dataset, BalancedAndBounded) {
  const auto ds = data::make_cifar_like(100, 7);
  EXPECT_EQ(ds.count(), 100);
  EXPECT_EQ(ds.classes, 10);
  std::vector<int> hist(10, 0);
  for (auto l : ds.labels) hist[static_cast<std::size_t>(l)]++;
  for (int h : hist) EXPECT_EQ(h, 10);
  for (std::int64_t i = 0; i < ds.images.size(); ++i) {
    EXPECT_GE(ds.images[i], -1.0f);
    EXPECT_LE(ds.images[i], 1.0f);
  }
}

TEST(Dataset, Deterministic) {
  const auto a = data::make_cifar_like(20, 42);
  const auto b = data::make_cifar_like(20, 42);
  for (std::int64_t i = 0; i < a.images.size(); ++i) {
    EXPECT_EQ(a.images[i], b.images[i]);
  }
}

TEST(Dataset, BatchSlicing) {
  const auto ds = data::make_cifar_like(30, 3);
  std::vector<std::int64_t> labels;
  const TensorF b = ds.batch(10, 5, labels);
  EXPECT_EQ(b.dim(0), 5);
  EXPECT_EQ(labels.size(), 5u);
  EXPECT_EQ(b[0], ds.images[10 * 16 * 16 * 3]);
}

TEST(Training, SmallCnnLearnsSyntheticData) {
  const auto train_set = data::make_cifar_like(160, 11, /*size=*/8);
  ModelConfig mc;
  mc.image_size = 8;
  mc.base_channels = 4;
  mc.engine = ConvEngine::kWinograd;
  Model model = make_vgg(16, mc);
  Adam opt(1e-3f);
  TrainConfig tc;
  tc.epochs = 6;
  tc.batch = 16;
  tc.record_every = 1;
  const TrainStats stats = train_model(model, opt, train_set, nullptr, tc);
  ASSERT_GE(stats.loss_curve.size(), 10u);
  // Loss at the end well below the start (and below chance level ln 10).
  const float first = stats.loss_curve.front();
  float last = 0.0f;
  for (std::size_t i = stats.loss_curve.size() - 5; i < stats.loss_curve.size();
       ++i) {
    last += stats.loss_curve[i] / 5.0f;
  }
  EXPECT_LT(last, first * 0.7f);
  EXPECT_GT(stats.train_accuracy, 0.3f);  // ≫ 0.1 chance
  EXPECT_GT(stats.seconds_per_epoch, 0.0);
  EXPECT_GT(stats.param_bytes, 0);
  EXPECT_GT(stats.memory_bytes, stats.param_bytes);
}

TEST(Training, PretuneResolvesConvPlansAtGraphBuild) {
  // Graph-build autotuning (§5.7 integration): pretune walks the network's
  // shape chain and resolves every stride-1 Winograd conv through the plan
  // cache before the first batch; the tuned forward path stays numerically
  // equivalent to the heuristic one.
  ModelConfig mc;
  mc.image_size = 8;
  mc.base_channels = 4;
  mc.engine = ConvEngine::kWinograd;
  Model model = make_vgg(16, mc);

  core::PlanCache cache(/*capacity=*/64, /*num_shards=*/2);
  const auto dev = sim::DeviceProfile::rtx3060ti();
  AutotuneContext ctx;
  ctx.dev = &dev;
  ctx.cache = &cache;
  ctx.samples = 1;
  ctx.max_candidates = 2;
  const int resolved = model.pretune(/*batch=*/4, /*image_size=*/8,
                                     /*channels=*/3, ctx);
  EXPECT_GT(resolved, 0);
  EXPECT_EQ(cache.stats().lookups, resolved);  // one lookup per conv layer
  EXPECT_GE(cache.size(), 1);

  // A second pretune (the "second run" of a deployed model) is all hits.
  AutotuneContext ctx2 = ctx;
  ctx2.resolved = 0;
  Model again = make_vgg(16, mc);
  const auto before = cache.stats();
  EXPECT_EQ(again.pretune(4, 8, 3, ctx2), resolved);
  const auto after = cache.stats();
  EXPECT_EQ(after.hits - before.hits, resolved);
  EXPECT_EQ(after.misses, before.misses);

  // Tuned and untuned forward agree (same seed ⇒ same weights; only the
  // kernel chain may differ).
  const auto ds = data::make_cifar_like(16, 5, /*size=*/8);
  std::vector<std::int64_t> labels;
  const TensorF x = ds.batch(0, 4, labels);
  Model untuned = make_vgg(16, mc);
  const TensorF y_tuned = model.forward(x, /*train=*/false);
  const TensorF y_plain = untuned.forward(x, /*train=*/false);
  ASSERT_TRUE(y_tuned.same_shape(y_plain));
  for (std::int64_t i = 0; i < y_tuned.size(); ++i) {
    EXPECT_NEAR(y_tuned[i], y_plain[i], 1e-2f) << i;
  }
}

TEST(Training, WinogradAndGemmEnginesConvergeTogether) {
  // The Experiment-3 property: same seeds, same data, only the convolution
  // algorithm differs — the loss curves must stay close.
  const auto train_set = data::make_cifar_like(96, 13, /*size=*/8);
  TrainConfig tc;
  tc.epochs = 3;
  tc.batch = 16;
  tc.record_every = 1;

  ModelConfig mc;
  mc.image_size = 8;
  mc.base_channels = 4;
  mc.seed = 77;

  mc.engine = ConvEngine::kWinograd;
  Model alpha = make_vgg(16, mc);
  Adam opt_a(1e-3f);
  const TrainStats sa = train_model(alpha, opt_a, train_set, nullptr, tc);

  mc.engine = ConvEngine::kGemm;
  Model base = make_vgg(16, mc);
  Adam opt_b(1e-3f);
  const TrainStats sb = train_model(base, opt_b, train_set, nullptr, tc);

  ASSERT_EQ(sa.loss_curve.size(), sb.loss_curve.size());
  double max_gap = 0.0;
  for (std::size_t i = 0; i < sa.loss_curve.size(); ++i) {
    max_gap = std::max(
        max_gap, std::abs(static_cast<double>(sa.loss_curve[i]) -
                          sb.loss_curve[i]));
  }
  // Identical initialization: early steps match tightly; divergence stays
  // small in absolute loss terms over this horizon.
  EXPECT_LT(std::abs(sa.loss_curve[0] - sb.loss_curve[0]), 1e-3);
  EXPECT_LT(max_gap, 0.5);
  EXPECT_NEAR(sa.train_accuracy, sb.train_accuracy, 0.3);
}

TEST(Training, EvaluateReportsAccuracy) {
  const auto ds = data::make_cifar_like(32, 15, 8);
  ModelConfig mc;
  mc.image_size = 8;
  mc.base_channels = 4;
  Model model = make_vgg(16, mc);
  const double acc = evaluate(model, ds, 16);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

}  // namespace
}  // namespace iwg::nn
