#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace iwg {
namespace {

TEST(ScratchArena, ScopeReleaseReusesMemory) {
  ScratchArena arena;
  float* first = nullptr;
  {
    const ScratchArena::Scope scope(arena);
    first = arena.alloc_floats(100);
    first[0] = 1.0f;
  }
  {
    const ScratchArena::Scope scope(arena);
    float* again = arena.alloc_floats(100);
    EXPECT_EQ(again, first);  // cursor rewound, same storage handed out
  }
}

TEST(ScratchArena, GrowthPreservesEarlierPointers) {
  ScratchArena arena;
  const ScratchArena::Scope scope(arena);
  // First allocation fits the first block; the second is far larger than
  // any single block so a new block must be chained in.
  float* small = arena.alloc_floats(16);
  for (int i = 0; i < 16; ++i) small[i] = static_cast<float>(i);
  float* big = arena.alloc_floats(1 << 20);
  big[0] = -1.0f;
  big[(1 << 20) - 1] = -2.0f;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(small[i], static_cast<float>(i));  // untouched by growth
  }
}

TEST(ScratchArena, NestedScopes) {
  ScratchArena arena;
  const ScratchArena::Scope outer(arena);
  float* a = arena.alloc_floats(8);
  a[0] = 42.0f;
  float* inner_ptr = nullptr;
  {
    const ScratchArena::Scope inner(arena);
    inner_ptr = arena.alloc_floats(8);
    EXPECT_NE(inner_ptr, a);
  }
  // Inner scope released its allocation; outer's survives.
  EXPECT_EQ(a[0], 42.0f);
  float* b = arena.alloc_floats(8);
  EXPECT_EQ(b, inner_ptr);  // reuses the inner scope's slot
  EXPECT_EQ(a[0], 42.0f);
}

TEST(ScratchArena, AlignmentIs64Bytes) {
  ScratchArena arena;
  const ScratchArena::Scope scope(arena);
  for (int i = 0; i < 8; ++i) {
    void* p = arena.alloc(i * 24 + 1);  // deliberately odd sizes
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  }
}

TEST(ScratchArena, EveryAllocationAlignedAcrossGrowthAndSkipForward) {
  // The 64-byte contract must hold for *every* returned pointer, not just
  // allocations from the first block: odd sizes walk the bump cursor to
  // non-trivial offsets, large requests chain new blocks, and a request
  // bigger than the current block's remainder takes the skip-forward path
  // (cursor jumps to offset 0 of a later block). The SIMD host kernels rely
  // on this only for performance (they load unaligned by design), but the
  // arena's stated contract is what the test pins down. Every span is also
  // written end to end so ASan would catch an out-of-bounds base.
  ScratchArena arena;
  const ScratchArena::Scope scope(arena);
  Rng rng(8086);
  std::vector<std::pair<std::byte*, std::size_t>> live;
  for (int i = 0; i < 200; ++i) {
    std::size_t bytes;
    if (i % 17 == 16) {
      bytes = (std::size_t{1} << 16) + rng.below(1 << 18);  // force growth
    } else {
      bytes = 1 + rng.below(4093);  // odd interior sizes
    }
    auto* p = static_cast<std::byte*>(arena.alloc(bytes));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u)
        << "allocation " << i << " of " << bytes << " bytes";
    std::memset(p, static_cast<int>(i & 0xff), bytes);
    live.emplace_back(p, bytes);
  }
  // Earlier spans survived later growth with their patterns intact.
  for (std::size_t i = 0; i < live.size(); ++i) {
    const auto [p, bytes] = live[i];
    EXPECT_EQ(static_cast<unsigned>(p[0]), i & 0xff);
    EXPECT_EQ(static_cast<unsigned>(p[bytes - 1]), i & 0xff);
  }
}

TEST(ScratchArena, HighWaterTracksPeakNotCurrent) {
  ScratchArena arena;
  {
    const ScratchArena::Scope scope(arena);
    arena.alloc(1024);
    arena.alloc(2048);
  }
  const std::size_t peak = arena.high_water();
  EXPECT_GE(peak, 1024u + 2048u);
  {
    const ScratchArena::Scope scope(arena);
    arena.alloc(64);
  }
  EXPECT_EQ(arena.high_water(), peak);  // monotonic
  EXPECT_GE(ScratchArena::max_high_water(), peak);
}

TEST(ScratchArena, TrimReleasesPeakCapacity) {
  ScratchArena arena;
  {
    const ScratchArena::Scope scope(arena);
    arena.alloc(std::size_t{4} << 20);  // force growth well past block 0
  }
  const std::size_t peak_capacity = arena.capacity();
  EXPECT_GE(peak_capacity, std::size_t{4} << 20);
  arena.trim(/*keep_bytes=*/64 * 1024);
  EXPECT_LT(arena.capacity(), peak_capacity);
  EXPECT_LE(arena.capacity(), std::size_t{64} * 1024);
  // high_water stays monotonic; the arena still works after trimming.
  EXPECT_GE(arena.high_water(), std::size_t{4} << 20);
  {
    const ScratchArena::Scope scope(arena);
    float* p = arena.alloc_floats(256);
    p[0] = 3.0f;
    p[255] = 4.0f;
    EXPECT_EQ(p[0], 3.0f);
    EXPECT_EQ(p[255], 4.0f);
  }
}

TEST(ScratchArena, TrimIsNoopUnderOpenScope) {
  ScratchArena arena;
  const ScratchArena::Scope scope(arena);
  float* p = arena.alloc_floats(std::size_t{1} << 20);
  p[0] = 7.0f;
  const std::size_t before = arena.capacity();
  arena.trim(0);  // must not drop blocks with a live scope
  EXPECT_EQ(arena.capacity(), before);
  EXPECT_EQ(p[0], 7.0f);
}

TEST(ScratchArena, TrimToZeroDropsEverythingUnused) {
  ScratchArena arena;
  {
    const ScratchArena::Scope scope(arena);
    arena.alloc(1024);
  }
  arena.trim(0);
  EXPECT_EQ(arena.capacity(), 0u);
  {
    const ScratchArena::Scope scope(arena);  // regrows on demand
    float* p = arena.alloc_floats(8);
    p[0] = 1.0f;
    EXPECT_EQ(p[0], 1.0f);
  }
}

TEST(ScratchArena, TrimAllReachesOtherThreadsAtNextScope) {
  // Grow a worker thread's arena, broadcast trim_all from the main thread,
  // then have the worker open another scope: the epoch check must have
  // trimmed its arena back down before the allocation.
  std::atomic<std::size_t> grown_capacity{0};
  std::atomic<std::size_t> after_trim_capacity{0};
  std::atomic<int> stage{0};
  std::thread t([&] {
    ScratchArena& arena = ScratchArena::local();
    {
      const ScratchArena::Scope scope(arena);
      arena.alloc(std::size_t{4} << 20);
    }
    grown_capacity = arena.capacity();
    stage = 1;
    while (stage.load() != 2) std::this_thread::yield();
    {
      const ScratchArena::Scope scope(arena);  // honors the trim epoch here
      arena.alloc(64);
    }
    after_trim_capacity = arena.capacity();
  });
  while (stage.load() != 1) std::this_thread::yield();
  ScratchArena::trim_all(/*keep_bytes=*/64 * 1024);
  stage = 2;
  t.join();
  EXPECT_GE(grown_capacity.load(), std::size_t{4} << 20);
  EXPECT_LT(after_trim_capacity.load(), grown_capacity.load());
}

TEST(ScratchArena, ThreadLocalInstancesAreDistinct) {
  ScratchArena* main_arena = &ScratchArena::local();
  ScratchArena* worker_arena = nullptr;
  std::thread t([&] { worker_arena = &ScratchArena::local(); });
  t.join();
  EXPECT_NE(main_arena, worker_arena);
}

TEST(ScratchArena, ParallelForTasksGetIndependentScratch) {
  // Every task writes a distinct pattern into its own scoped buffer and
  // verifies it after a rendezvous-free delay — cross-task interference
  // would corrupt the pattern.
  std::vector<std::atomic<int>> ok(64);
  for (auto& o : ok) o = 0;
  parallel_for(64, [&](std::int64_t i) {
    ScratchArena& arena = ScratchArena::local();
    const ScratchArena::Scope scope(arena);
    float* buf = arena.alloc_floats(256);
    for (int j = 0; j < 256; ++j) buf[j] = static_cast<float>(i * 1000 + j);
    bool good = true;
    for (int j = 0; j < 256; ++j) {
      good = good && buf[j] == static_cast<float>(i * 1000 + j);
    }
    ok[static_cast<std::size_t>(i)] = good ? 1 : 0;
  });
  for (auto& o : ok) EXPECT_EQ(o.load(), 1);
}

}  // namespace
}  // namespace iwg
