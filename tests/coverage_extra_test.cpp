// Breadth coverage: exhaustive exactness of the plan generator over every
// (n, r) with n + r − 1 ≤ 16, deep-filter Γ configurations, simulator
// counter identities, and framework corners.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/conv_api.hpp"
#include "data/synthetic.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"
#include "reference/direct_conv.hpp"
#include "tensor/metrics.hpp"
#include "winograd/plan.hpp"

namespace iwg {
namespace {

TEST(PlanExhaustive, EveryStateCountIsExact) {
  // The generator must produce an exactly-verifying algorithm for every
  // (n, r) pair up to the paper's α ≤ 16 ceiling — including the Γ16(2,15)
  // extreme §4.2 mentions. verify_plan_exact checks the full bilinear
  // identity over the rationals.
  int built = 0;
  for (int r = 2; r <= 15; ++r) {
    for (int n = 1; n + r - 1 <= 16; ++n) {
      const WinogradPlan plan = make_plan(n, r);
      EXPECT_TRUE(verify_plan_exact(plan)) << "F(" << n << "," << r << ")";
      ++built;
    }
  }
  EXPECT_GE(built, 90);  // 14 + 13 + … — the whole triangle
}

TEST(PlanExhaustive, AccelerationSymmetricAboutMidpoint) {
  // §6.1.2: Φ(r) = nr/α is symmetric about (α+1)/2 for fixed α.
  for (int alpha : {8, 16}) {
    for (int r = 2; r <= alpha - 1; ++r) {
      const int n = alpha + 1 - r;
      EXPECT_DOUBLE_EQ(get_plan(n, r).acceleration(),
                       get_plan(r, n).acceleration())
          << alpha << "," << r;
    }
  }
}

TEST(GammaDeepFilters, TallFilterHeights) {
  // FH up to 9 with a Γ16 width: the fh loop of Algorithm 1/2 at depth.
  ConvShape s;
  s.n = 1;
  s.ih = 11;
  s.iw = 10;
  s.ic = 3;
  s.oc = 4;
  s.fh = 9;
  s.fw = 9;
  s.ph = 4;
  s.pw = 4;
  s.validate();
  Rng rng(1);
  TensorF x({1, 11, 10, 3});
  x.fill_uniform(rng, -1.0f, 1.0f);
  TensorF w({4, 9, 9, 3});
  w.fill_uniform(rng, -1.0f, 1.0f);
  const TensorF want = ref::conv2d_direct(x, w, s);
  EXPECT_LT(max_rel_diff(core::conv2d(x, w, s), want), 1e-2);
  const auto plan = core::plan_single(s, core::GammaConfig::make(16, 8, 9));
  EXPECT_LT(max_rel_diff(core::conv2d_sim(x, w, s, plan), want), 1e-2);
}

TEST(SimCounters, XLoadSectorsMatchClosedForm) {
  // For Γ8(6,3), IC = 8, every input-tile element load is a warp request of
  // 8 channels × 4 tiles = 4 sectors when all tiles are interior. Measure a
  // single-block launch and check the X-site traffic is sector-efficient.
  ConvShape s;
  s.n = 1;
  s.ih = 3;
  s.iw = 36;  // interior-heavy row, OW = 36
  s.ic = 8;
  s.oc = 64;
  s.fh = 1;
  s.fw = 3;
  s.ph = 0;
  s.pw = 1;
  s.validate();
  sim::GmemBuf xb(static_cast<float*>(nullptr), s.n * s.ih * s.iw * s.ic,
                  true);
  sim::GmemBuf wb(static_cast<float*>(nullptr), s.oc * s.fh * s.fw * s.ic);
  sim::GmemBuf yb(static_cast<float*>(nullptr), s.n * s.oh() * s.ow() * s.oc);
  core::GammaKernel k(core::GammaConfig::make(8, 6, 3), s,
                      core::ConvDir::kForward, xb, wb, yb, 0, 36);
  const auto st = core::run_gamma(k, /*counting=*/true);
  // Load efficiency ≥ 40 % overall (X loads near-perfect, filter loads at
  // 64-bit granularity) and every counter populated.
  EXPECT_GT(st.gld_efficiency(), 0.4);
  EXPECT_GT(st.gld_requests, 0);
  EXPECT_GT(st.smem_st_requests, 0);
  EXPECT_GT(st.smem_ld_requests, 0);
  EXPECT_GT(st.gst_requests, 0);
  EXPECT_GT(st.fma, 0);
  EXPECT_GT(st.alu, 0);
  EXPECT_GT(st.barriers, 0);
}

TEST(SimCounters, FmaCountMatchesAlgorithm) {
  // Executed outer-product FMAs per block = chunks · threads · BK · 64;
  // transforms add the per-plan counts. Verify the total is within the
  // analytic window for a single-block launch.
  ConvShape s;
  s.n = 1;
  s.ih = 1;
  s.iw = 8;
  s.ic = 8;
  s.oc = 64;
  s.fh = 1;
  s.fw = 3;
  s.ph = 0;
  s.pw = 1;
  s.validate();
  sim::GmemBuf xb(static_cast<float*>(nullptr), 64, true);
  sim::GmemBuf wb(static_cast<float*>(nullptr), 64 * 3 * 8);
  sim::GmemBuf yb(static_cast<float*>(nullptr), 6 * 64);
  core::GammaKernel k(core::GammaConfig::make(8, 6, 3), s,
                      core::ConvDir::kForward, xb, wb, yb, 0, 6);
  const auto st = core::run_gamma(k, true);
  const std::int64_t op_fmas = 256ll * 8 * 64;  // 1 chunk
  EXPECT_GE(st.fma, op_fmas);
  EXPECT_LT(st.fma, op_fmas * 2);  // transforms are the only extra source
}

TEST(NnExtra, Vgg16x7UsesLargeFiltersInFirstFour) {
  nn::ModelConfig mc;
  mc.image_size = 16;
  mc.base_channels = 4;
  nn::Model x7 = nn::make_vgg(16, mc, 3, 7);
  nn::Model x3 = nn::make_vgg(16, mc, 3);
  // 7×7 on the first four convs adds (49−9)·weights on those layers.
  EXPECT_GT(x7.param_count(), x3.param_count());
  Rng rng(3);
  TensorF x({1, 16, 16, 3});
  x.fill_uniform(rng, -1.0f, 1.0f);
  const TensorF y = x7.forward(x, false);
  EXPECT_EQ(y.dim(1), 10);
}

TEST(NnExtra, EvaluateHandlesPartialTail) {
  const auto ds = data::make_cifar_like(20, 9, 8);
  nn::ModelConfig mc;
  mc.image_size = 8;
  mc.base_channels = 4;
  nn::Model m = nn::make_vgg(16, mc);
  // batch 16 over 20 images: only one full batch is evaluated; accuracy is
  // still a valid fraction.
  const double acc = nn::evaluate(m, ds, 16);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(DataExtra, IlsvrcLikeClassCount) {
  const auto ds = data::make_ilsvrc_like(40, 5, 8, 20);
  EXPECT_EQ(ds.classes, 20);
  std::int64_t max_label = 0;
  for (auto l : ds.labels) max_label = std::max(max_label, l);
  EXPECT_EQ(max_label, 19);
}

TEST(DataExtra, DifferentSeedsDifferentImages) {
  const auto a = data::make_cifar_like(20, 1, 8);
  const auto b = data::make_cifar_like(20, 2, 8);
  std::int64_t same = 0;
  for (std::int64_t i = 0; i < a.images.size(); ++i) {
    same += a.images[i] == b.images[i];
  }
  // Clamping to [−1, 1] saturates many pixels identically, so only require
  // a substantial fraction of pixels to differ.
  EXPECT_LT(same, a.images.size() * 9 / 10);
}

}  // namespace
}  // namespace iwg
