#include "winograd/plan.hpp"

#include <map>
#include <mutex>
#include <utility>

namespace iwg {

std::vector<Rational> winograd_points(int alpha) {
  IWG_CHECK_MSG(alpha >= 2 && alpha <= 16, "alpha must be in [2, 16]");
  // 0, then ±k and ±1/k interleaved: 1, −1, 2, −2, 1/2, −1/2, 3, −3, ...
  std::vector<Rational> pts;
  pts.emplace_back(0);
  for (int k = 1; static_cast<int>(pts.size()) < alpha - 1; ++k) {
    pts.emplace_back(k);
    if (static_cast<int>(pts.size()) == alpha - 1) break;
    pts.emplace_back(-k);
    if (static_cast<int>(pts.size()) == alpha - 1) break;
    if (k > 1) {
      pts.emplace_back(Rational(1, k));
      if (static_cast<int>(pts.size()) == alpha - 1) break;
      pts.emplace_back(Rational(-1, k));
      if (static_cast<int>(pts.size()) == alpha - 1) break;
    }
  }
  return pts;
}

namespace {

// Lagrange normalizer N_t = Π_{k≠t} (p_t − p_k). The paper's Figure-5 scaling
// uses 1/N_t for every nonzero point and +1 for the point 0 (whose N is −1
// for these point sets); the sign difference is absorbed into D^T by the
// exact solve below, which reproduces Figure 5 byte for byte.
Rational lagrange_scale(const std::vector<Rational>& pts, int t) {
  Rational n(1);
  for (int k = 0; k < static_cast<int>(pts.size()); ++k) {
    if (k == t) continue;
    n *= pts[t] - pts[k];
  }
  if (pts[t].is_zero()) return n.abs().reciprocal();
  return n.reciprocal();
}

}  // namespace

WinogradPlan make_plan(int n, int r) {
  IWG_CHECK_MSG(n >= 1, "F(n,r) needs n >= 1");
  IWG_CHECK_MSG(r >= 2, "F(n,r) needs r >= 2");
  const int alpha = n + r - 1;
  IWG_CHECK_MSG(alpha <= 16, "state count n+r-1 must be <= 16");

  const std::vector<Rational> pts = winograd_points(alpha);

  WinogradPlan plan;
  plan.n = n;
  plan.r = r;
  plan.alpha = alpha;

  // A^T[i][t] = p_t^i, last column handles the point at infinity.
  plan.at = RationalMatrix(n, alpha);
  for (int i = 0; i < n; ++i) {
    for (int t = 0; t < alpha - 1; ++t) plan.at.at(i, t) = pts[t].pow(i);
    plan.at.at(i, alpha - 1) = Rational(i == n - 1 ? 1 : 0);
  }

  // G[t][j] = scale_t · p_t^j, infinity row selects the top filter tap.
  plan.g = RationalMatrix(alpha, r);
  for (int t = 0; t < alpha - 1; ++t) {
    const Rational s = lagrange_scale(pts, t);
    for (int j = 0; j < r; ++j) plan.g.at(t, j) = s * pts[t].pow(j);
  }
  for (int j = 0; j < r; ++j)
    plan.g.at(alpha - 1, j) = Rational(j == r - 1 ? 1 : 0);

  // Solve the bilinear identity for D^T:
  //   Σ_t A^T[i][t]·G[t][j] · D^T[t][k] = δ[k == i+j]  for all i, j, k.
  RationalMatrix c(n * r, alpha);
  RationalMatrix e(n * r, alpha);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < r; ++j) {
      const int row = i * r + j;
      for (int t = 0; t < alpha; ++t) c.at(row, t) = plan.at.at(i, t) * plan.g.at(t, j);
      e.at(row, i + j) = Rational(1);
    }
  }
  plan.bt = solve_exact(c, e);

  IWG_CHECK_MSG(verify_plan_exact(plan), "winograd plan failed verification");

  plan.at_f = plan.at.to_float();
  plan.g_f = plan.g.to_float();
  plan.bt_f = plan.bt.to_float();
  plan.at_d = plan.at.to_double();
  plan.g_d = plan.g.to_double();
  plan.bt_d = plan.bt.to_double();
  return plan;
}

const WinogradPlan& get_plan(int n, int r) {
  static std::mutex mu;
  static std::map<std::pair<int, int>, WinogradPlan> cache;
  std::lock_guard lock(mu);
  auto it = cache.find({n, r});
  if (it == cache.end()) {
    it = cache.emplace(std::make_pair(n, r), make_plan(n, r)).first;
  }
  return it->second;
}

bool verify_plan_exact(const WinogradPlan& plan) {
  for (int i = 0; i < plan.n; ++i) {
    for (int j = 0; j < plan.r; ++j) {
      for (int k = 0; k < plan.alpha; ++k) {
        Rational sum(0);
        for (int t = 0; t < plan.alpha; ++t) {
          sum += plan.at.at(i, t) * plan.g.at(t, j) * plan.bt.at(t, k);
        }
        const Rational want(k == i + j ? 1 : 0);
        if (!(sum == want)) return false;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------

std::vector<std::pair<int, int>> find_row_pairs(const RationalMatrix& m) {
  std::vector<std::pair<int, int>> pairs;
  int u = 0;
  while (u + 1 < m.rows()) {
    bool is_pair = true;
    bool nontrivial = false;  // require at least one nonzero entry
    for (int j = 0; j < m.cols(); ++j) {
      const Rational want = (j % 2 == 0) ? m.at(u, j) : -m.at(u, j);
      if (!(m.at(u + 1, j) == want)) {
        is_pair = false;
        break;
      }
      if (!m.at(u, j).is_zero()) nontrivial = true;
    }
    if (is_pair && nontrivial) {
      pairs.emplace_back(u, u + 1);
      u += 2;
    } else {
      u += 1;
    }
  }
  return pairs;
}

namespace {
bool is_free_multiplier(float v) { return v == 0.0f || v == 1.0f || v == -1.0f; }
}  // namespace

TransformEval::TransformEval(int rows, int cols, std::vector<float> m,
                             bool paired)
    : rows_(rows), cols_(cols), m_(std::move(m)), in_pair_(rows, false) {
  IWG_CHECK(static_cast<int>(m_.size()) == rows_ * cols_);
  if (paired) {
    // Recover ± pairs from the float matrix (exact for these plans: every
    // entry is a dyadic-or-small rational that round-trips through float
    // comparisons consistently because both rows hold bit-identical values).
    int u = 0;
    while (u + 1 < rows_) {
      bool is_pair = true;
      bool nontrivial = false;
      for (int j = 0; j < cols_; ++j) {
        const float a = m_[static_cast<std::size_t>(u) * cols_ + j];
        const float b = m_[static_cast<std::size_t>(u + 1) * cols_ + j];
        const float want = (j % 2 == 0) ? a : -a;
        if (b != want) {
          is_pair = false;
          break;
        }
        if (a != 0.0f) nontrivial = true;
      }
      if (is_pair && nontrivial) {
        pairs_.emplace_back(u, u + 1);
        in_pair_[static_cast<std::size_t>(u)] = true;
        in_pair_[static_cast<std::size_t>(u + 1)] = true;
        u += 2;
      } else {
        u += 1;
      }
    }
  }

  // Count the FP32 work one apply() performs.
  for (int i = 0; i < rows_; ++i) {
    if (paired && in_pair_[static_cast<std::size_t>(i)] && i > 0 &&
        in_pair_[static_cast<std::size_t>(i - 1)]) {
      // Second row of a pair: only E−O (one add), no multiplications.
      bool second = false;
      for (auto& [a, b] : pairs_) {
        if (b == i) second = true;
      }
      if (second) {
        add_count_ += 1;
        continue;
      }
    }
    int terms = 0;
    for (int j = 0; j < cols_; ++j) {
      const float v = m_[static_cast<std::size_t>(i) * cols_ + j];
      if (v == 0.0f) continue;
      ++terms;
      if (!is_free_multiplier(v)) ++mul_count_;
    }
    if (terms > 0) add_count_ += terms - 1;
    if (paired && in_pair_[static_cast<std::size_t>(i)]) add_count_ += 1;  // E+O
  }
}

void TransformEval::apply(const float* x, int xs, float* y, int ys) const {
  if (pairs_.empty()) {
    for (int i = 0; i < rows_; ++i) {
      float acc = 0.0f;
      const float* row = &m_[static_cast<std::size_t>(i) * cols_];
      for (int j = 0; j < cols_; ++j) acc += row[j] * x[j * xs];
      y[i * ys] = acc;
    }
    return;
  }
  int i = 0;
  std::size_t pair_idx = 0;
  while (i < rows_) {
    const bool starts_pair =
        pair_idx < pairs_.size() && pairs_[pair_idx].first == i;
    const float* row = &m_[static_cast<std::size_t>(i) * cols_];
    if (starts_pair) {
      // y_u = E + O, y_{u+1} = E − O with E/O the even/odd column sums —
      // the shared products are exactly the §5.3 simplification.
      float even = 0.0f;
      float odd = 0.0f;
      for (int j = 0; j < cols_; ++j) {
        const float p = row[j] * x[j * xs];
        if (j % 2 == 0) {
          even += p;
        } else {
          odd += p;
        }
      }
      y[i * ys] = even + odd;
      y[(i + 1) * ys] = even - odd;
      i += 2;
      ++pair_idx;
    } else {
      float acc = 0.0f;
      for (int j = 0; j < cols_; ++j) acc += row[j] * x[j * xs];
      y[i * ys] = acc;
      i += 1;
    }
  }
}

}  // namespace iwg
