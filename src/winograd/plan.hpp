// Winograd F(n, r) transform plans (the 1-D minimal filtering algorithms the
// paper composes into Im2col-Winograd).
//
// A plan holds the three transform matrices in the paper's notation
// (Figure 5):
//   A^T ∈ R^{n×α}   output transform        Y = A^T M
//   G   ∈ R^{α×r}   filter transform        ĝ = G w
//   D^T ∈ R^{α×α}   input transform         d̂ = D^T d
// with α = n + r − 1 and the identity  y = A^T [ (G w) ⊙ (D^T d) ]  holding
// *exactly* over the rationals, where y is the length-n "valid" correlation
// of the length-α input d with the length-r filter w.
//
// Construction (Cook–Toom): interpolation points 0, 1, −1, 2, −2, 1/2, −1/2,
// 3, −3, 1/3, −1/3, 4, −4, 1/4, −1/4 plus the point at infinity (§5.3). A^T
// and G follow the Vandermonde/Lagrange pattern visible in Figure 5; D^T is
// then the unique solution of the bilinear identity, obtained by exact
// Gaussian elimination. The over-determined solve doubles as a proof of
// exactness: inconsistency would throw.
#pragma once

#include <vector>

#include "common/rational.hpp"
#include "winograd/rational_matrix.hpp"

namespace iwg {

/// The α−1 finite interpolation points used for state count α (§5.3).
std::vector<Rational> winograd_points(int alpha);

/// One F(n, r) algorithm: exact matrices plus FP32/FP64 copies.
struct WinogradPlan {
  int n = 0;      ///< outputs per tile
  int r = 0;      ///< filter width
  int alpha = 0;  ///< state count n + r − 1

  RationalMatrix at;  ///< n × α
  RationalMatrix g;   ///< α × r
  RationalMatrix bt;  ///< α × α  (the paper's D^T)

  // Flat row-major copies for compute paths.
  std::vector<float> at_f, g_f, bt_f;
  std::vector<double> at_d, g_d, bt_d;

  /// Theoretical multiplication reduction Φ = n·r / α (§6.1.2).
  double acceleration() const {
    return static_cast<double>(n) * r / static_cast<double>(alpha);
  }
};

/// Build F(n, r). Requires 1 ≤ n, 2 ≤ r, n + r − 1 ≤ 16. Throws on failure.
WinogradPlan make_plan(int n, int r);

/// Cached access (thread-safe).
const WinogradPlan& get_plan(int n, int r);

/// Exhaustive exact verification of the bilinear identity
/// Σ_t A^T[i][t]·G[t][j]·D^T[t][k] == δ[k == i+j] — true for every plan
/// make_plan returns; exposed so tests can assert it independently.
bool verify_plan_exact(const WinogradPlan& plan);

// ---------------------------------------------------------------------------
// Transform evaluation.

/// Evaluates y = M x for a flat row-major float matrix, optionally using the
/// even/odd row-pairing simplification of §5.3: consecutive rows for points
/// ±a share all their multiplications (equal entries at even columns,
/// opposite at odd columns), cutting multiplications roughly in half.
class TransformEval {
 public:
  TransformEval(int rows, int cols, std::vector<float> m, bool paired);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool paired() const { return !pairs_.empty(); }

  /// y[i·ys] = Σ_j M[i][j] · x[j·xs]
  void apply(const float* x, int xs, float* y, int ys) const;

  /// FP32 multiplications one apply() performs (zeros and ±1 entries free).
  int mul_count() const { return mul_count_; }
  /// FP32 additions one apply() performs.
  int add_count() const { return add_count_; }

 private:
  int rows_;
  int cols_;
  std::vector<float> m_;
  std::vector<std::pair<int, int>> pairs_;  // (row u, row u+1) ± pairs
  std::vector<bool> in_pair_;
  int mul_count_ = 0;
  int add_count_ = 0;
};

/// Detect §5.3 row pairs of a rational matrix: rows (u, u+1) with
/// M[u+1][j] == (−1)^j · M[u][j] for all j and row u not already paired.
std::vector<std::pair<int, int>> find_row_pairs(const RationalMatrix& m);

}  // namespace iwg
