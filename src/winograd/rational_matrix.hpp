// Small dense matrices over exact rationals.
//
// Only used at plan-construction time (matrices are at most 72×16), so
// clarity beats speed: plain Gaussian elimination with exact pivoting.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rational.hpp"

namespace iwg {

/// Row-major dense matrix of Rational.
class RationalMatrix {
 public:
  RationalMatrix() = default;
  RationalMatrix(int rows, int cols)
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * cols) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  Rational& at(int r, int c) {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  const Rational& at(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  RationalMatrix transposed() const;
  RationalMatrix operator*(const RationalMatrix& o) const;
  bool operator==(const RationalMatrix& o) const;

  /// Convert to a flat row-major float matrix.
  std::vector<float> to_float() const;
  std::vector<double> to_double() const;

  std::string to_string() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<Rational> data_;
};

/// Solve C · X = E exactly for X, where C is (m×n) with m ≥ n and full column
/// rank, and E is (m×k). Overdetermined rows must be consistent — the solver
/// verifies this exactly and throws otherwise (that check is what proves the
/// generated Winograd algorithm is exact, not approximate).
RationalMatrix solve_exact(const RationalMatrix& c, const RationalMatrix& e);

}  // namespace iwg
