#include "winograd/rational_matrix.hpp"

#include <string>

namespace iwg {

RationalMatrix RationalMatrix::transposed() const {
  RationalMatrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  return t;
}

RationalMatrix RationalMatrix::operator*(const RationalMatrix& o) const {
  IWG_CHECK(cols_ == o.rows_);
  RationalMatrix out(rows_, o.cols_);
  for (int r = 0; r < rows_; ++r)
    for (int k = 0; k < cols_; ++k) {
      if (at(r, k).is_zero()) continue;
      for (int c = 0; c < o.cols_; ++c)
        out.at(r, c) += at(r, k) * o.at(k, c);
    }
  return out;
}

bool RationalMatrix::operator==(const RationalMatrix& o) const {
  if (rows_ != o.rows_ || cols_ != o.cols_) return false;
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c)
      if (!(at(r, c) == o.at(r, c))) return false;
  return true;
}

std::vector<float> RationalMatrix::to_float() const {
  std::vector<float> out(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) out[i] = data_[i].to_float();
  return out;
}

std::vector<double> RationalMatrix::to_double() const {
  std::vector<double> out(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) out[i] = data_[i].to_double();
  return out;
}

std::string RationalMatrix::to_string() const {
  std::string s;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      s += at(r, c).to_string();
      s += c + 1 < cols_ ? ' ' : '\n';
    }
  }
  return s;
}

RationalMatrix solve_exact(const RationalMatrix& c, const RationalMatrix& e) {
  IWG_CHECK(c.rows() == e.rows());
  IWG_CHECK_MSG(c.rows() >= c.cols(), "underdetermined system");
  const int m = c.rows();
  const int n = c.cols();
  const int k = e.cols();

  // Augmented matrix [C | E], eliminated in place.
  RationalMatrix a(m, n + k);
  for (int r = 0; r < m; ++r) {
    for (int j = 0; j < n; ++j) a.at(r, j) = c.at(r, j);
    for (int j = 0; j < k; ++j) a.at(r, n + j) = e.at(r, j);
  }

  for (int col = 0; col < n; ++col) {
    // Find a pivot row at or below `col`.
    int pivot = -1;
    for (int r = col; r < m; ++r) {
      if (!a.at(r, col).is_zero()) {
        pivot = r;
        break;
      }
    }
    IWG_CHECK_MSG(pivot >= 0, "matrix is rank deficient at column " +
                                  std::to_string(col));
    if (pivot != col) {
      for (int j = 0; j < n + k; ++j) std::swap(a.at(pivot, j), a.at(col, j));
    }
    // Normalize the pivot row.
    const Rational inv = a.at(col, col).reciprocal();
    for (int j = col; j < n + k; ++j) a.at(col, j) *= inv;
    // Eliminate the column everywhere else.
    for (int r = 0; r < m; ++r) {
      if (r == col || a.at(r, col).is_zero()) continue;
      const Rational f = a.at(r, col);
      for (int j = col; j < n + k; ++j) a.at(r, j) -= f * a.at(col, j);
    }
  }

  // Rows below n must now be identically zero — this is the exactness proof
  // for the overdetermined part of the bilinear system.
  for (int r = n; r < m; ++r) {
    for (int j = 0; j < n + k; ++j) {
      IWG_CHECK_MSG(a.at(r, j).is_zero(),
                    "inconsistent overdetermined system (row " +
                        std::to_string(r) + ")");
    }
  }

  RationalMatrix x(n, k);
  for (int r = 0; r < n; ++r)
    for (int j = 0; j < k; ++j) x.at(r, j) = a.at(r, n + j);
  return x;
}

}  // namespace iwg
