// Convolution problem geometry (Table 1 of the paper).
#pragma once

#include <cstdint>
#include <string>

#include "common/check.hpp"

namespace iwg {

/// Geometry of a unit-stride 2-D convolution with zero padding.
///
/// OH = IH + 2*ph − FH + 1, OW = IW + 2*pw − FW + 1 (stride 1 throughout —
/// the paper's kernels target unit stride; the framework falls back to GEMM
/// for strided layers).
struct ConvShape {
  std::int64_t n = 1;    ///< batch size N
  std::int64_t ih = 1;   ///< input height
  std::int64_t iw = 1;   ///< input width
  std::int64_t ic = 1;   ///< input channels
  std::int64_t oc = 1;   ///< output channels
  std::int64_t fh = 1;   ///< filter height
  std::int64_t fw = 1;   ///< filter width
  std::int64_t ph = 0;   ///< padding (height)
  std::int64_t pw = 0;   ///< padding (width)

  std::int64_t oh() const { return ih + 2 * ph - fh + 1; }
  std::int64_t ow() const { return iw + 2 * pw - fw + 1; }

  /// Geometric identity — the plan-cache key compares full shapes.
  friend bool operator==(const ConvShape&, const ConvShape&) = default;

  void validate() const {
    IWG_CHECK(n > 0 && ih > 0 && iw > 0 && ic > 0 && oc > 0);
    IWG_CHECK(fh > 0 && fw > 0 && ph >= 0 && pw >= 0);
    IWG_CHECK_MSG(oh() > 0 && ow() > 0, "empty output feature map");
  }

  /// FP32 op count 2·N·OC·OH·OW·FH·FW·IC used for Gflop/s (paper §6.1.1).
  double flops() const {
    return 2.0 * static_cast<double>(n) * static_cast<double>(oc) *
           static_cast<double>(oh()) * static_cast<double>(ow()) *
           static_cast<double>(fh) * static_cast<double>(fw) *
           static_cast<double>(ic);
  }

  /// Build a shape from the ofms description used by the paper's figures
  /// (N × OH × OW × OC) plus a square filter r with ⌊r/2⌋ padding and
  /// IC == OC, matching §6 "for all test cases IC equals OC".
  static ConvShape from_ofms(std::int64_t n, std::int64_t oh, std::int64_t ow,
                             std::int64_t oc, std::int64_t r) {
    ConvShape s;
    s.n = n;
    s.oc = oc;
    s.ic = oc;
    s.fh = r;
    s.fw = r;
    s.ph = r / 2;
    s.pw = r / 2;
    s.ih = oh - 2 * s.ph + r - 1;
    s.iw = ow - 2 * s.pw + r - 1;
    s.validate();
    IWG_CHECK(s.oh() == oh && s.ow() == ow);
    return s;
  }

  std::string to_string() const {
    return std::to_string(n) + "x" + std::to_string(oh()) + "x" +
           std::to_string(ow()) + "x" + std::to_string(oc) + " (f" +
           std::to_string(fh) + "x" + std::to_string(fw) + " ic" +
           std::to_string(ic) + ")";
  }
};

}  // namespace iwg
