// Dense row-major tensors (rank ≤ 4) used throughout the library.
//
// Convolution tensors follow the paper's conventions (Table 1):
//   ifms    X : N × IH × IW × IC           (NHWC)
//   filters W : OC × FH × FW × IC
//   ofms    Y : N × OH × OW × OC           (NHWC)
// NCHW variants are produced by the layout converters in layout.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace iwg {

/// Owning dense tensor of element type T (float for compute, double for the
/// FP64 reference path). Row-major; rank between 1 and 5 (rank 5 serves the
/// §4.2 N-D extension's N,D,H,W,C volumes).
template <typename T>
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::initializer_list<std::int64_t> dims) {
    reset(std::vector<std::int64_t>(dims));
  }
  explicit Tensor(const std::vector<std::int64_t>& dims) { reset(dims); }

  void reset(const std::vector<std::int64_t>& dims) {
    IWG_CHECK_MSG(!dims.empty() && dims.size() <= 5, "tensor rank must be 1-5");
    rank_ = static_cast<int>(dims.size());
    std::int64_t total = 1;
    for (int i = 0; i < rank_; ++i) {
      IWG_CHECK_MSG(dims[i] > 0, "tensor dims must be positive");
      dims_[i] = dims[i];
      total *= dims[i];
    }
    for (int i = rank_; i < 5; ++i) dims_[i] = 1;
    data_.assign(static_cast<std::size_t>(total), T{});
    strides_[rank_ - 1] = 1;
    for (int i = rank_ - 2; i >= 0; --i) strides_[i] = strides_[i + 1] * dims_[i + 1];
    for (int i = rank_; i < 5; ++i) strides_[i] = 1;
  }

  int rank() const { return rank_; }
  std::int64_t dim(int i) const { return dims_[i]; }
  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::span<T> span() { return {data_.data(), data_.size()}; }
  std::span<const T> span() const { return {data_.data(), data_.size()}; }

  T& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  const T& operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  /// 4-D accessors (unused trailing indices must be 0 for lower ranks).
  T& at(std::int64_t a, std::int64_t b, std::int64_t c, std::int64_t d) {
    return data_[static_cast<std::size_t>(offset(a, b, c, d))];
  }
  const T& at(std::int64_t a, std::int64_t b, std::int64_t c,
              std::int64_t d) const {
    return data_[static_cast<std::size_t>(offset(a, b, c, d))];
  }

  /// 5-D accessors (rank-5 tensors only).
  T& at5(std::int64_t a, std::int64_t b, std::int64_t c, std::int64_t d,
         std::int64_t e) {
    return data_[static_cast<std::size_t>(offset5(a, b, c, d, e))];
  }
  const T& at5(std::int64_t a, std::int64_t b, std::int64_t c, std::int64_t d,
               std::int64_t e) const {
    return data_[static_cast<std::size_t>(offset5(a, b, c, d, e))];
  }

  std::int64_t offset(std::int64_t a, std::int64_t b, std::int64_t c,
                      std::int64_t d) const {
    return a * strides_[0] + b * strides_[1] + c * strides_[2] + d * strides_[3];
  }
  std::int64_t offset5(std::int64_t a, std::int64_t b, std::int64_t c,
                       std::int64_t d, std::int64_t e) const {
    return a * strides_[0] + b * strides_[1] + c * strides_[2] +
           d * strides_[3] + e * strides_[4];
  }

  bool same_shape(const Tensor& o) const {
    if (rank_ != o.rank_) return false;
    for (int i = 0; i < rank_; ++i)
      if (dims_[i] != o.dims_[i]) return false;
    return true;
  }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  void fill_uniform(Rng& rng, T lo, T hi) {
    for (auto& v : data_) {
      if constexpr (std::is_same_v<T, float>) {
        v = rng.uniform(lo, hi);
      } else {
        v = static_cast<T>(rng.uniform_double(static_cast<double>(lo),
                                              static_cast<double>(hi)));
      }
    }
  }

  /// Element-wise copy converting precision (e.g. float → double reference).
  template <typename U>
  Tensor<U> cast() const {
    std::vector<std::int64_t> dims(dims_.begin(), dims_.begin() + rank_);
    Tensor<U> out(dims);
    for (std::int64_t i = 0; i < size(); ++i)
      out[i] = static_cast<U>(data_[static_cast<std::size_t>(i)]);
    return out;
  }

 private:
  int rank_ = 0;
  std::array<std::int64_t, 5> dims_{1, 1, 1, 1, 1};
  std::array<std::int64_t, 5> strides_{1, 1, 1, 1, 1};
  std::vector<T> data_;
};

using TensorF = Tensor<float>;
using TensorD = Tensor<double>;

}  // namespace iwg
