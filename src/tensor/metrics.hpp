// Error metrics used by Experiment 2 (accuracy analysis, Table 3 / Fig. 10).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace iwg {

/// Average relative error of `got` against FP64 truth, the paper's accuracy
/// metric (§6.2.1). Elements with |truth| below eps are compared absolutely.
double average_relative_error(const TensorF& got, const TensorD& truth,
                              double eps = 1e-30);

/// Per-element relative errors (for the Figure-10 histogram).
std::vector<double> relative_errors(const TensorF& got, const TensorD& truth,
                                    double eps = 1e-30);

/// Max |a-b| over all elements; tensors must be the same shape.
double max_abs_diff(const TensorF& a, const TensorF& b);

/// Max |a-b| / (1 + |b|); robust to magnitude for FP32-vs-FP32 checks.
double max_rel_diff(const TensorF& a, const TensorF& b);

/// Histogram helper: counts of values in [edges[i], edges[i+1]).
std::vector<std::int64_t> histogram(const std::vector<double>& values,
                                    const std::vector<double>& edges);

// ---------------------------------------------------------------------------

inline double average_relative_error(const TensorF& got, const TensorD& truth,
                                     double eps) {
  IWG_CHECK(got.size() == truth.size());
  if (got.size() == 0) return 0.0;  // not NaN from 0/0
  double sum = 0.0;
  for (std::int64_t i = 0; i < got.size(); ++i) {
    const double t = truth[i];
    const double d = std::abs(static_cast<double>(got[i]) - t);
    sum += std::abs(t) > eps ? d / std::abs(t) : d;
  }
  return sum / static_cast<double>(got.size());
}

inline std::vector<double> relative_errors(const TensorF& got,
                                           const TensorD& truth, double eps) {
  IWG_CHECK(got.size() == truth.size());
  if (got.size() == 0) return {};
  std::vector<double> out(static_cast<std::size_t>(got.size()));
  for (std::int64_t i = 0; i < got.size(); ++i) {
    const double t = truth[i];
    const double d = std::abs(static_cast<double>(got[i]) - t);
    out[static_cast<std::size_t>(i)] =
        std::abs(t) > eps ? d / std::abs(t) : d;
  }
  return out;
}

inline double max_abs_diff(const TensorF& a, const TensorF& b) {
  IWG_CHECK(a.size() == b.size());
  double m = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
  return m;
}

inline double max_rel_diff(const TensorF& a, const TensorF& b) {
  IWG_CHECK(a.size() == b.size());
  double m = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    const double d = std::abs(static_cast<double>(a[i]) - b[i]);
    m = std::max(m, d / (1.0 + std::abs(static_cast<double>(b[i]))));
  }
  return m;
}

inline std::vector<std::int64_t> histogram(const std::vector<double>& values,
                                           const std::vector<double>& edges) {
  IWG_CHECK(edges.size() >= 2);
  std::vector<std::int64_t> counts(edges.size() - 1, 0);
  for (double v : values) {
    for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
      if (v >= edges[i] && v < edges[i + 1]) {
        ++counts[i];
        break;
      }
    }
  }
  return counts;
}

}  // namespace iwg
