// Layout converters and filter rearrangements.
//
// The paper stores filters as OC × FH × FW × IC and, for forward convolution,
// transposes them to FH × FW × IC × OC so that a warp reading consecutive OC
// values is coalesced (§5.1). Backward deconvolution additionally rotates the
// filter 180° spatially, which is fused into the filter transform.
#pragma once

#include "tensor/tensor.hpp"

namespace iwg {

/// NHWC (N,H,W,C) → NCHW (N,C,H,W).
template <typename T>
Tensor<T> nhwc_to_nchw(const Tensor<T>& x);

/// NCHW (N,C,H,W) → NHWC (N,H,W,C).
template <typename T>
Tensor<T> nchw_to_nhwc(const Tensor<T>& x);

/// Filters OC,FH,FW,IC → FH,FW,IC,OC (forward layout, §5.1).
template <typename T>
Tensor<T> transpose_filter_to_fhwio(const Tensor<T>& w);

/// Filters OC,FH,FW,IC → FH,FW,IC,OC with 180° spatial rotation (deconv).
template <typename T>
Tensor<T> transpose_filter_to_fhwio_rot180(const Tensor<T>& w);

/// Filters OC,FH,FW,IC → IC,FH,FW,OC with 180° rotation: the filter of the
/// transposed convolution expressed as a plain convolution filter.
template <typename T>
Tensor<T> deconv_filter(const Tensor<T>& w);

// ---------------------------------------------------------------------------
// Implementation (header-only; trivially inlinable loops).

template <typename T>
Tensor<T> nhwc_to_nchw(const Tensor<T>& x) {
  IWG_CHECK(x.rank() == 4);
  const auto n = x.dim(0), h = x.dim(1), w = x.dim(2), c = x.dim(3);
  Tensor<T> out({n, c, h, w});
  for (std::int64_t in = 0; in < n; ++in)
    for (std::int64_t ih = 0; ih < h; ++ih)
      for (std::int64_t iw = 0; iw < w; ++iw)
        for (std::int64_t ic = 0; ic < c; ++ic)
          out.at(in, ic, ih, iw) = x.at(in, ih, iw, ic);
  return out;
}

template <typename T>
Tensor<T> nchw_to_nhwc(const Tensor<T>& x) {
  IWG_CHECK(x.rank() == 4);
  const auto n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor<T> out({n, h, w, c});
  for (std::int64_t in = 0; in < n; ++in)
    for (std::int64_t ic = 0; ic < c; ++ic)
      for (std::int64_t ih = 0; ih < h; ++ih)
        for (std::int64_t iw = 0; iw < w; ++iw)
          out.at(in, ih, iw, ic) = x.at(in, ic, ih, iw);
  return out;
}

template <typename T>
Tensor<T> transpose_filter_to_fhwio(const Tensor<T>& w) {
  IWG_CHECK(w.rank() == 4);
  const auto oc = w.dim(0), fh = w.dim(1), fw = w.dim(2), ic = w.dim(3);
  Tensor<T> out({fh, fw, ic, oc});
  for (std::int64_t o = 0; o < oc; ++o)
    for (std::int64_t h = 0; h < fh; ++h)
      for (std::int64_t x = 0; x < fw; ++x)
        for (std::int64_t i = 0; i < ic; ++i)
          out.at(h, x, i, o) = w.at(o, h, x, i);
  return out;
}

template <typename T>
Tensor<T> transpose_filter_to_fhwio_rot180(const Tensor<T>& w) {
  IWG_CHECK(w.rank() == 4);
  const auto oc = w.dim(0), fh = w.dim(1), fw = w.dim(2), ic = w.dim(3);
  Tensor<T> out({fh, fw, ic, oc});
  for (std::int64_t o = 0; o < oc; ++o)
    for (std::int64_t h = 0; h < fh; ++h)
      for (std::int64_t x = 0; x < fw; ++x)
        for (std::int64_t i = 0; i < ic; ++i)
          out.at(fh - 1 - h, fw - 1 - x, i, o) = w.at(o, h, x, i);
  return out;
}

template <typename T>
Tensor<T> deconv_filter(const Tensor<T>& w) {
  IWG_CHECK(w.rank() == 4);
  const auto oc = w.dim(0), fh = w.dim(1), fw = w.dim(2), ic = w.dim(3);
  // Result: filter of shape IC(out) × FH × FW × OC(in), spatially rotated.
  Tensor<T> out({ic, fh, fw, oc});
  for (std::int64_t o = 0; o < oc; ++o)
    for (std::int64_t h = 0; h < fh; ++h)
      for (std::int64_t x = 0; x < fw; ++x)
        for (std::int64_t i = 0; i < ic; ++i)
          out.at(i, fh - 1 - h, fw - 1 - x, o) = w.at(o, h, x, i);
  return out;
}

}  // namespace iwg
