#include "gpusim/perf_model.hpp"

#include <algorithm>
#include <cmath>

namespace iwg::sim {

namespace {
// Fixed pipeline efficiency (issue overheads beyond the modeled index ops).
constexpr double kPipelineEff = 0.95;
// Latency-hiding scale: effective parallelism (warps × per-thread ILP)
// needed before the pipes saturate. This term is what prices the §5.4
// trade-off: the ruse variants halve the active threads but double each
// thread's independent accumulator chains.
constexpr double kHideScale = 5.0;
// Integer/address ops the ALU pipes spend per memory access per lane
// (pointer arithmetic, predicates). Winograd kernels issue more accesses per
// useful FMA than GEMM, which is part of why their real-world speedup is
// smaller than the pure multiplication-count ratio.
constexpr double kIndexOpsPerAccess = 3.0;
}  // namespace

PerfEstimate estimate_perf(const DeviceProfile& dev, const PerfInput& in) {
  PerfEstimate e;
  e.occ = compute_occupancy(dev, in.threads_per_block,
                            static_cast<int>(in.smem_per_block),
                            in.regs_per_thread);

  const double ilp = static_cast<double>(in.accumulators_per_thread) / 64.0;
  const double warps_eff = static_cast<double>(e.occ.active_warps) * ilp;
  const double lat_hide = warps_eff / (warps_eff + kHideScale);
  const double eff = kPipelineEff * std::max(lat_hide, 0.05);

  // FP32/ALU pipes: every counted FMA and ALU op occupies one lane-cycle,
  // plus the modeled address arithmetic behind each memory instruction.
  const double accesses =
      32.0 * static_cast<double>(in.stats.gld_requests + in.stats.gst_requests +
                                 in.stats.smem_ld_requests +
                                 in.stats.smem_st_requests);
  const double ops = static_cast<double>(in.stats.fma + in.stats.alu) +
                     kIndexOpsPerAccess * accesses;
  const double lane_rate =
      static_cast<double>(dev.num_sms) * dev.fma_lanes_per_sm * dev.clock_ghz *
      1e9;
  e.t_compute = ops / (lane_rate * eff);

  // L2 traffic is what the coalescing analysis measured (sectors × 32 B).
  const double l2_traffic = in.stats.gld_bytes() + in.stats.gst_bytes();

  // DRAM: blocks resident at the same time share the L2. If the unique bytes
  // touched per wave fit in L2, cross-block reuse (filters shared along the
  // tile axis, inputs shared along the OC axis) is absorbed and DRAM sees
  // only the unique footprint; otherwise traffic spills.
  const double concurrent_blocks = std::max(
      1.0, static_cast<double>(e.occ.blocks_per_sm) * dev.num_sms);
  const double waves =
      std::max(1.0, std::ceil(static_cast<double>(in.grid_blocks) /
                              concurrent_blocks));
  const double unique_per_wave = in.footprint_bytes / waves;
  const double hit_capacity =
      unique_per_wave <= 0.0
          ? 1.0
          : std::min(1.0, static_cast<double>(dev.l2_bytes) / unique_per_wave);
  e.dram_bytes = in.footprint_bytes +
                 std::max(0.0, l2_traffic - in.footprint_bytes) *
                     (1.0 - hit_capacity);
  e.t_dram = e.dram_bytes / (dev.dram_bw_gbps * 1e9 * std::max(lat_hide, 0.25));

  // L2 bandwidth: roughly 3× DRAM bandwidth on both parts.
  e.t_l2 = l2_traffic / (3.0 * dev.dram_bw_gbps * 1e9);

  // Shared memory: one pass (128 B) per cycle per SM; conflicts are extra
  // passes measured by the bank analyzer.
  const double passes = static_cast<double>(in.stats.smem_ld_passes +
                                            in.stats.smem_st_passes);
  e.t_smem = passes / (static_cast<double>(dev.num_sms) * dev.clock_ghz * 1e9 *
                       std::max(lat_hide, 0.25));

  e.t_launch = dev.launch_overhead_s * in.num_launches;

  e.time_s = std::max({e.t_compute, e.t_dram, e.t_l2, e.t_smem}) + e.t_launch;
  e.bound = "compute";
  if (e.t_dram >= e.t_compute && e.t_dram >= e.t_smem && e.t_dram >= e.t_l2)
    e.bound = "dram";
  else if (e.t_smem >= e.t_compute && e.t_smem >= e.t_dram)
    e.bound = "smem";
  else if (e.t_l2 >= e.t_compute)
    e.bound = "l2";
  e.gflops = in.conv_flops / e.time_s / 1e9;
  return e;
}

}  // namespace iwg::sim
