// GPU device models.
//
// The paper evaluates on an RTX 3060 Ti (Ampere) and an RTX 4090 (Ada
// Lovelace). Neither a GPU nor CUDA is available in this environment, so the
// library executes kernels on a software SIMT model (sim.hpp) and estimates
// time with an analytic roofline (perf_model.hpp) parameterized by these
// profiles. Numbers are the public specifications of the two cards.
#pragma once

#include <cstdint>
#include <string>

namespace iwg::sim {

/// Hardware parameters consumed by the occupancy and performance models.
struct DeviceProfile {
  std::string name;

  int num_sms = 1;
  double clock_ghz = 1.0;
  /// FP32 fused multiply-adds issued per cycle per SM (CUDA cores).
  int fma_lanes_per_sm = 128;

  double dram_bw_gbps = 1.0;  ///< bytes/s × 1e9
  std::int64_t l2_bytes = 0;

  int warp_size = 32;
  int max_threads_per_block = 1024;
  int max_threads_per_sm = 1536;
  int max_blocks_per_sm = 16;
  /// Max static shared memory per block — the 49152-byte limit the paper's
  /// α ≤ 24 derivation uses (§4.1).
  int max_smem_per_block = 49152;
  int smem_per_sm = 102400;
  int regs_per_sm = 65536;
  /// Shared-memory bandwidth: bytes served per cycle per SM (one 128-byte
  /// warp transaction per cycle).
  double smem_bytes_per_cycle = 128.0;
  /// Fixed host-side cost of one kernel launch (seconds) — this is what makes
  /// the §5.5 boundary treatment's "fewer, larger kernels" preferable to many
  /// tiny tail launches.
  double launch_overhead_s = 4e-6;

  double peak_gflops() const {
    return 2.0 * fma_lanes_per_sm * num_sms * clock_ghz;
  }

  static DeviceProfile rtx3060ti();
  static DeviceProfile rtx4090();
};

/// Per-SM residency for a kernel configuration.
struct Occupancy {
  int blocks_per_sm = 0;
  int active_threads = 0;
  int active_warps = 0;
  double ratio = 0.0;       ///< active threads / max threads per SM
  const char* limiter = ""; ///< which resource bounds residency
};

/// Compute how many blocks of the given configuration fit on one SM.
Occupancy compute_occupancy(const DeviceProfile& dev, int threads_per_block,
                            int smem_per_block, int regs_per_thread);

}  // namespace iwg::sim
