#include "gpusim/device.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace iwg::sim {

DeviceProfile DeviceProfile::rtx3060ti() {
  DeviceProfile d;
  d.name = "sim-rtx3060ti";
  d.num_sms = 38;
  d.clock_ghz = 1.665;
  d.fma_lanes_per_sm = 128;  // GA104: 128 FP32 lanes → 16.2 TFLOPS peak
  d.dram_bw_gbps = 448.0;
  d.l2_bytes = 4ll * 1024 * 1024;
  d.max_threads_per_sm = 1536;
  d.smem_per_sm = 102400;
  d.regs_per_sm = 65536;
  return d;
}

DeviceProfile DeviceProfile::rtx4090() {
  DeviceProfile d;
  d.name = "sim-rtx4090";
  d.num_sms = 128;
  d.clock_ghz = 2.52;
  d.fma_lanes_per_sm = 128;  // AD102: 82.6 TFLOPS peak
  d.dram_bw_gbps = 1008.0;
  d.l2_bytes = 72ll * 1024 * 1024;
  d.max_threads_per_sm = 1536;
  d.smem_per_sm = 102400;
  d.regs_per_sm = 65536;
  return d;
}

Occupancy compute_occupancy(const DeviceProfile& dev, int threads_per_block,
                            int smem_per_block, int regs_per_thread) {
  IWG_CHECK(threads_per_block > 0 &&
            threads_per_block <= dev.max_threads_per_block);
  IWG_CHECK(smem_per_block >= 0 && smem_per_block <= dev.max_smem_per_block);
  IWG_CHECK(regs_per_thread > 0);

  Occupancy occ;
  const int by_threads = dev.max_threads_per_sm / threads_per_block;
  const int by_smem = smem_per_block > 0 ? dev.smem_per_sm / smem_per_block
                                         : dev.max_blocks_per_sm;
  // Registers allocate in per-warp granules; a plain product is close enough
  // for the model.
  const int by_regs = dev.regs_per_sm / (regs_per_thread * threads_per_block);
  const int by_limit = dev.max_blocks_per_sm;

  occ.blocks_per_sm = std::min({by_threads, by_smem, by_regs, by_limit});
  if (occ.blocks_per_sm == by_threads) occ.limiter = "threads";
  if (occ.blocks_per_sm == by_regs) occ.limiter = "registers";
  if (occ.blocks_per_sm == by_smem) occ.limiter = "smem";
  if (occ.blocks_per_sm == by_limit) occ.limiter = "blocks";
  occ.blocks_per_sm = std::max(occ.blocks_per_sm, 0);
  occ.active_threads = occ.blocks_per_sm * threads_per_block;
  occ.active_warps = occ.active_threads / dev.warp_size;
  occ.ratio = static_cast<double>(occ.active_threads) / dev.max_threads_per_sm;
  return occ;
}

}  // namespace iwg::sim
