#include "gpusim/sim.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/thread_pool.hpp"

namespace iwg::sim {

void LaunchStats::merge(const LaunchStats& o) {
  fma += o.fma;
  alu += o.alu;
  gld_requests += o.gld_requests;
  gld_sectors += o.gld_sectors;
  gld_ideal_bytes += o.gld_ideal_bytes;
  gst_requests += o.gst_requests;
  gst_sectors += o.gst_sectors;
  gst_ideal_bytes += o.gst_ideal_bytes;
  smem_ld_requests += o.smem_ld_requests;
  smem_ld_passes += o.smem_ld_passes;
  smem_ld_ideal += o.smem_ld_ideal;
  smem_st_requests += o.smem_st_requests;
  smem_st_passes += o.smem_st_passes;
  smem_st_ideal += o.smem_st_ideal;
  for (int i = 0; i < kMaxSites; ++i) {
    site_ld_passes[i] += o.site_ld_passes[i];
    site_ld_ideal[i] += o.site_ld_ideal[i];
    site_st_passes[i] += o.site_st_passes[i];
    site_st_ideal[i] += o.site_st_ideal[i];
  }
  barriers += o.barriers;
  blocks += o.blocks;
}

void LaunchStats::scale(double factor) {
  auto s = [factor](std::int64_t& v) {
    v = static_cast<std::int64_t>(static_cast<double>(v) * factor + 0.5);
  };
  s(fma);
  s(alu);
  s(gld_requests);
  s(gld_sectors);
  s(gld_ideal_bytes);
  s(gst_requests);
  s(gst_sectors);
  s(gst_ideal_bytes);
  s(smem_ld_requests);
  s(smem_ld_passes);
  s(smem_ld_ideal);
  s(smem_st_requests);
  s(smem_st_passes);
  s(smem_st_ideal);
  for (int i = 0; i < kMaxSites; ++i) {
    s(site_ld_passes[i]);
    s(site_ld_ideal[i]);
    s(site_st_passes[i]);
    s(site_st_ideal[i]);
  }
  s(barriers);
  s(blocks);
}

SmemRequestCost smem_request_cost(
    std::span<const std::pair<std::int64_t, int>> lanes) {
  SmemRequestCost cost;
  int max_width = 4;
  for (const auto& [addr, width] : lanes)
    max_width = std::max(max_width, width);
  const std::size_t lanes_per_group =
      static_cast<std::size_t>(std::max(1, 32 / (max_width / 4)));
  for (std::size_t g0 = 0; g0 < lanes.size(); g0 += lanes_per_group) {
    std::int64_t word_buf[160];
    int nw = 0;
    const std::size_t g1 = std::min(lanes.size(), g0 + lanes_per_group);
    for (std::size_t i = g0; i < g1; ++i) {
      const auto& [addr, width] = lanes[i];
      for (int w = 0; w < width / 4 && nw < 160; ++w)
        word_buf[nw++] = addr / 4 + w;
    }
    std::sort(word_buf, word_buf + nw);
    const std::int64_t nwords = std::unique(word_buf, word_buf + nw) - word_buf;
    std::int64_t per_bank[32] = {0};
    for (std::int64_t i = 0; i < nwords; ++i) ++per_bank[word_buf[i] % 32];
    std::int64_t group_passes = 0;
    for (std::int64_t c : per_bank) group_passes = std::max(group_passes, c);
    cost.passes += std::max<std::int64_t>(group_passes, nwords == 0 ? 0 : 1);
    cost.ideal += (nwords + 31) / 32;
  }
  return cost;
}

// ---------------------------------------------------------------------------
// Thread accessors.

float Thread::ldg(const GmemBuf& b, std::int64_t idx, int site) const {
  if (block->counting())
    block->record(Block::Kind::kGld, site, lane, idx * 4, 4);
  return b.load(idx);
}

void Thread::ldg64(const GmemBuf& b, std::int64_t idx, float out[2],
                   int site) const {
  if (block->counting())
    block->record(Block::Kind::kGld, site, lane, idx * 4, 8);
  for (int i = 0; i < 2; ++i) out[i] = b.load(idx + i);
}

void Thread::ldg128(const GmemBuf& b, std::int64_t idx, float out[4],
                    int site) const {
  if (block->counting())
    block->record(Block::Kind::kGld, site, lane, idx * 4, 16);
  for (int i = 0; i < 4; ++i) out[i] = b.load(idx + i);
}

void Thread::stg(const GmemBuf& b, std::int64_t idx, float v, int site) const {
  if (block->counting())
    block->record(Block::Kind::kGst, site, lane, idx * 4, 4);
  b.store(idx, v);
}

void Thread::stg128(const GmemBuf& b, std::int64_t idx, const float v[4],
                    int site) const {
  if (block->counting())
    block->record(Block::Kind::kGst, site, lane, idx * 4, 16);
  for (int i = 0; i < 4; ++i) b.store(idx + i, v[i]);
}

float Thread::lds(const Smem& s, std::int64_t idx, int site) const {
  if (block->counting())
    block->record(Block::Kind::kSld, site, lane, (s.base + idx) * 4, 4);
  return const_cast<Smem&>(s)[idx];
}

void Thread::lds128(const Smem& s, std::int64_t idx, float out[4],
                    int site) const {
  if (block->counting())
    block->record(Block::Kind::kSld, site, lane, (s.base + idx) * 4, 16);
  for (int i = 0; i < 4; ++i) out[i] = const_cast<Smem&>(s)[idx + i];
}

void Thread::sts(const Smem& s, std::int64_t idx, float v, int site) const {
  if (block->counting())
    block->record(Block::Kind::kSst, site, lane, (s.base + idx) * 4, 4);
  const_cast<Smem&>(s)[idx] = v;
}

void Thread::sts128(const Smem& s, std::int64_t idx, const float v[4],
                    int site) const {
  if (block->counting())
    block->record(Block::Kind::kSst, site, lane, (s.base + idx) * 4, 16);
  for (int i = 0; i < 4; ++i) const_cast<Smem&>(s)[idx + i] = v[i];
}

void Thread::count_fma(std::int64_t n) const { block->count_fma(n); }
void Thread::count_alu(std::int64_t n) const { block->count_alu(n); }

// ---------------------------------------------------------------------------
// Block.

Block::Block(Dim3 block_idx, Dim3 block_dim, std::int64_t smem_limit_bytes,
             bool counting)
    : idx_(block_idx),
      dim_(block_dim),
      smem_limit_words_(smem_limit_bytes / 4),
      arena_(static_cast<std::size_t>(smem_limit_words_), 0.0f),
      counting_(counting) {}

Smem Block::smem(const std::string& name, std::int64_t words) {
  for (const Region& r : regions_) {
    if (r.name == name) {
      IWG_CHECK_MSG(r.count == words, "smem region re-declared with new size");
      return Smem{arena_.data() + r.base, r.base, r.count};
    }
  }
  IWG_CHECK_MSG(arena_top_ + words <= smem_limit_words_,
                "shared memory limit exceeded for region " + name);
  const std::int64_t base = arena_top_;
  arena_top_ += words;
  high_water_ = std::max(high_water_, arena_top_);
  regions_.push_back(Region{name, base, words});
  return Smem{arena_.data() + base, base, words};
}

void Block::smem_reuse_from(const std::string& name) {
  // Rewind the linear allocator to the start of `name`, dropping it and every
  // later region. New allocations alias the old storage.
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].name == name) {
      arena_top_ = regions_[i].base;
      regions_.resize(i);
      return;
    }
  }
  IWG_CHECK_MSG(false, "smem_reuse_from: unknown region " + name);
}

void Block::phase(const std::function<void(Thread&)>& fn) {
  const int threads = num_threads();
  Thread t;
  t.block = this;
  for (int flat = 0; flat < threads; ++flat) {
    t.flat = flat;
    t.tx = flat % dim_.x;
    t.ty = flat / dim_.x;
    t.lane = flat % 32;
    t.warp = flat / 32;
    fn(t);
    if (counting_ && (t.lane == 31 || flat == threads - 1)) flush_warp();
  }
  ++stats_.barriers;
}

void Block::record(Kind kind, int site, int lane, std::int64_t byte_addr,
                   int width) const {
  lane_log_[lane].push_back(Access{kind, static_cast<std::int16_t>(site),
                                   static_cast<std::int16_t>(width),
                                   byte_addr});
}

void Block::flush_warp() const {
  // Group each lane's accesses by (kind, site, occurrence index); accesses
  // in the same group form one warp-wide request. Flat slot indexing keeps
  // this analysis cheap — it runs once per warp per phase.
  struct Group {
    std::vector<std::pair<std::int64_t, int>> lanes;  // (addr, width)
  };
  constexpr int kMaxSites = LaunchStats::kMaxSites;
  constexpr int kSlots = 4 * kMaxSites;  // kind × site
  // groups_scratch_[slot] = per-occurrence request list.
  static thread_local std::vector<std::vector<Group>> slots;
  static thread_local std::vector<int> used_slots;
  if (slots.empty()) slots.resize(kSlots);
  int occ[kSlots];
  bool touched[kSlots] = {false};
  for (int lane = 0; lane < 32; ++lane) {
    std::fill(std::begin(occ), std::end(occ), 0);
    for (const Access& a : lane_log_[lane]) {
      const int slot = static_cast<int>(a.kind) * kMaxSites + (a.site % kMaxSites);
      auto& vec = slots[static_cast<std::size_t>(slot)];
      const int k = occ[slot]++;
      if (!touched[slot]) {
        touched[slot] = true;
        used_slots.push_back(slot);
      }
      if (static_cast<int>(vec.size()) <= k) vec.resize(static_cast<std::size_t>(k) + 1);
      vec[static_cast<std::size_t>(k)].lanes.emplace_back(a.addr, a.width);
    }
    lane_log_[lane].clear();
  }

  struct FlatReq {
    Kind kind;
    int site;
    const Group* group;
  };
  std::vector<FlatReq> flat;
  for (int slot : used_slots) {
    auto& vec = slots[static_cast<std::size_t>(slot)];
    for (auto& g : vec) {
      if (!g.lanes.empty())
        flat.push_back(
            FlatReq{static_cast<Kind>(slot / kMaxSites), slot % kMaxSites, &g});
    }
  }

  for (const auto& [kind_v, site, gp] : flat) {
    const Kind kind = kind_v;
    const Group& g = *gp;
    if (kind == Kind::kGld || kind == Kind::kGst) {
      // Coalescing: count distinct 32-byte sectors across the warp.
      std::int64_t sector_buf[96];
      int nsec = 0;
      std::int64_t ideal = 0;
      for (const auto& [addr, width] : g.lanes) {
        ideal += width;
        for (std::int64_t b = addr / 32; b <= (addr + width - 1) / 32; ++b) {
          if (nsec < 96) sector_buf[nsec++] = b;
        }
      }
      std::sort(sector_buf, sector_buf + nsec);
      const std::int64_t nsectors =
          std::unique(sector_buf, sector_buf + nsec) - sector_buf;
      if (kind == Kind::kGld) {
        stats_.gld_requests += 1;
        stats_.gld_sectors += nsectors;
        stats_.gld_ideal_bytes += ideal;
      } else {
        stats_.gst_requests += 1;
        stats_.gst_sectors += nsectors;
        stats_.gst_ideal_bytes += ideal;
      }
    } else {
      // Bank conflicts, priced by the shared measurement rule (the analytic
      // model in core/conflict_model uses the same function on *predicted*
      // access patterns, so measured and analytic factors are comparable by
      // construction).
      const SmemRequestCost cost = smem_request_cost(g.lanes);
      if (kind == Kind::kSld) {
        stats_.smem_ld_requests += 1;
        stats_.smem_ld_passes += cost.passes;
        stats_.smem_ld_ideal += cost.ideal;
        stats_.site_ld_passes[site] += cost.passes;
        stats_.site_ld_ideal[site] += cost.ideal;
      } else {
        stats_.smem_st_requests += 1;
        stats_.smem_st_passes += cost.passes;
        stats_.smem_st_ideal += cost.ideal;
        stats_.site_st_passes[site] += cost.passes;
        stats_.site_st_ideal[site] += cost.ideal;
      }
    }
  }

  for (int slot : used_slots) {
    for (auto& g : slots[static_cast<std::size_t>(slot)]) g.lanes.clear();
  }
  used_slots.clear();
}

// ---------------------------------------------------------------------------
// Launchers.

namespace {

LaunchStats run_blocks(const Kernel& kernel,
                       const std::vector<Dim3>& block_ids, bool counting,
                       std::int64_t smem_limit) {
  LaunchStats total;
  std::mutex mu;
  parallel_for(static_cast<std::int64_t>(block_ids.size()),
               [&](std::int64_t i) {
                 Block blk(block_ids[static_cast<std::size_t>(i)],
                           kernel.block_dim(), smem_limit, counting);
                 kernel.run_block(blk);
                 LaunchStats s = blk.stats();
                 s.blocks = 1;
                 std::lock_guard lock(mu);
                 total.merge(s);
               });
  return total;
}

std::int64_t smem_limit_for(const Kernel& kernel) {
  const std::int64_t declared = kernel.smem_bytes();
  IWG_CHECK_MSG(declared <= 49152,
                "kernel " + kernel.name() + " exceeds the 48 KiB SMEM limit");
  return declared;
}

}  // namespace

LaunchStats launch_all(const Kernel& kernel, Dim3 grid, bool counting) {
  const std::int64_t limit = smem_limit_for(kernel);
  IWG_CHECK(grid.count() > 0);
  IWG_CHECK(kernel.block_dim().count() <= 1024);
  std::vector<Dim3> ids;
  ids.reserve(static_cast<std::size_t>(grid.count()));
  for (int z = 0; z < grid.z; ++z)
    for (int y = 0; y < grid.y; ++y)
      for (int x = 0; x < grid.x; ++x) ids.push_back(Dim3{x, y, z});
  return run_blocks(kernel, ids, counting, limit);
}

LaunchStats launch_sample(const Kernel& kernel, Dim3 grid, int max_samples) {
  const std::int64_t limit = smem_limit_for(kernel);
  const std::int64_t total = grid.count();
  IWG_CHECK(total > 0 && max_samples > 0);
  const std::int64_t samples = std::min<std::int64_t>(max_samples, total);
  std::vector<Dim3> ids;
  ids.reserve(static_cast<std::size_t>(samples));
  for (std::int64_t s = 0; s < samples; ++s) {
    // Evenly spaced flat indices (including first and last blocks so that
    // boundary behaviour is represented in the sample).
    const std::int64_t flat =
        samples == 1 ? 0 : s * (total - 1) / (samples - 1);
    Dim3 id;
    id.x = static_cast<int>(flat % grid.x);
    id.y = static_cast<int>((flat / grid.x) % grid.y);
    id.z = static_cast<int>(flat / (static_cast<std::int64_t>(grid.x) * grid.y));
    ids.push_back(id);
  }
  LaunchStats stats = run_blocks(kernel, ids, /*counting=*/true, limit);
  stats.scale(static_cast<double>(total) / static_cast<double>(samples));
  return stats;
}

}  // namespace iwg::sim
