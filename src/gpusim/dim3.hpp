// CUDA-like launch geometry.
#pragma once

#include <cstdint>

namespace iwg::sim {

struct Dim3 {
  int x = 1;
  int y = 1;
  int z = 1;

  std::int64_t count() const {
    return static_cast<std::int64_t>(x) * y * z;
  }
};

}  // namespace iwg::sim
