// Software SIMT execution model.
//
// Kernels written against this model execute functionally (bit-real FP32
// arithmetic, real shared-memory staging, real barrier phases) on the host,
// while the model measures exactly the quantities GPU performance analysis
// cares about:
//   * FP32 FMA / ALU operation counts,
//   * per-warp global-memory coalescing (32-byte sectors per request),
//   * per-warp shared-memory bank conflicts (passes per request, 32 banks),
//   * barrier counts and static SMEM footprint (occupancy inputs).
//
// Execution semantics: a kernel's run_block() is invoked once per thread
// block and structures its work as a sequence of *phases*; Block::phase(fn)
// runs fn for every thread of the block (warp by warp, lane order) and ends
// with an implicit __syncthreads(). This matches how the paper's Algorithm 1
// and 2 are written: straight-line per-thread code separated by barriers.
// Block-uniform control flow (the fh / ic-chunk loops) lives in run_block
// between phases. Per-thread state that must survive across phases (e.g. the
// 64 accumulators) lives in arrays indexed by Thread::flat.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "gpusim/device.hpp"
#include "gpusim/dim3.hpp"

namespace iwg::sim {

/// A global-memory buffer visible to kernels. `clamp_zero` gives texture-like
/// semantics: out-of-range loads return 0.0f, which is how the paper
/// implements implicit zero padding without warp divergence (§5).
class GmemBuf {
 public:
  GmemBuf() = default;
  GmemBuf(float* data, std::int64_t count, bool clamp_zero = false)
      : data_(data), count_(count), clamp_zero_(clamp_zero) {}
  GmemBuf(const float* data, std::int64_t count, bool clamp_zero = false)
      : data_(const_cast<float*>(data)),
        count_(count),
        clamp_zero_(clamp_zero),
        read_only_(true) {}

  std::int64_t count() const { return count_; }
  bool clamp_zero() const { return clamp_zero_; }

  float load(std::int64_t idx) const {
    if (idx < 0 || idx >= count_) {
      IWG_CHECK_MSG(clamp_zero_, "global load out of range");
      return 0.0f;
    }
    return data_ ? data_[idx] : 0.0f;
  }

  void store(std::int64_t idx, float v) const {
    IWG_CHECK_MSG(!read_only_, "store to read-only buffer");
    IWG_CHECK_MSG(idx >= 0 && idx < count_, "global store out of range");
    if (data_) data_[idx] = v;
  }

 private:
  float* data_ = nullptr;  // may be null: address-only profiling mode
  std::int64_t count_ = 0;
  bool clamp_zero_ = false;
  bool read_only_ = false;
};

/// A named shared-memory array carved out of the block's 48 KiB arena.
/// `base` is the word offset inside the arena — the bank of element i is
/// (base + i) % 32, exactly like consecutive 4-byte words on hardware.
struct Smem {
  float* ptr = nullptr;
  std::int64_t base = 0;  ///< word offset in the arena
  std::int64_t count = 0;

  float& operator[](std::int64_t i) {
    IWG_CHECK_MSG(i >= 0 && i < count, "smem index out of range");
    return ptr[i];
  }
};

/// Aggregated measurements for one launch (or one sampled block set).
struct LaunchStats {
  /// Access-site id space (kernels tag every memory access with a site id;
  /// per-site shared-memory counters are kept for site ids 0..kMaxSites-1).
  static constexpr int kMaxSites = 16;

  std::int64_t fma = 0;  ///< FP32 multiply-add operations
  std::int64_t alu = 0;  ///< other FP32 ops (transform adds, scaling)

  std::int64_t gld_requests = 0;
  std::int64_t gld_sectors = 0;      ///< 32-byte sectors transferred
  std::int64_t gld_ideal_bytes = 0;  ///< bytes actually consumed
  std::int64_t gst_requests = 0;
  std::int64_t gst_sectors = 0;
  std::int64_t gst_ideal_bytes = 0;

  std::int64_t smem_ld_requests = 0;
  std::int64_t smem_ld_passes = 0;  ///< ≥ requests; excess = bank conflicts
  std::int64_t smem_ld_ideal = 0;   ///< conflict-free passes
  std::int64_t smem_st_requests = 0;
  std::int64_t smem_st_passes = 0;
  std::int64_t smem_st_ideal = 0;

  /// Per-access-site breakdown of the smem pass counters above (indexed by
  /// the kernel's site id mod kMaxSites). This is what lets a test — or the
  /// flight recorder — pin the bank-conflict factor on one specific store
  /// (e.g. the Γ kernel's Ds staging store) instead of a whole-kernel
  /// aggregate that averages conflicting and clean sites together.
  std::int64_t site_ld_passes[kMaxSites] = {0};
  std::int64_t site_ld_ideal[kMaxSites] = {0};
  std::int64_t site_st_passes[kMaxSites] = {0};
  std::int64_t site_st_ideal[kMaxSites] = {0};

  std::int64_t barriers = 0;
  std::int64_t blocks = 0;

  void merge(const LaunchStats& o);
  void scale(double factor);

  double gld_bytes() const { return 32.0 * static_cast<double>(gld_sectors); }
  double gst_bytes() const { return 32.0 * static_cast<double>(gst_sectors); }
  /// Fraction of loaded bytes the kernel actually used (1.0 = perfectly
  /// coalesced).
  double gld_efficiency() const {
    return gld_sectors == 0
               ? 1.0
               : static_cast<double>(gld_ideal_bytes) / gld_bytes();
  }
  double smem_ld_conflict_factor() const {
    return smem_ld_ideal == 0 ? 1.0
                              : static_cast<double>(smem_ld_passes) /
                                    static_cast<double>(smem_ld_ideal);
  }
  double smem_st_conflict_factor() const {
    return smem_st_ideal == 0 ? 1.0
                              : static_cast<double>(smem_st_passes) /
                                    static_cast<double>(smem_st_ideal);
  }
  double site_ld_conflict_factor(int site) const {
    const int i = site % kMaxSites;
    return site_ld_ideal[i] == 0 ? 1.0
                                 : static_cast<double>(site_ld_passes[i]) /
                                       static_cast<double>(site_ld_ideal[i]);
  }
  double site_st_conflict_factor(int site) const {
    const int i = site % kMaxSites;
    return site_st_ideal[i] == 0 ? 1.0
                                 : static_cast<double>(site_st_passes[i]) /
                                       static_cast<double>(site_st_ideal[i]);
  }
};

/// Cost of one warp-wide shared-memory request, given each participating
/// lane's (byte address, byte width). This is the simulator's measurement
/// rule — hardware splits wide accesses into sub-warp transactions (64-bit →
/// half warps, 128-bit → quarter warps); within each transaction a pass
/// serves at most one distinct 4-byte word per bank (of 32), broadcast to
/// any number of lanes. Exposed so the analytic performance model can price
/// a *predicted* access pattern with the exact same rule the simulator uses
/// to measure an executed one (single source of truth; see
/// core/conflict_model.hpp).
struct SmemRequestCost {
  std::int64_t passes = 0;  ///< serialized conflict passes
  std::int64_t ideal = 0;   ///< conflict-free passes for the same request
  double conflict_factor() const {
    return ideal == 0 ? 1.0
                      : static_cast<double>(passes) / static_cast<double>(ideal);
  }
};
SmemRequestCost smem_request_cost(
    std::span<const std::pair<std::int64_t, int>> lanes);

class Block;

/// Per-thread handle passed to phase functions.
class Thread {
 public:
  int tx = 0;
  int ty = 0;
  int flat = 0;  ///< ty * blockDim.x + tx (CUDA linearization)
  int lane = 0;  ///< flat % 32
  int warp = 0;  ///< flat / 32

  /// Texture-style global load (counts coalescing when profiling).
  float ldg(const GmemBuf& b, std::int64_t idx, int site) const;
  /// 64-bit load: 2 consecutive floats.
  void ldg64(const GmemBuf& b, std::int64_t idx, float out[2], int site) const;
  /// 128-bit load: 4 consecutive floats.
  void ldg128(const GmemBuf& b, std::int64_t idx, float out[4],
              int site) const;
  void stg(const GmemBuf& b, std::int64_t idx, float v, int site) const;
  void stg128(const GmemBuf& b, std::int64_t idx, const float v[4],
              int site) const;

  float lds(const Smem& s, std::int64_t idx, int site) const;
  void lds128(const Smem& s, std::int64_t idx, float out[4], int site) const;
  void sts(const Smem& s, std::int64_t idx, float v, int site) const;
  void sts128(const Smem& s, std::int64_t idx, const float v[4],
              int site) const;

  void count_fma(std::int64_t n) const;
  void count_alu(std::int64_t n) const;

  Block* block = nullptr;
};

/// One thread block in flight. Created by the launcher.
class Block {
 public:
  Block(Dim3 block_idx, Dim3 block_dim, std::int64_t smem_limit_bytes,
        bool counting);

  const Dim3& block_idx() const { return idx_; }
  const Dim3& block_dim() const { return dim_; }
  int num_threads() const { return static_cast<int>(dim_.count()); }

  /// Allocate (or retrieve, by name) a shared-memory array of `words` floats.
  /// Allocation is linear in the arena, so later arrays sit at higher bank
  /// offsets, as on hardware.
  Smem smem(const std::string& name, std::int64_t words);

  /// Reset the arena allocator so a later region can alias an earlier one
  /// (the paper reuses Gs/Ds as Ys for the output transform).
  void smem_reuse_from(const std::string& name);

  /// Run fn for every thread (warp-major order) and end with a barrier.
  void phase(const std::function<void(Thread&)>& fn);

  std::int64_t smem_bytes_used() const { return high_water_ * 4; }
  const LaunchStats& stats() const { return stats_; }
  bool counting() const { return counting_; }

  // Internal: access recording (called by Thread).
  enum class Kind : std::uint8_t { kGld, kGst, kSld, kSst };
  void record(Kind kind, int site, int lane, std::int64_t byte_addr,
              int width) const;
  void count_fma(std::int64_t n) const { stats_.fma += n; }
  void count_alu(std::int64_t n) const { stats_.alu += n; }

 private:
  void flush_warp() const;

  Dim3 idx_;
  Dim3 dim_;
  std::int64_t smem_limit_words_;
  std::vector<float> arena_;
  struct Region {
    std::string name;
    std::int64_t base;
    std::int64_t count;
  };
  std::vector<Region> regions_;
  std::int64_t arena_top_ = 0;
  std::int64_t high_water_ = 0;
  bool counting_;

  struct Access {
    Kind kind;
    std::int16_t site;
    std::int16_t width;
    std::int64_t addr;
  };
  mutable std::vector<Access> lane_log_[32];
  mutable LaunchStats stats_;
};

/// Base class for kernels.
class Kernel {
 public:
  virtual ~Kernel() = default;
  virtual std::string name() const = 0;
  virtual Dim3 block_dim() const = 0;
  /// Static shared memory the kernel declares (checked against the limit).
  virtual std::int64_t smem_bytes() const = 0;
  /// Estimated register usage per thread (occupancy model input).
  virtual int regs_per_thread() const = 0;
  virtual void run_block(Block& blk) const = 0;
};

/// Functionally execute every block of the grid (parallel across blocks).
/// Counters are optional because logging slows functional runs.
LaunchStats launch_all(const Kernel& kernel, Dim3 grid, bool counting = false);

/// Execute at most `max_samples` evenly spaced blocks with counters on and
/// extrapolate the stats to the full grid. Outputs written by the sampled
/// blocks are real; the rest of the output buffer is untouched. This is what
/// makes paper-scale performance sweeps feasible on a 1-core host.
LaunchStats launch_sample(const Kernel& kernel, Dim3 grid, int max_samples);

}  // namespace iwg::sim
