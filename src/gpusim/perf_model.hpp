// Analytic performance model.
//
// Takes the measured counters of a (sampled) kernel launch and a device
// profile, and produces an estimated execution time via a roofline over four
// resources: FP32 pipes, DRAM bandwidth (behind an L2 reuse model), L2
// bandwidth, and shared-memory bandwidth (bank-conflict passes). A latency-
// hiding factor derived from occupancy penalizes kernels that cannot keep
// enough warps in flight — the α/outer-product-scale tension of §3.
//
// The absolute numbers are estimates; what the model preserves is the paper's
// comparative structure: who wins for which filter size, where the ruse/c64
// variants pay off, and how NHWC coalescing and bank conflicts move the
// needle. EXPERIMENTS.md reports model output against the paper's numbers.
#pragma once

#include "gpusim/device.hpp"
#include "gpusim/sim.hpp"

namespace iwg::sim {

struct PerfInput {
  LaunchStats stats;                ///< full-launch (extrapolated) counters
  std::int64_t grid_blocks = 1;
  int threads_per_block = 256;
  std::int64_t smem_per_block = 0;  ///< bytes
  int regs_per_thread = 64;
  int accumulators_per_thread = 64;  ///< per-thread ILP (latency hiding)
  double conv_flops = 0.0;          ///< algorithmic work for Gflop/s
  double footprint_bytes = 0.0;     ///< unique X + W + Y bytes
  int num_launches = 1;             ///< kernel segments (boundary treatment)
};

struct PerfEstimate {
  double time_s = 0.0;
  double gflops = 0.0;
  double t_compute = 0.0;
  double t_dram = 0.0;
  double t_l2 = 0.0;
  double t_smem = 0.0;
  double t_launch = 0.0;
  double dram_bytes = 0.0;
  Occupancy occ;
  const char* bound = "";
};

PerfEstimate estimate_perf(const DeviceProfile& dev, const PerfInput& in);

}  // namespace iwg::sim
