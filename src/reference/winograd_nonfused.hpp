// Non-fused 1-D Winograd convolution — the workspace-hungry organization
// the paper's fused design eliminates (§2/§4.1: "the Non-Fused uses multiple
// kernels and requires a much larger workspace to store intermediate
// variables"; §6.1.1 excludes cuDNN's non-fused algorithms from the
// benchmark for exactly this reason).
//
// The computation is identical to Im2col-Winograd (1-D Winograd along W,
// accumulation over FH × IC in the state domain) but staged as four separate
// passes over global workspace, like cuDNN's Winograd_NonFused:
//   1. filter transform      ĝ[fh][t][ic][oc]          (α·FH·IC·OC floats)
//   2. input transform       d̂[n][oh][fh][tile][t][ic]  (α·GM·FH·IC floats)
//   3. batched elem-mul GEMM m̂[n][oh][tile][t][oc]      (α·GM·OC floats)
//   4. output transform      Y
// The workspace accounting is what the comparison bench reports.
#pragma once

#include <cstdint>

#include "tensor/conv_shape.hpp"
#include "tensor/tensor.hpp"

namespace iwg::ref {

struct NonFusedResult {
  TensorF y;
  std::int64_t workspace_bytes = 0;  ///< peak intermediate storage
};

/// Non-fused Γα(n,r)-equivalent convolution. Requires OW % n == 0 (no
/// boundary machinery here — this baseline exists for the workspace
/// comparison, not for production use).
NonFusedResult conv2d_winograd_nonfused(const TensorF& x, const TensorF& w,
                                        const ConvShape& s, int n, int r);

/// Workspace the non-fused organization needs for a shape (closed form, no
/// execution) — used by the memory-comparison bench at paper-scale shapes.
std::int64_t winograd_nonfused_workspace_bytes(const ConvShape& s, int n,
                                               int r);

}  // namespace iwg::ref
