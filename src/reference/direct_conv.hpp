// Direct convolution references.
//
// These are the ground truth everything else is validated against. The FP64
// variant (double accumulators over double inputs) is the paper's accuracy
// benchmark: "The CPU convolution uses FP64 accumulators, providing much
// higher accuracy than the GPU convolutions" (§6.2.1).
#pragma once

#include "tensor/conv_shape.hpp"
#include "tensor/tensor.hpp"

namespace iwg::ref {

/// Y[n,oh,ow,oc] = Σ_{fh,fw,ic} W[oc,fh,fw,ic] · Xpad[n,oh+fh,ow+fw,ic].
/// X is NHWC (N,IH,IW,IC); W is OC,FH,FW,IC; result NHWC (N,OH,OW,OC).
TensorF conv2d_direct(const TensorF& x, const TensorF& w, const ConvShape& s);

/// FP64 truth: inputs are converted to double and accumulated in double.
TensorD conv2d_direct_fp64(const TensorF& x, const TensorF& w,
                           const ConvShape& s);

/// Transposed convolution ("backward deconvolution" in the paper): given
/// gradients dY (N,OH,OW,OC) and the forward filter W (OC,FH,FW,IC),
/// produces dX (N,IH,IW,IC). Unit stride throughout.
TensorF deconv2d_direct(const TensorF& dy, const TensorF& w,
                        const ConvShape& s);

/// Filter gradient: dW[oc,fh,fw,ic] = Σ_{n,oh,ow} dY[n,oh,ow,oc] ·
/// Xpad[n,oh+fh,ow+fw,ic].
TensorF conv2d_filter_grad_direct(const TensorF& x, const TensorF& dy,
                                  const ConvShape& s);

}  // namespace iwg::ref
