#include "reference/winograd_nonfused.hpp"

#include <vector>

#include "common/thread_pool.hpp"
#include "winograd/plan.hpp"

namespace iwg::ref {

std::int64_t winograd_nonfused_workspace_bytes(const ConvShape& s, int n,
                                               int r) {
  const std::int64_t alpha = n + r - 1;
  const std::int64_t tiles_w = s.ow() / n;
  const std::int64_t gm = s.n * s.oh() * tiles_w;
  const std::int64_t ghat = alpha * s.fh * s.ic * s.oc;
  const std::int64_t dhat = alpha * gm * s.fh * s.ic;
  const std::int64_t mhat = alpha * gm * s.oc;
  return 4 * (ghat + dhat + mhat);
}

NonFusedResult conv2d_winograd_nonfused(const TensorF& x, const TensorF& w,
                                        const ConvShape& s, int n, int r) {
  s.validate();
  IWG_CHECK(s.fw == r);
  IWG_CHECK_MSG(s.ow() % n == 0, "non-fused baseline needs OW % n == 0");
  const int alpha = n + r - 1;
  const WinogradPlan& plan = get_plan(n, r);
  const TransformEval g_eval(alpha, r, plan.g_f, true);
  const TransformEval d_eval(alpha, alpha, plan.bt_f, true);

  const std::int64_t oh = s.oh();
  const std::int64_t tiles_w = s.ow() / n;
  const std::int64_t gm = s.n * oh * tiles_w;

  NonFusedResult res;
  res.workspace_bytes = winograd_nonfused_workspace_bytes(s, n, r);

  // Pass 1: filter transform ĝ[fh][t][ic][oc].
  std::vector<float> ghat(static_cast<std::size_t>(alpha) * s.fh * s.ic *
                          s.oc);
  parallel_for(s.fh * s.ic, [&](std::int64_t job) {
    const std::int64_t fh = job / s.ic;
    const std::int64_t ic = job % s.ic;
    float taps[16];
    float th[16];
    for (std::int64_t oc = 0; oc < s.oc; ++oc) {
      for (int j = 0; j < r; ++j) taps[j] = w.at(oc, fh, j, ic);
      g_eval.apply(taps, 1, th, 1);
      for (int t = 0; t < alpha; ++t) {
        ghat[((fh * alpha + t) * s.ic + ic) * static_cast<std::size_t>(s.oc) +
             static_cast<std::size_t>(oc)] = th[t];
      }
    }
  });

  // Pass 2: input transform d̂[m][fh][t][ic] for every tile m.
  std::vector<float> dhat(static_cast<std::size_t>(gm) * s.fh * alpha * s.ic);
  parallel_for(gm, [&](std::int64_t m) {
    const std::int64_t ni = m / (oh * tiles_w);
    const std::int64_t hi = (m / tiles_w) % oh;
    const std::int64_t tw = m % tiles_w;
    const std::int64_t iw0 = tw * n - s.pw;
    float taps[16];
    float th[16];
    for (std::int64_t fh = 0; fh < s.fh; ++fh) {
      const std::int64_t ihp = hi + fh - s.ph;
      float* base = &dhat[((m * s.fh + fh) * alpha) * s.ic];
      for (std::int64_t ic = 0; ic < s.ic; ++ic) {
        for (int e = 0; e < alpha; ++e) {
          const std::int64_t iw = iw0 + e;
          const bool ok =
              ihp >= 0 && ihp < s.ih && iw >= 0 && iw < s.iw;
          taps[e] = ok ? x.at(ni, ihp, iw, ic) : 0.0f;
        }
        d_eval.apply(taps, 1, th, 1);
        for (int t = 0; t < alpha; ++t) base[t * s.ic + ic] = th[t];
      }
    }
  });

  // Pass 3: per-state batched GEMMs m̂[m][t][oc] accumulated over (fh, ic).
  std::vector<float> mhat(static_cast<std::size_t>(gm) * alpha * s.oc, 0.0f);
  parallel_for(gm, [&](std::int64_t m) {
    float* mrow_base = &mhat[static_cast<std::size_t>(m) * alpha * s.oc];
    for (std::int64_t fh = 0; fh < s.fh; ++fh) {
      const float* drow_base = &dhat[((m * s.fh + fh) * alpha) * s.ic];
      for (int t = 0; t < alpha; ++t) {
        const float* drow = drow_base + static_cast<std::size_t>(t) * s.ic;
        const float* gbase =
            &ghat[(fh * alpha + t) * s.ic * static_cast<std::size_t>(s.oc)];
        float* mrow = mrow_base + static_cast<std::size_t>(t) * s.oc;
        for (std::int64_t ic = 0; ic < s.ic; ++ic) {
          const float dv = drow[ic];
          if (dv == 0.0f) continue;
          const float* grow = gbase + ic * s.oc;
          for (std::int64_t oc = 0; oc < s.oc; ++oc) mrow[oc] += dv * grow[oc];
        }
      }
    }
  });

  // Pass 4: output transform.
  res.y.reset({s.n, oh, s.ow(), s.oc});
  parallel_for(gm, [&](std::int64_t m) {
    const std::int64_t ni = m / (oh * tiles_w);
    const std::int64_t hi = (m / tiles_w) % oh;
    const std::int64_t tw = m % tiles_w;
    const float* mrow_base = &mhat[static_cast<std::size_t>(m) * alpha * s.oc];
    for (int i = 0; i < n; ++i) {
      float* yrow = &res.y.at(ni, hi, tw * n + i, 0);
      const float* at_row = &plan.at_f[static_cast<std::size_t>(i) * alpha];
      for (std::int64_t oc = 0; oc < s.oc; ++oc) yrow[oc] = 0.0f;
      for (int t = 0; t < alpha; ++t) {
        const float a = at_row[t];
        if (a == 0.0f) continue;
        const float* mrow = mrow_base + static_cast<std::size_t>(t) * s.oc;
        for (std::int64_t oc = 0; oc < s.oc; ++oc) yrow[oc] += a * mrow[oc];
      }
    }
  });
  return res;
}

}  // namespace iwg::ref
