#include "reference/im2col_gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/thread_pool.hpp"
#include "tensor/layout.hpp"

namespace iwg::ref {

TensorF im2col(const TensorF& x, const ConvShape& s) {
  s.validate();
  const std::int64_t oh = s.oh();
  const std::int64_t ow = s.ow();
  const std::int64_t gm = s.n * oh * ow;
  const std::int64_t gk = s.fh * s.fw * s.ic;
  TensorF b({gm, gk});
  parallel_for(s.n * oh, [&](std::int64_t row) {
    const std::int64_t n = row / oh;
    const std::int64_t h = row % oh;
    for (std::int64_t wo = 0; wo < ow; ++wo) {
      float* dst = &b.at((n * oh + h) * ow + wo, 0, 0, 0);
      for (std::int64_t fh = 0; fh < s.fh; ++fh) {
        const std::int64_t ihp = h + fh - s.ph;
        for (std::int64_t fw = 0; fw < s.fw; ++fw) {
          const std::int64_t iwp = wo + fw - s.pw;
          const bool in = ihp >= 0 && ihp < s.ih && iwp >= 0 && iwp < s.iw;
          const float* src = in ? &x.at(n, ihp, iwp, 0) : nullptr;
          for (std::int64_t ic = 0; ic < s.ic; ++ic) {
            *dst++ = in ? src[ic] : 0.0f;
          }
        }
      }
    }
  });
  return b;
}

void sgemm_abt(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
               const float* b, float* c) {
  // Cache-blocked over rows; the k loop stays sequential so the accumulation
  // order matches a straightforward GEMM (relevant for the accuracy study).
  constexpr std::int64_t kRowBlock = 32;
  const std::int64_t row_blocks = (m + kRowBlock - 1) / kRowBlock;
  parallel_for(row_blocks, [&](std::int64_t rb) {
    const std::int64_t r0 = rb * kRowBlock;
    const std::int64_t r1 = std::min(m, r0 + kRowBlock);
    for (std::int64_t i = r0; i < r1; ++i) {
      const float* ai = a + i * k;
      float* ci = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* bj = b + j * k;
        float acc = 0.0f;
        for (std::int64_t kk = 0; kk < k; ++kk) acc += ai[kk] * bj[kk];
        ci[j] = acc;
      }
    }
  });
}

TensorF conv2d_im2col_gemm(const TensorF& x, const TensorF& w,
                           const ConvShape& s) {
  const TensorF b = im2col(x, s);
  const std::int64_t gm = b.dim(0);
  const std::int64_t gk = b.dim(1);
  IWG_CHECK(w.size() == s.oc * gk);
  TensorF y({s.n, s.oh(), s.ow(), s.oc});
  sgemm_abt(gm, s.oc, gk, b.data(), w.data(), y.data());
  return y;
}

float tf32_round(float v) {
  std::uint32_t b;
  std::memcpy(&b, &v, 4);
  // Round-to-nearest-even into a 10-bit mantissa (TF32).
  const std::uint32_t round = ((b >> 13) & 1u) + 0xFFFu;
  b = (b + round) & ~0x1FFFu;
  std::memcpy(&v, &b, 4);
  return v;
}

TensorF conv2d_im2col_gemm_tf32(const TensorF& x, const TensorF& w,
                                const ConvShape& s) {
  const TensorF b = im2col(x, s);
  const std::int64_t gm = b.dim(0);
  const std::int64_t gk = b.dim(1);
  IWG_CHECK(w.size() == s.oc * gk);
  TensorF y({s.n, s.oh(), s.ow(), s.oc});
  parallel_for(gm, [&](std::int64_t i) {
    const float* bi = b.data() + i * gk;
    float* yi = y.data() + i * s.oc;
    for (std::int64_t oc = 0; oc < s.oc; ++oc) {
      const float* wr = w.data() + oc * gk;
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < gk; ++kk) {
        acc += tf32_round(bi[kk]) * tf32_round(wr[kk]);
      }
      yi[oc] = acc;
    }
  });
  return y;
}

TensorF conv2d_implicit_gemm(const TensorF& x, const TensorF& w,
                             const ConvShape& s) {
  return conv2d_implicit_gemm_strided(x, w, s, 1, 1);
}

TensorF conv2d_implicit_gemm_strided(const TensorF& x, const TensorF& w,
                                     const ConvShape& s, std::int64_t sh,
                                     std::int64_t sw) {
  s.validate();
  IWG_CHECK(sh >= 1 && sw >= 1);
  const std::int64_t oh = (s.ih + 2 * s.ph - s.fh) / sh + 1;
  const std::int64_t ow = (s.iw + 2 * s.pw - s.fw) / sw + 1;
  TensorF y({s.n, oh, ow, s.oc});
  // One im2col row is materialized per output pixel on the stack-local
  // buffer; no O(tensor) workspace, matching the "implicit precomp" idea.
  parallel_for(s.n * oh, [&](std::int64_t row) {
    const std::int64_t n = row / oh;
    const std::int64_t h = row % oh;
    std::vector<float> patch(static_cast<std::size_t>(s.fh * s.fw * s.ic));
    for (std::int64_t wo = 0; wo < ow; ++wo) {
      float* dst = patch.data();
      for (std::int64_t fh = 0; fh < s.fh; ++fh) {
        const std::int64_t ihp = h * sh + fh - s.ph;
        for (std::int64_t fw = 0; fw < s.fw; ++fw) {
          const std::int64_t iwp = wo * sw + fw - s.pw;
          const bool in = ihp >= 0 && ihp < s.ih && iwp >= 0 && iwp < s.iw;
          const float* src = in ? &x.at(n, ihp, iwp, 0) : nullptr;
          for (std::int64_t ic = 0; ic < s.ic; ++ic)
            *dst++ = in ? src[ic] : 0.0f;
        }
      }
      const std::int64_t gk = s.fh * s.fw * s.ic;
      for (std::int64_t oc = 0; oc < s.oc; ++oc) {
        const float* wp = w.data() + oc * gk;
        float acc = 0.0f;
        for (std::int64_t kk = 0; kk < gk; ++kk) acc += patch[kk] * wp[kk];
        y.at(n, h, wo, oc) = acc;
      }
    }
  });
  return y;
}

TensorF deconv2d_implicit_gemm(const TensorF& dy, const TensorF& w,
                               const ConvShape& s) {
  // dX = conv(dY, rot180(W) with channels swapped), padding fh−1−ph.
  const TensorF wd = deconv_filter(w);
  ConvShape ds;
  ds.n = s.n;
  ds.ih = s.oh();
  ds.iw = s.ow();
  ds.ic = s.oc;
  ds.oc = s.ic;
  ds.fh = s.fh;
  ds.fw = s.fw;
  ds.ph = s.fh - 1 - s.ph;
  ds.pw = s.fw - 1 - s.pw;
  IWG_CHECK(ds.oh() == s.ih && ds.ow() == s.iw);
  return conv2d_implicit_gemm(dy, wd, ds);
}

TensorF conv2d_filter_grad_gemm(const TensorF& x, const TensorF& dy,
                                const ConvShape& s) {
  // dW (OC × GK) = dY^T (OC × GM) · B (GM × GK); computed as oc-rows against
  // the materialized im2col matrix.
  const TensorF b = im2col(x, s);
  const std::int64_t gm = b.dim(0);
  const std::int64_t gk = b.dim(1);
  TensorF dw({s.oc, s.fh, s.fw, s.ic});
  parallel_for(s.oc, [&](std::int64_t oc) {
    float* out = dw.data() + oc * gk;
    std::fill(out, out + gk, 0.0f);
    for (std::int64_t m = 0; m < gm; ++m) {
      const float g = dy[m * s.oc + oc];
      if (g == 0.0f) continue;
      const float* bm = &b.at(m, 0, 0, 0);
      for (std::int64_t kk = 0; kk < gk; ++kk) out[kk] += g * bm[kk];
    }
  });
  return dw;
}

}  // namespace iwg::ref
