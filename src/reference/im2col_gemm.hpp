// Im2col + GEMM convolution (the cuDNN Implicit_Precomp_GEMM stand-in).
//
// Numerically this matches a GEMM-lowered convolution: FP32 accumulation in
// k-order (fh, fw, ic), which is what gives standard convolution its larger
// rounding error at big GK compared to Winograd (Table 3's CuGEMM columns).
#pragma once

#include "tensor/conv_shape.hpp"
#include "tensor/tensor.hpp"

namespace iwg::ref {

/// Explicit im2col: X (NHWC) → B ∈ R^{GM×GK}, GM = N·OH·OW,
/// GK = FH·FW·IC, column order (fh, fw, ic) to match the filter layout.
TensorF im2col(const TensorF& x, const ConvShape& s);

/// Blocked single-precision GEMM: C (m×n) = A (m×k) · B^T where B is (n×k).
/// Both inputs row-major; this is the "A times transposed B" shape that both
/// convolution lowerings need (filter rows are contiguous in k).
void sgemm_abt(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
               const float* b, float* c);

/// Convolution via explicit im2col + GEMM.
TensorF conv2d_im2col_gemm(const TensorF& x, const TensorF& w,
                           const ConvShape& s);

/// Round a float to TF32 precision (10-bit mantissa, round-to-nearest-even).
float tf32_round(float v);

/// Im2col + GEMM with TF32 operand rounding and FP32 accumulation — the
/// numerics of cuDNN's Ampere/Ada tensor-core Implicit_Precomp_GEMM, which
/// is what the paper's CuGEMM error magnitudes (1e-5–1e-4) correspond to;
/// a strict-FP32 GEMM would sit near 1e-6. Both variants are provided so
/// the accuracy benches can report them side by side.
TensorF conv2d_im2col_gemm_tf32(const TensorF& x, const TensorF& w,
                                const ConvShape& s);

/// Implicit version (no materialized B; the index mapping is applied on the
/// fly) — same numerics, no workspace; used as the boundary-tail GEMM.
TensorF conv2d_implicit_gemm(const TensorF& x, const TensorF& w,
                             const ConvShape& s);

/// Strided convolution via implicit GEMM (the framework's fallback for
/// non-unit-stride layers, which Im2col-Winograd does not target).
TensorF conv2d_implicit_gemm_strided(const TensorF& x, const TensorF& w,
                                     const ConvShape& s, std::int64_t sh,
                                     std::int64_t sw);

/// Transposed convolution via the deconv-filter identity + implicit GEMM.
TensorF deconv2d_implicit_gemm(const TensorF& dy, const TensorF& w,
                               const ConvShape& s);

/// Filter gradient via GEMM lowering (used by the training framework).
TensorF conv2d_filter_grad_gemm(const TensorF& x, const TensorF& dy,
                                const ConvShape& s);

}  // namespace iwg::ref
