#include "reference/fft_conv.hpp"

#include <numbers>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "tensor/layout.hpp"

namespace iwg::ref {

std::int64_t next_pow2(std::int64_t v) {
  IWG_CHECK(v >= 1);
  std::int64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

void fft_inplace(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  IWG_CHECK_MSG(n > 0 && (n & (n - 1)) == 0, "FFT length must be 2^k");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Danielson–Lanczos butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * std::numbers::pi / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& v : data) v *= inv;
  }
}

namespace {

/// 2-D FFT over a ph×pw complex grid (rows then columns).
void fft2_inplace(std::vector<std::complex<double>>& grid, std::int64_t ph,
                  std::int64_t pw, bool inverse) {
  std::vector<std::complex<double>> line;
  line.resize(static_cast<std::size_t>(pw));
  for (std::int64_t r = 0; r < ph; ++r) {
    std::copy(grid.begin() + r * pw, grid.begin() + (r + 1) * pw,
              line.begin());
    fft_inplace(line, inverse);
    std::copy(line.begin(), line.end(), grid.begin() + r * pw);
  }
  line.resize(static_cast<std::size_t>(ph));
  for (std::int64_t c = 0; c < pw; ++c) {
    for (std::int64_t r = 0; r < ph; ++r)
      line[static_cast<std::size_t>(r)] = grid[r * pw + c];
    fft_inplace(line, inverse);
    for (std::int64_t r = 0; r < ph; ++r)
      grid[r * pw + c] = line[static_cast<std::size_t>(r)];
  }
}

}  // namespace

std::int64_t fft_conv_workspace_bytes(const ConvShape& s) {
  const std::int64_t ph = next_pow2(s.ih + s.fh - 1);
  const std::int64_t pw = next_pow2(s.iw + s.fw - 1);
  // Filter spectra (OC·IC grids), one image's channel spectra (IC grids),
  // and an accumulator grid — each complex double.
  return 16 * ph * pw * (s.oc * s.ic + s.ic + 1);
}

FftConvResult conv2d_fft(const TensorF& x, const TensorF& w,
                         const ConvShape& s) {
  s.validate();
  IWG_CHECK(x.rank() == 4 && x.dim(0) == s.n && x.dim(1) == s.ih &&
            x.dim(2) == s.iw && x.dim(3) == s.ic);
  IWG_CHECK(w.rank() == 4 && w.dim(0) == s.oc && w.dim(1) == s.fh &&
            w.dim(2) == s.fw && w.dim(3) == s.ic);
  const std::int64_t ph = next_pow2(s.ih + s.fh - 1);
  const std::int64_t pw = next_pow2(s.iw + s.fw - 1);
  const std::int64_t cells = ph * pw;

  FftConvResult res;
  res.workspace_bytes = fft_conv_workspace_bytes(s);

  // Filter spectra of the 180°-rotated filters (correlation = convolution
  // with the rotated filter).
  std::vector<std::vector<std::complex<double>>> wspec(
      static_cast<std::size_t>(s.oc * s.ic));
  parallel_for(s.oc * s.ic, [&](std::int64_t job) {
    const std::int64_t oc = job / s.ic;
    const std::int64_t ic = job % s.ic;
    auto& grid = wspec[static_cast<std::size_t>(job)];
    grid.assign(static_cast<std::size_t>(cells), {0.0, 0.0});
    for (std::int64_t a = 0; a < s.fh; ++a) {
      for (std::int64_t b = 0; b < s.fw; ++b) {
        grid[static_cast<std::size_t>((s.fh - 1 - a) * pw +
                                      (s.fw - 1 - b))] =
            static_cast<double>(w.at(oc, a, b, ic));
      }
    }
    fft2_inplace(grid, ph, pw, false);
  });

  res.y.reset({s.n, s.oh(), s.ow(), s.oc});
  const std::int64_t off_h = s.fh - 1 - s.ph;
  const std::int64_t off_w = s.fw - 1 - s.pw;
  parallel_for(s.n, [&](std::int64_t ni) {
    // Spectra of this image's channels.
    std::vector<std::vector<std::complex<double>>> xspec(
        static_cast<std::size_t>(s.ic));
    for (std::int64_t ic = 0; ic < s.ic; ++ic) {
      auto& grid = xspec[static_cast<std::size_t>(ic)];
      grid.assign(static_cast<std::size_t>(cells), {0.0, 0.0});
      for (std::int64_t a = 0; a < s.ih; ++a) {
        for (std::int64_t b = 0; b < s.iw; ++b) {
          grid[static_cast<std::size_t>(a * pw + b)] =
              static_cast<double>(x.at(ni, a, b, ic));
        }
      }
      fft2_inplace(grid, ph, pw, false);
    }
    std::vector<std::complex<double>> acc;
    for (std::int64_t oc = 0; oc < s.oc; ++oc) {
      acc.assign(static_cast<std::size_t>(cells), {0.0, 0.0});
      for (std::int64_t ic = 0; ic < s.ic; ++ic) {
        const auto& xs = xspec[static_cast<std::size_t>(ic)];
        const auto& ws = wspec[static_cast<std::size_t>(oc * s.ic + ic)];
        for (std::int64_t i = 0; i < cells; ++i) {
          acc[static_cast<std::size_t>(i)] +=
              xs[static_cast<std::size_t>(i)] *
              ws[static_cast<std::size_t>(i)];
        }
      }
      fft2_inplace(acc, ph, pw, true);
      // Crop the "valid with padding" window out of the linear convolution.
      for (std::int64_t a = 0; a < s.oh(); ++a) {
        const std::int64_t src_a = a + off_h;
        for (std::int64_t b = 0; b < s.ow(); ++b) {
          const std::int64_t src_b = b + off_w;
          double v = 0.0;
          if (src_a >= 0 && src_a < ph && src_b >= 0 && src_b < pw) {
            v = acc[static_cast<std::size_t>(src_a * pw + src_b)].real();
          }
          res.y.at(ni, a, b, oc) = static_cast<float>(v);
        }
      }
    }
  });
  return res;
}

}  // namespace iwg::ref
