#include "reference/direct_conv.hpp"

#include "common/thread_pool.hpp"

namespace iwg::ref {

namespace {

/// Shared loop skeleton: Acc is the accumulator type, In the tensor element.
template <typename Acc, typename In>
void conv_rows(const Tensor<In>& x, const Tensor<In>& w, const ConvShape& s,
               Tensor<Acc>& y) {
  const std::int64_t oh = s.oh();
  const std::int64_t ow = s.ow();
  parallel_for(s.n * oh, [&](std::int64_t row) {
    const std::int64_t n = row / oh;
    const std::int64_t h = row % oh;
    for (std::int64_t wo = 0; wo < ow; ++wo) {
      for (std::int64_t oc = 0; oc < s.oc; ++oc) {
        Acc acc = 0;
        for (std::int64_t fh = 0; fh < s.fh; ++fh) {
          const std::int64_t ihp = h + fh - s.ph;
          if (ihp < 0 || ihp >= s.ih) continue;
          for (std::int64_t fw = 0; fw < s.fw; ++fw) {
            const std::int64_t iwp = wo + fw - s.pw;
            if (iwp < 0 || iwp >= s.iw) continue;
            const In* xp = &x.at(n, ihp, iwp, 0);
            const In* wp = &w.at(oc, fh, fw, 0);
            for (std::int64_t ic = 0; ic < s.ic; ++ic) {
              acc += static_cast<Acc>(xp[ic]) * static_cast<Acc>(wp[ic]);
            }
          }
        }
        y.at(n, h, wo, oc) = acc;
      }
    }
  });
}

void check_inputs(const TensorF& x, const TensorF& w, const ConvShape& s) {
  s.validate();
  IWG_CHECK(x.rank() == 4 && x.dim(0) == s.n && x.dim(1) == s.ih &&
            x.dim(2) == s.iw && x.dim(3) == s.ic);
  IWG_CHECK(w.rank() == 4 && w.dim(0) == s.oc && w.dim(1) == s.fh &&
            w.dim(2) == s.fw && w.dim(3) == s.ic);
}

}  // namespace

TensorF conv2d_direct(const TensorF& x, const TensorF& w, const ConvShape& s) {
  check_inputs(x, w, s);
  TensorF y({s.n, s.oh(), s.ow(), s.oc});
  conv_rows<float>(x, w, s, y);
  return y;
}

TensorD conv2d_direct_fp64(const TensorF& x, const TensorF& w,
                           const ConvShape& s) {
  check_inputs(x, w, s);
  const TensorD xd = x.cast<double>();
  const TensorD wd = w.cast<double>();
  TensorD y({s.n, s.oh(), s.ow(), s.oc});
  conv_rows<double>(xd, wd, s, y);
  return y;
}

TensorF deconv2d_direct(const TensorF& dy, const TensorF& w,
                        const ConvShape& s) {
  s.validate();
  IWG_CHECK(dy.rank() == 4 && dy.dim(0) == s.n && dy.dim(1) == s.oh() &&
            dy.dim(2) == s.ow() && dy.dim(3) == s.oc);
  IWG_CHECK(w.rank() == 4 && w.dim(0) == s.oc && w.dim(1) == s.fh &&
            w.dim(2) == s.fw && w.dim(3) == s.ic);
  // dX[n,ih,iw,ic] = Σ_{fh,fw,oc} W[oc,fh,fw,ic] · dY[n, ih−fh+ph, iw−fw+pw, oc]
  const std::int64_t oh = s.oh();
  const std::int64_t ow = s.ow();
  TensorF dx({s.n, s.ih, s.iw, s.ic});
  parallel_for(s.n * s.ih, [&](std::int64_t row) {
    const std::int64_t n = row / s.ih;
    const std::int64_t hi = row % s.ih;
    for (std::int64_t wi = 0; wi < s.iw; ++wi) {
      for (std::int64_t ic = 0; ic < s.ic; ++ic) {
        float acc = 0.0f;
        for (std::int64_t fh = 0; fh < s.fh; ++fh) {
          const std::int64_t ho = hi - fh + s.ph;
          if (ho < 0 || ho >= oh) continue;
          for (std::int64_t fw = 0; fw < s.fw; ++fw) {
            const std::int64_t wo = wi - fw + s.pw;
            if (wo < 0 || wo >= ow) continue;
            for (std::int64_t oc = 0; oc < s.oc; ++oc) {
              acc += w.at(oc, fh, fw, ic) * dy.at(n, ho, wo, oc);
            }
          }
        }
        dx.at(n, hi, wi, ic) = acc;
      }
    }
  });
  return dx;
}

TensorF conv2d_filter_grad_direct(const TensorF& x, const TensorF& dy,
                                  const ConvShape& s) {
  s.validate();
  IWG_CHECK(x.rank() == 4 && x.dim(0) == s.n && x.dim(1) == s.ih &&
            x.dim(2) == s.iw && x.dim(3) == s.ic);
  IWG_CHECK(dy.rank() == 4 && dy.dim(0) == s.n && dy.dim(1) == s.oh() &&
            dy.dim(2) == s.ow() && dy.dim(3) == s.oc);
  const std::int64_t oh = s.oh();
  const std::int64_t ow = s.ow();
  TensorF dw({s.oc, s.fh, s.fw, s.ic});
  parallel_for(s.oc, [&](std::int64_t oc) {
    for (std::int64_t fh = 0; fh < s.fh; ++fh) {
      for (std::int64_t fw = 0; fw < s.fw; ++fw) {
        for (std::int64_t ic = 0; ic < s.ic; ++ic) {
          float acc = 0.0f;
          for (std::int64_t n = 0; n < s.n; ++n) {
            for (std::int64_t h = 0; h < oh; ++h) {
              const std::int64_t ihp = h + fh - s.ph;
              if (ihp < 0 || ihp >= s.ih) continue;
              for (std::int64_t wo = 0; wo < ow; ++wo) {
                const std::int64_t iwp = wo + fw - s.pw;
                if (iwp < 0 || iwp >= s.iw) continue;
                acc += dy.at(n, h, wo, oc) * x.at(n, ihp, iwp, ic);
              }
            }
          }
          dw.at(oc, fh, fw, ic) = acc;
        }
      }
    }
  });
  return dw;
}

}  // namespace iwg::ref
