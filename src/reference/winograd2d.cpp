#include "reference/winograd2d.hpp"

#include <vector>

#include "common/thread_pool.hpp"
#include "winograd/plan.hpp"

namespace iwg::ref {

namespace {

// 4×4 2-D transforms built by applying the 1-D F(2,3) matrices to rows then
// columns. All loops are over fixed sizes; the compiler unrolls them.

// out(4×4) = D^T · in(4×4) · D, where D^T is the plan's 4×4 input transform.
void input_transform(const float bt[16], const float in[16], float out[16]) {
  float tmp[16];
  for (int i = 0; i < 4; ++i)      // tmp = BT * in
    for (int j = 0; j < 4; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < 4; ++k) acc += bt[i * 4 + k] * in[k * 4 + j];
      tmp[i * 4 + j] = acc;
    }
  for (int i = 0; i < 4; ++i)      // out = tmp * B  (B = BT^T)
    for (int j = 0; j < 4; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < 4; ++k) acc += tmp[i * 4 + k] * bt[j * 4 + k];
      out[i * 4 + j] = acc;
    }
}

// out(4×4) = G(4×3) · w(3×3) · G^T
void filter_transform(const float g[12], const float w[9], float out[16]) {
  float tmp[12];
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 3; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < 3; ++k) acc += g[i * 3 + k] * w[k * 3 + j];
      tmp[i * 3 + j] = acc;
    }
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < 3; ++k) acc += tmp[i * 3 + k] * g[j * 3 + k];
      out[i * 4 + j] = acc;
    }
}

// out(2×2) = A^T(2×4) · m(4×4) · A
void output_transform(const float at[8], const float m[16], float out[4]) {
  float tmp[8];
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 4; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < 4; ++k) acc += at[i * 4 + k] * m[k * 4 + j];
      tmp[i * 4 + j] = acc;
    }
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < 4; ++k) acc += tmp[i * 4 + k] * at[j * 4 + k];
      out[i * 2 + j] = acc;
    }
}

}  // namespace

TensorF conv2d_winograd2d_f2x2_3x3(const TensorF& x, const TensorF& w,
                                   const ConvShape& s) {
  s.validate();
  IWG_CHECK_MSG(s.fh == 3 && s.fw == 3, "fused 2-D Winograd requires 3x3");
  const WinogradPlan& plan = get_plan(2, 3);
  const float* bt = plan.bt_f.data();
  const float* g = plan.g_f.data();
  const float* at = plan.at_f.data();

  const std::int64_t oh = s.oh();
  const std::int64_t ow = s.ow();
  const std::int64_t th = (oh + 1) / 2;  // tile grid
  const std::int64_t tw = (ow + 1) / 2;

  // Pre-transform filters: U[oc][ic][16] = G W G^T.
  std::vector<float> u(static_cast<std::size_t>(s.oc * s.ic * 16));
  parallel_for(s.oc, [&](std::int64_t oc) {
    for (std::int64_t ic = 0; ic < s.ic; ++ic) {
      float wf[9];
      for (int a = 0; a < 3; ++a)
        for (int b = 0; b < 3; ++b) wf[a * 3 + b] = w.at(oc, a, b, ic);
      filter_transform(g, wf, &u[(oc * s.ic + ic) * 16]);
    }
  });

  TensorF y({s.n, oh, ow, s.oc});
  parallel_for(s.n * th, [&](std::int64_t job) {
    const std::int64_t n = job / th;
    const std::int64_t ti = job % th;
    std::vector<float> v(static_cast<std::size_t>(s.ic) * 16);
    std::vector<float> m(static_cast<std::size_t>(s.oc) * 16);
    for (std::int64_t tj = 0; tj < tw; ++tj) {
      // Input transform for every channel of this 4×4 tile.
      for (std::int64_t ic = 0; ic < s.ic; ++ic) {
        float in[16];
        for (int a = 0; a < 4; ++a) {
          const std::int64_t ihp = ti * 2 + a - s.ph;
          for (int b = 0; b < 4; ++b) {
            const std::int64_t iwp = tj * 2 + b - s.pw;
            const bool ok =
                ihp >= 0 && ihp < s.ih && iwp >= 0 && iwp < s.iw;
            in[a * 4 + b] = ok ? x.at(n, ihp, iwp, ic) : 0.0f;
          }
        }
        input_transform(bt, in, &v[static_cast<std::size_t>(ic) * 16]);
      }
      // Elementwise multiply-accumulate over channels.
      std::fill(m.begin(), m.end(), 0.0f);
      for (std::int64_t oc = 0; oc < s.oc; ++oc) {
        float* mo = &m[static_cast<std::size_t>(oc) * 16];
        for (std::int64_t ic = 0; ic < s.ic; ++ic) {
          const float* uf = &u[(oc * s.ic + ic) * 16];
          const float* vf = &v[static_cast<std::size_t>(ic) * 16];
          for (int t = 0; t < 16; ++t) mo[t] += uf[t] * vf[t];
        }
      }
      // Output transform and store (edge tiles clipped).
      for (std::int64_t oc = 0; oc < s.oc; ++oc) {
        float out[4];
        output_transform(at, &m[static_cast<std::size_t>(oc) * 16], out);
        for (int a = 0; a < 2; ++a) {
          const std::int64_t ho = ti * 2 + a;
          if (ho >= oh) continue;
          for (int b = 0; b < 2; ++b) {
            const std::int64_t wo = tj * 2 + b;
            if (wo >= ow) continue;
            y.at(n, ho, wo, oc) = out[a * 2 + b];
          }
        }
      }
    }
  });
  return y;
}

}  // namespace iwg::ref
