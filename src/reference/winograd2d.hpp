// Fused 2-D Winograd F(2×2, 3×3) convolution — the cuDNN Fused_Winograd
// stand-in (restricted to 3×3 filters, like the cuDNN algorithm; §6.1.1).
//
// Y = A^T [ (G W G^T) ⊙ (D^T X D) ] A, nested from the 1-D F(2, 3) plan,
// accumulated over input channels before the output transform.
#pragma once

#include "tensor/conv_shape.hpp"
#include "tensor/tensor.hpp"

namespace iwg::ref {

/// 2-D Winograd convolution. Requires fh == fw == 3; any padding; output
/// dimensions not divisible by 2 are handled with zero-padded edge tiles
/// (the conditional-statement boundary style §5.5 argues against).
TensorF conv2d_winograd2d_f2x2_3x3(const TensorF& x, const TensorF& w,
                                   const ConvShape& s);

}  // namespace iwg::ref
