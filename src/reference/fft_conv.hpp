// FFT convolution — the fourth implementation family in the paper's §2
// taxonomy ("direct, GEMM, FFT, and Winograd… FFT is efficient for large
// filters") and, like non-fused Winograd, excluded from the paper's
// benchmark because of its workspace appetite (§6.1.1).
//
// Self-contained iterative radix-2 complex FFT; 2-D convolution via the
// convolution theorem with per-image-pair frequency products, plus the
// closed-form workspace accounting the memory-comparison bench reports.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "tensor/conv_shape.hpp"
#include "tensor/tensor.hpp"

namespace iwg::ref {

/// In-place iterative radix-2 FFT. data.size() must be a power of two.
/// inverse applies the conjugate transform including the 1/N scale.
void fft_inplace(std::vector<std::complex<double>>& data, bool inverse);

/// Smallest power of two ≥ v (v ≥ 1).
std::int64_t next_pow2(std::int64_t v);

struct FftConvResult {
  TensorF y;
  std::int64_t workspace_bytes = 0;  ///< complex frequency-domain buffers
};

/// 2-D convolution via FFT (any filter size, any padding). Exact up to FP
/// rounding; used as a large-filter reference and for workspace accounting.
FftConvResult conv2d_fft(const TensorF& x, const TensorF& w,
                         const ConvShape& s);

/// Closed-form workspace of the FFT organization for a shape.
std::int64_t fft_conv_workspace_bytes(const ConvShape& s);

}  // namespace iwg::ref
