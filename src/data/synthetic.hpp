// Synthetic image datasets standing in for CIFAR-10 / ILSVRC2012 (§6.3),
// which are not available offline. Convergence equivalence between the two
// convolution engines is a numerics property, so any learnable image
// distribution exercises it; these are class-conditional band-limited
// textures plus noise, linearly scaled to [−1, 1] like the paper's inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace iwg::data {

struct Dataset {
  TensorF images;                    ///< (count, H, W, C) in [−1, 1]
  std::vector<std::int64_t> labels;  ///< class ids
  std::int64_t classes = 0;

  std::int64_t count() const { return images.dim(0); }

  /// Copy batch [first, first+size) into (size, H, W, C) + labels.
  TensorF batch(std::int64_t first, std::int64_t size,
                std::vector<std::int64_t>& batch_labels) const;
};

/// Deterministic class-conditional dataset: each class is a mixture of
/// low-frequency sinusoid textures; samples add Gaussian noise. The class
/// textures are a function of (classes, channels) only, so datasets built
/// with different seeds are train/test splits of the same task. A linear
/// classifier cannot separate the classes well, a small CNN can.
Dataset make_synthetic(std::int64_t classes, std::int64_t count,
                       std::int64_t height, std::int64_t width,
                       std::int64_t channels, unsigned seed,
                       float noise = 0.25f);

/// CIFAR-like: 10 classes of 3-channel square images (default 16×16 —
/// channel-scaled like the models that consume it).
Dataset make_cifar_like(std::int64_t count, unsigned seed,
                        std::int64_t size = 16);

/// ILSVRC-like: more classes (default 20 standing in for 1000).
Dataset make_ilsvrc_like(std::int64_t count, unsigned seed,
                         std::int64_t size = 16, std::int64_t classes = 20);

}  // namespace iwg::data
