#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace iwg::data {

TensorF Dataset::batch(std::int64_t first, std::int64_t size,
                       std::vector<std::int64_t>& batch_labels) const {
  IWG_CHECK(first >= 0 && first + size <= count());
  const std::int64_t h = images.dim(1);
  const std::int64_t w = images.dim(2);
  const std::int64_t c = images.dim(3);
  TensorF out({size, h, w, c});
  const std::int64_t per = h * w * c;
  for (std::int64_t i = 0; i < size * per; ++i) {
    out[i] = images[first * per + i];
  }
  batch_labels.assign(labels.begin() + first, labels.begin() + first + size);
  return out;
}

Dataset make_synthetic(std::int64_t classes, std::int64_t count,
                       std::int64_t height, std::int64_t width,
                       std::int64_t channels, unsigned seed, float noise) {
  IWG_CHECK(classes >= 2 && count >= classes);
  // The class-defining textures depend only on the task geometry, NOT on
  // `seed` — so train and test splits drawn with different seeds sample the
  // *same* classes with independent noise (otherwise the test set would be
  // a different, unlearnable task).
  Rng tex_rng(0xC1A55u ^ (static_cast<unsigned>(classes) * 2654435761u) ^
              static_cast<unsigned>(channels));
  Rng rng(seed);

  // Per-class texture parameters: a few sinusoid components per channel.
  constexpr int kComponents = 3;
  struct Component {
    float fx, fy, phase, amp;
  };
  std::vector<Component> comps(
      static_cast<std::size_t>(classes * channels * kComponents));
  for (auto& c : comps) {
    c.fx = tex_rng.uniform(0.5f, 3.0f);
    c.fy = tex_rng.uniform(0.5f, 3.0f);
    c.phase = tex_rng.uniform(0.0f, 2.0f * std::numbers::pi_v<float>);
    c.amp = tex_rng.uniform(0.3f, 0.8f);
  }

  Dataset ds;
  ds.classes = classes;
  ds.images.reset({count, height, width, channels});
  ds.labels.resize(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t y = i % classes;  // balanced
    ds.labels[static_cast<std::size_t>(i)] = y;
    for (std::int64_t h = 0; h < height; ++h) {
      for (std::int64_t w = 0; w < width; ++w) {
        for (std::int64_t c = 0; c < channels; ++c) {
          float v = 0.0f;
          for (int k = 0; k < kComponents; ++k) {
            const Component& cp =
                comps[static_cast<std::size_t>((y * channels + c) * kComponents + k)];
            v += cp.amp *
                 std::sin(cp.fx * 2.0f * std::numbers::pi_v<float> *
                              static_cast<float>(w) / static_cast<float>(width) +
                          cp.fy * 2.0f * std::numbers::pi_v<float> *
                              static_cast<float>(h) /
                              static_cast<float>(height) +
                          cp.phase);
          }
          v += noise * rng.normal();
          ds.images.at(i, h, w, c) = std::clamp(v, -1.0f, 1.0f);
        }
      }
    }
  }
  return ds;
}

Dataset make_cifar_like(std::int64_t count, unsigned seed, std::int64_t size) {
  return make_synthetic(10, count, size, size, 3, seed);
}

Dataset make_ilsvrc_like(std::int64_t count, unsigned seed, std::int64_t size,
                         std::int64_t classes) {
  return make_synthetic(classes, count, size, size, 3, seed ^ 0xabcdef);
}

}  // namespace iwg::data
