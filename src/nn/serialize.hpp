// Weight-file serialization — the "weight file" column of Tables 4/5.
//
// Format (little-endian): magic "IWGW", u32 version, u64 param count, then
// per parameter: u32 name length, name bytes, u64 element count, f32 data.
#pragma once

#include <string>

#include "nn/model.hpp"

namespace iwg::nn {

/// Write every parameter of the model; returns bytes written.
std::int64_t save_weights(Model& model, const std::string& path);

/// Load weights into an identically-structured model (names and sizes must
/// match, in order). Throws on any mismatch.
void load_weights(Model& model, const std::string& path);

}  // namespace iwg::nn
