#include "nn/layers.hpp"

#include <cmath>

#include "common/thread_pool.hpp"
#include "core/conv_api.hpp"
#include "core/filter_cache.hpp"
#include "core/gamma_host.hpp"
#include "core/indirect.hpp"
#include "core/plan_cache.hpp"
#include "reference/direct_conv.hpp"
#include "reference/im2col_gemm.hpp"

namespace iwg::nn {

void kaiming_uniform(TensorF& w, std::int64_t fan_in, Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  w.fill_uniform(rng, -bound, bound);
}

namespace {

core::ConvOptions options_for(ConvEngine engine) {
  core::ConvOptions opts;
  opts.use_winograd = engine == ConvEngine::kWinograd;
  return opts;
}

/// dX of a stride-s convolution (scatter form; used for s == 2 layers where
/// the paper also falls back to non-Winograd algorithms).
TensorF deconv_strided(const TensorF& dy, const TensorF& w, const ConvShape& s,
                       std::int64_t stride) {
  const std::int64_t oh = dy.dim(1);
  const std::int64_t ow = dy.dim(2);
  TensorF dx({s.n, s.ih, s.iw, s.ic});
  parallel_for(s.n, [&](std::int64_t ni) {
    for (std::int64_t ho = 0; ho < oh; ++ho) {
      for (std::int64_t wo = 0; wo < ow; ++wo) {
        for (std::int64_t fh = 0; fh < s.fh; ++fh) {
          const std::int64_t hi = ho * stride + fh - s.ph;
          if (hi < 0 || hi >= s.ih) continue;
          for (std::int64_t fw = 0; fw < s.fw; ++fw) {
            const std::int64_t wi = wo * stride + fw - s.pw;
            if (wi < 0 || wi >= s.iw) continue;
            for (std::int64_t oc = 0; oc < s.oc; ++oc) {
              const float g = dy.at(ni, ho, wo, oc);
              if (g == 0.0f) continue;
              const float* wp = &w.at(oc, fh, fw, 0);
              float* xp = &dx.at(ni, hi, wi, 0);
              for (std::int64_t ic = 0; ic < s.ic; ++ic) xp[ic] += g * wp[ic];
            }
          }
        }
      }
    }
  });
  return dx;
}

/// dW of a stride-s convolution.
TensorF filter_grad_strided(const TensorF& x, const TensorF& dy,
                            const ConvShape& s, std::int64_t stride) {
  const std::int64_t oh = dy.dim(1);
  const std::int64_t ow = dy.dim(2);
  TensorF dw({s.oc, s.fh, s.fw, s.ic});
  parallel_for(s.oc, [&](std::int64_t oc) {
    for (std::int64_t ni = 0; ni < s.n; ++ni) {
      for (std::int64_t ho = 0; ho < oh; ++ho) {
        for (std::int64_t wo = 0; wo < ow; ++wo) {
          const float g = dy.at(ni, ho, wo, oc);
          if (g == 0.0f) continue;
          for (std::int64_t fh = 0; fh < s.fh; ++fh) {
            const std::int64_t hi = ho * stride + fh - s.ph;
            if (hi < 0 || hi >= s.ih) continue;
            for (std::int64_t fw = 0; fw < s.fw; ++fw) {
              const std::int64_t wi = wo * stride + fw - s.pw;
              if (wi < 0 || wi >= s.iw) continue;
              const float* xp = &x.at(ni, hi, wi, 0);
              float* wp = &dw.at(oc, fh, fw, 0);
              for (std::int64_t ic = 0; ic < s.ic; ++ic) wp[ic] += g * xp[ic];
            }
          }
        }
      }
    }
  });
  return dw;
}

}  // namespace

// ---------------------------------------------------------------------------
// Conv2D

Conv2D::Conv2D(std::int64_t in_ch, std::int64_t out_ch, std::int64_t fsize,
               std::int64_t stride, std::int64_t pad, ConvEngine engine,
               Rng& rng, std::string label)
    : label_(std::move(label)),
      fsize_(fsize),
      stride_(stride),
      pad_(pad),
      engine_(engine) {
  IWG_CHECK(stride == 1 || stride == 2);
  w_.name = label_ + ".w";
  w_.value.reset({out_ch, fsize, fsize, in_ch});
  w_.grad.reset({out_ch, fsize, fsize, in_ch});
  kaiming_uniform(w_.value, in_ch * fsize * fsize, rng);
  b_.name = label_ + ".b";
  b_.value.reset({out_ch});
  b_.grad.reset({out_ch});
}

Conv2D::~Conv2D() {
  core::FilterTransformCache::global().invalidate(w_.value.data());
}

ConvShape Conv2D::shape_for(const TensorF& x) const {
  IWG_CHECK(x.rank() == 4);
  return ConvShape{.n = x.dim(0), .ih = x.dim(1), .iw = x.dim(2),
                   .ic = x.dim(3), .oc = w_.value.dim(0), .fh = fsize_,
                   .fw = fsize_, .ph = pad_, .pw = pad_};
}

TensorF Conv2D::apply(const TensorF& x, const ConvShape& s) const {
  TensorF y;
  if (stride_ == 1) {
    // Param storage is stable and `version` is bumped on every update, so
    // the forward, the backward, and every later call until the next
    // optimizer step share one filter transform per Γ geometry.
    core::ConvOptions opts = options_for(engine_);
    opts.filter_cache = &core::FilterTransformCache::global();
    opts.weights_version = w_.version;
    if (tuned_ && s == tuned_shape_) {
      y = core::conv2d(x, w_.value, s, tuned_->executable_plan(s), opts);
    } else {
      y = core::conv2d(x, w_.value, s, opts);
    }
  } else {
    y = ref::conv2d_implicit_gemm_strided(x, w_.value, s, stride_, stride_);
  }
  // Bias.
  const std::int64_t oc = y.dim(3);
  const std::int64_t pixels = y.size() / oc;
  for (std::int64_t m = 0; m < pixels; ++m) {
    float* row = y.data() + m * oc;
    for (std::int64_t c = 0; c < oc; ++c) row[c] += b_.value[c];
  }
  return y;
}

TensorF Conv2D::forward(const TensorF& x, bool train) {
  shape_ = shape_for(x);
  TensorF y = apply(x, shape_);
  if (train) {
    x_cache_ = x;
  } else {
    x_cache_ = TensorF();
  }
  return y;
}

TensorF Conv2D::infer(const TensorF& x) const { return apply(x, shape_for(x)); }

std::vector<TensorF> Conv2D::infer_ragged(
    const std::vector<TensorF>& xs) const {
  // Strided layers have no indirect path — keep the per-image baseline.
  if (stride_ != 1 || xs.empty()) return Layer::infer_ragged(xs);
  const std::int64_t oc = w_.value.dim(0);
  // Dispatch-wide geometry (channels/filter/padding); spatial extents are
  // per image. plan_for never sees N, and the indirect entry reuses the
  // dense task bodies, so each image's output matches batch-1 infer() bit
  // for bit.
  const ConvShape geom = shape_for(xs.front());
  std::vector<TensorF> ys(xs.size());
  std::vector<core::ImageView> views(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const ConvShape si = shape_for(xs[i]);
    IWG_CHECK_MSG(si.n == 1, "infer_ragged expects one image per tensor");
    ys[i].reset({1, si.oh(), si.ow(), oc});
    views[i] = core::ImageView{xs[i].data(), ys[i].data(), si.ih, si.iw};
  }
  core::IndirectOptions opts;
  opts.use_winograd = engine_ == ConvEngine::kWinograd;
  opts.fc.cache = &core::FilterTransformCache::global();
  opts.fc.version = w_.version;
  core::conv2d_gamma_host_indirect(views, w_.value, geom, opts);
  for (TensorF& y : ys) {
    const std::int64_t pixels = y.size() / oc;
    for (std::int64_t m = 0; m < pixels; ++m) {
      float* row = y.data() + m * oc;
      for (std::int64_t c = 0; c < oc; ++c) row[c] += b_.value[c];
    }
  }
  return ys;
}

Dims4 Conv2D::pretune(const Dims4& in, AutotuneContext& ctx) {
  ConvShape s;
  s.n = in.n;
  s.ih = in.h;
  s.iw = in.w;
  s.ic = in.c;
  s.oc = w_.value.dim(0);
  s.fh = fsize_;
  s.fw = fsize_;
  s.ph = pad_;
  s.pw = pad_;
  Dims4 out;
  out.n = in.n;
  out.h = (in.h + 2 * pad_ - fsize_) / stride_ + 1;
  out.w = (in.w + 2 * pad_ - fsize_) / stride_ + 1;
  out.c = s.oc;
  // Only unit-stride Winograd layers go through the tuned path; strided
  // layers always run the GEMM fallback, and the kGemm engine is the
  // baseline configuration the training experiments compare against.
  if (stride_ == 1 && engine_ == ConvEngine::kWinograd && ctx.dev != nullptr) {
    core::PlanCache& cache =
        ctx.cache != nullptr ? *ctx.cache : core::PlanCache::global();
    tuned_ = cache.get_or_tune(s, *ctx.dev, ctx.samples,
                               core::TuningBudget{ctx.max_candidates});
    tuned_shape_ = s;
    ++ctx.resolved;
  }
  return out;
}

TensorF Conv2D::backward(const TensorF& dy) {
  IWG_CHECK(!x_cache_.empty());
  // db
  const std::int64_t oc = dy.dim(3);
  const std::int64_t pixels = dy.size() / oc;
  for (std::int64_t m = 0; m < pixels; ++m) {
    const float* row = dy.data() + m * oc;
    for (std::int64_t c = 0; c < oc; ++c) b_.grad[c] += row[c];
  }
  // dw and dx
  if (stride_ == 1) {
    // The Winograd engine also accelerates the weight-gradient correlation
    // (library extension — see conv2d_filter_grad_winograd).
    const bool wino_dw =
        engine_ == ConvEngine::kWinograd && fsize_ >= 2 && fsize_ <= 9;
    const TensorF dw =
        wino_dw ? core::conv2d_filter_grad_winograd(x_cache_, dy, shape_)
                : ref::conv2d_filter_grad_gemm(x_cache_, dy, shape_);
    for (std::int64_t i = 0; i < dw.size(); ++i) w_.grad[i] += dw[i];
    if (engine_ == ConvEngine::kWinograd) {
      core::ConvOptions opts = options_for(engine_);
      opts.filter_cache = &core::FilterTransformCache::global();
      opts.weights_version = w_.version;
      return core::deconv2d(dy, w_.value, shape_, opts);
    }
    return ref::deconv2d_implicit_gemm(dy, w_.value, shape_);
  }
  const TensorF dw = filter_grad_strided(x_cache_, dy, shape_, stride_);
  for (std::int64_t i = 0; i < dw.size(); ++i) w_.grad[i] += dw[i];
  return deconv_strided(dy, w_.value, shape_, stride_);
}

// ---------------------------------------------------------------------------
// BatchNorm2D

BatchNorm2D::BatchNorm2D(std::int64_t channels, float momentum, float eps)
    : channels_(channels), momentum_(momentum), eps_(eps) {
  gamma_.name = "bn.gamma";
  gamma_.value.reset({channels});
  gamma_.value.fill(1.0f);
  gamma_.grad.reset({channels});
  beta_.name = "bn.beta";
  beta_.value.reset({channels});
  beta_.grad.reset({channels});
  running_mean_.reset({channels});
  running_var_.reset({channels});
  running_var_.fill(1.0f);
  inv_std_.resize(static_cast<std::size_t>(channels));
}

TensorF BatchNorm2D::forward(const TensorF& x, bool train) {
  IWG_CHECK(x.rank() == 4 && x.dim(3) == channels_);
  const std::int64_t m = x.size() / channels_;
  TensorF y(std::vector<std::int64_t>{x.dim(0), x.dim(1), x.dim(2), x.dim(3)});
  if (train) {
    xhat_.reset({x.dim(0), x.dim(1), x.dim(2), x.dim(3)});
    count_ = m;
    for (std::int64_t c = 0; c < channels_; ++c) {
      double mean = 0.0;
      for (std::int64_t i = 0; i < m; ++i) mean += x[i * channels_ + c];
      mean /= static_cast<double>(m);
      double var = 0.0;
      for (std::int64_t i = 0; i < m; ++i) {
        const double d = x[i * channels_ + c] - mean;
        var += d * d;
      }
      var /= static_cast<double>(m);
      const float inv = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      inv_std_[static_cast<std::size_t>(c)] = inv;
      running_mean_[c] = momentum_ * running_mean_[c] +
                         (1.0f - momentum_) * static_cast<float>(mean);
      running_var_[c] = momentum_ * running_var_[c] +
                        (1.0f - momentum_) * static_cast<float>(var);
      for (std::int64_t i = 0; i < m; ++i) {
        const float xh =
            (x[i * channels_ + c] - static_cast<float>(mean)) * inv;
        xhat_[i * channels_ + c] = xh;
        y[i * channels_ + c] = gamma_.value[c] * xh + beta_.value[c];
      }
    }
  } else {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float inv = 1.0f / std::sqrt(running_var_[c] + eps_);
      for (std::int64_t i = 0; i < m; ++i) {
        y[i * channels_ + c] =
            gamma_.value[c] * (x[i * channels_ + c] - running_mean_[c]) * inv +
            beta_.value[c];
      }
    }
  }
  return y;
}

TensorF BatchNorm2D::infer(const TensorF& x) const {
  IWG_CHECK(x.rank() == 4 && x.dim(3) == channels_);
  const std::int64_t m = x.size() / channels_;
  TensorF y(std::vector<std::int64_t>{x.dim(0), x.dim(1), x.dim(2), x.dim(3)});
  for (std::int64_t c = 0; c < channels_; ++c) {
    const float inv = 1.0f / std::sqrt(running_var_[c] + eps_);
    for (std::int64_t i = 0; i < m; ++i) {
      y[i * channels_ + c] =
          gamma_.value[c] * (x[i * channels_ + c] - running_mean_[c]) * inv +
          beta_.value[c];
    }
  }
  return y;
}

TensorF BatchNorm2D::backward(const TensorF& dy) {
  IWG_CHECK(!xhat_.empty());
  const std::int64_t m = count_;
  TensorF dx(std::vector<std::int64_t>{dy.dim(0), dy.dim(1), dy.dim(2),
                                       dy.dim(3)});
  for (std::int64_t c = 0; c < channels_; ++c) {
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (std::int64_t i = 0; i < m; ++i) {
      const float g = dy[i * channels_ + c];
      sum_dy += g;
      sum_dy_xhat += g * xhat_[i * channels_ + c];
    }
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);
    const float inv = inv_std_[static_cast<std::size_t>(c)];
    const float k1 = static_cast<float>(sum_dy / static_cast<double>(m));
    const float k2 = static_cast<float>(sum_dy_xhat / static_cast<double>(m));
    for (std::int64_t i = 0; i < m; ++i) {
      const float g = dy[i * channels_ + c];
      dx[i * channels_ + c] = gamma_.value[c] * inv *
                              (g - k1 - xhat_[i * channels_ + c] * k2);
    }
  }
  return dx;
}

// ---------------------------------------------------------------------------
// LeakyReLU

TensorF LeakyReLU::forward(const TensorF& x, bool train) {
  TensorF y = x;
  if (train) mask_.assign(static_cast<std::size_t>(x.size()), 0);
  for (std::int64_t i = 0; i < y.size(); ++i) {
    if (y[i] < 0.0f) {
      y[i] *= slope_;
    } else if (train) {
      mask_[static_cast<std::size_t>(i)] = 1;
    }
  }
  return y;
}

TensorF LeakyReLU::infer(const TensorF& x) const {
  TensorF y = x;
  for (std::int64_t i = 0; i < y.size(); ++i) {
    if (y[i] < 0.0f) y[i] *= slope_;
  }
  return y;
}

TensorF LeakyReLU::backward(const TensorF& dy) {
  IWG_CHECK(static_cast<std::int64_t>(mask_.size()) == dy.size());
  TensorF dx = dy;
  for (std::int64_t i = 0; i < dx.size(); ++i) {
    if (!mask_[static_cast<std::size_t>(i)]) dx[i] *= slope_;
  }
  return dx;
}

// ---------------------------------------------------------------------------
// MaxPool2x2

TensorF MaxPool2x2::forward(const TensorF& x, bool train) {
  IWG_CHECK(x.rank() == 4 && x.dim(1) % 2 == 0 && x.dim(2) % 2 == 0);
  n_ = x.dim(0);
  ih_ = x.dim(1);
  iw_ = x.dim(2);
  c_ = x.dim(3);
  const std::int64_t oh = ih_ / 2;
  const std::int64_t ow = iw_ / 2;
  TensorF y({n_, oh, ow, c_});
  if (train) argmax_.assign(static_cast<std::size_t>(y.size()), 0);
  for (std::int64_t ni = 0; ni < n_; ++ni) {
    for (std::int64_t h = 0; h < oh; ++h) {
      for (std::int64_t w = 0; w < ow; ++w) {
        for (std::int64_t c = 0; c < c_; ++c) {
          float best = x.at(ni, 2 * h, 2 * w, c);
          std::uint8_t idx = 0;
          const float cands[3] = {x.at(ni, 2 * h, 2 * w + 1, c),
                                  x.at(ni, 2 * h + 1, 2 * w, c),
                                  x.at(ni, 2 * h + 1, 2 * w + 1, c)};
          for (int k = 0; k < 3; ++k) {
            if (cands[k] > best) {
              best = cands[k];
              idx = static_cast<std::uint8_t>(k + 1);
            }
          }
          y.at(ni, h, w, c) = best;
          if (train)
            argmax_[static_cast<std::size_t>(y.offset(ni, h, w, c))] = idx;
        }
      }
    }
  }
  return y;
}

TensorF MaxPool2x2::infer(const TensorF& x) const {
  IWG_CHECK(x.rank() == 4 && x.dim(1) % 2 == 0 && x.dim(2) % 2 == 0);
  const std::int64_t n = x.dim(0);
  const std::int64_t oh = x.dim(1) / 2;
  const std::int64_t ow = x.dim(2) / 2;
  const std::int64_t c = x.dim(3);
  TensorF y({n, oh, ow, c});
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t h = 0; h < oh; ++h) {
      for (std::int64_t w = 0; w < ow; ++w) {
        for (std::int64_t ch = 0; ch < c; ++ch) {
          float best = x.at(ni, 2 * h, 2 * w, ch);
          best = std::max(best, x.at(ni, 2 * h, 2 * w + 1, ch));
          best = std::max(best, x.at(ni, 2 * h + 1, 2 * w, ch));
          best = std::max(best, x.at(ni, 2 * h + 1, 2 * w + 1, ch));
          y.at(ni, h, w, ch) = best;
        }
      }
    }
  }
  return y;
}

TensorF MaxPool2x2::backward(const TensorF& dy) {
  TensorF dx({n_, ih_, iw_, c_});
  const std::int64_t oh = ih_ / 2;
  const std::int64_t ow = iw_ / 2;
  for (std::int64_t ni = 0; ni < n_; ++ni) {
    for (std::int64_t h = 0; h < oh; ++h) {
      for (std::int64_t w = 0; w < ow; ++w) {
        for (std::int64_t c = 0; c < c_; ++c) {
          const std::uint8_t idx =
              argmax_[static_cast<std::size_t>(dy.offset(ni, h, w, c))];
          const std::int64_t hh = 2 * h + (idx >= 2 ? 1 : 0);
          const std::int64_t ww = 2 * w + (idx % 2);
          dx.at(ni, hh, ww, c) += dy.at(ni, h, w, c);
        }
      }
    }
  }
  return dx;
}

// ---------------------------------------------------------------------------
// GlobalAvgPool

TensorF GlobalAvgPool::forward(const TensorF& x, bool /*train*/) {
  IWG_CHECK(x.rank() == 4);
  n_ = x.dim(0);
  h_ = x.dim(1);
  w_ = x.dim(2);
  c_ = x.dim(3);
  TensorF y({n_, c_});
  const float inv = 1.0f / static_cast<float>(h_ * w_);
  for (std::int64_t ni = 0; ni < n_; ++ni) {
    for (std::int64_t hh = 0; hh < h_; ++hh) {
      for (std::int64_t ww = 0; ww < w_; ++ww) {
        for (std::int64_t c = 0; c < c_; ++c) {
          y.at(ni, c, 0, 0) += x.at(ni, hh, ww, c) * inv;
        }
      }
    }
  }
  return y;
}

TensorF GlobalAvgPool::infer(const TensorF& x) const {
  IWG_CHECK(x.rank() == 4);
  const std::int64_t n = x.dim(0);
  const std::int64_t h = x.dim(1);
  const std::int64_t w = x.dim(2);
  const std::int64_t c = x.dim(3);
  TensorF y({n, c});
  const float inv = 1.0f / static_cast<float>(h * w);
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t hh = 0; hh < h; ++hh) {
      for (std::int64_t ww = 0; ww < w; ++ww) {
        for (std::int64_t ch = 0; ch < c; ++ch) {
          y.at(ni, ch, 0, 0) += x.at(ni, hh, ww, ch) * inv;
        }
      }
    }
  }
  return y;
}

TensorF GlobalAvgPool::backward(const TensorF& dy) {
  TensorF dx({n_, h_, w_, c_});
  const float inv = 1.0f / static_cast<float>(h_ * w_);
  for (std::int64_t ni = 0; ni < n_; ++ni) {
    for (std::int64_t hh = 0; hh < h_; ++hh) {
      for (std::int64_t ww = 0; ww < w_; ++ww) {
        for (std::int64_t c = 0; c < c_; ++c) {
          dx.at(ni, hh, ww, c) = dy.at(ni, c, 0, 0) * inv;
        }
      }
    }
  }
  return dx;
}

// ---------------------------------------------------------------------------
// Flatten

TensorF Flatten::forward(const TensorF& x, bool /*train*/) {
  IWG_CHECK(x.rank() == 4);
  n_ = x.dim(0);
  h_ = x.dim(1);
  w_ = x.dim(2);
  c_ = x.dim(3);
  TensorF y({n_, h_ * w_ * c_});
  for (std::int64_t i = 0; i < x.size(); ++i) y[i] = x[i];
  return y;
}

TensorF Flatten::infer(const TensorF& x) const {
  IWG_CHECK(x.rank() == 4);
  TensorF y({x.dim(0), x.dim(1) * x.dim(2) * x.dim(3)});
  for (std::int64_t i = 0; i < x.size(); ++i) y[i] = x[i];
  return y;
}

TensorF Flatten::backward(const TensorF& dy) {
  TensorF dx({n_, h_, w_, c_});
  for (std::int64_t i = 0; i < dy.size(); ++i) dx[i] = dy[i];
  return dx;
}

// ---------------------------------------------------------------------------
// Linear

Linear::Linear(std::int64_t in_dim, std::int64_t out_dim, Rng& rng,
               std::string label)
    : label_(std::move(label)) {
  w_.name = label_ + ".w";
  w_.value.reset({in_dim, out_dim});
  w_.grad.reset({in_dim, out_dim});
  kaiming_uniform(w_.value, in_dim, rng);
  b_.name = label_ + ".b";
  b_.value.reset({out_dim});
  b_.grad.reset({out_dim});
}

TensorF Linear::forward(const TensorF& x, bool train) {
  IWG_CHECK(x.rank() == 2 && x.dim(1) == w_.value.dim(0));
  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  const std::int64_t m = w_.value.dim(1);
  TensorF y({n, m});
  parallel_for(n, [&](std::int64_t i) {
    float* yr = y.data() + i * m;
    for (std::int64_t j = 0; j < m; ++j) yr[j] = b_.value[j];
    const float* xr = x.data() + i * d;
    for (std::int64_t k = 0; k < d; ++k) {
      const float xv = xr[k];
      if (xv == 0.0f) continue;
      const float* wr = w_.value.data() + k * m;
      for (std::int64_t j = 0; j < m; ++j) yr[j] += xv * wr[j];
    }
  });
  if (train) {
    x_cache_ = x;
  } else {
    x_cache_ = TensorF();
  }
  return y;
}

TensorF Linear::infer(const TensorF& x) const {
  IWG_CHECK(x.rank() == 2 && x.dim(1) == w_.value.dim(0));
  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  const std::int64_t m = w_.value.dim(1);
  TensorF y({n, m});
  parallel_for(n, [&](std::int64_t i) {
    float* yr = y.data() + i * m;
    for (std::int64_t j = 0; j < m; ++j) yr[j] = b_.value[j];
    const float* xr = x.data() + i * d;
    for (std::int64_t k = 0; k < d; ++k) {
      const float xv = xr[k];
      if (xv == 0.0f) continue;
      const float* wr = w_.value.data() + k * m;
      for (std::int64_t j = 0; j < m; ++j) yr[j] += xv * wr[j];
    }
  });
  return y;
}

TensorF Linear::backward(const TensorF& dy) {
  IWG_CHECK(!x_cache_.empty());
  const std::int64_t n = dy.dim(0);
  const std::int64_t d = w_.value.dim(0);
  const std::int64_t m = w_.value.dim(1);
  // db, dw
  for (std::int64_t i = 0; i < n; ++i) {
    const float* gr = dy.data() + i * m;
    for (std::int64_t j = 0; j < m; ++j) b_.grad[j] += gr[j];
    const float* xr = x_cache_.data() + i * d;
    for (std::int64_t k = 0; k < d; ++k) {
      const float xv = xr[k];
      if (xv == 0.0f) continue;
      float* wg = w_.grad.data() + k * m;
      for (std::int64_t j = 0; j < m; ++j) wg[j] += xv * gr[j];
    }
  }
  // dx = dy · W^T
  TensorF dx({n, d});
  parallel_for(n, [&](std::int64_t i) {
    const float* gr = dy.data() + i * m;
    float* xr = dx.data() + i * d;
    for (std::int64_t k = 0; k < d; ++k) {
      const float* wr = w_.value.data() + k * m;
      float acc = 0.0f;
      for (std::int64_t j = 0; j < m; ++j) acc += gr[j] * wr[j];
      xr[k] = acc;
    }
  });
  return dx;
}

}  // namespace iwg::nn
