// Model container, residual blocks, and the Experiment-3 model zoo
// (VGG16/19, VGG16x5, VGG16x7, ResNet18/34 — §6.3.1), channel-scaled so the
// convergence experiments run on a CPU-hour budget while keeping the
// architectures' structure (conv stacks, down-sampling style, heads).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace iwg::nn {

/// A plain layer stack with parameter and memory accounting.
class Model {
 public:
  void add(LayerPtr layer) { layers_.push_back(std::move(layer)); }

  TensorF forward(const TensorF& x, bool train);
  /// Inference-only forward: const and safe to run concurrently from many
  /// threads on one Model instance (see Layer::infer). Numerically identical
  /// to `forward(x, false)`.
  TensorF infer(const TensorF& x) const;
  /// Mixed-shape inference: one rank-4 N = 1 tensor per image (spatial
  /// extents may differ). Each layer processes the whole set at once —
  /// Conv2D via one indirect Γ dispatch, everything else per image — and
  /// every output is bitwise identical to infer() on that image alone.
  /// Const and concurrency-safe like infer().
  std::vector<TensorF> infer_ragged(const std::vector<TensorF>& xs) const;
  /// Returns dL/dinput (rarely needed; gradients accumulate in params).
  TensorF backward(const TensorF& dloss);

  /// Graph-build plan pre-resolution (§5.7): propagate the batch geometry
  /// through every layer and resolve each unit-stride Winograd conv's plan
  /// via ctx's PlanCache (load a plan DB into the cache first for a "find
  /// once, deploy many" flow). Returns the number of conv layers resolved.
  int pretune(std::int64_t batch, std::int64_t image_size,
              std::int64_t channels, AutotuneContext& ctx);

  std::vector<Param*> params();
  std::int64_t param_count();
  std::int64_t param_bytes() { return param_count() * 4; }
  /// Cached-activation bytes after the last training forward — the analogue
  /// of the "GPU memory" column in Tables 4/5.
  std::int64_t activation_bytes() const;

  std::size_t layer_count() const { return layers_.size(); }
  std::string summary();

 private:
  std::vector<LayerPtr> layers_;
};

/// ResNet basic block: conv-bn-relu-conv-bn (+ projection shortcut when the
/// shape changes) followed by relu. Down-sampling uses stride-2 convolution,
/// which is why ResNet gains less from Im2col-Winograd than VGG (§6.3.2).
class ResidualBlock final : public Layer {
 public:
  ResidualBlock(std::int64_t in_ch, std::int64_t out_ch, std::int64_t stride,
                ConvEngine engine, Rng& rng);

  std::string name() const override { return "residual"; }
  TensorF forward(const TensorF& x, bool train) override;
  TensorF infer(const TensorF& x) const override;
  TensorF backward(const TensorF& dy) override;
  std::vector<Param*> params() override;
  std::int64_t activation_bytes() const override;
  Dims4 pretune(const Dims4& in, AutotuneContext& ctx) override;

 private:
  std::vector<LayerPtr> main_;  // conv bn relu conv bn
  std::vector<LayerPtr> proj_;  // empty or [conv, bn]
  LayerPtr relu_out_;
  TensorF skip_cache_;
};

struct ModelConfig {
  ConvEngine engine = ConvEngine::kWinograd;
  std::int64_t num_classes = 10;
  std::int64_t image_size = 16;   ///< square inputs, 3 channels
  std::int64_t base_channels = 8; ///< stage-1 width (paper nets use 64)
  unsigned seed = 1234;
};

/// VGG-style network. depth ∈ {16, 19}; filter_size applies to every conv
/// (VGG16x5 ⇒ 5); first4_filter overrides the first 4 convs (VGG16x7 ⇒ 7).
Model make_vgg(int depth, const ModelConfig& cfg, int filter_size = 3,
               int first4_filter = 0);

/// ResNet-style network. depth ∈ {18, 34}.
Model make_resnet(int depth, const ModelConfig& cfg);

}  // namespace iwg::nn
