// Softmax cross-entropy with one-hot labels (§6.3.1).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace iwg::nn {

struct LossResult {
  float loss = 0.0f;      ///< mean cross-entropy over the batch
  TensorF dlogits;        ///< gradient w.r.t. the logits
  std::int64_t correct = 0;  ///< argmax hits (for accuracy accounting)
};

/// logits: (N, K); labels: class indices (one-hot encoded internally).
LossResult softmax_cross_entropy(const TensorF& logits,
                                 const std::vector<std::int64_t>& labels);

}  // namespace iwg::nn
