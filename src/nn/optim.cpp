#include "nn/optim.hpp"

#include <cmath>

namespace iwg::nn {

void Sgdm::step(const std::vector<Param*>& params) {
  for (Param* p : params) {
    TensorF& vel = velocity_[p];
    if (vel.empty()) {
      vel.reset(std::vector<std::int64_t>(
          {p->value.size()}));
    }
    for (std::int64_t i = 0; i < p->value.size(); ++i) {
      vel[i] = momentum_ * vel[i] + p->grad[i];
      p->value[i] -= lr_ * vel[i];
    }
    ++p->version;
  }
}

void Adam::step(const std::vector<Param*>& params) {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (Param* p : params) {
    TensorF& m = m_[p];
    TensorF& v = v_[p];
    if (m.empty()) {
      m.reset(std::vector<std::int64_t>({p->value.size()}));
      v.reset(std::vector<std::int64_t>({p->value.size()}));
    }
    for (std::int64_t i = 0; i < p->value.size(); ++i) {
      const float g = p->grad[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      const float mh = m[i] / bc1;
      const float vh = v[i] / bc2;
      p->value[i] -= lr_ * mh / (std::sqrt(vh) + eps_);
    }
    ++p->version;
  }
}

}  // namespace iwg::nn
