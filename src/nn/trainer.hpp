// Training loop with the accounting Experiment 3 reports: per-epoch wall
// time, loss curve (recorded every `record_every` steps, as in the paper),
// train/test accuracy, and memory estimates.
#pragma once

#include <vector>

#include "data/synthetic.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/optim.hpp"

namespace iwg::nn {

struct TrainConfig {
  int epochs = 3;
  std::int64_t batch = 16;
  int record_every = 10;  ///< steps between loss-curve samples (§6.3.1)
  bool verbose = false;
  bool trace = true;  ///< false: suppress training spans even when tracing on
  /// When set, every conv layer's plan is pre-resolved through the context's
  /// PlanCache before the first batch (graph-build autotuning, §5.7).
  AutotuneContext* autotune = nullptr;
};

struct TrainStats {
  std::vector<float> loss_curve;   ///< sampled every record_every steps
  std::vector<double> epoch_seconds;
  double seconds_per_epoch = 0.0;  ///< mean
  double train_accuracy = 0.0;     ///< final-epoch running accuracy
  double test_accuracy = 0.0;      ///< 0 when no test set given
  std::int64_t param_bytes = 0;    ///< the "weight file" column
  std::int64_t memory_bytes = 0;   ///< params + grads + activations
};

/// Train `model` on `train_set` (optionally evaluating on `test_set`).
TrainStats train_model(Model& model, Optimizer& opt,
                       const data::Dataset& train_set,
                       const data::Dataset* test_set, const TrainConfig& cfg);

/// Classification accuracy of the model on a dataset (eval mode).
double evaluate(Model& model, const data::Dataset& ds, std::int64_t batch);

}  // namespace iwg::nn
