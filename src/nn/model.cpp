#include "nn/model.hpp"

#include "common/trace.hpp"
#include "nn/layers.hpp"

namespace iwg::nn {

TensorF Model::forward(const TensorF& x, bool train) {
  TensorF h = x;
  for (auto& l : layers_) {
    IWG_TRACE_SPAN(span, l->name(), "nn.fwd");
    h = l->forward(h, train);
  }
  return h;
}

TensorF Model::infer(const TensorF& x) const {
  TensorF h = x;
  for (const auto& l : layers_) {
    IWG_TRACE_SPAN(span, l->name(), "nn.infer");
    h = l->infer(h);
  }
  return h;
}

std::vector<TensorF> Model::infer_ragged(
    const std::vector<TensorF>& xs) const {
  std::vector<TensorF> hs = xs;
  for (const auto& l : layers_) {
    IWG_TRACE_SPAN(span, l->name(), "nn.infer");
    hs = l->infer_ragged(hs);
  }
  return hs;
}

TensorF Model::backward(const TensorF& dloss) {
  TensorF g = dloss;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    IWG_TRACE_SPAN(span, (*it)->name(), "nn.bwd");
    g = (*it)->backward(g);
  }
  return g;
}

int Model::pretune(std::int64_t batch, std::int64_t image_size,
                   std::int64_t channels, AutotuneContext& ctx) {
  IWG_CHECK_MSG(ctx.dev != nullptr, "pretune needs a device profile");
  Dims4 d{batch, image_size, image_size, channels};
  for (auto& l : layers_) d = l->pretune(d, ctx);
  return ctx.resolved;
}

std::vector<Param*> Model::params() {
  std::vector<Param*> out;
  for (auto& l : layers_) {
    for (Param* p : l->params()) out.push_back(p);
  }
  return out;
}

std::int64_t Model::param_count() {
  std::int64_t total = 0;
  for (Param* p : params()) total += p->value.size();
  return total;
}

std::int64_t Model::activation_bytes() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l->activation_bytes();
  return total;
}

std::string Model::summary() {
  std::string s;
  for (auto& l : layers_) {
    s += l->name();
    s += "\n";
  }
  s += "params: " + std::to_string(param_count()) + "\n";
  return s;
}

// ---------------------------------------------------------------------------
// ResidualBlock

ResidualBlock::ResidualBlock(std::int64_t in_ch, std::int64_t out_ch,
                             std::int64_t stride, ConvEngine engine,
                             Rng& rng) {
  main_.push_back(std::make_unique<Conv2D>(in_ch, out_ch, 3, stride, 1, engine,
                                           rng, "res.conv1"));
  main_.push_back(std::make_unique<BatchNorm2D>(out_ch));
  main_.push_back(std::make_unique<LeakyReLU>());
  main_.push_back(std::make_unique<Conv2D>(out_ch, out_ch, 3, 1, 1, engine,
                                           rng, "res.conv2"));
  main_.push_back(std::make_unique<BatchNorm2D>(out_ch));
  if (stride != 1 || in_ch != out_ch) {
    proj_.push_back(std::make_unique<Conv2D>(in_ch, out_ch, 1, stride, 0,
                                             engine, rng, "res.proj"));
    proj_.push_back(std::make_unique<BatchNorm2D>(out_ch));
  }
  relu_out_ = std::make_unique<LeakyReLU>();
}

TensorF ResidualBlock::forward(const TensorF& x, bool train) {
  TensorF h = x;
  for (auto& l : main_) h = l->forward(h, train);
  TensorF skip = x;
  for (auto& l : proj_) skip = l->forward(skip, train);
  IWG_CHECK(h.same_shape(skip));
  for (std::int64_t i = 0; i < h.size(); ++i) h[i] += skip[i];
  if (train) skip_cache_ = skip;  // only shape matters for backward
  return relu_out_->forward(h, train);
}

TensorF ResidualBlock::infer(const TensorF& x) const {
  TensorF h = x;
  for (const auto& l : main_) h = l->infer(h);
  TensorF skip = x;
  for (const auto& l : proj_) skip = l->infer(skip);
  IWG_CHECK(h.same_shape(skip));
  for (std::int64_t i = 0; i < h.size(); ++i) h[i] += skip[i];
  return relu_out_->infer(h);
}

TensorF ResidualBlock::backward(const TensorF& dy) {
  TensorF g = relu_out_->backward(dy);
  // The addition forks the gradient into both branches.
  TensorF gmain = g;
  for (auto it = main_.rbegin(); it != main_.rend(); ++it) {
    gmain = (*it)->backward(gmain);
  }
  TensorF gskip = g;
  for (auto it = proj_.rbegin(); it != proj_.rend(); ++it) {
    gskip = (*it)->backward(gskip);
  }
  IWG_CHECK(gmain.same_shape(gskip));
  for (std::int64_t i = 0; i < gmain.size(); ++i) gmain[i] += gskip[i];
  return gmain;
}

std::vector<Param*> ResidualBlock::params() {
  std::vector<Param*> out;
  for (auto& l : main_) {
    for (Param* p : l->params()) out.push_back(p);
  }
  for (auto& l : proj_) {
    for (Param* p : l->params()) out.push_back(p);
  }
  return out;
}

Dims4 ResidualBlock::pretune(const Dims4& in, AutotuneContext& ctx) {
  Dims4 d = in;
  for (auto& l : main_) d = l->pretune(d, ctx);
  Dims4 p = in;
  for (auto& l : proj_) p = l->pretune(p, ctx);
  return d;
}

std::int64_t ResidualBlock::activation_bytes() const {
  std::int64_t total = relu_out_->activation_bytes() + skip_cache_.size() * 4;
  for (const auto& l : main_) total += l->activation_bytes();
  for (const auto& l : proj_) total += l->activation_bytes();
  return total;
}

// ---------------------------------------------------------------------------
// Model zoo

Model make_vgg(int depth, const ModelConfig& cfg, int filter_size,
               int first4_filter) {
  IWG_CHECK(depth == 16 || depth == 19);
  Rng rng(cfg.seed);
  Model m;
  // Convs per stage; stage widths are base·{1,2,4,8,8} like VGG's
  // 64·{1,2,4,8,8}. VGG19 deepens the last three stages.
  const std::vector<int> convs = depth == 16 ? std::vector<int>{2, 2, 3, 3, 3}
                                             : std::vector<int>{2, 2, 4, 4, 4};
  std::int64_t ch = 3;
  std::int64_t spatial = cfg.image_size;
  int conv_index = 0;
  for (std::size_t stage = 0; stage < convs.size(); ++stage) {
    const std::int64_t width =
        cfg.base_channels << std::min<std::size_t>(stage, 3);
    for (int i = 0; i < convs[stage]; ++i) {
      int f = filter_size;
      if (first4_filter > 0 && conv_index < 4) f = first4_filter;
      m.add(std::make_unique<Conv2D>(ch, width, f, 1, f / 2, cfg.engine, rng,
                                     "conv" + std::to_string(conv_index)));
      // §6.3.1: BatchNorm layers were added into VGG to expedite convergence.
      if (i == 0) m.add(std::make_unique<BatchNorm2D>(width));
      m.add(std::make_unique<LeakyReLU>());
      ch = width;
      ++conv_index;
    }
    if (spatial >= 8) {  // keep at least a 4×4 map so the heavy deep
      m.add(std::make_unique<MaxPool2x2>());  // layers stay Winograd-covered
      spatial /= 2;
    }
  }
  m.add(std::make_unique<Flatten>());
  const std::int64_t feat = spatial * spatial * ch;
  m.add(std::make_unique<Linear>(feat, 4 * cfg.base_channels, rng, "fc1"));
  m.add(std::make_unique<LeakyReLU>());
  m.add(std::make_unique<Linear>(4 * cfg.base_channels, cfg.num_classes, rng,
                                 "fc2"));
  return m;
}

Model make_resnet(int depth, const ModelConfig& cfg) {
  IWG_CHECK(depth == 18 || depth == 34);
  Rng rng(cfg.seed);
  Model m;
  const std::vector<int> blocks = depth == 18 ? std::vector<int>{2, 2, 2, 2}
                                              : std::vector<int>{3, 4, 6, 3};
  const std::int64_t c0 = cfg.base_channels;
  m.add(std::make_unique<Conv2D>(3, c0, 3, 1, 1, cfg.engine, rng, "stem"));
  m.add(std::make_unique<BatchNorm2D>(c0));
  m.add(std::make_unique<LeakyReLU>());
  std::int64_t ch = c0;
  std::int64_t spatial = cfg.image_size;
  for (std::size_t stage = 0; stage < blocks.size(); ++stage) {
    const std::int64_t width = c0 << stage;
    for (int b = 0; b < blocks[stage]; ++b) {
      // Non-unit-stride down-sampling at stage entry (§6.3.2), kept only
      // while the map stays at least 4×4.
      const std::int64_t stride =
          (b == 0 && stage > 0 && spatial >= 8) ? 2 : 1;
      m.add(std::make_unique<ResidualBlock>(ch, width, stride, cfg.engine,
                                            rng));
      if (stride == 2) spatial /= 2;
      ch = width;
    }
  }
  m.add(std::make_unique<GlobalAvgPool>());
  m.add(std::make_unique<Linear>(ch, cfg.num_classes, rng, "fc"));
  return m;
}

}  // namespace iwg::nn
