#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace iwg::nn {

LossResult softmax_cross_entropy(const TensorF& logits,
                                 const std::vector<std::int64_t>& labels) {
  IWG_CHECK(logits.rank() == 2);
  const std::int64_t n = logits.dim(0);
  const std::int64_t k = logits.dim(1);
  IWG_CHECK(static_cast<std::int64_t>(labels.size()) == n);

  LossResult res;
  res.dlogits.reset({n, k});
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    float* grow = res.dlogits.data() + i * k;
    const float mx = *std::max_element(row, row + k);
    double denom = 0.0;
    for (std::int64_t j = 0; j < k; ++j) denom += std::exp(row[j] - mx);
    const std::int64_t y = labels[static_cast<std::size_t>(i)];
    IWG_CHECK(y >= 0 && y < k);
    std::int64_t arg = 0;
    for (std::int64_t j = 0; j < k; ++j) {
      const double p = std::exp(row[j] - mx) / denom;
      grow[j] = static_cast<float>((p - (j == y ? 1.0 : 0.0)) /
                                   static_cast<double>(n));
      if (row[j] > row[arg]) arg = j;
    }
    loss -= std::log(std::exp(row[y] - mx) / denom);
    if (arg == y) ++res.correct;
  }
  res.loss = static_cast<float>(loss / static_cast<double>(n));
  return res;
}

}  // namespace iwg::nn
