#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/check.hpp"

namespace iwg::nn {

namespace {
constexpr char kMagic[4] = {'I', 'W', 'G', 'W'};
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void write_bytes(std::FILE* f, const void* p, std::size_t n) {
  IWG_CHECK_MSG(std::fwrite(p, 1, n, f) == n, "weight file write failed");
}

void read_bytes(std::FILE* f, void* p, std::size_t n) {
  IWG_CHECK_MSG(std::fread(p, 1, n, f) == n, "weight file truncated");
}

}  // namespace

std::int64_t save_weights(Model& model, const std::string& path) {
  File f(std::fopen(path.c_str(), "wb"));
  IWG_CHECK_MSG(f != nullptr, "cannot open weight file for writing: " + path);
  write_bytes(f.get(), kMagic, 4);
  write_bytes(f.get(), &kVersion, sizeof(kVersion));
  const auto params = model.params();
  const std::uint64_t count = params.size();
  write_bytes(f.get(), &count, sizeof(count));
  std::int64_t total = 4 + 4 + 8;
  for (Param* p : params) {
    const std::uint32_t name_len = static_cast<std::uint32_t>(p->name.size());
    write_bytes(f.get(), &name_len, sizeof(name_len));
    write_bytes(f.get(), p->name.data(), name_len);
    const std::uint64_t elems = static_cast<std::uint64_t>(p->value.size());
    write_bytes(f.get(), &elems, sizeof(elems));
    write_bytes(f.get(), p->value.data(), elems * sizeof(float));
    total += 4 + name_len + 8 + static_cast<std::int64_t>(elems) * 4;
  }
  return total;
}

void load_weights(Model& model, const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  IWG_CHECK_MSG(f != nullptr, "cannot open weight file: " + path);
  char magic[4];
  read_bytes(f.get(), magic, 4);
  IWG_CHECK_MSG(std::memcmp(magic, kMagic, 4) == 0, "bad weight-file magic");
  std::uint32_t version = 0;
  read_bytes(f.get(), &version, sizeof(version));
  IWG_CHECK_MSG(version == kVersion, "unsupported weight-file version");
  std::uint64_t count = 0;
  read_bytes(f.get(), &count, sizeof(count));
  const auto params = model.params();
  IWG_CHECK_MSG(count == params.size(), "weight file parameter count differs");
  for (Param* p : params) {
    std::uint32_t name_len = 0;
    read_bytes(f.get(), &name_len, sizeof(name_len));
    std::string name(name_len, '\0');
    read_bytes(f.get(), name.data(), name_len);
    IWG_CHECK_MSG(name == p->name, "weight file parameter order differs: " +
                                       name + " vs " + p->name);
    std::uint64_t elems = 0;
    read_bytes(f.get(), &elems, sizeof(elems));
    IWG_CHECK_MSG(elems == static_cast<std::uint64_t>(p->value.size()),
                  "weight file shape differs for " + name);
    read_bytes(f.get(), p->value.data(), elems * sizeof(float));
    ++p->version;  // loading mutates the weights in place
  }
}

}  // namespace iwg::nn
