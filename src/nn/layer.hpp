// Minimal FP32 training framework (the Dragon-Alpha / PyTorch stand-in for
// Experiment 3).
//
// Layers own their parameters and cached activations; backward returns the
// input gradient and accumulates parameter gradients. Convolutions run on a
// selectable engine — Im2col-Winograd ("Alpha") or implicit GEMM (the
// baseline) — which is the only difference between the two training
// configurations the experiment compares.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace iwg::nn {

/// A trainable parameter with its gradient accumulator.
struct Param {
  std::string name;
  TensorF value;
  TensorF grad;

  void zero_grad() { grad.fill(0.0f); }
};

/// Which convolution algorithm the framework uses (§6.3: Alpha integrates
/// Im2col-Winograd for unit-stride convolution and deconvolution; other
/// algorithms handle the non-unit-stride cases).
enum class ConvEngine { kWinograd, kGemm };

class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string name() const = 0;
  /// Forward pass; `train` enables caching for backward and batch-norm
  /// statistics updates.
  virtual TensorF forward(const TensorF& x, bool train) = 0;
  /// Backward pass: consumes dL/dy, returns dL/dx, accumulates param grads.
  virtual TensorF backward(const TensorF& dy) = 0;

  virtual std::vector<Param*> params() { return {}; }

  /// Bytes of cached activations after the last training forward (for the
  /// Table 4/5 memory accounting).
  virtual std::int64_t activation_bytes() const { return 0; }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace iwg::nn
