// Minimal FP32 training framework (the Dragon-Alpha / PyTorch stand-in for
// Experiment 3).
//
// Layers own their parameters and cached activations; backward returns the
// input gradient and accumulates parameter gradients. Convolutions run on a
// selectable engine — Im2col-Winograd ("Alpha") or implicit GEMM (the
// baseline) — which is the only difference between the two training
// configurations the experiment compares.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace iwg::sim {
struct DeviceProfile;
}
namespace iwg::core {
class PlanCache;
}

namespace iwg::nn {

/// A trainable parameter with its gradient accumulator.
///
/// `version` must be bumped by anything that mutates `value` after
/// construction (the optimizers, weight loading): it keys the host engine's
/// FilterTransformCache, so a stale transform can never be served after an
/// update.
struct Param {
  std::string name;
  TensorF value;
  TensorF grad;
  std::uint64_t version = 0;

  void zero_grad() { grad.fill(0.0f); }
};

/// Which convolution algorithm the framework uses (§6.3: Alpha integrates
/// Im2col-Winograd for unit-stride convolution and deconvolution; other
/// algorithms handle the non-unit-stride cases).
enum class ConvEngine { kWinograd, kGemm };

/// NHWC activation dims used for graph-build shape propagation. Layers that
/// flatten to 2-D keep n and fold everything into c (h = w = 1).
struct Dims4 {
  std::int64_t n = 1;
  std::int64_t h = 1;
  std::int64_t w = 1;
  std::int64_t c = 1;
};

/// Graph-build plan pre-resolution (§5.7 "find once" at build time): walks
/// the model with symbolic shapes so every unit-stride Winograd convolution
/// can tune — or load — its plan from a PlanCache before the first batch.
struct AutotuneContext {
  const sim::DeviceProfile* dev = nullptr;  ///< required
  core::PlanCache* cache = nullptr;         ///< nullptr → PlanCache::global()
  int samples = 2;                          ///< profiling fidelity
  int max_candidates = 32;                  ///< TuningBudget per layer
  int resolved = 0;                         ///< conv layers resolved (output)
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string name() const = 0;
  /// Forward pass; `train` enables caching for backward and batch-norm
  /// statistics updates.
  virtual TensorF forward(const TensorF& x, bool train) = 0;
  /// Inference-only forward: semantically identical to
  /// `forward(x, /*train=*/false)` but `const` and free of hidden mutable
  /// state (no activation caches, no running-statistics updates, no
  /// remembered geometry), so one layer instance may serve many threads
  /// concurrently — the contract the serving subsystem's worker pool
  /// relies on.
  virtual TensorF infer(const TensorF& x) const = 0;
  /// Ragged inference: one independent rank-4 N = 1 tensor per image, whose
  /// spatial extents may differ between entries. The default runs infer()
  /// per image — the batch-1 baseline — so every layer supports mixed-shape
  /// batches; layers with a fused mixed-shape path (Conv2D's indirect Γ
  /// dispatch) override it. Outputs must be bitwise identical per image to
  /// infer() on that image alone. Same const/concurrency contract as
  /// infer().
  virtual std::vector<TensorF> infer_ragged(
      const std::vector<TensorF>& xs) const {
    std::vector<TensorF> ys;
    ys.reserve(xs.size());
    for (const TensorF& x : xs) ys.push_back(infer(x));
    return ys;
  }
  /// Backward pass: consumes dL/dy, returns dL/dx, accumulates param grads.
  virtual TensorF backward(const TensorF& dy) = 0;

  virtual std::vector<Param*> params() { return {}; }

  /// Shape propagation for graph-build pre-resolution: given input NHWC
  /// dims, return output dims. Convolution layers additionally resolve
  /// their execution plan through `ctx` (tuning on miss, hitting the cache
  /// — possibly loaded from a plan DB — otherwise).
  virtual Dims4 pretune(const Dims4& in, AutotuneContext& ctx) {
    (void)ctx;
    return in;
  }

  /// Bytes of cached activations after the last training forward (for the
  /// Table 4/5 memory accounting).
  virtual std::int64_t activation_bytes() const { return 0; }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace iwg::nn
