// Optimizers used in Experiment 3: SGD with momentum and Adam (§6.3.1,
// learning rate 0.001 in the paper's runs).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace iwg::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void step(const std::vector<Param*>& params) = 0;
  virtual std::string name() const = 0;

  void zero_grad(const std::vector<Param*>& params) {
    for (Param* p : params) p->zero_grad();
  }
};

class Sgdm final : public Optimizer {
 public:
  explicit Sgdm(float lr = 1e-3f, float momentum = 0.9f)
      : lr_(lr), momentum_(momentum) {}
  std::string name() const override { return "SGDM"; }
  void step(const std::vector<Param*>& params) override;

 private:
  float lr_, momentum_;
  std::map<Param*, TensorF> velocity_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(float lr = 1e-3f, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  std::string name() const override { return "Adam"; }
  void step(const std::vector<Param*>& params) override;

 private:
  float lr_, beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
  std::map<Param*, TensorF> m_, v_;
};

}  // namespace iwg::nn
