#include "nn/trainer.hpp"

#include <cstdio>
#include <optional>

#include "common/timer.hpp"
#include "common/trace.hpp"

namespace iwg::nn {

TrainStats train_model(Model& model, Optimizer& opt,
                       const data::Dataset& train_set,
                       const data::Dataset* test_set, const TrainConfig& cfg) {
  std::optional<trace::Suppress> mute;
  if (!cfg.trace) mute.emplace();
  trace::Distribution& epoch_dist =
      trace::MetricsRegistry::global().distribution("nn.epoch_s");
  TrainStats stats;
  const std::vector<Param*> params = model.params();
  stats.param_bytes = model.param_bytes();

  const std::int64_t steps_per_epoch = train_set.count() / cfg.batch;
  IWG_CHECK_MSG(steps_per_epoch > 0, "dataset smaller than one batch");

  if (cfg.autotune != nullptr) {
    // Pre-resolve every conv plan before the first batch so no training step
    // pays selector time (the plans may already sit in a loaded plan DB).
    model.pretune(cfg.batch, train_set.images.dim(1), train_set.images.dim(3),
                  *cfg.autotune);
  }

  std::int64_t step = 0;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    IWG_TRACE_SPAN(epoch_span, "train.epoch", "nn");
    epoch_span.arg("epoch", epoch);
    Timer epoch_timer;
    std::int64_t correct = 0;
    std::int64_t seen = 0;
    for (std::int64_t s = 0; s < steps_per_epoch; ++s, ++step) {
      IWG_TRACE_SPAN(step_span, "train.step", "nn");
      step_span.arg("step", step);
      std::vector<std::int64_t> labels;
      const TensorF x = train_set.batch(s * cfg.batch, cfg.batch, labels);
      opt.zero_grad(params);
      const TensorF logits = model.forward(x, /*train=*/true);
      const LossResult res = softmax_cross_entropy(logits, labels);
      model.backward(res.dlogits);
      opt.step(params);
      step_span.arg("loss", static_cast<double>(res.loss));
      correct += res.correct;
      seen += cfg.batch;
      if (step % cfg.record_every == 0) stats.loss_curve.push_back(res.loss);
      if (cfg.verbose && s % 20 == 0) {
        std::printf("epoch %d step %lld loss %.4f\n", epoch,
                    static_cast<long long>(s), static_cast<double>(res.loss));
      }
    }
    const double epoch_s = epoch_timer.seconds();
    stats.epoch_seconds.push_back(epoch_s);
    epoch_dist.record(epoch_s);
    trace::MetricsRegistry::global().counter("nn.epochs").add();
    stats.train_accuracy =
        static_cast<double>(correct) / static_cast<double>(seen);
  }
  double total = 0.0;
  for (double t : stats.epoch_seconds) total += t;
  stats.seconds_per_epoch = total / static_cast<double>(cfg.epochs);

  // Memory accounting: weights + gradients + optimizer-agnostic activation
  // caches from the last training step.
  stats.memory_bytes = 2 * stats.param_bytes + model.activation_bytes();

  if (test_set != nullptr) {
    stats.test_accuracy = evaluate(model, *test_set, cfg.batch);
  }
  return stats;
}

double evaluate(Model& model, const data::Dataset& ds, std::int64_t batch) {
  IWG_TRACE_SCOPE("evaluate", "nn");
  std::int64_t correct = 0;
  std::int64_t seen = 0;
  const std::int64_t batches = ds.count() / batch;
  for (std::int64_t b = 0; b < batches; ++b) {
    std::vector<std::int64_t> labels;
    const TensorF x = ds.batch(b * batch, batch, labels);
    const TensorF logits = model.forward(x, /*train=*/false);
    const LossResult res = softmax_cross_entropy(logits, labels);
    correct += res.correct;
    seen += batch;
  }
  return seen == 0 ? 0.0
                   : static_cast<double>(correct) / static_cast<double>(seen);
}

}  // namespace iwg::nn
