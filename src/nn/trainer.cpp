#include "nn/trainer.hpp"

#include <cstdio>

#include "common/timer.hpp"

namespace iwg::nn {

TrainStats train_model(Model& model, Optimizer& opt,
                       const data::Dataset& train_set,
                       const data::Dataset* test_set, const TrainConfig& cfg) {
  TrainStats stats;
  const std::vector<Param*> params = model.params();
  stats.param_bytes = model.param_bytes();

  const std::int64_t steps_per_epoch = train_set.count() / cfg.batch;
  IWG_CHECK_MSG(steps_per_epoch > 0, "dataset smaller than one batch");

  if (cfg.autotune != nullptr) {
    // Pre-resolve every conv plan before the first batch so no training step
    // pays selector time (the plans may already sit in a loaded plan DB).
    model.pretune(cfg.batch, train_set.images.dim(1), train_set.images.dim(3),
                  *cfg.autotune);
  }

  std::int64_t step = 0;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    Timer epoch_timer;
    std::int64_t correct = 0;
    std::int64_t seen = 0;
    for (std::int64_t s = 0; s < steps_per_epoch; ++s, ++step) {
      std::vector<std::int64_t> labels;
      const TensorF x = train_set.batch(s * cfg.batch, cfg.batch, labels);
      opt.zero_grad(params);
      const TensorF logits = model.forward(x, /*train=*/true);
      const LossResult res = softmax_cross_entropy(logits, labels);
      model.backward(res.dlogits);
      opt.step(params);
      correct += res.correct;
      seen += cfg.batch;
      if (step % cfg.record_every == 0) stats.loss_curve.push_back(res.loss);
      if (cfg.verbose && s % 20 == 0) {
        std::printf("epoch %d step %lld loss %.4f\n", epoch,
                    static_cast<long long>(s), static_cast<double>(res.loss));
      }
    }
    stats.epoch_seconds.push_back(epoch_timer.seconds());
    stats.train_accuracy =
        static_cast<double>(correct) / static_cast<double>(seen);
  }
  double total = 0.0;
  for (double t : stats.epoch_seconds) total += t;
  stats.seconds_per_epoch = total / static_cast<double>(cfg.epochs);

  // Memory accounting: weights + gradients + optimizer-agnostic activation
  // caches from the last training step.
  stats.memory_bytes = 2 * stats.param_bytes + model.activation_bytes();

  if (test_set != nullptr) {
    stats.test_accuracy = evaluate(model, *test_set, cfg.batch);
  }
  return stats;
}

double evaluate(Model& model, const data::Dataset& ds, std::int64_t batch) {
  std::int64_t correct = 0;
  std::int64_t seen = 0;
  const std::int64_t batches = ds.count() / batch;
  for (std::int64_t b = 0; b < batches; ++b) {
    std::vector<std::int64_t> labels;
    const TensorF x = ds.batch(b * batch, batch, labels);
    const TensorF logits = model.forward(x, /*train=*/false);
    const LossResult res = softmax_cross_entropy(logits, labels);
    correct += res.correct;
    seen += batch;
  }
  return seen == 0 ? 0.0
                   : static_cast<double>(correct) / static_cast<double>(seen);
}

}  // namespace iwg::nn
