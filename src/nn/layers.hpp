// Concrete layers: Conv2D, BatchNorm2D, LeakyReLU, MaxPool2x2, Flatten,
// Linear.
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "core/selector.hpp"
#include "nn/layer.hpp"
#include "tensor/conv_shape.hpp"

namespace iwg::nn {

/// Kaiming-uniform initialization (§6.3.1): U(−b, b), b = √(6 / fan_in),
/// the gain for LeakyReLU-style rectifiers.
void kaiming_uniform(TensorF& w, std::int64_t fan_in, Rng& rng);

/// 2-D convolution, NHWC, square filter, stride 1 or 2.
/// Unit-stride layers run on the configured engine (Winograd or GEMM);
/// strided layers always fall back to implicit GEMM, as in the paper.
class Conv2D final : public Layer {
 public:
  Conv2D(std::int64_t in_ch, std::int64_t out_ch, std::int64_t fsize,
         std::int64_t stride, std::int64_t pad, ConvEngine engine, Rng& rng,
         std::string label = "conv");
  /// Drops this layer's entries from the global FilterTransformCache — the
  /// weight storage is about to be freed and a later allocation could reuse
  /// the address with unrelated version numbering.
  ~Conv2D() override;

  std::string name() const override { return label_; }
  TensorF forward(const TensorF& x, bool train) override;
  TensorF infer(const TensorF& x) const override;
  /// Mixed-shape batch: every unit-stride image runs in ONE indirect Γ
  /// dispatch (conv2d_gamma_host_indirect); strided layers fall back to the
  /// per-image default. Bitwise identical per image to infer().
  std::vector<TensorF> infer_ragged(
      const std::vector<TensorF>& xs) const override;
  TensorF backward(const TensorF& dy) override;
  std::vector<Param*> params() override { return {&w_, &b_}; }
  std::int64_t activation_bytes() const override { return x_cache_.size() * 4; }

  /// Resolves this layer's plan from the context's PlanCache (unit-stride
  /// Winograd layers only) and returns the output dims.
  Dims4 pretune(const Dims4& in, AutotuneContext& ctx) override;

  /// The pre-resolved choice, if pretune ran (exposed for tests/reports).
  const std::optional<core::AlgoChoice>& tuned_choice() const {
    return tuned_;
  }

 private:
  ConvShape shape_for(const TensorF& x) const;
  /// The pure convolution + bias computation shared by forward and infer.
  TensorF apply(const TensorF& x, const ConvShape& s) const;

  std::string label_;
  std::int64_t fsize_, stride_, pad_;
  ConvEngine engine_;
  Param w_;  // OC,FH,FW,IC
  Param b_;  // OC
  TensorF x_cache_;
  ConvShape shape_;  // geometry of the last forward
  std::optional<core::AlgoChoice> tuned_;  // pre-resolved plan
  ConvShape tuned_shape_;                  // geometry the plan was tuned for
};

/// Batch normalization over (N, H, W) per channel, with running statistics.
class BatchNorm2D final : public Layer {
 public:
  explicit BatchNorm2D(std::int64_t channels, float momentum = 0.9f,
                       float eps = 1e-5f);

  std::string name() const override { return "batchnorm"; }
  TensorF forward(const TensorF& x, bool train) override;
  TensorF infer(const TensorF& x) const override;
  TensorF backward(const TensorF& dy) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::int64_t activation_bytes() const override {
    return (xhat_.size() + 2 * channels_) * 4;
  }

 private:
  std::int64_t channels_;
  float momentum_, eps_;
  Param gamma_, beta_;
  TensorF running_mean_, running_var_;
  TensorF xhat_;                 // normalized input (cached)
  std::vector<float> inv_std_;   // per channel
  std::int64_t count_ = 0;       // N·H·W of the cached batch
};

/// LeakyReLU activation (§6.3.1), slope 0.01.
class LeakyReLU final : public Layer {
 public:
  explicit LeakyReLU(float slope = 0.01f) : slope_(slope) {}
  std::string name() const override { return "leaky_relu"; }
  TensorF forward(const TensorF& x, bool train) override;
  TensorF infer(const TensorF& x) const override;
  TensorF backward(const TensorF& dy) override;
  std::int64_t activation_bytes() const override { return mask_.size(); }

 private:
  float slope_;
  std::vector<std::uint8_t> mask_;
};

/// 2×2 max pooling with stride 2 (VGG down-sampling).
class MaxPool2x2 final : public Layer {
 public:
  std::string name() const override { return "maxpool2x2"; }
  TensorF forward(const TensorF& x, bool train) override;
  TensorF infer(const TensorF& x) const override;
  TensorF backward(const TensorF& dy) override;
  std::int64_t activation_bytes() const override { return argmax_.size(); }
  Dims4 pretune(const Dims4& in, AutotuneContext& ctx) override {
    (void)ctx;
    return Dims4{in.n, in.h / 2, in.w / 2, in.c};
  }

 private:
  std::vector<std::uint8_t> argmax_;  // 0-3 winner per output element
  std::int64_t n_ = 0, ih_ = 0, iw_ = 0, c_ = 0;
};

/// Global average pooling (ResNet head): NHWC → (N, C).
class GlobalAvgPool final : public Layer {
 public:
  std::string name() const override { return "global_avg_pool"; }
  TensorF forward(const TensorF& x, bool train) override;
  TensorF infer(const TensorF& x) const override;
  TensorF backward(const TensorF& dy) override;
  Dims4 pretune(const Dims4& in, AutotuneContext& ctx) override {
    (void)ctx;
    return Dims4{in.n, 1, 1, in.c};
  }

 private:
  std::int64_t n_ = 0, h_ = 0, w_ = 0, c_ = 0;
};

/// NHWC → (N, H·W·C).
class Flatten final : public Layer {
 public:
  std::string name() const override { return "flatten"; }
  TensorF forward(const TensorF& x, bool train) override;
  TensorF infer(const TensorF& x) const override;
  TensorF backward(const TensorF& dy) override;
  Dims4 pretune(const Dims4& in, AutotuneContext& ctx) override {
    (void)ctx;
    return Dims4{in.n, 1, 1, in.h * in.w * in.c};
  }

 private:
  std::int64_t n_ = 0, h_ = 0, w_ = 0, c_ = 0;
};

/// Fully connected layer: (N, D) → (N, M).
class Linear final : public Layer {
 public:
  Linear(std::int64_t in_dim, std::int64_t out_dim, Rng& rng,
         std::string label = "linear");
  std::string name() const override { return label_; }
  TensorF forward(const TensorF& x, bool train) override;
  TensorF infer(const TensorF& x) const override;
  TensorF backward(const TensorF& dy) override;
  std::vector<Param*> params() override { return {&w_, &b_}; }
  std::int64_t activation_bytes() const override { return x_cache_.size() * 4; }
  Dims4 pretune(const Dims4& in, AutotuneContext& ctx) override {
    (void)ctx;
    return Dims4{in.n, 1, 1, w_.value.dim(1)};
  }

 private:
  std::string label_;
  Param w_;  // (D, M)
  Param b_;  // (M)
  TensorF x_cache_;
};

}  // namespace iwg::nn
