// Serving-subsystem request/response vocabulary.
//
// A Request is one independent single-image inference: an H×W×C NHWC image,
// an optional absolute Deadline, and a promise the engine must resolve with
// exactly one Response whatever happens (served, rejected at admission,
// expired in queue, or shed at shutdown). "Every future resolves" is the
// subsystem's core invariant — the tests and the CI smoke both assert it.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <optional>
#include <string>

#include "common/trace.hpp"
#include "tensor/tensor.hpp"

namespace iwg::serve {

using Clock = std::chrono::steady_clock;

/// Absolute time budget of one request. Default-constructed: no deadline.
class Deadline {
 public:
  Deadline() = default;

  /// Expires `budget` from now.
  static Deadline after(std::chrono::microseconds budget) {
    Deadline d;
    d.at_ = Clock::now() + budget;
    return d;
  }
  static Deadline never() { return Deadline{}; }

  bool has_deadline() const { return at_.has_value(); }
  bool expired(Clock::time_point now = Clock::now()) const {
    return at_.has_value() && now >= *at_;
  }
  Clock::time_point at() const { return at_.value(); }

 private:
  std::optional<Clock::time_point> at_;
};

/// Terminal state of one request.
enum class Status : std::uint8_t {
  kOk,        ///< served; `output` holds the model output for this image
  kRejected,  ///< admission control refused it (queue full)
  kExpired,   ///< deadline passed before dispatch; shed without running
  kShutdown,  ///< session stopped before it could run
};

inline const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kExpired: return "expired";
    case Status::kShutdown: return "shutdown";
  }
  return "?";
}

struct Response {
  Status status = Status::kOk;
  /// Model output sliced to this request (leading dim 1); empty unless kOk.
  TensorF output;
  std::string reason;           ///< human detail for non-kOk outcomes
  std::int64_t batch_size = 0;  ///< live requests in the serving micro-batch
  double queue_us = 0.0;        ///< enqueue → dispatch
  double latency_us = 0.0;      ///< enqueue → promise resolution

  bool ok() const { return status == Status::kOk; }
};

struct Request {
  std::uint64_t id = 0;
  TensorF input;  ///< H×W×C (rank 3)
  Deadline deadline;
  Clock::time_point enqueue_time;
  /// Flight-recorder identity, minted at submit. The request object is the
  /// explicit hand-off across threads: whichever thread touches the request
  /// next (batcher shed, worker dispatch/complete) restores this context via
  /// trace::ContextScope so its spans join the request's flow chain.
  trace::Context ctx;
  std::promise<Response> promise;
};

/// Two requests can share a micro-batch only when their images agree on
/// every dimension (the batcher splits the queue on the first mismatch).
inline bool same_image_shape(const TensorF& a, const TensorF& b) {
  return a.same_shape(b);
}

}  // namespace iwg::serve
