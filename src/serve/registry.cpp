#include "serve/registry.hpp"

#include <algorithm>
#include <limits>

#include "common/trace.hpp"
#include "core/plan_cache.hpp"
#include "nn/serialize.hpp"

namespace iwg::serve {

TokenBucket::TokenBucket(TokenBucketConfig cfg)
    : cfg_(cfg), tokens_(std::max(cfg.burst, 1.0)), last_(Clock::now()) {}

bool TokenBucket::try_acquire(Clock::time_point now) {
  if (cfg_.rate_per_sec <= 0.0) return true;
  std::lock_guard lock(mu_);
  const double cap = std::max(cfg_.burst, 1.0);
  const double elapsed_s =
      std::chrono::duration<double>(now - last_).count();
  if (elapsed_s > 0.0) {
    tokens_ = std::min(cap, tokens_ + elapsed_s * cfg_.rate_per_sec);
    last_ = now;
  }
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::available(Clock::time_point now) {
  if (cfg_.rate_per_sec <= 0.0) return -1.0;
  std::lock_guard lock(mu_);
  const double cap = std::max(cfg_.burst, 1.0);
  const double elapsed_s =
      std::chrono::duration<double>(now - last_).count();
  if (elapsed_s > 0.0) {
    tokens_ = std::min(cap, tokens_ + elapsed_s * cfg_.rate_per_sec);
    last_ = now;
  }
  return tokens_;
}

std::uint64_t ModelRegistry::Tenant::min_param_version() {
  std::shared_lock lock(swap_mu);
  std::uint64_t v = std::numeric_limits<std::uint64_t>::max();
  for (const nn::Param* p : model.params()) v = std::min(v, p->version);
  return v == std::numeric_limits<std::uint64_t>::max() ? 0 : v;
}

void ModelRegistry::warm(Tenant& t, const WarmupOptions& w) {
  IWG_TRACE_SCOPE("serve.register_warm", "serve");
  if (!w.plan_db.empty()) core::PlanCache::global().load(w.plan_db);
  if (w.pretune_plans) {
    IWG_CHECK_MSG(w.device != nullptr, "pretune_plans needs a device");
    IWG_CHECK_MSG(t.cfg.image_h == t.cfg.image_w,
                  "pretune propagates one spatial size (square images only)");
    nn::AutotuneContext ctx;
    ctx.dev = w.device;
    t.model.pretune(static_cast<std::int64_t>(t.cfg.max_batch), t.cfg.image_h,
                    t.cfg.channels, ctx);
  }
  if (w.prewarm) {
    TensorF x({static_cast<std::int64_t>(t.cfg.max_batch), t.cfg.image_h,
               t.cfg.image_w, t.cfg.channels});
    (void)t.model.infer(x);
  }
}

ModelRegistry::TenantPtr ModelRegistry::register_model(
    nn::Model model, TenantConfig cfg, const WarmupOptions& warm_opts) {
  IWG_CHECK_MSG(!cfg.id.empty(), "tenant id must be nonempty");
  // The Prometheus exposition parses serve.tenant.<id>.<rest> back apart at
  // the first dot after the prefix — a dotted id would split wrong.
  IWG_CHECK_MSG(cfg.id.find('.') == std::string::npos,
                "tenant id must not contain '.': " + cfg.id);
  IWG_CHECK_MSG(cfg.weight > 0.0, "tenant weight must be > 0");
  IWG_CHECK(cfg.max_batch >= 1);
  auto t = std::make_shared<Tenant>(std::move(cfg), std::move(model));
  // Warm before the tenant is findable: a replica never takes traffic cold,
  // and a failed warm (bad plan DB, bad geometry) never half-registers.
  warm(*t, warm_opts);
  std::lock_guard lock(mu_);
  const auto [it, inserted] = tenants_.emplace(t->cfg.id, t);
  (void)it;
  IWG_CHECK_MSG(inserted, "tenant already registered: " + t->cfg.id);
  return t;
}

bool ModelRegistry::deregister(const std::string& id) {
  std::lock_guard lock(mu_);
  return tenants_.erase(id) > 0;
}

ModelRegistry::TenantPtr ModelRegistry::find(const std::string& id) const {
  std::lock_guard lock(mu_);
  const auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second;
}

std::vector<ModelRegistry::TenantPtr> ModelRegistry::tenants() const {
  std::lock_guard lock(mu_);
  std::vector<TenantPtr> out;
  out.reserve(tenants_.size());
  for (const auto& [id, t] : tenants_) out.push_back(t);
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard lock(mu_);
  return tenants_.size();
}

std::uint64_t ModelRegistry::swap_weights(const std::string& id,
                                          const std::string& path,
                                          bool prewarm_after) {
  TenantPtr t = find(id);
  IWG_CHECK_MSG(t != nullptr, "swap_weights: unknown tenant: " + id);
  {
    // Exclusive: waits for in-flight batches (they hold swap_mu shared) and
    // blocks new dispatches for the duration of the in-place load. The
    // loader bumps every Param::version, which re-keys the
    // FilterTransformCache — the version bump IS the invalidation.
    IWG_TRACE_SCOPE("serve.swap_weights", "serve");
    std::unique_lock lock(t->swap_mu);
    nn::load_weights(t->model, path);
    t->weight_epoch.fetch_add(1, std::memory_order_release);
  }
  if (prewarm_after) {
    // Shared lock: concurrent with traffic (which also computes the new ĝ
    // on demand); this just front-loads the transform cost off the first
    // post-swap request's critical path.
    std::shared_lock lock(t->swap_mu);
    TensorF x({1, t->cfg.image_h, t->cfg.image_w, t->cfg.channels});
    (void)t->model.infer(x);
  }
  return t->min_param_version();
}

}  // namespace iwg::serve
