// Micro-batch assembly: the policy that turns a stream of single-image
// requests into the NHWC batches the Γα kernels are fast at.
//
// The host engine's throughput comes from amortizing per-call fixed costs
// (plan lookup, filter-transform fetch, parallel_for dispatch) and from
// giving the Γ engine enough independent rows — N · ⌈OH·OW / tile⌉ tasks —
// to cover every pool worker. A batch of one leaves most of the machine
// idle; the batcher therefore holds the head of the queue for up to
// `max_wait` hoping to fill `max_batch` slots, the classic
// latency-for-throughput trade every serving stack exposes.
//
// Two mixed-shape policies (BatchPolicy::mixed):
//
//   * kSplit (legacy): a batch only contains requests whose images agree on
//     H×W×C; the queue is split at the first mismatch. Interleaved A/B/A/B
//     traffic therefore ping-pongs batch-1 dispatches — the head-of-line
//     problem the indirect policy exists to fix.
//   * kIndirect (default): arrivals are drained into per-shape-class parks
//     (bounded at 2·max_batch total, a one-batch reordering buffer). A
//     class that fills to max_batch ships as a dense batch — shape-identical
//     runs coalesce exactly as before — and when the oldest parked request's
//     max_wait expires (or the queue closes, or a full mixed batch is
//     parked), the remainder ships as ONE batch: dense if a single shape is
//     present, otherwise an indirect (ragged) batch the session routes
//     through Model::infer_ragged. Mixed traffic costs one dispatch, not N
//     batch-1 dispatches.
//
// Shared rules:
//   * Max-wait: assembly never holds a request longer than `max_wait` past
//     the moment a worker first saw it — a lone request ships as a batch of
//     one when the wait expires.
//   * Deadline shedding: requests whose deadline expired while queued or
//     parked are resolved kExpired here, before any model work is spent on
//     them (serve.expired counts them).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/request_queue.hpp"

namespace iwg::serve {

/// How the batcher treats traffic whose image shapes disagree.
enum class MixedMode {
  kSplit,     ///< legacy split-on-mismatch (batch-1 ping-pong under mixes)
  kIndirect,  ///< park per class; mixed remainders ship as one ragged batch
};

struct BatchPolicy {
  std::size_t max_batch = 8;
  /// Longest a worker holds an incomplete batch open waiting for more
  /// arrivals, measured from when it first observes a pending request.
  std::chrono::microseconds max_wait{2000};
  /// How long an idle worker parks before returning an empty batch so the
  /// session can run idle-time work (arena trim, report flush).
  std::chrono::microseconds idle_wait{50000};
  /// Mixed-shape dispatch policy (see file comment).
  MixedMode mixed = MixedMode::kIndirect;
};

class Batcher {
 public:
  Batcher(RequestQueue& queue, BatchPolicy policy)
      : queue_(queue), policy_(policy) {}

  struct Batch {
    enum class Mode {
      kDense,     ///< one shape — ships as a single batch tensor
      kIndirect,  ///< mixed shapes — ships as one indirect (ragged) dispatch
    };
    std::vector<Request> requests;  ///< deadlines unexpired
    Mode mode = Mode::kDense;
    int shape_classes = 1;  ///< distinct H×W×C shapes among `requests`
    int expired = 0;  ///< requests shed kExpired during this assembly
    bool closed = false;  ///< queue closed and fully drained — worker exits
    bool idle() const { return requests.empty() && !closed; }
  };

  /// Block (bounded by idle_wait / max_wait) until a batch, an idle tick,
  /// or shutdown. Expired requests are resolved and never returned.
  Batch next_batch();

  const BatchPolicy& policy() const { return policy_; }

 private:
  /// One parked request plus when a worker first saw it (max_wait anchor).
  struct Parked {
    Request r;
    Clock::time_point seen;
  };
  /// FIFO of parked requests sharing one image shape.
  struct ShapeClass {
    std::int64_t h = 0, w = 0, c = 0;
    std::deque<Parked> entries;
  };

  Batch next_batch_split();    ///< legacy pop_compatible policy
  Batch next_batch_indirect();  ///< per-class parking policy

  std::size_t park_cap() const { return 2 * policy_.max_batch; }
  /// Move queued arrivals into the parking lot (up to park_cap).
  void drain_into_park();
  /// Resolve kExpired for every parked request past its deadline.
  void shed_expired_parked(Batch& b);
  /// Earliest `seen` across all parked entries (parked nonempty).
  Clock::time_point oldest_seen_parked() const;
  /// Take up to max_batch front entries of one class as a dense batch.
  void take_dense(ShapeClass& cls, Batch& b);
  /// Merge parked entries in seen order (global FIFO) up to max_batch.
  void assemble_mixed(Batch& b);
  void drop_empty_classes();

  RequestQueue& queue_;
  BatchPolicy policy_;
  /// Parking lot (kIndirect only): shared across workers so any worker can
  /// complete an assembly another worker started. parked_total_ ≤ park_cap.
  /// deque, not vector: growth must never relocate ShapeClass by copy —
  /// Parked holds the move-only Request (std::promise member).
  std::mutex park_mu_;
  std::deque<ShapeClass> parked_;
  std::size_t parked_total_ = 0;
};

}  // namespace iwg::serve
