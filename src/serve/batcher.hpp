// Micro-batch assembly: the policy that turns a stream of single-image
// requests into the NHWC batches the Γα kernels are fast at.
//
// The host engine's throughput comes from amortizing per-call fixed costs
// (plan lookup, filter-transform fetch, parallel_for dispatch) and from
// giving the Γ engine enough independent rows — N · ⌈OH·OW / tile⌉ tasks —
// to cover every pool worker. A batch of one leaves most of the machine
// idle; the batcher therefore holds the head of the queue for up to
// `max_wait` hoping to fill `max_batch` slots, the classic
// latency-for-throughput trade every serving stack exposes.
//
// Rules:
//   * Shape coherence: a batch only contains requests whose images agree on
//     H×W×C; the queue is split at the first mismatch (the mismatching
//     request seeds the next batch, so interleaved shapes ping-pong rather
//     than starve).
//   * Max-wait: assembly never holds a request longer than `max_wait` past
//     the moment a worker first saw it — a lone request ships as a batch of
//     one when the wait expires.
//   * Deadline shedding: requests whose deadline expired while queued are
//     resolved kExpired here, before any model work is spent on them
//     (serve.expired counts them).
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

#include "serve/request_queue.hpp"

namespace iwg::serve {

struct BatchPolicy {
  std::size_t max_batch = 8;
  /// Longest a worker holds an incomplete batch open waiting for more
  /// arrivals, measured from when it first observes a pending request.
  std::chrono::microseconds max_wait{2000};
  /// How long an idle worker parks before returning an empty batch so the
  /// session can run idle-time work (arena trim, report flush).
  std::chrono::microseconds idle_wait{50000};
};

class Batcher {
 public:
  Batcher(RequestQueue& queue, BatchPolicy policy)
      : queue_(queue), policy_(policy) {}

  struct Batch {
    std::vector<Request> requests;  ///< shape-coherent, deadlines unexpired
    int expired = 0;  ///< requests shed kExpired during this assembly
    bool closed = false;  ///< queue closed and fully drained — worker exits
    bool idle() const { return requests.empty() && !closed; }
  };

  /// Block (bounded by idle_wait / max_wait) until a batch, an idle tick,
  /// or shutdown. Expired requests are resolved and never returned.
  Batch next_batch();

  const BatchPolicy& policy() const { return policy_; }

 private:
  RequestQueue& queue_;
  BatchPolicy policy_;
};

}  // namespace iwg::serve
