#include "serve/dispatch.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/trace.hpp"

namespace iwg::serve {

namespace {

// Hot serve metrics are log2-bucket Histograms, not reservoir Distributions:
// a loaded server records millions of latencies and the reservoir's
// percentiles go silently approximate after 2^14 samples. Histogram counts
// stay exact forever and the snapshots merge.
trace::Histogram& batch_size_hist() {
  static trace::Histogram& h =
      trace::MetricsRegistry::global().histogram("serve.batch_size");
  return h;
}

trace::Histogram& latency_hist() {
  static trace::Histogram& h =
      trace::MetricsRegistry::global().histogram("serve.latency_us");
  return h;
}

trace::Histogram& queue_wait_hist() {
  static trace::Histogram& h =
      trace::MetricsRegistry::global().histogram("serve.queue_us");
  return h;
}

trace::Histogram& ok_latency_hist() {
  static trace::Histogram& h =
      trace::MetricsRegistry::global().histogram("serve.latency_us.ok");
  return h;
}

trace::Histogram& headroom_hist() {
  static trace::Histogram& h = trace::MetricsRegistry::global().histogram(
      "serve.deadline_headroom_us");
  return h;
}

trace::Counter& deadline_missed_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("serve.deadline_missed");
  return c;
}

trace::Counter& completed_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("serve.completed");
  return c;
}

trace::Counter& batches_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("serve.batches");
  return c;
}

trace::Counter& padded_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("serve.padded_slots");
  return c;
}

trace::Counter& mode_dense_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("serve.batch.mode.dense");
  return c;
}

trace::Counter& mode_indirect_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("serve.batch.mode.indirect");
  return c;
}

trace::Histogram& shape_classes_hist() {
  static trace::Histogram& h =
      trace::MetricsRegistry::global().histogram("serve.batch.shape_classes");
  return h;
}

}  // namespace

TenantMetrics& TenantMetrics::of(const std::string& tenant_id) {
  // Registry entries live for the process; this map just memoizes the
  // four name lookups per tenant so the hot path stays a map find.
  static std::mutex mu;
  static auto& map =
      *new std::unordered_map<std::string, std::unique_ptr<TenantMetrics>>();
  std::lock_guard lock(mu);
  auto it = map.find(tenant_id);
  if (it == map.end()) {
    auto& reg = trace::MetricsRegistry::global();
    const std::string p = "serve.tenant." + tenant_id + ".";
    it = map.emplace(tenant_id,
                     std::unique_ptr<TenantMetrics>(new TenantMetrics{
                         reg.counter(p + "completed"),
                         reg.counter(p + "rejected"),
                         reg.counter(p + "expired"),
                         reg.counter(p + "deadline_missed"),
                         reg.histogram(p + "latency_us")}))
             .first;
  }
  return *it->second;
}

std::chrono::microseconds resolve_flush_period(
    std::chrono::microseconds configured) {
  const char* env = std::getenv("IWG_REPORT_FLUSH_MS");
  if (env == nullptr || *env == '\0') return configured;
  char* end = nullptr;
  const long ms = std::strtol(env, &end, 10);
  if (end == env || ms < 0) return configured;  // unparsable: keep config
  return std::chrono::microseconds(static_cast<std::int64_t>(ms) * 1000);
}

DispatchResult run_model_batch(const nn::Model& model,
                               std::vector<Request>& batch,
                               const DispatchSpec& spec) {
  IWG_CHECK_MSG(!batch.empty(), "run_model_batch needs a nonempty batch");
  const std::size_t k = batch.size();
  const bool indirect = spec.indirect;
  const std::int64_t n =
      !indirect && spec.pad_to > 0
          ? std::max(spec.pad_to, static_cast<std::int64_t>(k))
          : static_cast<std::int64_t>(k);
  const std::int64_t padded = indirect ? 0 : n - static_cast<std::int64_t>(k);

  // The batch span (and everything nested under it — the model's conv
  // spans included) inherits the batch leader's context, so the leader's
  // flow chain reaches into the actual compute in the trace view.
  trace::ContextScope lead_scope(batch.front().ctx);
  IWG_TRACE_SPAN(span, "serve.batch", "serve");
  span.arg("batch_size", static_cast<std::int64_t>(k))
      .arg("padded_slots", padded)
      .arg("mode", indirect ? "indirect" : "dense")
      .arg("shape_classes", static_cast<std::int64_t>(spec.shape_classes));
  if (!spec.tenant.empty()) span.arg("tenant", spec.tenant);

  // Per-request outputs, each with leading dim 1.
  std::vector<TensorF> outs(k);
  Clock::time_point dispatch;
  Clock::time_point done;
  if (indirect) {
    // Mixed shapes: stage each image as its own N = 1 tensor and run the
    // whole set through ONE ragged dispatch per layer. Outputs come back
    // per image already, bit-identical to batch-1 inference.
    std::vector<TensorF> xs(k);
    for (std::size_t i = 0; i < k; ++i) {
      trace::ContextScope req_scope(batch[i].ctx);
      IWG_TRACE_SPAN(dispatch_span, "serve.dispatch", "serve");
      dispatch_span.arg("batch_size", static_cast<std::int64_t>(k))
          .arg("slot", static_cast<std::int64_t>(i));
      const TensorF& img = batch[i].input;
      xs[i].reset({1, img.dim(0), img.dim(1), img.dim(2)});
      std::memcpy(xs[i].data(), img.data(),
                  static_cast<std::size_t>(img.size()) * sizeof(float));
    }
    dispatch = Clock::now();
    outs = model.infer_ragged(xs);
    IWG_CHECK(outs.size() == k);
    done = Clock::now();
  } else {
    const TensorF& first = batch.front().input;
    const std::int64_t h = first.dim(0);
    const std::int64_t w = first.dim(1);
    const std::int64_t c = first.dim(2);
    TensorF xb({n, h, w, c});  // zero-initialized
    const std::int64_t image_elems = h * w * c;
    for (std::size_t i = 0; i < k; ++i) {
      // Per-request dispatch span: marks this request joining the
      // micro-batch on the worker thread (covers staging its image into
      // the batch tensor).
      trace::ContextScope req_scope(batch[i].ctx);
      IWG_TRACE_SPAN(dispatch_span, "serve.dispatch", "serve");
      dispatch_span.arg("batch_size", static_cast<std::int64_t>(k))
          .arg("slot", static_cast<std::int64_t>(i));
      std::memcpy(xb.data() + static_cast<std::int64_t>(i) * image_elems,
                  batch[i].input.data(),
                  static_cast<std::size_t>(image_elems) * sizeof(float));
    }
    dispatch = Clock::now();
    TensorF y = model.infer(xb);
    IWG_CHECK(y.dim(0) == n);
    done = Clock::now();

    // Slice each request's output row back out (leading dim 1).
    std::vector<std::int64_t> out_dims;
    out_dims.push_back(1);
    for (int d = 1; d < y.rank(); ++d) out_dims.push_back(y.dim(d));
    const std::int64_t per = y.size() / n;
    for (std::size_t i = 0; i < k; ++i) {
      outs[i].reset(out_dims);
      std::memcpy(outs[i].data(),
                  y.data() + static_cast<std::int64_t>(i) * per,
                  static_cast<std::size_t>(per) * sizeof(float));
    }
  }

  TenantMetrics* tm =
      spec.tenant.empty() ? nullptr : &TenantMetrics::of(spec.tenant);
  for (std::size_t i = 0; i < k; ++i) {
    trace::ContextScope req_scope(batch[i].ctx);
    IWG_TRACE_SPAN(complete_span, "serve.complete", "serve");
    Response resp;
    resp.status = Status::kOk;
    resp.batch_size = static_cast<std::int64_t>(k);
    resp.queue_us = std::chrono::duration<double, std::micro>(
                        dispatch - batch[i].enqueue_time)
                        .count();
    resp.latency_us = std::chrono::duration<double, std::micro>(
                          done - batch[i].enqueue_time)
                          .count();
    complete_span.arg("latency_us", resp.latency_us)
        .arg("queue_us", resp.queue_us);
    resp.output = std::move(outs[i]);
    queue_wait_hist().record(resp.queue_us);
    latency_hist().record(resp.latency_us);
    ok_latency_hist().record(resp.latency_us);
    if (tm != nullptr) tm->latency_us.record(resp.latency_us);
    if (batch[i].deadline.has_deadline()) {
      // Headroom left at completion — the SLO margin. A served-but-late
      // request records zero headroom and bumps the missed counter (it was
      // dispatched in time but finished past its budget).
      const double headroom_us = std::chrono::duration<double, std::micro>(
                                     batch[i].deadline.at() - done)
                                     .count();
      headroom_hist().record(std::max(0.0, headroom_us));
      if (headroom_us < 0.0) {
        deadline_missed_counter().add();
        if (tm != nullptr) tm->deadline_missed.add();
      }
    }
    batch[i].promise.set_value(std::move(resp));
  }

  batch_size_hist().record(static_cast<double>(k));
  batches_counter().add();
  (indirect ? mode_indirect_counter() : mode_dense_counter()).add();
  shape_classes_hist().record(static_cast<double>(spec.shape_classes));
  padded_counter().add(padded);
  completed_counter().add(static_cast<std::int64_t>(k));
  if (tm != nullptr) tm->completed.add(static_cast<std::int64_t>(k));

  DispatchResult res;
  res.completed = static_cast<std::int64_t>(k);
  res.padded_slots = padded;
  res.indirect = indirect;
  return res;
}

}  // namespace iwg::serve
