// Shared micro-batch execution for the serving layer.
//
// ServingSession (one model, dedicated workers) and FleetScheduler (N
// tenant models, fleet-level dispatch) assemble batches differently but
// execute them identically: stage the requests' images, run ONE model
// dispatch (dense batch tensor or ragged indirect), slice per-request
// outputs back out, and resolve every promise kOk with queue/latency
// accounting. run_model_batch is that common core, moved out of
// ServingSession so the fleet does not duplicate the metrics contract —
// both paths feed the same serve.* counters and histograms, and batches
// tagged with a tenant id additionally feed the per-tenant family
// (serve.tenant.<id>.*, exported with a {tenant="..."} label by
// MetricsRegistry::prometheus_text()).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.hpp"
#include "serve/request.hpp"

namespace iwg::serve {

/// Per-tenant serve metrics. Registered lazily on first use under
/// `serve.tenant.<id>.{completed,rejected,expired,deadline_missed,
/// latency_us}` — names the Prometheus exposition rewrites into one metric
/// family per suffix with the tenant id as a `{tenant="..."}` label.
/// References are stable for the process lifetime (MetricsRegistry never
/// removes entries), so callers may cache the returned reference. This
/// family is also what obs::SloMonitor windows: completed+expired are the
/// SLO-eligible events, deadline_missed+expired the SLO misses.
struct TenantMetrics {
  trace::Counter& completed;
  trace::Counter& rejected;
  trace::Counter& expired;
  trace::Counter& deadline_missed;  ///< served, but past the deadline
  trace::Histogram& latency_us;

  static TenantMetrics& of(const std::string& tenant_id);
};

/// The serving loops' report-flush period: `configured` unless
/// IWG_REPORT_FLUSH_MS is set, which overrides it (0 disables). Both
/// ServingSession and FleetScheduler resolve their flush_period through
/// this, so a deployed binary's flush cadence is tunable without a rebuild.
std::chrono::microseconds resolve_flush_period(
    std::chrono::microseconds configured);

/// How run_model_batch executes one assembled micro-batch.
struct DispatchSpec {
  /// Mixed shapes: route through Model::infer_ragged (one indirect Γ
  /// dispatch per conv layer). False: one dense batch tensor.
  bool indirect = false;
  /// Dense only: zero-pad the batch tensor up to this leading dimension so
  /// dispatch geometry matches pre-tuned plans (0 → dispatch at true size).
  std::int64_t pad_to = 0;
  /// Distinct H×W×C shapes among the requests (trace/metrics annotation).
  int shape_classes = 1;
  /// When nonempty, also record serve.tenant.<id>.* for this batch.
  std::string tenant;
};

struct DispatchResult {
  std::int64_t completed = 0;     ///< requests resolved kOk (= batch size)
  std::int64_t padded_slots = 0;  ///< zero slots added to the dense tensor
  bool indirect = false;          ///< executed as a ragged dispatch
};

/// Execute one nonempty micro-batch through `model` and resolve every
/// request's promise kOk. Thread-safe for concurrent calls on one model
/// (Model::infer / infer_ragged are const and concurrent); the caller owns
/// any weight-swap synchronization around the model reference.
DispatchResult run_model_batch(const nn::Model& model,
                               std::vector<Request>& batch,
                               const DispatchSpec& spec);

}  // namespace iwg::serve
