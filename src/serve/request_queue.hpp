// Bounded, thread-safe request queue with admission control.
//
// The queue is the serving engine's only buffer: capacity is the knob that
// trades tail latency for acceptance rate (a deep queue accepts bursts but
// lets requests age; a shallow one converts overload into fast rejections
// the client can retry elsewhere). push() is the admission decision — a full
// or closed queue resolves the request's promise immediately with a reason
// instead of blocking the caller, so producers never wedge behind a slow
// model.
//
// Consumers (the Batcher, driving session workers) use wait_nonempty /
// wait_depth to park between arrivals and pop_compatible to atomically
// claim a shape-coherent run of requests; atomicity under the queue mutex is
// what keeps two workers from interleaving claims out of FIFO order.
//
// Metrics: serve.enqueued / serve.rejected counters and the
// serve.queue_depth distribution (recorded at every push) feed the PR 2
// registry, so a serving report shows admission behavior next to the conv
// engine's own counters.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/request.hpp"

namespace iwg::serve {

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Admission outcome — the reject-with-reason contract.
  enum class Admit { kAccepted, kRejectedFull, kClosed };

  /// Admission control: accepts and enqueues, or resolves the request's
  /// promise right here with kRejected ("queue full") / kShutdown
  /// ("queue closed"). Never blocks.
  Admit push(Request&& r);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  bool closed() const;

  /// Block until the queue is nonempty, closed, or `wait` elapses.
  /// Returns true when the queue is nonempty.
  bool wait_nonempty(std::chrono::microseconds wait);

  /// Block until depth >= `depth`, the queue closes, or `until` passes.
  bool wait_depth(std::size_t depth, Clock::time_point until);

  /// Atomically pop up to `max_batch` requests from the front that share
  /// the front request's image shape. Stops at the first mismatch (the
  /// mismatching request stays queued and seeds the next batch), so one
  /// slow shape cannot starve behind an endless stream of another.
  std::vector<Request> pop_compatible(std::size_t max_batch);

  /// Atomically pop up to `max` requests from the front regardless of
  /// shape — the intake of the indirect batcher, which reorders into
  /// per-shape-class parks itself instead of splitting at the queue.
  std::vector<Request> pop_upto(std::size_t max);

  /// Stop admitting (pushes resolve kShutdown). Queued requests remain
  /// poppable so workers can drain them. Wakes every waiter. Idempotent.
  void close();

  /// Pop-and-resolve every queued request with kShutdown (no-drain stop).
  /// Returns how many were shed.
  std::size_t shed_all();

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> q_;
  bool closed_ = false;
};

}  // namespace iwg::serve
