#include "serve/batcher.hpp"

#include <algorithm>

#include "common/trace.hpp"

namespace iwg::serve {

namespace {

trace::Counter& expired_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("serve.expired");
  return c;
}

trace::Histogram& expired_latency_hist() {
  static trace::Histogram& h =
      trace::MetricsRegistry::global().histogram("serve.latency_us.expired");
  return h;
}

/// Resolve one request kExpired (deadline passed before dispatch), emitting
/// the expiry span into its flow chain.
void resolve_expired(Request& r, Clock::time_point now, Batcher::Batch& b) {
  // The request's context crossed the thread boundary inside the Request
  // itself; restoring it here puts the expiry span into the request's flow
  // chain (enqueue → expired, no complete).
  trace::ContextScope ctx_scope(r.ctx);
  IWG_TRACE_SPAN(span, "serve.expired", "serve");
  expired_counter().add();
  ++b.expired;
  Response resp;
  resp.status = Status::kExpired;
  resp.reason = "deadline expired before dispatch";
  resp.queue_us =
      std::chrono::duration<double, std::micro>(now - r.enqueue_time).count();
  resp.latency_us = resp.queue_us;
  span.arg("queue_us", resp.queue_us);
  expired_latency_hist().record(resp.latency_us);
  r.promise.set_value(std::move(resp));
}

}  // namespace

Batcher::Batch Batcher::next_batch() {
  return policy_.mixed == MixedMode::kSplit ? next_batch_split()
                                            : next_batch_indirect();
}

Batcher::Batch Batcher::next_batch_split() {
  Batch b;  // carries the expired count across assembly retries
  for (;;) {
    if (!queue_.wait_nonempty(policy_.idle_wait)) {
      b.closed = queue_.closed();  // closed *and* empty: nothing will come
      return b;
    }
    // Hold the batch open up to max_wait for more arrivals. wait_depth
    // returns early when max_batch requests are pending (they may still
    // split on shape below — a bounded extra wait, not a correctness
    // issue).
    queue_.wait_depth(policy_.max_batch, Clock::now() + policy_.max_wait);
    std::vector<Request> popped = queue_.pop_compatible(policy_.max_batch);

    // Deadline shedding: budgets that expired while queued get a kExpired
    // resolution now instead of a stale answer later.
    const Clock::time_point now = Clock::now();
    for (Request& r : popped) {
      if (r.deadline.expired(now)) {
        resolve_expired(r, now, b);
      } else {
        b.requests.push_back(std::move(r));
      }
    }
    if (!b.requests.empty()) return b;
    // Everything popped had expired, or another worker raced us to the
    // queue; go around again rather than report an idle tick.
  }
}

void Batcher::drain_into_park() {
  std::lock_guard lock(park_mu_);
  if (parked_total_ >= park_cap()) return;
  std::vector<Request> in = queue_.pop_upto(park_cap() - parked_total_);
  if (in.empty()) return;
  const Clock::time_point now = Clock::now();
  for (Request& r : in) {
    const std::int64_t h = r.input.dim(0);
    const std::int64_t w = r.input.dim(1);
    const std::int64_t c = r.input.dim(2);
    ShapeClass* cls = nullptr;
    for (ShapeClass& sc : parked_) {
      if (sc.h == h && sc.w == w && sc.c == c) {
        cls = &sc;
        break;
      }
    }
    if (cls == nullptr) {
      parked_.push_back(ShapeClass{h, w, c, {}});
      cls = &parked_.back();
    }
    cls->entries.push_back(Parked{std::move(r), now});
    ++parked_total_;
  }
}

void Batcher::shed_expired_parked(Batch& b) {
  const Clock::time_point now = Clock::now();
  for (ShapeClass& cls : parked_) {
    for (auto it = cls.entries.begin(); it != cls.entries.end();) {
      if (it->r.deadline.expired(now)) {
        resolve_expired(it->r, now, b);
        it = cls.entries.erase(it);
        --parked_total_;
      } else {
        ++it;
      }
    }
  }
  drop_empty_classes();
}

Clock::time_point Batcher::oldest_seen_parked() const {
  Clock::time_point oldest = Clock::time_point::max();
  for (const ShapeClass& cls : parked_) {
    for (const Parked& p : cls.entries) oldest = std::min(oldest, p.seen);
  }
  return oldest;
}

void Batcher::take_dense(ShapeClass& cls, Batch& b) {
  while (!cls.entries.empty() && b.requests.size() < policy_.max_batch) {
    b.requests.push_back(std::move(cls.entries.front().r));
    cls.entries.pop_front();
    --parked_total_;
  }
  b.mode = Batch::Mode::kDense;
  b.shape_classes = 1;
  drop_empty_classes();
}

void Batcher::assemble_mixed(Batch& b) {
  // Global-FIFO merge: repeatedly take the earliest-seen front entry across
  // classes, so parking never reorders requests relative to each other.
  std::vector<const ShapeClass*> used;
  while (parked_total_ > 0 && b.requests.size() < policy_.max_batch) {
    ShapeClass* best = nullptr;
    for (ShapeClass& cls : parked_) {
      if (cls.entries.empty()) continue;
      if (best == nullptr || cls.entries.front().seen <
                                 best->entries.front().seen) {
        best = &cls;
      }
    }
    if (best == nullptr) break;
    if (std::find(used.begin(), used.end(), best) == used.end()) {
      used.push_back(best);
    }
    b.requests.push_back(std::move(best->entries.front().r));
    best->entries.pop_front();
    --parked_total_;
  }
  b.shape_classes = static_cast<int>(used.size());
  b.mode = used.size() > 1 ? Batch::Mode::kIndirect : Batch::Mode::kDense;
  drop_empty_classes();
}

void Batcher::drop_empty_classes() {
  parked_.erase(std::remove_if(parked_.begin(), parked_.end(),
                               [](const ShapeClass& c) {
                                 return c.entries.empty();
                               }),
                parked_.end());
}

Batcher::Batch Batcher::next_batch_indirect() {
  Batch b;  // carries the expired count across assembly retries
  for (;;) {
    drain_into_park();
    {
      std::unique_lock lock(park_mu_);
      shed_expired_parked(b);
      if (parked_total_ > 0) {
        // 1. A class that filled to max_batch ships dense immediately —
        //    shape-identical runs coalesce exactly as in kSplit, with no
        //    head-of-line ping-pong when another shape interleaves.
        for (ShapeClass& cls : parked_) {
          if (cls.entries.size() >= policy_.max_batch) {
            take_dense(cls, b);
            return b;
          }
        }
        // 2. The remainder ships when a full mixed batch is parked, the
        //    oldest parked request's max_wait expires, or the queue closed
        //    (drain-to-shutdown). One shape → dense; several → indirect.
        const Clock::time_point due = oldest_seen_parked() + policy_.max_wait;
        if (parked_total_ >= policy_.max_batch || queue_.closed() ||
            Clock::now() >= due) {
          assemble_mixed(b);
          if (!b.requests.empty()) return b;
          continue;  // everything parked had expired
        }
        // Not due yet: wait (outside the park lock) for enough arrivals to
        // complete the batch, or for the oldest request's deadline.
        const std::size_t need = policy_.max_batch - parked_total_;
        lock.unlock();
        queue_.wait_depth(need, due);
        continue;
      }
    }
    // Parking lot empty: park like the split policy until traffic arrives.
    if (!queue_.wait_nonempty(policy_.idle_wait)) {
      bool parked_now;
      {
        std::lock_guard lock(park_mu_);
        parked_now = parked_total_ > 0;
      }
      if (parked_now) continue;  // another worker parked in the meantime
      b.closed = queue_.closed();
      return b;
    }
  }
}

}  // namespace iwg::serve
