#include "serve/batcher.hpp"

#include "common/trace.hpp"

namespace iwg::serve {

namespace {

trace::Counter& expired_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("serve.expired");
  return c;
}

trace::Histogram& expired_latency_hist() {
  static trace::Histogram& h =
      trace::MetricsRegistry::global().histogram("serve.latency_us.expired");
  return h;
}

}  // namespace

Batcher::Batch Batcher::next_batch() {
  Batch b;  // carries the expired count across assembly retries
  for (;;) {
    if (!queue_.wait_nonempty(policy_.idle_wait)) {
      b.closed = queue_.closed();  // closed *and* empty: nothing will come
      return b;
    }
    // Hold the batch open up to max_wait for more arrivals. wait_depth
    // returns early when max_batch requests are pending (they may still
    // split on shape below — a bounded extra wait, not a correctness
    // issue).
    queue_.wait_depth(policy_.max_batch, Clock::now() + policy_.max_wait);
    std::vector<Request> popped = queue_.pop_compatible(policy_.max_batch);

    // Deadline shedding: budgets that expired while queued get a kExpired
    // resolution now instead of a stale answer later.
    const Clock::time_point now = Clock::now();
    for (Request& r : popped) {
      if (r.deadline.expired(now)) {
        // The request's context crossed the thread boundary inside the
        // Request itself; restoring it here puts the expiry span into the
        // request's flow chain (enqueue → expired, no complete).
        trace::ContextScope ctx_scope(r.ctx);
        IWG_TRACE_SPAN(span, "serve.expired", "serve");
        expired_counter().add();
        ++b.expired;
        Response resp;
        resp.status = Status::kExpired;
        resp.reason = "deadline expired before dispatch";
        resp.queue_us = std::chrono::duration<double, std::micro>(
                            now - r.enqueue_time)
                            .count();
        resp.latency_us = resp.queue_us;
        span.arg("queue_us", resp.queue_us);
        expired_latency_hist().record(resp.latency_us);
        r.promise.set_value(std::move(resp));
      } else {
        b.requests.push_back(std::move(r));
      }
    }
    if (!b.requests.empty()) return b;
    // Everything popped had expired, or another worker raced us to the
    // queue; go around again rather than report an idle tick.
  }
}

}  // namespace iwg::serve
