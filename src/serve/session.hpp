// ServingSession: a warm, concurrent inference engine around one nn::Model.
//
// The session converts the repo's single-shot benchmark hot path into
// sustained request/response throughput:
//
//   submit() ─▶ RequestQueue (admission control) ─▶ Batcher (micro-batches)
//            ─▶ worker threads ─▶ Model::infer (const, concurrent)
//            ─▶ per-request Response futures
//
// Warm-cache management at load time:
//   * plan pre-tuning — Model::pretune resolves every unit-stride conv's
//     §5.5 chain for the *padded batch shape* through the PlanCache, so the
//     first real request never pays tuning latency;
//   * filter-transform pre-warm — one throwaway batch through Model::infer
//     populates the FilterTransformCache with every layer's ĝ, so the first
//     request doesn't pay the α·FH·IC·OC transforms either.
//
// Under the legacy split batching policy (MixedMode::kSplit), tail batches
// are zero-padded up to max_batch before dispatch: every dispatch then runs
// the exact geometry the plans were tuned for, and — because the host
// engine computes images independently — padding changes no bits of any
// real request's output. Under the indirect policy (the default), padding
// slots are never materialized: the Γ engine reaches input rows through an
// indirection table whose absent/pad entries are the shared zero row
// (nullptr), so a short dense batch dispatches at its true size and
// serve.padded_slots stays 0. Mixed-shape batches route through
// Model::infer_ragged — one indirect Γ dispatch per conv layer instead of
// N batch-1 dispatches.
//
// Workers are dedicated (pinned) threads that only assemble batches and
// drive Model::infer; the heavy parallelism stays inside the existing
// global ThreadPool via the conv engine's parallel_for, so serving adds no
// second worker hierarchy to tune. Idle workers trim their ScratchArena
// (and broadcast trim_all) so one outsized request doesn't pin peak memory
// for the life of the process, and optionally flush the trace/metrics
// report on a period so long-running processes have fresh reports on disk.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nn/model.hpp"
#include "serve/batcher.hpp"
#include "serve/request_queue.hpp"

namespace iwg::sim {
struct DeviceProfile;
}

namespace iwg::obs {
class Watchdog;
}

namespace iwg::serve {

struct SessionConfig {
  /// Expected image geometry (H, W, C). Requests with other shapes are
  /// still served (the batcher splits on shape) but only this geometry is
  /// pre-tuned and pre-warmed.
  std::int64_t image_h = 16;
  std::int64_t image_w = 16;
  std::int64_t channels = 3;

  BatchPolicy batch;
  std::size_t queue_capacity = 256;
  unsigned workers = 1;

  /// Deadline applied by submit(image) when the caller gives none;
  /// zero → no deadline.
  std::chrono::microseconds default_deadline{0};

  /// Resolve conv plans for the padded batch shape at load (needs `device`;
  /// square images only — pretune propagates one spatial size).
  bool pretune_plans = false;
  const sim::DeviceProfile* device = nullptr;

  /// Run one throwaway batch at load to populate the FilterTransformCache
  /// and size the scratch arenas.
  bool prewarm = true;

  /// Zero-pad tail batches to max_batch so dispatch geometry is constant
  /// (plan reuse; see file comment). Padding is compute overhead on
  /// stragglers — disable for latency-critical low-load deployments.
  /// Only honored under MixedMode::kSplit: the indirect policy replaces
  /// materialized pad slots with zero-row indirection entries, so its
  /// dense batches always dispatch at their true size.
  bool pad_tail_batches = true;

  /// Idle workers trim scratch arenas down to this retained capacity;
  /// negative → never trim.
  std::int64_t idle_trim_bytes = 64 * 1024;

  /// Period for trace/metrics report flushes from the serving loop
  /// (trace::flush_period); zero → no periodic flush. IWG_REPORT_FLUSH_MS
  /// overrides at construction (see serve::resolve_flush_period).
  std::chrono::microseconds flush_period{0};

  /// When set, each worker registers a named heartbeat here and beats it
  /// once per loop iteration — what obs::AdminServer's /healthz watches.
  /// Must outlive the session.
  obs::Watchdog* watchdog = nullptr;
};

class ServingSession {
 public:
  /// Takes ownership of the model. Pre-tunes and pre-warms per `cfg`, then
  /// starts the worker threads; the session is accepting when the
  /// constructor returns.
  ServingSession(nn::Model model, SessionConfig cfg);
  ~ServingSession();  ///< stop(/*drain=*/false)

  ServingSession(const ServingSession&) = delete;
  ServingSession& operator=(const ServingSession&) = delete;

  /// Submit one H×W×C image with the config's default deadline.
  std::future<Response> submit(TensorF image);
  std::future<Response> submit(TensorF image, Deadline deadline);

  /// Stop: close admission, then either drain queued requests (serve them)
  /// or shed them with kShutdown, and join the workers. Idempotent.
  void stop(bool drain = true);

  struct Stats {
    std::int64_t accepted = 0;   ///< admitted into the queue
    std::int64_t completed = 0;  ///< served with kOk
    std::int64_t rejected = 0;   ///< refused at admission (full or closed)
    std::int64_t expired = 0;    ///< deadline-shed before dispatch
    std::int64_t shed = 0;       ///< kShutdown-resolved at stop
    std::int64_t batches = 0;    ///< micro-batches dispatched (all modes)
    /// Of `batches`, how many were mixed-shape indirect dispatches
    /// (Model::infer_ragged) vs single-shape dense batch tensors.
    std::int64_t indirect_batches = 0;
    /// Every admitted request reached a terminal state (refused ones were
    /// resolved synchronously at submit).
    bool all_resolved() const { return accepted == completed + expired + shed; }
  };
  Stats stats() const;

  /// Prometheus text exposition of the process metrics registry (serve.*
  /// counters/histograms plus whatever the conv engine recorded). A
  /// scrape-by-file or embedding server can serve this page directly.
  std::string stats_report() const;

  /// The /statusz page for the single-model session: queue depth, session
  /// counters, plan-cache stats, arena high-water, host ISA — one JSON
  /// object (the fleet's richer per-tenant variant lives on FleetScheduler).
  std::string statusz_json() const;

  const nn::Model& model() const { return model_; }
  const SessionConfig& config() const { return cfg_; }
  std::size_t queue_depth() const { return queue_.size(); }

 private:
  void worker_loop(unsigned worker_idx);
  void run_batch(Batcher::Batch batch);
  void prewarm();
  void maybe_flush();

  nn::Model model_;
  SessionConfig cfg_;
  RequestQueue queue_;
  Batcher batcher_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::int64_t> accepted_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<std::int64_t> expired_{0};
  std::atomic<std::int64_t> shed_{0};
  std::atomic<std::int64_t> batches_{0};
  std::atomic<std::int64_t> indirect_batches_{0};
  std::atomic<bool> stopped_{false};
  std::atomic<std::int64_t> last_flush_us_{0};  ///< steady-clock μs
  std::mutex stop_mu_;
};

}  // namespace iwg::serve
