#include "serve/session.hpp"

#include <algorithm>
#include <locale>
#include <sstream>

#include "common/arena.hpp"
#include "common/trace.hpp"
#include "core/host_kernels.hpp"
#include "core/plan_cache.hpp"
#include "obs/watchdog.hpp"
#include "serve/dispatch.hpp"

namespace iwg::serve {

namespace {

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

ServingSession::ServingSession(nn::Model model, SessionConfig cfg)
    : model_(std::move(model)),
      cfg_(cfg),
      queue_(cfg.queue_capacity),
      batcher_(queue_, cfg.batch) {
  IWG_CHECK(cfg_.batch.max_batch >= 1);
  IWG_CHECK(cfg_.workers >= 1);
  cfg_.flush_period = resolve_flush_period(cfg_.flush_period);
  if (cfg_.pretune_plans) {
    IWG_CHECK_MSG(cfg_.device != nullptr, "pretune_plans needs a device");
    IWG_CHECK_MSG(cfg_.image_h == cfg_.image_w,
                  "pretune propagates one spatial size (square images only)");
    IWG_TRACE_SCOPE("serve.pretune", "serve");
    nn::AutotuneContext ctx;
    ctx.dev = cfg_.device;
    model_.pretune(static_cast<std::int64_t>(cfg_.batch.max_batch),
                   cfg_.image_h, cfg_.channels, ctx);
  }
  if (cfg_.prewarm) prewarm();
  workers_.reserve(cfg_.workers);
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ServingSession::~ServingSession() { stop(/*drain=*/false); }

void ServingSession::prewarm() {
  // One throwaway batch at the pre-tuned geometry computes every layer's
  // filter transform into the FilterTransformCache and sizes the scratch
  // arenas, so the first real request pays neither.
  IWG_TRACE_SCOPE("serve.prewarm", "serve");
  TensorF warm({static_cast<std::int64_t>(cfg_.batch.max_batch), cfg_.image_h,
                cfg_.image_w, cfg_.channels});
  (void)model_.infer(warm);
}

std::future<Response> ServingSession::submit(TensorF image) {
  Deadline d = cfg_.default_deadline.count() > 0
                   ? Deadline::after(cfg_.default_deadline)
                   : Deadline::never();
  return submit(std::move(image), d);
}

std::future<Response> ServingSession::submit(TensorF image, Deadline deadline) {
  IWG_CHECK_MSG(image.rank() == 3, "submit expects one H x W x C image");
  Request r;
  r.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  r.input = std::move(image);
  r.deadline = deadline;
  r.enqueue_time = Clock::now();
  // Mint the flight-recorder identity here: the enqueue span below carries
  // it on the client thread, and the Request hands it to whichever worker
  // thread dispatches/completes it, linking the whole path in the trace.
  r.ctx.trace_id = trace::new_trace_id();
  r.ctx.request_id = r.id;
  trace::ContextScope ctx_scope(r.ctx);
  IWG_TRACE_SPAN(span, "serve.enqueue", "serve");
  std::future<Response> fut = r.promise.get_future();
  switch (queue_.push(std::move(r))) {
    case RequestQueue::Admit::kAccepted:
      accepted_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestQueue::Admit::kRejectedFull:
    case RequestQueue::Admit::kClosed:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  return fut;
}

void ServingSession::worker_loop(unsigned worker_idx) {
  // Liveness signal: one beat per loop iteration (the Batcher parks at most
  // its idle period, so a healthy worker beats well inside any sane stall
  // timeout). The handle dropping at return deregisters us from the scan.
  obs::Watchdog::HeartbeatPtr hb;
  if (cfg_.watchdog != nullptr) {
    hb = cfg_.watchdog->watch("session.worker." + std::to_string(worker_idx));
  }
  for (;;) {
    if (hb != nullptr) hb->beat();
    Batcher::Batch b = batcher_.next_batch();
    if (hb != nullptr) hb->beat();
    expired_.fetch_add(b.expired, std::memory_order_relaxed);
    if (b.closed) return;
    if (b.idle()) {
      // Idle housekeeping: return scratch peaks to the allocator — this
      // worker's arena directly, everyone else's via the trim epoch — so a
      // single outsized request doesn't pin peak memory for the process
      // lifetime.
      if (cfg_.idle_trim_bytes >= 0) {
        const auto keep = static_cast<std::size_t>(cfg_.idle_trim_bytes);
        ScratchArena::local().trim(keep);
        ScratchArena::trim_all(keep);
      }
      maybe_flush();
      continue;
    }
    run_batch(std::move(b));
    maybe_flush();
  }
}

void ServingSession::maybe_flush() {
  if (cfg_.flush_period.count() <= 0) return;
  const std::int64_t now = steady_now_us();
  std::int64_t last = last_flush_us_.load(std::memory_order_relaxed);
  if (now - last < cfg_.flush_period.count()) return;
  // One worker wins the CAS and flushes; the rest skip.
  if (last_flush_us_.compare_exchange_strong(last, now,
                                             std::memory_order_relaxed)) {
    trace::flush_report();
  }
}

void ServingSession::run_batch(Batcher::Batch b) {
  // Zero-pad the tail up to max_batch so dispatch geometry always matches
  // the pre-tuned plans — legacy split policy only. The indirect policy
  // replaces materialized pad slots with zero-row indirection entries
  // (which simply don't exist for absent images), so its dense batches
  // dispatch at their true size and padded_slots stays 0.
  DispatchSpec spec;
  spec.indirect = b.mode == Batcher::Batch::Mode::kIndirect;
  spec.shape_classes = b.shape_classes;
  const bool pad =
      cfg_.pad_tail_batches && cfg_.batch.mixed == MixedMode::kSplit;
  spec.pad_to =
      !spec.indirect && pad ? static_cast<std::int64_t>(cfg_.batch.max_batch)
                            : 0;
  const DispatchResult res = run_model_batch(model_, b.requests, spec);
  completed_.fetch_add(res.completed, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  if (res.indirect) indirect_batches_.fetch_add(1, std::memory_order_relaxed);
}

void ServingSession::stop(bool drain) {
  std::lock_guard lock(stop_mu_);
  if (stopped_.load()) return;
  queue_.close();
  if (!drain) {
    shed_.fetch_add(static_cast<std::int64_t>(queue_.shed_all()),
                    std::memory_order_relaxed);
  }
  for (auto& t : workers_) t.join();
  // A request pushed between close() racing and drain pop is impossible
  // (close happens-before every later push sees closed_), but a no-drain
  // stop can race a worker that already popped its batch — that batch is
  // served, which is the stronger guarantee.
  stopped_.store(true);
}

std::string ServingSession::stats_report() const {
  return trace::MetricsRegistry::global().prometheus_text();
}

std::string ServingSession::statusz_json() const {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(9);
  const Stats s = stats();
  const core::CacheStats pc = core::PlanCache::global().stats();
  os << "{\"workers\":" << cfg_.workers
     << ",\"host_isa\":\"" << core::host_isa_name(core::host_isa()) << '"'
     << ",\"arena_high_water_bytes\":" << ScratchArena::max_high_water()
     << ",\"queue_depth\":" << queue_.size()
     << ",\"accepted\":" << s.accepted << ",\"completed\":" << s.completed
     << ",\"rejected\":" << s.rejected << ",\"expired\":" << s.expired
     << ",\"batches\":" << s.batches
     << ",\"indirect_batches\":" << s.indirect_batches
     << ",\"plan_cache\":{\"lookups\":" << pc.lookups
     << ",\"hits\":" << pc.hits << ",\"misses\":" << pc.misses
     << ",\"evictions\":" << pc.evictions << ",\"entries\":" << pc.entries
     << ",\"tuning_time_s\":" << pc.tuning_time_s << "}}";
  return os.str();
}

ServingSession::Stats ServingSession::stats() const {
  Stats s;
  s.accepted = accepted_.load();
  s.completed = completed_.load();
  s.rejected = rejected_.load();
  s.expired = expired_.load();
  s.shed = shed_.load();
  s.batches = batches_.load();
  s.indirect_batches = indirect_batches_.load();
  return s;
}

}  // namespace iwg::serve
