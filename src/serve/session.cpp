#include "serve/session.hpp"

#include <algorithm>
#include <cstring>

#include "common/arena.hpp"
#include "common/trace.hpp"

namespace iwg::serve {

namespace {

// Hot serve metrics are log2-bucket Histograms, not reservoir Distributions:
// a loaded server records millions of latencies and the reservoir's
// percentiles go silently approximate after 2^14 samples. Histogram counts
// stay exact forever and the snapshots merge.
trace::Histogram& batch_size_hist() {
  static trace::Histogram& h =
      trace::MetricsRegistry::global().histogram("serve.batch_size");
  return h;
}

trace::Histogram& latency_hist() {
  static trace::Histogram& h =
      trace::MetricsRegistry::global().histogram("serve.latency_us");
  return h;
}

trace::Histogram& queue_wait_hist() {
  static trace::Histogram& h =
      trace::MetricsRegistry::global().histogram("serve.queue_us");
  return h;
}

trace::Histogram& ok_latency_hist() {
  static trace::Histogram& h =
      trace::MetricsRegistry::global().histogram("serve.latency_us.ok");
  return h;
}

trace::Histogram& headroom_hist() {
  static trace::Histogram& h = trace::MetricsRegistry::global().histogram(
      "serve.deadline_headroom_us");
  return h;
}

trace::Counter& deadline_missed_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("serve.deadline_missed");
  return c;
}

trace::Counter& completed_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("serve.completed");
  return c;
}

trace::Counter& batches_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("serve.batches");
  return c;
}

trace::Counter& padded_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("serve.padded_slots");
  return c;
}

trace::Counter& mode_dense_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("serve.batch.mode.dense");
  return c;
}

trace::Counter& mode_indirect_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("serve.batch.mode.indirect");
  return c;
}

trace::Histogram& shape_classes_hist() {
  static trace::Histogram& h =
      trace::MetricsRegistry::global().histogram("serve.batch.shape_classes");
  return h;
}

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

ServingSession::ServingSession(nn::Model model, SessionConfig cfg)
    : model_(std::move(model)),
      cfg_(cfg),
      queue_(cfg.queue_capacity),
      batcher_(queue_, cfg.batch) {
  IWG_CHECK(cfg_.batch.max_batch >= 1);
  IWG_CHECK(cfg_.workers >= 1);
  if (cfg_.pretune_plans) {
    IWG_CHECK_MSG(cfg_.device != nullptr, "pretune_plans needs a device");
    IWG_CHECK_MSG(cfg_.image_h == cfg_.image_w,
                  "pretune propagates one spatial size (square images only)");
    IWG_TRACE_SCOPE("serve.pretune", "serve");
    nn::AutotuneContext ctx;
    ctx.dev = cfg_.device;
    model_.pretune(static_cast<std::int64_t>(cfg_.batch.max_batch),
                   cfg_.image_h, cfg_.channels, ctx);
  }
  if (cfg_.prewarm) prewarm();
  workers_.reserve(cfg_.workers);
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ServingSession::~ServingSession() { stop(/*drain=*/false); }

void ServingSession::prewarm() {
  // One throwaway batch at the pre-tuned geometry computes every layer's
  // filter transform into the FilterTransformCache and sizes the scratch
  // arenas, so the first real request pays neither.
  IWG_TRACE_SCOPE("serve.prewarm", "serve");
  TensorF warm({static_cast<std::int64_t>(cfg_.batch.max_batch), cfg_.image_h,
                cfg_.image_w, cfg_.channels});
  (void)model_.infer(warm);
}

std::future<Response> ServingSession::submit(TensorF image) {
  Deadline d = cfg_.default_deadline.count() > 0
                   ? Deadline::after(cfg_.default_deadline)
                   : Deadline::never();
  return submit(std::move(image), d);
}

std::future<Response> ServingSession::submit(TensorF image, Deadline deadline) {
  IWG_CHECK_MSG(image.rank() == 3, "submit expects one H x W x C image");
  Request r;
  r.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  r.input = std::move(image);
  r.deadline = deadline;
  r.enqueue_time = Clock::now();
  // Mint the flight-recorder identity here: the enqueue span below carries
  // it on the client thread, and the Request hands it to whichever worker
  // thread dispatches/completes it, linking the whole path in the trace.
  r.ctx.trace_id = trace::new_trace_id();
  r.ctx.request_id = r.id;
  trace::ContextScope ctx_scope(r.ctx);
  IWG_TRACE_SPAN(span, "serve.enqueue", "serve");
  std::future<Response> fut = r.promise.get_future();
  switch (queue_.push(std::move(r))) {
    case RequestQueue::Admit::kAccepted:
      accepted_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestQueue::Admit::kRejectedFull:
    case RequestQueue::Admit::kClosed:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  return fut;
}

void ServingSession::worker_loop(unsigned worker_idx) {
  (void)worker_idx;
  for (;;) {
    Batcher::Batch b = batcher_.next_batch();
    expired_.fetch_add(b.expired, std::memory_order_relaxed);
    if (b.closed) return;
    if (b.idle()) {
      // Idle housekeeping: return scratch peaks to the allocator — this
      // worker's arena directly, everyone else's via the trim epoch — so a
      // single outsized request doesn't pin peak memory for the process
      // lifetime.
      if (cfg_.idle_trim_bytes >= 0) {
        const auto keep = static_cast<std::size_t>(cfg_.idle_trim_bytes);
        ScratchArena::local().trim(keep);
        ScratchArena::trim_all(keep);
      }
      maybe_flush();
      continue;
    }
    run_batch(std::move(b));
    maybe_flush();
  }
}

void ServingSession::maybe_flush() {
  if (cfg_.flush_period.count() <= 0) return;
  const std::int64_t now = steady_now_us();
  std::int64_t last = last_flush_us_.load(std::memory_order_relaxed);
  if (now - last < cfg_.flush_period.count()) return;
  // One worker wins the CAS and flushes; the rest skip.
  if (last_flush_us_.compare_exchange_strong(last, now,
                                             std::memory_order_relaxed)) {
    trace::flush_report();
  }
}

void ServingSession::run_batch(Batcher::Batch b) {
  std::vector<Request>& batch = b.requests;
  const std::size_t k = batch.size();
  const bool indirect = b.mode == Batcher::Batch::Mode::kIndirect;
  // Zero-pad the tail up to max_batch so dispatch geometry always matches
  // the pre-tuned plans — legacy split policy only. The indirect policy
  // replaces materialized pad slots with zero-row indirection entries
  // (which simply don't exist for absent images), so its dense batches
  // dispatch at their true size and padded_slots stays 0.
  const bool pad =
      cfg_.pad_tail_batches && cfg_.batch.mixed == MixedMode::kSplit;
  const std::int64_t n =
      !indirect && pad
          ? static_cast<std::int64_t>(std::max(cfg_.batch.max_batch, k))
          : static_cast<std::int64_t>(k);
  const std::int64_t padded = indirect ? 0 : n - static_cast<std::int64_t>(k);

  // The batch span (and everything nested under it — the model's conv
  // spans included) inherits the batch leader's context, so the leader's
  // flow chain reaches into the actual compute in the trace view.
  trace::ContextScope lead_scope(batch.front().ctx);
  IWG_TRACE_SPAN(span, "serve.batch", "serve");
  span.arg("batch_size", static_cast<std::int64_t>(k))
      .arg("padded_slots", padded)
      .arg("mode", indirect ? "indirect" : "dense")
      .arg("shape_classes", static_cast<std::int64_t>(b.shape_classes));

  // Per-request outputs, each with leading dim 1.
  std::vector<TensorF> outs(k);
  Clock::time_point dispatch;
  Clock::time_point done;
  if (indirect) {
    // Mixed shapes: stage each image as its own N = 1 tensor and run the
    // whole set through ONE ragged dispatch per layer. Outputs come back
    // per image already, bit-identical to batch-1 inference.
    std::vector<TensorF> xs(k);
    for (std::size_t i = 0; i < k; ++i) {
      trace::ContextScope req_scope(batch[i].ctx);
      IWG_TRACE_SPAN(dispatch_span, "serve.dispatch", "serve");
      dispatch_span.arg("batch_size", static_cast<std::int64_t>(k))
          .arg("slot", static_cast<std::int64_t>(i));
      const TensorF& img = batch[i].input;
      xs[i].reset({1, img.dim(0), img.dim(1), img.dim(2)});
      std::memcpy(xs[i].data(), img.data(),
                  static_cast<std::size_t>(img.size()) * sizeof(float));
    }
    dispatch = Clock::now();
    outs = model_.infer_ragged(xs);
    IWG_CHECK(outs.size() == k);
    done = Clock::now();
  } else {
    const TensorF& first = batch.front().input;
    const std::int64_t h = first.dim(0);
    const std::int64_t w = first.dim(1);
    const std::int64_t c = first.dim(2);
    TensorF xb({n, h, w, c});  // zero-initialized
    const std::int64_t image_elems = h * w * c;
    for (std::size_t i = 0; i < k; ++i) {
      // Per-request dispatch span: marks this request joining the
      // micro-batch on the worker thread (covers staging its image into
      // the batch tensor).
      trace::ContextScope req_scope(batch[i].ctx);
      IWG_TRACE_SPAN(dispatch_span, "serve.dispatch", "serve");
      dispatch_span.arg("batch_size", static_cast<std::int64_t>(k))
          .arg("slot", static_cast<std::int64_t>(i));
      std::memcpy(xb.data() + static_cast<std::int64_t>(i) * image_elems,
                  batch[i].input.data(),
                  static_cast<std::size_t>(image_elems) * sizeof(float));
    }
    dispatch = Clock::now();
    TensorF y = model_.infer(xb);
    IWG_CHECK(y.dim(0) == n);
    done = Clock::now();

    // Slice each request's output row back out (leading dim 1).
    std::vector<std::int64_t> out_dims;
    out_dims.push_back(1);
    for (int d = 1; d < y.rank(); ++d) out_dims.push_back(y.dim(d));
    const std::int64_t per = y.size() / n;
    for (std::size_t i = 0; i < k; ++i) {
      outs[i].reset(out_dims);
      std::memcpy(outs[i].data(),
                  y.data() + static_cast<std::int64_t>(i) * per,
                  static_cast<std::size_t>(per) * sizeof(float));
    }
  }

  for (std::size_t i = 0; i < k; ++i) {
    trace::ContextScope req_scope(batch[i].ctx);
    IWG_TRACE_SPAN(complete_span, "serve.complete", "serve");
    Response resp;
    resp.status = Status::kOk;
    resp.batch_size = static_cast<std::int64_t>(k);
    resp.queue_us = std::chrono::duration<double, std::micro>(
                        dispatch - batch[i].enqueue_time)
                        .count();
    resp.latency_us = std::chrono::duration<double, std::micro>(
                          done - batch[i].enqueue_time)
                          .count();
    complete_span.arg("latency_us", resp.latency_us)
        .arg("queue_us", resp.queue_us);
    resp.output = std::move(outs[i]);
    queue_wait_hist().record(resp.queue_us);
    latency_hist().record(resp.latency_us);
    ok_latency_hist().record(resp.latency_us);
    if (batch[i].deadline.has_deadline()) {
      // Headroom left at completion — the SLO margin. A served-but-late
      // request records zero headroom and bumps the missed counter (it was
      // dispatched in time but finished past its budget).
      const double headroom_us = std::chrono::duration<double, std::micro>(
                                     batch[i].deadline.at() - done)
                                     .count();
      headroom_hist().record(std::max(0.0, headroom_us));
      if (headroom_us < 0.0) deadline_missed_counter().add();
    }
    batch[i].promise.set_value(std::move(resp));
  }

  batch_size_hist().record(static_cast<double>(k));
  batches_counter().add();
  (indirect ? mode_indirect_counter() : mode_dense_counter()).add();
  shape_classes_hist().record(static_cast<double>(b.shape_classes));
  padded_counter().add(padded);
  completed_counter().add(static_cast<std::int64_t>(k));
  completed_.fetch_add(static_cast<std::int64_t>(k),
                       std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  if (indirect) indirect_batches_.fetch_add(1, std::memory_order_relaxed);
}

void ServingSession::stop(bool drain) {
  std::lock_guard lock(stop_mu_);
  if (stopped_.load()) return;
  queue_.close();
  if (!drain) {
    shed_.fetch_add(static_cast<std::int64_t>(queue_.shed_all()),
                    std::memory_order_relaxed);
  }
  for (auto& t : workers_) t.join();
  // A request pushed between close() racing and drain pop is impossible
  // (close happens-before every later push sees closed_), but a no-drain
  // stop can race a worker that already popped its batch — that batch is
  // served, which is the stronger guarantee.
  stopped_.store(true);
}

std::string ServingSession::stats_report() const {
  return trace::MetricsRegistry::global().prometheus_text();
}

ServingSession::Stats ServingSession::stats() const {
  Stats s;
  s.accepted = accepted_.load();
  s.completed = completed_.load();
  s.rejected = rejected_.load();
  s.expired = expired_.load();
  s.shed = shed_.load();
  s.batches = batches_.load();
  s.indirect_batches = indirect_batches_.load();
  return s;
}

}  // namespace iwg::serve
