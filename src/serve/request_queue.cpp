#include "serve/request_queue.hpp"

#include "common/trace.hpp"

namespace iwg::serve {

namespace {

trace::Counter& enqueued_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("serve.enqueued");
  return c;
}

trace::Counter& rejected_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("serve.rejected");
  return c;
}

trace::Histogram& depth_hist() {
  static trace::Histogram& h =
      trace::MetricsRegistry::global().histogram("serve.queue_depth");
  return h;
}

void resolve(Request& r, Status status, const char* reason) {
  // Restore the request's flight-recorder context so the terminal span
  // joins its flow chain even on the reject/shed path.
  trace::ContextScope ctx_scope(r.ctx);
  IWG_TRACE_SPAN(span, "serve.reject", "serve");
  span.arg("status", status_name(status));
  Response resp;
  resp.status = status;
  resp.reason = reason;
  resp.latency_us = std::chrono::duration<double, std::micro>(
                        Clock::now() - r.enqueue_time)
                        .count();
  // Per-status latency histogram (serve.latency_us.rejected / .shutdown):
  // cold path, so the registry lookup per call is fine.
  trace::MetricsRegistry::global()
      .histogram(std::string("serve.latency_us.") + status_name(status))
      .record(resp.latency_us);
  r.promise.set_value(std::move(resp));
}

}  // namespace

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {}

RequestQueue::Admit RequestQueue::push(Request&& r) {
  bool was_closed;
  {
    std::lock_guard lock(mu_);
    if (!closed_ && q_.size() < capacity_) {
      q_.push_back(std::move(r));
      enqueued_counter().add();
      depth_hist().record(static_cast<double>(q_.size()));
      cv_.notify_one();
      return Admit::kAccepted;
    }
    was_closed = closed_;
  }
  // Resolve outside the lock: set_value wakes waiters of arbitrary cost.
  if (was_closed) {
    resolve(r, Status::kShutdown, "queue closed");
    return Admit::kClosed;
  }
  rejected_counter().add();
  resolve(r, Status::kRejected, "queue full");
  return Admit::kRejectedFull;
}

std::size_t RequestQueue::size() const {
  std::lock_guard lock(mu_);
  return q_.size();
}

bool RequestQueue::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

bool RequestQueue::wait_nonempty(std::chrono::microseconds wait) {
  std::unique_lock lock(mu_);
  cv_.wait_for(lock, wait, [&] { return closed_ || !q_.empty(); });
  return !q_.empty();
}

bool RequestQueue::wait_depth(std::size_t depth, Clock::time_point until) {
  std::unique_lock lock(mu_);
  cv_.wait_until(lock, until,
                 [&] { return closed_ || q_.size() >= depth; });
  return q_.size() >= depth;
}

std::vector<Request> RequestQueue::pop_compatible(std::size_t max_batch) {
  std::vector<Request> out;
  std::lock_guard lock(mu_);
  while (!q_.empty() && out.size() < max_batch) {
    if (!out.empty() &&
        !same_image_shape(out.front().input, q_.front().input)) {
      break;  // shape split: the mismatch seeds the next batch
    }
    out.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  return out;
}

std::vector<Request> RequestQueue::pop_upto(std::size_t max) {
  std::vector<Request> out;
  std::lock_guard lock(mu_);
  while (!q_.empty() && out.size() < max) {
    out.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  return out;
}

void RequestQueue::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::shed_all() {
  std::deque<Request> orphans;
  {
    std::lock_guard lock(mu_);
    orphans.swap(q_);
  }
  for (Request& r : orphans) {
    resolve(r, Status::kShutdown, "session stopped before dispatch");
  }
  return orphans.size();
}

}  // namespace iwg::serve
