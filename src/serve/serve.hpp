// Umbrella header for the inference-serving subsystem.
//
//   #include "serve/serve.hpp"
//
// One model:
//   iwg::serve::SessionConfig cfg;            // geometry + policy knobs
//   iwg::serve::ServingSession session(std::move(model), cfg);
//   auto fut = session.submit(image);         // H×W×C, returns a future
//   iwg::serve::Response r = fut.get();       // always resolves
//
// A fleet of tenant models over one worker pool:
//   iwg::serve::FleetScheduler fleet(fleet_cfg);
//   fleet.add_tenant(std::move(model), tenant_cfg);   // warmed, then live
//   auto fut = fleet.submit("tenant-id", image);
//   fleet.swap_weights("tenant-id", "new.iwgw");      // zero-drop hot swap
//
// See session.hpp (single-model architecture) and fleet.hpp (weighted-fair
// / EDF scheduling, hot-swap protocol) for the overviews.
#pragma once

#include "serve/batcher.hpp"      // IWYU pragma: export
#include "serve/dispatch.hpp"     // IWYU pragma: export
#include "serve/fleet.hpp"        // IWYU pragma: export
#include "serve/registry.hpp"     // IWYU pragma: export
#include "serve/request.hpp"      // IWYU pragma: export
#include "serve/request_queue.hpp"  // IWYU pragma: export
#include "serve/session.hpp"      // IWYU pragma: export
