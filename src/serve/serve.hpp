// Umbrella header for the inference-serving subsystem.
//
//   #include "serve/serve.hpp"
//
//   iwg::serve::SessionConfig cfg;            // geometry + policy knobs
//   iwg::serve::ServingSession session(std::move(model), cfg);
//   auto fut = session.submit(image);         // H×W×C, returns a future
//   iwg::serve::Response r = fut.get();       // always resolves
//
// See session.hpp for the architecture overview.
#pragma once

#include "serve/batcher.hpp"      // IWYU pragma: export
#include "serve/request.hpp"      // IWYU pragma: export
#include "serve/request_queue.hpp"  // IWYU pragma: export
#include "serve/session.hpp"      // IWYU pragma: export
