// ModelRegistry: the fleet's tenant table — N named models, each with its
// scheduling identity (priority weight, token-bucket rate limit, default
// SLO deadline, expected image geometry) and a hot-swap lock.
//
// Registration warms a replica BEFORE it becomes findable: an optional plan
// DB is merged into the PlanCache (the "find once, deploy many" flow),
// Model::pretune resolves every unit-stride conv's plan chain for the
// tenant's batch geometry, and one throwaway batch populates the
// FilterTransformCache — so the first real request a tenant serves pays
// neither tuning nor transform latency.
//
// Hot weight swap — the swap-without-drop protocol:
//
//   swap_weights(tenant, path)
//     1. unique_lock tenant->swap_mu      — waits for in-flight batches
//        (dispatch holds it shared), blocks new ones;
//     2. nn::load_weights(model, path)    — in-place update; every Param's
//        version is bumped by the loader;
//     3. weight_epoch++ and unlock        — dispatch resumes on new weights.
//
// The FilterTransformCache is keyed on (weights address, Param::version,
// α, r, deconv), so the version bump IS the invalidation: the first post-
// swap batch misses, computes the new ĝ, and the miss path drops the stale
// versions of the same weights. Batches that were in flight during step 1
// already finished on the old transforms — no request is ever dropped or
// served a torn weight state. An optional post-swap prewarm (under a shared
// lock, concurrent with traffic) re-populates the transform cache so the
// first real request doesn't pay the α·FH·IC·OC transforms either.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "nn/model.hpp"
#include "serve/request.hpp"

namespace iwg::sim {
struct DeviceProfile;
}

namespace iwg::serve {

/// Token-bucket admission limit: sustained `rate_per_sec` with bursts up to
/// `burst` requests. rate_per_sec <= 0 disables the limit entirely.
struct TokenBucketConfig {
  double rate_per_sec = 0.0;
  double burst = 1.0;
};

/// Thread-safe token bucket. Tokens accrue continuously at rate_per_sec up
/// to the burst capacity; try_acquire spends one per admitted request.
class TokenBucket {
 public:
  explicit TokenBucket(TokenBucketConfig cfg);

  /// Consume one token if available (always true when unlimited).
  bool try_acquire(Clock::time_point now = Clock::now());

  /// Current fill after accrual, without spending (observability — the
  /// /statusz page reports each tenant's admission headroom). Returns -1
  /// when the bucket is unlimited (rate_per_sec <= 0).
  double available(Clock::time_point now = Clock::now());

 private:
  const TokenBucketConfig cfg_;
  std::mutex mu_;
  double tokens_;
  Clock::time_point last_;
};

/// One tenant's scheduling identity.
struct TenantConfig {
  std::string id;
  /// Weighted-fair share: under backlog, a tenant's throughput share tends
  /// to weight / Σ weights. Must be > 0.
  double weight = 1.0;
  TokenBucketConfig rate;  ///< admission rate limit (default: unlimited)
  /// Deadline applied by submit() when the caller gives none; 0 → none.
  std::chrono::microseconds default_deadline{0};
  /// Expected image geometry (pre-tune/pre-warm target; other shapes are
  /// still served via the ragged path).
  std::int64_t image_h = 16;
  std::int64_t image_w = 16;
  std::int64_t channels = 3;
  std::size_t queue_capacity = 256;  ///< per-tenant pending bound
  std::size_t max_batch = 8;         ///< micro-batch cap for this tenant
};

/// What register_model does before the tenant takes traffic.
struct WarmupOptions {
  /// One throwaway batch to populate the FilterTransformCache and size the
  /// scratch arenas.
  bool prewarm = true;
  /// Resolve conv plans for the tenant's batch geometry at registration
  /// (needs `device`; square images only).
  bool pretune_plans = false;
  const sim::DeviceProfile* device = nullptr;
  /// Optional plan DB merged into PlanCache::global() first, so pretune
  /// resolves from tuned entries instead of re-searching.
  std::string plan_db;
};

class ModelRegistry {
 public:
  /// One registered tenant. The swap lock is the entire hot-swap protocol:
  /// dispatch holds it shared for the duration of a batch, swap_weights
  /// holds it exclusive for the in-place weight load.
  struct Tenant {
    Tenant(TenantConfig c, nn::Model m)
        : cfg(std::move(c)), model(std::move(m)) {}

    const TenantConfig cfg;
    nn::Model model;
    mutable std::shared_mutex swap_mu;
    /// Completed swaps (monotone; readable without the lock).
    std::atomic<std::uint64_t> weight_epoch{0};

    /// Smallest Param::version across the model (shared-locked read). Every
    /// swap bumps every version, so this is monotone across swaps.
    std::uint64_t min_param_version();
  };
  using TenantPtr = std::shared_ptr<Tenant>;

  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Register a named model. Warming runs BEFORE the tenant becomes
  /// findable, so a replica never takes traffic cold. Throws on empty or
  /// duplicate id, or weight <= 0.
  TenantPtr register_model(nn::Model model, TenantConfig cfg,
                           const WarmupOptions& warm = {});

  /// Remove a tenant from the table. Callers holding a TenantPtr (an
  /// in-flight batch) keep the model alive until they drop it. Returns
  /// false when the id is unknown.
  bool deregister(const std::string& id);

  TenantPtr find(const std::string& id) const;  ///< nullptr when unknown
  std::vector<TenantPtr> tenants() const;       ///< snapshot, id-sorted
  std::size_t size() const;

  /// Hot weight swap (see file comment). Loads weights from `path` under
  /// the tenant's exclusive swap lock, bumps weight_epoch, then (by
  /// default) prewarms the transform cache under a shared lock. Returns the
  /// model's new min Param::version. Throws on unknown tenant or a
  /// mismatched weight file; a mid-file mismatch can leave earlier params
  /// loaded, but each written param's version was bumped (no stale ĝ) and
  /// the exclusive lock was held throughout (no torn batch observed it).
  std::uint64_t swap_weights(const std::string& id, const std::string& path,
                             bool prewarm_after = true);

 private:
  static void warm(Tenant& t, const WarmupOptions& w);

  mutable std::mutex mu_;
  std::map<std::string, TenantPtr> tenants_;
};

}  // namespace iwg::serve
