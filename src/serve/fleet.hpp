// FleetScheduler: multi-tenant serving over one shared worker pool.
//
// The single-ServingSession design scales one model; the fleet scales N.
// A ModelRegistry owns the tenant table (model + weight version + priority
// weight + rate limit + default SLO deadline) and the scheduler replaces
// per-session worker loops with fleet-level dispatch:
//
//   submit(tenant, image)
//     ─▶ token-bucket admission (kRejected "rate limited" / "queue full")
//     ─▶ per-tenant queue, EDF- or FIFO-ordered
//     ─▶ weighted-fair dequeue across tenants (shared worker threads)
//     ─▶ run_model_batch under the tenant's shared swap lock
//     ─▶ per-request Response futures
//
// Scheduling decision rule (two levels):
//
//   * ACROSS tenants — weighted fair queuing by virtual time. Each tenant
//     carries vtime; dispatching a batch of k requests advances it by
//     k / weight, and among tenants with a dispatchable batch the scheduler
//     picks the smallest vtime. A tenant going empty→nonempty is caught up
//     to the global virtual clock (no credit hoarding), so under sustained
//     backlog per-tenant throughput shares converge to weight / Σ weights
//     while an idle tenant's unused share is redistributed.
//   * WITHIN a tenant — earliest deadline first (TenantOrder::kEdf,
//     default): submissions insert in deadline order (no-deadline last,
//     FIFO among ties), so the batch assembled under overload spends the
//     model's time on the requests that can still make their SLO.
//     TenantOrder::kFifo preserves arrival order for comparison — the
//     FIFO-vs-EDF deadline-miss experiment in bench/serving_throughput.
//
// A tenant's batch is "dispatchable" when it has max_batch requests queued,
// its oldest pending request has waited max_wait, or the tenant is closed
// (draining). Mixed-shape batches ship as one ragged dispatch, exactly as
// in ServingSession — the fleet never pads.
//
// Hot swap: ModelRegistry::swap_weights runs under the tenant's exclusive
// swap lock while dispatch holds it shared — in-flight batches finish on
// the old weights/transforms, new batches see the new version, and no
// request is dropped (see registry.hpp for the protocol).
//
// Every future still resolves: admission failures resolve synchronously;
// queued requests whose deadline lapses resolve kExpired; remove_tenant
// and stop either drain the backlog or resolve it kShutdown.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/registry.hpp"

namespace iwg::obs {
class Watchdog;
}

namespace iwg::serve {

/// Intra-tenant queue ordering.
enum class TenantOrder {
  kFifo,  ///< arrival order
  kEdf,   ///< earliest deadline first; no-deadline requests last
};

struct FleetConfig {
  unsigned workers = 2;
  /// Longest a tenant's incomplete batch is held open waiting for more
  /// arrivals, measured from when its queue last became nonempty.
  std::chrono::microseconds max_wait{2000};
  /// How long an idle worker parks before running idle-time housekeeping
  /// (arena trim, report flush).
  std::chrono::microseconds idle_wait{50000};
  TenantOrder order = TenantOrder::kEdf;
  /// Applied to every add_tenant registration (prewarm / pretune / plan DB).
  WarmupOptions warmup;
  /// Idle workers trim scratch arenas down to this retained capacity;
  /// negative → never trim.
  std::int64_t idle_trim_bytes = 64 * 1024;
  /// Period for trace/metrics report flushes from the serving loop;
  /// zero → no periodic flush. IWG_REPORT_FLUSH_MS overrides at
  /// construction (see serve::resolve_flush_period).
  std::chrono::microseconds flush_period{0};
  /// When set, each fleet worker registers a named heartbeat here and beats
  /// it once per dispatch-loop iteration — what obs::AdminServer's /healthz
  /// watches. Must outlive the scheduler.
  obs::Watchdog* watchdog = nullptr;
};

class FleetScheduler {
 public:
  /// Starts the worker pool; the fleet accepts add_tenant/submit when the
  /// constructor returns.
  explicit FleetScheduler(FleetConfig cfg);
  ~FleetScheduler();  ///< stop(/*drain=*/false)

  FleetScheduler(const FleetScheduler&) = delete;
  FleetScheduler& operator=(const FleetScheduler&) = delete;

  /// Register a tenant model (warmed per config().warmup before it becomes
  /// routable) and start serving it. Throws on duplicate/empty id or after
  /// stop().
  void add_tenant(nn::Model model, TenantConfig cfg);

  /// Deregister a tenant. Admission closes immediately; drain=true serves
  /// the backlog first, drain=false resolves it kShutdown ("tenant
  /// deregistered"). Either way every queued + parked future resolves and
  /// in-flight batches finish (zero drops). Returns false for unknown ids.
  bool remove_tenant(const std::string& id, bool drain = true);

  /// Submit one H×W×C image for `tenant` (default overload applies the
  /// tenant's default_deadline). Unknown tenants resolve kRejected.
  std::future<Response> submit(const std::string& tenant, TensorF image);
  std::future<Response> submit(const std::string& tenant, TensorF image,
                               Deadline deadline);

  /// Hot weight swap, forwarded to the registry (see registry.hpp).
  /// Returns the model's new min Param::version.
  std::uint64_t swap_weights(const std::string& tenant,
                             const std::string& path);

  /// Stop the fleet: close every tenant, then drain (serve) or shed
  /// (kShutdown) the backlogs and join the workers. Idempotent.
  void stop(bool drain = true);

  struct TenantStats {
    std::int64_t accepted = 0;   ///< admitted into the tenant queue
    std::int64_t completed = 0;  ///< served with kOk
    std::int64_t rejected = 0;   ///< refused at admission (rate/full/closed)
    std::int64_t expired = 0;    ///< deadline-shed before dispatch
    std::int64_t shed = 0;       ///< kShutdown-resolved at stop/deregister
    std::int64_t batches = 0;
    std::int64_t indirect_batches = 0;
    bool all_resolved() const { return accepted == completed + expired + shed; }
  };
  struct Stats {
    TenantStats total;  ///< sums across live and deregistered tenants
    std::map<std::string, TenantStats> tenants;
    bool all_resolved() const { return total.all_resolved(); }
  };
  Stats stats() const;

  /// Prometheus text exposition of the process registry — including the
  /// serve.tenant.* families with {tenant="..."} labels.
  std::string stats_report() const;

  /// Readiness, what obs::AdminServer's /readyz gates on: at least one
  /// tenant is registered and the fleet is accepting. Registration warms a
  /// tenant BEFORE it becomes routable, so a listed tenant is a warm one.
  bool ready() const;

  /// The /statusz page: per-tenant queue depth, token-bucket fill, WFQ
  /// virtual time, and weight epoch, plus process-wide plan-cache stats,
  /// scratch-arena high-water, and the resolved host ISA — one JSON object.
  std::string statusz_json() const;

  ModelRegistry& registry() { return registry_; }
  const FleetConfig& config() const { return cfg_; }
  std::size_t tenant_count() const;
  std::size_t queue_depth(const std::string& tenant) const;

 private:
  /// Mutable scheduler state of one tenant; queue and vtime are guarded by
  /// the fleet mutex, stats are atomics (run_batch updates them off-lock).
  struct TenantState {
    explicit TenantState(ModelRegistry::TenantPtr t)
        : tenant(std::move(t)), bucket(tenant->cfg.rate) {}

    const ModelRegistry::TenantPtr tenant;
    TokenBucket bucket;
    std::deque<Request> q;  ///< EDF- or FIFO-ordered (guarded by fleet mu_)
    bool closed = false;    ///< no more admissions; backlog drains/sheds
    /// When the queue last became nonempty — the max_wait anchor.
    Clock::time_point since{};
    double vtime = 0.0;  ///< weighted-fair virtual finish time

    std::atomic<std::int64_t> accepted{0};
    std::atomic<std::int64_t> completed{0};
    std::atomic<std::int64_t> rejected{0};
    std::atomic<std::int64_t> expired{0};
    std::atomic<std::int64_t> shed{0};
    std::atomic<std::int64_t> batches{0};
    std::atomic<std::int64_t> indirect_batches{0};
  };
  using StatePtr = std::shared_ptr<TenantState>;

  struct WorkItem {
    StatePtr st;  ///< null → idle tick (or exit)
    std::vector<Request> requests;
    int shape_classes = 1;
    bool exit = false;
  };

  std::future<Response> submit_impl(const std::string& tenant, TensorF image,
                                    std::optional<Deadline> deadline);
  void worker_loop(unsigned worker_idx);
  WorkItem next_batch();
  void run_batch(WorkItem& item);
  /// Resolve kExpired for every queued request past its deadline (holding
  /// the fleet mutex — same discipline as the Batcher's parking lot).
  void shed_expired_locked(Clock::time_point now);
  void maybe_flush();
  static void accumulate(TenantStats& into, const TenantState& st);

  FleetConfig cfg_;
  ModelRegistry registry_;
  mutable std::mutex mu_;
  std::condition_variable cv_;        ///< workers: arrivals / closures
  std::condition_variable drain_cv_;  ///< remove_tenant: queue emptied
  std::map<std::string, StatePtr> states_;
  /// Stats of deregistered tenants, kept so fleet accounting stays exact
  /// across remove_tenant (the state object survives in-flight batches).
  std::vector<StatePtr> retired_;
  bool stopping_ = false;
  double global_vtime_ = 0.0;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> stopped_{false};
  std::atomic<std::int64_t> last_flush_us_{0};  ///< steady-clock μs
  std::mutex stop_mu_;
};

}  // namespace iwg::serve
