#include "serve/fleet.hpp"

#include <algorithm>
#include <limits>
#include <locale>
#include <sstream>

#include "common/arena.hpp"
#include "common/trace.hpp"
#include "core/host_kernels.hpp"
#include "core/plan_cache.hpp"
#include "obs/watchdog.hpp"
#include "serve/dispatch.hpp"

namespace iwg::serve {

namespace {

trace::Counter& enqueued_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("serve.enqueued");
  return c;
}

trace::Counter& rejected_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("serve.rejected");
  return c;
}

trace::Counter& expired_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("serve.expired");
  return c;
}

trace::Histogram& depth_hist() {
  static trace::Histogram& h =
      trace::MetricsRegistry::global().histogram("serve.queue_depth");
  return h;
}

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Resolve one request on a terminal non-kOk path (reject, shed, shutdown),
/// emitting the terminal span into its flow chain — the fleet's counterpart
/// of RequestQueue's admission resolve.
void resolve_now(Request& r, Status status, const char* reason) {
  trace::ContextScope ctx_scope(r.ctx);
  IWG_TRACE_SPAN(span, "serve.reject", "serve");
  span.arg("status", status_name(status));
  Response resp;
  resp.status = status;
  resp.reason = reason;
  resp.latency_us = std::chrono::duration<double, std::micro>(
                        Clock::now() - r.enqueue_time)
                        .count();
  trace::MetricsRegistry::global()
      .histogram(std::string("serve.latency_us.") + status_name(status))
      .record(resp.latency_us);
  r.promise.set_value(std::move(resp));
}

/// Distinct H×W×C shapes among a batch (small k; quadratic scan is fine).
int count_shape_classes(const std::vector<Request>& reqs) {
  int classes = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    bool seen = false;
    for (std::size_t j = 0; j < i && !seen; ++j) {
      seen = same_image_shape(reqs[i].input, reqs[j].input);
    }
    if (!seen) ++classes;
  }
  return classes;
}

}  // namespace

FleetScheduler::FleetScheduler(FleetConfig cfg) : cfg_(cfg) {
  IWG_CHECK(cfg_.workers >= 1);
  cfg_.flush_period = resolve_flush_period(cfg_.flush_period);
  workers_.reserve(cfg_.workers);
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

FleetScheduler::~FleetScheduler() { stop(/*drain=*/false); }

void FleetScheduler::add_tenant(nn::Model model, TenantConfig cfg) {
  {
    std::lock_guard lock(mu_);
    IWG_CHECK_MSG(!stopping_, "add_tenant after stop");
    IWG_CHECK_MSG(states_.find(cfg.id) == states_.end(),
                  "tenant already registered: " + cfg.id);
  }
  // Warm outside the fleet lock (pretune/prewarm run real inference), then
  // publish; the registry rejects duplicate ids racing past the check.
  ModelRegistry::TenantPtr t =
      registry_.register_model(std::move(model), std::move(cfg), cfg_.warmup);
  std::lock_guard lock(mu_);
  states_.emplace(t->cfg.id, std::make_shared<TenantState>(t));
}

std::future<Response> FleetScheduler::submit(const std::string& tenant,
                                            TensorF image) {
  return submit_impl(tenant, std::move(image), std::nullopt);
}

std::future<Response> FleetScheduler::submit(const std::string& tenant,
                                            TensorF image, Deadline deadline) {
  return submit_impl(tenant, std::move(image), deadline);
}

std::future<Response> FleetScheduler::submit_impl(
    const std::string& tenant, TensorF image,
    std::optional<Deadline> deadline) {
  IWG_CHECK_MSG(image.rank() == 3, "submit expects one H x W x C image");
  Request r;
  r.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  r.input = std::move(image);
  r.enqueue_time = Clock::now();
  // Mint the flight-recorder identity here, exactly as ServingSession does:
  // the enqueue span runs on the client thread and the Request carries the
  // context to whichever worker dispatches/completes it.
  r.ctx.trace_id = trace::new_trace_id();
  r.ctx.request_id = r.id;
  trace::ContextScope ctx_scope(r.ctx);
  IWG_TRACE_SPAN(span, "serve.enqueue", "serve");
  span.arg("tenant", tenant);
  std::future<Response> fut = r.promise.get_future();

  std::unique_lock lock(mu_);
  const auto it = states_.find(tenant);
  if (it == states_.end()) {
    lock.unlock();
    rejected_counter().add();
    resolve_now(r, Status::kRejected, "unknown tenant");
    return fut;
  }
  StatePtr sp = it->second;
  TenantState& st = *sp;
  if (st.closed || stopping_) {
    lock.unlock();
    st.rejected.fetch_add(1, std::memory_order_relaxed);
    TenantMetrics::of(tenant).rejected.add();
    resolve_now(r, Status::kShutdown, "tenant closed");
    return fut;
  }
  r.deadline = deadline.has_value()
                   ? *deadline
                   : (st.tenant->cfg.default_deadline.count() > 0
                          ? Deadline::after(st.tenant->cfg.default_deadline)
                          : Deadline::never());
  if (!st.bucket.try_acquire(r.enqueue_time)) {
    lock.unlock();
    st.rejected.fetch_add(1, std::memory_order_relaxed);
    TenantMetrics::of(tenant).rejected.add();
    rejected_counter().add();
    resolve_now(r, Status::kRejected, "rate limited");
    return fut;
  }
  if (st.q.size() >= st.tenant->cfg.queue_capacity) {
    lock.unlock();
    st.rejected.fetch_add(1, std::memory_order_relaxed);
    TenantMetrics::of(tenant).rejected.add();
    rejected_counter().add();
    resolve_now(r, Status::kRejected, "queue full");
    return fut;
  }

  if (st.q.empty()) {
    // max_wait anchor, and the WFQ empty→nonempty catch-up: a returning
    // tenant resumes at the global virtual clock instead of cashing in
    // credit hoarded while idle.
    st.since = r.enqueue_time;
    st.vtime = std::max(st.vtime, global_vtime_);
  }
  auto pos = st.q.end();
  if (cfg_.order == TenantOrder::kEdf && r.deadline.has_deadline()) {
    // Deadline-sorted insertion: before the first request that is
    // deadline-less or strictly later (FIFO among equal deadlines).
    pos = std::find_if(st.q.begin(), st.q.end(), [&](const Request& o) {
      return !o.deadline.has_deadline() || o.deadline.at() > r.deadline.at();
    });
  }
  st.q.insert(pos, std::move(r));
  st.accepted.fetch_add(1, std::memory_order_relaxed);
  enqueued_counter().add();
  depth_hist().record(static_cast<double>(st.q.size()));
  lock.unlock();
  cv_.notify_one();
  return fut;
}

void FleetScheduler::shed_expired_locked(Clock::time_point now) {
  for (auto& [id, sp] : states_) {
    TenantState& st = *sp;
    for (auto it = st.q.begin(); it != st.q.end();) {
      if (!it->deadline.expired(now)) {
        ++it;
        continue;
      }
      expired_counter().add();
      st.expired.fetch_add(1, std::memory_order_relaxed);
      TenantMetrics::of(id).expired.add();
      resolve_now(*it, Status::kExpired, "deadline expired before dispatch");
      it = st.q.erase(it);
    }
    if (st.q.empty()) drain_cv_.notify_all();
  }
}

FleetScheduler::WorkItem FleetScheduler::next_batch() {
  std::unique_lock lock(mu_);
  for (;;) {
    const Clock::time_point now = Clock::now();
    shed_expired_locked(now);

    StatePtr pick;
    bool any_pending = false;
    Clock::time_point earliest_due = Clock::time_point::max();
    for (auto& [id, sp] : states_) {
      TenantState& st = *sp;
      if (st.q.empty()) continue;
      any_pending = true;
      const bool ready = st.q.size() >= st.tenant->cfg.max_batch ||
                         st.closed || stopping_ ||
                         now >= st.since + cfg_.max_wait;
      if (!ready) {
        earliest_due = std::min(earliest_due, st.since + cfg_.max_wait);
        continue;
      }
      if (pick == nullptr || st.vtime < pick->vtime) pick = sp;
    }

    if (pick != nullptr) {
      TenantState& st = *pick;
      WorkItem item;
      item.st = pick;
      const std::size_t kmax = st.tenant->cfg.max_batch;
      while (!st.q.empty() && item.requests.size() < kmax) {
        item.requests.push_back(std::move(st.q.front()));
        st.q.pop_front();
      }
      item.shape_classes = count_shape_classes(item.requests);
      if (!st.q.empty()) st.since = now;  // remainder waits afresh
      // WFQ bookkeeping: the service start advances the global virtual
      // clock; the tenant pays k/weight of virtual time for the batch.
      global_vtime_ = std::max(global_vtime_, st.vtime);
      st.vtime += static_cast<double>(item.requests.size()) /
                  st.tenant->cfg.weight;
      if (st.q.empty()) drain_cv_.notify_all();
      return item;
    }

    if (stopping_ && !any_pending) {
      WorkItem item;
      item.exit = true;
      return item;
    }

    const Clock::time_point idle_until = now + cfg_.idle_wait;
    const Clock::time_point until =
        any_pending ? std::min(earliest_due, idle_until) : idle_until;
    const bool timed_out =
        cv_.wait_until(lock, until) == std::cv_status::timeout;
    if (timed_out && !any_pending) {
      return WorkItem{};  // idle tick: housekeeping in the worker
    }
  }
}

void FleetScheduler::run_batch(WorkItem& item) {
  DispatchSpec spec;
  spec.indirect = item.shape_classes > 1;
  spec.shape_classes = item.shape_classes;
  spec.pad_to = 0;  // the fleet never pads; short batches dispatch as-is
  spec.tenant = item.st->tenant->cfg.id;
  DispatchResult res;
  {
    // Shared side of the hot-swap protocol: swap_weights holds this
    // exclusively, so a batch never observes a torn weight state and a
    // swap waits for in-flight batches instead of dropping them.
    std::shared_lock swap_lock(item.st->tenant->swap_mu);
    res = run_model_batch(item.st->tenant->model, item.requests, spec);
  }
  item.st->completed.fetch_add(res.completed, std::memory_order_relaxed);
  item.st->batches.fetch_add(1, std::memory_order_relaxed);
  if (res.indirect) {
    item.st->indirect_batches.fetch_add(1, std::memory_order_relaxed);
  }
}

void FleetScheduler::worker_loop(unsigned worker_idx) {
  // Liveness signal: one beat per loop iteration. next_batch parks at most
  // idle_wait, so a healthy worker beats well inside any sane stall
  // timeout; the handle dropping at return deregisters us from the scan.
  obs::Watchdog::HeartbeatPtr hb;
  if (cfg_.watchdog != nullptr) {
    hb = cfg_.watchdog->watch("fleet.worker." + std::to_string(worker_idx));
  }
  for (;;) {
    if (hb != nullptr) hb->beat();
    WorkItem item = next_batch();
    if (hb != nullptr) hb->beat();
    if (item.exit) return;
    if (item.st == nullptr) {
      // Idle housekeeping, as in ServingSession: return scratch peaks to
      // the allocator and keep reports fresh.
      if (cfg_.idle_trim_bytes >= 0) {
        const auto keep = static_cast<std::size_t>(cfg_.idle_trim_bytes);
        ScratchArena::local().trim(keep);
        ScratchArena::trim_all(keep);
      }
      maybe_flush();
      continue;
    }
    run_batch(item);
    maybe_flush();
  }
}

void FleetScheduler::maybe_flush() {
  if (cfg_.flush_period.count() <= 0) return;
  const std::int64_t now = steady_now_us();
  std::int64_t last = last_flush_us_.load(std::memory_order_relaxed);
  if (now - last < cfg_.flush_period.count()) return;
  if (last_flush_us_.compare_exchange_strong(last, now,
                                             std::memory_order_relaxed)) {
    trace::flush_report();
  }
}

bool FleetScheduler::remove_tenant(const std::string& id, bool drain) {
  StatePtr sp;
  {
    std::unique_lock lock(mu_);
    const auto it = states_.find(id);
    if (it == states_.end()) return false;
    sp = it->second;
    sp->closed = true;   // new submits resolve kShutdown
    cv_.notify_all();    // closed ⇒ the backlog is immediately dispatchable
    if (drain && !stopping_) {
      drain_cv_.wait(lock, [&] { return sp->q.empty(); });
    } else {
      std::deque<Request> orphans;
      orphans.swap(sp->q);
      lock.unlock();
      for (Request& r : orphans) {
        sp->shed.fetch_add(1, std::memory_order_relaxed);
        resolve_now(r, Status::kShutdown, "tenant deregistered");
      }
      lock.lock();
    }
    // erase() can lose to a concurrent remove_tenant of the same id while
    // the lock was dropped above — only the winner retires the state (the
    // retired list must count each tenant's stats exactly once).
    if (states_.erase(id) > 0) {
      retired_.push_back(sp);  // in-flight batches still update its stats
    }
  }
  registry_.deregister(id);
  return true;
}

void FleetScheduler::stop(bool drain) {
  std::lock_guard stop_lock(stop_mu_);
  if (stopped_.load()) return;
  std::deque<Request> orphans;
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
    for (auto& [id, sp] : states_) {
      sp->closed = true;
      if (!drain) {
        for (Request& r : sp->q) {
          sp->shed.fetch_add(1, std::memory_order_relaxed);
          orphans.push_back(std::move(r));
        }
        sp->q.clear();
      }
    }
  }
  cv_.notify_all();
  drain_cv_.notify_all();  // a concurrent remove_tenant(drain) must not hang
  for (Request& r : orphans) {
    resolve_now(r, Status::kShutdown, "fleet stopped before dispatch");
  }
  for (auto& t : workers_) t.join();
  stopped_.store(true);
}

std::uint64_t FleetScheduler::swap_weights(const std::string& tenant,
                                           const std::string& path) {
  return registry_.swap_weights(tenant, path);
}

void FleetScheduler::accumulate(TenantStats& into, const TenantState& st) {
  into.accepted += st.accepted.load();
  into.completed += st.completed.load();
  into.rejected += st.rejected.load();
  into.expired += st.expired.load();
  into.shed += st.shed.load();
  into.batches += st.batches.load();
  into.indirect_batches += st.indirect_batches.load();
}

FleetScheduler::Stats FleetScheduler::stats() const {
  Stats s;
  std::lock_guard lock(mu_);
  for (const auto& [id, sp] : states_) {
    accumulate(s.tenants[id], *sp);
  }
  for (const StatePtr& sp : retired_) {
    accumulate(s.tenants[sp->tenant->cfg.id], *sp);
  }
  for (const auto& [id, ts] : s.tenants) {
    s.total.accepted += ts.accepted;
    s.total.completed += ts.completed;
    s.total.rejected += ts.rejected;
    s.total.expired += ts.expired;
    s.total.shed += ts.shed;
    s.total.batches += ts.batches;
    s.total.indirect_batches += ts.indirect_batches;
  }
  return s;
}

std::string FleetScheduler::stats_report() const {
  return trace::MetricsRegistry::global().prometheus_text();
}

bool FleetScheduler::ready() const {
  std::lock_guard lock(mu_);
  return !stopping_ && !states_.empty();
}

std::string FleetScheduler::statusz_json() const {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(9);
  const core::CacheStats pc = core::PlanCache::global().stats();
  os << "{\"workers\":" << cfg_.workers
     << ",\"host_isa\":\"" << core::host_isa_name(core::host_isa()) << '"'
     << ",\"arena_high_water_bytes\":" << ScratchArena::max_high_water()
     << ",\"plan_cache\":{\"lookups\":" << pc.lookups
     << ",\"hits\":" << pc.hits << ",\"misses\":" << pc.misses
     << ",\"evictions\":" << pc.evictions << ",\"entries\":" << pc.entries
     << ",\"tuning_time_s\":" << pc.tuning_time_s << "},\"tenants\":{";
  std::lock_guard lock(mu_);
  bool first = true;
  const Clock::time_point now = Clock::now();
  for (const auto& [id, sp] : states_) {
    if (!first) os << ',';
    first = false;
    // Tenant ids are registry-validated (no dots; safe unescaped modulo
    // quotes, which register_model rejects implicitly via the metric-name
    // convention) — but escape defensively anyway.
    os << '"';
    for (char c : id) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << "\":{\"queue_depth\":" << sp->q.size()
       << ",\"closed\":" << (sp->closed ? "true" : "false")
       << ",\"vtime\":" << sp->vtime
       << ",\"weight\":" << sp->tenant->cfg.weight
       << ",\"weight_epoch\":"
       << sp->tenant->weight_epoch.load(std::memory_order_relaxed)
       << ",\"bucket_tokens\":" << sp->bucket.available(now)
       << ",\"accepted\":" << sp->accepted.load(std::memory_order_relaxed)
       << ",\"completed\":" << sp->completed.load(std::memory_order_relaxed)
       << ",\"rejected\":" << sp->rejected.load(std::memory_order_relaxed)
       << ",\"expired\":" << sp->expired.load(std::memory_order_relaxed)
       << '}';
  }
  os << "},\"global_vtime\":" << global_vtime_
     << ",\"stopping\":" << (stopping_ ? "true" : "false") << '}';
  return os.str();
}

std::size_t FleetScheduler::tenant_count() const {
  std::lock_guard lock(mu_);
  return states_.size();
}

std::size_t FleetScheduler::queue_depth(const std::string& tenant) const {
  std::lock_guard lock(mu_);
  const auto it = states_.find(tenant);
  return it == states_.end() ? 0 : it->second->q.size();
}

}  // namespace iwg::serve
