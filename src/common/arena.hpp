// Thread-local scratch arena for host hot paths.
//
// The host engine's inner loops used to heap-allocate `std::vector` scratch
// (transformed-input rows, state accumulators, im2col patches) inside every
// `parallel_for` task — on a training run that is millions of allocator
// round trips for buffers whose lifetime is exactly one task body. The
// arena replaces them with a per-thread bump allocator: a task opens a
// `Scope`, bump-allocates what it needs, and the whole lot is released in
// O(1) when the scope dies. Blocks are chained (never reallocated), so a
// grow while a scope is open cannot invalidate pointers handed out earlier.
//
// Sizing: the host engine's per-task footprint is bounded by
// α·(FH·IC + OC) floats (transformed-input ring + state accumulator), i.e.
// O(α·max(IC, OC)); the first 64 KiB block covers every layer in the
// training experiments, and growth is geometric for anything larger.
// `max_high_water()` is exported to the metrics registry
// (`host.arena.high_water_bytes`) so arena pressure is visible in reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace iwg {

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// The calling thread's arena (lazily constructed, lives until thread
  /// exit). Pool workers and the calling thread each get their own, so no
  /// synchronization is needed on the hot path.
  static ScratchArena& local();

  /// RAII mark/reset: allocations made while a Scope is alive are released
  /// together when it is destroyed. Scopes nest (a task may call a helper
  /// that opens its own).
  class Scope {
   public:
    explicit Scope(ScratchArena& a)
        : a_(a), block_(a.cur_block_), off_(a.cur_off_) {
      a.enter_scope();
    }
    ~Scope() { a_.exit_scope(block_, off_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ScratchArena& a_;
    std::size_t block_, off_;
  };

  /// Bump allocation; offsets advance in 64-byte quanta. Earlier pointers
  /// stay valid across growth (a new block is chained, nothing moves).
  void* alloc(std::size_t bytes);
  float* alloc_floats(std::size_t n) {
    return static_cast<float*>(alloc(n * sizeof(float)));
  }

  /// Peak bytes simultaneously live in this thread's arena.
  std::size_t high_water() const { return high_water_; }
  /// Total bytes held by this arena's blocks (retained across scopes).
  std::size_t capacity() const;

  /// Largest high_water() any thread's arena has reached (process-wide,
  /// monotonic — the observability hook).
  static std::size_t max_high_water();

  /// Release trailing unused blocks until `capacity() <= keep_bytes` (or no
  /// further block is droppable). Only safe — and only effective — while no
  /// Scope is open on this arena (calls under an open scope are no-ops:
  /// pointers handed out earlier must stay valid). A long-running process
  /// that served one outsized request can return that peak to the allocator
  /// instead of pinning it for the life of the thread; `high_water()` stays
  /// monotonic by design.
  void trim(std::size_t keep_bytes);

  /// Ask *every* thread's arena to trim itself to `keep_bytes`. Thread-local
  /// arenas are unsynchronized by design, so this cannot touch them
  /// directly: it bumps a process-wide epoch that each arena checks when its
  /// outermost Scope opens, trimming itself on its own thread before any
  /// allocation. The check is one relaxed atomic load per outermost scope.
  static void trim_all(std::size_t keep_bytes);

 private:
  friend class Scope;
  struct Block {
    std::unique_ptr<std::byte[]> data;  ///< raw storage (cap + kAlign - 1)
    std::byte* base = nullptr;          ///< data rounded up to kAlign
    std::size_t cap = 0;
  };

  void enter_scope();
  void exit_scope(std::size_t block, std::size_t off);
  void grow(std::size_t min_bytes);

  static constexpr std::size_t kAlign = 64;
  static constexpr std::size_t kFirstBlockBytes = std::size_t{1} << 16;

  std::vector<Block> blocks_;
  std::vector<std::size_t> prefix_;  ///< bytes in blocks before index i
  std::size_t cur_block_ = 0;
  std::size_t cur_off_ = 0;
  std::size_t high_water_ = 0;
  int scope_depth_ = 0;
  std::uint64_t trim_epoch_seen_ = 0;  ///< last trim_all epoch honored
};

}  // namespace iwg
