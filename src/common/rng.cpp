#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace iwg {

float Rng::normal() {
  // Box–Muller; draws until u1 is nonzero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform_double(0.0, 1.0);
  } while (u1 <= 0.0);
  const double u2 = uniform_double(0.0, 1.0);
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return static_cast<float>(mag *
                            std::cos(2.0 * std::numbers::pi * u2));
}

}  // namespace iwg
