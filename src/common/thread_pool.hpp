// A small fixed-size thread pool with a parallel_for helper.
//
// The library parallelizes across convolution "blocks" (the simulator's
// thread blocks are independent between barriers, and host-engine row tiles
// are independent). On a 1-core machine the pool degrades gracefully to
// inline execution.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace iwg {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency(); the calling thread also
  /// participates in parallel_for, so a pool of size 1 still overlaps work.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Run fn(i) for i in [0, count), distributing chunks across the pool and
  /// the calling thread. Blocks until all iterations complete. Exceptions
  /// from fn propagate to the caller (first one wins). Safe to call from
  /// inside pool workers (nested parallel_for): the caller waits on
  /// iteration completion, never on queued helper tasks, so saturated
  /// workers cannot deadlock each other.
  void parallel_for(std::int64_t count,
                    const std::function<void(std::int64_t)>& fn);

  /// Same, but each dynamic claim takes `grain` consecutive indices, so
  /// per-claim overhead (one atomic RMW plus the std::function call) is
  /// amortized across the chunk. Use for loops whose per-index body is
  /// tiny (host-engine row/column tasks); grain <= 1 is the per-index
  /// behavior above. Every index in [0, count) runs exactly once whatever
  /// the grain — including grains that do not divide count.
  void parallel_for(std::int64_t count, std::int64_t grain,
                    const std::function<void(std::int64_t)>& fn);

  /// Process-wide pool (lazily constructed).
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience wrappers over the global pool.
void parallel_for(std::int64_t count,
                  const std::function<void(std::int64_t)>& fn);
void parallel_for(std::int64_t count, std::int64_t grain,
                  const std::function<void(std::int64_t)>& fn);

/// Default chunk size for fine-grained loops on the global pool: aims at
/// ~8 chunks per executor so dynamic claiming can still load-balance while
/// tiny tasks amortize pool dispatch.
std::int64_t parallel_grain(std::int64_t count);

}  // namespace iwg
