// Observability: a low-overhead scoped-span tracer and a process-wide
// metrics registry.
//
// The tracer records completed spans (Chrome trace-event "X" phases) into a
// bounded, mutex-protected ring buffer and exports them as Chrome
// trace-event JSON loadable in chrome://tracing or Perfetto. Spans nest
// naturally (nesting is reconstructed from time containment per thread) and
// carry typed key/value args, which is how the conv paths attach kernel
// variant, α, segment extents, and the analytic t_compute/t_dram/t_l2/t_smem
// resource split to every segment they execute.
//
// Cost discipline: when tracing is disabled (the default), a span is one
// relaxed atomic load plus a thread-local read — bench/observability_overhead
// proves this costs < 1% on a conv2d loop. Defining IWG_TRACE_DISABLE
// compiles the IWG_TRACE_SCOPE/IWG_TRACE_SPAN macro sites away entirely.
//
// The metrics registry holds named monotonic counters (lock-free atomic
// adds, safe under parallel_for) and value distributions
// (count/sum/min/max/p50/p99 over a bounded reservoir). Objects returned by
// counter()/distribution() have stable addresses for the life of the
// process, so hot paths cache references. reset() zeroes values but never
// invalidates those references.
//
// The tracer also acts as a request-scoped flight recorder: a thread-local
// trace::Context (trace_id/request_id) is inherited by every span opened
// while a ContextScope is alive, and chrome_json() emits Perfetto flow
// events ("s"/"t"/"f") chaining a request's spans across threads — the
// serving path hands the Context from the client thread through the
// RequestQueue and Batcher to the worker explicitly, so one request's
// enqueue → dispatch → complete renders as arrows in the trace viewer.
//
// The metrics registry holds named monotonic counters, reservoir
// distributions, and exact lock-free log2-bucket histograms, with both a
// human text report and a Prometheus text exposition.
//
// Environment wiring (read once, at first use or via init_from_env()):
//   IWG_TRACE=trace.json       enable tracing; write Chrome JSON at exit
//   IWG_METRICS=-              print the metrics text report to stderr at exit
//   IWG_METRICS=path.txt       … or write it to a file
//   IWG_METRICS_PROM=path.prom write the Prometheus exposition to a file
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace iwg::trace {

/// One span argument, rendered under "args" in the trace viewer.
struct Arg {
  enum class Kind : std::uint8_t { kString, kDouble, kInt };
  std::string key;
  Kind kind = Kind::kString;
  std::string str;
  double num = 0.0;
  std::int64_t inum = 0;
};

// ---------------------------------------------------------------------------
// Request-scoped context (the Dapper-style propagation unit).

/// Identity a span inherits from the request being served. A nonzero
/// trace_id groups every span that worked on one request, across threads;
/// chrome_json() turns each group into a Perfetto flow ("s"/"t"/"f" events)
/// so the enqueue → batch → complete path renders as arrows.
struct Context {
  std::uint64_t trace_id = 0;  ///< 0 = no context (plain span)
  std::uint64_t request_id = 0;
  bool valid() const { return trace_id != 0; }
};

/// The context spans on this thread currently inherit (invalid by default).
Context current_context();

/// Process-unique nonzero flow id for a new request.
std::uint64_t new_trace_id();

/// RAII: install `ctx` as this thread's current context. The serving layer
/// hands a request's Context across the queue/batcher/worker boundary
/// explicitly (it rides in serve::Request) and re-installs it with this
/// scope wherever work happens on the request's behalf; every span opened
/// underneath — nn layers, conv segments, sim launches — inherits it.
class ContextScope {
 public:
  explicit ContextScope(Context ctx);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  Context prev_;
};

/// One completed span.
struct Event {
  std::string name;
  std::string cat;
  double ts_us = 0.0;  ///< start, microseconds since the tracer epoch
  double dur_us = 0.0;
  std::uint32_t tid = 0;
  Context ctx;  ///< inherited request context (may be invalid)
  std::vector<Arg> args;
};

/// Thread-safe ring buffer of spans with Chrome trace-event JSON export.
class Tracer {
 public:
  /// Process-wide tracer. The first call also reads IWG_TRACE/IWG_METRICS
  /// and registers the at-exit writers when either is set.
  static Tracer& global();

  /// Start recording. `capacity` bounds resident events; the ring keeps the
  /// most recent ones and counts the rest as dropped. Clears prior events.
  void enable(std::int64_t capacity = kDefaultCapacity);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// enabled() and not suppressed on this thread — the span-emission gate.
  bool active() const;

  void clear();
  void record(Event&& e);
  /// Resident events in chronological (record) order.
  std::vector<Event> events() const;
  std::int64_t recorded() const;  ///< total since enable()/clear()
  std::int64_t dropped() const;   ///< recorded() minus resident

  /// Chrome trace-event JSON ("traceEvents" array of "X" spans, plus the
  /// metrics registry's counters as "C" counter events when requested).
  std::string chrome_json(bool include_metrics = true) const;
  void write_chrome_trace(const std::string& path,
                          bool include_metrics = true) const;

  double now_us() const;
  /// Small dense id per OS thread (Chrome "tid").
  static std::uint32_t thread_id();

  static constexpr std::int64_t kDefaultCapacity = 1 << 16;

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<Event> ring_;
  std::int64_t capacity_ = kDefaultCapacity;
  std::int64_t total_ = 0;  ///< recorded since enable()/clear()
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: records one Event over its lifetime when the tracer is
/// active at construction. All methods are no-ops otherwise.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "iwg");
  explicit ScopedSpan(const std::string& name, const char* cat = "iwg");
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }

  ScopedSpan& arg(const char* key, const char* value);
  ScopedSpan& arg(const char* key, const std::string& value);
  ScopedSpan& arg(const char* key, double value);
  ScopedSpan& arg(const char* key, std::int64_t value);
  ScopedSpan& arg(const char* key, int value) {
    return arg(key, static_cast<std::int64_t>(value));
  }

 private:
  bool active_ = false;
  double start_us_ = 0.0;
  Event ev_;
};

/// Compile-time-disabled stand-in for ScopedSpan (IWG_TRACE_DISABLE).
struct NullSpan {
  constexpr bool active() const { return false; }
  template <typename K, typename V>
  NullSpan& arg(K&&, V&&) {
    return *this;
  }
};

/// Suppress span recording on this thread while alive (nestable). This is
/// what ConvOptions::trace = false / TrainConfig::trace = false use: the
/// tracer stays globally enabled but the guarded call emits nothing.
class Suppress {
 public:
  Suppress();
  ~Suppress();
  Suppress(const Suppress&) = delete;
  Suppress& operator=(const Suppress&) = delete;
};

// ---------------------------------------------------------------------------
// Metrics registry.

/// Monotonic counter; add() is a relaxed atomic — race-free and cheap
/// enough to leave always-on in hot paths.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Value distribution: exact count/sum/min/max plus p50/p99 over a bounded
/// reservoir (exact until kMaxSamples values have been recorded; degraded —
/// approximate — beyond that, which Summary::degraded() makes visible).
/// Prefer Histogram for hot, unbounded streams (serve latencies, per-conv
/// metrics): its counts stay exact forever and it merges across processes.
class Distribution {
 public:
  struct Summary {
    std::int64_t count = 0;
    std::int64_t samples = 0;  ///< resident reservoir size backing p50/p99
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    /// Percentiles are estimates once the reservoir saturated (the text
    /// report marks them with '~').
    bool degraded() const { return count > samples; }
  };

  void record(double v);
  Summary summary() const;
  void reset();

  static constexpr std::size_t kMaxSamples = 1 << 14;

 private:
  mutable std::mutex mu_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t rng_ = 0x9e3779b97f4a7c15ULL;  ///< reservoir replacement
  std::vector<double> samples_;
};

/// Lock-free fixed-log2-bucket value histogram.
///
/// Bucket i counts values v with 2^(i+kMinExp) <= v < 2^(i+1+kMinExp)
/// (bucket 0 additionally absorbs everything below its lower edge,
/// including zero and negatives; the last bucket is open above). Unlike the
/// reservoir Distribution, counts stay *exact* for the life of the process
/// — a long-running server never silently degrades its percentiles — and
/// two snapshots merge by bucket-wise addition, so per-shard histograms
/// aggregate losslessly. Quantiles come from linear interpolation inside
/// the covering bucket, clamped to the observed [min, max].
///
/// record() is a handful of relaxed atomics (no mutex, no allocation):
/// cheap enough for per-request serving paths and safe under parallel_for.
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr int kMinExp = -16;  ///< bucket 0 lower edge = 2^-16

  void record(double v);

  /// Lower/upper edge of bucket i (lo(0) = 0 for reporting purposes).
  static double bucket_lo(int i);
  static double bucket_hi(int i);
  static int bucket_index(double v);

  struct Snapshot {
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<std::int64_t, kBuckets> buckets{};

    double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    /// Interpolated value at quantile q in [0, 1].
    double quantile(double q) const;
    /// Bucket-wise merge (counts add; min/max/sum combine).
    void merge(const Snapshot& o);
    /// Bucket-wise difference: the values recorded between `prev` (an
    /// earlier snapshot of the SAME histogram) and this one. This is the
    /// windowed-metrics primitive — a monitor that snapshots on an
    /// interval gets an exact per-interval histogram by delta, and merges
    /// consecutive deltas back into rolling windows. The window's true
    /// min/max are not recoverable from cumulative extremes, so delta()
    /// reports the tightest provable bounds: the occupied delta buckets'
    /// edges, clamped to the cumulative [min, max].
    Snapshot delta(const Snapshot& prev) const;
  };
  Snapshot snapshot() const;
  void reset();

 private:
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};  ///< CAS-accumulated
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
};

/// Process-wide named metrics. counter()/distribution()/histogram() create
/// on first use and return references that stay valid for the life of the
/// process.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Distribution& distribution(const std::string& name);
  Histogram& histogram(const std::string& name);

  struct Snapshot {
    std::vector<std::pair<std::string, std::int64_t>> counters;
    std::vector<std::pair<std::string, Distribution::Summary>> distributions;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  };
  Snapshot snapshot() const;  ///< sorted by name

  /// Human-readable report of every counter, distribution, and histogram.
  std::string text_report() const;

  /// Prometheus text exposition (version 0.0.4): counters as `counter`,
  /// histograms as `histogram` with cumulative `_bucket{le="..."}` lines
  /// plus `_sum`/`_count`, distributions as `summary` quantiles. Metric
  /// names are sanitized to [a-zA-Z0-9_:] (dots become underscores).
  /// Registry names following the `serve.tenant.<id>.<rest>` convention
  /// are exported as ONE family per <rest> with the tenant id as a proper
  /// label — `serve_tenant_<rest>{tenant="<id>"} value` — grouped under a
  /// single `# TYPE` line, so PromQL can sum/rate across tenants. Every
  /// family gets a `# HELP` line (set_help text when registered, a generic
  /// one otherwise), and the page leads with two synthesized gauges:
  /// `iwg_build_info{isa="...",trace="on|off"} 1` (labels from
  /// set_build_label plus the compile-time tracing mode) and
  /// `iwg_process_uptime_seconds`. A scraper pointed at the
  /// IWG_METRICS_PROM file — or at obs::AdminServer's /metrics endpoint —
  /// gets standard scrape-able telemetry.
  std::string prometheus_text() const;

  /// Attach `# HELP` text to the metric family `name` maps into (the raw
  /// registry name and its per-tenant variants map to one family). Families
  /// without registered help get a generic line.
  void set_help(const std::string& name, const std::string& help);

  /// Publish one label on the iwg_build_info gauge (e.g. the host-kernel
  /// dispatcher publishes isa="avx2" when it resolves the table).
  void set_build_label(const std::string& key, const std::string& value);

  /// Zero every metric. Registered objects survive (references stay valid).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Distribution>> distributions_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> help_;         ///< family base → text
  std::map<std::string, std::string> build_info_;  ///< label key → value
};

/// Scoped exact-value isolation for tests: zeroes every registry metric on
/// construction AND on destruction, so a test case that asserts exact
/// counter values neither inherits counts from earlier cases in the same
/// binary nor leaks its own into later ones. Registered objects (and cached
/// references) survive — only values are cleared.
class ResetGuard {
 public:
  ResetGuard() { MetricsRegistry::global().reset(); }
  ~ResetGuard() { MetricsRegistry::global().reset(); }
  ResetGuard(const ResetGuard&) = delete;
  ResetGuard& operator=(const ResetGuard&) = delete;
};

/// Maps a metric name onto the Prometheus charset [a-zA-Z0-9_:] (anything
/// else becomes '_'; a leading digit gets a '_' prefix).
std::string sanitize_metric_name(const std::string& name);

/// Read IWG_TRACE / IWG_METRICS once and register the at-exit writers.
/// Implicit in Tracer::global(); call early in a driver to be explicit.
void init_from_env();

/// Set/override the report output paths programmatically (same semantics as
/// IWG_TRACE / IWG_METRICS / IWG_METRICS_PROM; empty string disables that
/// output; metrics path "-" writes to stderr). Enables the tracer when a
/// trace path is given and registers the at-exit writers, so a long-running
/// server can configure reporting without touching the environment.
void set_report_paths(const std::string& trace_path,
                      const std::string& metrics_path,
                      const std::string& prometheus_path = "");

/// Write the trace JSON and metrics report to their configured outputs
/// *now*, atomically replacing the previous flush (write-to-temp + rename).
/// The at-exit writer only helps processes that exit; a serving process that
/// runs for days — or dies on a signal — needs periodic explicit flushes,
/// which is what the serving loop's flush hook calls. Thread-safe;
/// concurrent flushes serialize. Returns false if nothing is configured.
bool flush_report();

}  // namespace iwg::trace

// ---------------------------------------------------------------------------
// Span macros. IWG_TRACE_SCOPE drops an anonymous span; IWG_TRACE_SPAN names
// the span variable so call sites can attach args. With IWG_TRACE_DISABLE
// both compile to nothing (NullSpan is an empty object the optimizer
// removes).

#define IWG_TRACE_CONCAT_INNER(a, b) a##b
#define IWG_TRACE_CONCAT(a, b) IWG_TRACE_CONCAT_INNER(a, b)

#ifdef IWG_TRACE_DISABLE
#define IWG_TRACE_SCOPE(...) \
  [[maybe_unused]] ::iwg::trace::NullSpan IWG_TRACE_CONCAT(iwg_span_, __LINE__)
#define IWG_TRACE_SPAN(var, ...) [[maybe_unused]] ::iwg::trace::NullSpan var
#else
#define IWG_TRACE_SCOPE(...)                 \
  [[maybe_unused]] ::iwg::trace::ScopedSpan \
      IWG_TRACE_CONCAT(iwg_span_, __LINE__)(__VA_ARGS__)
#define IWG_TRACE_SPAN(var, ...) ::iwg::trace::ScopedSpan var(__VA_ARGS__)
#endif
