// Exact rational arithmetic over 128-bit integers.
//
// Used by the Winograd transform-matrix generator (Cook–Toom construction)
// where floating point would destroy the exactness guarantees the tests rely
// on. Values stay small enough (F(2,15) matrices have entries like
// 268435456/160810650) that a normalized int128 fraction never overflows; we
// still check every multiplication defensively.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "common/check.hpp"

namespace iwg {

/// An exact fraction num/den with den > 0 and gcd(num, den) == 1.
class Rational {
 public:
  using Int = __int128;

  constexpr Rational() : num_(0), den_(1) {}
  Rational(long long n) : num_(n), den_(1) {}  // NOLINT: implicit by design
  Rational(long long n, long long d);

  static Rational from_int128(Int n, Int d);

  Int num() const { return num_; }
  Int den() const { return den_; }

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  std::strong_ordering operator<=>(const Rational& o) const;

  bool is_zero() const { return num_ == 0; }
  Rational abs() const;
  Rational reciprocal() const;

  /// Integer power; exponent may be negative if the value is nonzero.
  Rational pow(int e) const;

  double to_double() const;
  float to_float() const { return static_cast<float>(to_double()); }

  /// "p/q" or "p" when q == 1 (for error messages and golden-data dumps).
  std::string to_string() const;

 private:
  Rational(Int n, Int d, bool normalized);
  static Int gcd(Int a, Int b);
  static Int checked_mul(Int a, Int b);

  Int num_;
  Int den_;  // > 0 always
};

}  // namespace iwg
