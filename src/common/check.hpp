// Error handling primitives shared across the library.
//
// Hot kernel paths avoid exceptions; API boundaries validate with IWG_CHECK
// which throws iwg::Error so callers (tests, examples) get a useful message.
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>

namespace iwg {

/// Exception type thrown on precondition violations at API boundaries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* cond, const char* file, int line,
                              const std::string& msg) {
  std::string full = std::string("IWG_CHECK failed: ") + cond + " at " + file +
                     ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw Error(full);
}
}  // namespace detail

}  // namespace iwg

/// Validate a precondition; throws iwg::Error with location info on failure.
#define IWG_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) ::iwg::detail::fail(#cond, __FILE__, __LINE__, ""); \
  } while (0)

/// Same as IWG_CHECK with an extra message (std::string or literal).
#define IWG_CHECK_MSG(cond, msg)                                       \
  do {                                                                 \
    if (!(cond)) ::iwg::detail::fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
