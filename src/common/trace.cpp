#include "common/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <locale>
#include <sstream>
#include <string_view>

#include "common/check.hpp"

namespace iwg::trace {

namespace {

thread_local int g_suppress_depth = 0;
thread_local Context g_context;  // inherited by spans opened on this thread

// Report output targets, set by init_from_env or set_report_paths (atexit
// handlers must be capture-less, so these live at namespace scope). The
// mutex serializes path mutation and report writing: a periodic flusher
// thread, a caller of flush_report(), and the at-exit writer may all race.
std::mutex g_report_mu;
std::string g_trace_path;
std::string g_metrics_path;
std::string g_prom_path;
bool g_exit_writer_registered = false;

/// Writes `body` to `path` via temp+rename ("-" -> stderr). Returns success.
bool write_text_report(const std::string& path, const std::string& body) {
  if (path == "-") {
    std::fputs(body.c_str(), stderr);
    return true;
  }
  // Temp + rename so a reader (or a crash mid-write) never sees a
  // truncated report — flush_report may run every few seconds for the
  // life of a serving process.
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp);
  if (out.good()) out << body;
  out.close();
  return out.good() && std::rename(tmp.c_str(), path.c_str()) == 0;
}

/// Writes the configured reports. Caller holds g_report_mu.
bool write_reports_locked(bool quiet) {
  bool wrote = false;
  if (!g_trace_path.empty()) {
    try {
      Tracer::global().write_chrome_trace(g_trace_path);
      if (!quiet) {
        std::fprintf(stderr, "iwg: wrote trace to %s\n", g_trace_path.c_str());
      }
      wrote = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "iwg: trace write failed: %s\n", e.what());
    }
  }
  if (!g_metrics_path.empty()) {
    const std::string report = MetricsRegistry::global().text_report();
    wrote = write_text_report(g_metrics_path, report) || wrote;
  }
  if (!g_prom_path.empty()) {
    const std::string page = MetricsRegistry::global().prometheus_text();
    wrote = write_text_report(g_prom_path, page) || wrote;
  }
  return wrote;
}

void write_exit_reports() {
  std::lock_guard lock(g_report_mu);
  write_reports_locked(/*quiet=*/false);
}

void register_exit_writer_locked() {
  if (!g_exit_writer_registered) {
    g_exit_writer_registered = true;
    std::atexit(write_exit_reports);
  }
}

void init_from_env_once(Tracer* tracer) {
  static std::once_flag once;
  std::call_once(once, [tracer] {
    std::lock_guard lock(g_report_mu);
    const char* tp = std::getenv("IWG_TRACE");
    if (tp != nullptr && tp[0] != '\0') {
      g_trace_path = tp;
      tracer->enable();
    }
    const char* mp = std::getenv("IWG_METRICS");
    if (mp != nullptr && mp[0] != '\0') g_metrics_path = mp;
    const char* pp = std::getenv("IWG_METRICS_PROM");
    if (pp != nullptr && pp[0] != '\0') g_prom_path = pp;
    if (!g_trace_path.empty() || !g_metrics_path.empty() ||
        !g_prom_path.empty()) {
      register_exit_writer_locked();
    }
  });
}

void json_escape_into(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void args_into(std::ostream& os, const std::vector<Arg>& args,
               const Context& ctx = {}) {
  os << '{';
  bool first = true;
  if (ctx.valid()) {
    // The request context a span inherited renders as ordinary args, so a
    // span selected in the viewer names the request it served.
    os << "\"trace_id\":" << ctx.trace_id
       << ",\"request_id\":" << ctx.request_id;
    first = false;
  }
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (!first) os << ',';
    first = false;
    os << '"';
    json_escape_into(os, args[i].key);
    os << "\":";
    switch (args[i].kind) {
      case Arg::Kind::kString:
        os << '"';
        json_escape_into(os, args[i].str);
        os << '"';
        break;
      case Arg::Kind::kDouble:
        os << std::setprecision(9) << args[i].num;
        break;
      case Arg::Kind::kInt:
        os << args[i].inum;
        break;
    }
  }
  os << '}';
}

}  // namespace

// ---------------------------------------------------------------------------
// Tracer

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() {
  // Intentionally leaked: the at-exit report writers (and spans recorded
  // during other objects' static destruction) must never see a destroyed
  // tracer, whatever the construction order was.
  static Tracer* tracer = new Tracer();
  init_from_env_once(tracer);
  return *tracer;
}

void Tracer::enable(std::int64_t capacity) {
  IWG_CHECK(capacity > 0);
  {
    std::lock_guard lock(mu_);
    capacity_ = capacity;
    ring_.clear();
    total_ = 0;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

bool Tracer::active() const { return enabled() && g_suppress_depth == 0; }

void Tracer::clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  total_ = 0;
}

void Tracer::record(Event&& e) {
  std::lock_guard lock(mu_);
  if (static_cast<std::int64_t>(ring_.size()) < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    // Overwrite the oldest resident event (the ring was filled in record
    // order, so the slot of event #total_ is total_ mod capacity).
    ring_[static_cast<std::size_t>(total_ % capacity_)] = std::move(e);
  }
  ++total_;
}

std::vector<Event> Tracer::events() const {
  std::lock_guard lock(mu_);
  if (total_ <= capacity_) return ring_;
  std::vector<Event> out;
  out.reserve(ring_.size());
  const std::size_t start = static_cast<std::size_t>(total_ % capacity_);
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::int64_t Tracer::recorded() const {
  std::lock_guard lock(mu_);
  return total_;
}

std::int64_t Tracer::dropped() const {
  std::lock_guard lock(mu_);
  return std::max<std::int64_t>(
      0, total_ - static_cast<std::int64_t>(ring_.size()));
}

std::string Tracer::chrome_json(bool include_metrics) const {
  std::vector<Event> evs = events();
  std::stable_sort(evs.begin(), evs.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_us < b.ts_us;
                   });

  // Flow chains: events sharing a nonzero trace_id, in timeline order. The
  // first span of a chain gets a flow-start ("s"), intermediate ones a step
  // ("t"), the last a finish ("f") — Perfetto then draws arrows linking one
  // request's spans across threads (enqueue → dispatch → complete).
  std::map<std::uint64_t, std::pair<std::size_t, std::size_t>> chains;
  for (std::size_t i = 0; i < evs.size(); ++i) {
    if (!evs[i].ctx.valid()) continue;
    auto [it, fresh] = chains.try_emplace(evs[i].ctx.trace_id, i, i);
    if (!fresh) it->second.second = i;
  }

  std::ostringstream os;
  os.imbue(std::locale::classic());  // '.' decimals whatever the app locale
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"iwg\"}}";
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const Event& e = evs[i];
    os << ",{\"name\":\"";
    json_escape_into(os, e.name);
    os << "\",\"cat\":\"";
    json_escape_into(os, e.cat);
    os << "\",\"ph\":\"X\",\"ts\":" << std::fixed << std::setprecision(3)
       << e.ts_us << ",\"dur\":" << e.dur_us << std::defaultfloat
       << ",\"pid\":1,\"tid\":" << e.tid << ",\"args\":";
    args_into(os, e.args, e.ctx);
    os << '}';
    if (e.ctx.valid()) {
      const auto& [first_i, last_i] = chains.at(e.ctx.trace_id);
      const char* ph = i == first_i ? "s" : (i == last_i ? "f" : "t");
      if (first_i != last_i) {
        // The flow event's timestamp sits inside the span so the viewer
        // binds it to this slice (Chrome binds flows positionally).
        const double fts = e.ts_us + e.dur_us * 0.5;
        os << ",{\"name\":\"request\",\"cat\":\"flow\",\"ph\":\"" << ph
           << "\",\"id\":" << e.ctx.trace_id << ",\"ts\":" << std::fixed
           << std::setprecision(3) << fts << std::defaultfloat
           << ",\"pid\":1,\"tid\":" << e.tid;
        if (*ph == 'f') os << ",\"bp\":\"e\"";
        os << '}';
      }
    }
  }
  if (include_metrics) {
    // Counters ride along as Chrome counter ("C") events stamped at the end
    // of the timeline, so hit rates etc. are visible next to the spans.
    const auto snap = MetricsRegistry::global().snapshot();
    const double ts = now_us();
    for (const auto& [name, value] : snap.counters) {
      os << ",{\"name\":\"";
      json_escape_into(os, name);
      os << "\",\"ph\":\"C\",\"ts\":" << std::fixed << std::setprecision(3)
         << ts << std::defaultfloat << ",\"pid\":1,\"args\":{\"value\":"
         << value << "}}";
    }
  }
  os << "]}";
  return os.str();
}

void Tracer::write_chrome_trace(const std::string& path,
                                bool include_metrics) const {
  std::ofstream out(path);
  IWG_CHECK_MSG(out.good(), "cannot open trace output: " + path);
  out << chrome_json(include_metrics);
  IWG_CHECK_MSG(out.good(), "trace write failed: " + path);
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint32_t Tracer::thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id = next.fetch_add(1);
  return id;
}

// ---------------------------------------------------------------------------
// ScopedSpan / Suppress

ScopedSpan::ScopedSpan(const char* name, const char* cat) {
  Tracer& t = Tracer::global();
  if (!t.active()) return;
  active_ = true;
  ev_.name = name;
  ev_.cat = cat;
  ev_.tid = Tracer::thread_id();
  ev_.ctx = g_context;
  start_us_ = t.now_us();
}

ScopedSpan::ScopedSpan(const std::string& name, const char* cat) {
  Tracer& t = Tracer::global();
  if (!t.active()) return;
  active_ = true;
  ev_.name = name;
  ev_.cat = cat;
  ev_.tid = Tracer::thread_id();
  ev_.ctx = g_context;
  start_us_ = t.now_us();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  Tracer& t = Tracer::global();
  ev_.ts_us = start_us_;
  ev_.dur_us = t.now_us() - start_us_;
  t.record(std::move(ev_));
}

ScopedSpan& ScopedSpan::arg(const char* key, const char* value) {
  if (active_) {
    ev_.args.push_back(Arg{key, Arg::Kind::kString, value, 0.0, 0});
  }
  return *this;
}

ScopedSpan& ScopedSpan::arg(const char* key, const std::string& value) {
  if (active_) {
    ev_.args.push_back(Arg{key, Arg::Kind::kString, value, 0.0, 0});
  }
  return *this;
}

ScopedSpan& ScopedSpan::arg(const char* key, double value) {
  if (active_) {
    ev_.args.push_back(Arg{key, Arg::Kind::kDouble, {}, value, 0});
  }
  return *this;
}

ScopedSpan& ScopedSpan::arg(const char* key, std::int64_t value) {
  if (active_) {
    ev_.args.push_back(Arg{key, Arg::Kind::kInt, {}, 0.0, value});
  }
  return *this;
}

Suppress::Suppress() { ++g_suppress_depth; }
Suppress::~Suppress() { --g_suppress_depth; }

// ---------------------------------------------------------------------------
// Context propagation

Context current_context() { return g_context; }

std::uint64_t new_trace_id() {
  // Monotonic and process-unique; starts at 1 so 0 stays "no context".
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

ContextScope::ContextScope(Context ctx) : prev_(g_context) { g_context = ctx; }
ContextScope::~ContextScope() { g_context = prev_; }

// ---------------------------------------------------------------------------
// Metrics

void Distribution::record(double v) {
  std::lock_guard lock(mu_);
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  if (samples_.size() < kMaxSamples) {
    samples_.push_back(v);
  } else {
    // Classic reservoir replacement with a cheap deterministic LCG: every
    // recorded value keeps a kMaxSamples/count chance of being resident.
    rng_ = rng_ * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t j = rng_ % static_cast<std::uint64_t>(count_);
    if (j < kMaxSamples) samples_[static_cast<std::size_t>(j)] = v;
  }
}

Distribution::Summary Distribution::summary() const {
  std::lock_guard lock(mu_);
  Summary s;
  s.count = count_;
  s.samples = static_cast<std::int64_t>(samples_.size());
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  if (!samples_.empty()) {
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const auto at = [&](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(sorted.size() - 1));
      return sorted[idx];
    };
    s.p50 = at(0.50);
    s.p99 = at(0.99);
  }
  return s;
}

void Distribution::reset() {
  std::lock_guard lock(mu_);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  samples_.clear();
}

// ---------------------------------------------------------------------------
// Histogram

int Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // zero, negatives, NaN → bottom bucket
  const int e = std::ilogb(v);
  const int idx = e - kMinExp;
  return std::clamp(idx, 0, kBuckets - 1);
}

double Histogram::bucket_lo(int i) {
  return i <= 0 ? 0.0 : std::ldexp(1.0, i + kMinExp);
}

double Histogram::bucket_hi(int i) { return std::ldexp(1.0, i + 1 + kMinExp); }

namespace {

/// Relaxed CAS-accumulate / CAS-min / CAS-max on atomic doubles (record()
/// must stay lock-free; exactness of the *sum* under contention is all CAS
/// gives us, and bucket counts are plain atomic adds).
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

template <typename Better>
void atomic_extreme(std::atomic<double>& a, double v, Better better) {
  double cur = a.load(std::memory_order_relaxed);
  while (better(v, cur) &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::record(double v) {
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  // First recorder initializes min/max from 0: seed both with v when the
  // count was zero. A racing second recorder still converges via the CAS
  // extremes below.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  atomic_add(sum_, v);
  atomic_extreme(min_, v, [](double a, double b) { return a < b; });
  atomic_extreme(max_, v, [](double a, double b) { return a > b; });
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kBuckets; ++i) {
    s.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile among `count` recorded values.
  const double rank = q * static_cast<double>(count - 1);
  std::int64_t before = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::int64_t n = buckets[static_cast<std::size_t>(i)];
    if (n > 0 && rank < static_cast<double>(before + n)) {
      // Linear interpolation inside the covering bucket, clamped to the
      // observed extremes (the open-ended edge buckets would otherwise
      // report their nominal power-of-two edges).
      const double frac =
          (rank - static_cast<double>(before)) / static_cast<double>(n);
      const double lo = bucket_lo(i);
      const double hi = bucket_hi(i);
      return std::clamp(lo + frac * (hi - lo), min, max);
    }
    before += n;
  }
  return max;
}

Histogram::Snapshot Histogram::Snapshot::delta(const Snapshot& prev) const {
  Snapshot d;
  d.count = count - prev.count;
  d.sum = sum - prev.sum;
  if (d.count <= 0) return Snapshot{};  // quiesced (or torn) window: empty
  int first = -1;
  int last = -1;
  for (int i = 0; i < kBuckets; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    d.buckets[idx] = buckets[idx] - prev.buckets[idx];
    if (d.buckets[idx] < 0) d.buckets[idx] = 0;  // torn concurrent snapshot
    if (d.buckets[idx] > 0) {
      if (first < 0) first = i;
      last = i;
    }
  }
  if (d.sum < 0.0) d.sum = 0.0;  // torn count/sum pair
  if (first < 0) {
    // Torn snapshot: the count advanced but no bucket increment is visible
    // yet. Keep the count (interval accounting must tile the stream
    // exactly — a windowed monitor sums deltas) and fall back to the
    // cumulative extremes as the only available bounds.
    d.min = min;
    d.max = max;
    return d;
  }
  // Tightest provable bounds on the window extremes: the occupied delta
  // buckets' edges, clamped into the cumulative [min, max] (a superset of
  // the window, so its extremes bound the window's from outside).
  d.min = std::max(bucket_lo(first), min);
  d.max = std::min(bucket_hi(last), max);
  if (d.min > d.max) d.min = d.max;
  return d;
}

void Histogram::Snapshot::merge(const Snapshot& o) {
  if (o.count == 0) return;
  if (count == 0) {
    min = o.min;
    max = o.max;
  } else {
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }
  count += o.count;
  sum += o.sum;
  for (int i = 0; i < kBuckets; ++i) {
    buckets[static_cast<std::size_t>(i)] +=
        o.buckets[static_cast<std::size_t>(i)];
  }
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked for the same reason as Tracer::global(): the registry may be
  // first used (and its static therefore constructed) after the at-exit
  // writers were registered, which would destroy it before they run.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Distribution& MetricsRegistry::distribution(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = distributions_[name];
  if (!slot) slot = std::make_unique<Distribution>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, d] : distributions_) {
    snap.distributions.emplace_back(name, d->summary());
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->snapshot());
  }
  return snap;
}

std::string MetricsRegistry::text_report() const {
  const Snapshot snap = snapshot();
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << "== iwg metrics ==\n";
  for (const auto& [name, value] : snap.counters) {
    os << "counter  " << std::left << std::setw(36) << name << ' '
       << std::right << std::setw(12) << value << '\n';
  }
  os << std::setprecision(6);
  for (const auto& [name, s] : snap.distributions) {
    // '~' marks percentiles estimated from a saturated reservoir — a
    // long-running process exceeds the 2^14-sample reservoir in seconds,
    // and silently-approximate p50/p99 misled more than they informed.
    const char* approx = s.degraded() ? "~" : "";
    os << "dist     " << std::left << std::setw(36) << name << std::right
       << " count=" << s.count << " sum=" << s.sum << " mean=" << s.mean()
       << " min=" << s.min << " p50=" << approx << s.p50 << " p99=" << approx
       << s.p99 << " max=" << s.max;
    if (s.degraded()) {
      os << " (~approx: " << s.samples << '/' << s.count << " samples)";
    }
    os << '\n';
  }
  for (const auto& [name, h] : snap.histograms) {
    os << "hist     " << std::left << std::setw(36) << name << std::right
       << " count=" << h.count << " sum=" << h.sum << " mean=" << h.mean()
       << " min=" << h.min << " p50=" << h.quantile(0.50) << " p99="
       << h.quantile(0.99) << " max=" << h.max << '\n';
  }
  return os.str();
}

std::string sanitize_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

namespace {

/// A registry name mapped onto the Prometheus data model: a sanitized
/// family base plus an optional label set. The `serve.tenant.<id>.<rest>`
/// convention becomes ONE family per <rest> with the tenant id as a proper
/// label — serve_tenant_latency_us{tenant="gold"} — instead of a separate
/// per-tenant metric name, so PromQL can aggregate and group across
/// tenants. Tenant ids must not contain '.' (the first dot after the
/// prefix ends the id; ModelRegistry enforces this at registration).
struct PromName {
  std::string base;    ///< sanitized family name
  std::string labels;  ///< e.g. tenant="gold"; empty → no label set
};

std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

PromName exposition_name(const std::string& raw) {
  static constexpr std::string_view kTenantPrefix = "serve.tenant.";
  PromName n;
  if (raw.compare(0, kTenantPrefix.size(), kTenantPrefix) == 0) {
    const std::size_t id_begin = kTenantPrefix.size();
    const std::size_t id_end = raw.find('.', id_begin);
    if (id_end != std::string::npos && id_end + 1 < raw.size() &&
        id_end > id_begin) {
      n.base = sanitize_metric_name("serve.tenant." + raw.substr(id_end + 1));
      n.labels =
          "tenant=\"" + escape_label_value(raw.substr(id_begin, id_end - id_begin)) +
          "\"";
      return n;
    }
  }
  n.base = sanitize_metric_name(raw);
  return n;
}

/// Group one metric kind's snapshot rows into label-series per family base.
/// The snapshot is sorted by raw name, which scatters one family's tenants
/// (serve.tenant.bronze.completed / serve.tenant.gold.completed are not
/// adjacent) — but Prometheus wants a single `# TYPE` line per family with
/// every series under it, hence the regrouping map.
template <typename V>
std::map<std::string, std::vector<std::pair<std::string, V>>> prom_families(
    const std::vector<std::pair<std::string, V>>& rows) {
  std::map<std::string, std::vector<std::pair<std::string, V>>> fams;
  for (const auto& [name, value] : rows) {
    const PromName n = exposition_name(name);
    fams[n.base].emplace_back(n.labels, value);
  }
  return fams;
}

}  // namespace

void MetricsRegistry::set_help(const std::string& name,
                               const std::string& help) {
  std::lock_guard lock(mu_);
  help_[exposition_name(name).base] = help;
}

void MetricsRegistry::set_build_label(const std::string& key,
                                      const std::string& value) {
  std::lock_guard lock(mu_);
  build_info_[key] = value;
}

namespace {

/// Process-start anchor for iwg_process_uptime_seconds (static init of this
/// TU — early enough that "uptime" means what an operator expects).
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

}  // namespace

std::string MetricsRegistry::prometheus_text() const {
  const Snapshot snap = snapshot();
  std::map<std::string, std::string> help;
  std::map<std::string, std::string> build_info;
  {
    std::lock_guard lock(mu_);
    help = help_;
    build_info = build_info_;
  }
  const auto help_line = [&](std::ostream& out, const std::string& base) {
    const auto it = help.find(base);
    out << "# HELP " << base << ' '
        << (it != help.end() ? it->second : "iwg metric " + base) << '\n';
  };
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::setprecision(9);
  // Synthesized identity gauges, first on the page: which build produced
  // these numbers, and for how long the process has been alive. Labels
  // published via set_build_label (e.g. isa) join the compile-time tracing
  // mode.
  os << "# HELP iwg_build_info Build/runtime identity of this process "
        "(constant 1).\n# TYPE iwg_build_info gauge\niwg_build_info{";
  if (build_info.find("isa") == build_info.end()) {
    os << "isa=\"unresolved\",";  // host-kernel table not yet dispatched
  }
  for (const auto& [k, v] : build_info) {
    os << sanitize_metric_name(k) << "=\"" << escape_label_value(v) << "\",";
  }
#ifdef IWG_TRACE_DISABLE
  os << "trace=\"off\"";
#else
  os << "trace=\"on\"";
#endif
  os << "} 1\n";
  os << "# HELP iwg_process_uptime_seconds Seconds since process start "
        "(steady clock).\n# TYPE iwg_process_uptime_seconds gauge\n"
        "iwg_process_uptime_seconds "
     << std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      g_process_start)
            .count()
     << '\n';
  for (const auto& [base, series] : prom_families(snap.counters)) {
    help_line(os, base);
    os << "# TYPE " << base << " counter\n";
    for (const auto& [labels, value] : series) {
      os << base;
      if (!labels.empty()) os << '{' << labels << '}';
      os << ' ' << value << '\n';
    }
  }
  for (const auto& [base, series] : prom_families(snap.distributions)) {
    // Reservoir distributions export as Prometheus summaries; quantiles are
    // approximate once the reservoir saturates (same caveat as the '~'
    // marker in the text report).
    help_line(os, base);
    os << "# TYPE " << base << " summary\n";
    for (const auto& [labels, s] : series) {
      const std::string comma = labels.empty() ? "" : labels + ",";
      const std::string plain = labels.empty() ? "" : "{" + labels + "}";
      os << base << '{' << comma << "quantile=\"0.5\"} " << s.p50 << '\n';
      os << base << '{' << comma << "quantile=\"0.99\"} " << s.p99 << '\n';
      os << base << "_sum" << plain << ' ' << s.sum << '\n';
      os << base << "_count" << plain << ' ' << s.count << '\n';
    }
  }
  for (const auto& [base, series] : prom_families(snap.histograms)) {
    help_line(os, base);
    os << "# TYPE " << base << " histogram\n";
    for (const auto& [labels, h] : series) {
      const std::string comma = labels.empty() ? "" : labels + ",";
      const std::string plain = labels.empty() ? "" : "{" + labels + "}";
      // Cumulative buckets; emitting only the occupied range (plus +Inf) is
      // valid exposition and keeps the page compact for 64-bucket
      // histograms.
      std::int64_t cum = 0;
      int last_used = -1;
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        if (h.buckets[static_cast<std::size_t>(i)] > 0) last_used = i;
      }
      for (int i = 0; i <= last_used; ++i) {
        cum += h.buckets[static_cast<std::size_t>(i)];
        os << base << "_bucket{" << comma << "le=\""
           << Histogram::bucket_hi(i) << "\"} " << cum << '\n';
      }
      os << base << "_bucket{" << comma << "le=\"+Inf\"} " << h.count << '\n';
      os << base << "_sum" << plain << ' ' << h.sum << '\n';
      os << base << "_count" << plain << ' ' << h.count << '\n';
    }
  }
  return os.str();
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, d] : distributions_) d->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void init_from_env() { Tracer::global(); }

void set_report_paths(const std::string& trace_path,
                      const std::string& metrics_path,
                      const std::string& prometheus_path) {
  Tracer& tracer = Tracer::global();  // runs init_from_env_once first
  {
    std::lock_guard lock(g_report_mu);
    g_trace_path = trace_path;
    g_metrics_path = metrics_path;
    g_prom_path = prometheus_path;
    if (!g_trace_path.empty() || !g_metrics_path.empty() ||
        !g_prom_path.empty()) {
      register_exit_writer_locked();
    }
  }
  if (!trace_path.empty() && !tracer.enabled()) tracer.enable();
}

bool flush_report() {
  Tracer::global();  // make sure env configuration has been read
  std::lock_guard lock(g_report_mu);
  return write_reports_locked(/*quiet=*/true);
}

}  // namespace iwg::trace
