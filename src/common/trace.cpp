#include "common/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <locale>
#include <sstream>

#include "common/check.hpp"

namespace iwg::trace {

namespace {

thread_local int g_suppress_depth = 0;

// Report output targets, set by init_from_env or set_report_paths (atexit
// handlers must be capture-less, so these live at namespace scope). The
// mutex serializes path mutation and report writing: a periodic flusher
// thread, a caller of flush_report(), and the at-exit writer may all race.
std::mutex g_report_mu;
std::string g_trace_path;
std::string g_metrics_path;
bool g_exit_writer_registered = false;

/// Writes the configured reports. Caller holds g_report_mu.
bool write_reports_locked(bool quiet) {
  bool wrote = false;
  if (!g_trace_path.empty()) {
    try {
      Tracer::global().write_chrome_trace(g_trace_path);
      if (!quiet) {
        std::fprintf(stderr, "iwg: wrote trace to %s\n", g_trace_path.c_str());
      }
      wrote = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "iwg: trace write failed: %s\n", e.what());
    }
  }
  if (!g_metrics_path.empty()) {
    const std::string report = MetricsRegistry::global().text_report();
    if (g_metrics_path == "-") {
      std::fputs(report.c_str(), stderr);
      wrote = true;
    } else {
      // Temp + rename so a reader (or a crash mid-write) never sees a
      // truncated report — flush_report may run every few seconds for the
      // life of a serving process.
      const std::string tmp = g_metrics_path + ".tmp";
      std::ofstream out(tmp);
      if (out.good()) out << report;
      out.close();
      if (out.good() && std::rename(tmp.c_str(), g_metrics_path.c_str()) == 0) {
        wrote = true;
      }
    }
  }
  return wrote;
}

void write_exit_reports() {
  std::lock_guard lock(g_report_mu);
  write_reports_locked(/*quiet=*/false);
}

void register_exit_writer_locked() {
  if (!g_exit_writer_registered) {
    g_exit_writer_registered = true;
    std::atexit(write_exit_reports);
  }
}

void init_from_env_once(Tracer* tracer) {
  static std::once_flag once;
  std::call_once(once, [tracer] {
    std::lock_guard lock(g_report_mu);
    const char* tp = std::getenv("IWG_TRACE");
    if (tp != nullptr && tp[0] != '\0') {
      g_trace_path = tp;
      tracer->enable();
    }
    const char* mp = std::getenv("IWG_METRICS");
    if (mp != nullptr && mp[0] != '\0') g_metrics_path = mp;
    if (!g_trace_path.empty() || !g_metrics_path.empty()) {
      register_exit_writer_locked();
    }
  });
}

void json_escape_into(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void args_into(std::ostream& os, const std::vector<Arg>& args) {
  os << '{';
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ',';
    os << '"';
    json_escape_into(os, args[i].key);
    os << "\":";
    switch (args[i].kind) {
      case Arg::Kind::kString:
        os << '"';
        json_escape_into(os, args[i].str);
        os << '"';
        break;
      case Arg::Kind::kDouble:
        os << std::setprecision(9) << args[i].num;
        break;
      case Arg::Kind::kInt:
        os << args[i].inum;
        break;
    }
  }
  os << '}';
}

}  // namespace

// ---------------------------------------------------------------------------
// Tracer

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() {
  // Intentionally leaked: the at-exit report writers (and spans recorded
  // during other objects' static destruction) must never see a destroyed
  // tracer, whatever the construction order was.
  static Tracer* tracer = new Tracer();
  init_from_env_once(tracer);
  return *tracer;
}

void Tracer::enable(std::int64_t capacity) {
  IWG_CHECK(capacity > 0);
  {
    std::lock_guard lock(mu_);
    capacity_ = capacity;
    ring_.clear();
    total_ = 0;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

bool Tracer::active() const { return enabled() && g_suppress_depth == 0; }

void Tracer::clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  total_ = 0;
}

void Tracer::record(Event&& e) {
  std::lock_guard lock(mu_);
  if (static_cast<std::int64_t>(ring_.size()) < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    // Overwrite the oldest resident event (the ring was filled in record
    // order, so the slot of event #total_ is total_ mod capacity).
    ring_[static_cast<std::size_t>(total_ % capacity_)] = std::move(e);
  }
  ++total_;
}

std::vector<Event> Tracer::events() const {
  std::lock_guard lock(mu_);
  if (total_ <= capacity_) return ring_;
  std::vector<Event> out;
  out.reserve(ring_.size());
  const std::size_t start = static_cast<std::size_t>(total_ % capacity_);
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::int64_t Tracer::recorded() const {
  std::lock_guard lock(mu_);
  return total_;
}

std::int64_t Tracer::dropped() const {
  std::lock_guard lock(mu_);
  return std::max<std::int64_t>(
      0, total_ - static_cast<std::int64_t>(ring_.size()));
}

std::string Tracer::chrome_json(bool include_metrics) const {
  std::vector<Event> evs = events();
  std::stable_sort(evs.begin(), evs.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_us < b.ts_us;
                   });

  std::ostringstream os;
  os.imbue(std::locale::classic());  // '.' decimals whatever the app locale
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"iwg\"}}";
  for (const Event& e : evs) {
    os << ",{\"name\":\"";
    json_escape_into(os, e.name);
    os << "\",\"cat\":\"";
    json_escape_into(os, e.cat);
    os << "\",\"ph\":\"X\",\"ts\":" << std::fixed << std::setprecision(3)
       << e.ts_us << ",\"dur\":" << e.dur_us << std::defaultfloat
       << ",\"pid\":1,\"tid\":" << e.tid << ",\"args\":";
    args_into(os, e.args);
    os << '}';
  }
  if (include_metrics) {
    // Counters ride along as Chrome counter ("C") events stamped at the end
    // of the timeline, so hit rates etc. are visible next to the spans.
    const auto snap = MetricsRegistry::global().snapshot();
    const double ts = now_us();
    for (const auto& [name, value] : snap.counters) {
      os << ",{\"name\":\"";
      json_escape_into(os, name);
      os << "\",\"ph\":\"C\",\"ts\":" << std::fixed << std::setprecision(3)
         << ts << std::defaultfloat << ",\"pid\":1,\"args\":{\"value\":"
         << value << "}}";
    }
  }
  os << "]}";
  return os.str();
}

void Tracer::write_chrome_trace(const std::string& path,
                                bool include_metrics) const {
  std::ofstream out(path);
  IWG_CHECK_MSG(out.good(), "cannot open trace output: " + path);
  out << chrome_json(include_metrics);
  IWG_CHECK_MSG(out.good(), "trace write failed: " + path);
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint32_t Tracer::thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id = next.fetch_add(1);
  return id;
}

// ---------------------------------------------------------------------------
// ScopedSpan / Suppress

ScopedSpan::ScopedSpan(const char* name, const char* cat) {
  Tracer& t = Tracer::global();
  if (!t.active()) return;
  active_ = true;
  ev_.name = name;
  ev_.cat = cat;
  ev_.tid = Tracer::thread_id();
  start_us_ = t.now_us();
}

ScopedSpan::ScopedSpan(const std::string& name, const char* cat) {
  Tracer& t = Tracer::global();
  if (!t.active()) return;
  active_ = true;
  ev_.name = name;
  ev_.cat = cat;
  ev_.tid = Tracer::thread_id();
  start_us_ = t.now_us();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  Tracer& t = Tracer::global();
  ev_.ts_us = start_us_;
  ev_.dur_us = t.now_us() - start_us_;
  t.record(std::move(ev_));
}

ScopedSpan& ScopedSpan::arg(const char* key, const char* value) {
  if (active_) {
    ev_.args.push_back(Arg{key, Arg::Kind::kString, value, 0.0, 0});
  }
  return *this;
}

ScopedSpan& ScopedSpan::arg(const char* key, const std::string& value) {
  if (active_) {
    ev_.args.push_back(Arg{key, Arg::Kind::kString, value, 0.0, 0});
  }
  return *this;
}

ScopedSpan& ScopedSpan::arg(const char* key, double value) {
  if (active_) {
    ev_.args.push_back(Arg{key, Arg::Kind::kDouble, {}, value, 0});
  }
  return *this;
}

ScopedSpan& ScopedSpan::arg(const char* key, std::int64_t value) {
  if (active_) {
    ev_.args.push_back(Arg{key, Arg::Kind::kInt, {}, 0.0, value});
  }
  return *this;
}

Suppress::Suppress() { ++g_suppress_depth; }
Suppress::~Suppress() { --g_suppress_depth; }

// ---------------------------------------------------------------------------
// Metrics

void Distribution::record(double v) {
  std::lock_guard lock(mu_);
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  if (samples_.size() < kMaxSamples) {
    samples_.push_back(v);
  } else {
    // Classic reservoir replacement with a cheap deterministic LCG: every
    // recorded value keeps a kMaxSamples/count chance of being resident.
    rng_ = rng_ * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t j = rng_ % static_cast<std::uint64_t>(count_);
    if (j < kMaxSamples) samples_[static_cast<std::size_t>(j)] = v;
  }
}

Distribution::Summary Distribution::summary() const {
  std::lock_guard lock(mu_);
  Summary s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  if (!samples_.empty()) {
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const auto at = [&](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(sorted.size() - 1));
      return sorted[idx];
    };
    s.p50 = at(0.50);
    s.p99 = at(0.99);
  }
  return s;
}

void Distribution::reset() {
  std::lock_guard lock(mu_);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  samples_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked for the same reason as Tracer::global(): the registry may be
  // first used (and its static therefore constructed) after the at-exit
  // writers were registered, which would destroy it before they run.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Distribution& MetricsRegistry::distribution(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = distributions_[name];
  if (!slot) slot = std::make_unique<Distribution>();
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, d] : distributions_) {
    snap.distributions.emplace_back(name, d->summary());
  }
  return snap;
}

std::string MetricsRegistry::text_report() const {
  const Snapshot snap = snapshot();
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << "== iwg metrics ==\n";
  for (const auto& [name, value] : snap.counters) {
    os << "counter  " << std::left << std::setw(36) << name << ' '
       << std::right << std::setw(12) << value << '\n';
  }
  os << std::setprecision(6);
  for (const auto& [name, s] : snap.distributions) {
    os << "dist     " << std::left << std::setw(36) << name << std::right
       << " count=" << s.count << " sum=" << s.sum << " mean=" << s.mean()
       << " min=" << s.min << " p50=" << s.p50 << " p99=" << s.p99
       << " max=" << s.max << '\n';
  }
  return os.str();
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, d] : distributions_) d->reset();
}

void init_from_env() { Tracer::global(); }

void set_report_paths(const std::string& trace_path,
                      const std::string& metrics_path) {
  Tracer& tracer = Tracer::global();  // runs init_from_env_once first
  {
    std::lock_guard lock(g_report_mu);
    g_trace_path = trace_path;
    g_metrics_path = metrics_path;
    if (!g_trace_path.empty() || !g_metrics_path.empty()) {
      register_exit_writer_locked();
    }
  }
  if (!trace_path.empty() && !tracer.enabled()) tracer.enable();
}

bool flush_report() {
  Tracer::global();  // make sure env configuration has been read
  std::lock_guard lock(g_report_mu);
  return write_reports_locked(/*quiet=*/true);
}

}  // namespace iwg::trace
