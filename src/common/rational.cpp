#include "common/rational.hpp"

#include <cstdlib>

namespace iwg {

namespace {
// abs for __int128 (std::abs has no overload).
Rational::Int iabs(Rational::Int v) { return v < 0 ? -v : v; }
}  // namespace

Rational::Int Rational::gcd(Int a, Int b) {
  a = iabs(a);
  b = iabs(b);
  while (b != 0) {
    const Int t = a % b;
    a = b;
    b = t;
  }
  return a;
}

Rational::Int Rational::checked_mul(Int a, Int b) {
  if (a == 0 || b == 0) return 0;
  const Int r = a * b;
  IWG_CHECK_MSG(r / a == b, "rational multiplication overflow");
  return r;
}

Rational::Rational(Int n, Int d, bool /*normalized*/) : num_(n), den_(d) {}

Rational::Rational(long long n, long long d) {
  *this = from_int128(static_cast<Int>(n), static_cast<Int>(d));
}

Rational Rational::from_int128(Int n, Int d) {
  IWG_CHECK_MSG(d != 0, "rational with zero denominator");
  if (d < 0) {
    n = -n;
    d = -d;
  }
  const Int g = gcd(n, d);
  if (g > 1) {
    n /= g;
    d /= g;
  }
  return Rational(n, d, true);
}

Rational Rational::operator-() const { return Rational(-num_, den_, true); }

Rational Rational::operator+(const Rational& o) const {
  // num/den + o.num/o.den with a gcd pre-reduction to keep intermediates small.
  const Int g = gcd(den_, o.den_);
  const Int lhs = checked_mul(num_, o.den_ / g);
  const Int rhs = checked_mul(o.num_, den_ / g);
  return from_int128(lhs + rhs, checked_mul(den_, o.den_ / g));
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  // Cross-reduce before multiplying to minimize overflow risk.
  const Int g1 = gcd(num_, o.den_);
  const Int g2 = gcd(o.num_, den_);
  return Rational(checked_mul(num_ / g1, o.num_ / g2),
                  checked_mul(den_ / g2, o.den_ / g1), true);
}

Rational Rational::operator/(const Rational& o) const {
  return *this * o.reciprocal();
}

std::strong_ordering Rational::operator<=>(const Rational& o) const {
  const Int lhs = checked_mul(num_, o.den_);
  const Int rhs = checked_mul(o.num_, den_);
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

Rational Rational::abs() const { return Rational(iabs(num_), den_, true); }

Rational Rational::reciprocal() const {
  IWG_CHECK_MSG(num_ != 0, "reciprocal of zero");
  return num_ > 0 ? Rational(den_, num_, true) : Rational(-den_, -num_, true);
}

Rational Rational::pow(int e) const {
  if (e < 0) return reciprocal().pow(-e);
  Rational result(1);
  Rational base = *this;
  while (e > 0) {
    if (e & 1) result *= base;
    base *= base;
    e >>= 1;
  }
  return result;
}

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

namespace {
std::string int128_to_string(Rational::Int v) {
  if (v == 0) return "0";
  const bool neg = v < 0;
  unsigned __int128 u = neg ? static_cast<unsigned __int128>(-v)
                            : static_cast<unsigned __int128>(v);
  std::string s;
  while (u > 0) {
    s.insert(s.begin(), static_cast<char>('0' + static_cast<int>(u % 10)));
    u /= 10;
  }
  return neg ? "-" + s : s;
}
}  // namespace

std::string Rational::to_string() const {
  if (den_ == 1) return int128_to_string(num_);
  return int128_to_string(num_) + "/" + int128_to_string(den_);
}

}  // namespace iwg
