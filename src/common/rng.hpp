// Deterministic, seedable random number generation.
//
// All experiments in the reproduction are seeded so that tests and benches
// are bit-reproducible across runs. The generator is SplitMix64 (fast, good
// statistical quality for data generation; not cryptographic).
#pragma once

#include <cstdint>
#include <limits>

namespace iwg {

/// SplitMix64 PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    // 24 mantissa bits of entropy; enough for FP32 data generation.
    const float u = static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
    return lo + (hi - lo) * u;
  }

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    const double u = static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    return lo + (hi - lo) * u;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n) { return (*this)() % n; }

  /// Standard normal via Box–Muller (one value per call; simple over fast).
  float normal();

  /// Derive an independent stream (for per-worker RNGs).
  Rng split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ull); }

 private:
  std::uint64_t state_;
};

}  // namespace iwg
