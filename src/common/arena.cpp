#include "common/arena.hpp"

#include <algorithm>
#include <atomic>

namespace iwg {

namespace {

std::atomic<std::size_t> g_max_high_water{0};

void raise_global_high_water(std::size_t hw) {
  std::size_t cur = g_max_high_water.load(std::memory_order_relaxed);
  while (hw > cur && !g_max_high_water.compare_exchange_weak(
                         cur, hw, std::memory_order_relaxed)) {
  }
}

}  // namespace

ScratchArena& ScratchArena::local() {
  static thread_local ScratchArena arena;
  return arena;
}

std::size_t ScratchArena::max_high_water() {
  return g_max_high_water.load(std::memory_order_relaxed);
}

std::size_t ScratchArena::capacity() const {
  return blocks_.empty() ? 0 : prefix_.back() + blocks_.back().cap;
}

void ScratchArena::grow(std::size_t min_bytes) {
  std::size_t cap = blocks_.empty() ? kFirstBlockBytes : blocks_.back().cap * 2;
  cap = std::max(cap, min_bytes);
  prefix_.push_back(blocks_.empty() ? 0 : prefix_.back() + blocks_.back().cap);
  blocks_.push_back(Block{std::make_unique<std::byte[]>(cap), cap});
}

void* ScratchArena::alloc(std::size_t bytes) {
  bytes = std::max<std::size_t>((bytes + kAlign - 1) & ~(kAlign - 1), kAlign);
  // Skip forward past blocks too small for this request; release() restores
  // the exact (block, offset) cursor, so skipped tails are only fragmentation
  // for the lifetime of the current scope.
  while (cur_block_ < blocks_.size() &&
         cur_off_ + bytes > blocks_[cur_block_].cap) {
    ++cur_block_;
    cur_off_ = 0;
  }
  if (cur_block_ == blocks_.size()) grow(bytes);
  std::byte* p = blocks_[cur_block_].data.get() + cur_off_;
  cur_off_ += bytes;
  const std::size_t used = prefix_[cur_block_] + cur_off_;
  if (used > high_water_) {
    high_water_ = used;
    raise_global_high_water(used);
  }
  return p;
}

void ScratchArena::release(std::size_t block, std::size_t off) {
  cur_block_ = block;
  cur_off_ = off;
}

}  // namespace iwg
