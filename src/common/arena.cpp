#include "common/arena.hpp"

#include <algorithm>
#include <atomic>

namespace iwg {

namespace {

std::atomic<std::size_t> g_max_high_water{0};

// trim_all state: a bumped epoch plus the keep target it carries. Arenas
// compare the epoch when their outermost Scope opens and trim themselves on
// their own thread, which is the only thread allowed to touch them.
std::atomic<std::uint64_t> g_trim_epoch{0};
std::atomic<std::size_t> g_trim_keep{0};

void raise_global_high_water(std::size_t hw) {
  std::size_t cur = g_max_high_water.load(std::memory_order_relaxed);
  while (hw > cur && !g_max_high_water.compare_exchange_weak(
                         cur, hw, std::memory_order_relaxed)) {
  }
}

}  // namespace

ScratchArena& ScratchArena::local() {
  static thread_local ScratchArena arena;
  return arena;
}

std::size_t ScratchArena::max_high_water() {
  return g_max_high_water.load(std::memory_order_relaxed);
}

std::size_t ScratchArena::capacity() const {
  return blocks_.empty() ? 0 : prefix_.back() + blocks_.back().cap;
}

void ScratchArena::grow(std::size_t min_bytes) {
  std::size_t cap = blocks_.empty() ? kFirstBlockBytes : blocks_.back().cap * 2;
  cap = std::max(cap, min_bytes);
  prefix_.push_back(blocks_.empty() ? 0 : prefix_.back() + blocks_.back().cap);
  // operator new[] only guarantees 16-byte alignment; over-allocate and
  // round the base up so every offset (a kAlign multiple) is truly aligned.
  Block b;
  b.data = std::make_unique<std::byte[]>(cap + kAlign - 1);
  const auto raw = reinterpret_cast<std::uintptr_t>(b.data.get());
  b.base = b.data.get() + ((kAlign - raw % kAlign) % kAlign);
  b.cap = cap;
  blocks_.push_back(std::move(b));
}

void* ScratchArena::alloc(std::size_t bytes) {
  bytes = std::max<std::size_t>((bytes + kAlign - 1) & ~(kAlign - 1), kAlign);
  // Skip forward past blocks too small for this request; release() restores
  // the exact (block, offset) cursor, so skipped tails are only fragmentation
  // for the lifetime of the current scope.
  while (cur_block_ < blocks_.size() &&
         cur_off_ + bytes > blocks_[cur_block_].cap) {
    ++cur_block_;
    cur_off_ = 0;
  }
  if (cur_block_ == blocks_.size()) grow(bytes);
  std::byte* p = blocks_[cur_block_].base + cur_off_;
  cur_off_ += bytes;
  const std::size_t used = prefix_[cur_block_] + cur_off_;
  if (used > high_water_) {
    high_water_ = used;
    raise_global_high_water(used);
  }
  return p;
}

void ScratchArena::enter_scope() {
  if (scope_depth_ == 0) {
    const std::uint64_t e = g_trim_epoch.load(std::memory_order_relaxed);
    if (e != trim_epoch_seen_) {
      trim_epoch_seen_ = e;
      trim(g_trim_keep.load(std::memory_order_acquire));
    }
  }
  ++scope_depth_;
}

void ScratchArena::exit_scope(std::size_t block, std::size_t off) {
  cur_block_ = block;
  cur_off_ = off;
  --scope_depth_;
}

void ScratchArena::trim(std::size_t keep_bytes) {
  if (scope_depth_ != 0) return;  // live pointers may reach trailing blocks
  while (!blocks_.empty() && capacity() > keep_bytes) {
    const std::size_t last = blocks_.size() - 1;
    // Only blocks at or past the cursor are unused; the cursor's own block
    // is droppable only when nothing has been handed out from it.
    if (last < cur_block_ || (last == cur_block_ && cur_off_ > 0)) break;
    blocks_.pop_back();
    prefix_.pop_back();
  }
  if (cur_block_ > blocks_.size()) {
    cur_block_ = blocks_.size();
    cur_off_ = 0;
  }
}

void ScratchArena::trim_all(std::size_t keep_bytes) {
  g_trim_keep.store(keep_bytes, std::memory_order_release);
  g_trim_epoch.fetch_add(1, std::memory_order_release);
}

}  // namespace iwg
