#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace iwg {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads = hc > 1 ? hc - 1 : 0;  // leave the calling thread as a worker
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task.fn();
  }
}

void ThreadPool::parallel_for(std::int64_t count,
                              const std::function<void(std::int64_t)>& fn) {
  parallel_for(count, 1, fn);
}

void ThreadPool::parallel_for(std::int64_t count, std::int64_t grain,
                              const std::function<void(std::int64_t)>& fn) {
  if (count <= 0) return;
  if (grain < 1) grain = 1;
  const unsigned parties = size() + 1;  // workers + calling thread
  if (parties == 1 || count <= grain) {
    for (std::int64_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Dynamic chunking: each claim takes `grain` consecutive indices (1 for
  // coarse bodies — a whole simulator block or row tile — larger when the
  // caller wants claim overhead amortized across tiny tasks).
  //
  // The wait below is on *iterations completed*, not on helper tasks
  // finishing: helper tasks that never get claimed (because every worker is
  // itself blocked inside a nested parallel_for — the autotuner tunes from
  // pool workers) run late, claim nothing, and exit. That makes nested
  // parallel_for deadlock-free; all shared state is heap-owned so late
  // tasks touch nothing of the caller's stack.
  auto next = std::make_shared<std::atomic<std::int64_t>>(0);
  auto completed = std::make_shared<std::atomic<std::int64_t>>(0);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error = std::make_shared<std::exception_ptr>();
  auto error_mu = std::make_shared<std::mutex>();
  auto done_mu = std::make_shared<std::mutex>();
  auto done_cv = std::make_shared<std::condition_variable>();

  auto run_chunk = [=]() {
    for (;;) {
      const std::int64_t lo = next->fetch_add(grain, std::memory_order_relaxed);
      if (lo >= count) break;
      const std::int64_t hi = std::min<std::int64_t>(lo + grain, count);
      for (std::int64_t i = lo; i < hi; ++i) {
        try {
          fn(i);
        } catch (...) {
          if (!first_error->exchange(true)) {
            std::lock_guard lock(*error_mu);
            *error = std::current_exception();
          }
        }
      }
      if (completed->fetch_add(hi - lo) + (hi - lo) == count) {
        std::lock_guard done_lock(*done_mu);
        done_cv->notify_all();
      }
    }
  };

  const std::int64_t chunks = (count + grain - 1) / grain;
  const unsigned helpers =
      static_cast<unsigned>(std::min<std::int64_t>(parties - 1, chunks));
  {
    std::lock_guard lock(mu_);
    for (unsigned i = 0; i < helpers; ++i) {
      tasks_.push(Task{run_chunk});
    }
  }
  cv_.notify_all();

  run_chunk();  // calling thread participates
  {
    std::unique_lock lock(*done_mu);
    done_cv->wait(lock, [&] { return completed->load() >= count; });
  }
  if (first_error->load()) std::rethrow_exception(*error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::int64_t count,
                  const std::function<void(std::int64_t)>& fn) {
  ThreadPool::global().parallel_for(count, fn);
}

void parallel_for(std::int64_t count, std::int64_t grain,
                  const std::function<void(std::int64_t)>& fn) {
  ThreadPool::global().parallel_for(count, grain, fn);
}

std::int64_t parallel_grain(std::int64_t count) {
  const std::int64_t parties =
      static_cast<std::int64_t>(ThreadPool::global().size()) + 1;
  return std::max<std::int64_t>(1, count / (parties * 8));
}

}  // namespace iwg
