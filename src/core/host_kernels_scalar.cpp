// Scalar reference table — the semantic ground truth every SIMD table is
// tested against, and the fallback engine on CPUs without AVX2/ASIMD.
//
// This translation unit is compiled with -ffp-contract=off (see
// src/core/CMakeLists.txt): the bitwise and ULP contracts in
// host_kernels.hpp are stated relative to a reference that performs one
// rounding per multiply and per add, so the compiler must not fuse the
// scalar code into FMAs behind our back (GCC contracts by default, and
// aarch64 has baseline FMA that would otherwise change the reference).
#include "core/host_kernels.hpp"

namespace iwg::core::detail {

namespace {

// Dense: every (i, e) term is added, including zero coefficients and null
// rows. A null row contributes me·0.0f — note the multiply is kept (its
// ±0.0f sign depends on me's sign), so the per-element op sequence is
// identical to a vector table that folds a zero register in. Skipping would
// be cheaper here but costs the SIMD tables a branch per lane-block, and
// the bitwise contract requires one shared sequence.
void transform_cols_scalar(const float* m, int rows_n, int cols,
                           const float* const* rows, std::int64_t nc,
                           float* dst, std::int64_t dst_stride) {
  for (int i = 0; i < rows_n; ++i) {
    float* __restrict drow = dst + static_cast<std::int64_t>(i) * dst_stride;
    for (std::int64_t c = 0; c < nc; ++c) drow[c] = 0.0f;
    for (int e = 0; e < cols; ++e) {
      const float me = m[static_cast<std::size_t>(i) * cols + e];
      if (rows[e] != nullptr) {
        const float* __restrict src = rows[e];
        for (std::int64_t c = 0; c < nc; ++c) drow[c] += me * src[c];
      } else {
        const float z = me * 0.0f;
        for (std::int64_t c = 0; c < nc; ++c) drow[c] += z;
      }
    }
  }
}

// Unrolling k by 4 keeps one load+store of m per four updates; the
// additions stay in ascending-k order, so results match the rolled loop
// bit for bit.
void axpy_rank1_scalar(const float* __restrict d, const float* __restrict g,
                       float* __restrict m, std::int64_t kc, std::int64_t nj) {
  std::int64_t k = 0;
  for (; k + 4 <= kc; k += 4) {
    const float d0 = d[k];
    const float d1 = d[k + 1];
    const float d2 = d[k + 2];
    const float d3 = d[k + 3];
    const float* __restrict g0 = g + k * nj;
    const float* __restrict g1 = g0 + nj;
    const float* __restrict g2 = g1 + nj;
    const float* __restrict g3 = g2 + nj;
    for (std::int64_t j = 0; j < nj; ++j) {
      float acc = m[j];
      acc += d0 * g0[j];
      acc += d1 * g1[j];
      acc += d2 * g2[j];
      acc += d3 * g3[j];
      m[j] = acc;
    }
  }
  for (; k < kc; ++k) {
    const float dv = d[k];
    const float* __restrict gr = g + k * nj;
    for (std::int64_t j = 0; j < nj; ++j) m[j] += dv * gr[j];
  }
}

// The reference for the blocked form is literally the unblocked kernel per
// row: blocking is a vector-ISA register trick, not a semantic change.
void axpy_rank1_multi_scalar(const float* const* ds, const float* g,
                             float* const* ms, int rows, std::int64_t kc,
                             std::int64_t nj) {
  for (int r = 0; r < rows; ++r) {
    if (ds[r] != nullptr) axpy_rank1_scalar(ds[r], g, ms[r], kc, nj);
  }
}

void saxpy_scalar(float a, const float* __restrict x, float* __restrict y,
                  std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) y[j] += a * x[j];
}

// Dense for the same reason as transform_cols: zero A^T entries are folded
// in, keeping one op sequence across every table.
void out_transform_scalar(const float* at, int alpha, const float* m,
                          std::int64_t mstride, float* __restrict y,
                          std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) y[j] = 0.0f;
  for (int t = 0; t < alpha; ++t) {
    const float a = at[t];
    const float* __restrict mrow = m + static_cast<std::int64_t>(t) * mstride;
    for (std::int64_t j = 0; j < n; ++j) y[j] += a * mrow[j];
  }
}

float dot_scalar(const float* a, const float* b, std::int64_t n) {
  float acc = 0.0f;
  for (std::int64_t j = 0; j < n; ++j) acc += a[j] * b[j];
  return acc;
}

}  // namespace

const HostKernels& host_kernels_scalar() {
  static const HostKernels table = {
      transform_cols_scalar, axpy_rank1_scalar, axpy_rank1_multi_scalar,
      saxpy_scalar,          out_transform_scalar,
      dot_scalar,            "scalar",
      HostIsa::kScalar,
  };
  return table;
}

}  // namespace iwg::core::detail
