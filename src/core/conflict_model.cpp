#include "core/conflict_model.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace iwg::core {

namespace {

using LaneList = std::vector<std::pair<std::int64_t, int>>;  // (byte, width)

/// Accumulate the cost of one warp-wide request into `total`.
void price(sim::SmemRequestCost& total, const LaneList& lanes) {
  if (lanes.empty()) return;
  const sim::SmemRequestCost c = sim::smem_request_cost(lanes);
  total.passes += c.passes;
  total.ideal += c.ideal;
}

}  // namespace

GammaConflictPrediction predict_gamma_conflicts(const GammaConfig& cfg) {
  GammaConflictPrediction pred;

  const int alpha = cfg.alpha;
  const int threads = cfg.threads();
  const int bn = cfg.bn;
  const int bm = cfg.bm;
  const int ds_last = bm + ((cfg.pad_smem && !cfg.swizzle_ds) ? 4 : 0);
  // Region word bases inside the block's smem arena: Gs is allocated first,
  // Ds follows it (the double buffer doubles both).
  const int bufs = cfg.double_buffer ? 2 : 1;
  const std::int64_t gs_base = 0;
  const std::int64_t ds_base =
      static_cast<std::int64_t>(bufs) * cfg.bk * alpha * bn;

  const int ftpt = cfg.filter_tiles_per_thread;
  const int itpt = cfg.input_tiles_per_thread;
  const int gc = bn / cfg.a_len;
  const int dc = bm / cfg.b_len;
  const int tps = threads / alpha;  // outer-product threads per state

  // Per-thread staging/outer-product indices — the §5.2 / Figure-4 mapping,
  // written down from the formulas rather than shared with the kernel so the
  // test compares two independent derivations.
  struct Lane {
    int gk, gi;    // filter staging: k-channel in chunk, first OC column
    int xk, xi;    // input staging: k-channel in chunk, first tile column
    int ux;        // outer-product state
    int gidx, didx;
  };
  auto lane_of = [&](int flat) {
    Lane ln;
    const int tx = flat % cfg.threads_x;
    const int ty = flat / cfg.threads_x;
    ln.gk = ty % 8;
    ln.xk = tx % 8;
    const int slot_g = threads == 256 ? 2 * tx + (ty > 7 ? 1 : 0) : tx;
    const int slot_d = 2 * ty + (tx > 7 ? 1 : 0);
    ln.gi = slot_g * ftpt;
    ln.xi = slot_d * itpt;
    ln.ux = flat / tps;
    const int uy = flat % tps;
    int gcell, dcell;
    if (cfg.zshape_lanes && gc >= 2) {
      gcell = (uy % 2) + (uy / (2 * dc)) * 2;
      dcell = (uy % (2 * dc)) / 2;
    } else {
      gcell = uy % gc;
      dcell = uy / gc;
    }
    ln.gidx = gcell * cfg.a_len;
    ln.didx = dcell * cfg.b_len;
    return ln;
  };

  auto gs_word = [&](int k, int s, int col) {
    return gs_base + (static_cast<std::int64_t>(k) * alpha + s) * bn + col;
  };
  auto ds_word = [&](int k, int s, int col) {
    return ds_base + (static_cast<std::int64_t>(k) * alpha + s) * ds_last +
           col;
  };

  for (int warp0 = 0; warp0 < threads; warp0 += 32) {
    const int wend = std::min(threads, warp0 + 32);

    // ---- Staging stores. The kernel's per-lane store sequence is uniform
    // across the warp, so occurrence k of every lane forms one request:
    // (f, s) for the Gs stores, (it, s) for the Ds stores.
    for (int f = 0; f < ftpt; ++f) {
      for (int s = 0; s < alpha; ++s) {
        LaneList lanes;
        for (int flat = warp0; flat < wend; ++flat) {
          const Lane ln = lane_of(flat);
          lanes.emplace_back(gs_word(ln.gk, s, ln.gi + f) * 4, 4);
        }
        price(pred.gs_store, lanes);
      }
    }
    for (int it = 0; it < itpt; ++it) {
      for (int s = 0; s < alpha; ++s) {
        LaneList lanes;
        for (int flat = warp0; flat < wend; ++flat) {
          const Lane ln = lane_of(flat);
          const int col_raw = ln.xi + it;
          const int col =
              cfg.swizzle_ds ? (col_raw + 4 * ln.xk) % bm : col_raw;
          lanes.emplace_back(ds_word(ln.xk, s, col) * 4, 4);
        }
        price(pred.ds_store, lanes);
      }
    }

    // ---- Outer-product loads: 128-bit, one request per (ik, c4).
    for (int ik = 0; ik < cfg.bk; ++ik) {
      for (int c4 = 0; c4 < cfg.a_len / 4; ++c4) {
        LaneList lanes;
        for (int flat = warp0; flat < wend; ++flat) {
          const Lane ln = lane_of(flat);
          lanes.emplace_back(
              gs_word(ik, ln.ux, ln.gidx + 4 * c4) * 4, 16);
        }
        price(pred.gs_load, lanes);
      }
      for (int c4 = 0; c4 < cfg.b_len / 4; ++c4) {
        LaneList lanes;
        for (int flat = warp0; flat < wend; ++flat) {
          const Lane ln = lane_of(flat);
          const int col0 = cfg.swizzle_ds
                               ? (ln.didx + 4 * c4 + 4 * ik) % bm
                               : ln.didx + 4 * c4;
          lanes.emplace_back(ds_word(ik, ln.ux, col0) * 4, 16);
        }
        price(pred.ds_load, lanes);
      }
    }
  }

  return pred;
}

}  // namespace iwg::core
