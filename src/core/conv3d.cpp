#include "core/conv3d.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"
#include "winograd/plan.hpp"

namespace iwg::core {

void Conv3dShape::validate() const {
  IWG_CHECK(n > 0 && id > 0 && ih > 0 && iw > 0 && ic > 0 && oc > 0);
  IWG_CHECK(fd > 0 && fh > 0 && fw > 0 && pd >= 0 && ph >= 0 && pw >= 0);
  IWG_CHECK_MSG(od() > 0 && oh() > 0 && ow() > 0, "empty 3-D output volume");
}

TensorF conv3d_direct(const TensorF& x, const TensorF& w,
                      const Conv3dShape& s) {
  s.validate();
  IWG_CHECK(x.rank() == 5 && x.dim(0) == s.n && x.dim(1) == s.id &&
            x.dim(2) == s.ih && x.dim(3) == s.iw && x.dim(4) == s.ic);
  IWG_CHECK(w.rank() == 5 && w.dim(0) == s.oc && w.dim(1) == s.fd &&
            w.dim(2) == s.fh && w.dim(3) == s.fw && w.dim(4) == s.ic);
  const std::int64_t od = s.od(), oh = s.oh(), ow = s.ow();
  TensorF y({s.n, od, oh, ow, s.oc});
  parallel_for(s.n * od, [&](std::int64_t job) {
    const std::int64_t ni = job / od;
    const std::int64_t d = job % od;
    for (std::int64_t h = 0; h < oh; ++h) {
      for (std::int64_t wo = 0; wo < ow; ++wo) {
        for (std::int64_t oc = 0; oc < s.oc; ++oc) {
          float acc = 0.0f;
          for (std::int64_t fd = 0; fd < s.fd; ++fd) {
            const std::int64_t idp = d + fd - s.pd;
            if (idp < 0 || idp >= s.id) continue;
            for (std::int64_t fh = 0; fh < s.fh; ++fh) {
              const std::int64_t ihp = h + fh - s.ph;
              if (ihp < 0 || ihp >= s.ih) continue;
              for (std::int64_t fw = 0; fw < s.fw; ++fw) {
                const std::int64_t iwp = wo + fw - s.pw;
                if (iwp < 0 || iwp >= s.iw) continue;
                const float* xp = &x.at5(ni, idp, ihp, iwp, 0);
                const float* wp = &w.at5(oc, fd, fh, fw, 0);
                for (std::int64_t ic = 0; ic < s.ic; ++ic)
                  acc += xp[ic] * wp[ic];
              }
            }
          }
          y.at5(ni, d, h, wo, oc) = acc;
        }
      }
    }
  });
  return y;
}

namespace {

/// Winograd segment of the OW axis: 1-D tiles along W, state-domain
/// accumulation over (fd, fh, ic) — Stage 2 of the 2-D engine untouched.
void conv3d_gamma_segment(const TensorF& x, const TensorF& w,
                          const Conv3dShape& s, const GammaConfig& cfg,
                          std::int64_t ow_start, std::int64_t ow_len,
                          TensorF& y) {
  const int alpha = cfg.alpha;
  const int n_out = cfg.n;
  const int r = cfg.r;
  IWG_CHECK(r == s.fw);
  IWG_CHECK(ow_len % n_out == 0);
  const WinogradPlan& plan = get_plan(n_out, r);
  const TransformEval g_eval(alpha, r, plan.g_f, true);
  const TransformEval d_eval(alpha, alpha, plan.bt_f, true);

  const std::int64_t od = s.od(), oh = s.oh();
  const std::int64_t tiles_w = ow_len / n_out;

  // ĝ[fd][fh][t][ic][oc] — N-D Stage 1 only adds the depth coordinate.
  std::vector<float> ghat(static_cast<std::size_t>(s.fd * s.fh) * alpha *
                          s.ic * s.oc);
  parallel_for(s.fd * s.fh * s.ic, [&](std::int64_t job) {
    const std::int64_t fd = job / (s.fh * s.ic);
    const std::int64_t fh = (job / s.ic) % s.fh;
    const std::int64_t ic = job % s.ic;
    float taps[16];
    float gh[16];
    for (std::int64_t oc = 0; oc < s.oc; ++oc) {
      for (int j = 0; j < r; ++j) taps[j] = w.at5(oc, fd, fh, j, ic);
      g_eval.apply(taps, 1, gh, 1);
      for (int t = 0; t < alpha; ++t) {
        ghat[(((fd * s.fh + fh) * alpha + t) * s.ic + ic) *
                 static_cast<std::size_t>(s.oc) +
             static_cast<std::size_t>(oc)] = gh[t];
      }
    }
  });

  parallel_for(s.n * od * oh, [&](std::int64_t job) {
    const std::int64_t ni = job / (od * oh);
    const std::int64_t d = (job / oh) % od;
    const std::int64_t hi = job % oh;
    std::vector<float> dhat(static_cast<std::size_t>(alpha) * s.ic);
    std::vector<float> macc(static_cast<std::size_t>(alpha) * s.oc);
    float dt[16];
    float dh[16];
    for (std::int64_t tw = 0; tw < tiles_w; ++tw) {
      const std::int64_t iw0 = ow_start + tw * n_out - s.pw;
      std::fill(macc.begin(), macc.end(), 0.0f);
      for (std::int64_t fd = 0; fd < s.fd; ++fd) {
        const std::int64_t idp = d + fd - s.pd;
        if (idp < 0 || idp >= s.id) continue;
        for (std::int64_t fh = 0; fh < s.fh; ++fh) {
          const std::int64_t ihp = hi + fh - s.ph;
          if (ihp < 0 || ihp >= s.ih) continue;
          for (std::int64_t ic = 0; ic < s.ic; ++ic) {
            for (int e = 0; e < alpha; ++e) {
              const std::int64_t iw = iw0 + e;
              dt[e] = (iw >= 0 && iw < s.iw) ? x.at5(ni, idp, ihp, iw, ic)
                                             : 0.0f;
            }
            d_eval.apply(dt, 1, dh, 1);
            for (int t = 0; t < alpha; ++t)
              dhat[static_cast<std::size_t>(t) * s.ic + ic] = dh[t];
          }
          for (int t = 0; t < alpha; ++t) {
            const float* drow = &dhat[static_cast<std::size_t>(t) * s.ic];
            float* mrow = &macc[static_cast<std::size_t>(t) * s.oc];
            const float* gbase =
                &ghat[((fd * s.fh + fh) * alpha + t) * s.ic *
                      static_cast<std::size_t>(s.oc)];
            for (std::int64_t ic = 0; ic < s.ic; ++ic) {
              const float dv = drow[ic];
              if (dv == 0.0f) continue;
              const float* grow = gbase + ic * s.oc;
              for (std::int64_t oc = 0; oc < s.oc; ++oc)
                mrow[oc] += dv * grow[oc];
            }
          }
        }
      }
      for (int i = 0; i < n_out; ++i) {
        float* yrow = &y.at5(ni, d, hi, ow_start + tw * n_out + i, 0);
        const float* at_row = &plan.at_f[static_cast<std::size_t>(i) * alpha];
        for (std::int64_t oc = 0; oc < s.oc; ++oc) yrow[oc] = 0.0f;
        for (int t = 0; t < alpha; ++t) {
          const float a = at_row[t];
          if (a == 0.0f) continue;
          const float* mrow = &macc[static_cast<std::size_t>(t) * s.oc];
          for (std::int64_t oc = 0; oc < s.oc; ++oc) yrow[oc] += a * mrow[oc];
        }
      }
    }
  });
}

/// Implicit-GEMM tail for the leftover OW columns.
void conv3d_gemm_segment(const TensorF& x, const TensorF& w,
                         const Conv3dShape& s, std::int64_t ow_start,
                         std::int64_t ow_len, TensorF& y) {
  const std::int64_t od = s.od(), oh = s.oh();
  parallel_for(s.n * od * oh, [&](std::int64_t job) {
    const std::int64_t ni = job / (od * oh);
    const std::int64_t d = (job / oh) % od;
    const std::int64_t hi = job % oh;
    for (std::int64_t wo = ow_start; wo < ow_start + ow_len; ++wo) {
      for (std::int64_t oc = 0; oc < s.oc; ++oc) {
        float acc = 0.0f;
        for (std::int64_t fd = 0; fd < s.fd; ++fd) {
          const std::int64_t idp = d + fd - s.pd;
          if (idp < 0 || idp >= s.id) continue;
          for (std::int64_t fh = 0; fh < s.fh; ++fh) {
            const std::int64_t ihp = hi + fh - s.ph;
            if (ihp < 0 || ihp >= s.ih) continue;
            for (std::int64_t fw = 0; fw < s.fw; ++fw) {
              const std::int64_t iwp = wo + fw - s.pw;
              if (iwp < 0 || iwp >= s.iw) continue;
              const float* xp = &x.at5(ni, idp, ihp, iwp, 0);
              const float* wp = &w.at5(oc, fd, fh, fw, 0);
              for (std::int64_t ic = 0; ic < s.ic; ++ic)
                acc += xp[ic] * wp[ic];
            }
          }
        }
        y.at5(ni, d, hi, wo, oc) = acc;
      }
    }
  });
}

}  // namespace

TensorF conv3d_gamma_host(const TensorF& x, const TensorF& w,
                          const Conv3dShape& s,
                          const std::vector<Segment>& plan) {
  s.validate();
  IWG_CHECK(x.rank() == 5 && x.dim(0) == s.n && x.dim(1) == s.id &&
            x.dim(2) == s.ih && x.dim(3) == s.iw && x.dim(4) == s.ic);
  IWG_CHECK(w.rank() == 5 && w.dim(0) == s.oc && w.dim(1) == s.fd &&
            w.dim(2) == s.fh && w.dim(3) == s.fw && w.dim(4) == s.ic);
  TensorF y({s.n, s.od(), s.oh(), s.ow(), s.oc});
  std::int64_t covered = 0;
  for (const Segment& seg : plan) {
    IWG_CHECK_MSG(seg.ow_start == covered, "3-D boundary plan has gaps");
    if (seg.is_gemm) {
      conv3d_gemm_segment(x, w, s, seg.ow_start, seg.ow_len, y);
    } else {
      conv3d_gamma_segment(x, w, s, seg.cfg, seg.ow_start, seg.ow_len, y);
    }
    covered += seg.ow_len;
  }
  IWG_CHECK_MSG(covered == s.ow(), "3-D boundary plan does not cover OW");
  return y;
}

TensorF conv3d(const TensorF& x, const TensorF& w, const Conv3dShape& s) {
  s.validate();
  if (s.fw < 2 || s.fw > 9) {
    Segment seg;
    seg.is_gemm = true;
    seg.ow_start = 0;
    seg.ow_len = s.ow();
    return conv3d_gamma_host(x, w, s, {seg});
  }
  return conv3d_gamma_host(x, w, s,
                           plan_boundary(s.ow(), static_cast<int>(s.fw)));
}

}  // namespace iwg::core
