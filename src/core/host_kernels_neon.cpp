// ASIMD/NEON table (aarch64). Advanced SIMD is baseline on aarch64 — the
// armv8-a HWCAP always reports ASIMD — so there is no runtime feature probe
// to fail: if this build targets aarch64 the table exists, otherwise the
// factory returns nullptr.
//
// Same structure as the AVX2 table at 4 lanes: explicit vmul+vadd for the
// bitwise transform kernel (no compiler contraction), vfma for the
// ULP-contract kernels, unaligned-tolerant loads, scalar ragged tails in
// reference term order.
#include "core/host_kernels.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>
#include <vector>

namespace iwg::core::detail {

namespace {

// Channel-block outer, output-row inner: each source row is loaded once per
// block (null padding rows become a zero register) and reused for every
// output row. Dense and branch-free like the AVX2 table — ±0.0f terms are
// folded in, matching the dense scalar reference's op sequence exactly.
void transform_cols_neon(const float* m, int rows_n, int cols,
                         const float* const* rows, std::int64_t nc, float* dst,
                         std::int64_t dst_stride) {
  float32x4_t src[16];
  std::int64_t c = 0;
  for (; c + 4 <= nc; c += 4) {
    for (int e = 0; e < cols; ++e) {
      src[e] = rows[e] != nullptr ? vld1q_f32(rows[e] + c) : vdupq_n_f32(0.0f);
    }
    for (int i = 0; i < rows_n; ++i) {
      const float* mrow = m + static_cast<std::size_t>(i) * cols;
      float32x4_t acc = vdupq_n_f32(0.0f);
      for (int e = 0; e < cols; ++e) {
        acc = vaddq_f32(acc, vmulq_n_f32(src[e], mrow[e]));
      }
      vst1q_f32(dst + static_cast<std::int64_t>(i) * dst_stride + c, acc);
    }
  }
  for (; c < nc; ++c) {
    for (int i = 0; i < rows_n; ++i) {
      const float* mrow = m + static_cast<std::size_t>(i) * cols;
      float acc = 0.0f;
      for (int e = 0; e < cols; ++e) {
        acc += mrow[e] * (rows[e] != nullptr ? rows[e][c] : 0.0f);
      }
      dst[static_cast<std::int64_t>(i) * dst_stride + c] = acc;
    }
  }
}

void axpy_rank1_neon(const float* d, const float* g, float* m, std::int64_t kc,
                     std::int64_t nj) {
  std::int64_t j = 0;
  for (; j + 16 <= nj; j += 16) {
    float32x4_t acc0 = vld1q_f32(m + j);
    float32x4_t acc1 = vld1q_f32(m + j + 4);
    float32x4_t acc2 = vld1q_f32(m + j + 8);
    float32x4_t acc3 = vld1q_f32(m + j + 12);
    const float* gj = g + j;
    for (std::int64_t k = 0; k < kc; ++k) {
      const float32x4_t dv = vdupq_n_f32(d[k]);
      const float* gr = gj + k * nj;
      acc0 = vfmaq_f32(acc0, dv, vld1q_f32(gr));
      acc1 = vfmaq_f32(acc1, dv, vld1q_f32(gr + 4));
      acc2 = vfmaq_f32(acc2, dv, vld1q_f32(gr + 8));
      acc3 = vfmaq_f32(acc3, dv, vld1q_f32(gr + 12));
    }
    vst1q_f32(m + j, acc0);
    vst1q_f32(m + j + 4, acc1);
    vst1q_f32(m + j + 8, acc2);
    vst1q_f32(m + j + 12, acc3);
  }
  for (; j + 8 <= nj; j += 8) {
    float32x4_t acc0 = vld1q_f32(m + j);
    float32x4_t acc1 = vld1q_f32(m + j + 4);
    const float* gj = g + j;
    for (std::int64_t k = 0; k < kc; ++k) {
      const float32x4_t dv = vdupq_n_f32(d[k]);
      const float* gr = gj + k * nj;
      acc0 = vfmaq_f32(acc0, dv, vld1q_f32(gr));
      acc1 = vfmaq_f32(acc1, dv, vld1q_f32(gr + 4));
    }
    vst1q_f32(m + j, acc0);
    vst1q_f32(m + j + 4, acc1);
  }
  for (; j + 4 <= nj; j += 4) {
    float32x4_t acc = vld1q_f32(m + j);
    const float* gj = g + j;
    for (std::int64_t k = 0; k < kc; ++k) {
      acc = vfmaq_f32(acc, vdupq_n_f32(d[k]), vld1q_f32(gj + k * nj));
    }
    vst1q_f32(m + j, acc);
  }
  for (; j < nj; ++j) {
    float acc = m[j];
    for (std::int64_t k = 0; k < kc; ++k)
      acc = std::fmaf(d[k], g[k * nj + j], acc);
    m[j] = acc;
  }
}

// Blocked rank-1: each g vector feeds four accumulator rows (see the AVX2
// table for the load-bound rationale). 8-wide j blocks × 4 rows use 8
// accumulators + 2 g registers.
void axpy4_j_neon(const float* const* d, const float* g, float* const* m,
                  std::int64_t kc, std::int64_t nj) {
  std::int64_t j = 0;
  for (; j + 8 <= nj; j += 8) {
    float32x4_t a00 = vld1q_f32(m[0] + j), a01 = vld1q_f32(m[0] + j + 4);
    float32x4_t a10 = vld1q_f32(m[1] + j), a11 = vld1q_f32(m[1] + j + 4);
    float32x4_t a20 = vld1q_f32(m[2] + j), a21 = vld1q_f32(m[2] + j + 4);
    float32x4_t a30 = vld1q_f32(m[3] + j), a31 = vld1q_f32(m[3] + j + 4);
    const float* gj = g + j;
    for (std::int64_t k = 0; k < kc; ++k) {
      const float* gr = gj + k * nj;
      const float32x4_t g0 = vld1q_f32(gr);
      const float32x4_t g1 = vld1q_f32(gr + 4);
      a00 = vfmaq_n_f32(a00, g0, d[0][k]);
      a01 = vfmaq_n_f32(a01, g1, d[0][k]);
      a10 = vfmaq_n_f32(a10, g0, d[1][k]);
      a11 = vfmaq_n_f32(a11, g1, d[1][k]);
      a20 = vfmaq_n_f32(a20, g0, d[2][k]);
      a21 = vfmaq_n_f32(a21, g1, d[2][k]);
      a30 = vfmaq_n_f32(a30, g0, d[3][k]);
      a31 = vfmaq_n_f32(a31, g1, d[3][k]);
    }
    vst1q_f32(m[0] + j, a00);
    vst1q_f32(m[0] + j + 4, a01);
    vst1q_f32(m[1] + j, a10);
    vst1q_f32(m[1] + j + 4, a11);
    vst1q_f32(m[2] + j, a20);
    vst1q_f32(m[2] + j + 4, a21);
    vst1q_f32(m[3] + j, a30);
    vst1q_f32(m[3] + j + 4, a31);
  }
  for (; j + 4 <= nj; j += 4) {
    float32x4_t a0 = vld1q_f32(m[0] + j);
    float32x4_t a1 = vld1q_f32(m[1] + j);
    float32x4_t a2 = vld1q_f32(m[2] + j);
    float32x4_t a3 = vld1q_f32(m[3] + j);
    const float* gj = g + j;
    for (std::int64_t k = 0; k < kc; ++k) {
      const float32x4_t g0 = vld1q_f32(gj + k * nj);
      a0 = vfmaq_n_f32(a0, g0, d[0][k]);
      a1 = vfmaq_n_f32(a1, g0, d[1][k]);
      a2 = vfmaq_n_f32(a2, g0, d[2][k]);
      a3 = vfmaq_n_f32(a3, g0, d[3][k]);
    }
    vst1q_f32(m[0] + j, a0);
    vst1q_f32(m[1] + j, a1);
    vst1q_f32(m[2] + j, a2);
    vst1q_f32(m[3] + j, a3);
  }
  for (; j < nj; ++j) {
    for (int r = 0; r < 4; ++r) {
      float acc = m[r][j];
      for (std::int64_t k = 0; k < kc; ++k)
        acc = std::fmaf(d[r][k], g[k * nj + j], acc);
      m[r][j] = acc;
    }
  }
}

// Eight accumulator rows per g pass (16 accumulators + 2 g registers of
// the 32 NEON has): maximizes reuse of each streamed ĝ vector, which is
// what bounds the engine once the FMA pipes fill.
void axpy8_j_neon(const float* const* d, const float* g, float* const* m,
                  std::int64_t kc, std::int64_t nj) {
  std::int64_t j = 0;
  for (; j + 8 <= nj; j += 8) {
    float32x4_t a00 = vld1q_f32(m[0] + j), a01 = vld1q_f32(m[0] + j + 4);
    float32x4_t a10 = vld1q_f32(m[1] + j), a11 = vld1q_f32(m[1] + j + 4);
    float32x4_t a20 = vld1q_f32(m[2] + j), a21 = vld1q_f32(m[2] + j + 4);
    float32x4_t a30 = vld1q_f32(m[3] + j), a31 = vld1q_f32(m[3] + j + 4);
    float32x4_t a40 = vld1q_f32(m[4] + j), a41 = vld1q_f32(m[4] + j + 4);
    float32x4_t a50 = vld1q_f32(m[5] + j), a51 = vld1q_f32(m[5] + j + 4);
    float32x4_t a60 = vld1q_f32(m[6] + j), a61 = vld1q_f32(m[6] + j + 4);
    float32x4_t a70 = vld1q_f32(m[7] + j), a71 = vld1q_f32(m[7] + j + 4);
    const float* gj = g + j;
    for (std::int64_t k = 0; k < kc; ++k) {
      const float* gr = gj + k * nj;
      const float32x4_t g0 = vld1q_f32(gr);
      const float32x4_t g1 = vld1q_f32(gr + 4);
      a00 = vfmaq_n_f32(a00, g0, d[0][k]);
      a01 = vfmaq_n_f32(a01, g1, d[0][k]);
      a10 = vfmaq_n_f32(a10, g0, d[1][k]);
      a11 = vfmaq_n_f32(a11, g1, d[1][k]);
      a20 = vfmaq_n_f32(a20, g0, d[2][k]);
      a21 = vfmaq_n_f32(a21, g1, d[2][k]);
      a30 = vfmaq_n_f32(a30, g0, d[3][k]);
      a31 = vfmaq_n_f32(a31, g1, d[3][k]);
      a40 = vfmaq_n_f32(a40, g0, d[4][k]);
      a41 = vfmaq_n_f32(a41, g1, d[4][k]);
      a50 = vfmaq_n_f32(a50, g0, d[5][k]);
      a51 = vfmaq_n_f32(a51, g1, d[5][k]);
      a60 = vfmaq_n_f32(a60, g0, d[6][k]);
      a61 = vfmaq_n_f32(a61, g1, d[6][k]);
      a70 = vfmaq_n_f32(a70, g0, d[7][k]);
      a71 = vfmaq_n_f32(a71, g1, d[7][k]);
    }
    vst1q_f32(m[0] + j, a00);
    vst1q_f32(m[0] + j + 4, a01);
    vst1q_f32(m[1] + j, a10);
    vst1q_f32(m[1] + j + 4, a11);
    vst1q_f32(m[2] + j, a20);
    vst1q_f32(m[2] + j + 4, a21);
    vst1q_f32(m[3] + j, a30);
    vst1q_f32(m[3] + j + 4, a31);
    vst1q_f32(m[4] + j, a40);
    vst1q_f32(m[4] + j + 4, a41);
    vst1q_f32(m[5] + j, a50);
    vst1q_f32(m[5] + j + 4, a51);
    vst1q_f32(m[6] + j, a60);
    vst1q_f32(m[6] + j + 4, a61);
    vst1q_f32(m[7] + j, a70);
    vst1q_f32(m[7] + j + 4, a71);
  }
  for (; j < nj; ++j) {
    for (int r = 0; r < 8; ++r) {
      float acc = m[r][j];
      for (std::int64_t k = 0; k < kc; ++k)
        acc = std::fmaf(d[r][k], g[k * nj + j], acc);
      m[r][j] = acc;
    }
  }
}

void axpy_rank1_multi_neon(const float* const* ds, const float* g,
                           float* const* ms, int rows, std::int64_t kc,
                           std::int64_t nj) {
  const float* d[8];
  float* m[8];
  int r = 0;
  int n = 0;
  for (;;) {
    while (r < rows && n < 8) {
      if (ds[r] != nullptr) {
        d[n] = ds[r];
        m[n] = ms[r];
        ++n;
      }
      ++r;
    }
    if (n == 8) {
      axpy8_j_neon(d, g, m, kc, nj);
      n = 0;
    }
    if (r == rows) break;
  }
  if (n >= 6) {
    // Ragged 6- or 7-row remainder: pad the octet with dummy rows (real d̂
    // source, thread-local sink destination) instead of peeling leftovers
    // through the load-bound single-row kernel. Real rows' chains are
    // independent of the dummies — bit-identical to the per-row split.
    static thread_local std::vector<float> sink;
    if (static_cast<std::int64_t>(sink.size()) < nj)
      sink.resize(static_cast<std::size_t>(nj));
    for (int i = n; i < 8; ++i) {
      d[i] = d[0];
      m[i] = sink.data();
    }
    axpy8_j_neon(d, g, m, kc, nj);
    return;
  }
  if (n >= 4) {
    axpy4_j_neon(d, g, m, kc, nj);
    d[0] = d[4];
    d[1] = d[5];
    d[2] = d[6];
    m[0] = m[4];
    m[1] = m[5];
    m[2] = m[6];
    n -= 4;
  }
  for (int i = 0; i < n; ++i) axpy_rank1_neon(d[i], g, m[i], kc, nj);
}

void saxpy_neon(float a, const float* x, float* y, std::int64_t n) {
  const float32x4_t av = vdupq_n_f32(a);
  std::int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    vst1q_f32(y + j, vfmaq_f32(vld1q_f32(y + j), av, vld1q_f32(x + j)));
  }
  for (; j < n; ++j) y[j] = std::fmaf(a, x[j], y[j]);
}

// Dense like transform_cols: branch-free, ascending t, one FMA per term.
void out_transform_neon(const float* at, int alpha, const float* m,
                        std::int64_t mstride, float* y, std::int64_t n) {
  std::int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    float32x4_t acc = vdupq_n_f32(0.0f);
    for (int t = 0; t < alpha; ++t) {
      acc = vfmaq_n_f32(
          acc, vld1q_f32(m + static_cast<std::int64_t>(t) * mstride + j),
          at[t]);
    }
    vst1q_f32(y + j, acc);
  }
  for (; j < n; ++j) {
    float acc = 0.0f;
    for (int t = 0; t < alpha; ++t) {
      acc = std::fmaf(at[t], m[static_cast<std::int64_t>(t) * mstride + j],
                      acc);
    }
    y[j] = acc;
  }
}

float dot_neon(const float* a, const float* b, std::int64_t n) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  std::int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    acc = vfmaq_f32(acc, vld1q_f32(a + j), vld1q_f32(b + j));
  }
  float total = vaddvq_f32(acc);
  for (; j < n; ++j) total = std::fmaf(a[j], b[j], total);
  return total;
}

}  // namespace

const HostKernels* host_kernels_neon() {
  static const HostKernels table = {
      transform_cols_neon, axpy_rank1_neon, axpy_rank1_multi_neon,
      saxpy_neon,          out_transform_neon,
      dot_neon,            "neon",
      HostIsa::kNeon,
  };
  return &table;
}

}  // namespace iwg::core::detail

#else  // !__aarch64__

namespace iwg::core::detail {
const HostKernels* host_kernels_neon() { return nullptr; }
}  // namespace iwg::core::detail

#endif
