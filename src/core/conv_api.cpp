#include "core/conv_api.hpp"

#include <optional>

#include "common/trace.hpp"
#include "core/gamma_host.hpp"
#include "tensor/layout.hpp"

namespace iwg::core {

namespace {

/// The ĝ-reuse handle the host engine derives from caller options.
FilterCacheRef cache_ref(const ConvOptions& opts) {
  FilterCacheRef fc;
  fc.cache = opts.filter_cache;
  fc.version = opts.weights_version;
  return fc;
}

/// Common span args for one boundary-plan segment. Templated over the span
/// type so the call sites also compile against trace::NullSpan under
/// -DIWG_TRACE_DISABLE.
template <typename SpanT>
void tag_segment(SpanT& span, const Segment& seg) {
  if (!span.active()) return;
  span.arg("ow_start", seg.ow_start).arg("ow_len", seg.ow_len);
  if (!seg.is_gemm) {
    span.arg("alpha", seg.cfg.alpha)
        .arg("n", seg.cfg.n)
        .arg("r", seg.cfg.r)
        .arg("variant", variant_name(seg.cfg.variant));
  }
}

/// Export one kernel launch's measured hardware counters into the flight
/// recorder: per-kernel span args (readable next to the slice in Perfetto)
/// plus process-level metrics, so the paper's §5.2 bank-conflict and NHWC
/// coalescing claims are continuously measured numbers rather than one-off
/// bench output.
template <typename SpanT>
void export_sim_stats(SpanT& span, const sim::LaunchStats& st) {
  span.arg("sim.blocks", st.blocks)
      .arg("sim.fma", st.fma)
      .arg("sim.gld_sectors", st.gld_sectors)
      .arg("sim.gst_sectors", st.gst_sectors)
      .arg("sim.gld_efficiency", st.gld_efficiency())
      .arg("sim.smem_ld_passes", st.smem_ld_passes)
      .arg("sim.smem_ld_ideal", st.smem_ld_ideal)
      .arg("sim.smem_st_passes", st.smem_st_passes)
      .arg("sim.smem_st_ideal", st.smem_st_ideal)
      .arg("sim.smem_ld_conflict_factor", st.smem_ld_conflict_factor())
      .arg("sim.smem_st_conflict_factor", st.smem_st_conflict_factor())
      .arg("sim.barriers", st.barriers);
  auto& reg = trace::MetricsRegistry::global();
  static trace::Counter& launches = reg.counter("sim.counted_launches");
  static trace::Histogram& ld_cf =
      reg.histogram("sim.smem_ld_conflict_factor");
  static trace::Histogram& st_cf =
      reg.histogram("sim.smem_st_conflict_factor");
  static trace::Histogram& gld_eff = reg.histogram("sim.gld_efficiency");
  launches.add();
  ld_cf.record(st.smem_ld_conflict_factor());
  st_cf.record(st.smem_st_conflict_factor());
  gld_eff.record(st.gld_efficiency());
}

}  // namespace

std::vector<Segment> plan_for(const ConvShape& s, const ConvOptions& opts) {
  s.validate();
  if (!opts.use_winograd || s.fw < 2 || s.fw > 9) {
    // Whole width handled by GEMM (also the non-unit-stride fallback path).
    Segment seg;
    seg.is_gemm = true;
    seg.ow_start = 0;
    seg.ow_len = s.ow();
    return {seg};
  }
  const bool c64 = opts.allow_c64 && s.ic % 64 == 0 && s.oc % 64 == 0;
  return plan_boundary(s.ow(), static_cast<int>(s.fw), opts.allow_ruse, c64);
}

std::vector<Segment> plan_single(const ConvShape& s,
                                 const GammaConfig& primary) {
  s.validate();
  IWG_CHECK(primary.r == s.fw);
  const std::int64_t gran =
      static_cast<std::int64_t>(primary.n) *
      (primary.variant == Variant::kRuse ? 2 : 1);
  std::vector<Segment> plan;
  std::int64_t start = 0;
  std::int64_t remaining = s.ow();
  const std::int64_t len = remaining - remaining % gran;
  if (len > 0) {
    plan.push_back(Segment{false, primary, start, len});
    start += len;
    remaining -= len;
  }
  // A ruse primary covers tile *pairs*; its base version mops up a single
  // leftover tile before the GEMM tail (the §5.5 chaining discipline).
  if (primary.variant == Variant::kRuse && remaining >= primary.n) {
    const GammaConfig base =
        GammaConfig::make(primary.alpha, primary.n, primary.r);
    const std::int64_t blen = remaining - remaining % primary.n;
    plan.push_back(Segment{false, base, start, blen});
    start += blen;
    remaining -= blen;
  }
  if (remaining > 0) {
    Segment seg;
    seg.is_gemm = true;
    seg.ow_start = start;
    seg.ow_len = remaining;
    plan.push_back(seg);
  }
  return plan;
}

TensorF conv2d(const TensorF& x, const TensorF& w, const ConvShape& s,
               const ConvOptions& opts) {
  std::optional<trace::Suppress> mute;
  if (!opts.trace) mute.emplace();
  return conv2d_gamma_host(x, w, s, plan_for(s, opts), cache_ref(opts));
}

TensorF conv2d(const TensorF& x, const TensorF& w, const ConvShape& s,
               const std::vector<Segment>& plan, const ConvOptions& opts) {
  std::optional<trace::Suppress> mute;
  if (!opts.trace) mute.emplace();
  return conv2d_gamma_host(x, w, s, plan, cache_ref(opts));
}

TensorF conv2d_nchw(const TensorF& x_nchw, const TensorF& w,
                    const ConvShape& s, const ConvOptions& opts) {
  const TensorF x = nchw_to_nhwc(x_nchw);
  return nhwc_to_nchw(conv2d(x, w, s, opts));
}

TensorF deconv2d(const TensorF& dy, const TensorF& w, const ConvShape& s,
                 const ConvOptions& opts) {
  std::optional<trace::Suppress> mute;
  if (!opts.trace) mute.emplace();
  // Plan over the *input* width (the deconv output) with the same priorities.
  ConvShape b = GammaKernel::make_backward_shape(s);
  return deconv2d_gamma_host(dy, w, s, plan_for(b, opts), cache_ref(opts));
}

TensorF deconv2d_nchw(const TensorF& dy_nchw, const TensorF& w,
                      const ConvShape& s, const ConvOptions& opts) {
  const TensorF dy = nchw_to_nhwc(dy_nchw);
  return nhwc_to_nchw(deconv2d(dy, w, s, opts));
}

namespace {

TensorF run_plan_sim(const TensorF& x, const TensorF& w_orig,
                     const ConvShape& s, const std::vector<Segment>& plan) {
  // Forward kernels read the pre-transposed FH,FW,IC,OC filter (§5.1); the
  // GEMM tail reads the precomputed k-major matrix.
  const TensorF wt = transpose_filter_to_fhwio(w_orig);

  TensorF y({s.n, s.oh(), s.ow(), s.oc});
  sim::GmemBuf xbuf(x.data(), x.size(), /*clamp_zero=*/true);
  sim::GmemBuf wbuf(wt.data(), wt.size());
  sim::GmemBuf ybuf(y.data(), y.size());

  TensorF wgemm;
  std::int64_t covered = 0;
  for (const Segment& seg : plan) {
    IWG_CHECK_MSG(seg.ow_start == covered, "plan has gaps");
    covered += seg.ow_len;
    IWG_TRACE_SPAN(span, seg.is_gemm ? "gemm_sim" : "gamma_sim", "sim");
    tag_segment(span, seg);
    // When the flight recorder is on, run the launch with hardware counters
    // and attach the measurements to this kernel's span.
    const bool counting = span.active();
    if (seg.is_gemm) {
      if (wgemm.empty())
        wgemm = precompute_gemm_filter(w_orig, GemmLayout::kNHWC);
      sim::GmemBuf wg(wgemm.data(), wgemm.size());
      ImplicitGemmKernel k(s, GemmLayout::kNHWC, xbuf, wg, ybuf, seg.ow_start,
                           seg.ow_len);
      const sim::LaunchStats st = sim::launch_all(k, k.grid(), counting);
      if (counting) export_sim_stats(span, st);
    } else {
      GammaKernel k(seg.cfg, s, ConvDir::kForward, xbuf, wbuf, ybuf,
                    seg.ow_start, seg.ow_len);
      const sim::LaunchStats st = sim::launch_all(k, k.grid(), counting);
      if (counting) export_sim_stats(span, st);
    }
  }
  IWG_CHECK_MSG(covered == s.ow(), "plan does not cover OW");
  return y;
}

}  // namespace

TensorF conv2d_sim(const TensorF& x, const TensorF& w, const ConvShape& s,
                   const std::vector<Segment>& plan) {
  s.validate();
  IWG_CHECK(x.dim(0) == s.n && x.dim(1) == s.ih && x.dim(2) == s.iw &&
            x.dim(3) == s.ic);
  IWG_CHECK(w.dim(0) == s.oc && w.dim(1) == s.fh && w.dim(2) == s.fw &&
            w.dim(3) == s.ic);
  return run_plan_sim(x, w, s, plan);
}

TensorF deconv2d_sim(const TensorF& dy, const TensorF& w, const ConvShape& s,
                     const std::vector<Segment>& plan) {
  s.validate();
  const ConvShape b = GammaKernel::make_backward_shape(s);
  IWG_CHECK(dy.dim(0) == b.n && dy.dim(1) == b.ih && dy.dim(2) == b.iw &&
            dy.dim(3) == b.ic);

  // Γ segments read the original filter (rotation fused); the GEMM tail, if
  // any, needs the explicit equivalent-forward filter. run_plan_sim derives
  // the tail filter from the tensor we hand it, so pass the rotated filter
  // and use kBackwardData only for the Γ kernels by splitting the plan here.
  TensorF y({b.n, b.oh(), b.ow(), b.oc});
  sim::GmemBuf xbuf(dy.data(), dy.size(), /*clamp_zero=*/true);
  sim::GmemBuf wbuf(w.data(), w.size());
  sim::GmemBuf ybuf(y.data(), y.size());

  TensorF wrot;  // equivalent forward filter for the GEMM tail
  TensorF wgemm;
  std::int64_t covered = 0;
  for (const Segment& seg : plan) {
    IWG_CHECK_MSG(seg.ow_start == covered, "plan has gaps");
    covered += seg.ow_len;
    IWG_TRACE_SPAN(span, seg.is_gemm ? "gemm_sim" : "gamma_sim", "sim");
    tag_segment(span, seg);
    const bool counting = span.active();
    if (seg.is_gemm) {
      if (wgemm.empty()) {
        wrot = deconv_filter(w);
        wgemm = precompute_gemm_filter(wrot, GemmLayout::kNHWC);
      }
      sim::GmemBuf wg(wgemm.data(), wgemm.size());
      ImplicitGemmKernel k(b, GemmLayout::kNHWC, xbuf, wg, ybuf, seg.ow_start,
                           seg.ow_len);
      const sim::LaunchStats st = sim::launch_all(k, k.grid(), counting);
      if (counting) export_sim_stats(span, st);
    } else {
      GammaKernel k(seg.cfg, b, ConvDir::kBackwardData, xbuf, wbuf, ybuf,
                    seg.ow_start, seg.ow_len);
      const sim::LaunchStats st = sim::launch_all(k, k.grid(), counting);
      if (counting) export_sim_stats(span, st);
    }
  }
  IWG_CHECK_MSG(covered == b.ow(), "plan does not cover the deconv output");
  return y;
}

ConvPerfReport profile_conv2d(const ConvShape& s, const sim::DeviceProfile& dev,
                              const std::vector<Segment>& plan,
                              int max_samples) {
  s.validate();
  ConvPerfReport rep;
  const double xbytes = 4.0 * s.n * s.ih * s.iw * s.ic;
  const double wbytes = 4.0 * s.oc * s.fh * s.fw * s.ic;
  const double ybytes = 4.0 * s.n * s.oh() * s.ow() * s.oc;
  const double footprint = xbytes + wbytes + ybytes;
  const int launches = static_cast<int>(plan.size());

  // Address-only buffers: profiling never allocates paper-scale tensors.
  sim::GmemBuf xbuf(static_cast<float*>(nullptr),
                    s.n * s.ih * s.iw * s.ic, true);
  sim::GmemBuf wbuf(static_cast<float*>(nullptr),
                    s.oc * s.fh * s.fw * s.ic);
  sim::GmemBuf ybuf(static_cast<float*>(nullptr),
                    s.n * s.oh() * s.ow() * s.oc);
  sim::GmemBuf wgemm(static_cast<float*>(nullptr),
                     s.fh * s.fw * s.ic * s.oc);

  for (const Segment& seg : plan) {
    const double frac =
        static_cast<double>(seg.ow_len) / static_cast<double>(s.ow());
    const double seg_flops = s.flops() * frac;
    IWG_TRACE_SPAN(span, seg.is_gemm ? "profile.gemm" : "profile.gamma",
                   "profile");
    tag_segment(span, seg);
    sim::PerfEstimate est;
    sim::LaunchStats seg_stats;
    if (seg.is_gemm) {
      ImplicitGemmKernel k(s, GemmLayout::kNHWC, xbuf, wgemm, ybuf,
                           seg.ow_start, seg.ow_len);
      est = profile_gemm(k, dev, seg_flops, footprint * frac, max_samples, 1,
                         &seg_stats);
    } else {
      GammaKernel k(seg.cfg, s, ConvDir::kForward, xbuf, wbuf, ybuf,
                    seg.ow_start, seg.ow_len);
      est = profile_gamma(k, dev, seg_flops, footprint * frac, max_samples, 1,
                          &seg_stats);
    }
    rep.stats.merge(seg_stats);
    export_sim_stats(span, seg_stats);
    // The paper's roofline attribution (§6): per-resource analytic split.
    span.arg("time_s", est.time_s)
        .arg("gflops", est.gflops)
        .arg("t_compute", est.t_compute)
        .arg("t_dram", est.t_dram)
        .arg("t_l2", est.t_l2)
        .arg("t_smem", est.t_smem)
        .arg("dram_bytes", est.dram_bytes)
        .arg("bound", est.bound);
    rep.segments.push_back(est);
    rep.time_s += est.time_s;
  }
  rep.time_s += dev.launch_overhead_s * (launches - 1);
  rep.gflops = s.flops() / rep.time_s / 1e9;
  // Filter transposition (§5.1): one read + one write of W over DRAM.
  rep.transpose_s = 2.0 * wbytes / (dev.dram_bw_gbps * 1e9) +
                    dev.launch_overhead_s;
  return rep;
}

ConvPerfReport profile_gemm_conv2d(const ConvShape& s,
                                   const sim::DeviceProfile& dev,
                                   GemmLayout layout, int max_samples) {
  s.validate();
  ConvPerfReport rep;
  const double xbytes = 4.0 * s.n * s.ih * s.iw * s.ic;
  const double wbytes = 4.0 * s.oc * s.fh * s.fw * s.ic;
  const double ybytes = 4.0 * s.n * s.oh() * s.ow() * s.oc;

  sim::GmemBuf xbuf(static_cast<float*>(nullptr),
                    s.n * s.ih * s.iw * s.ic, true);
  sim::GmemBuf wbuf(static_cast<float*>(nullptr),
                    s.fh * s.fw * s.ic * s.oc);
  sim::GmemBuf ybuf(static_cast<float*>(nullptr),
                    s.n * s.oh() * s.ow() * s.oc);
  ImplicitGemmKernel k(s, layout, xbuf, wbuf, ybuf, 0, s.ow());
  const sim::PerfEstimate est =
      profile_gemm(k, dev, s.flops(), xbytes + wbytes + ybytes, max_samples, 1,
                   &rep.stats);
  rep.segments.push_back(est);
  rep.time_s = est.time_s;
  rep.gflops = est.gflops;
  rep.transpose_s = 0.0;  // precomp filter is part of cuDNN's setup as well
  return rep;
}

}  // namespace iwg::core
