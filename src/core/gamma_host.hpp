// Host (CPU) execution engine for Im2col-Winograd.
//
// Same mathematics and FP32 accumulation structure as the GPU kernels —
// 1-D Winograd per filter row, elementwise accumulation over (FH, IC) in the
// α-state domain, one output transform per tile — organized for CPU
// efficiency:
//
//   * transformed filters ĝ come from the FilterTransformCache (or a
//     per-call memo), so a boundary plan — and, through `src/nn`, a whole
//     optimizer step — transforms filters once per (weights version, α, r)
//     instead of once per segment execution;
//   * each (image, tile-column) task walks all OH output rows with a ring
//     of the last FH transformed input rows, so the α·IC input transform of
//     a row is computed once and reused by every filter row that consumes
//     it — the host analogue of the paper's §5.4 overlap reuse (the old
//     row-major order re-transformed each input row up to FH times);
//   * per-task scratch lives in the thread-local ScratchArena (no heap
//     churn inside parallel_for bodies), and the inner ĝ·d̂ accumulation is
//     a 4-way-unrolled contiguous axpy the compiler vectorizes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/gamma_config.hpp"
#include "tensor/conv_shape.hpp"
#include "tensor/tensor.hpp"

namespace iwg {
struct WinogradPlan;
}

namespace iwg::core {

class FilterTransformCache;
struct HostKernels;

namespace detail {

/// One image slot of a Γ dispatch, dense or indirect. `rows` is the row
/// indirection: rows[ihp + ph] is input row ihp (an IW·IC NHWC slice),
/// nullptr for rows inside the zero padding — null is the shared zero row
/// the host kernels already understand (transform_cols reads a null tap as
/// zeros, axpy_rank1_multi skips null d̂ rows), so padding is an address,
/// never materialized storage. Table length is ih + 2·ph.
struct ImageTask {
  const float* const* rows = nullptr;
  float* y = nullptr;  ///< OH×OW×OC output base for this image
  std::int64_t ih = 0;
  std::int64_t iw = 0;
  std::int64_t oh = 0;
  std::int64_t ow = 0;
};

/// One (image, tile-column) Γ task: the sliding-window ring over OH row
/// blocks. Shared verbatim by the dense segment entry points and
/// conv2d_gamma_host_indirect, so the two paths produce bitwise-identical
/// outputs per image by construction. `geom` contributes the fields every
/// image of a dispatch shares (ic/oc/fh/ph/pw); per-image extents live in
/// `img`.
void gamma_tile_column(const ImageTask& img, const ConvShape& geom,
                       const GammaConfig& cfg, const WinogradPlan& plan,
                       const float* ghat, const HostKernels& hk,
                       std::int64_t ow_start, std::int64_t tw);

/// One output row of the implicit-GEMM boundary tail, same sharing story.
void gemm_row(const ImageTask& img, const ConvShape& geom, const float* w,
              const HostKernels& hk, std::int64_t hi, std::int64_t ow_start,
              std::int64_t ow_len);

/// Fill a row table (length ih + 2·ph) for a densely stored image: in-bounds
/// rows point into `x`, padding rows stay nullptr.
void fill_row_table(const float** rows, const float* x, std::int64_t ih,
                    std::int64_t iw, std::int64_t ic, std::int64_t ph);

}  // namespace detail

/// How the host engine obtains (and possibly reuses) transformed filters.
/// Default-constructed: no cross-call cache — transforms are still shared
/// across the segments of one call, but recomputed per call. `src/nn`
/// threads the global cache plus the parameter's bumped version through
/// here so transforms survive across forward/backward and across steps.
struct FilterCacheRef {
  FilterTransformCache* cache = nullptr;  ///< nullptr: per-call reuse only
  std::uint64_t version = 0;              ///< weights version (cache key)
  const void* key = nullptr;              ///< nullptr: use w.data()
  bool deconv = false;                    ///< backward-data transform flag
};

/// Convolution over one OW segment with Γα(n,r); writes into `y` in place.
/// `w` is the original OC,FH,FW,IC filter (transformed internally).
void conv2d_gamma_host_segment(const TensorF& x, const TensorF& w,
                               const ConvShape& s, const GammaConfig& cfg,
                               std::int64_t ow_start, std::int64_t ow_len,
                               TensorF& y);

/// Same, but against pre-transformed filters ĝ[fh][t][ic][oc] (from
/// transform_filter_host / the FilterTransformCache).
void conv2d_gamma_host_segment_pretransformed(
    const TensorF& x, const float* ghat, const ConvShape& s,
    const GammaConfig& cfg, std::int64_t ow_start, std::int64_t ow_len,
    TensorF& y);

/// Implicit-GEMM convolution over one OW segment (the §5.5 boundary tail);
/// writes into `y` in place.
void conv2d_gemm_host_segment(const TensorF& x, const TensorF& w,
                              const ConvShape& s, std::int64_t ow_start,
                              std::int64_t ow_len, TensorF& y);

/// Full convolution: §5.5 boundary plan over OW, Γ kernels + GEMM tail.
TensorF conv2d_gamma_host(const TensorF& x, const TensorF& w,
                          const ConvShape& s,
                          const std::vector<Segment>& plan,
                          const FilterCacheRef& fc = {});

/// Backward-data (deconvolution) through the same engine: the filter
/// rotation/channel swap is folded into the filter transform. A cache ref
/// is keyed on the *original* weights with the deconv flag set.
TensorF deconv2d_gamma_host(const TensorF& dy, const TensorF& w,
                            const ConvShape& s,
                            const std::vector<Segment>& plan,
                            const FilterCacheRef& fc = {});

/// Filter gradient via 1-D Winograd — an extension beyond the paper (which
/// computes filter gradients with standard algorithms): the weight-gradient
/// correlation dW[oc,fh,j,ic] = Σ dY[...]·X[...+j] is itself a 1-D
/// correlation along W with the dY row acting as the filter, so F(fw, m)
/// with m = α+1−fw applies. Requires 2 ≤ fw ≤ 9; α is 8 for fw ≤ 7 and 16
/// otherwise. Zero-padded tail tiles handle OW % m ≠ 0.
TensorF conv2d_filter_grad_winograd(const TensorF& x, const TensorF& dy,
                                    const ConvShape& s);

}  // namespace iwg::core
