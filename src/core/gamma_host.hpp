// Host (CPU) execution engine for Im2col-Winograd.
//
// Same mathematics and FP32 accumulation structure as the GPU kernels —
// 1-D Winograd per filter row, elementwise accumulation over (FH, IC) in the
// α-state domain, one output transform per tile — organized for CPU
// efficiency (channel-major inner loops the compiler vectorizes). This is
// the engine the training framework (src/nn) and the accuracy experiment
// (Table 3) run on; the simulator kernels validate against it and against
// direct convolution.
//
// Unlike the fused GPU kernels, the host engine keeps the transformed
// filters in a bounded scratch buffer (α·FH·IC·OC floats — the analogue of
// what the GPU stages through SMEM across iterations); it allocates no
// per-tile intermediate tensors.
#pragma once

#include <vector>

#include "core/gamma_config.hpp"
#include "tensor/conv_shape.hpp"
#include "tensor/tensor.hpp"

namespace iwg::core {

/// Convolution over one OW segment with Γα(n,r); writes into `y` in place.
/// `w` is the original OC,FH,FW,IC filter.
void conv2d_gamma_host_segment(const TensorF& x, const TensorF& w,
                               const ConvShape& s, const GammaConfig& cfg,
                               std::int64_t ow_start, std::int64_t ow_len,
                               TensorF& y);

/// Implicit-GEMM convolution over one OW segment (the §5.5 boundary tail);
/// writes into `y` in place.
void conv2d_gemm_host_segment(const TensorF& x, const TensorF& w,
                              const ConvShape& s, std::int64_t ow_start,
                              std::int64_t ow_len, TensorF& y);

/// Full convolution: §5.5 boundary plan over OW, Γ kernels + GEMM tail.
TensorF conv2d_gamma_host(const TensorF& x, const TensorF& w,
                          const ConvShape& s,
                          const std::vector<Segment>& plan);

/// Backward-data (deconvolution) through the same engine: the filter
/// rotation/channel swap is folded into the filter transform.
TensorF deconv2d_gamma_host(const TensorF& dy, const TensorF& w,
                            const ConvShape& s,
                            const std::vector<Segment>& plan);

/// Filter gradient via 1-D Winograd — an extension beyond the paper (which
/// computes filter gradients with standard algorithms): the weight-gradient
/// correlation dW[oc,fh,j,ic] = Σ dY[...]·X[...+j] is itself a 1-D
/// correlation along W with the dY row acting as the filter, so F(fw, m)
/// with m = α+1−fw applies. Requires 2 ≤ fw ≤ 9; α is 8 for fw ≤ 7 and 16
/// otherwise. Zero-padded tail tiles handle OW % m ≠ 0.
TensorF conv2d_filter_grad_winograd(const TensorF& x, const TensorF& dy,
                                    const ConvShape& s);

}  // namespace iwg::core
