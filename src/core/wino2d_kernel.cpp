#include "core/wino2d_kernel.hpp"

#include <vector>

#include "tensor/layout.hpp"
#include "winograd/plan.hpp"

namespace iwg::core {

using sim::Block;
using sim::Smem;
using sim::Thread;

namespace {

enum Site : int {
  kSiteW = 0,
  kSiteX = 1,
  kSiteGsSt = 2,
  kSiteDsSt = 3,
  kSiteGsLd = 4,
  kSiteDsLd = 5,
  kSiteYsSt = 6,
  kSiteYsLd = 7,
  kSiteY = 8,
};

// Fixed 4×4 F(2,3) transforms (multiplication-free input/output matrices).
void filter_transform_2d(const float g[12], const float w9[9],
                         float out[16]) {
  float tmp[12];
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 3; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < 3; ++k) acc += g[i * 3 + k] * w9[k * 3 + j];
      tmp[i * 3 + j] = acc;
    }
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < 3; ++k) acc += tmp[i * 3 + k] * g[j * 3 + k];
      out[i * 4 + j] = acc;
    }
}

void input_transform_2d(const float bt[16], const float in[16],
                        float out[16]) {
  float tmp[16];
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < 4; ++k) acc += bt[i * 4 + k] * in[k * 4 + j];
      tmp[i * 4 + j] = acc;
    }
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < 4; ++k) acc += tmp[i * 4 + k] * bt[j * 4 + k];
      out[i * 4 + j] = acc;
    }
}

void output_transform_2d(const float at[8], const float m[16], float out[4]) {
  float tmp[8];
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 4; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < 4; ++k) acc += at[i * 4 + k] * m[k * 4 + j];
      tmp[i * 4 + j] = acc;
    }
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < 4; ++k) acc += tmp[i * 4 + k] * at[j * 4 + k];
      out[i * 2 + j] = acc;
    }
}

}  // namespace

Winograd2dKernel::Winograd2dKernel(ConvShape shape, sim::GmemBuf x,
                                   sim::GmemBuf w, sim::GmemBuf y)
    : shape_(shape), x_(x), w_(w), y_(y) {
  shape_.validate();
  IWG_CHECK_MSG(shape_.fh == 3 && shape_.fw == 3,
                "fused 2-D Winograd requires 3x3 filters");
  th_ = (shape_.oh() + 1) / 2;
  tw_ = (shape_.ow() + 1) / 2;
  total_tiles_ = shape_.n * th_ * tw_;
}

sim::Dim3 Winograd2dKernel::grid() const {
  sim::Dim3 g;
  g.x = static_cast<int>((shape_.oc + kBn - 1) / kBn);
  g.y = static_cast<int>((total_tiles_ + kBm - 1) / kBm);
  return g;
}

void Winograd2dKernel::run_block(Block& blk) const {
  constexpr int kStates = 16;
  const WinogradPlan& plan = get_plan(2, 3);
  const float* gmat = plan.g_f.data();    // 4×3
  const float* btmat = plan.bt_f.data();  // 4×4
  const float* atmat = plan.at_f.data();  // 2×4

  const std::int64_t oc0 = static_cast<std::int64_t>(blk.block_idx().x) * kBn;
  const std::int64_t tile0 =
      static_cast<std::int64_t>(blk.block_idx().y) * kBm;

  const int ds_last = kBm + 4;  // padded (§5.2 style)
  Smem gs = blk.smem("Gs", 1ll * kBk * kStates * kBn);
  Smem ds = blk.smem("Ds", 1ll * kBk * kStates * ds_last);
  std::vector<float> acc(256 * 64, 0.0f);

  const std::int64_t oh_total = shape_.oh();
  const std::int64_t ow_total = shape_.ow();

  auto tile_coords = [&](std::int64_t tile, std::int64_t& ni, std::int64_t& a,
                         std::int64_t& b) {
    ni = tile / (th_ * tw_);
    const std::int64_t rem = tile % (th_ * tw_);
    a = rem / tw_;
    b = rem % tw_;
  };

  // Thread → (state, cell) for the outer product, Z-shaped like Γ16.
  auto geom = [&](const Thread& t, int& ux, int& gidx, int& didx) {
    const int tps = 256 / kStates;  // 16 threads per state
    ux = t.flat / tps;
    const int uy = t.flat % tps;
    const int dcells = kBm / 8;  // 4
    const int g = (uy % 2) + (uy / (2 * dcells)) * 2;
    const int d = (uy % (2 * dcells)) / 2;
    gidx = g * 8;
    didx = d * 8;
  };

  const std::int64_t chunks = (shape_.ic + kBk - 1) / kBk;
  for (std::int64_t chunk = 0; chunk < chunks; ++chunk) {
    const std::int64_t ic0 = chunk * kBk;
    blk.phase([&](Thread& t) {
      // Filter tile: one (oc, k) 3×3 filter per thread. NCHW warps walk
      // tiles/oc fastest, channels slowest (the reverse of the NHWC Γ
      // kernels), keeping global loads contiguous along w.
      const int gk = t.tx % 8;
      const int gi = 2 * t.ty + (t.tx > 7 ? 1 : 0);  // oc column in [0,32)
      const std::int64_t kch = ic0 + gk;
      const std::int64_t oc = oc0 + gi;
      float w9[9] = {0};
      if (kch < shape_.ic && oc < shape_.oc) {
        for (int e = 0; e < 9; ++e) {
          // OC,FH,FW,IC layout: taps are IC apart (§5.1's transposition is a
          // forward-NHWC concern; the NCHW algorithm reads OIHW-equivalent).
          t.count_alu(1);
          w9[e] = t.ldg(
              w_, ((oc * 3 + e / 3) * 3 + e % 3) * shape_.ic + kch, kSiteW);
        }
      }
      float gh[16];
      filter_transform_2d(gmat, w9, gh);
      t.count_fma(28);  // GWG^T multiplications (G has 1/2 entries)
      t.count_alu(24);
      for (int s = 0; s < kStates; ++s) {
        t.sts(gs, (static_cast<std::int64_t>(gk) * kStates + s) * kBn + gi,
              gh[s], kSiteGsSt);
      }
      // Input tile: one (tile, k) 4×4 patch per thread; lanes cover
      // consecutive tiles of one channel plane.
      const int xk = t.ty % 8;
      const int xi = 2 * t.tx + (t.ty > 7 ? 1 : 0);
      const std::int64_t xch = ic0 + xk;
      const std::int64_t tile = tile0 + xi;
      float in[16] = {0};
      if (xch < shape_.ic && tile < total_tiles_) {
        std::int64_t ni, ta, tb;
        tile_coords(tile, ni, ta, tb);
        for (int a = 0; a < 4; ++a) {
          const std::int64_t ih = ta * 2 + a - shape_.ph;
          if (ih < 0 || ih >= shape_.ih) continue;
          const std::int64_t iw0 = tb * 2 - shape_.pw;
          // Row of 4 contiguous w values (NCHW's in-tile continuity is rows
          // of 4 — shorter runs than Im2col-Winograd's α-length 1-D tiles,
          // which is the §3 discontinuity argument in reverse).
          for (int b = 0; b < 4; ++b) {
            const std::int64_t iw = iw0 + b;
            if (iw < 0 || iw >= shape_.iw) continue;
            in[a * 4 + b] = t.ldg(
                x_, ((ni * shape_.ic + xch) * shape_.ih + ih) * shape_.iw + iw,
                kSiteX);
          }
        }
      }
      float dh[16];
      input_transform_2d(btmat, in, dh);
      t.count_alu(64);  // BT X B is multiplication-free (adds only)
      for (int s = 0; s < kStates; ++s) {
        t.sts(ds, (static_cast<std::int64_t>(xk) * kStates + s) * ds_last + xi,
              dh[s], kSiteDsSt);
      }
    });
    blk.phase([&](Thread& t) {
      int ux, gidx, didx;
      geom(t, ux, gidx, didx);
      float* v = &acc[static_cast<std::size_t>(t.flat) * 64];
      for (int ik = 0; ik < kBk; ++ik) {
        float a[8];
        float b[8];
        for (int c4 = 0; c4 < 2; ++c4) {
          t.lds128(gs,
                   (static_cast<std::int64_t>(ik) * kStates + ux) * kBn +
                       gidx + 4 * c4,
                   &a[4 * c4], kSiteGsLd);
          t.lds128(ds,
                   (static_cast<std::int64_t>(ik) * kStates + ux) * ds_last +
                       didx + 4 * c4,
                   &b[4 * c4], kSiteDsLd);
        }
        for (int ia = 0; ia < 8; ++ia)
          for (int ib = 0; ib < 8; ++ib) v[ia * 8 + ib] += a[ia] * b[ib];
        t.count_fma(64);
      }
    });
  }

  // Output transform through SMEM, Γ-style sub-rounds over oc pairs.
  blk.smem_reuse_from("Gs");
  const int gc = kBn / 8;  // 4 oc-groups
  const int cols = 2 * gc + 4;
  Smem ys = blk.smem("Ys", static_cast<std::int64_t>(kStates) * (kBm + 1) *
                               cols);
  auto ys_at = [&](int s, int tile, int col) {
    return (static_cast<std::int64_t>(s) * (kBm + 1) + tile) * cols + col;
  };
  const int pairs_total = kBm * gc;
  const int iters = (pairs_total + 255) / 256;
  for (int q = 0; q < 4; ++q) {  // oc offsets {2q, 2q+1}
    blk.phase([&](Thread& t) {
      int ux, gidx, didx;
      geom(t, ux, gidx, didx);
      const float* v = &acc[static_cast<std::size_t>(t.flat) * 64];
      for (int bpar = 0; bpar < 2; ++bpar) {
        const int a_local = 2 * q + bpar;
        for (int k = 0; k < 8; ++k) {
          t.sts(ys, ys_at(ux, didx + k, (gidx / 8) * 2 + bpar),
                v[a_local * 8 + k], kSiteYsSt);
        }
      }
    });
    blk.phase([&](Thread& t) {
      for (int it = 0; it < iters; ++it) {
        const int c = t.flat + it * 256;
        if (c >= pairs_total) break;
        const int gp = c % gc;
        const int tile_l = c / gc;
        const std::int64_t tile = tile0 + tile_l;
        if (tile >= total_tiles_) continue;
        std::int64_t ni, ta, tb;
        tile_coords(tile, ni, ta, tb);
        for (int bpar = 0; bpar < 2; ++bpar) {
          const std::int64_t oc = oc0 + gp * 8 + 2 * q + bpar;
          if (oc >= shape_.oc) continue;
          float m[16];
          for (int s = 0; s < kStates; ++s) {
            m[s] = t.lds(ys, ys_at(s, tile_l, gp * 2 + bpar), kSiteYsLd);
          }
          float out[4];
          output_transform_2d(atmat, m, out);
          t.count_alu(40);
          for (int a = 0; a < 2; ++a) {
            const std::int64_t oh = ta * 2 + a;
            if (oh >= oh_total) continue;
            for (int b = 0; b < 2; ++b) {
              const std::int64_t ow = tb * 2 + b;
              if (ow >= ow_total) continue;
              t.stg(y_,
                    ((ni * shape_.oc + oc) * oh_total + oh) * ow_total + ow,
                    out[a * 2 + b], kSiteY);
            }
          }
        }
      }
    });
  }
}

sim::LaunchStats run_wino2d(const Winograd2dKernel& k, bool counting) {
  return sim::launch_all(k, k.grid(), counting);
}

sim::PerfEstimate profile_wino2d(const Winograd2dKernel& k,
                                 const sim::DeviceProfile& dev,
                                 double conv_flops, double footprint_bytes,
                                 int max_samples) {
  sim::PerfInput in;
  in.stats = sim::launch_sample(k, k.grid(), max_samples);
  in.grid_blocks = k.grid().count();
  in.threads_per_block = 256;
  in.smem_per_block = k.smem_bytes();
  in.regs_per_thread = k.regs_per_thread();
  in.conv_flops = conv_flops;
  in.footprint_bytes = footprint_bytes;
  return sim::estimate_perf(dev, in);
}

TensorF conv2d_wino2d_sim(const TensorF& x_nhwc, const TensorF& w,
                          const ConvShape& s) {
  const TensorF xn = nhwc_to_nchw(x_nhwc);
  TensorF y({s.n, s.oc, s.oh(), s.ow()});
  sim::GmemBuf xb(xn.data(), xn.size(), /*clamp_zero=*/true);
  sim::GmemBuf wb(w.data(), w.size());
  sim::GmemBuf yb(y.data(), y.size());
  Winograd2dKernel k(s, xb, wb, yb);
  sim::launch_all(k, k.grid());
  return nchw_to_nhwc(y);
}

}  // namespace iwg::core
