#include "core/plan_cache.hpp"

#include <algorithm>
#include <iomanip>
#include <fstream>
#include <locale>
#include <sstream>
#include <utility>

#include "common/timer.hpp"
#include "common/trace.hpp"

namespace iwg::core {

namespace {

constexpr const char* kMagic = "IWGPLANDB";
constexpr int kVersion = 1;

void hash_combine(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Canonical sort key: deterministic save order independent of LRU state.
std::string canonical_key(const PlanKey& k) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << k.device << '|' << k.samples << '|' << k.shape.n << '|' << k.shape.ih
     << '|' << k.shape.iw << '|' << k.shape.ic << '|' << k.shape.oc << '|'
     << k.shape.fh << '|' << k.shape.fw << '|' << k.shape.ph << '|'
     << k.shape.pw;
  return os.str();
}

std::string format_double(double v) {
  // snprintf("%.17g") honours the C global locale (setlocale), so a
  // comma-decimal process would emit "1,5" and break both the parser and
  // the byte-identical round trip. A classic-imbued stream always emits
  // "1.5" with the same 17-significant-digit round-trip format.
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::setprecision(17) << v;
  return os.str();
}

/// Field parser pinned to the classic locale: "1.5" must parse as 1.5 no
/// matter what std::locale::global says (the plan DB is a portable format).
std::istringstream value_stream(std::string payload) {
  std::istringstream is(std::move(payload));
  is.imbue(std::locale::classic());
  return is;
}

Variant variant_from_name(const std::string& name) {
  if (name == "base") return Variant::kBase;
  if (name == "ruse") return Variant::kRuse;
  IWG_CHECK_MSG(name == "c64", "plan DB: unknown kernel variant " + name);
  return Variant::kC64;
}

std::string expect_line(std::istream& in, const char* what) {
  std::string line;
  IWG_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
                std::string("plan DB truncated, expected ") + what);
  return line;
}

/// Consume `prefix` + ' ' from the front of `line`, returning the payload.
std::string strip_prefix(const std::string& line, const std::string& prefix) {
  IWG_CHECK_MSG(line.size() > prefix.size() + 1 &&
                    line.compare(0, prefix.size(), prefix) == 0 &&
                    line[prefix.size()] == ' ',
                "plan DB: malformed line '" + line + "' (expected '" + prefix +
                    " ...')");
  return line.substr(prefix.size() + 1);
}

}  // namespace

std::size_t PlanKeyHash::operator()(const PlanKey& k) const {
  std::size_t seed = std::hash<std::string>{}(k.device);
  const std::hash<std::int64_t> h;
  hash_combine(seed, h(k.samples));
  hash_combine(seed, h(k.shape.n));
  hash_combine(seed, h(k.shape.ih));
  hash_combine(seed, h(k.shape.iw));
  hash_combine(seed, h(k.shape.ic));
  hash_combine(seed, h(k.shape.oc));
  hash_combine(seed, h(k.shape.fh));
  hash_combine(seed, h(k.shape.fw));
  hash_combine(seed, h(k.shape.ph));
  hash_combine(seed, h(k.shape.pw));
  return seed;
}

PlanCache::PlanCache(std::int64_t capacity, int num_shards)
    : capacity_(capacity),
      shard_capacity_((capacity + num_shards - 1) / num_shards),
      shards_(static_cast<std::size_t>(num_shards)) {
  IWG_CHECK(capacity > 0 && num_shards > 0);
  IWG_CHECK(shard_capacity_ > 0);
}

PlanCache::Shard& PlanCache::shard_for(const PlanKey& key) {
  return shards_[PlanKeyHash{}(key) % shards_.size()];
}

std::optional<AlgoChoice> PlanCache::lookup(const PlanKey& key) {
  // Process-wide observability counters (aggregated across every PlanCache
  // instance; per-instance exact numbers stay in CacheStats). Cached
  // references: registry lookup happens once per process.
  static trace::Counter& m_lookups =
      trace::MetricsRegistry::global().counter("plan_cache.lookups");
  static trace::Counter& m_hits =
      trace::MetricsRegistry::global().counter("plan_cache.hits");
  static trace::Counter& m_misses =
      trace::MetricsRegistry::global().counter("plan_cache.misses");
  m_lookups.add();
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mu);
  ++shard.lookups;
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    m_misses.add();
    return std::nullopt;
  }
  ++shard.hits;
  m_hits.add();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->choice;
}

void PlanCache::insert_locked(Shard& shard, const PlanKey& key,
                              const AlgoChoice& choice) {
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->choice = choice;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, choice});
  shard.index.emplace(key, shard.lru.begin());
  while (static_cast<std::int64_t>(shard.lru.size()) > shard_capacity_) {
    static trace::Counter& m_evictions =
        trace::MetricsRegistry::global().counter("plan_cache.evictions");
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
    m_evictions.add();
  }
}

void PlanCache::insert(const PlanKey& key, const AlgoChoice& choice) {
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mu);
  insert_locked(shard, key, choice);
}

AlgoChoice PlanCache::get_or_tune(const ConvShape& s,
                                  const sim::DeviceProfile& dev, int samples,
                                  const TuningBudget& budget) {
  const PlanKey key{s, dev.name, samples};
  if (auto hit = lookup(key)) return *hit;
  // Tune outside the shard lock: select_algorithm fans work out through the
  // global thread pool, and holding a mutex across that invites deadlock
  // when the cache itself is hammered from pool workers.
  IWG_TRACE_SPAN(span, "plan_cache.tune", "plan_cache");
  if (span.active()) {
    span.arg("shape", s.to_string())
        .arg("device", dev.name)
        .arg("samples", samples);
  }
  Timer timer;
  const AlgoChoice choice = select_algorithm(s, dev, samples, budget);
  const double tuned_s = timer.seconds();
  trace::MetricsRegistry::global()
      .distribution("plan_cache.tuning_s")
      .record(tuned_s);
  if (span.active()) {
    span.arg("winner", choice.description)
        .arg("est_gflops", choice.est_gflops)
        .arg("candidates_profiled", choice.candidates_profiled);
  }
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mu);
  shard.tuning_time_s += tuned_s;
  insert_locked(shard, key, choice);
  return choice;
}

void PlanCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

CacheStats PlanCache::stats() const {
  CacheStats s;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    s.lookups += shard.lookups;
    s.hits += shard.hits;
    s.misses += shard.misses;
    s.evictions += shard.evictions;
    s.entries += static_cast<std::int64_t>(shard.lru.size());
    s.tuning_time_s += shard.tuning_time_s;
  }
  return s;
}

std::int64_t PlanCache::size() const {
  std::int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    total += static_cast<std::int64_t>(shard.lru.size());
  }
  return total;
}

std::int64_t PlanCache::save(const std::string& path) const {
  std::vector<Entry> entries;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (const Entry& e : shard.lru) entries.push_back(e);
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return canonical_key(a.key) < canonical_key(b.key);
  });

  std::ofstream out(path);
  out.imbue(std::locale::classic());  // portable format: never the app locale
  IWG_CHECK_MSG(out.good(), "cannot open plan DB for writing: " + path);
  out << kMagic << " v" << kVersion << "\n";
  out << "entries " << entries.size() << "\n";
  for (const Entry& e : entries) {
    const ConvShape& s = e.key.shape;
    const AlgoChoice& c = e.choice;
    out << "entry\n";
    out << "device " << e.key.device << "\n";
    out << "shape " << s.n << ' ' << s.ih << ' ' << s.iw << ' ' << s.ic << ' '
        << s.oc << ' ' << s.fh << ' ' << s.fw << ' ' << s.ph << ' ' << s.pw
        << "\n";
    out << "samples " << e.key.samples << "\n";
    out << "result " << (c.use_winograd ? "wino" : "gemm") << ' '
        << format_double(c.est_gflops) << ' ' << format_double(c.gemm_gflops)
        << ' ' << c.candidates_enumerated << ' ' << c.candidates_profiled
        << ' ' << (c.heuristic ? 1 : 0) << "\n";
    out << "desc " << c.description << "\n";
    out << "segments " << c.plan.size() << "\n";
    for (const Segment& seg : c.plan) {
      if (seg.is_gemm) {
        out << "seg gemm " << seg.ow_start << ' ' << seg.ow_len << "\n";
      } else {
        out << "seg gamma " << seg.cfg.alpha << ' ' << seg.cfg.n << ' '
            << seg.cfg.r << ' ' << variant_name(seg.cfg.variant) << ' '
            << seg.ow_start << ' ' << seg.ow_len << "\n";
      }
    }
    out << "end\n";
  }
  IWG_CHECK_MSG(out.good(), "plan DB write failed: " + path);
  return static_cast<std::int64_t>(entries.size());
}

std::int64_t PlanCache::load(const std::string& path) {
  std::ifstream in(path);
  in.imbue(std::locale::classic());
  IWG_CHECK_MSG(in.good(), "cannot open plan DB: " + path);

  const std::string header = expect_line(in, "header");
  IWG_CHECK_MSG(header == std::string(kMagic) + " v" + std::to_string(kVersion),
                "plan DB: bad magic or unsupported version: " + header);
  std::int64_t count = -1;
  {
    auto is = value_stream(strip_prefix(expect_line(in, "entries"), "entries"));
    IWG_CHECK_MSG(static_cast<bool>(is >> count) && count >= 0,
                  "plan DB: bad entry count");
  }

  // All-or-nothing: parse the entire file into staging first, so a
  // truncated or corrupt DB (which throws mid-parse) cannot leave the cache
  // partially populated.
  std::vector<Entry> staged;
  staged.reserve(static_cast<std::size_t>(count));
  for (std::int64_t e = 0; e < count; ++e) {
    IWG_CHECK_MSG(expect_line(in, "entry") == "entry",
                  "plan DB: expected 'entry'");
    PlanKey key;
    key.device = strip_prefix(expect_line(in, "device"), "device");
    {
      auto is = value_stream(strip_prefix(expect_line(in, "shape"), "shape"));
      ConvShape& s = key.shape;
      IWG_CHECK_MSG(static_cast<bool>(is >> s.n >> s.ih >> s.iw >> s.ic >>
                                      s.oc >> s.fh >> s.fw >> s.ph >> s.pw),
                    "plan DB: malformed shape");
      s.validate();
    }
    {
      auto is =
          value_stream(strip_prefix(expect_line(in, "samples"), "samples"));
      IWG_CHECK_MSG(static_cast<bool>(is >> key.samples) && key.samples > 0,
                    "plan DB: malformed samples");
    }
    AlgoChoice choice;
    {
      auto is = value_stream(strip_prefix(expect_line(in, "result"), "result"));
      std::string algo;
      int heuristic = 0;
      IWG_CHECK_MSG(
          static_cast<bool>(is >> algo >> choice.est_gflops >>
                            choice.gemm_gflops >> choice.candidates_enumerated >>
                            choice.candidates_profiled >> heuristic),
          "plan DB: malformed result");
      IWG_CHECK_MSG(algo == "wino" || algo == "gemm",
                    "plan DB: unknown algorithm " + algo);
      choice.use_winograd = algo == "wino";
      choice.heuristic = heuristic != 0;
    }
    choice.description = strip_prefix(expect_line(in, "desc"), "desc");
    std::int64_t nsegs = -1;
    {
      auto is =
          value_stream(strip_prefix(expect_line(in, "segments"), "segments"));
      IWG_CHECK_MSG(static_cast<bool>(is >> nsegs) && nsegs >= 0,
                    "plan DB: malformed segment count");
    }
    std::int64_t covered = 0;
    for (std::int64_t i = 0; i < nsegs; ++i) {
      auto is = value_stream(strip_prefix(expect_line(in, "seg"), "seg"));
      std::string kind;
      IWG_CHECK_MSG(static_cast<bool>(is >> kind), "plan DB: malformed seg");
      Segment seg;
      if (kind == "gemm") {
        seg.is_gemm = true;
        IWG_CHECK_MSG(static_cast<bool>(is >> seg.ow_start >> seg.ow_len),
                      "plan DB: malformed gemm seg");
      } else {
        IWG_CHECK_MSG(kind == "gamma", "plan DB: unknown seg kind " + kind);
        int alpha = 0, n = 0, r = 0;
        std::string variant;
        IWG_CHECK_MSG(static_cast<bool>(is >> alpha >> n >> r >> variant >>
                                        seg.ow_start >> seg.ow_len),
                      "plan DB: malformed gamma seg");
        seg.cfg = GammaConfig::make(alpha, n, r, variant_from_name(variant));
      }
      IWG_CHECK_MSG(seg.ow_start == covered && seg.ow_len > 0,
                    "plan DB: plan has gaps or overlaps");
      covered += seg.ow_len;
      choice.plan.push_back(seg);
    }
    IWG_CHECK_MSG(nsegs == 0 || covered == key.shape.ow(),
                  "plan DB: plan does not cover OW");
    IWG_CHECK_MSG(expect_line(in, "end") == "end", "plan DB: expected 'end'");
    staged.push_back(Entry{std::move(key), std::move(choice)});
  }
  for (Entry& e : staged) insert(e.key, e.choice);
  trace::MetricsRegistry::global()
      .counter("plan_cache.db_entries_loaded")
      .add(count);
  return count;
}

PlanCache& PlanCache::global() {
  static PlanCache cache;
  return cache;
}

}  // namespace iwg::core
