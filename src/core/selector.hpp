// Algorithm selection — the cuDNN-find analogue.
//
// Given a convolution geometry and a device profile, profile every candidate
// plan (Γ variants via the §5.5 planner, plus the implicit-GEMM baseline)
// through the analytic model and return the fastest. This is what a
// framework integration (§5.7) would call once per layer at graph-build
// time; results are cached per (shape, device).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/conv_api.hpp"

namespace iwg::core {

struct AlgoChoice {
  bool use_winograd = true;        ///< false → implicit GEMM wins
  std::vector<Segment> plan;       ///< winning plan (empty for GEMM)
  double est_gflops = 0.0;         ///< model estimate of the winner
  double gemm_gflops = 0.0;        ///< the baseline it beat (or lost to)
  std::string description;         ///< human-readable summary
};

/// Profile all candidates for `s` on `dev` and return the fastest. Candidate
/// set: default plan, ruse-disabled plan, c64-enabled plan (when channels
/// allow), and implicit GEMM. `samples` bounds the per-candidate block
/// sampling cost.
AlgoChoice select_algorithm(const ConvShape& s, const sim::DeviceProfile& dev,
                            int samples = 4);

/// Cached variant (thread-safe); key is the full geometry + device name.
const AlgoChoice& select_algorithm_cached(const ConvShape& s,
                                          const sim::DeviceProfile& dev,
                                          int samples = 4);

}  // namespace iwg::core
