// Algorithm selection — the cuDNN-find analogue.
//
// Given a convolution geometry and a device profile, enumerate every
// candidate plan the §5.5 planner can express for the shape — chains over
// the admissible Γα(n,r) kernels with the ruse/c64 variant axes explored
// per segment, single-kernel + GEMM-tail plans, and the implicit-GEMM
// baseline — profile them through the analytic model, and return the
// fastest. This is what a framework integration (§5.7) calls once per layer
// at graph-build time; results live in a PlanCache (plan_cache.hpp) keyed
// by (shape, device, fidelity) and can be persisted to a plan DB for a
// "find once, deploy many" flow.
#pragma once

#include <string>
#include <vector>

#include "core/conv_api.hpp"

namespace iwg::core {

/// Bounds the autotuning search. `max_candidates` caps how many Winograd
/// candidate plans are profiled per shape (the GEMM baseline is always
/// profiled and does not count against the cap). A non-positive budget
/// skips profiling entirely and falls back to the (r−1)/α ≥ 0.4375
/// heuristic chain, which is always executable.
struct TuningBudget {
  int max_candidates = 32;
};

/// One enumerated candidate: an executable boundary plan plus a label.
struct PlanCandidate {
  std::vector<Segment> plan;
  std::string label;
};

struct AlgoChoice {
  bool use_winograd = true;        ///< false → implicit GEMM wins
  std::vector<Segment> plan;       ///< winning plan (empty for GEMM)
  double est_gflops = 0.0;         ///< model estimate of the winner
  double gemm_gflops = 0.0;        ///< the baseline it beat (or lost to)
  std::string description;         ///< human-readable summary
  int candidates_enumerated = 0;   ///< distinct plans the search considered
  int candidates_profiled = 0;     ///< plans actually profiled (incl. GEMM)
  bool heuristic = false;          ///< budget-exhausted rule-based pick

  /// The plan to hand to an executor: the tuned chain for Winograd winners,
  /// or a single whole-width GEMM segment otherwise.
  std::vector<Segment> executable_plan(const ConvShape& s) const;

  friend bool operator==(const AlgoChoice&, const AlgoChoice&) = default;
};

/// Enumerate the distinct candidate plans for `s`, deterministically ordered
/// (heuristic priority chain first, then chains over every subset of the
/// admissible kernel universe — both Γ8 and Γ16 families where `fw` admits
/// both, ruse on/off regardless of the §5.4 rule, c64 when the channels
/// allow). Pure-GEMM plans are excluded (the baseline covers them);
/// duplicates arising from OW divisibility are removed.
std::vector<PlanCandidate> enumerate_candidates(const ConvShape& s);

/// Rule-based choice without any profiling: the §5.5 priority chain with
/// ruse gated by (r−1)/α ≥ 0.4375 and c64 when channels allow, or implicit
/// GEMM outside the supported filter widths. est_gflops stays 0.
AlgoChoice heuristic_choice(const ConvShape& s);

/// Profile candidates for `s` on `dev` (bounded by `budget`) and return the
/// fastest. `samples` bounds the per-candidate block sampling cost.
AlgoChoice select_algorithm(const ConvShape& s, const sim::DeviceProfile& dev,
                            int samples = 4, const TuningBudget& budget = {});

/// Cached variant (thread-safe) backed by the process-global PlanCache; key
/// is the full geometry + device name + samples fidelity.
AlgoChoice select_algorithm_cached(const ConvShape& s,
                                   const sim::DeviceProfile& dev,
                                   int samples = 4);

}  // namespace iwg::core
