// Pre-transformed-filter cache for the host engine.
//
// The host fast path used to re-derive the transformed filters
// ĝ[fh][t][ic][oc] inside *every* Γ segment execution — so a multi-segment
// boundary plan re-paid the α·FH·IC·OC transform per segment, and a training
// step re-paid it on every forward and backward even though the weights only
// change once per optimizer step. This cache memoizes ĝ under
// (weights identity, weights version, α, r, direction):
//
//   * weights identity is the storage address of the filter tensor — stable
//     for the life of an `nn::Param` — plus a monotonically bumped version
//     the optimizers increment on every update, so a stale transform can
//     never be served after a weight update;
//   * ĝ depends on the Γ geometry only through (α, r) (the G matrix), so a
//     ruse prefix and its base mop-up segment share one entry;
//   * `deconv` distinguishes the backward-data transform (rotated /
//     channel-swapped filter) of the same weights.
//
// Entries are shared_ptrs: a conv executing against an entry keeps it alive
// even if it is evicted or invalidated mid-flight. Misses compute outside
// the lock (a concurrent duplicate miss computes twice, deterministically
// identically — same discipline as the PlanCache). Capacity is a small LRU
// bound; `invalidate(weights)` drops every entry of a weight tensor so a
// freed address cannot alias a later allocation's version numbering.
//
// Observability: `host.filter_transform.hits` / `host.filter_transform.misses`
// count every ĝ request across the cache and the per-call reuse path in
// `conv2d_gamma_host`, so a report shows transforms computed once per
// (weights version, config) rather than once per call.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/gamma_config.hpp"
#include "tensor/conv_shape.hpp"
#include "tensor/tensor.hpp"

namespace iwg::trace {
class Counter;
}

namespace iwg::core {

/// ĝ[fh][t][ic][oc] for one (filter, Γ geometry): OC contiguous for the
/// host engine's inner axpy. `w` is the original OC,FH,FW,IC filter.
std::vector<float> transform_filter_host(const TensorF& w, const ConvShape& s,
                                         const GammaConfig& cfg);

/// The metrics-registry counters the host filter-transform paths feed
/// (stable references, cheap to cache at call sites).
trace::Counter& filter_transform_hits();
trace::Counter& filter_transform_misses();

class FilterTransformCache {
 public:
  struct Key {
    const void* weights = nullptr;  ///< identity of the weight storage
    std::uint64_t version = 0;      ///< bumped on every weight update
    int alpha = 0;                  ///< ĝ depends on the Γ geometry …
    int r = 0;                      ///< … only through (α, r)
    bool deconv = false;            ///< backward-data transform
    friend bool operator==(const Key&, const Key&) = default;
  };

  using Ghat = std::shared_ptr<const std::vector<float>>;

  explicit FilterTransformCache(std::size_t capacity = 128);

  /// The cached ĝ for `key`, computing via `compute` on miss (outside the
  /// lock). A miss whose key names a *new version* of already-cached weights
  /// drops the stale versions of the same (weights, α, r, deconv) — they are
  /// unreachable once the version has moved on.
  Ghat get_or_compute(const Key& key,
                      const std::function<std::vector<float>()>& compute);

  /// Drop every entry for a weight tensor (layer teardown: a later
  /// allocation could reuse the address and collide on version numbering).
  void invalidate(const void* weights);
  void clear();
  std::size_t size() const;

  /// Process-wide instance (what `src/nn` threads through ConvOptions).
  static FilterTransformCache& global();

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  using LruList = std::list<Key>;
  struct Entry {
    Ghat ghat;
    LruList::iterator lru;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::unordered_map<Key, Entry, KeyHash> map_;
  LruList lru_;  ///< front = most recently used
};

}  // namespace iwg::core
