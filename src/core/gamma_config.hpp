// Γα(n, r) kernel configurations and the §5.5 boundary planner.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace iwg::core {

/// Kernel variants from the paper.
enum class Variant {
  kBase,  ///< Γα(n,r) — Algorithm 1/2 block workflow
  kRuse,  ///< Γ^ruse — §5.4 input-tile-overlap reuse (two threads merged)
  kC64,   ///< Γ^c64 — §5.6 BN 32→64 for α = 16
};

const char* variant_name(Variant v);

/// Static geometry of one Γ kernel (Table in §5.1 plus §5.4/§5.6 variants).
struct GammaConfig {
  int alpha = 8;  ///< state count (4, 8, or 16)
  int n = 6;      ///< outputs per 1-D tile
  int r = 3;      ///< filter width
  Variant variant = Variant::kBase;

  int bn = 64;  ///< output channels per block
  int bm = 32;  ///< input/output tiles per block
  int bk = 8;   ///< input channels per iteration

  int threads_x = 16;
  int threads_y = 16;

  int filter_tiles_per_thread = 2;  ///< BN·BK / threads
  int input_tiles_per_thread = 1;   ///< BM·BK / threads (adjacent when > 1)

  int a_len = 8;  ///< per-thread accumulator extent along OC
  int b_len = 8;  ///< per-thread accumulator extent along tiles

  bool double_buffer = true;  ///< α ∈ {4, 8}: §5.1 double-buffered SMEM

  /// §5.2 mitigations (disable for the bank-conflict ablation).
  bool pad_smem = true;       ///< pad Ds/Ys last dims where SMEM allows
  bool swizzle_ds = false;    ///< Xi ← (Xi + 4·Xk) % BM swizzle (α=8 / c64)
  bool zshape_lanes = true;   ///< Figure-4 Z-shaped laneIdx arrangement

  int threads() const { return threads_x * threads_y; }
  int accumulators_per_thread() const { return a_len * b_len; }

  /// §5.6 arithmetic intensity in op/byte: 256/(α+r) base, 512/(α+2r+n) for
  /// ruse, 512/(α+2r) for c64.
  double arithmetic_intensity() const;

  /// Shared-memory bytes of the Gs/Ds staging (perf-model + validity input).
  std::int64_t smem_bytes() const;

  /// Register estimate per thread (occupancy model input): accumulators plus
  /// tiles in flight plus index bookkeeping.
  int regs_per_thread() const;

  std::string name() const;

  /// §5.4: overlap reuse is profitable when (r−1)/α ≥ 0.4375.
  static bool ruse_profitable(int alpha, int r) {
    return static_cast<double>(r - 1) / alpha >= 0.4375;
  }

  /// Build the paper's configuration for Γα(n,r) with the given variant.
  /// Requires n ≥ 2, r ≥ 2, n + r − 1 == α ∈ {4, 8, 16}; kC64 needs α = 16;
  /// kRuse needs α ∈ {8, 16}.
  static GammaConfig make(int alpha, int n, int r,
                          Variant variant = Variant::kBase);

  /// All fields are derived deterministically from (alpha, n, r, variant) by
  /// make(), so memberwise equality is identity of the kernel choice.
  friend bool operator==(const GammaConfig&, const GammaConfig&) = default;
};

// ---------------------------------------------------------------------------
// Boundary treatment (§5.5).

/// One OW segment assigned to a kernel (or the GEMM tail).
struct Segment {
  bool is_gemm = false;
  GammaConfig cfg;            ///< valid when !is_gemm
  std::int64_t ow_start = 0;  ///< first output column of the segment
  std::int64_t ow_len = 0;    ///< columns covered (multiple of cfg.n)

  /// GEMM segments always carry a default-constructed cfg (both the planner
  /// and the plan-DB loader leave it untouched), so defaulted equality holds.
  friend bool operator==(const Segment&, const Segment&) = default;
};

/// Split [0, OW) across the priority list of kernels for filter width r:
/// the fastest kernel takes the largest n-divisible prefix, the next kernel
/// the remainder's prefix, and implicit GEMM covers what is left (§5.5 /
/// Figure 7). Segments never overlap and exactly cover [0, OW).
///
/// `allow_ruse` substitutes the ruse variant where §5.4 says it wins;
/// `allow_c64` substitutes Γ^c64 for Γ16 when IC and OC are multiples of 64.
std::vector<Segment> plan_boundary(std::int64_t ow, int r,
                                   bool allow_ruse = true,
                                   bool allow_c64 = false);

/// The paper's kernel priority list for a filter width (fastest first).
std::vector<GammaConfig> kernel_priority(int r, bool allow_ruse,
                                         bool allow_c64);

/// Split [0, OW) across an explicit kernel sequence: each kernel takes the
/// largest granularity-divisible prefix of what remains, and implicit GEMM
/// covers the tail. This is the primitive behind plan_boundary; the
/// autotuning selector uses it to search arbitrary chains, not just the
/// paper's priority list.
std::vector<Segment> plan_chain(std::int64_t ow,
                                const std::vector<GammaConfig>& kernels);

}  // namespace iwg::core
