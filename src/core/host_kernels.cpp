// Dispatcher: picks the host-kernel table once (env override, else best
// supported ISA) and publishes it through one atomic pointer. The choice is
// exported as a host.kernels.isa.<name> counter so metrics reports and the
// Prometheus exposition show which engine produced every number.
#include "core/host_kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>

#include "common/trace.hpp"

namespace iwg::core {

namespace {

std::atomic<const HostKernels*> g_active{nullptr};
std::once_flag g_init_once;

void note_selection(const HostKernels* t) {
  trace::MetricsRegistry::global()
      .counter(std::string("host.kernels.isa.") + t->name)
      .add();
  // The resolved table also labels the iwg_build_info gauge, so a scrape
  // alone answers "which engine produced these numbers".
  trace::MetricsRegistry::global().set_build_label("isa", t->name);
}

const HostKernels* best_supported() {
#ifndef IWG_HOST_SCALAR_ONLY
  if (const HostKernels* t = detail::host_kernels_avx2()) return t;
  if (const HostKernels* t = detail::host_kernels_neon()) return t;
#endif
  return &detail::host_kernels_scalar();
}

void init_from_env() {
  const HostKernels* chosen = best_supported();
  if (const char* env = std::getenv("IWG_HOST_ISA")) {
    // An explicit, available ISA pins the table; "native", unknown names,
    // and unavailable ISAs keep the autodetected choice (a downgrade
    // request can always be honored — scalar is always compiled — so the
    // only unhonorable requests are upgrades the CPU or build cannot do).
    if (const auto isa = parse_host_isa(env)) {
      if (const HostKernels* t = host_kernels_for(*isa)) chosen = t;
    }
  }
  g_active.store(chosen, std::memory_order_release);
  note_selection(chosen);
}

const HostKernels* active() {
  const HostKernels* t = g_active.load(std::memory_order_acquire);
  if (t != nullptr) return t;
  std::call_once(g_init_once, init_from_env);
  return g_active.load(std::memory_order_acquire);
}

}  // namespace

const HostKernels& host_kernels() { return *active(); }

HostIsa host_isa() { return active()->isa; }

const HostKernels* host_kernels_for(HostIsa isa) {
  switch (isa) {
    case HostIsa::kScalar:
      return &detail::host_kernels_scalar();
#ifndef IWG_HOST_SCALAR_ONLY
    case HostIsa::kAvx2:
      return detail::host_kernels_avx2();
    case HostIsa::kNeon:
      return detail::host_kernels_neon();
#else
    case HostIsa::kAvx2:
    case HostIsa::kNeon:
      return nullptr;
#endif
  }
  return nullptr;
}

std::vector<HostIsa> host_isa_available() {
  std::vector<HostIsa> out{HostIsa::kScalar};
  for (HostIsa isa : {HostIsa::kAvx2, HostIsa::kNeon}) {
    if (host_kernels_for(isa) != nullptr) out.push_back(isa);
  }
  return out;
}

bool set_host_isa(HostIsa isa) {
  const HostKernels* t = host_kernels_for(isa);
  if (t == nullptr) return false;
  active();  // ensure first-use init doesn't later clobber the override
  g_active.store(t, std::memory_order_release);
  note_selection(t);
  return true;
}

const char* host_isa_name(HostIsa isa) {
  switch (isa) {
    case HostIsa::kScalar:
      return "scalar";
    case HostIsa::kAvx2:
      return "avx2";
    case HostIsa::kNeon:
      return "neon";
  }
  return "scalar";
}

std::optional<HostIsa> parse_host_isa(std::string_view name) {
  if (name == "scalar") return HostIsa::kScalar;
  if (name == "avx2") return HostIsa::kAvx2;
  if (name == "neon") return HostIsa::kNeon;
  return std::nullopt;
}

}  // namespace iwg::core
