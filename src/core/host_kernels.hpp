// Runtime-dispatched SIMD microkernels for the host execution engine.
//
// The three host hot paths — the sliding-window input transform, the cached
// filter transform, and the inner rank-1 accumulation — all walk
// NHWC-contiguous rows, which maps 1-D Winograd tiles directly onto vector
// lanes: one lane per channel, zero gather/scatter (DESIGN §8). This header
// exposes them as a single function-pointer table selected once at startup
// (CPUID on x86, baseline ASIMD on aarch64), ggml-style: per-ISA translation
// units compiled with their own -m flags, a scalar fallback that is always
// built, and one atomic pointer the hot paths read.
//
// Numeric contract, per entry point (tests/host_kernels_test.cpp enforces
// it for every table the build carries):
//
//   transform_cols   BITWISE. Every ISA produces bit-identical FP32 to the
//                    scalar reference: per output element, ALL cols terms
//                    are multiplied and added in ascending source-row order
//                    with exactly one rounding per multiply and per add (no
//                    FMA contraction — every kernel TU is compiled with
//                    -ffp-contract=off). The sum is dense: zero matrix
//                    entries and null (zero) rows contribute ±0.0f terms
//                    rather than being skipped — a branch per (row, element,
//                    lane-block) costs more than the multiply-add it saves,
//                    and folding zeros in keeps the op sequence identical
//                    across ISAs by construction. Lane-parallelism only
//                    reorders *independent* elements, never the per-element
//                    op sequence.
//
//   axpy_rank1,      ULP-BOUNDED. Same ascending-k / ascending-t term order
//   axpy_rank1_multi,as the scalar reference, but FMA contraction is
//   saxpy,           allowed: each fused multiply-add skips the multiply's
//   out_transform    intermediate rounding, so an element may differ from
//                    the scalar result by at most one rounding per term:
//                    |simd − scalar| ≤ K·ε·Σ|terms|, K the term count.
//                    out_transform is dense like transform_cols; axpy_rank1
//                    and axpy_rank1_multi take no coefficient matrix, so
//                    there is nothing to skip.
//
//   dot              REASSOCIATED. Vector ISAs keep per-lane partial sums
//                    and combine them in a fixed tree, so the summation
//                    order differs from the scalar left-to-right reference:
//                    |simd − scalar| ≤ c·n·ε·Σ|a_i·b_i| for a small
//                    constant c. Callers needing bitwise determinism across
//                    ISA levels must pin the ISA (IWG_HOST_ISA).
//
// Whatever the entry's contract, one fixed table is deterministic: the same
// inputs through the same ISA give bit-identical results run to run.
//
// Selection order: IWG_HOST_ISA env (scalar | avx2 | neon | native) if set,
// else the best table the CPU supports. A build configured with
// -DIWG_HOST_ISA=scalar compiles the dispatcher to ignore SIMD tables
// entirely (the CI fallback leg). The chosen ISA is exported as a
// host.kernels.isa.<name> metric and stamped on conv2d_host spans so
// benches and the flight recorder attribute wins to the right engine.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace iwg::core {

enum class HostIsa : int {
  kScalar = 0,
  kAvx2 = 1,  ///< x86-64 AVX2 + FMA (8-lane FP32)
  kNeon = 2,  ///< aarch64 ASIMD (4-lane FP32)
};

/// The dispatch table. One immutable instance per ISA; the active pointer
/// is published once at startup (or by set_host_isa) and read with a
/// relaxed atomic load on the hot path.
struct HostKernels {
  /// dst[i·dst_stride + c] = Σ_e M[i·cols + e] · rows[e][c]
  /// for i < rows_n, c < nc, terms in ascending e (dense — zero M entries
  /// included). `rows[e]` points at nc contiguous floats (an NHWC row
  /// slice) or is nullptr, which reads as a zero row (the padding case).
  /// Pointers may have any alignment. Contract: BITWISE vs scalar.
  void (*transform_cols)(const float* m, int rows_n, int cols,
                         const float* const* rows, std::int64_t nc, float* dst,
                         std::int64_t dst_stride);

  /// m[j] += Σ_k d[k] · g[k·nj + j], terms in ascending k per element.
  /// Contract: ULP-bounded vs scalar (FMA contraction allowed).
  void (*axpy_rank1)(const float* d, const float* g, float* m,
                     std::int64_t kc, std::int64_t nj);

  /// Blocked rank-1 accumulate: for each r < rows with ds[r] != nullptr,
  ///   ms[r][j] += Σ_k ds[r][k] · g[k·nj + j]   (ascending k per element).
  /// Null ds rows are skipped and their ms row left untouched. Per row this
  /// is exactly axpy_rank1; the blocked form exists so vector ISAs can
  /// reuse one loaded ĝ vector across several accumulator rows (the rank-1
  /// update is load-bound at one g load per FMA otherwise). Contract:
  /// ULP-bounded vs scalar, same per-element term order as axpy_rank1.
  void (*axpy_rank1_multi)(const float* const* ds, const float* g,
                           float* const* ms, int rows, std::int64_t kc,
                           std::int64_t nj);

  /// y[j] += a · x[j]. Contract: ULP-bounded vs scalar (one FMA per term).
  void (*saxpy)(float a, const float* x, float* y, std::int64_t n);

  /// y[j] = Σ_t at[t] · m[t·mstride + j] for j < n, terms in ascending t
  /// (dense — zero at entries included). Contract: ULP-bounded vs scalar.
  void (*out_transform)(const float* at, int alpha, const float* m,
                        std::int64_t mstride, float* y, std::int64_t n);

  /// Σ_j a[j] · b[j]. Contract: REASSOCIATED (per-lane partial sums).
  float (*dot)(const float* a, const float* b, std::int64_t n);

  const char* name;  ///< "scalar" | "avx2" | "neon"
  HostIsa isa;
};

/// The active table (selects on first use: IWG_HOST_ISA override, else the
/// best supported ISA; scalar when built with -DIWG_HOST_ISA=scalar).
const HostKernels& host_kernels();

/// ISA of the active table.
HostIsa host_isa();

/// Table for a specific ISA, or nullptr when this build/CPU lacks it.
/// (Scalar is never null.) Used by the parity tests and per-kernel benches.
const HostKernels* host_kernels_for(HostIsa isa);

/// Every ISA host_kernels_for() returns non-null for, scalar first.
std::vector<HostIsa> host_isa_available();

/// Override the active table (tests, benches, the IWG_HOST_ISA env path).
/// Returns false — and leaves the selection unchanged — when the requested
/// ISA is unavailable. Takes effect for subsequent convolutions; callers
/// are responsible for not racing it against in-flight work.
bool set_host_isa(HostIsa isa);

/// "scalar" | "avx2" | "neon".
const char* host_isa_name(HostIsa isa);

/// Parses an explicit ISA name ("scalar", "avx2", "neon"); "native" and
/// unknown strings return nullopt (the caller falls back to autodetect).
std::optional<HostIsa> parse_host_isa(std::string_view name);

namespace detail {
// Per-ISA factories (one translation unit each). SIMD factories return
// nullptr when the build targets another architecture or the CPU lacks the
// feature at runtime.
const HostKernels& host_kernels_scalar();
const HostKernels* host_kernels_avx2();
const HostKernels* host_kernels_neon();
}  // namespace detail

}  // namespace iwg::core
