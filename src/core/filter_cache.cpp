#include "core/filter_cache.hpp"

#include "common/arena.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "core/host_kernels.hpp"
#include "winograd/plan.hpp"

namespace iwg::core {

trace::Counter& filter_transform_hits() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("host.filter_transform.hits");
  return c;
}

trace::Counter& filter_transform_misses() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("host.filter_transform.misses");
  return c;
}

std::vector<float> transform_filter_host(const TensorF& w, const ConvShape& s,
                                         const GammaConfig& cfg) {
  const int alpha = cfg.alpha;
  const int r = cfg.r;
  const WinogradPlan& plan = get_plan(cfg.n, r);
  const HostKernels& hk = host_kernels();
  std::vector<float> ghat(static_cast<std::size_t>(s.fh) * alpha * s.ic *
                          s.oc);
  // The r filter taps of one (oc, fh) slice are IC-contiguous NHWC-style
  // rows, so the G transform runs IC-lane-parallel; the scatter into the
  // ĝ[fh][t][ic][oc] layout (OC innermost for the axpy kernel) is the only
  // scalar step left.
  parallel_for(s.fh * s.oc, [&](std::int64_t job) {
    const std::int64_t fh = job / s.oc;
    const std::int64_t oc = job % s.oc;
    ScratchArena& arena = ScratchArena::local();
    const ScratchArena::Scope scope(arena);
    float* ghat_ic =
        arena.alloc_floats(static_cast<std::size_t>(alpha) * s.ic);
    const float* taps[16];
    for (int j = 0; j < r; ++j) taps[j] = &w.at(oc, fh, j, 0);
    hk.transform_cols(plan.g_f.data(), alpha, r, taps, s.ic, ghat_ic, s.ic);
    for (int t = 0; t < alpha; ++t) {
      const float* src = ghat_ic + static_cast<std::int64_t>(t) * s.ic;
      float* dst = ghat.data() +
                   ((fh * alpha + t) * s.ic) * static_cast<std::size_t>(s.oc) +
                   static_cast<std::size_t>(oc);
      for (std::int64_t ic = 0; ic < s.ic; ++ic) dst[ic * s.oc] = src[ic];
    }
  });
  return ghat;
}

std::size_t FilterTransformCache::KeyHash::operator()(const Key& k) const {
  std::size_t h = std::hash<const void*>{}(k.weights);
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(std::hash<std::uint64_t>{}(k.version));
  mix(static_cast<std::size_t>(k.alpha) * 31 + static_cast<std::size_t>(k.r));
  mix(k.deconv ? 1 : 0);
  return h;
}

FilterTransformCache::FilterTransformCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

FilterTransformCache::Ghat FilterTransformCache::get_or_compute(
    const Key& key, const std::function<std::vector<float>()>& compute) {
  {
    std::lock_guard lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      filter_transform_hits().add();
      return it->second.ghat;
    }
  }
  filter_transform_misses().add();
  IWG_TRACE_SCOPE("filter_transform", "host");
  Ghat ghat = std::make_shared<const std::vector<float>>(compute());
  std::lock_guard lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Concurrent duplicate miss: the transform is deterministic, keep the
    // first insertion.
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return it->second.ghat;
  }
  // A new version supersedes older versions of the same weights/config.
  for (auto mit = map_.begin(); mit != map_.end();) {
    const Key& k = mit->first;
    if (k.weights == key.weights && k.alpha == key.alpha && k.r == key.r &&
        k.deconv == key.deconv && k.version != key.version) {
      lru_.erase(mit->second.lru);
      mit = map_.erase(mit);
    } else {
      ++mit;
    }
  }
  while (map_.size() >= capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{ghat, lru_.begin()});
  return ghat;
}

void FilterTransformCache::invalidate(const void* weights) {
  std::lock_guard lock(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.weights == weights) {
      lru_.erase(it->second.lru);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

void FilterTransformCache::clear() {
  std::lock_guard lock(mu_);
  map_.clear();
  lru_.clear();
}

std::size_t FilterTransformCache::size() const {
  std::lock_guard lock(mu_);
  return map_.size();
}

FilterTransformCache& FilterTransformCache::global() {
  static FilterTransformCache* cache = new FilterTransformCache();
  return *cache;
}

}  // namespace iwg::core
