// The §4.2 N-D extension: 3-D Im2col-Winograd convolution.
//
// "Im2col-Winograd can be applied to ND convolution, by expanding Stage1
// Im2col to ND, while remaining Stage2 unchanged." Stage 2 here is exactly
// the 2-D engine's 1-D Winograd along the W axis; Stage 1's index mapping
// simply gains a depth coordinate, so the state-domain accumulation runs
// over (FD, FH, IC) instead of (FH, IC). Volumes are NDHWC; filters are
// OC,FD,FH,FW,IC.
#pragma once

#include <vector>

#include "core/gamma_config.hpp"
#include "tensor/tensor.hpp"

namespace iwg::core {

/// Geometry of a unit-stride 3-D convolution with zero padding.
struct Conv3dShape {
  std::int64_t n = 1;
  std::int64_t id = 1, ih = 1, iw = 1;  ///< input depth/height/width
  std::int64_t ic = 1, oc = 1;
  std::int64_t fd = 1, fh = 1, fw = 1;
  std::int64_t pd = 0, ph = 0, pw = 0;

  std::int64_t od() const { return id + 2 * pd - fd + 1; }
  std::int64_t oh() const { return ih + 2 * ph - fh + 1; }
  std::int64_t ow() const { return iw + 2 * pw - fw + 1; }
  void validate() const;
};

/// Direct 3-D convolution reference (FP32).
TensorF conv3d_direct(const TensorF& x, const TensorF& w,
                      const Conv3dShape& s);

/// 3-D Im2col-Winograd, host engine, with the same §5.5 boundary treatment
/// along OW (Γ kernels over the divisible part, GEMM-style tail).
TensorF conv3d_gamma_host(const TensorF& x, const TensorF& w,
                          const Conv3dShape& s,
                          const std::vector<Segment>& plan);

/// Convenience: plan the OW axis with the default priorities and run.
TensorF conv3d(const TensorF& x, const TensorF& w, const Conv3dShape& s);

}  // namespace iwg::core
