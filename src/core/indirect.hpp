// Indirect Γ execution: one host dispatch over mixed-shape traffic.
//
// The Indirect Convolution Algorithm (Dukhan 2019) replaces im2col's index
// arithmetic with an indirection buffer of row pointers. Grafted onto the
// paper's Γα decomposition, that buffer is exactly the hook that lets one
// dispatch walk images of *different* sizes: the sliding-window ring and the
// SIMD inner kernels never compute a row address — they are handed
// `rows[ihp + ph]`, and whether that pointer lands in a batch tensor, in a
// caller-owned per-image buffer, or on the shared zero row (nullptr — the
// kernels' documented null-tap convention) is the IndirectionTable's
// business alone.
//
// conv2d_gamma_host_indirect therefore reuses detail::gamma_tile_column /
// detail::gemm_row — the very task bodies the dense segment entry points
// run — so per-image outputs are bitwise identical to a dense batch-1
// dispatch of the same image by construction. Each distinct (IH, IW) shape
// class gets the §5.5 boundary plan the dense path would pick (plans depend
// only on OW, FW and the option flags, never on N), and the flattened
// (image, segment) task list runs under a single parallel_for.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/gamma_host.hpp"
#include "tensor/conv_shape.hpp"
#include "tensor/tensor.hpp"

namespace iwg {
class ScratchArena;
}

namespace iwg::core {

/// One image of an indirect dispatch: caller-owned NHWC input (IH×IW×IC)
/// and pre-allocated output (OH×OW×OC). Channels, filter and padding come
/// from the dispatch-wide geometry; only the spatial extents vary.
struct ImageView {
  const float* x = nullptr;
  float* y = nullptr;
  std::int64_t ih = 0;
  std::int64_t iw = 0;
};

struct IndirectOptions {
  bool use_winograd = true;  ///< false: implicit-GEMM for every image
  bool allow_ruse = true;    ///< §5.4 overlap-reuse variants
  bool allow_c64 = false;    ///< §5.6 Γ^c64 plans
  /// Cross-call reuse of transformed filters ĝ, as in conv2d_gamma_host.
  FilterCacheRef fc;
};

/// The per-batch indirection: row pointers plus per-image tile geometry,
/// built once per dispatch. Row-pointer arrays live in the caller's arena
/// scope (valid for the dispatch, freed in O(1) when it returns); padding
/// rows are nullptr — the shared zero row — never materialized slots.
struct IndirectionTable {
  /// Distinct (IH, IW) shape classes, each as an n = 1 ConvShape carrying
  /// the dispatch geometry; images of one class share a boundary plan.
  std::vector<ConvShape> classes;
  /// Per-image row table + extents, in input order.
  std::vector<detail::ImageTask> images;
  /// images[i] belongs to classes[image_class[i]].
  std::vector<int> image_class;
};

/// Build the table for a dispatch (validates every image's shape).
IndirectionTable build_indirection_table(std::span<const ImageView> images,
                                         const ConvShape& geom,
                                         ScratchArena& arena);

/// Unit-stride NHWC convolution of every view in one dispatch. `geom`
/// supplies the shared fields (ic/oc/fh/fw/ph/pw); its n/ih/iw are ignored
/// — spatial extents are per image. Outputs are written into each view's
/// `y` and are bitwise identical to `conv2d` run per image with matching
/// options.
void conv2d_gamma_host_indirect(std::span<const ImageView> images,
                                const TensorF& w, const ConvShape& geom,
                                const IndirectOptions& opts = {});

}  // namespace iwg::core
