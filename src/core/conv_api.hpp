// Public convolution API of the library.
//
// Three execution paths share one boundary plan (§5.5):
//   * conv2d / deconv2d        — host engine (training, accuracy studies)
//   * conv2d_sim / deconv2d_sim— functional SIMT execution (validation)
//   * profile_conv2d           — sampled counters + analytic time estimate
//                                 on a device profile (performance studies)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/gamma_config.hpp"
#include "core/gamma_kernel.hpp"
#include "core/gemm_kernel.hpp"
#include "tensor/conv_shape.hpp"
#include "tensor/tensor.hpp"

namespace iwg::core {

class FilterTransformCache;

struct ConvOptions {
  bool use_winograd = true;  ///< false: pure implicit-GEMM convolution
  bool allow_ruse = true;    ///< §5.4 overlap-reuse variants where profitable
  bool allow_c64 = false;    ///< §5.6 Γ^c64 (channels must be ≥ 64-friendly)
  bool trace = true;  ///< false: suppress span emission even when IWG_TRACE on
  /// Cross-call reuse of transformed filters ĝ. Leave the cache null for
  /// convolutions against transient weights; `src/nn` points it at
  /// FilterTransformCache::global() with the parameter's bumped version so a
  /// transform is computed once per (weights version, Γ geometry).
  FilterTransformCache* filter_cache = nullptr;
  std::uint64_t weights_version = 0;  ///< key alongside the weights address
};

/// Boundary plan for a shape under the default priority lists.
std::vector<Segment> plan_for(const ConvShape& s, const ConvOptions& opts = {});

/// Boundary plan that uses exactly `primary` for the divisible prefix and
/// GEMM for the remainder (benchmarking a specific kernel variant).
std::vector<Segment> plan_single(const ConvShape& s, const GammaConfig& primary);

/// Unit-stride 2-D convolution, NHWC, host engine.
TensorF conv2d(const TensorF& x, const TensorF& w, const ConvShape& s,
               const ConvOptions& opts = {});

/// Same, but executing an explicit boundary plan (e.g. a tuned plan from
/// the selector/plan-cache subsystem) instead of the default priorities.
/// `opts` contributes only the filter-cache/trace knobs (the plan already
/// fixes the kernel choices).
TensorF conv2d(const TensorF& x, const TensorF& w, const ConvShape& s,
               const std::vector<Segment>& plan, const ConvOptions& opts = {});

/// Backward-data / transposed convolution, NHWC, host engine.
TensorF deconv2d(const TensorF& dy, const TensorF& w, const ConvShape& s,
                 const ConvOptions& opts = {});

/// NCHW entry point (§7: "our implementations can be ported to NCHW and
/// CHWN formats"): accepts/returns NCHW tensors; the Winograd engine itself
/// is layout-agnostic at this level, so the port is a view change.
TensorF conv2d_nchw(const TensorF& x_nchw, const TensorF& w,
                    const ConvShape& s, const ConvOptions& opts = {});

/// NCHW backward-data / transposed convolution — same view-change approach.
/// `dy_nchw` is N,OC,OH,OW; the result is N,IC,IH,IW.
TensorF deconv2d_nchw(const TensorF& dy_nchw, const TensorF& w,
                      const ConvShape& s, const ConvOptions& opts = {});

/// Functional execution on the SIMT model (Γ kernels + GEMM-tail kernel).
TensorF conv2d_sim(const TensorF& x, const TensorF& w, const ConvShape& s,
                   const std::vector<Segment>& plan);
TensorF deconv2d_sim(const TensorF& dy, const TensorF& w, const ConvShape& s,
                     const std::vector<Segment>& plan);

/// Performance report for one convolution on a device profile.
struct ConvPerfReport {
  double time_s = 0.0;       ///< kernel time (excl. filter transposition)
  double gflops = 0.0;       ///< the paper's metric (kernel time only, '*')
  double transpose_s = 0.0;  ///< filter transposition cost (§5.1)
  sim::LaunchStats stats;    ///< merged counters of all segments
  std::vector<sim::PerfEstimate> segments;

  double time_with_transpose() const { return time_s + transpose_s; }
  double gflops_with_transpose(double flops) const {
    const double t = time_with_transpose();
    return t > 0.0 ? flops / t / 1e9 : 0.0;
  }
};

/// Profile the Im2col-Winograd plan (address-only buffers, sampled blocks).
ConvPerfReport profile_conv2d(const ConvShape& s,
                              const sim::DeviceProfile& dev,
                              const std::vector<Segment>& plan,
                              int max_samples = 6);

/// Profile the implicit-GEMM baseline in the given layout.
ConvPerfReport profile_gemm_conv2d(const ConvShape& s,
                                   const sim::DeviceProfile& dev,
                                   GemmLayout layout, int max_samples = 6);

}  // namespace iwg::core
