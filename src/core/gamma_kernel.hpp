// The fused Im2col-Winograd GPU kernel Γα(n, r) on the SIMT model.
//
// One thread block computes BN output channels × BM 1-D output tiles
// (n outputs each) for one OW segment, iterating over FH × ⌈IC/BK⌉ chunks
// (Algorithm 1 for the double-buffered α ∈ {4, 8} kernels, Algorithm 2 for
// α = 16). All stages — im2col indexing, filter transform, input transform,
// outer-product accumulation, output transform — run inside the single
// kernel; no global workspace exists, which is the paper's "fused" property.
//
// Faithfulness notes (documented deviations):
//  * The Z-shaped lane arrangement (Figure 4) is generalized to every
//    (BN/a_len) × (BM/b_len) chunk grid; the paper's printed GIdx/DIdx
//    formulas do not type-check against BN=64/BM=32, so we use the
//    self-consistent Z-order they illustrate.
//  * The output transform runs in a_len/2 sub-rounds (pairs merged into
//    128-bit stores), equivalent to the paper's "4 rounds of 1/4 of the
//    accumulators" for the 64-accumulator kernels.
#pragma once

#include <memory>

#include "core/gamma_config.hpp"
#include "gpusim/perf_model.hpp"
#include "gpusim/sim.hpp"
#include "tensor/conv_shape.hpp"
#include "tensor/tensor.hpp"
#include "winograd/plan.hpp"

namespace iwg::core {

/// Access-site ids the Γ kernel tags its memory operations with. Public so
/// per-site counters in sim::LaunchStats (and the analytic predictions in
/// core/conflict_model) can name the specific access they talk about — e.g.
/// "the Ds staging store" rather than a whole-kernel aggregate.
enum GammaSite : int {
  kSiteW = 0,     ///< filter loads (global)
  kSiteX = 1,     ///< input loads (global, texture-like)
  kSiteGsSt = 2,  ///< transformed filter stores (SMEM)
  kSiteDsSt = 3,  ///< transformed input stores (SMEM)
  kSiteGsLd = 4,  ///< outer-product a loads (SMEM)
  kSiteDsLd = 5,  ///< outer-product b loads (SMEM)
  kSiteYsSt = 6,  ///< output-transform staging stores (SMEM)
  kSiteYsLd = 7,  ///< output-transform staging loads (SMEM)
  kSiteY = 8,     ///< output stores (global)
};

/// Which convolution the kernel computes.
enum class ConvDir {
  kForward,       ///< filter passed in transposed FH,FW,IC,OC layout
  kBackwardData,  ///< filter passed in the ORIGINAL OC,FH,FW,IC layout; the
                  ///< 180° rotation is fused into the filter transform (§5.1)
};

class GammaKernel final : public sim::Kernel {
 public:
  /// `shape` is the forward-convolution geometry the kernel executes (for
  /// backward-data, callers pass the equivalent forward geometry with
  /// swapped channels and flipped padding — see make_backward_shape()).
  /// `x`/`w` may be address-only (null data) in profiling mode.
  GammaKernel(GammaConfig cfg, ConvShape shape, ConvDir dir, sim::GmemBuf x,
              sim::GmemBuf w, sim::GmemBuf y, std::int64_t ow_start,
              std::int64_t ow_len);

  std::string name() const override { return cfg_.name(); }
  sim::Dim3 block_dim() const override {
    return {cfg_.threads_x, cfg_.threads_y, 1};
  }
  std::int64_t smem_bytes() const override { return cfg_.smem_bytes(); }
  int regs_per_thread() const override { return cfg_.regs_per_thread(); }
  void run_block(sim::Block& blk) const override;

  sim::Dim3 grid() const;
  const GammaConfig& config() const { return cfg_; }

  /// Equivalent forward geometry for the backward-data pass of `s`.
  static ConvShape make_backward_shape(const ConvShape& s);

 private:
  struct ThreadGeom;  // per-thread derived indices

  void load_chunk(sim::Block& blk, const sim::Thread& t, sim::Smem& gs,
                  sim::Smem& ds, int buf, std::int64_t fh, std::int64_t ic0,
                  std::int64_t oc0, std::int64_t tile0) const;
  void outer_product(const sim::Thread& t, sim::Smem& gs, sim::Smem& ds,
                     int buf, float* v) const;
  std::int64_t filter_index(std::int64_t fh, std::int64_t j, std::int64_t k,
                            std::int64_t c) const;

  GammaConfig cfg_;
  ConvShape shape_;
  ConvDir dir_;
  sim::GmemBuf x_, w_, y_;
  std::int64_t ow_start_, ow_len_;
  std::int64_t tiles_w_;      ///< OW tiles in the segment (ow_len / n)
  std::int64_t total_tiles_;  ///< N · OH · tiles_w
  const WinogradPlan* plan_;
  TransformEval g_eval_, d_eval_, at_eval_;
};

/// Run the kernel functionally over the full grid (tests, small shapes).
sim::LaunchStats run_gamma(const GammaKernel& k, bool counting = false);

/// Sampled profile + analytic estimate for one segment on `dev`. When
/// `stats_out` is non-null it receives the measured (extrapolated) hardware
/// counters the estimate was computed from, so callers can export them.
sim::PerfEstimate profile_gamma(const GammaKernel& k,
                                const sim::DeviceProfile& dev,
                                double conv_flops, double footprint_bytes,
                                int max_samples = 8, int num_launches = 1,
                                sim::LaunchStats* stats_out = nullptr);

}  // namespace iwg::core
