// Autotuned-plan cache — the serving-path side of the selector.
//
// select_algorithm (selector.hpp) is the expensive "find" step; PlanCache
// amortizes it across invocations the way cuDNN-find results are cached by
// frameworks. Keys are structs (full ConvShape + device name + samples
// fidelity — a low-fidelity answer must never serve a high-fidelity query),
// storage is sharded under per-shard mutexes with LRU eviction at a
// configurable capacity, and hit/miss/eviction/tuning-time counters are
// exposed via stats(). The cache serializes to a versioned text plan DB
// (same magic + version + strict-check conventions as nn/serialize) so a
// "find once, deploy many" flow works: tune in one process, load the DB in
// another, and every lookup hits with zero tuning time.
#pragma once

#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/selector.hpp"

namespace iwg::core {

/// Full identity of a tuning result.
struct PlanKey {
  ConvShape shape;
  std::string device;
  int samples = 4;  ///< profiling fidelity — part of the key

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const;
};

/// Counters aggregated over all shards. hits + misses == lookups always
/// holds exactly (each counter is updated under the owning shard's mutex).
struct CacheStats {
  std::int64_t lookups = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t entries = 0;
  double tuning_time_s = 0.0;  ///< wall time spent inside select_algorithm
};

class PlanCache {
 public:
  /// `capacity` bounds resident entries across the whole cache; it is split
  /// evenly across `num_shards` (LRU order is exact per shard, approximate
  /// globally — construct with num_shards = 1 for exact global LRU).
  explicit PlanCache(std::int64_t capacity = 1024, int num_shards = 8);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Cached lookup; on miss runs select_algorithm (outside any lock — a
  /// concurrent miss on the same key may tune twice; the results are
  /// identical and the first insert wins) and caches the result.
  AlgoChoice get_or_tune(const ConvShape& s, const sim::DeviceProfile& dev,
                         int samples = 4, const TuningBudget& budget = {});

  /// Lookup only (counts a hit or a miss; refreshes LRU position on hit).
  std::optional<AlgoChoice> lookup(const PlanKey& key);

  /// Insert or refresh (does not count as a lookup). Evicts the shard's LRU
  /// tail when over capacity.
  void insert(const PlanKey& key, const AlgoChoice& choice);

  /// Drop all entries. Counters are preserved (they describe the lifetime of
  /// the cache, not its current contents).
  void clear();

  CacheStats stats() const;
  std::int64_t size() const;
  std::int64_t capacity() const { return capacity_; }

  /// Serialize every entry to a versioned text plan DB in canonical (sorted)
  /// order — saving, loading, and saving again is byte-identical. Returns
  /// the number of entries written.
  std::int64_t save(const std::string& path) const;

  /// Merge entries from a plan DB produced by save(). Throws on bad magic,
  /// unsupported version, or malformed entries. All-or-nothing: the whole
  /// file is parsed into a staging buffer first, so a truncated or corrupt
  /// DB leaves the cache exactly as it was.
  std::int64_t load(const std::string& path);

  /// Process-wide cache used by select_algorithm_cached.
  static PlanCache& global();

 private:
  struct Entry {
    PlanKey key;
    AlgoChoice choice;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<PlanKey, std::list<Entry>::iterator, PlanKeyHash> index;
    std::int64_t lookups = 0;
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    double tuning_time_s = 0.0;
  };

  Shard& shard_for(const PlanKey& key);
  void insert_locked(Shard& shard, const PlanKey& key,
                     const AlgoChoice& choice);

  std::int64_t capacity_;
  std::int64_t shard_capacity_;
  std::vector<Shard> shards_;
};

}  // namespace iwg::core
