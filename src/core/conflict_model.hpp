// Analytic bank-conflict model for the Γ kernel's shared-memory sites.
//
// The paper's §5.2 claims — Ds padding fixes Γ4/Γ16, the (Xi + 4·Xk) % BM
// swizzle is *required* for Γ8 because padding cannot help it, and the
// Figure-4 Z-shaped lane arrangement keeps the outer-product loads clean —
// are usually asserted from the index formulas. This model turns them into
// numbers: it rebuilds each warp's (address, width) access list for the
// staging stores and outer-product loads directly from the GammaConfig
// geometry (independently of the kernel's execution path), then prices the
// lists with sim::smem_request_cost — the exact measurement rule the SIMT
// simulator applies to executed accesses. Because predicted and measured
// requests are priced by the same rule, the per-site conflict factors are
// directly comparable, and sim_counters_test asserts they agree for the
// swizzled and unswizzled kernels alike.
//
// Why Γ8 needs the swizzle and padding does nothing for it: an unswizzled
// thread stores its Ds column col_raw = Xi at word (Xk·α·ds_last + s·ds_last
// + Xi). Within a Γ8 warp (tx = 0..15, two ty rows) the 32 lanes cover only
// 4 distinct Xi values while Xk walks 0..7, so 8 lanes collide on each of 4
// banks → an 8-way conflict. Padding ds_last 32→36 shifts each Xk row by
// Xk·8·36 = 288·Xk ≡ 0 (mod 32): every row lands on the same banks again.
// The swizzle makes the column Xk-dependent — (Xi + 4·Xk) % 32 — which
// spreads the 32 lanes over all 32 banks: conflict-free by construction.
#pragma once

#include "core/gamma_config.hpp"
#include "gpusim/sim.hpp"

namespace iwg::core {

/// Predicted per-site smem request costs for one staging phase plus one
/// outer-product pass over every warp of a Γ thread block. Conflict factors
/// (passes / ideal) are scale-invariant, so they equal the factors a full
/// counted launch measures — the kernel repeats the same access pattern
/// every (fh, ic-chunk) iteration.
struct GammaConflictPrediction {
  sim::SmemRequestCost gs_store;  ///< kSiteGsSt — transformed filter staging
  sim::SmemRequestCost ds_store;  ///< kSiteDsSt — transformed input staging
  sim::SmemRequestCost gs_load;   ///< kSiteGsLd — outer-product a operand
  sim::SmemRequestCost ds_load;   ///< kSiteDsLd — outer-product b operand
};

GammaConflictPrediction predict_gamma_conflicts(const GammaConfig& cfg);

}  // namespace iwg::core
