#include "core/gemm_kernel.hpp"

#include <algorithm>
#include <vector>

namespace iwg::core {

using sim::Block;
using sim::Smem;
using sim::Thread;

namespace {
enum Site : int {
  kSiteW = 0,
  kSiteX = 1,
  kSiteAsSt = 2,
  kSiteBsSt = 3,
  kSiteAsLd = 4,
  kSiteBsLd = 5,
  kSiteY = 6,
};
}  // namespace

TensorF precompute_gemm_filter(const TensorF& w, GemmLayout layout) {
  IWG_CHECK(w.rank() == 4);
  const std::int64_t oc = w.dim(0), fh = w.dim(1), fw = w.dim(2),
                     ic = w.dim(3);
  TensorF out({fh * fw * ic, oc});
  for (std::int64_t o = 0; o < oc; ++o) {
    for (std::int64_t h = 0; h < fh; ++h) {
      for (std::int64_t x = 0; x < fw; ++x) {
        for (std::int64_t i = 0; i < ic; ++i) {
          const std::int64_t k = layout == GemmLayout::kNHWC
                                     ? (h * fw + x) * ic + i
                                     : (i * fh + h) * fw + x;
          out.at(k, o, 0, 0) = w.at(o, h, x, i);
        }
      }
    }
  }
  return out;
}

ImplicitGemmKernel::ImplicitGemmKernel(ConvShape shape, GemmLayout layout,
                                       sim::GmemBuf x, sim::GmemBuf w,
                                       sim::GmemBuf y, std::int64_t ow_start,
                                       std::int64_t ow_len)
    : shape_(shape),
      layout_(layout),
      x_(x),
      w_(w),
      y_(y),
      ow_start_(ow_start),
      ow_len_(ow_len) {
  shape_.validate();
  IWG_CHECK(ow_start >= 0 && ow_len > 0 && ow_start + ow_len <= shape_.ow());
  pixels_ = shape_.n * shape_.oh() * ow_len_;
  gk_ = shape_.fh * shape_.fw * shape_.ic;
  // Library-style tile selection: don't waste half the math on OC padding.
  bn_ = shape_.oc <= 64 ? 64 : 128;
  bm_ = 16384 / bn_;
}

sim::Dim3 ImplicitGemmKernel::grid() const {
  sim::Dim3 g;
  g.x = static_cast<int>((shape_.oc + bn_ - 1) / bn_);
  g.y = static_cast<int>((pixels_ + bm_ - 1) / bm_);
  return g;
}

std::int64_t ImplicitGemmKernel::x_index(std::int64_t ni, std::int64_t fh,
                                         std::int64_t fw, std::int64_t ic,
                                         std::int64_t oh, std::int64_t ow,
                                         bool& ok) const {
  const std::int64_t ih = oh + fh - shape_.ph;
  const std::int64_t iw = ow + fw - shape_.pw;
  ok = ih >= 0 && ih < shape_.ih && iw >= 0 && iw < shape_.iw;
  if (!ok) return 0;
  if (layout_ == GemmLayout::kNHWC) {
    return ((ni * shape_.ih + ih) * shape_.iw + iw) * shape_.ic + ic;
  }
  return ((ni * shape_.ic + ic) * shape_.ih + ih) * shape_.iw + iw;
}

void ImplicitGemmKernel::run_block(Block& blk) const {
  const std::int64_t oc0 = static_cast<std::int64_t>(blk.block_idx().x) * bn_;
  const std::int64_t pix0 = static_cast<std::int64_t>(blk.block_idx().y) * bm_;
  const std::int64_t oh_total = shape_.oh();

  Smem as = blk.smem("As", 2ll * kBk * bn_);
  Smem bs = blk.smem("Bs", 2ll * kBk * bm_);
  std::vector<float> acc(256 * 64, 0.0f);

  auto pixel_of = [&](std::int64_t m, std::int64_t& ni, std::int64_t& oh,
                      std::int64_t& ow) {
    ni = m / (oh_total * ow_len_);
    const std::int64_t rem = m % (oh_total * ow_len_);
    oh = rem / ow_len_;
    ow = ow_start_ + rem % ow_len_;
  };
  auto k_of = [&](std::int64_t k, std::int64_t& fh, std::int64_t& fw,
                  std::int64_t& ic) {
    if (layout_ == GemmLayout::kNHWC) {
      fh = k / (shape_.fw * shape_.ic);
      fw = (k / shape_.ic) % shape_.fw;
      ic = k % shape_.ic;
    } else {
      ic = k / (shape_.fh * shape_.fw);
      fh = (k / shape_.fw) % shape_.fh;
      fw = k % shape_.fw;
    }
  };

  // Z-ordered accumulator tiles (like the Γ kernels' Figure-4 arrangement):
  // lanes of a quarter-warp stay inside one 32-word span of As and Bs, which
  // keeps the 128-bit shared loads conflict-free.
  const int dc = bm_ / 8;
  auto tile_of = [&](const Thread& t, int& aoff, int& boff) {
    aoff = ((t.flat % 2) + (t.flat / (2 * dc)) * 2) * 8;
    boff = ((t.flat % (2 * dc)) / 2) * 8;
  };

  auto load_chunk = [&](const Thread& t, int buf, std::int64_t k0) {
    // As[k][oc-col]: each thread fetches its contiguous span of the k-major
    // filter matrix (coalesced by construction).
    {
      const int av = bn_ * kBk / 256;  // 2 or 4 contiguous OC per thread
      const int start = t.flat * av;
      const int kk = start / bn_;
      const int col0 = start % bn_;
      float v[4] = {0, 0, 0, 0};
      const std::int64_t k = k0 + kk;
      if (k < gk_) {
        if (av == 4) {
          if (oc0 + col0 + 3 < shape_.oc) {
            t.ldg128(w_, k * shape_.oc + oc0 + col0, v, kSiteW);
          } else {
            for (int j = 0; j < 4 && oc0 + col0 + j < shape_.oc; ++j)
              v[j] = t.ldg(w_, k * shape_.oc + oc0 + col0 + j, kSiteW);
          }
        } else {
          if (oc0 + col0 + 1 < shape_.oc) {
            t.ldg64(w_, k * shape_.oc + oc0 + col0, v, kSiteW);
          } else if (oc0 + col0 < shape_.oc) {
            v[0] = t.ldg(w_, k * shape_.oc + oc0 + col0, kSiteW);
          }
        }
      }
      for (int j = 0; j < av; ++j) {
        t.sts(as, (static_cast<std::int64_t>(buf) * kBk + kk) * bn_ + col0 + j,
              v[j], kSiteAsSt);
      }
    }
    // Bs[k][pixel]: layout-dependent gather direction.
    if (layout_ == GemmLayout::kNHWC) {
      // k-major per pixel: contiguous IC runs within one filter tap become
      // 128-bit loads.
      const int tpp = 256 / bm_;  // threads per pixel (1 or 2)
      const int kpt = kBk / tpp;  // k values per thread (8 or 4)
      const std::int64_t m_l = t.flat % bm_;
      const int kh = (t.flat / static_cast<int>(bm_)) * kpt;
      std::int64_t ni = 0, oh = 0, ow = 0;
      const bool mp = pix0 + m_l < pixels_;
      if (mp) pixel_of(pix0 + m_l, ni, oh, ow);
      for (int q = 0; q < kpt; q += 4) {
        float v[4] = {0, 0, 0, 0};
        const std::int64_t kbase = k0 + kh + q;
        std::int64_t fh0 = 0, fw0 = 0, ic0 = 0;
        bool contiguous = false;
        if (mp && kbase + 3 < gk_) {
          k_of(kbase, fh0, fw0, ic0);
          contiguous = ic0 + 3 < shape_.ic;  // four k inside one filter tap
        }
        if (contiguous) {
          bool ok;
          const std::int64_t idx = x_index(ni, fh0, fw0, ic0, oh, ow, ok);
          if (ok) t.ldg128(x_, idx, v, kSiteX);
        } else {
          for (int j = 0; j < 4; ++j) {
            const std::int64_t k = kbase + j;
            if (!mp || k >= gk_) continue;
            std::int64_t fh, fw, ic;
            k_of(k, fh, fw, ic);
            bool ok;
            const std::int64_t idx = x_index(ni, fh, fw, ic, oh, ow, ok);
            v[j] = ok ? t.ldg(x_, idx, kSiteX) : 0.0f;
          }
        }
        for (int j = 0; j < 4; ++j) {
          t.sts(bs,
                (static_cast<std::int64_t>(buf) * kBk + (kh + q + j)) * bm_ +
                    m_l,
                v[j], kSiteBsSt);
        }
      }
    } else {
      // pixel-major: one warp per k row, lanes covering consecutive pixels
      // via 128-bit loads — coalesced along the contiguous w axis.
      const int pv = bm_ / 32;  // pixels per lane (4 or 8)
      const int kk = t.warp;
      const std::int64_t k = k0 + kk;
      std::int64_t fh = 0, fw = 0, ic = 0;
      if (k < gk_) k_of(k, fh, fw, ic);
      for (int q = 0; q < pv; q += 4) {
        const int m0 = t.lane * pv + q;
        float v[4] = {0, 0, 0, 0};
        bool vectorized = false;
        if (k < gk_ && pix0 + m0 + 3 < pixels_) {
          std::int64_t ni, oh, ow;
          pixel_of(pix0 + m0, ni, oh, ow);
          // One 128-bit load when the 4 pixels stay in one output row and
          // their input columns are all interior.
          if (ow + 3 < ow_start_ + ow_len_) {
            const std::int64_t iw = ow + fw - shape_.pw;
            if (iw >= 0 && iw + 3 < shape_.iw) {
              const std::int64_t ih = oh + fh - shape_.ph;
              if (ih >= 0 && ih < shape_.ih) {
                t.ldg128(x_,
                         ((ni * shape_.ic + ic) * shape_.ih + ih) * shape_.iw +
                             iw,
                         v, kSiteX);
              }
              vectorized = true;  // padded rows keep the zeros
            }
          }
        }
        if (!vectorized) {
          for (int j = 0; j < 4; ++j) {
            const std::int64_t m = pix0 + m0 + j;
            if (k >= gk_ || m >= pixels_) continue;
            std::int64_t ni, oh, ow;
            pixel_of(m, ni, oh, ow);
            bool ok;
            const std::int64_t idx = x_index(ni, fh, fw, ic, oh, ow, ok);
            v[j] = ok ? t.ldg(x_, idx, kSiteX) : 0.0f;
          }
        }
        t.sts128(bs, (static_cast<std::int64_t>(buf) * kBk + kk) * bm_ + m0, v,
                 kSiteBsSt);
      }
    }
  };

  auto compute = [&](const Thread& t, int buf) {
    int aoff, boff;
    tile_of(t, aoff, boff);
    float* v = &acc[static_cast<std::size_t>(t.flat) * 64];
    for (int ik = 0; ik < kBk; ++ik) {
      float a[8];
      float b[8];
      for (int c4 = 0; c4 < 2; ++c4) {
        t.lds128(as,
                 (static_cast<std::int64_t>(buf) * kBk + ik) * bn_ + aoff +
                     4 * c4,
                 &a[4 * c4], kSiteAsLd);
        t.lds128(bs,
                 (static_cast<std::int64_t>(buf) * kBk + ik) * bm_ + boff +
                     4 * c4,
                 &b[4 * c4], kSiteBsLd);
      }
      for (int ia = 0; ia < 8; ++ia)
        for (int ib = 0; ib < 8; ++ib) v[ia * 8 + ib] += a[ia] * b[ib];
      t.count_fma(64);
    }
  };

  const std::int64_t chunks = (gk_ + kBk - 1) / kBk;
  int buf = 0;
  blk.phase([&](Thread& t) { load_chunk(t, 0, 0); });
  for (std::int64_t i = 0; i < chunks; ++i) {
    blk.phase([&, i, buf](Thread& t) {
      compute(t, buf);
      if (i + 1 < chunks) load_chunk(t, buf ^ 1, (i + 1) * kBk);
    });
    buf ^= 1;
  }

  // Store 8×8 accumulators.
  blk.phase([&](Thread& t) {
    int aoff, boff;
    tile_of(t, aoff, boff);
    const float* v = &acc[static_cast<std::size_t>(t.flat) * 64];
    for (int ib = 0; ib < 8; ++ib) {
      const std::int64_t m = pix0 + boff + ib;
      if (m >= pixels_) continue;
      std::int64_t ni, oh, ow;
      pixel_of(m, ni, oh, ow);
      for (int ia = 0; ia < 8; ++ia) {
        const std::int64_t oc = oc0 + aoff + ia;
        if (oc >= shape_.oc) continue;
        const std::int64_t idx =
            layout_ == GemmLayout::kNHWC
                ? ((ni * oh_total + oh) * shape_.ow() + ow) * shape_.oc + oc
                : ((ni * shape_.oc + oc) * oh_total + oh) * shape_.ow() + ow;
        t.stg(y_, idx, v[ia * 8 + ib], kSiteY);
      }
    }
  });
}

sim::PerfEstimate profile_gemm(const ImplicitGemmKernel& k,
                               const sim::DeviceProfile& dev,
                               double conv_flops, double footprint_bytes,
                               int max_samples, int num_launches,
                               sim::LaunchStats* stats_out) {
  sim::PerfInput in;
  in.stats = sim::launch_sample(k, k.grid(), max_samples);
  if (stats_out != nullptr) *stats_out = in.stats;
  in.grid_blocks = k.grid().count();
  in.threads_per_block = 256;
  in.smem_per_block = k.smem_bytes();
  in.regs_per_thread = k.regs_per_thread();
  in.conv_flops = conv_flops;
  in.footprint_bytes = footprint_bytes;
  in.num_launches = num_launches;
  return sim::estimate_perf(dev, in);
}

}  // namespace iwg::core
