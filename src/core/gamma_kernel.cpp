#include "core/gamma_kernel.hpp"

#include <algorithm>
#include <vector>

namespace iwg::core {

using sim::Block;
using sim::Smem;
using sim::Thread;

ConvShape GammaKernel::make_backward_shape(const ConvShape& s) {
  ConvShape b;
  b.n = s.n;
  b.ih = s.oh();
  b.iw = s.ow();
  b.ic = s.oc;
  b.oc = s.ic;
  b.fh = s.fh;
  b.fw = s.fw;
  b.ph = s.fh - 1 - s.ph;
  b.pw = s.fw - 1 - s.pw;
  b.validate();
  IWG_CHECK(b.oh() == s.ih && b.ow() == s.iw);
  return b;
}

GammaKernel::GammaKernel(GammaConfig cfg, ConvShape shape, ConvDir dir,
                         sim::GmemBuf x, sim::GmemBuf w, sim::GmemBuf y,
                         std::int64_t ow_start, std::int64_t ow_len)
    : cfg_(cfg),
      shape_(shape),
      dir_(dir),
      x_(x),
      w_(w),
      y_(y),
      ow_start_(ow_start),
      ow_len_(ow_len),
      plan_(&get_plan(cfg.n, cfg.r)),
      g_eval_(cfg.alpha, cfg.r, plan_->g_f, /*paired=*/true),
      d_eval_(cfg.alpha, cfg.alpha, plan_->bt_f, /*paired=*/true),
      at_eval_(cfg.n, cfg.alpha, plan_->at_f, /*paired=*/false) {
  shape_.validate();
  IWG_CHECK(cfg_.r == shape_.fw);
  IWG_CHECK(ow_start_ >= 0 && ow_len_ > 0 &&
            ow_start_ + ow_len_ <= shape_.ow());
  IWG_CHECK_MSG(ow_len_ % cfg_.n == 0,
                "segment length must be a tile multiple (planner bug)");
  tiles_w_ = ow_len_ / cfg_.n;
  total_tiles_ = shape_.n * shape_.oh() * tiles_w_;
}

sim::Dim3 GammaKernel::grid() const {
  sim::Dim3 g;
  g.x = static_cast<int>((shape_.oc + cfg_.bn - 1) / cfg_.bn);
  g.y = static_cast<int>((total_tiles_ + cfg_.bm - 1) / cfg_.bm);
  return g;
}

std::int64_t GammaKernel::filter_index(std::int64_t fh, std::int64_t j,
                                       std::int64_t k, std::int64_t c) const {
  if (dir_ == ConvDir::kForward) {
    // Transposed layout FH,FW,IC,OC (§5.1): consecutive OC are contiguous.
    return ((fh * shape_.fw + j) * shape_.ic + k) * shape_.oc + c;
  }
  // Backward data: original OC,FH,FW,IC layout with the 180° rotation fused
  // into the indexing. Here the kernel's input channels k are the original
  // output channels and vice versa; consecutive c (original IC) are
  // contiguous, so loads stay coalesced without rearranging the filter.
  const std::int64_t fh_orig = shape_.fh - 1 - fh;
  const std::int64_t fw_orig = shape_.fw - 1 - j;
  return ((k * shape_.fh + fh_orig) * shape_.fw + fw_orig) * shape_.oc + c;
}

namespace {

struct Geom {
  // Tile/filter staging assignment.
  int gk, gi;  // filter: k-channel within chunk, first OC column
  int xk, xi;  // input: k-channel within chunk, first tile column
  // Outer-product assignment.
  int ux;          // state
  int gidx, didx;  // first OC / tile of the accumulator patch
  int gchunk;      // gidx / a_len
};

Geom make_geom(const GammaConfig& cfg, const Thread& t) {
  Geom g;
  const int threads = cfg.threads();
  g.gk = t.ty % 8;
  g.xk = t.tx % 8;
  const int slot_g = threads == 256 ? 2 * t.tx + (t.ty > 7 ? 1 : 0) : t.tx;
  const int slot_d = 2 * t.ty + (t.tx > 7 ? 1 : 0);
  g.gi = slot_g * cfg.filter_tiles_per_thread;
  g.xi = slot_d * cfg.input_tiles_per_thread;

  const int tps = threads / cfg.alpha;  // threads per state
  g.ux = t.flat / tps;
  const int uy = t.flat % tps;
  const int gc = cfg.bn / cfg.a_len;
  const int dc = cfg.bm / cfg.b_len;
  int gcell, dcell;
  if (cfg.zshape_lanes && gc >= 2) {
    // Figure-4 Z-shaped arrangement: 2×2 squares of lanes walk the chunk
    // grid so that sub-warp transactions touch disjoint bank groups.
    gcell = (uy % 2) + (uy / (2 * dc)) * 2;
    dcell = (uy % (2 * dc)) / 2;
  } else {
    gcell = uy % gc;
    dcell = uy / gc;
  }
  g.gidx = gcell * cfg.a_len;
  g.didx = dcell * cfg.b_len;
  g.gchunk = gcell;
  return g;
}

}  // namespace

void GammaKernel::load_chunk(Block& blk, const Thread& t, Smem& gs, Smem& ds,
                             int buf, std::int64_t fh, std::int64_t ic0,
                             std::int64_t oc0, std::int64_t tile0) const {
  (void)blk;
  const Geom g = make_geom(cfg_, t);
  const int alpha = cfg_.alpha;
  const int r = cfg_.r;
  const int bn = cfg_.bn;
  const int bm = cfg_.bm;
  const int ds_last = bm + ((cfg_.pad_smem && !cfg_.swizzle_ds) ? 4 : 0);

  auto gs_at = [&](int k, int s, int col) {
    return ((static_cast<std::int64_t>(buf) * cfg_.bk + k) * alpha + s) * bn +
           col;
  };
  auto ds_at = [&](int k, int s, int col) {
    return ((static_cast<std::int64_t>(buf) * cfg_.bk + k) * alpha + s) *
               ds_last +
           col;
  };

  // ---- Filter tiles: load r taps, transform to α states, stage in Gs.
  // Threads owning adjacent OC tiles fetch both taps with one 64-bit load
  // (the vectorization §5.4 mentions for the filter path). Forward filters
  // are consecutive in OC; backward filters are consecutive in the original
  // IC, which is the backward out-channel — contiguous either way.
  const std::int64_t kch = ic0 + g.gk;
  const int ft = cfg_.filter_tiles_per_thread;
  for (int f0 = 0; f0 < ft; f0 += 2) {
    const std::int64_t c = oc0 + g.gi + f0;
    const bool pair = f0 + 1 < ft;
    float wt[2][16];
    const bool have0 = c < shape_.oc && kch < shape_.ic;
    const bool have1 = pair && c + 1 < shape_.oc && kch < shape_.ic;
    for (int j = 0; j < r; ++j) {
      if (pair && have0 && have1) {
        float two[2];
        t.ldg64(w_, filter_index(fh, j, kch, c), two, kSiteW);
        wt[0][j] = two[0];
        wt[1][j] = two[1];
      } else {
        wt[0][j] =
            have0 ? t.ldg(w_, filter_index(fh, j, kch, c), kSiteW) : 0.0f;
        wt[1][j] = have1
                       ? t.ldg(w_, filter_index(fh, j, kch, c + 1), kSiteW)
                       : 0.0f;
      }
    }
    for (int f = f0; f < std::min(f0 + 2, ft); ++f) {
      float gh[16];
      g_eval_.apply(wt[f - f0], 1, gh, 1);
      t.count_fma(g_eval_.mul_count());
      t.count_alu(g_eval_.add_count());
      for (int s = 0; s < alpha; ++s) {
        t.sts(gs, gs_at(g.gk, s, g.gi + f), gh[s], kSiteGsSt);
      }
    }
  }

  // ---- Input tiles: α row elements each (texture-style implicit padding),
  // with the §5.4 overlap reuse when a thread owns adjacent tiles. Note the
  // input staging uses its own k-channel (Xk), not the filter one (Gk).
  const std::int64_t xch = ic0 + g.xk;
  const std::int64_t oh_total = shape_.oh();
  float dt_prev[16];
  bool prev_ok = false;
  std::int64_t prev_tile = -1;
  for (int it = 0; it < cfg_.input_tiles_per_thread; ++it) {
    const std::int64_t tile = tile0 + g.xi + it;
    const bool valid = tile < total_tiles_ && xch < shape_.ic;
    std::int64_t n_i = 0, oh_i = 0, tw = 0;
    if (valid) {
      n_i = tile / (oh_total * tiles_w_);
      const std::int64_t rem = tile % (oh_total * tiles_w_);
      oh_i = rem / tiles_w_;
      tw = rem % tiles_w_;
    }
    const std::int64_t ih = oh_i + fh - shape_.ph;
    const std::int64_t iw0 = ow_start_ + tw * cfg_.n - shape_.pw;
    const bool row_ok = valid && ih >= 0 && ih < shape_.ih;

    float dt[16];
    float dh[16];
    // Overlap with the previous tile: tiles are n apart, so elements
    // [0, r−1) of this tile equal elements [n, α) of the previous one when
    // both tiles sit on the same feature-map row.
    const bool reuse = it > 0 && prev_ok && valid && tile == prev_tile + 1 &&
                       (tile % tiles_w_) != 0;
    const int e0 = reuse ? (r - 1) : 0;
    if (reuse) {
      for (int e = 0; e < r - 1; ++e) dt[e] = dt_prev[cfg_.n + e];
    }
    for (int e = e0; e < alpha; ++e) {
      const std::int64_t iw = iw0 + e;
      const bool ok = row_ok && iw >= 0 && iw < shape_.iw;
      dt[e] = ok ? t.ldg(x_,
                         ((n_i * shape_.ih + ih) * shape_.iw + iw) * shape_.ic +
                             xch,
                         kSiteX)
                 : 0.0f;
    }
    d_eval_.apply(dt, 1, dh, 1);
    t.count_fma(d_eval_.mul_count());
    t.count_alu(d_eval_.add_count());
    const int col_raw = g.xi + it;
    const int col = cfg_.swizzle_ds ? (col_raw + 4 * g.xk) % bm : col_raw;
    for (int s = 0; s < alpha; ++s) {
      t.sts(ds, ds_at(g.xk, s, col), dh[s], kSiteDsSt);
    }
    for (int e = 0; e < alpha; ++e) dt_prev[e] = dt[e];
    prev_ok = row_ok;
    prev_tile = tile;
  }
}

void GammaKernel::outer_product(const Thread& t, Smem& gs, Smem& ds, int buf,
                                float* v) const {
  const Geom g = make_geom(cfg_, t);
  const int alpha = cfg_.alpha;
  const int bn = cfg_.bn;
  const int bm = cfg_.bm;
  const int ds_last = bm + ((cfg_.pad_smem && !cfg_.swizzle_ds) ? 4 : 0);

  for (int ik = 0; ik < cfg_.bk; ++ik) {
    const std::int64_t gs_row =
        ((static_cast<std::int64_t>(buf) * cfg_.bk + ik) * alpha + g.ux) * bn;
    const std::int64_t ds_row =
        ((static_cast<std::int64_t>(buf) * cfg_.bk + ik) * alpha + g.ux) *
        ds_last;
    float a[16];
    float b[16];
    for (int c4 = 0; c4 < cfg_.a_len / 4; ++c4) {
      t.lds128(gs, gs_row + g.gidx + 4 * c4, &a[4 * c4], kSiteGsLd);
    }
    for (int c4 = 0; c4 < cfg_.b_len / 4; ++c4) {
      // With the Γ8/c64 swizzle the b-mapping shifts by 4·ik (§5.2); the
      // shifted start stays 4-aligned, so 128-bit loads remain legal.
      const int col0 = cfg_.swizzle_ds
                           ? (g.didx + 4 * c4 + 4 * ik) % bm
                           : g.didx + 4 * c4;
      t.lds128(ds, ds_row + col0, &b[4 * c4], kSiteDsLd);
    }
    for (int ia = 0; ia < cfg_.a_len; ++ia) {
      for (int ib = 0; ib < cfg_.b_len; ++ib) {
        v[ia * cfg_.b_len + ib] += a[ia] * b[ib];
      }
    }
    t.count_fma(cfg_.a_len * cfg_.b_len);
  }
}

void GammaKernel::run_block(Block& blk) const {
  const int alpha = cfg_.alpha;
  const int threads = cfg_.threads();
  const int vlen = cfg_.accumulators_per_thread();
  const std::int64_t oc0 =
      static_cast<std::int64_t>(blk.block_idx().x) * cfg_.bn;
  const std::int64_t tile0 =
      static_cast<std::int64_t>(blk.block_idx().y) * cfg_.bm;

  const int bufs = cfg_.double_buffer ? 2 : 1;
  const int ds_last = cfg_.bm + ((cfg_.pad_smem && !cfg_.swizzle_ds) ? 4 : 0);
  Smem gs = blk.smem("Gs", static_cast<std::int64_t>(bufs) * cfg_.bk * alpha *
                               cfg_.bn);
  Smem ds = blk.smem("Ds", static_cast<std::int64_t>(bufs) * cfg_.bk * alpha *
                               ds_last);

  // Per-thread accumulators (the kernel's registers).
  std::vector<float> acc(static_cast<std::size_t>(threads) * vlen, 0.0f);

  // Chunk sequence: (fh, ic0) pairs — FH × ⌈IC/BK⌉ iterations (§5.1).
  struct Chunk {
    std::int64_t fh, ic0;
  };
  std::vector<Chunk> chunks;
  for (std::int64_t fh = 0; fh < shape_.fh; ++fh) {
    for (std::int64_t ic0 = 0; ic0 < shape_.ic; ic0 += cfg_.bk) {
      chunks.push_back({fh, ic0});
    }
  }

  if (cfg_.double_buffer) {
    // Algorithm 1: one barrier per iteration; outer product on buffer `buf`
    // overlaps (in program order) with staging the next chunk into buf^1.
    int buf = 0;
    blk.phase([&](Thread& t) {
      load_chunk(blk, t, gs, ds, 0, chunks[0].fh, chunks[0].ic0, oc0, tile0);
    });
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      blk.phase([&, i, buf](Thread& t) {
        outer_product(t, gs, ds, buf, &acc[static_cast<std::size_t>(t.flat) * vlen]);
        if (i + 1 < chunks.size()) {
          load_chunk(blk, t, gs, ds, buf ^ 1, chunks[i + 1].fh,
                     chunks[i + 1].ic0, oc0, tile0);
        }
      });
      buf ^= 1;
    }
  } else {
    // Algorithm 2: single buffer, two barriers per iteration.
    for (const Chunk& ch : chunks) {
      blk.phase([&](Thread& t) {
        load_chunk(blk, t, gs, ds, 0, ch.fh, ch.ic0, oc0, tile0);
      });
      blk.phase([&](Thread& t) {
        outer_product(t, gs, ds, 0,
                      &acc[static_cast<std::size_t>(t.flat) * vlen]);
      });
    }
  }

  // ------------------------------------------------------------------
  // Output transform: Ys aliases the Gs/Ds storage (§5.1 "reuse Gs").
  blk.smem_reuse_from("Gs");
  const int gc = cfg_.bn / cfg_.a_len;
  const int p1 = cfg_.pad_smem ? 1 : 0;
  const int cols = 2 * gc + (cfg_.pad_smem ? 4 : 0);
  Smem ys = blk.smem("Ys", static_cast<std::int64_t>(alpha) * (cfg_.bm + p1) *
                               cols);
  auto ys_at = [&](int s, int tile, int col) {
    return (static_cast<std::int64_t>(s) * (cfg_.bm + p1) + tile) * cols + col;
  };

  const std::int64_t oh_total = shape_.oh();
  const std::int64_t ow_total = shape_.ow();
  const int pairs_total = cfg_.bm * gc;  // (tile, oc-group) cells
  const int iters = (pairs_total + threads - 1) / threads;
  // 4 consecutive OC per thread accumulate across a sub-round pair before
  // one 128-bit store per output position.
  std::vector<float> y4(static_cast<std::size_t>(threads) * iters * cfg_.n * 4,
                        0.0f);

  for (int qp = 0; qp < cfg_.a_len / 4; ++qp) {
    for (int sub = 0; sub < 2; ++sub) {
      const int q = 2 * qp + sub;
      // Scatter: each thread stores 2·b_len accumulators for OC offsets
      // {2q, 2q+1} of its patch.
      blk.phase([&](Thread& t) {
        const Geom g = make_geom(cfg_, t);
        const float* v = &acc[static_cast<std::size_t>(t.flat) * vlen];
        for (int bpar = 0; bpar < 2; ++bpar) {
          const int a_local = 2 * q + bpar;
          for (int k = 0; k < cfg_.b_len; ++k) {
            t.sts(ys, ys_at(g.ux, g.didx + k, g.gchunk * 2 + bpar),
                  v[a_local * cfg_.b_len + k], kSiteYsSt);
          }
        }
      });
      // Gather: α states per (tile, oc) cell, apply A^T, bank the n outputs.
      blk.phase([&](Thread& t) {
        for (int it = 0; it < iters; ++it) {
          const int c = t.flat + it * threads;
          if (c >= pairs_total) break;
          const int gp = c % gc;
          const int tile_l = c / gc;
          for (int bpar = 0; bpar < 2; ++bpar) {
            float m[16];
            for (int s = 0; s < alpha; ++s) {
              m[s] = t.lds(ys, ys_at(s, tile_l, gp * 2 + bpar), kSiteYsLd);
            }
            float yout[16];
            at_eval_.apply(m, 1, yout, 1);
            t.count_fma(at_eval_.mul_count());
            t.count_alu(at_eval_.add_count());
            float* slot =
                &y4[(static_cast<std::size_t>(t.flat) * iters + it) * cfg_.n *
                    4];
            for (int i = 0; i < cfg_.n; ++i) {
              slot[i * 4 + 2 * sub + bpar] = yout[i];
            }
          }
        }
      });
    }
    // Emit: one 128-bit store per output position covering OC offsets
    // 4qp … 4qp+3 (§5.1 "merged and written in 128-bit units").
    blk.phase([&](Thread& t) {
      for (int it = 0; it < iters; ++it) {
        const int c = t.flat + it * threads;
        if (c >= pairs_total) break;
        const int gp = c % gc;
        const int tile_l = c / gc;
        const std::int64_t tile = tile0 + tile_l;
        if (tile >= total_tiles_) continue;
        const std::int64_t n_i = tile / (oh_total * tiles_w_);
        const std::int64_t rem = tile % (oh_total * tiles_w_);
        const std::int64_t oh_i = rem / tiles_w_;
        const std::int64_t ow0 = ow_start_ + (rem % tiles_w_) * cfg_.n;
        const std::int64_t oc_base = oc0 + gp * cfg_.a_len + 4 * qp;
        const float* slot =
            &y4[(static_cast<std::size_t>(t.flat) * iters + it) * cfg_.n * 4];
        for (int i = 0; i < cfg_.n; ++i) {
          const std::int64_t base =
              ((n_i * oh_total + oh_i) * ow_total + ow0 + i) * shape_.oc +
              oc_base;
          if (oc_base + 3 < shape_.oc) {
            t.stg128(y_, base, &slot[i * 4], kSiteY);
          } else {
            for (int j = 0; j < 4 && oc_base + j < shape_.oc; ++j) {
              t.stg(y_, base + j, slot[i * 4 + j], kSiteY);
            }
          }
        }
      }
    });
  }
}

sim::LaunchStats run_gamma(const GammaKernel& k, bool counting) {
  return sim::launch_all(k, k.grid(), counting);
}

sim::PerfEstimate profile_gamma(const GammaKernel& k,
                                const sim::DeviceProfile& dev,
                                double conv_flops, double footprint_bytes,
                                int max_samples, int num_launches,
                                sim::LaunchStats* stats_out) {
  sim::PerfInput in;
  in.stats = sim::launch_sample(k, k.grid(), max_samples);
  if (stats_out != nullptr) *stats_out = in.stats;
  in.grid_blocks = k.grid().count();
  in.threads_per_block = k.config().threads();
  in.smem_per_block = k.config().smem_bytes();
  in.regs_per_thread = k.config().regs_per_thread();
  in.accumulators_per_thread = k.config().accumulators_per_thread();
  in.conv_flops = conv_flops;
  in.footprint_bytes = footprint_bytes;
  in.num_launches = num_launches;
  return sim::estimate_perf(dev, in);
}

}  // namespace iwg::core
