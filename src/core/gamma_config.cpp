#include "core/gamma_config.hpp"

namespace iwg::core {

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kBase:
      return "base";
    case Variant::kRuse:
      return "ruse";
    case Variant::kC64:
      return "c64";
  }
  return "?";
}

double GammaConfig::arithmetic_intensity() const {
  // §5.6: 256/(α+r) for the base kernels, 512/(α+2r) for c64, and
  // 512/(α+2r+n) for the overlap-reuse variants.
  switch (variant) {
    case Variant::kBase:
      return 256.0 / (alpha + r);
    case Variant::kC64:
      return 512.0 / (alpha + 2 * r);
    case Variant::kRuse:
      return 512.0 / (alpha + 2 * r + n);
  }
  return 0.0;
}

std::int64_t GammaConfig::smem_bytes() const {
  const int bufs = double_buffer ? 2 : 1;
  const std::int64_t gs = static_cast<std::int64_t>(bufs) * bk * alpha * bn;
  const int ds_last = bm + ((pad_smem && !swizzle_ds) ? 4 : 0);
  const std::int64_t ds = static_cast<std::int64_t>(bufs) * bk * alpha * ds_last;
  return 4 * (gs + ds);
}

int GammaConfig::regs_per_thread() const {
  // Accumulators + staged tiles + transform temporaries + index bookkeeping.
  return accumulators_per_thread() + alpha * input_tiles_per_thread +
         r * filter_tiles_per_thread + 26;
}

std::string GammaConfig::name() const {
  std::string s = "gamma" + std::to_string(alpha);
  if (variant != Variant::kBase) s += std::string("_") + variant_name(variant);
  s += "(" + std::to_string(n) + "," + std::to_string(r) + ")";
  return s;
}

GammaConfig GammaConfig::make(int alpha, int n, int r, Variant variant) {
  IWG_CHECK_MSG(alpha == 4 || alpha == 8 || alpha == 16,
                "gamma kernels exist for alpha in {4, 8, 16}");
  IWG_CHECK_MSG(n >= 2 && r >= 2 && n + r - 1 == alpha,
                "need n >= 2, r >= 2, n + r - 1 == alpha");
  GammaConfig c;
  c.alpha = alpha;
  c.n = n;
  c.r = r;
  c.variant = variant;

  switch (variant) {
    case Variant::kBase:
      // §5.1: BN×BM is 64×64 (α=4), 64×32 (α=8), 32×32 (α=16); BK = 8;
      // 16×16 threads; 64 accumulators per thread.
      c.bn = alpha == 16 ? 32 : 64;
      c.bm = alpha == 4 ? 64 : 32;
      c.threads_y = 16;
      c.a_len = 8;
      c.b_len = 8;
      c.double_buffer = alpha != 16;
      // §5.2: Γ8's Ds cannot be padded (SMEM already at the maximum), so its
      // stores are swizzled instead; Γ4 and Γ16 have room to pad.
      c.swizzle_ds = alpha == 8;
      break;
    case Variant::kRuse:
      IWG_CHECK_MSG(alpha == 8 || alpha == 16,
                    "ruse variants exist for alpha in {8, 16}");
      // §5.4: the tasks of two threads merge into one: 16×8 threads, twice
      // the accumulators, outer products 8×(16×8).
      c.bn = alpha == 16 ? 32 : 64;
      c.bm = 32;
      c.threads_y = 8;
      c.a_len = 8;
      c.b_len = 16;
      c.double_buffer = alpha != 16;
      c.swizzle_ds = alpha == 8;
      break;
    case Variant::kC64:
      IWG_CHECK_MSG(alpha == 16, "c64 exists for alpha = 16 only");
      // §5.6: BN 32 → 64; Gs+Ds then occupy the full 48 KiB, so Ds is
      // swizzled rather than padded, like Γ8.
      c.bn = 64;
      c.bm = 32;
      c.threads_y = 16;
      c.a_len = 16;
      c.b_len = 8;
      c.double_buffer = false;
      c.swizzle_ds = true;
      break;
  }
  c.filter_tiles_per_thread = c.bn * c.bk / c.threads();
  c.input_tiles_per_thread = c.bm * c.bk / c.threads();
  IWG_CHECK(c.filter_tiles_per_thread >= 1 && c.input_tiles_per_thread >= 1);
  IWG_CHECK(c.a_len * c.b_len * c.threads() == c.alpha * c.bn * c.bm);
  IWG_CHECK_MSG(c.smem_bytes() <= 49152, "gamma config exceeds SMEM limit");
  return c;
}

std::vector<GammaConfig> kernel_priority(int r, bool allow_ruse,
                                         bool allow_c64) {
  IWG_CHECK_MSG(r >= 2 && r <= 9, "gamma kernels support filter widths 2-9");
  std::vector<GammaConfig> list;
  auto add = [&list](int alpha, int n, int rr, Variant v) {
    list.push_back(GammaConfig::make(alpha, n, rr, v));
  };

  // Fastest first (§5.5 / Figure 7): bigger n covers more OW per tile; the
  // ruse/c64 variants outrank their base versions where §5.4/§5.6 apply.
  switch (r) {
    case 2:
      add(8, 7, 2, Variant::kBase);
      add(4, 3, 2, Variant::kBase);
      break;
    case 3:
      add(8, 6, 3, Variant::kBase);
      add(4, 2, 3, Variant::kBase);
      break;
    case 4:
      add(8, 5, 4, Variant::kBase);
      break;
    case 5:
      if (allow_ruse && GammaConfig::ruse_profitable(8, 5))
        add(8, 4, 5, Variant::kRuse);
      add(8, 4, 5, Variant::kBase);
      break;
    case 6:
      if (allow_ruse && GammaConfig::ruse_profitable(8, 6))
        add(8, 3, 6, Variant::kRuse);
      add(8, 3, 6, Variant::kBase);
      break;
    case 7:
      if (allow_c64) add(16, 10, 7, Variant::kC64);
      add(16, 10, 7, Variant::kBase);
      if (allow_ruse && GammaConfig::ruse_profitable(8, 7))
        add(8, 2, 7, Variant::kRuse);
      add(8, 2, 7, Variant::kBase);
      break;
    case 8:
      if (allow_c64) add(16, 9, 8, Variant::kC64);
      if (allow_ruse && GammaConfig::ruse_profitable(16, 8))
        add(16, 9, 8, Variant::kRuse);
      add(16, 9, 8, Variant::kBase);
      break;
    case 9:
      if (allow_c64) add(16, 8, 9, Variant::kC64);
      if (allow_ruse && GammaConfig::ruse_profitable(16, 9))
        add(16, 8, 9, Variant::kRuse);
      add(16, 8, 9, Variant::kBase);
      break;
    default:
      break;
  }
  return list;
}

std::vector<Segment> plan_chain(std::int64_t ow,
                                const std::vector<GammaConfig>& kernels) {
  IWG_CHECK(ow > 0);
  std::vector<Segment> segments;
  std::int64_t start = 0;
  std::int64_t remaining = ow;

  for (const GammaConfig& cfg : kernels) {
    // Ruse kernels process adjacent tile pairs as a unit, so their segment
    // granularity is 2n; everything else covers multiples of n.
    const std::int64_t gran =
        static_cast<std::int64_t>(cfg.n) *
        (cfg.variant == Variant::kRuse ? 2 : 1);
    const std::int64_t len = remaining - remaining % gran;
    if (len > 0) {
      Segment seg;
      seg.is_gemm = false;
      seg.cfg = cfg;
      seg.ow_start = start;
      seg.ow_len = len;
      segments.push_back(seg);
      start += len;
      remaining -= len;
    }
    if (remaining == 0) break;
  }
  if (remaining > 0) {
    Segment seg;
    seg.is_gemm = true;
    seg.ow_start = start;
    seg.ow_len = remaining;
    segments.push_back(seg);
  }
  return segments;
}

std::vector<Segment> plan_boundary(std::int64_t ow, int r, bool allow_ruse,
                                   bool allow_c64) {
  return plan_chain(ow, kernel_priority(r, allow_ruse, allow_c64));
}

}  // namespace iwg::core
