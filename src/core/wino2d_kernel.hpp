// Fused 2-D Winograd F(2×2, 3×3) kernel for NCHW — the cuDNN Fused_Winograd
// stand-in (§6.1.1: restricted to NCHW format and 3×3 filters, so only
// comparable to Γ8(6,3)).
//
// Structure mirrors the α=16 Γ kernel — the 2-D algorithm has 16 states per
// tile (4×4), which is exactly the space-complexity point §4.2 makes: at the
// same state budget, 2-D Winograd only reaches F(2×2,3×3) while
// Im2col-Winograd runs F(9,8)/F(8,9).
#pragma once

#include "gpusim/perf_model.hpp"
#include "gpusim/sim.hpp"
#include "tensor/conv_shape.hpp"
#include "tensor/tensor.hpp"

namespace iwg::core {

class Winograd2dKernel final : public sim::Kernel {
 public:
  /// `x` is NCHW (N,C,H,W); `w` is the original OC,FH,FW,IC filter laid out
  /// as OC-major (we index it directly); `y` is NCHW. Requires fh == fw == 3.
  Winograd2dKernel(ConvShape shape, sim::GmemBuf x, sim::GmemBuf w,
                   sim::GmemBuf y);

  std::string name() const override { return "fused_winograd2d_f2x2_3x3"; }
  sim::Dim3 block_dim() const override { return {16, 16, 1}; }
  std::int64_t smem_bytes() const override {
    // Gs[8][16][32] + Ds[8][16][32+4] (padded) — single-buffered like Γ16.
    return 4ll * kBk * 16 * (kBn + kBm + 4);
  }
  int regs_per_thread() const override { return 64 + 16 + 9 + 26; }
  void run_block(sim::Block& blk) const override;

  sim::Dim3 grid() const;

  static constexpr int kBn = 32;  ///< output channels per block
  static constexpr int kBm = 32;  ///< 2×2 output tiles per block
  static constexpr int kBk = 8;   ///< input channels per iteration

 private:
  ConvShape shape_;
  sim::GmemBuf x_, w_, y_;
  std::int64_t th_, tw_;          ///< tile grid (⌈OH/2⌉ × ⌈OW/2⌉)
  std::int64_t total_tiles_;
};

/// Functional run + sampled profile helpers.
sim::LaunchStats run_wino2d(const Winograd2dKernel& k, bool counting = false);
sim::PerfEstimate profile_wino2d(const Winograd2dKernel& k,
                                 const sim::DeviceProfile& dev,
                                 double conv_flops, double footprint_bytes,
                                 int max_samples = 6);

/// Convenience: full NCHW convolution through the kernel (tests/benches).
TensorF conv2d_wino2d_sim(const TensorF& x_nhwc, const TensorF& w,
                          const ConvShape& s);

}  // namespace iwg::core
