#include "core/indirect.hpp"

#include <algorithm>
#include <utility>

#include "common/arena.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "core/conv_api.hpp"
#include "core/filter_cache.hpp"
#include "core/host_kernels.hpp"
#include "winograd/plan.hpp"

namespace iwg::core {

IndirectionTable build_indirection_table(std::span<const ImageView> images,
                                         const ConvShape& geom,
                                         ScratchArena& arena) {
  IndirectionTable table;
  table.images.reserve(images.size());
  table.image_class.reserve(images.size());
  for (const ImageView& v : images) {
    IWG_CHECK_MSG(v.x != nullptr && v.y != nullptr,
                  "indirect dispatch needs input and output storage");
    int cls = -1;
    for (std::size_t c = 0; c < table.classes.size(); ++c) {
      if (table.classes[c].ih == v.ih && table.classes[c].iw == v.iw) {
        cls = static_cast<int>(c);
        break;
      }
    }
    if (cls < 0) {
      ConvShape s = geom;
      s.n = 1;
      s.ih = v.ih;
      s.iw = v.iw;
      s.validate();
      cls = static_cast<int>(table.classes.size());
      table.classes.push_back(s);
    }
    const ConvShape& s = table.classes[static_cast<std::size_t>(cls)];
    const std::int64_t table_len = s.ih + 2 * s.ph;
    auto** rows = static_cast<const float**>(
        arena.alloc(static_cast<std::size_t>(table_len) * sizeof(float*)));
    detail::fill_row_table(rows, v.x, s.ih, s.iw, s.ic, s.ph);
    detail::ImageTask t;
    t.rows = rows;
    t.y = v.y;
    t.ih = s.ih;
    t.iw = s.iw;
    t.oh = s.oh();
    t.ow = s.ow();
    table.images.push_back(t);
    table.image_class.push_back(cls);
  }
  return table;
}

void conv2d_gamma_host_indirect(std::span<const ImageView> images,
                                const TensorF& w, const ConvShape& geom,
                                const IndirectOptions& opts) {
  if (images.empty()) return;
  IWG_CHECK(w.rank() == 4 && w.dim(0) == geom.oc && w.dim(1) == geom.fh &&
            w.dim(2) == geom.fw && w.dim(3) == geom.ic);

  // The table (row-pointer arrays included) lives in this scope; task
  // bodies open nested scopes on their own threads' arenas.
  ScratchArena& arena = ScratchArena::local();
  const ScratchArena::Scope scope(arena);
  const IndirectionTable table = build_indirection_table(images, geom, arena);

  IWG_TRACE_SPAN(span, "conv2d_host_indirect", "host");
  if (span.active()) {
    span.arg("images", static_cast<std::int64_t>(images.size()))
        .arg("shape_classes", static_cast<std::int64_t>(table.classes.size()))
        .arg("isa", host_kernels().name);
  }
  static trace::Counter& dispatches =
      trace::MetricsRegistry::global().counter("conv.indirect.dispatches");
  static trace::Counter& image_count =
      trace::MetricsRegistry::global().counter("conv.indirect.images");
  static trace::Counter& gamma_segs =
      trace::MetricsRegistry::global().counter("conv.segments_gamma");
  static trace::Counter& gemm_segs =
      trace::MetricsRegistry::global().counter("conv.segments_gemm");
  dispatches.add();
  image_count.add(static_cast<std::int64_t>(images.size()));

  // One boundary plan per shape class — plan_for depends only on OW, FW and
  // the flags, so this is the plan the dense path would pick for a batch-1
  // dispatch of the same image (the bitwise-parity anchor).
  ConvOptions copts;
  copts.use_winograd = opts.use_winograd;
  copts.allow_ruse = opts.allow_ruse;
  copts.allow_c64 = opts.allow_c64;
  std::vector<std::vector<Segment>> plans;
  plans.reserve(table.classes.size());
  for (const ConvShape& s : table.classes) plans.push_back(plan_for(s, copts));

  // ĝ memo per (α, r) across every class's segments, through the cross-call
  // cache when the caller provides one (same keying as conv2d_gamma_host).
  std::vector<std::pair<std::pair<int, int>, FilterTransformCache::Ghat>>
      call_memo;
  auto ghat_for = [&](const GammaConfig& cfg,
                      const ConvShape& s) -> const float* {
    const std::pair<int, int> key_geom{cfg.alpha, cfg.r};
    for (const auto& e : call_memo) {
      if (e.first == key_geom) {
        filter_transform_hits().add();
        return e.second->data();
      }
    }
    FilterTransformCache::Ghat ghat;
    if (opts.fc.cache != nullptr) {
      FilterTransformCache::Key key;
      key.weights = opts.fc.key != nullptr
                        ? opts.fc.key
                        : static_cast<const void*>(w.data());
      key.version = opts.fc.version;
      key.alpha = cfg.alpha;
      key.r = cfg.r;
      key.deconv = opts.fc.deconv;
      ghat = opts.fc.cache->get_or_compute(
          key, [&] { return transform_filter_host(w, s, cfg); });
    } else {
      filter_transform_misses().add();
      ghat = std::make_shared<const std::vector<float>>(
          transform_filter_host(w, s, cfg));
    }
    call_memo.emplace_back(key_geom, std::move(ghat));
    return call_memo.back().second->data();
  };

  // Flatten every (image, segment) into a run of independent unit tasks —
  // Γ tile columns or GEMM output rows — and dispatch them under ONE
  // parallel_for: this is the "one Γ dispatch over mixed-shape traffic".
  struct Chunk {
    const detail::ImageTask* img;
    const ConvShape* s;
    const Segment* seg;
    const WinogradPlan* plan;  // nullptr for GEMM segments
    const float* ghat;         // nullptr for GEMM segments
    std::int64_t begin;        // global unit offset of this chunk
  };
  std::vector<Chunk> chunks;
  std::int64_t total = 0;
  for (std::size_t i = 0; i < table.images.size(); ++i) {
    const int cls = table.image_class[i];
    const ConvShape& s = table.classes[static_cast<std::size_t>(cls)];
    for (const Segment& seg : plans[static_cast<std::size_t>(cls)]) {
      Chunk c;
      c.img = &table.images[i];
      c.s = &s;
      c.seg = &seg;
      if (seg.is_gemm) {
        gemm_segs.add();
        c.plan = nullptr;
        c.ghat = nullptr;
        c.begin = total;
        total += s.oh();
      } else {
        gamma_segs.add();
        c.plan = &get_plan(seg.cfg.n, seg.cfg.r);
        c.ghat = ghat_for(seg.cfg, s);
        c.begin = total;
        total += seg.ow_len / seg.cfg.n;
      }
      chunks.push_back(c);
    }
  }

  const HostKernels& hk = host_kernels();
  const float* wdata = w.data();
  parallel_for(total, parallel_grain(total), [&](std::int64_t u) {
    // Locate the chunk containing unit u (last chunk with begin <= u).
    const auto it = std::upper_bound(
        chunks.begin(), chunks.end(), u,
        [](std::int64_t v, const Chunk& c) { return v < c.begin; });
    const Chunk& c = *(it - 1);
    const std::int64_t local = u - c.begin;
    if (c.seg->is_gemm) {
      detail::gemm_row(*c.img, *c.s, wdata, hk, local, c.seg->ow_start,
                       c.seg->ow_len);
    } else {
      detail::gamma_tile_column(*c.img, *c.s, c.seg->cfg, *c.plan, c.ghat,
                                hk, c.seg->ow_start, local);
    }
  });

  static trace::Distribution& arena_hw =
      trace::MetricsRegistry::global().distribution(
          "host.arena.high_water_bytes");
  arena_hw.record(static_cast<double>(ScratchArena::max_high_water()));
}

}  // namespace iwg::core
