// AVX2 + FMA table (x86-64). Compiled with -mavx2 -mfma on x86 targets
// (src/core/CMakeLists.txt adds the per-file flags); on other
// architectures, or when the running CPU lacks AVX2/FMA (CPUID via
// __builtin_cpu_supports), the factory returns nullptr and the dispatcher
// falls back.
//
// All loads and stores are unaligned (loadu/storeu): the host engine hands
// these kernels interior pointers of NHWC rows and arena ring slots whose
// offsets are multiples of sizeof(float)·IC, not of 32 bytes. Ragged tails
// are finished with scalar code in the same per-element term order — no
// masked or overshooting lane reads, so ASan stays clean on odd sizes.
#include "core/host_kernels.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace iwg::core::detail {

namespace {

// BITWISE contract: explicit mul + add intrinsics (never contracted by the
// compiler), dense terms in ascending e per element — the scalar
// reference's exact op sequence, eight elements at a time.
//
// Loop order is channel-block outer, output-row inner: one block loads each
// of the ≤16 source rows exactly once (null padding rows become a zero
// register) and reuses them for every output row. The inner loop is
// branch-free on purpose: a skip test per (row, element, block) costs more
// than the multiply-add it saves, and folding ±0.0f terms in keeps the op
// sequence identical to the dense scalar reference by construction.
void transform_cols_avx2(const float* m, int rows_n, int cols,
                         const float* const* rows, std::int64_t nc, float* dst,
                         std::int64_t dst_stride) {
  __m256 src[16];
  std::int64_t c = 0;
  for (; c + 8 <= nc; c += 8) {
    for (int e = 0; e < cols; ++e) {
      src[e] = rows[e] != nullptr ? _mm256_loadu_ps(rows[e] + c)
                                  : _mm256_setzero_ps();
    }
    for (int i = 0; i < rows_n; ++i) {
      const float* mrow = m + static_cast<std::size_t>(i) * cols;
      __m256 acc = _mm256_setzero_ps();
      for (int e = 0; e < cols; ++e) {
        acc = _mm256_add_ps(acc,
                            _mm256_mul_ps(_mm256_set1_ps(mrow[e]), src[e]));
      }
      _mm256_storeu_ps(dst + static_cast<std::int64_t>(i) * dst_stride + c,
                       acc);
    }
  }
  for (; c < nc; ++c) {
    for (int i = 0; i < rows_n; ++i) {
      const float* mrow = m + static_cast<std::size_t>(i) * cols;
      float acc = 0.0f;
      for (int e = 0; e < cols; ++e) {
        acc += mrow[e] * (rows[e] != nullptr ? rows[e][c] : 0.0f);
      }
      dst[static_cast<std::int64_t>(i) * dst_stride + c] = acc;
    }
  }
}

// ULP contract: ascending-k term order per element, FMA per term. 32-wide
// j blocks keep four accumulators (four independent FMA dependency chains —
// two chains leave the FMA units mostly idle waiting on latency); m is
// loaded/stored once per block, g rows stream.
void axpy_rank1_avx2(const float* d, const float* g, float* m, std::int64_t kc,
                     std::int64_t nj) {
  std::int64_t j = 0;
  for (; j + 32 <= nj; j += 32) {
    __m256 acc0 = _mm256_loadu_ps(m + j);
    __m256 acc1 = _mm256_loadu_ps(m + j + 8);
    __m256 acc2 = _mm256_loadu_ps(m + j + 16);
    __m256 acc3 = _mm256_loadu_ps(m + j + 24);
    const float* gj = g + j;
    for (std::int64_t k = 0; k < kc; ++k) {
      const __m256 dv = _mm256_set1_ps(d[k]);
      const float* gr = gj + k * nj;
      acc0 = _mm256_fmadd_ps(dv, _mm256_loadu_ps(gr), acc0);
      acc1 = _mm256_fmadd_ps(dv, _mm256_loadu_ps(gr + 8), acc1);
      acc2 = _mm256_fmadd_ps(dv, _mm256_loadu_ps(gr + 16), acc2);
      acc3 = _mm256_fmadd_ps(dv, _mm256_loadu_ps(gr + 24), acc3);
    }
    _mm256_storeu_ps(m + j, acc0);
    _mm256_storeu_ps(m + j + 8, acc1);
    _mm256_storeu_ps(m + j + 16, acc2);
    _mm256_storeu_ps(m + j + 24, acc3);
  }
  for (; j + 16 <= nj; j += 16) {
    __m256 acc0 = _mm256_loadu_ps(m + j);
    __m256 acc1 = _mm256_loadu_ps(m + j + 8);
    const float* gj = g + j;
    for (std::int64_t k = 0; k < kc; ++k) {
      const __m256 dv = _mm256_set1_ps(d[k]);
      const float* gr = gj + k * nj;
      acc0 = _mm256_fmadd_ps(dv, _mm256_loadu_ps(gr), acc0);
      acc1 = _mm256_fmadd_ps(dv, _mm256_loadu_ps(gr + 8), acc1);
    }
    _mm256_storeu_ps(m + j, acc0);
    _mm256_storeu_ps(m + j + 8, acc1);
  }
  for (; j + 8 <= nj; j += 8) {
    __m256 acc = _mm256_loadu_ps(m + j);
    const float* gj = g + j;
    for (std::int64_t k = 0; k < kc; ++k) {
      acc = _mm256_fmadd_ps(_mm256_set1_ps(d[k]), _mm256_loadu_ps(gj + k * nj),
                            acc);
    }
    _mm256_storeu_ps(m + j, acc);
  }
  for (; j < nj; ++j) {
    float acc = m[j];
    for (std::int64_t k = 0; k < kc; ++k)
      acc = std::fmaf(d[k], g[k * nj + j], acc);
    m[j] = acc;
  }
}

// The payoff kernel for the row-blocked engine: a single rank-1 update is
// load-bound (one g load feeds one FMA, so the FMA units idle half the
// time); with four accumulator rows each g vector feeds four FMAs and the
// loop turns compute-bound. 16-wide j blocks × 4 rows use 8 accumulator
// registers + 2 g registers, leaving room for the broadcast temporaries.
void axpy4_j_avx2(const float* const* d, const float* g, float* const* m,
                  std::int64_t kc, std::int64_t nj) {
  std::int64_t j = 0;
  for (; j + 16 <= nj; j += 16) {
    __m256 a00 = _mm256_loadu_ps(m[0] + j), a01 = _mm256_loadu_ps(m[0] + j + 8);
    __m256 a10 = _mm256_loadu_ps(m[1] + j), a11 = _mm256_loadu_ps(m[1] + j + 8);
    __m256 a20 = _mm256_loadu_ps(m[2] + j), a21 = _mm256_loadu_ps(m[2] + j + 8);
    __m256 a30 = _mm256_loadu_ps(m[3] + j), a31 = _mm256_loadu_ps(m[3] + j + 8);
    const float* gj = g + j;
    for (std::int64_t k = 0; k < kc; ++k) {
      const float* gr = gj + k * nj;
      const __m256 g0 = _mm256_loadu_ps(gr);
      const __m256 g1 = _mm256_loadu_ps(gr + 8);
      __m256 dv = _mm256_set1_ps(d[0][k]);
      a00 = _mm256_fmadd_ps(dv, g0, a00);
      a01 = _mm256_fmadd_ps(dv, g1, a01);
      dv = _mm256_set1_ps(d[1][k]);
      a10 = _mm256_fmadd_ps(dv, g0, a10);
      a11 = _mm256_fmadd_ps(dv, g1, a11);
      dv = _mm256_set1_ps(d[2][k]);
      a20 = _mm256_fmadd_ps(dv, g0, a20);
      a21 = _mm256_fmadd_ps(dv, g1, a21);
      dv = _mm256_set1_ps(d[3][k]);
      a30 = _mm256_fmadd_ps(dv, g0, a30);
      a31 = _mm256_fmadd_ps(dv, g1, a31);
    }
    _mm256_storeu_ps(m[0] + j, a00);
    _mm256_storeu_ps(m[0] + j + 8, a01);
    _mm256_storeu_ps(m[1] + j, a10);
    _mm256_storeu_ps(m[1] + j + 8, a11);
    _mm256_storeu_ps(m[2] + j, a20);
    _mm256_storeu_ps(m[2] + j + 8, a21);
    _mm256_storeu_ps(m[3] + j, a30);
    _mm256_storeu_ps(m[3] + j + 8, a31);
  }
  for (; j + 8 <= nj; j += 8) {
    __m256 a0 = _mm256_loadu_ps(m[0] + j);
    __m256 a1 = _mm256_loadu_ps(m[1] + j);
    __m256 a2 = _mm256_loadu_ps(m[2] + j);
    __m256 a3 = _mm256_loadu_ps(m[3] + j);
    const float* gj = g + j;
    for (std::int64_t k = 0; k < kc; ++k) {
      const __m256 g0 = _mm256_loadu_ps(gj + k * nj);
      a0 = _mm256_fmadd_ps(_mm256_set1_ps(d[0][k]), g0, a0);
      a1 = _mm256_fmadd_ps(_mm256_set1_ps(d[1][k]), g0, a1);
      a2 = _mm256_fmadd_ps(_mm256_set1_ps(d[2][k]), g0, a2);
      a3 = _mm256_fmadd_ps(_mm256_set1_ps(d[3][k]), g0, a3);
    }
    _mm256_storeu_ps(m[0] + j, a0);
    _mm256_storeu_ps(m[1] + j, a1);
    _mm256_storeu_ps(m[2] + j, a2);
    _mm256_storeu_ps(m[3] + j, a3);
  }
  for (; j < nj; ++j) {
    for (int r = 0; r < 4; ++r) {
      float acc = m[r][j];
      for (std::int64_t k = 0; k < kc; ++k)
        acc = std::fmaf(d[r][k], g[k * nj + j], acc);
      m[r][j] = acc;
    }
  }
}

// Eight accumulator rows per g pass: the row count is the factor by which
// one streamed ĝ plane is reused, so the widest block the register file
// takes (8 accumulators + 1 g + broadcast temporaries) minimizes L2
// traffic on the ĝ working set — the engine's actual bound once the FMA
// chains saturate.
void axpy8_j_avx2(const float* const* d, const float* g, float* const* m,
                  std::int64_t kc, std::int64_t nj) {
  std::int64_t j = 0;
  for (; j + 8 <= nj; j += 8) {
    __m256 a0 = _mm256_loadu_ps(m[0] + j);
    __m256 a1 = _mm256_loadu_ps(m[1] + j);
    __m256 a2 = _mm256_loadu_ps(m[2] + j);
    __m256 a3 = _mm256_loadu_ps(m[3] + j);
    __m256 a4 = _mm256_loadu_ps(m[4] + j);
    __m256 a5 = _mm256_loadu_ps(m[5] + j);
    __m256 a6 = _mm256_loadu_ps(m[6] + j);
    __m256 a7 = _mm256_loadu_ps(m[7] + j);
    const float* gj = g + j;
    for (std::int64_t k = 0; k < kc; ++k) {
      const __m256 g0 = _mm256_loadu_ps(gj + k * nj);
      a0 = _mm256_fmadd_ps(_mm256_set1_ps(d[0][k]), g0, a0);
      a1 = _mm256_fmadd_ps(_mm256_set1_ps(d[1][k]), g0, a1);
      a2 = _mm256_fmadd_ps(_mm256_set1_ps(d[2][k]), g0, a2);
      a3 = _mm256_fmadd_ps(_mm256_set1_ps(d[3][k]), g0, a3);
      a4 = _mm256_fmadd_ps(_mm256_set1_ps(d[4][k]), g0, a4);
      a5 = _mm256_fmadd_ps(_mm256_set1_ps(d[5][k]), g0, a5);
      a6 = _mm256_fmadd_ps(_mm256_set1_ps(d[6][k]), g0, a6);
      a7 = _mm256_fmadd_ps(_mm256_set1_ps(d[7][k]), g0, a7);
    }
    _mm256_storeu_ps(m[0] + j, a0);
    _mm256_storeu_ps(m[1] + j, a1);
    _mm256_storeu_ps(m[2] + j, a2);
    _mm256_storeu_ps(m[3] + j, a3);
    _mm256_storeu_ps(m[4] + j, a4);
    _mm256_storeu_ps(m[5] + j, a5);
    _mm256_storeu_ps(m[6] + j, a6);
    _mm256_storeu_ps(m[7] + j, a7);
  }
  for (; j < nj; ++j) {
    for (int r = 0; r < 8; ++r) {
      float acc = m[r][j];
      for (std::int64_t k = 0; k < kc; ++k)
        acc = std::fmaf(d[r][k], g[k * nj + j], acc);
      m[r][j] = acc;
    }
  }
}

void axpy_rank1_multi_avx2(const float* const* ds, const float* g,
                           float* const* ms, int rows, std::int64_t kc,
                           std::int64_t nj) {
  // Compact away null (padding) rows, then run full octets and quads
  // through the blocked kernels and leftovers through the plain one.
  // Per-row term order is identical everywhere, so the split is invisible
  // to the contract.
  const float* d[8];
  float* m[8];
  int r = 0;
  int n = 0;
  for (;;) {
    while (r < rows && n < 8) {
      if (ds[r] != nullptr) {
        d[n] = ds[r];
        m[n] = ms[r];
        ++n;
      }
      ++r;
    }
    if (n == 8) {
      axpy8_j_avx2(d, g, m, kc, nj);
      n = 0;
    }
    if (r == rows) break;
  }
  if (n >= 6) {
    // Ragged 6- or 7-row remainder: fill the octet with dummy rows that
    // read a real d̂ row and write a thread-local sink, and run the 8-row
    // kernel anyway. Two wasted FMA chains are cheaper than peeling the
    // leftovers through the load-bound single-row kernel, and each real
    // row's chain is independent of the dummies, so results are
    // bit-identical to the per-row split.
    static thread_local std::vector<float> sink;
    if (static_cast<std::int64_t>(sink.size()) < nj)
      sink.resize(static_cast<std::size_t>(nj));
    for (int i = n; i < 8; ++i) {
      d[i] = d[0];
      m[i] = sink.data();
    }
    axpy8_j_avx2(d, g, m, kc, nj);
    return;
  }
  if (n >= 4) {
    axpy4_j_avx2(d, g, m, kc, nj);
    d[0] = d[4];
    d[1] = d[5];
    d[2] = d[6];
    m[0] = m[4];
    m[1] = m[5];
    m[2] = m[6];
    n -= 4;
  }
  for (int i = 0; i < n; ++i) axpy_rank1_avx2(d[i], g, m[i], kc, nj);
}

void saxpy_avx2(float a, const float* x, float* y, std::int64_t n) {
  const __m256 av = _mm256_set1_ps(a);
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(
        y + j, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + j), _mm256_loadu_ps(y + j)));
  }
  for (; j < n; ++j) y[j] = std::fmaf(a, x[j], y[j]);
}

// Dense like transform_cols (zero A^T entries folded in): branch-free
// inner loop, ascending t, one FMA per term.
void out_transform_avx2(const float* at, int alpha, const float* m,
                        std::int64_t mstride, float* y, std::int64_t n) {
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256 acc = _mm256_setzero_ps();
    for (int t = 0; t < alpha; ++t) {
      acc = _mm256_fmadd_ps(_mm256_set1_ps(at[t]),
                            _mm256_loadu_ps(m + static_cast<std::int64_t>(t) *
                                                    mstride + j),
                            acc);
    }
    _mm256_storeu_ps(y + j, acc);
  }
  for (; j < n; ++j) {
    float acc = 0.0f;
    for (int t = 0; t < alpha; ++t) {
      acc = std::fmaf(at[t], m[static_cast<std::int64_t>(t) * mstride + j],
                      acc);
    }
    y[j] = acc;
  }
}

// REASSOCIATED contract: eight per-lane partial sums combined in a fixed
// tree, scalar tail folded in last.
float dot_avx2(const float* a, const float* b, std::int64_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j), acc);
  }
  const __m128 lo = _mm256_castps256_ps128(acc);
  const __m128 hi = _mm256_extractf128_ps(acc, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  float total = _mm_cvtss_f32(s);
  for (; j < n; ++j) total = std::fmaf(a[j], b[j], total);
  return total;
}

}  // namespace

const HostKernels* host_kernels_avx2() {
  if (!__builtin_cpu_supports("avx2") || !__builtin_cpu_supports("fma"))
    return nullptr;
  static const HostKernels table = {
      transform_cols_avx2, axpy_rank1_avx2, axpy_rank1_multi_avx2,
      saxpy_avx2,          out_transform_avx2,
      dot_avx2,            "avx2",
      HostIsa::kAvx2,
  };
  return &table;
}

}  // namespace iwg::core::detail

#else  // !(__AVX2__ && __FMA__): built for another target; never selectable.

namespace iwg::core::detail {
const HostKernels* host_kernels_avx2() { return nullptr; }
}  // namespace iwg::core::detail

#endif
