#include "core/gamma_host.hpp"

#include <algorithm>
#include <utility>

#include "common/arena.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "core/filter_cache.hpp"
#include "core/host_kernels.hpp"
#include "tensor/layout.hpp"
#include "winograd/plan.hpp"

namespace iwg::core {

namespace detail {

void fill_row_table(const float** rows, const float* x, std::int64_t ih,
                    std::int64_t iw, std::int64_t ic, std::int64_t ph) {
  for (std::int64_t ihp = -ph; ihp < ih + ph; ++ihp) {
    rows[ihp + ph] =
        (ihp >= 0 && ihp < ih) ? x + ihp * iw * ic : nullptr;
  }
}

// One (image, tile column) task; it walks the OH output rows in blocks of
// kRowBlock with a ring of the transformed input rows the block can see
// (slot = ihp mod ring_rows), so d̂(ihp) is computed once and reused by
// every filter row that reads it. Row-blocking is what lets the
// accumulation run through axpy_rank1_multi: the kRowBlock output rows of
// a block consume the same ĝ[fh][t] planes, so the blocked kernel loads
// each ĝ vector once and feeds kRowBlock FMA chains with it — a single
// rank-1 update is load-bound at one ĝ load per FMA and leaves the FMA
// units half idle.
// 16 output rows per block = two octet passes of the 8-row kernel. The
// block size sets how often ĝ is streamed from L2 (once per block), and
// the second octet of a block reuses the (fh, t) plane the first octet
// just pulled into L1 — at 64×64 channels ĝ is ~0.5 MB per segment, so
// halving the passes is worth more than the larger macc footprint.
//
// Input rows arrive exclusively through img.rows: the dense path points the
// table into a batch tensor, the indirect path into per-image buffers, and
// padding rows are nullptr either way — so the ring, the kernels, and every
// accumulation order are identical for both callers.
void gamma_tile_column(const ImageTask& img, const ConvShape& geom,
                       const GammaConfig& cfg, const WinogradPlan& plan,
                       const float* ghat, const HostKernels& hk,
                       std::int64_t ow_start, std::int64_t tw) {
  const int alpha = cfg.alpha;
  const int n_out = cfg.n;
  const float* bt = plan.bt_f.data();
  const std::int64_t dstride = static_cast<std::int64_t>(alpha) * geom.ic;
  const std::int64_t gstride = geom.ic * geom.oc;  // one ĝ[fh][t] plane
  constexpr std::int64_t kRowBlock = 16;
  const std::int64_t ring_rows = geom.fh + kRowBlock - 1;
  ScratchArena& arena = ScratchArena::local();
  const ScratchArena::Scope scope(arena);
  float* ring =
      arena.alloc_floats(static_cast<std::size_t>(ring_rows * dstride));
  float* macc = arena.alloc_floats(
      static_cast<std::size_t>(kRowBlock * alpha * geom.oc));
  const std::int64_t iw0 = ow_start + tw * n_out - geom.pw;
  // The α taps of one tile are NHWC row slices IC floats apart: the
  // transform runs lane-parallel over channels, in-bounds taps as
  // contiguous loads, padding taps as null rows (DESIGN §8).
  const float* taps[16];
  std::int64_t next_row = -geom.ph;  // next input row to transform
  for (std::int64_t hi0 = 0; hi0 < img.oh; hi0 += kRowBlock) {
    const std::int64_t rb = std::min(kRowBlock, img.oh - hi0);
    const std::int64_t win_hi = hi0 + rb - 1 - geom.ph + geom.fh;  // excl.
    for (; next_row < win_hi; ++next_row) {
      const float* xrow = img.rows[next_row + geom.ph];
      if (xrow == nullptr) continue;  // zero padding
      float* slot = ring + (next_row % ring_rows) * dstride;
      for (int e = 0; e < alpha; ++e) {
        const std::int64_t iw = iw0 + e;
        taps[e] = (iw >= 0 && iw < img.iw) ? xrow + iw * geom.ic : nullptr;
      }
      hk.transform_cols(bt, alpha, alpha, taps, geom.ic, slot, geom.ic);
    }
    // State-domain accumulation: per filter row, α blocked rank-1
    // updates (rb×IC)·(IC×OC); output rows whose input row falls in the
    // zero padding pass a null d̂ and are skipped by the kernel.
    std::fill(macc, macc + rb * alpha * geom.oc, 0.0f);
    const float* drow[kRowBlock];
    const float* ds[kRowBlock];
    float* ms[kRowBlock];
    for (std::int64_t fh = 0; fh < geom.fh; ++fh) {
      bool any = false;
      for (std::int64_t r = 0; r < rb; ++r) {
        const std::int64_t ihp = hi0 + r - geom.ph + fh;
        const bool valid = img.rows[ihp + geom.ph] != nullptr;
        drow[r] = valid ? ring + (ihp % ring_rows) * dstride : nullptr;
        any = any || valid;
      }
      if (!any) continue;  // every row of the block sees zero padding
      const float* gbase = ghat + fh * alpha * gstride;
      for (int t = 0; t < alpha; ++t) {
        for (std::int64_t r = 0; r < rb; ++r) {
          ds[r] = drow[r] != nullptr
                      ? drow[r] + static_cast<std::int64_t>(t) * geom.ic
                      : nullptr;
          ms[r] = macc + (r * alpha + t) * geom.oc;
        }
        hk.axpy_rank1_multi(ds, gbase + static_cast<std::int64_t>(t) *
                                            gstride,
                            ms, static_cast<int>(rb), geom.ic, geom.oc);
      }
    }
    // Output transform: y[i][oc] = Σ_t A^T[i][t] · m[t][oc], per row.
    for (std::int64_t r = 0; r < rb; ++r) {
      const float* mrow = macc + r * alpha * geom.oc;
      for (int i = 0; i < n_out; ++i) {
        float* yrow = img.y + ((hi0 + r) * img.ow + ow_start + tw * n_out +
                               i) * geom.oc;
        const float* at_row =
            &plan.at_f[static_cast<std::size_t>(i) * alpha];
        hk.out_transform(at_row, alpha, mrow, geom.oc, yrow, geom.oc);
      }
    }
  }
}

void gemm_row(const ImageTask& img, const ConvShape& geom, const float* w,
              const HostKernels& hk, std::int64_t hi, std::int64_t ow_start,
              std::int64_t ow_len) {
  const std::int64_t gk = geom.fh * geom.fw * geom.ic;
  ScratchArena& arena = ScratchArena::local();
  const ScratchArena::Scope scope(arena);
  float* patch = arena.alloc_floats(static_cast<std::size_t>(gk));
  for (std::int64_t wo = ow_start; wo < ow_start + ow_len; ++wo) {
    float* dst = patch;
    for (std::int64_t fh = 0; fh < geom.fh; ++fh) {
      const std::int64_t ihp = hi + fh - geom.ph;
      const float* xrow = img.rows[ihp + geom.ph];
      for (std::int64_t fw = 0; fw < geom.fw; ++fw) {
        const std::int64_t iwp = wo + fw - geom.pw;
        const bool in = xrow != nullptr && iwp >= 0 && iwp < img.iw;
        const float* src = in ? xrow + iwp * geom.ic : nullptr;
        for (std::int64_t ic = 0; ic < geom.ic; ++ic)
          *dst++ = in ? src[ic] : 0.0f;
      }
    }
    float* yrow = img.y + (hi * img.ow + wo) * geom.oc;
    for (std::int64_t oc = 0; oc < geom.oc; ++oc) {
      yrow[oc] = hk.dot(patch, w + oc * gk, gk);
    }
  }
}

// Dense batch as an ImageTask array: one row table per image, bump-allocated
// from the caller's arena (valid across the blocking parallel_for below —
// task bodies open nested scopes on their own threads' arenas).
std::vector<ImageTask> dense_tasks(const TensorF& x, TensorF& y,
                                   const ConvShape& s, ScratchArena& arena) {
  const std::int64_t table_len = s.ih + 2 * s.ph;
  std::vector<ImageTask> tasks(static_cast<std::size_t>(s.n));
  for (std::int64_t ni = 0; ni < s.n; ++ni) {
    auto** rows = static_cast<const float**>(
        arena.alloc(static_cast<std::size_t>(table_len) * sizeof(float*)));
    fill_row_table(rows, x.data() + ni * s.ih * s.iw * s.ic, s.ih, s.iw,
                   s.ic, s.ph);
    ImageTask& t = tasks[static_cast<std::size_t>(ni)];
    t.rows = rows;
    t.y = y.data() + ni * s.oh() * s.ow() * s.oc;
    t.ih = s.ih;
    t.iw = s.iw;
    t.oh = s.oh();
    t.ow = s.ow();
  }
  return tasks;
}

}  // namespace detail

void conv2d_gamma_host_segment_pretransformed(
    const TensorF& x, const float* ghat, const ConvShape& s,
    const GammaConfig& cfg, std::int64_t ow_start, std::int64_t ow_len,
    TensorF& y) {
  s.validate();
  IWG_CHECK(cfg.r == s.fw);
  IWG_CHECK(ow_len % cfg.n == 0);
  IWG_CHECK(ow_start >= 0 && ow_start + ow_len <= s.ow());
  const WinogradPlan& plan = get_plan(cfg.n, cfg.r);
  const HostKernels& hk = host_kernels();
  const std::int64_t tiles_w = ow_len / cfg.n;

  ScratchArena& arena = ScratchArena::local();
  const ScratchArena::Scope scope(arena);
  const std::vector<detail::ImageTask> tasks =
      detail::dense_tasks(x, y, s, arena);

  const std::int64_t cols = s.n * tiles_w;
  parallel_for(cols, parallel_grain(cols), [&](std::int64_t col) {
    const std::int64_t ni = col / tiles_w;
    const std::int64_t tw = col % tiles_w;
    detail::gamma_tile_column(tasks[static_cast<std::size_t>(ni)], s, cfg,
                              plan, ghat, hk, ow_start, tw);
  });
}

void conv2d_gamma_host_segment(const TensorF& x, const TensorF& w,
                               const ConvShape& s, const GammaConfig& cfg,
                               std::int64_t ow_start, std::int64_t ow_len,
                               TensorF& y) {
  const std::vector<float> ghat = transform_filter_host(w, s, cfg);
  conv2d_gamma_host_segment_pretransformed(x, ghat.data(), s, cfg, ow_start,
                                           ow_len, y);
}

void conv2d_gemm_host_segment(const TensorF& x, const TensorF& w,
                              const ConvShape& s, std::int64_t ow_start,
                              std::int64_t ow_len, TensorF& y) {
  s.validate();
  const HostKernels& hk = host_kernels();
  const std::int64_t oh = s.oh();

  ScratchArena& arena = ScratchArena::local();
  const ScratchArena::Scope scope(arena);
  const std::vector<detail::ImageTask> tasks =
      detail::dense_tasks(x, y, s, arena);

  const std::int64_t rows = s.n * oh;
  parallel_for(rows, parallel_grain(rows), [&](std::int64_t row) {
    const std::int64_t ni = row / oh;
    const std::int64_t hi = row % oh;
    detail::gemm_row(tasks[static_cast<std::size_t>(ni)], s, w.data(), hk,
                     hi, ow_start, ow_len);
  });
}

TensorF conv2d_gamma_host(const TensorF& x, const TensorF& w,
                          const ConvShape& s,
                          const std::vector<Segment>& plan,
                          const FilterCacheRef& fc) {
  s.validate();
  IWG_CHECK(x.rank() == 4 && x.dim(0) == s.n && x.dim(1) == s.ih &&
            x.dim(2) == s.iw && x.dim(3) == s.ic);
  IWG_CHECK(w.rank() == 4 && w.dim(0) == s.oc && w.dim(1) == s.fh &&
            w.dim(2) == s.fw && w.dim(3) == s.ic);
  IWG_TRACE_SPAN(conv_span, "conv2d_host", "host");
  if (conv_span.active()) {
    conv_span.arg("shape", s.to_string())
        .arg("segments", static_cast<std::int64_t>(plan.size()))
        .arg("isa", host_kernels().name);
  }
  static trace::Counter& gamma_segs =
      trace::MetricsRegistry::global().counter("conv.segments_gamma");
  static trace::Counter& gemm_segs =
      trace::MetricsRegistry::global().counter("conv.segments_gemm");
  TensorF y({s.n, s.oh(), s.ow(), s.oc});

  // Per-call ĝ memo: segments sharing (α, r) — e.g. a ruse prefix and its
  // base mop-up — transform once even without a cross-call cache. With a
  // cache, the memo also keeps repeat segments off the cache lock.
  std::vector<std::pair<std::pair<int, int>, FilterTransformCache::Ghat>>
      call_memo;
  auto ghat_for = [&](const GammaConfig& cfg) -> FilterTransformCache::Ghat {
    const std::pair<int, int> geom{cfg.alpha, cfg.r};
    for (const auto& e : call_memo) {
      if (e.first == geom) {
        filter_transform_hits().add();
        return e.second;
      }
    }
    FilterTransformCache::Ghat ghat;
    if (fc.cache != nullptr) {
      FilterTransformCache::Key key;
      key.weights = fc.key != nullptr ? fc.key
                                      : static_cast<const void*>(w.data());
      key.version = fc.version;
      key.alpha = cfg.alpha;
      key.r = cfg.r;
      key.deconv = fc.deconv;
      ghat = fc.cache->get_or_compute(
          key, [&] { return transform_filter_host(w, s, cfg); });
    } else {
      filter_transform_misses().add();
      ghat = std::make_shared<const std::vector<float>>(
          transform_filter_host(w, s, cfg));
    }
    call_memo.emplace_back(geom, ghat);
    return ghat;
  };

  std::int64_t covered = 0;
  for (const Segment& seg : plan) {
    IWG_CHECK_MSG(seg.ow_start == covered, "boundary plan has gaps");
    IWG_TRACE_SPAN(span, seg.is_gemm ? "gemm_host" : "gamma_host", "host");
    if (span.active()) {
      span.arg("ow_start", seg.ow_start).arg("ow_len", seg.ow_len);
      if (!seg.is_gemm) {
        span.arg("alpha", seg.cfg.alpha)
            .arg("n", seg.cfg.n)
            .arg("r", seg.cfg.r)
            .arg("variant", variant_name(seg.cfg.variant));
      }
    }
    if (seg.is_gemm) {
      gemm_segs.add();
      conv2d_gemm_host_segment(x, w, s, seg.ow_start, seg.ow_len, y);
    } else {
      gamma_segs.add();
      const FilterTransformCache::Ghat ghat = ghat_for(seg.cfg);
      conv2d_gamma_host_segment_pretransformed(x, ghat->data(), s, seg.cfg,
                                               seg.ow_start, seg.ow_len, y);
    }
    covered += seg.ow_len;
  }
  IWG_CHECK_MSG(covered == s.ow(), "boundary plan does not cover OW");
  static trace::Distribution& arena_hw =
      trace::MetricsRegistry::global().distribution(
          "host.arena.high_water_bytes");
  arena_hw.record(static_cast<double>(ScratchArena::max_high_water()));
  return y;
}

TensorF deconv2d_gamma_host(const TensorF& dy, const TensorF& w,
                            const ConvShape& s,
                            const std::vector<Segment>& plan,
                            const FilterCacheRef& fc) {
  IWG_TRACE_SCOPE("deconv2d_host", "host");
  // Equivalent forward problem: rotated/channel-swapped filter, flipped pad.
  const TensorF wd = deconv_filter(w);
  ConvShape ds;
  ds.n = s.n;
  ds.ih = s.oh();
  ds.iw = s.ow();
  ds.ic = s.oc;
  ds.oc = s.ic;
  ds.fh = s.fh;
  ds.fw = s.fw;
  ds.ph = s.fh - 1 - s.ph;
  ds.pw = s.fw - 1 - s.pw;
  IWG_CHECK(ds.oh() == s.ih && ds.ow() == s.iw);
  // Cache entries stay keyed on the *original* weights (wd is a temporary);
  // the deconv flag separates them from the forward transforms.
  FilterCacheRef dfc = fc;
  dfc.key = fc.key != nullptr ? fc.key : static_cast<const void*>(w.data());
  dfc.deconv = true;
  return conv2d_gamma_host(dy, wd, ds, plan, dfc);
}

}  // namespace iwg::core

namespace iwg::core {

TensorF conv2d_filter_grad_winograd(const TensorF& x, const TensorF& dy,
                                    const ConvShape& s) {
  IWG_TRACE_SCOPE("filter_grad_host", "host");
  s.validate();
  IWG_CHECK_MSG(s.fw >= 2 && s.fw <= 9,
                "winograd filter gradient supports filter widths 2-9");
  IWG_CHECK(x.rank() == 4 && x.dim(0) == s.n && x.dim(1) == s.ih &&
            x.dim(2) == s.iw && x.dim(3) == s.ic);
  IWG_CHECK(dy.rank() == 4 && dy.dim(0) == s.n && dy.dim(1) == s.oh() &&
            dy.dim(2) == s.ow() && dy.dim(3) == s.oc);

  // F(fw, m): fw outputs (the filter taps along W), m dY taps per tile.
  const int alpha = s.fw <= 7 ? 8 : 16;
  const int m = alpha + 1 - static_cast<int>(s.fw);
  const WinogradPlan& plan = get_plan(static_cast<int>(s.fw), m);
  const HostKernels& hk = host_kernels();

  const std::int64_t oh = s.oh();
  const std::int64_t ow = s.ow();
  const std::int64_t tiles_w = (ow + m - 1) / m;  // zero-padded tail tiles

  TensorF dw({s.oc, s.fh, s.fw, s.ic});

  // One fh slice at a time keeps the state accumulator at α·IC·OC floats.
  // Parallelism across fh (outer) — rows accumulate into the shared slice.
  parallel_for(s.fh, [&](std::int64_t fh) {
    ScratchArena& arena = ScratchArena::local();
    const ScratchArena::Scope scope(arena);
    float* macc =
        arena.alloc_floats(static_cast<std::size_t>(alpha) * s.ic * s.oc);
    float* ghat = arena.alloc_floats(static_cast<std::size_t>(alpha) * s.oc);
    float* dhat = arena.alloc_floats(static_cast<std::size_t>(alpha) * s.ic);
    std::fill(macc, macc + static_cast<std::int64_t>(alpha) * s.ic * s.oc,
              0.0f);
    const float* taps[16];
    for (std::int64_t ni = 0; ni < s.n; ++ni) {
      for (std::int64_t h = 0; h < oh; ++h) {
        const std::int64_t ihp = h + fh - s.ph;
        if (ihp < 0 || ihp >= s.ih) continue;
        for (std::int64_t tw = 0; tw < tiles_w; ++tw) {
          const std::int64_t ow0 = tw * m;
          // ĝ[t][oc] — the dY chunk is the Winograd "filter"; its m taps
          // are NHWC row slices, so the transform runs OC-lane-parallel.
          for (int i = 0; i < m; ++i) {
            taps[i] = ow0 + i < ow ? &dy.at(ni, h, ow0 + i, 0) : nullptr;
          }
          hk.transform_cols(plan.g_f.data(), alpha, m, taps, s.oc, ghat,
                            s.oc);
          // d̂[t][ic] — the α-wide X window is the Winograd "input".
          const std::int64_t iw0 = ow0 - s.pw;
          for (int e = 0; e < alpha; ++e) {
            const std::int64_t iw = iw0 + e;
            taps[e] = (iw >= 0 && iw < s.iw) ? &x.at(ni, ihp, iw, 0)
                                             : nullptr;
          }
          hk.transform_cols(plan.bt_f.data(), alpha, alpha, taps, s.ic, dhat,
                            s.ic);
          // State-domain outer-product accumulation over (row, tile).
          for (int t = 0; t < alpha; ++t) {
            const float* grow = ghat + static_cast<std::size_t>(t) * s.oc;
            const float* drow = dhat + static_cast<std::size_t>(t) * s.ic;
            float* mbase = macc + static_cast<std::size_t>(t) * s.ic * s.oc;
            for (std::int64_t ic = 0; ic < s.ic; ++ic) {
              const float dv = drow[ic];
              if (dv == 0.0f) continue;
              hk.saxpy(dv, grow, mbase + ic * s.oc, s.oc);
            }
          }
        }
      }
    }
    // Output transform: dW[oc][fh][j][ic] = Σ_t A^T[j][t] · m̂[t][ic][oc].
    for (std::int64_t j = 0; j < s.fw; ++j) {
      const float* at_row =
          &plan.at_f[static_cast<std::size_t>(j) * alpha];
      for (std::int64_t ic = 0; ic < s.ic; ++ic) {
        for (std::int64_t oc = 0; oc < s.oc; ++oc) {
          float acc = 0.0f;
          for (int t = 0; t < alpha; ++t) {
            const float a = at_row[t];
            if (a == 0.0f) continue;
            acc += a * macc[(static_cast<std::size_t>(t) * s.ic + ic) * s.oc +
                            oc];
          }
          dw.at(oc, fh, j, ic) = acc;
        }
      }
    }
  });
  return dw;
}

}  // namespace iwg::core
