#include "core/gamma_host.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "tensor/layout.hpp"
#include "winograd/plan.hpp"

namespace iwg::core {

void conv2d_gamma_host_segment(const TensorF& x, const TensorF& w,
                               const ConvShape& s, const GammaConfig& cfg,
                               std::int64_t ow_start, std::int64_t ow_len,
                               TensorF& y) {
  s.validate();
  IWG_CHECK(cfg.r == s.fw);
  IWG_CHECK(ow_len % cfg.n == 0);
  IWG_CHECK(ow_start >= 0 && ow_start + ow_len <= s.ow());
  const int alpha = cfg.alpha;
  const int n_out = cfg.n;
  const int r = cfg.r;
  const WinogradPlan& plan = get_plan(n_out, r);
  const TransformEval g_eval(alpha, r, plan.g_f, /*paired=*/true);
  const TransformEval d_eval(alpha, alpha, plan.bt_f, /*paired=*/true);

  const std::int64_t oh = s.oh();
  const std::int64_t tiles_w = ow_len / n_out;

  // Transformed filters ĝ[fh][t][ic][oc] — oc contiguous for the inner axpy.
  std::vector<float> ghat(static_cast<std::size_t>(s.fh) * alpha * s.ic * s.oc);
  parallel_for(s.fh * s.ic, [&](std::int64_t job) {
    const std::int64_t fh = job / s.ic;
    const std::int64_t ic = job % s.ic;
    float taps[16];
    float gh[16];
    for (std::int64_t oc = 0; oc < s.oc; ++oc) {
      for (int j = 0; j < r; ++j) taps[j] = w.at(oc, fh, j, ic);
      g_eval.apply(taps, 1, gh, 1);
      for (int t = 0; t < alpha; ++t) {
        ghat[((fh * alpha + t) * s.ic + ic) * static_cast<std::size_t>(s.oc) +
             static_cast<std::size_t>(oc)] = gh[t];
      }
    }
  });

  parallel_for(s.n * oh, [&](std::int64_t row) {
    const std::int64_t ni = row / oh;
    const std::int64_t hi = row % oh;
    std::vector<float> dhat(static_cast<std::size_t>(alpha) * s.ic);
    std::vector<float> macc(static_cast<std::size_t>(alpha) * s.oc);
    float dt[16];
    float dh[16];
    for (std::int64_t tw = 0; tw < tiles_w; ++tw) {
      const std::int64_t iw0 = ow_start + tw * n_out - s.pw;
      std::fill(macc.begin(), macc.end(), 0.0f);
      for (std::int64_t fh = 0; fh < s.fh; ++fh) {
        const std::int64_t ihp = hi + fh - s.ph;
        if (ihp < 0 || ihp >= s.ih) continue;  // whole row is zero padding
        // Input transform for every channel of this 1-D tile.
        for (std::int64_t ic = 0; ic < s.ic; ++ic) {
          for (int e = 0; e < alpha; ++e) {
            const std::int64_t iw = iw0 + e;
            dt[e] = (iw >= 0 && iw < s.iw) ? x.at(ni, ihp, iw, ic) : 0.0f;
          }
          d_eval.apply(dt, 1, dh, 1);
          for (int t = 0; t < alpha; ++t) {
            dhat[static_cast<std::size_t>(t) * s.ic + ic] = dh[t];
          }
        }
        // State-domain accumulation: α rank-1 updates (1×IC)·(IC×OC).
        for (int t = 0; t < alpha; ++t) {
          const float* drow = &dhat[static_cast<std::size_t>(t) * s.ic];
          float* mrow = &macc[static_cast<std::size_t>(t) * s.oc];
          const float* gbase =
              &ghat[(fh * alpha + t) * s.ic * static_cast<std::size_t>(s.oc)];
          for (std::int64_t ic = 0; ic < s.ic; ++ic) {
            const float dv = drow[ic];
            if (dv == 0.0f) continue;
            const float* grow = gbase + ic * s.oc;
            for (std::int64_t oc = 0; oc < s.oc; ++oc) mrow[oc] += dv * grow[oc];
          }
        }
      }
      // Output transform: y[i][oc] = Σ_t A^T[i][t] · m[t][oc].
      for (int i = 0; i < n_out; ++i) {
        float* yrow = &y.at(ni, hi, ow_start + tw * n_out + i, 0);
        const float* at_row = &plan.at_f[static_cast<std::size_t>(i) * alpha];
        for (std::int64_t oc = 0; oc < s.oc; ++oc) yrow[oc] = 0.0f;
        for (int t = 0; t < alpha; ++t) {
          const float a = at_row[t];
          if (a == 0.0f) continue;
          const float* mrow = &macc[static_cast<std::size_t>(t) * s.oc];
          for (std::int64_t oc = 0; oc < s.oc; ++oc) yrow[oc] += a * mrow[oc];
        }
      }
    }
  });
}

void conv2d_gemm_host_segment(const TensorF& x, const TensorF& w,
                              const ConvShape& s, std::int64_t ow_start,
                              std::int64_t ow_len, TensorF& y) {
  s.validate();
  const std::int64_t oh = s.oh();
  const std::int64_t gk = s.fh * s.fw * s.ic;
  parallel_for(s.n * oh, [&](std::int64_t row) {
    const std::int64_t ni = row / oh;
    const std::int64_t hi = row % oh;
    std::vector<float> patch(static_cast<std::size_t>(gk));
    for (std::int64_t wo = ow_start; wo < ow_start + ow_len; ++wo) {
      float* dst = patch.data();
      for (std::int64_t fh = 0; fh < s.fh; ++fh) {
        const std::int64_t ihp = hi + fh - s.ph;
        for (std::int64_t fw = 0; fw < s.fw; ++fw) {
          const std::int64_t iwp = wo + fw - s.pw;
          const bool in = ihp >= 0 && ihp < s.ih && iwp >= 0 && iwp < s.iw;
          const float* src = in ? &x.at(ni, ihp, iwp, 0) : nullptr;
          for (std::int64_t ic = 0; ic < s.ic; ++ic)
            *dst++ = in ? src[ic] : 0.0f;
        }
      }
      for (std::int64_t oc = 0; oc < s.oc; ++oc) {
        const float* wp = w.data() + oc * gk;
        float accv = 0.0f;
        for (std::int64_t kk = 0; kk < gk; ++kk) accv += patch[kk] * wp[kk];
        y.at(ni, hi, wo, oc) = accv;
      }
    }
  });
}

TensorF conv2d_gamma_host(const TensorF& x, const TensorF& w,
                          const ConvShape& s,
                          const std::vector<Segment>& plan) {
  s.validate();
  IWG_CHECK(x.rank() == 4 && x.dim(0) == s.n && x.dim(1) == s.ih &&
            x.dim(2) == s.iw && x.dim(3) == s.ic);
  IWG_CHECK(w.rank() == 4 && w.dim(0) == s.oc && w.dim(1) == s.fh &&
            w.dim(2) == s.fw && w.dim(3) == s.ic);
  IWG_TRACE_SPAN(conv_span, "conv2d_host", "host");
  if (conv_span.active()) {
    conv_span.arg("shape", s.to_string())
        .arg("segments", static_cast<std::int64_t>(plan.size()));
  }
  static trace::Counter& gamma_segs =
      trace::MetricsRegistry::global().counter("conv.segments_gamma");
  static trace::Counter& gemm_segs =
      trace::MetricsRegistry::global().counter("conv.segments_gemm");
  TensorF y({s.n, s.oh(), s.ow(), s.oc});
  std::int64_t covered = 0;
  for (const Segment& seg : plan) {
    IWG_CHECK_MSG(seg.ow_start == covered, "boundary plan has gaps");
    IWG_TRACE_SPAN(span, seg.is_gemm ? "gemm_host" : "gamma_host", "host");
    if (span.active()) {
      span.arg("ow_start", seg.ow_start).arg("ow_len", seg.ow_len);
      if (!seg.is_gemm) {
        span.arg("alpha", seg.cfg.alpha)
            .arg("n", seg.cfg.n)
            .arg("r", seg.cfg.r)
            .arg("variant", variant_name(seg.cfg.variant));
      }
    }
    if (seg.is_gemm) {
      gemm_segs.add();
      conv2d_gemm_host_segment(x, w, s, seg.ow_start, seg.ow_len, y);
    } else {
      gamma_segs.add();
      conv2d_gamma_host_segment(x, w, s, seg.cfg, seg.ow_start, seg.ow_len, y);
    }
    covered += seg.ow_len;
  }
  IWG_CHECK_MSG(covered == s.ow(), "boundary plan does not cover OW");
  return y;
}

TensorF deconv2d_gamma_host(const TensorF& dy, const TensorF& w,
                            const ConvShape& s,
                            const std::vector<Segment>& plan) {
  IWG_TRACE_SCOPE("deconv2d_host", "host");
  // Equivalent forward problem: rotated/channel-swapped filter, flipped pad.
  const TensorF wd = deconv_filter(w);
  ConvShape ds;
  ds.n = s.n;
  ds.ih = s.oh();
  ds.iw = s.ow();
  ds.ic = s.oc;
  ds.oc = s.ic;
  ds.fh = s.fh;
  ds.fw = s.fw;
  ds.ph = s.fh - 1 - s.ph;
  ds.pw = s.fw - 1 - s.pw;
  IWG_CHECK(ds.oh() == s.ih && ds.ow() == s.iw);
  return conv2d_gamma_host(dy, wd, ds, plan);
}

}  // namespace iwg::core

namespace iwg::core {

TensorF conv2d_filter_grad_winograd(const TensorF& x, const TensorF& dy,
                                    const ConvShape& s) {
  IWG_TRACE_SCOPE("filter_grad_host", "host");
  s.validate();
  IWG_CHECK_MSG(s.fw >= 2 && s.fw <= 9,
                "winograd filter gradient supports filter widths 2-9");
  IWG_CHECK(x.rank() == 4 && x.dim(0) == s.n && x.dim(1) == s.ih &&
            x.dim(2) == s.iw && x.dim(3) == s.ic);
  IWG_CHECK(dy.rank() == 4 && dy.dim(0) == s.n && dy.dim(1) == s.oh() &&
            dy.dim(2) == s.ow() && dy.dim(3) == s.oc);

  // F(fw, m): fw outputs (the filter taps along W), m dY taps per tile.
  const int alpha = s.fw <= 7 ? 8 : 16;
  const int m = alpha + 1 - static_cast<int>(s.fw);
  const WinogradPlan& plan = get_plan(static_cast<int>(s.fw), m);
  const TransformEval g_eval(alpha, m, plan.g_f, /*paired=*/true);
  const TransformEval d_eval(alpha, alpha, plan.bt_f, /*paired=*/true);

  const std::int64_t oh = s.oh();
  const std::int64_t ow = s.ow();
  const std::int64_t tiles_w = (ow + m - 1) / m;  // zero-padded tail tiles

  TensorF dw({s.oc, s.fh, s.fw, s.ic});

  // One fh slice at a time keeps the state accumulator at α·IC·OC floats.
  // Parallelism across fh (outer) — rows accumulate into the shared slice.
  parallel_for(s.fh, [&](std::int64_t fh) {
    std::vector<float> macc(static_cast<std::size_t>(alpha) * s.ic * s.oc,
                            0.0f);
    std::vector<float> ghat(static_cast<std::size_t>(alpha) * s.oc);
    std::vector<float> dhat(static_cast<std::size_t>(alpha) * s.ic);
    float taps[16];
    float th[16];
    for (std::int64_t ni = 0; ni < s.n; ++ni) {
      for (std::int64_t h = 0; h < oh; ++h) {
        const std::int64_t ihp = h + fh - s.ph;
        if (ihp < 0 || ihp >= s.ih) continue;
        for (std::int64_t tw = 0; tw < tiles_w; ++tw) {
          const std::int64_t ow0 = tw * m;
          // ĝ[t][oc] — the dY chunk is the Winograd "filter".
          for (std::int64_t oc = 0; oc < s.oc; ++oc) {
            for (int i = 0; i < m; ++i) {
              const std::int64_t o = ow0 + i;
              taps[i] = o < ow ? dy.at(ni, h, o, oc) : 0.0f;
            }
            g_eval.apply(taps, 1, th, 1);
            for (int t = 0; t < alpha; ++t)
              ghat[static_cast<std::size_t>(t) * s.oc + oc] = th[t];
          }
          // d̂[t][ic] — the α-wide X window is the Winograd "input".
          const std::int64_t iw0 = ow0 - s.pw;
          for (std::int64_t ic = 0; ic < s.ic; ++ic) {
            for (int e = 0; e < alpha; ++e) {
              const std::int64_t iw = iw0 + e;
              taps[e] = (iw >= 0 && iw < s.iw) ? x.at(ni, ihp, iw, ic) : 0.0f;
            }
            d_eval.apply(taps, 1, th, 1);
            for (int t = 0; t < alpha; ++t)
              dhat[static_cast<std::size_t>(t) * s.ic + ic] = th[t];
          }
          // State-domain rank-1 accumulation over (row, tile).
          for (int t = 0; t < alpha; ++t) {
            const float* grow = &ghat[static_cast<std::size_t>(t) * s.oc];
            const float* drow = &dhat[static_cast<std::size_t>(t) * s.ic];
            float* mbase =
                &macc[static_cast<std::size_t>(t) * s.ic * s.oc];
            for (std::int64_t ic = 0; ic < s.ic; ++ic) {
              const float dv = drow[ic];
              if (dv == 0.0f) continue;
              float* mrow = mbase + ic * s.oc;
              for (std::int64_t oc = 0; oc < s.oc; ++oc)
                mrow[oc] += dv * grow[oc];
            }
          }
        }
      }
    }
    // Output transform: dW[oc][fh][j][ic] = Σ_t A^T[j][t] · m̂[t][ic][oc].
    for (std::int64_t j = 0; j < s.fw; ++j) {
      const float* at_row =
          &plan.at_f[static_cast<std::size_t>(j) * alpha];
      for (std::int64_t ic = 0; ic < s.ic; ++ic) {
        for (std::int64_t oc = 0; oc < s.oc; ++oc) {
          float acc = 0.0f;
          for (int t = 0; t < alpha; ++t) {
            const float a = at_row[t];
            if (a == 0.0f) continue;
            acc += a * macc[(static_cast<std::size_t>(t) * s.ic + ic) * s.oc +
                            oc];
          }
          dw.at(oc, fh, j, ic) = acc;
        }
      }
    }
  });
  return dw;
}

}  // namespace iwg::core
