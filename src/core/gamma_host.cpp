#include "core/gamma_host.hpp"

#include <algorithm>
#include <utility>

#include "common/arena.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "core/filter_cache.hpp"
#include "tensor/layout.hpp"
#include "winograd/plan.hpp"

namespace iwg::core {

namespace {

// Rank-1 state-domain accumulation m[j] += Σ_k d[k]·g[k·nj + j], the host
// engine's innermost loop. Unrolling k by 4 keeps one load+store of m per
// four updates instead of one per update; the additions stay in ascending-k
// order, so results match the rolled loop bit for bit.
inline void axpy_rank1(const float* __restrict d, const float* __restrict g,
                       float* __restrict m, std::int64_t kc, std::int64_t nj) {
  std::int64_t k = 0;
  for (; k + 4 <= kc; k += 4) {
    const float d0 = d[k];
    const float d1 = d[k + 1];
    const float d2 = d[k + 2];
    const float d3 = d[k + 3];
    const float* __restrict g0 = g + k * nj;
    const float* __restrict g1 = g0 + nj;
    const float* __restrict g2 = g1 + nj;
    const float* __restrict g3 = g2 + nj;
    for (std::int64_t j = 0; j < nj; ++j) {
      float acc = m[j];
      acc += d0 * g0[j];
      acc += d1 * g1[j];
      acc += d2 * g2[j];
      acc += d3 * g3[j];
      m[j] = acc;
    }
  }
  for (; k < kc; ++k) {
    const float dv = d[k];
    const float* __restrict gr = g + k * nj;
    for (std::int64_t j = 0; j < nj; ++j) m[j] += dv * gr[j];
  }
}

}  // namespace

void conv2d_gamma_host_segment_pretransformed(
    const TensorF& x, const float* ghat, const ConvShape& s,
    const GammaConfig& cfg, std::int64_t ow_start, std::int64_t ow_len,
    TensorF& y) {
  s.validate();
  IWG_CHECK(cfg.r == s.fw);
  IWG_CHECK(ow_len % cfg.n == 0);
  IWG_CHECK(ow_start >= 0 && ow_start + ow_len <= s.ow());
  const int alpha = cfg.alpha;
  const int n_out = cfg.n;
  const WinogradPlan& plan = get_plan(n_out, cfg.r);
  const TransformEval d_eval(alpha, alpha, plan.bt_f, /*paired=*/true);

  const std::int64_t oh = s.oh();
  const std::int64_t tiles_w = ow_len / n_out;
  const std::int64_t dstride = static_cast<std::int64_t>(alpha) * s.ic;
  const std::int64_t gstride = s.ic * s.oc;  // one ĝ[fh][t] plane

  // One task per (image, tile column); each walks all OH output rows with a
  // ring of the last FH transformed input rows (slot = ihp mod FH), so
  // d̂(ihp) is computed once and reused by every filter row that reads it.
  const std::int64_t cols = s.n * tiles_w;
  parallel_for(cols, parallel_grain(cols), [&](std::int64_t col) {
    const std::int64_t ni = col / tiles_w;
    const std::int64_t tw = col % tiles_w;
    ScratchArena& arena = ScratchArena::local();
    const ScratchArena::Scope scope(arena);
    float* ring =
        arena.alloc_floats(static_cast<std::size_t>(s.fh * dstride));
    float* macc = arena.alloc_floats(static_cast<std::size_t>(alpha * s.oc));
    const std::int64_t iw0 = ow_start + tw * n_out - s.pw;
    float dt[16];
    float dh[16];
    std::int64_t next_row = -s.ph;  // next input row to transform
    for (std::int64_t hi = 0; hi < oh; ++hi) {
      const std::int64_t win_lo = hi - s.ph;
      const std::int64_t win_hi = win_lo + s.fh;  // exclusive
      for (; next_row < win_hi; ++next_row) {
        if (next_row < 0 || next_row >= s.ih) continue;  // zero padding
        float* slot = ring + (next_row % s.fh) * dstride;
        for (std::int64_t ic = 0; ic < s.ic; ++ic) {
          for (int e = 0; e < alpha; ++e) {
            const std::int64_t iw = iw0 + e;
            dt[e] = (iw >= 0 && iw < s.iw) ? x.at(ni, next_row, iw, ic) : 0.0f;
          }
          d_eval.apply(dt, 1, dh, 1);
          for (int t = 0; t < alpha; ++t) slot[t * s.ic + ic] = dh[t];
        }
      }
      // State-domain accumulation: α rank-1 updates (1×IC)·(IC×OC) per
      // valid filter row.
      std::fill(macc, macc + alpha * s.oc, 0.0f);
      for (std::int64_t fh = 0; fh < s.fh; ++fh) {
        const std::int64_t ihp = win_lo + fh;
        if (ihp < 0 || ihp >= s.ih) continue;  // whole row is zero padding
        const float* dhat = ring + (ihp % s.fh) * dstride;
        const float* gbase = ghat + fh * alpha * gstride;
        for (int t = 0; t < alpha; ++t) {
          axpy_rank1(dhat + static_cast<std::int64_t>(t) * s.ic,
                     gbase + static_cast<std::int64_t>(t) * gstride,
                     macc + static_cast<std::int64_t>(t) * s.oc, s.ic, s.oc);
        }
      }
      // Output transform: y[i][oc] = Σ_t A^T[i][t] · m[t][oc].
      for (int i = 0; i < n_out; ++i) {
        float* yrow = &y.at(ni, hi, ow_start + tw * n_out + i, 0);
        const float* at_row = &plan.at_f[static_cast<std::size_t>(i) * alpha];
        for (std::int64_t oc = 0; oc < s.oc; ++oc) yrow[oc] = 0.0f;
        for (int t = 0; t < alpha; ++t) {
          const float a = at_row[t];
          if (a == 0.0f) continue;
          const float* mrow = macc + static_cast<std::int64_t>(t) * s.oc;
          for (std::int64_t oc = 0; oc < s.oc; ++oc) yrow[oc] += a * mrow[oc];
        }
      }
    }
  });
}

void conv2d_gamma_host_segment(const TensorF& x, const TensorF& w,
                               const ConvShape& s, const GammaConfig& cfg,
                               std::int64_t ow_start, std::int64_t ow_len,
                               TensorF& y) {
  const std::vector<float> ghat = transform_filter_host(w, s, cfg);
  conv2d_gamma_host_segment_pretransformed(x, ghat.data(), s, cfg, ow_start,
                                           ow_len, y);
}

void conv2d_gemm_host_segment(const TensorF& x, const TensorF& w,
                              const ConvShape& s, std::int64_t ow_start,
                              std::int64_t ow_len, TensorF& y) {
  s.validate();
  const std::int64_t oh = s.oh();
  const std::int64_t gk = s.fh * s.fw * s.ic;
  const std::int64_t rows = s.n * oh;
  parallel_for(rows, parallel_grain(rows), [&](std::int64_t row) {
    const std::int64_t ni = row / oh;
    const std::int64_t hi = row % oh;
    ScratchArena& arena = ScratchArena::local();
    const ScratchArena::Scope scope(arena);
    float* patch = arena.alloc_floats(static_cast<std::size_t>(gk));
    for (std::int64_t wo = ow_start; wo < ow_start + ow_len; ++wo) {
      float* dst = patch;
      for (std::int64_t fh = 0; fh < s.fh; ++fh) {
        const std::int64_t ihp = hi + fh - s.ph;
        for (std::int64_t fw = 0; fw < s.fw; ++fw) {
          const std::int64_t iwp = wo + fw - s.pw;
          const bool in = ihp >= 0 && ihp < s.ih && iwp >= 0 && iwp < s.iw;
          const float* src = in ? &x.at(ni, ihp, iwp, 0) : nullptr;
          for (std::int64_t ic = 0; ic < s.ic; ++ic)
            *dst++ = in ? src[ic] : 0.0f;
        }
      }
      for (std::int64_t oc = 0; oc < s.oc; ++oc) {
        const float* wp = w.data() + oc * gk;
        float accv = 0.0f;
        for (std::int64_t kk = 0; kk < gk; ++kk) accv += patch[kk] * wp[kk];
        y.at(ni, hi, wo, oc) = accv;
      }
    }
  });
}

TensorF conv2d_gamma_host(const TensorF& x, const TensorF& w,
                          const ConvShape& s,
                          const std::vector<Segment>& plan,
                          const FilterCacheRef& fc) {
  s.validate();
  IWG_CHECK(x.rank() == 4 && x.dim(0) == s.n && x.dim(1) == s.ih &&
            x.dim(2) == s.iw && x.dim(3) == s.ic);
  IWG_CHECK(w.rank() == 4 && w.dim(0) == s.oc && w.dim(1) == s.fh &&
            w.dim(2) == s.fw && w.dim(3) == s.ic);
  IWG_TRACE_SPAN(conv_span, "conv2d_host", "host");
  if (conv_span.active()) {
    conv_span.arg("shape", s.to_string())
        .arg("segments", static_cast<std::int64_t>(plan.size()));
  }
  static trace::Counter& gamma_segs =
      trace::MetricsRegistry::global().counter("conv.segments_gamma");
  static trace::Counter& gemm_segs =
      trace::MetricsRegistry::global().counter("conv.segments_gemm");
  TensorF y({s.n, s.oh(), s.ow(), s.oc});

  // Per-call ĝ memo: segments sharing (α, r) — e.g. a ruse prefix and its
  // base mop-up — transform once even without a cross-call cache. With a
  // cache, the memo also keeps repeat segments off the cache lock.
  std::vector<std::pair<std::pair<int, int>, FilterTransformCache::Ghat>>
      call_memo;
  auto ghat_for = [&](const GammaConfig& cfg) -> FilterTransformCache::Ghat {
    const std::pair<int, int> geom{cfg.alpha, cfg.r};
    for (const auto& e : call_memo) {
      if (e.first == geom) {
        filter_transform_hits().add();
        return e.second;
      }
    }
    FilterTransformCache::Ghat ghat;
    if (fc.cache != nullptr) {
      FilterTransformCache::Key key;
      key.weights = fc.key != nullptr ? fc.key
                                      : static_cast<const void*>(w.data());
      key.version = fc.version;
      key.alpha = cfg.alpha;
      key.r = cfg.r;
      key.deconv = fc.deconv;
      ghat = fc.cache->get_or_compute(
          key, [&] { return transform_filter_host(w, s, cfg); });
    } else {
      filter_transform_misses().add();
      ghat = std::make_shared<const std::vector<float>>(
          transform_filter_host(w, s, cfg));
    }
    call_memo.emplace_back(geom, ghat);
    return ghat;
  };

  std::int64_t covered = 0;
  for (const Segment& seg : plan) {
    IWG_CHECK_MSG(seg.ow_start == covered, "boundary plan has gaps");
    IWG_TRACE_SPAN(span, seg.is_gemm ? "gemm_host" : "gamma_host", "host");
    if (span.active()) {
      span.arg("ow_start", seg.ow_start).arg("ow_len", seg.ow_len);
      if (!seg.is_gemm) {
        span.arg("alpha", seg.cfg.alpha)
            .arg("n", seg.cfg.n)
            .arg("r", seg.cfg.r)
            .arg("variant", variant_name(seg.cfg.variant));
      }
    }
    if (seg.is_gemm) {
      gemm_segs.add();
      conv2d_gemm_host_segment(x, w, s, seg.ow_start, seg.ow_len, y);
    } else {
      gamma_segs.add();
      const FilterTransformCache::Ghat ghat = ghat_for(seg.cfg);
      conv2d_gamma_host_segment_pretransformed(x, ghat->data(), s, seg.cfg,
                                               seg.ow_start, seg.ow_len, y);
    }
    covered += seg.ow_len;
  }
  IWG_CHECK_MSG(covered == s.ow(), "boundary plan does not cover OW");
  static trace::Distribution& arena_hw =
      trace::MetricsRegistry::global().distribution(
          "host.arena.high_water_bytes");
  arena_hw.record(static_cast<double>(ScratchArena::max_high_water()));
  return y;
}

TensorF deconv2d_gamma_host(const TensorF& dy, const TensorF& w,
                            const ConvShape& s,
                            const std::vector<Segment>& plan,
                            const FilterCacheRef& fc) {
  IWG_TRACE_SCOPE("deconv2d_host", "host");
  // Equivalent forward problem: rotated/channel-swapped filter, flipped pad.
  const TensorF wd = deconv_filter(w);
  ConvShape ds;
  ds.n = s.n;
  ds.ih = s.oh();
  ds.iw = s.ow();
  ds.ic = s.oc;
  ds.oc = s.ic;
  ds.fh = s.fh;
  ds.fw = s.fw;
  ds.ph = s.fh - 1 - s.ph;
  ds.pw = s.fw - 1 - s.pw;
  IWG_CHECK(ds.oh() == s.ih && ds.ow() == s.iw);
  // Cache entries stay keyed on the *original* weights (wd is a temporary);
  // the deconv flag separates them from the forward transforms.
  FilterCacheRef dfc = fc;
  dfc.key = fc.key != nullptr ? fc.key : static_cast<const void*>(w.data());
  dfc.deconv = true;
  return conv2d_gamma_host(dy, wd, ds, plan, dfc);
}

}  // namespace iwg::core

namespace iwg::core {

TensorF conv2d_filter_grad_winograd(const TensorF& x, const TensorF& dy,
                                    const ConvShape& s) {
  IWG_TRACE_SCOPE("filter_grad_host", "host");
  s.validate();
  IWG_CHECK_MSG(s.fw >= 2 && s.fw <= 9,
                "winograd filter gradient supports filter widths 2-9");
  IWG_CHECK(x.rank() == 4 && x.dim(0) == s.n && x.dim(1) == s.ih &&
            x.dim(2) == s.iw && x.dim(3) == s.ic);
  IWG_CHECK(dy.rank() == 4 && dy.dim(0) == s.n && dy.dim(1) == s.oh() &&
            dy.dim(2) == s.ow() && dy.dim(3) == s.oc);

  // F(fw, m): fw outputs (the filter taps along W), m dY taps per tile.
  const int alpha = s.fw <= 7 ? 8 : 16;
  const int m = alpha + 1 - static_cast<int>(s.fw);
  const WinogradPlan& plan = get_plan(static_cast<int>(s.fw), m);
  const TransformEval g_eval(alpha, m, plan.g_f, /*paired=*/true);
  const TransformEval d_eval(alpha, alpha, plan.bt_f, /*paired=*/true);

  const std::int64_t oh = s.oh();
  const std::int64_t ow = s.ow();
  const std::int64_t tiles_w = (ow + m - 1) / m;  // zero-padded tail tiles

  TensorF dw({s.oc, s.fh, s.fw, s.ic});

  // One fh slice at a time keeps the state accumulator at α·IC·OC floats.
  // Parallelism across fh (outer) — rows accumulate into the shared slice.
  parallel_for(s.fh, [&](std::int64_t fh) {
    ScratchArena& arena = ScratchArena::local();
    const ScratchArena::Scope scope(arena);
    float* macc =
        arena.alloc_floats(static_cast<std::size_t>(alpha) * s.ic * s.oc);
    float* ghat = arena.alloc_floats(static_cast<std::size_t>(alpha) * s.oc);
    float* dhat = arena.alloc_floats(static_cast<std::size_t>(alpha) * s.ic);
    std::fill(macc, macc + static_cast<std::int64_t>(alpha) * s.ic * s.oc,
              0.0f);
    float taps[16];
    float th[16];
    for (std::int64_t ni = 0; ni < s.n; ++ni) {
      for (std::int64_t h = 0; h < oh; ++h) {
        const std::int64_t ihp = h + fh - s.ph;
        if (ihp < 0 || ihp >= s.ih) continue;
        for (std::int64_t tw = 0; tw < tiles_w; ++tw) {
          const std::int64_t ow0 = tw * m;
          // ĝ[t][oc] — the dY chunk is the Winograd "filter".
          for (std::int64_t oc = 0; oc < s.oc; ++oc) {
            for (int i = 0; i < m; ++i) {
              const std::int64_t o = ow0 + i;
              taps[i] = o < ow ? dy.at(ni, h, o, oc) : 0.0f;
            }
            g_eval.apply(taps, 1, th, 1);
            for (int t = 0; t < alpha; ++t)
              ghat[static_cast<std::size_t>(t) * s.oc + oc] = th[t];
          }
          // d̂[t][ic] — the α-wide X window is the Winograd "input".
          const std::int64_t iw0 = ow0 - s.pw;
          for (std::int64_t ic = 0; ic < s.ic; ++ic) {
            for (int e = 0; e < alpha; ++e) {
              const std::int64_t iw = iw0 + e;
              taps[e] = (iw >= 0 && iw < s.iw) ? x.at(ni, ihp, iw, ic) : 0.0f;
            }
            d_eval.apply(taps, 1, th, 1);
            for (int t = 0; t < alpha; ++t)
              dhat[static_cast<std::size_t>(t) * s.ic + ic] = th[t];
          }
          // State-domain outer-product accumulation over (row, tile).
          for (int t = 0; t < alpha; ++t) {
            const float* __restrict grow =
                ghat + static_cast<std::size_t>(t) * s.oc;
            const float* __restrict drow =
                dhat + static_cast<std::size_t>(t) * s.ic;
            float* __restrict mbase =
                macc + static_cast<std::size_t>(t) * s.ic * s.oc;
            for (std::int64_t ic = 0; ic < s.ic; ++ic) {
              const float dv = drow[ic];
              if (dv == 0.0f) continue;
              float* __restrict mrow = mbase + ic * s.oc;
              for (std::int64_t oc = 0; oc < s.oc; ++oc)
                mrow[oc] += dv * grow[oc];
            }
          }
        }
      }
    }
    // Output transform: dW[oc][fh][j][ic] = Σ_t A^T[j][t] · m̂[t][ic][oc].
    for (std::int64_t j = 0; j < s.fw; ++j) {
      const float* at_row =
          &plan.at_f[static_cast<std::size_t>(j) * alpha];
      for (std::int64_t ic = 0; ic < s.ic; ++ic) {
        for (std::int64_t oc = 0; oc < s.oc; ++oc) {
          float acc = 0.0f;
          for (int t = 0; t < alpha; ++t) {
            const float a = at_row[t];
            if (a == 0.0f) continue;
            acc += a * macc[(static_cast<std::size_t>(t) * s.ic + ic) * s.oc +
                            oc];
          }
          dw.at(oc, fh, j, ic) = acc;
        }
      }
    }
  });
  return dw;
}

}  // namespace iwg::core
