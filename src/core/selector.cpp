#include "core/selector.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "core/plan_cache.hpp"

namespace iwg::core {

namespace {

/// The Γ families (α values) the paper's kernels admit for a filter width.
std::vector<int> alphas_for(int r) {
  switch (r) {
    case 2:
    case 3:
      return {8, 4};
    case 4:
    case 5:
    case 6:
      return {8};
    case 7:
      return {16, 8};
    case 8:
    case 9:
      return {16};
    default:
      return {};
  }
}

/// Every kernel the search may place in a chain, fastest family first. The
/// ruse variants enter regardless of the §5.4 rule — profiling decides —
/// and c64 enters when the channels allow it.
std::vector<GammaConfig> kernel_universe(int r, bool c64_eligible) {
  std::vector<GammaConfig> u;
  for (int alpha : alphas_for(r)) {
    const int n = alpha + 1 - r;
    if (n < 2) continue;
    if (alpha == 16 && c64_eligible)
      u.push_back(GammaConfig::make(alpha, n, r, Variant::kC64));
    if (alpha >= 8) u.push_back(GammaConfig::make(alpha, n, r, Variant::kRuse));
    u.push_back(GammaConfig::make(alpha, n, r, Variant::kBase));
  }
  return u;
}

std::string plan_signature(const std::vector<Segment>& plan) {
  std::ostringstream sig;
  for (const Segment& seg : plan) {
    if (seg.is_gemm) {
      sig << "G:" << seg.ow_start << ':' << seg.ow_len << ';';
    } else {
      sig << seg.cfg.alpha << ':' << seg.cfg.n << ':' << seg.cfg.r << ':'
          << variant_name(seg.cfg.variant) << ':' << seg.ow_start << ':'
          << seg.ow_len << ';';
    }
  }
  return sig.str();
}

std::string plan_label(const std::vector<Segment>& plan) {
  std::string label;
  for (const Segment& seg : plan) {
    if (!label.empty()) label += "+";
    label += seg.is_gemm ? "gemm" : seg.cfg.name();
  }
  return label;
}

bool is_pure_gemm(const std::vector<Segment>& plan) {
  return plan.size() == 1 && plan[0].is_gemm;
}

}  // namespace

std::vector<Segment> AlgoChoice::executable_plan(const ConvShape& s) const {
  if (use_winograd && !plan.empty()) return plan;
  Segment seg;
  seg.is_gemm = true;
  seg.ow_start = 0;
  seg.ow_len = s.ow();
  return {seg};
}

std::vector<PlanCandidate> enumerate_candidates(const ConvShape& s) {
  s.validate();
  std::vector<PlanCandidate> out;
  if (s.fw < 2 || s.fw > 9) return out;

  const int r = static_cast<int>(s.fw);
  const bool c64_eligible = s.ic % 64 == 0 && s.oc % 64 == 0;
  std::set<std::string> seen;
  const auto consider = [&](std::vector<Segment> plan, std::string label) {
    if (plan.empty() || is_pure_gemm(plan)) return;
    if (!seen.insert(plan_signature(plan)).second) return;
    out.push_back(PlanCandidate{std::move(plan), std::move(label)});
  };

  // The heuristic priority chain leads so that a tight budget still profiles
  // the plan the rule-based fallback would pick.
  {
    auto plan = plan_boundary(s.ow(), r, /*allow_ruse=*/true, c64_eligible);
    consider(std::move(plan), "priority chain");
  }

  // Per-segment search: a chain over every subset of the kernel universe,
  // kept in fastest-first order (the executor only needs coverage, and the
  // greedy prefix rule makes each subset a distinct boundary strategy).
  const auto universe = kernel_universe(r, c64_eligible);
  const std::size_t k = universe.size();
  for (std::size_t mask = 1; mask < (std::size_t{1} << k); ++mask) {
    std::vector<GammaConfig> kernels;
    for (std::size_t i = 0; i < k; ++i) {
      if (mask & (std::size_t{1} << i)) kernels.push_back(universe[i]);
    }
    auto plan = plan_chain(s.ow(), kernels);
    auto label = plan_label(plan);
    consider(std::move(plan), std::move(label));
  }
  return out;
}

AlgoChoice heuristic_choice(const ConvShape& s) {
  s.validate();
  AlgoChoice c;
  c.heuristic = true;
  if (s.fw >= 2 && s.fw <= 9) {
    ConvOptions opts;
    opts.allow_c64 = s.ic % 64 == 0 && s.oc % 64 == 0;
    c.use_winograd = true;
    c.plan = plan_for(s, opts);
    c.description = "heuristic chain ((r-1)/alpha rule): " +
                    plan_label(c.plan);
  } else {
    c.use_winograd = false;
    c.description = "implicit GEMM (heuristic fallback)";
  }
  return c;
}

AlgoChoice select_algorithm(const ConvShape& s, const sim::DeviceProfile& dev,
                            int samples, const TuningBudget& budget) {
  s.validate();
  if (budget.max_candidates <= 0) return heuristic_choice(s);

  AlgoChoice best;
  best.est_gflops = 0.0;

  const auto candidates = enumerate_candidates(s);
  best.candidates_enumerated = static_cast<int>(candidates.size());
  const int cap = std::min<int>(budget.max_candidates,
                                static_cast<int>(candidates.size()));
  for (int i = 0; i < cap; ++i) {
    const auto rep = profile_conv2d(s, dev, candidates[i].plan, samples);
    ++best.candidates_profiled;
    if (rep.gflops > best.est_gflops) {
      best.use_winograd = true;
      best.plan = candidates[i].plan;
      best.est_gflops = rep.gflops;
      best.description = "winograd " + candidates[i].label;
    }
  }

  const auto gemm = profile_gemm_conv2d(s, dev, GemmLayout::kNHWC, samples);
  ++best.candidates_profiled;
  best.gemm_gflops = gemm.gflops;
  if (gemm.gflops > best.est_gflops) {
    best.use_winograd = false;
    best.plan.clear();
    best.est_gflops = gemm.gflops;
    best.description = "implicit GEMM (NHWC)";
  }
  return best;
}

AlgoChoice select_algorithm_cached(const ConvShape& s,
                                   const sim::DeviceProfile& dev,
                                   int samples) {
  return PlanCache::global().get_or_tune(s, dev, samples);
}

}  // namespace iwg::core
