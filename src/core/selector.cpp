#include "core/selector.hpp"

#include <map>
#include <mutex>
#include <sstream>

namespace iwg::core {

AlgoChoice select_algorithm(const ConvShape& s, const sim::DeviceProfile& dev,
                            int samples) {
  s.validate();
  AlgoChoice best;
  best.est_gflops = 0.0;

  const auto consider = [&](const std::vector<Segment>& plan,
                            const char* label) {
    if (plan.empty()) return;
    if (plan.size() == 1 && plan[0].is_gemm) return;  // GEMM handled below
    const auto rep = profile_conv2d(s, dev, plan, samples);
    if (rep.gflops > best.est_gflops) {
      best.use_winograd = true;
      best.plan = plan;
      best.est_gflops = rep.gflops;
      best.description = label;
    }
  };

  if (s.fw >= 2 && s.fw <= 9) {
    ConvOptions def;
    consider(plan_for(s, def), "winograd (default chain)");
    ConvOptions no_ruse;
    no_ruse.allow_ruse = false;
    consider(plan_for(s, no_ruse), "winograd (base kernels)");
    if (s.ic % 64 == 0 && s.oc % 64 == 0 && s.fw >= 7) {
      ConvOptions c64;
      c64.allow_c64 = true;
      consider(plan_for(s, c64), "winograd (c64 chain)");
    }
  }

  const auto gemm = profile_gemm_conv2d(s, dev, GemmLayout::kNHWC, samples);
  best.gemm_gflops = gemm.gflops;
  if (gemm.gflops > best.est_gflops) {
    best.use_winograd = false;
    best.plan.clear();
    best.est_gflops = gemm.gflops;
    best.description = "implicit GEMM (NHWC)";
  }
  return best;
}

const AlgoChoice& select_algorithm_cached(const ConvShape& s,
                                          const sim::DeviceProfile& dev,
                                          int samples) {
  static std::mutex mu;
  static std::map<std::string, AlgoChoice> cache;
  std::ostringstream key;
  key << dev.name << '|' << s.n << 'x' << s.ih << 'x' << s.iw << 'x' << s.ic
      << "->" << s.oc << 'f' << s.fh << 'x' << s.fw << 'p' << s.ph << ','
      << s.pw;
  std::lock_guard lock(mu);
  auto it = cache.find(key.str());
  if (it == cache.end()) {
    it = cache.emplace(key.str(), select_algorithm(s, dev, samples)).first;
  }
  return it->second;
}

}  // namespace iwg::core
