// Implicit-precomp-GEMM convolution on the SIMT model — the stand-in for
// cuDNN's Implicit_Precomp_GEMM benchmark algorithm (§6.1.1), in both NHWC
// and NCHW layouts. Also serves as the §5.5 boundary-tail kernel.
//
// The "precomp" part is the k-major filter matrix W' ∈ R^{GK×OC}
// (GK = FH·FW·IC), which cuDNN precomputes so filter loads are contiguous in
// OC. Input patches are gathered on the fly (implicit im2col): NHWC warps
// load k-major (consecutive input channels are contiguous, 128-bit loads
// within a filter tap), NCHW warps load pixel-major (consecutive output
// columns are contiguous) — each layout's natural coalescing.
//
// Tile geometry: BN×BM×BK with 256 threads and 8×8 accumulators per thread.
// BN adapts to the problem (64 for OC ≤ 64, else 128) the way a library
// kernel selector would, so small-channel layers don't burn half the math on
// padding.
#pragma once

#include "gpusim/perf_model.hpp"
#include "gpusim/sim.hpp"
#include "tensor/conv_shape.hpp"
#include "tensor/tensor.hpp"

namespace iwg::core {

enum class GemmLayout { kNHWC, kNCHW };

/// Build the precomputed k-major filter matrix (GK × OC) from the original
/// OC,FH,FW,IC filter. NHWC k-order is (fh, fw, ic); NCHW is (ic, fh, fw).
TensorF precompute_gemm_filter(const TensorF& w, GemmLayout layout);

class ImplicitGemmKernel final : public sim::Kernel {
 public:
  /// `x` and `y` are in `layout`; `w` is the precomputed GK×OC matrix.
  /// Computes output columns [ow_start, ow_start + ow_len).
  ImplicitGemmKernel(ConvShape shape, GemmLayout layout, sim::GmemBuf x,
                     sim::GmemBuf w, sim::GmemBuf y, std::int64_t ow_start,
                     std::int64_t ow_len);

  std::string name() const override {
    return layout_ == GemmLayout::kNHWC ? "implicit_gemm_nhwc"
                                        : "implicit_gemm_nchw";
  }
  sim::Dim3 block_dim() const override { return {16, 16, 1}; }
  std::int64_t smem_bytes() const override {
    return 2ll * kBk * (bn_ + bm_) * 4;  // double-buffered As + Bs
  }
  int regs_per_thread() const override { return 64 + 16 + 24; }
  void run_block(sim::Block& blk) const override;

  sim::Dim3 grid() const;
  int bn() const { return bn_; }
  int bm() const { return bm_; }

  static constexpr int kBk = 8;  ///< GEMM k per iteration

 private:
  std::int64_t x_index(std::int64_t ni, std::int64_t fh, std::int64_t fw,
                       std::int64_t ic, std::int64_t oh, std::int64_t ow,
                       bool& ok) const;

  ConvShape shape_;
  GemmLayout layout_;
  sim::GmemBuf x_, w_, y_;
  std::int64_t ow_start_, ow_len_;
  std::int64_t pixels_;  ///< N · OH · ow_len
  std::int64_t gk_;
  int bn_ = 128;  ///< output channels per block
  int bm_ = 128;  ///< output pixels per block (bn · bm = 16384)
};

/// Sampled profile + analytic estimate (see gamma_kernel.hpp).
sim::PerfEstimate profile_gemm(const ImplicitGemmKernel& k,
                               const sim::DeviceProfile& dev,
                               double conv_flops, double footprint_bytes,
                               int max_samples = 8, int num_launches = 1,
                               sim::LaunchStats* stats_out = nullptr);

}  // namespace iwg::core
