// Watchdog: liveness self-monitoring for the serving worker threads.
//
// Every thread that must make forward progress (serving-session workers,
// fleet dispatch workers) registers a named Heartbeat and beats it once per
// loop iteration. The beat is the entire hot-path cost: one steady-clock
// read plus one relaxed atomic store — bench/observability_overhead holds
// it (together with windowed-snapshot publication) under the same 1%
// discipline as the rest of the observability layer.
//
// check() scans the registered heartbeats from a cold thread (the admin
// server's /healthz handler, a test): a heartbeat older than the stall
// timeout marks the process unhealthy, flips /healthz to 503, and — on the
// fresh→stalled transition only — increments obs.watchdog.stalls and emits
// an obs.watchdog.stall span, so a flapping thread is countable rather than
// a counter storm. Heartbeats are shared_ptr-owned by the beating thread;
// the watchdog holds weak references, so a worker that exits cleanly (and
// drops its handle) simply disappears from the scan instead of reading as a
// stall forever.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace iwg::obs {

class Watchdog {
 public:
  /// A heartbeat is stalled when it has not beaten for this long. The
  /// default comfortably covers a fleet worker's idle park (50 ms) plus a
  /// long batch; tests shrink it to milliseconds.
  explicit Watchdog(
      std::chrono::microseconds stall_timeout = std::chrono::seconds(5));

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// One monitored thread's liveness signal.
  class Heartbeat {
   public:
    explicit Heartbeat(std::string name) : name_(std::move(name)) {}

    /// Hot path: relaxed store of the current steady-clock microsecond.
    void beat() {
      last_us_.store(now_us(), std::memory_order_relaxed);
    }

    const std::string& name() const { return name_; }
    std::int64_t last_beat_us() const {
      return last_us_.load(std::memory_order_relaxed);
    }

    static std::int64_t now_us();

   private:
    friend class Watchdog;
    const std::string name_;
    std::atomic<std::int64_t> last_us_{now_us()};
    std::atomic<bool> stalled_{false};  ///< transition edge detector
  };
  using HeartbeatPtr = std::shared_ptr<Heartbeat>;

  /// Register a named heartbeat (already fresh). The caller owns it; when
  /// the owning thread drops the handle, the watchdog stops scanning it.
  HeartbeatPtr watch(std::string name);

  struct Stall {
    std::string name;
    double age_s = 0.0;  ///< time since the last beat
  };
  struct Status {
    bool healthy = true;          ///< no live heartbeat is stalled
    std::size_t watched = 0;      ///< live heartbeats scanned
    std::vector<Stall> stalled;   ///< currently-stalled heartbeats
    std::int64_t stalls_total = 0;  ///< fresh→stalled transitions ever seen
  };

  /// Scan every live heartbeat. Fresh→stalled transitions increment
  /// obs.watchdog.stalls (once per transition) and emit a span; recovered
  /// heartbeats re-arm the edge detector. Expired (dropped) heartbeats are
  /// pruned. Thread-safe; called from the admin/health thread.
  Status check();

  /// check().healthy — what /healthz gates on.
  bool healthy() { return check().healthy; }

  std::chrono::microseconds stall_timeout() const { return stall_timeout_; }

 private:
  const std::chrono::microseconds stall_timeout_;
  std::mutex mu_;
  std::vector<std::weak_ptr<Heartbeat>> beats_;
  std::int64_t stalls_total_ = 0;
};

}  // namespace iwg::obs
