// SloMonitor: windowed SLO burn-rate monitoring over the per-tenant serve
// metrics.
//
// The metrics registry is cumulative-since-start; an operator asking "is
// tenant gold burning its error budget NOW" needs windows. The monitor is
// ticked once per interval (by a poller thread, or directly by a test) with
// each tenant's cumulative totals — SLO-eligible events, SLO misses, and
// the latency Histogram snapshot. Each tick is diffed against the previous
// one into an exact per-interval delta (Histogram::Snapshot::delta) and
// pushed into a bounded ring, from which the monitor derives:
//
//   * rolling-window latency quantiles — merge the last k interval deltas
//     (lossless: log2-bucket snapshots merge by addition) and interpolate;
//   * multi-window error-budget burn rates — over a fast window (default
//     30 intervals ≙ 30 s at a 1 s cadence) and a slow window (default 300
//     ≙ 5 min): burn = (missed / events) / miss_budget, i.e. 1.0 means
//     exactly spending budget, 2.0 means burning it twice as fast;
//   * alert state, ok → warn → page with hysteresis: a level must hold for
//     escalate_after consecutive intervals to escalate and clear_after to
//     de-escalate, so one bad interval never pages and one good interval
//     never clears a page. Pages additionally require the slow window to
//     confirm (fast ≥ page_burn AND slow ≥ warn_burn) — the classic
//     multi-window rule that ignores short spikes a long window absorbs.
//
// Transitions are exported three ways: obs.slo.transitions.{warn,page,clear}
// counters, an obs.slo.transition span (tenant/from/to/burn args), and the
// /alertz JSON the AdminServer serves.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/trace.hpp"

namespace iwg::obs {

enum class AlertState : int { kOk = 0, kWarn = 1, kPage = 2 };
const char* alert_state_name(AlertState s);

struct SloConfig {
  /// Error budget: the allowed miss fraction (0.01 → 1% of requests may
  /// miss their deadline before the SLO is spent).
  double miss_budget = 0.01;
  /// Window lengths in ticks. At the canonical 1 s observe cadence these
  /// are the issue's 30 s fast / 5 min slow windows.
  int fast_intervals = 30;
  int slow_intervals = 300;
  /// Burn-rate thresholds on the fast window. warn at >= warn_burn; page
  /// at >= page_burn with the slow window confirming (>= warn_burn).
  double warn_burn = 1.0;
  double page_burn = 2.0;
  /// Hysteresis: consecutive intervals a level must hold to escalate /
  /// de-escalate. >= 2 means a single bad interval can never flap state.
  int escalate_after = 2;
  int clear_after = 3;
};

class SloMonitor {
 public:
  explicit SloMonitor(SloConfig cfg = {});

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  /// Cumulative-since-start totals for one tenant, sampled at a tick.
  struct Totals {
    std::int64_t events = 0;  ///< SLO-eligible outcomes (completed+expired)
    std::int64_t missed = 0;  ///< SLO misses (served late + expired)
    trace::Histogram::Snapshot latency;  ///< cumulative latency histogram
  };

  /// One interval tick for `tenant`: diff against the previous totals,
  /// rotate the window ring, recompute burn rates, advance the alert state
  /// machine. Returns the (possibly new) state. The first observe of a
  /// tenant establishes its baseline and always reports kOk.
  AlertState observe(const std::string& tenant, const Totals& cumulative);

  /// observe() with totals read from the per-tenant serve metrics:
  /// events = serve.tenant.<id>.completed + .expired, missed =
  /// .deadline_missed + .expired, latency = .latency_us.
  AlertState observe_from_registry(const std::string& tenant);

  /// observe_from_registry for each tenant — one poller-thread tick.
  void poll_registry(const std::vector<std::string>& tenants);

  struct Window {
    std::int64_t events = 0;
    std::int64_t missed = 0;
    double burn = 0.0;  ///< (missed/events)/miss_budget; 0 when no events
    double p50_us = 0.0;
    double p99_us = 0.0;
  };
  struct TenantStatus {
    AlertState state = AlertState::kOk;
    Window fast;
    Window slow;
    std::int64_t intervals = 0;  ///< ticks ingested (after the baseline)
    std::int64_t warn_transitions = 0;
    std::int64_t page_transitions = 0;
    std::int64_t clear_transitions = 0;
  };
  /// Zero-value status for unknown tenants.
  TenantStatus status(const std::string& tenant) const;
  std::vector<std::string> tenants() const;

  /// The /alertz page: per-tenant state, both windows' burn/quantiles, and
  /// transition counts, as one JSON object.
  std::string alertz_json() const;

  const SloConfig& config() const { return cfg_; }

 private:
  struct Interval {
    std::int64_t events = 0;
    std::int64_t missed = 0;
    trace::Histogram::Snapshot latency;
  };
  struct TenantState {
    Totals last;
    bool baselined = false;
    std::deque<Interval> ring;  ///< most recent at the back
    AlertState state = AlertState::kOk;
    AlertState pending = AlertState::kOk;  ///< sustained escalation level
    int breach_streak = 0;
    int clear_streak = 0;
    std::int64_t intervals = 0;
    std::int64_t warn_transitions = 0;
    std::int64_t page_transitions = 0;
    std::int64_t clear_transitions = 0;
  };

  Window window(const TenantState& st, int k) const;
  void transition(const std::string& tenant, TenantState& st, AlertState to,
                  const Window& fast, const Window& slow);
  TenantStatus status_locked(const TenantState& st) const;

  const SloConfig cfg_;
  mutable std::mutex mu_;
  std::map<std::string, TenantState> tenants_;
};

}  // namespace iwg::obs
