#include "obs/watchdog.hpp"

#include <algorithm>

#include "common/trace.hpp"

namespace iwg::obs {

namespace {

trace::Counter& stalls_counter() {
  static trace::Counter& c = [] () -> trace::Counter& {
    auto& reg = trace::MetricsRegistry::global();
    reg.set_help("obs.watchdog.stalls",
                 "Worker heartbeats that crossed the stall timeout "
                 "(fresh-to-stalled transitions).");
    return reg.counter("obs.watchdog.stalls");
  }();
  return c;
}

}  // namespace

std::int64_t Watchdog::Heartbeat::now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Watchdog::Watchdog(std::chrono::microseconds stall_timeout)
    : stall_timeout_(stall_timeout) {}

Watchdog::HeartbeatPtr Watchdog::watch(std::string name) {
  auto hb = std::make_shared<Heartbeat>(std::move(name));
  std::lock_guard lock(mu_);
  beats_.push_back(hb);
  return hb;
}

Watchdog::Status Watchdog::check() {
  const std::int64_t now = Heartbeat::now_us();
  Status st;
  std::lock_guard lock(mu_);
  // Prune heartbeats whose owning thread exited (dropped its handle).
  beats_.erase(std::remove_if(beats_.begin(), beats_.end(),
                              [](const std::weak_ptr<Heartbeat>& w) {
                                return w.expired();
                              }),
               beats_.end());
  for (const auto& w : beats_) {
    const HeartbeatPtr hb = w.lock();
    if (hb == nullptr) continue;
    ++st.watched;
    const std::int64_t age_us = now - hb->last_beat_us();
    if (age_us > stall_timeout_.count()) {
      st.healthy = false;
      st.stalled.push_back(
          Stall{hb->name(), static_cast<double>(age_us) * 1e-6});
      // Count the transition, not the condition: a thread stuck for a
      // minute is one stall, not one per scrape.
      if (!hb->stalled_.exchange(true, std::memory_order_relaxed)) {
        ++stalls_total_;
        stalls_counter().add();
        IWG_TRACE_SPAN(span, "obs.watchdog.stall", "obs");
        span.arg("thread", hb->name())
            .arg("age_s", static_cast<double>(age_us) * 1e-6);
      }
    } else {
      hb->stalled_.store(false, std::memory_order_relaxed);
    }
  }
  st.stalls_total = stalls_total_;
  return st;
}

}  // namespace iwg::obs
