// AdminServer: an embedded, dependency-free HTTP/1.1 scrape endpoint.
//
// Everything the process knows about itself — the live Prometheus page, the
// recent-span ring, per-tenant scheduler state, SLO alert state, liveness —
// becomes pull-based: point curl or a Prometheus scraper at the port and
// read the running process instead of waiting for an at-exit report.
//
//   GET /metrics   MetricsRegistry::prometheus_text()  (text/plain 0.0.4)
//   GET /healthz   200 "ok" while live; 503 when the Watchdog sees a
//                  stalled worker heartbeat
//   GET /readyz    200 once the registered readiness probe passes (e.g.
//                  all fleet tenants warmed and routable); 503 before
//   GET /statusz   application JSON status (fleet: per-tenant queue depth,
//                  token-bucket fill, WFQ virtual time, weight epoch, plus
//                  plan-cache stats, arena high-water, host ISA)
//   GET /alertz    SloMonitor::alertz_json()
//   GET /tracez    the recent-span ring as Chrome trace JSON
//   GET /          plain-text index of the endpoints above
//
// Deliberately small: GET-only (anything else is 405), one dedicated server
// thread that accepts and serves connections sequentially (the listen
// backlog bounds concurrent clients; scrape rendering runs on this thread,
// never on a serving worker), loopback-bound by default, bounded request
// size, and poll()-based timeouts so a stuck client cannot wedge the
// endpoint. No third-party HTTP stack — plain POSIX sockets.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace iwg::obs {

class Watchdog;
class SloMonitor;

class AdminServer {
 public:
  struct Config {
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back with
    /// port() — tests and the demo's --admin 0 use this).
    std::uint16_t port = 0;
    /// Pending-connection bound passed to listen(); connections beyond it
    /// are refused by the kernel, which is the admissions policy.
    int backlog = 16;
    /// Per-connection read/write patience before the connection is dropped.
    std::chrono::milliseconds io_timeout{2000};
    std::size_t max_request_bytes = 8192;
  };

  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  using Handler = std::function<Response()>;

  /// Registers the built-in /metrics, /tracez, and / index handlers.
  /// /healthz and /readyz default to 200 until probes are wired.
  AdminServer();
  explicit AdminServer(Config cfg);
  ~AdminServer();  ///< stop()

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Register (or replace) the handler for an exact path. Thread-safe;
  /// takes effect for the next request.
  void handle(const std::string& path, Handler h);

  /// /healthz gates on this (nullptr → always healthy). A Watchdog's
  /// check().healthy is the intended probe.
  void set_healthz(std::function<bool()> healthy);
  /// /readyz gates on this (nullptr → always ready).
  void set_readyz(std::function<bool()> ready);
  /// /statusz body (application JSON).
  void set_statusz(std::function<std::string()> statusz_json);

  /// Wire /healthz to `wd` and /alertz to `slo` (either may be null).
  void wire(Watchdog* wd, SloMonitor* slo);

  /// Bind 127.0.0.1:port, start the server thread. Throws iwg::Error when
  /// the port cannot be bound. Idempotent once running.
  void start();
  /// Stop accepting, join the thread, close the socket. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (after start(); meaningful with cfg.port == 0).
  std::uint16_t port() const { return port_; }

 private:
  void serve_loop();
  void serve_connection(int client_fd);
  Response dispatch(const std::string& method, const std::string& path);

  Config cfg_;
  std::mutex mu_;  ///< guards handlers_ and the probe callbacks
  std::map<std::string, Handler> handlers_;
  std::function<bool()> healthy_;
  std::function<bool()> ready_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

}  // namespace iwg::obs
