#include "obs/admin_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

#include "common/check.hpp"
#include "common/trace.hpp"
#include "obs/slo_monitor.hpp"
#include "obs/watchdog.hpp"

namespace iwg::obs {

namespace {

trace::Counter& requests_counter() {
  static trace::Counter& c = [] () -> trace::Counter& {
    auto& reg = trace::MetricsRegistry::global();
    reg.set_help("obs.admin.requests",
                 "HTTP requests served by the embedded admin endpoint.");
    return reg.counter("obs.admin.requests");
  }();
  return c;
}

trace::Counter& errors_counter() {
  static trace::Counter& c = [] () -> trace::Counter& {
    auto& reg = trace::MetricsRegistry::global();
    reg.set_help("obs.admin.http_errors",
                 "Admin requests answered with a non-200 status.");
    return reg.counter("obs.admin.http_errors");
  }();
  return c;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

/// Blocking-with-patience send of the whole buffer.
bool send_all(int fd, const char* data, std::size_t len, int timeout_ms) {
  std::size_t off = 0;
  while (off < len) {
    pollfd p{fd, POLLOUT, 0};
    if (::poll(&p, 1, timeout_ms) <= 0) return false;
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

AdminServer::AdminServer() : AdminServer(Config{}) {}

AdminServer::AdminServer(Config cfg) : cfg_(cfg) {
  handle("/metrics", [] {
    Response r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = trace::MetricsRegistry::global().prometheus_text();
    return r;
  });
  handle("/tracez", [] {
    Response r;
    r.content_type = "application/json";
    r.body = trace::Tracer::global().chrome_json();
    return r;
  });
  handle("/", [] {
    Response r;
    r.body =
        "iwg admin endpoints:\n"
        "  /metrics  Prometheus exposition\n"
        "  /healthz  liveness (watchdog)\n"
        "  /readyz   readiness (tenants warmed)\n"
        "  /statusz  scheduler status JSON\n"
        "  /alertz   SLO burn-rate alert state JSON\n"
        "  /tracez   recent spans (Chrome trace JSON)\n";
    return r;
  });
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::handle(const std::string& path, Handler h) {
  std::lock_guard lock(mu_);
  handlers_[path] = std::move(h);
}

void AdminServer::set_healthz(std::function<bool()> healthy) {
  std::lock_guard lock(mu_);
  healthy_ = std::move(healthy);
}

void AdminServer::set_readyz(std::function<bool()> ready) {
  std::lock_guard lock(mu_);
  ready_ = std::move(ready);
}

void AdminServer::set_statusz(std::function<std::string()> statusz_json) {
  handle("/statusz", [fn = std::move(statusz_json)] {
    Response r;
    r.content_type = "application/json";
    r.body = fn();
    return r;
  });
}

void AdminServer::wire(Watchdog* wd, SloMonitor* slo) {
  if (wd != nullptr) {
    set_healthz([wd] { return wd->check().healthy; });
  }
  if (slo != nullptr) {
    handle("/alertz", [slo] {
      Response r;
      r.content_type = "application/json";
      r.body = slo->alertz_json();
      return r;
    });
  }
}

void AdminServer::start() {
  if (running()) return;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  IWG_CHECK_MSG(fd >= 0, "admin server: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    IWG_CHECK_MSG(false, "admin server: cannot bind 127.0.0.1:" +
                             std::to_string(cfg_.port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(fd, cfg_.backlog) != 0) {
    ::close(fd);
    IWG_CHECK_MSG(false, "admin server: listen() failed");
  }
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
}

void AdminServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void AdminServer::serve_loop() {
  while (running()) {
    pollfd p{listen_fd_, POLLIN, 0};
    // Short poll so stop() is honored promptly; no busy-wait while idle.
    const int rc = ::poll(&p, 1, 100);
    if (rc <= 0 || (p.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    serve_connection(client);
    ::close(client);
  }
}

AdminServer::Response AdminServer::dispatch(const std::string& method,
                                            const std::string& path) {
  if (method != "GET") {
    Response r;
    r.status = 405;
    r.body = "method not allowed (GET only)\n";
    return r;
  }
  Handler h;
  std::function<bool()> probe;
  {
    std::lock_guard lock(mu_);
    if (path == "/healthz") {
      probe = healthy_;
    } else if (path == "/readyz") {
      probe = ready_;
    } else {
      const auto it = handlers_.find(path);
      if (it != handlers_.end()) h = it->second;
    }
  }
  if (path == "/healthz" || path == "/readyz") {
    Response r;
    const bool pass = !probe || probe();
    r.status = pass ? 200 : 503;
    r.body = pass ? "ok\n"
                  : (path == "/healthz" ? "stalled\n" : "not ready\n");
    return r;
  }
  if (!h) {
    Response r;
    r.status = 404;
    r.body = "not found\n";
    return r;
  }
  return h();
}

void AdminServer::serve_connection(int client_fd) {
  const int timeout_ms = static_cast<int>(cfg_.io_timeout.count());
  std::string req;
  req.reserve(512);
  // Read until the end of the request head (we ignore bodies — GET only).
  while (req.size() < cfg_.max_request_bytes &&
         req.find("\r\n\r\n") == std::string::npos &&
         req.find("\n\n") == std::string::npos) {
    pollfd p{client_fd, POLLIN, 0};
    if (::poll(&p, 1, timeout_ms) <= 0) return;
    char buf[1024];
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
  }
  std::istringstream head(req);
  std::string method;
  std::string target;
  head >> method >> target;
  if (method.empty() || target.empty()) return;
  const std::size_t q = target.find('?');
  if (q != std::string::npos) target.resize(q);  // ignore query strings

  const Response resp = dispatch(method, target);
  requests_counter().add();
  if (resp.status != 200) errors_counter().add();
  IWG_TRACE_SPAN(span, "obs.admin.request", "obs");
  span.arg("path", target).arg("status", resp.status);

  std::ostringstream out;
  out << "HTTP/1.1 " << resp.status << ' ' << status_text(resp.status)
      << "\r\nContent-Type: " << resp.content_type
      << "\r\nContent-Length: " << resp.body.size()
      << "\r\nConnection: close\r\n\r\n"
      << resp.body;
  const std::string wire = out.str();
  send_all(client_fd, wire.data(), wire.size(), timeout_ms);
}

}  // namespace iwg::obs
