#include "obs/slo_monitor.hpp"

#include <algorithm>
#include <locale>
#include <sstream>

#include "common/check.hpp"

namespace iwg::obs {

namespace {

trace::Counter& transition_counter(AlertState to, bool escalation) {
  auto& reg = trace::MetricsRegistry::global();
  static trace::Counter& warn = [&]() -> trace::Counter& {
    reg.set_help("obs.slo.transitions.warn",
                 "Tenant SLO alert escalations into the warn state.");
    return reg.counter("obs.slo.transitions.warn");
  }();
  static trace::Counter& page = [&]() -> trace::Counter& {
    reg.set_help("obs.slo.transitions.page",
                 "Tenant SLO alert escalations into the page state.");
    return reg.counter("obs.slo.transitions.page");
  }();
  static trace::Counter& clear = [&]() -> trace::Counter& {
    reg.set_help("obs.slo.transitions.clear",
                 "Tenant SLO alert de-escalations (toward ok).");
    return reg.counter("obs.slo.transitions.clear");
  }();
  if (!escalation) return clear;
  return to == AlertState::kPage ? page : warn;
}

void json_escape_into(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';  // tenant ids are validated names; control chars blanked
    } else {
      os << c;
    }
  }
}

}  // namespace

const char* alert_state_name(AlertState s) {
  switch (s) {
    case AlertState::kOk: return "ok";
    case AlertState::kWarn: return "warn";
    case AlertState::kPage: return "page";
  }
  return "ok";
}

SloMonitor::SloMonitor(SloConfig cfg) : cfg_(cfg) {
  IWG_CHECK(cfg_.miss_budget > 0.0);
  IWG_CHECK(cfg_.fast_intervals >= 1);
  IWG_CHECK(cfg_.slow_intervals >= cfg_.fast_intervals);
  IWG_CHECK(cfg_.escalate_after >= 1);
  IWG_CHECK(cfg_.clear_after >= 1);
}

SloMonitor::Window SloMonitor::window(const TenantState& st, int k) const {
  Window w;
  trace::Histogram::Snapshot merged;
  const int n = static_cast<int>(st.ring.size());
  for (int i = std::max(0, n - k); i < n; ++i) {
    const Interval& iv = st.ring[static_cast<std::size_t>(i)];
    w.events += iv.events;
    w.missed += iv.missed;
    merged.merge(iv.latency);
  }
  if (w.events > 0) {
    w.burn = (static_cast<double>(w.missed) / static_cast<double>(w.events)) /
             cfg_.miss_budget;
  }
  if (merged.count > 0) {
    w.p50_us = merged.quantile(0.50);
    w.p99_us = merged.quantile(0.99);
  }
  return w;
}

void SloMonitor::transition(const std::string& tenant, TenantState& st,
                            AlertState to, const Window& fast,
                            const Window& slow) {
  const AlertState from = st.state;
  if (to == from) return;
  const bool escalation = static_cast<int>(to) > static_cast<int>(from);
  st.state = to;
  if (escalation) {
    (to == AlertState::kPage ? st.page_transitions : st.warn_transitions) += 1;
  } else {
    st.clear_transitions += 1;
  }
  transition_counter(to, escalation).add();
  IWG_TRACE_SPAN(span, "obs.slo.transition", "obs");
  span.arg("tenant", tenant)
      .arg("from", alert_state_name(from))
      .arg("to", alert_state_name(to))
      .arg("burn_fast", fast.burn)
      .arg("burn_slow", slow.burn);
}

AlertState SloMonitor::observe(const std::string& tenant,
                               const Totals& cumulative) {
  std::lock_guard lock(mu_);
  TenantState& st = tenants_[tenant];
  if (!st.baselined) {
    // First sighting: establish the diff baseline; no interval yet.
    st.last = cumulative;
    st.baselined = true;
    return st.state;
  }
  Interval iv;
  // Cumulative counters are monotone; clamp defensively so a registry
  // reset mid-flight (tests) yields an empty interval, not a negative one.
  iv.events = std::max<std::int64_t>(0, cumulative.events - st.last.events);
  iv.missed = std::max<std::int64_t>(0, cumulative.missed - st.last.missed);
  iv.missed = std::min(iv.missed, iv.events);
  iv.latency = cumulative.latency.delta(st.last.latency);
  st.last = cumulative;
  st.ring.push_back(std::move(iv));
  while (static_cast<int>(st.ring.size()) > cfg_.slow_intervals) {
    st.ring.pop_front();  // window rotation: the slow window bounds the ring
  }
  st.intervals += 1;

  const Window fast = window(st, cfg_.fast_intervals);
  const Window slow = window(st, cfg_.slow_intervals);

  // Instantaneous level for this tick. Paging needs both windows: the fast
  // one to react, the slow one to prove the burn is sustained.
  AlertState level = AlertState::kOk;
  if (fast.burn >= cfg_.page_burn && slow.burn >= cfg_.warn_burn) {
    level = AlertState::kPage;
  } else if (fast.burn >= cfg_.warn_burn) {
    level = AlertState::kWarn;
  }

  if (static_cast<int>(level) > static_cast<int>(st.state)) {
    // Escalation streak carries the LOWEST level sustained across it, so a
    // warn/page/warn run escalates to warn, not page.
    st.pending = st.breach_streak == 0
                     ? level
                     : std::min(st.pending, level,
                                [](AlertState a, AlertState b) {
                                  return static_cast<int>(a) <
                                         static_cast<int>(b);
                                });
    st.breach_streak += 1;
    st.clear_streak = 0;
    if (st.breach_streak >= cfg_.escalate_after) {
      transition(tenant, st, st.pending, fast, slow);
      st.breach_streak = 0;
    }
  } else if (static_cast<int>(level) < static_cast<int>(st.state)) {
    st.clear_streak += 1;
    st.breach_streak = 0;
    if (st.clear_streak >= cfg_.clear_after) {
      transition(tenant, st, level, fast, slow);
      st.clear_streak = 0;
    }
  } else {
    st.breach_streak = 0;
    st.clear_streak = 0;
  }
  return st.state;
}

AlertState SloMonitor::observe_from_registry(const std::string& tenant) {
  auto& reg = trace::MetricsRegistry::global();
  const std::string p = "serve.tenant." + tenant + ".";
  Totals t;
  const std::int64_t completed = reg.counter(p + "completed").value();
  const std::int64_t expired = reg.counter(p + "expired").value();
  const std::int64_t late = reg.counter(p + "deadline_missed").value();
  t.events = completed + expired;
  t.missed = late + expired;
  t.latency = reg.histogram(p + "latency_us").snapshot();
  return observe(tenant, t);
}

void SloMonitor::poll_registry(const std::vector<std::string>& tenants) {
  for (const std::string& t : tenants) observe_from_registry(t);
}

SloMonitor::TenantStatus SloMonitor::status_locked(
    const TenantState& st) const {
  TenantStatus s;
  s.state = st.state;
  s.fast = window(st, cfg_.fast_intervals);
  s.slow = window(st, cfg_.slow_intervals);
  s.intervals = st.intervals;
  s.warn_transitions = st.warn_transitions;
  s.page_transitions = st.page_transitions;
  s.clear_transitions = st.clear_transitions;
  return s;
}

SloMonitor::TenantStatus SloMonitor::status(const std::string& tenant) const {
  std::lock_guard lock(mu_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? TenantStatus{} : status_locked(it->second);
}

std::vector<std::string> SloMonitor::tenants() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& [id, st] : tenants_) out.push_back(id);
  return out;
}

std::string SloMonitor::alertz_json() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(9);
  const auto window_json = [&](const Window& w) {
    os << "{\"events\":" << w.events << ",\"missed\":" << w.missed
       << ",\"burn\":" << w.burn << ",\"p50_us\":" << w.p50_us
       << ",\"p99_us\":" << w.p99_us << '}';
  };
  os << "{\"config\":{\"miss_budget\":" << cfg_.miss_budget
     << ",\"fast_intervals\":" << cfg_.fast_intervals
     << ",\"slow_intervals\":" << cfg_.slow_intervals
     << ",\"warn_burn\":" << cfg_.warn_burn
     << ",\"page_burn\":" << cfg_.page_burn << "},\"tenants\":{";
  bool first = true;
  for (const auto& [id, st] : tenants_) {
    if (!first) os << ',';
    first = false;
    const TenantStatus s = status_locked(st);
    os << '"';
    json_escape_into(os, id);
    os << "\":{\"state\":\"" << alert_state_name(s.state)
       << "\",\"intervals\":" << s.intervals << ",\"fast\":";
    window_json(s.fast);
    os << ",\"slow\":";
    window_json(s.slow);
    os << ",\"transitions\":{\"warn\":" << s.warn_transitions
       << ",\"page\":" << s.page_transitions
       << ",\"clear\":" << s.clear_transitions << "}}";
  }
  os << "}}";
  return os.str();
}

}  // namespace iwg::obs
