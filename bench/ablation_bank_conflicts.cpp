// Ablation A1 (§5.2): measured SMEM bank-conflict factors and modeled time
// with and without the paper's mitigations — Ds swizzle / array padding and
// the Figure-4 Z-shaped lane arrangement.
#include <cstdio>

#include "core/conv_api.hpp"

namespace {

using namespace iwg;

void run_config(const char* label, core::GammaConfig cfg,
                const ConvShape& s, const sim::DeviceProfile& dev) {
  sim::GmemBuf xb(static_cast<float*>(nullptr), s.n * s.ih * s.iw * s.ic,
                  true);
  sim::GmemBuf wb(static_cast<float*>(nullptr),
                  s.oc * s.fh * s.fw * s.ic);
  sim::GmemBuf yb(static_cast<float*>(nullptr), s.n * s.oh() * s.ow() * s.oc);
  core::GammaKernel k(cfg, s, core::ConvDir::kForward, xb, wb, yb, 0,
                      s.ow() - s.ow() % cfg.n);
  const auto est = core::profile_gamma(k, dev, s.flops(), 1e8, 4);
  const auto stats = sim::launch_sample(k, k.grid(), 4);
  std::printf("%-34s ld-conflict %.2fx  st-conflict %.2fx  t_smem %.3e s  "
              "%8.0f GF\n",
              label, stats.smem_ld_conflict_factor(),
              stats.smem_st_conflict_factor(), est.t_smem, est.gflops);
}

}  // namespace

int main() {
  using namespace iwg;
  std::printf("Ablation (§5.2): SMEM bank-conflict mitigations.\n");
  const auto dev = sim::DeviceProfile::rtx3060ti();

  for (auto [alpha, n, r] : {std::tuple<int, int, int>{8, 6, 3},
                             {16, 8, 9},
                             {4, 2, 3}}) {
    const iwg::ConvShape s = iwg::ConvShape::from_ofms(8, 32, 32, 64, r);
    std::printf("\nGamma%d(%d,%d) on %s:\n", alpha, n, r,
                s.to_string().c_str());
    core::GammaConfig base = core::GammaConfig::make(alpha, n, r);
    run_config("  all mitigations on", base, s, dev);

    core::GammaConfig no_pad = base;
    no_pad.pad_smem = false;
    no_pad.swizzle_ds = false;
    run_config("  no padding / no swizzle", no_pad, s, dev);

    core::GammaConfig no_z = base;
    no_z.zshape_lanes = false;
    run_config("  linear lanes (no Z-shape)", no_z, s, dev);

    core::GammaConfig none = no_pad;
    none.zshape_lanes = false;
    run_config("  all mitigations off", none, s, dev);
  }
  std::printf("\n(expected shape: conflict factors and t_smem rise as "
              "mitigations are removed)\n");
  return 0;
}
